package xlnand

import (
	"xlnand/internal/bch"
)

// Codec is the adaptive BCH codec (paper §4): one hardware block whose
// correction capability is selectable at runtime. It is exposed directly
// because it is useful standalone — cmd/bchtool drives real data through
// it.
type Codec = bch.Codec

// NewPageCodec builds the paper's 4 KB-page codec: GF(2^16), k = 32768
// bits, t programmable in [3, 65].
func NewPageCodec() (*Codec, error) { return bch.NewPageCodec() }

// NewCodec builds an adaptive BCH codec with custom geometry: GF(2^m),
// k message bits, capability range [tmin, tmax]. k + m·tmax must fit
// 2^m - 1.
func NewCodec(m, k, tmin, tmax int) (*Codec, error) { return bch.NewCodec(m, k, tmin, tmax) }

// UncorrectableBCH is the sentinel returned by Codec.Decode on
// uncorrectable patterns.
var UncorrectableBCH = bch.ErrUncorrectable

// UBER computes the paper's Eq. (1): the post-correction error rate of a
// BCH[n = k + m·t] code at the given raw bit error rate, dominated by the
// weight-(t+1) failure. Valid in the sparse regime n·RBER < t+1.
func UBER(n, t int, rber float64) float64 { return bch.UBER(n, t, rber) }

// UBERTail accumulates the full uncorrectable tail (>= t+1 errors); it is
// monotone everywhere and upper-bounds Eq. (1).
func UBERTail(n, t int, rber float64) float64 { return bch.UBERTail(n, t, rber) }

// RequiredT returns the minimum correction capability achieving the UBER
// target at the given raw bit error rate for a code over GF(2^m)
// protecting k bits.
func RequiredT(m, k int, rber, target float64, tmax int) (int, error) {
	return bch.RequiredT(m, k, rber, target, tmax)
}

// RBER returns the calibrated lifetime raw bit error rate of the modelled
// device for the given program algorithm and program/erase cycle count
// (the reproduction of paper Fig. 5).
func RBER(alg Algorithm, cycles float64) float64 {
	return DefaultEnv().Cal.RBER(alg, cycles)
}
