package xlnand

import (
	"bytes"
	"testing"
)

func openStorage(t *testing.T) (*Subsystem, *Storage) {
	t.Helper()
	sys, err := Open(Options{Blocks: 8, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.NewStorage([]PartitionSpec{
		{Name: "critical", Blocks: 2, Mode: ModeMinUBER},
		{Name: "bulk", Blocks: 4, Mode: ModeMaxRead},
		{Name: "log", Blocks: 2, Mode: ModeNominal},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, st
}

func TestStorageRoundTripAllPartitions(t *testing.T) {
	sys, st := openStorage(t)
	data := pageOf(1, sys.PageSize())
	for _, part := range []string{"critical", "bulk", "log"} {
		if err := st.Write(part, 0, data); err != nil {
			t.Fatalf("%s: %v", part, err)
		}
		got, res, err := st.Read(part, 0)
		if err != nil {
			t.Fatalf("%s: %v", part, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: corrupted", part)
		}
		if res == nil || res.T < 3 {
			t.Fatalf("%s: missing read result detail", part)
		}
	}
}

func TestStorageRejectsOversubscription(t *testing.T) {
	sys, err := Open(Options{Blocks: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NewStorage([]PartitionSpec{
		{Name: "a", Blocks: 2, Mode: ModeNominal},
		{Name: "b", Blocks: 2, Mode: ModeNominal},
	}); err == nil {
		t.Fatal("oversubscribed storage accepted")
	}
}

func TestStorageStats(t *testing.T) {
	sys, st := openStorage(t)
	data := pageOf(2, sys.PageSize())
	for i := 0; i < 10; i++ {
		if err := st.Write("log", i%4, data); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := st.Read("log", 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Trim("log", 1); err != nil {
		t.Fatal(err)
	}
	stats, err := st.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("%d partitions in stats", len(stats))
	}
	var logStats *PartitionStats
	for i := range stats {
		if stats[i].Name == "log" {
			logStats = &stats[i]
		}
	}
	if logStats == nil {
		t.Fatal("log partition missing from stats")
	}
	if logStats.HostWrites != 10 || logStats.HostReads != 1 || logStats.Trims != 1 {
		t.Fatalf("log stats: %+v", logStats)
	}
	if logStats.Mode != ModeNominal {
		t.Fatal("mode lost in stats")
	}
	if logStats.ServiceTime <= 0 {
		t.Fatal("service time missing")
	}
}

func TestStorageTrimThenRewrite(t *testing.T) {
	sys, st := openStorage(t)
	data := pageOf(3, sys.PageSize())
	if err := st.Write("bulk", 9, data); err != nil {
		t.Fatal(err)
	}
	if err := st.Trim("bulk", 9); err != nil {
		t.Fatal(err)
	}
	data2 := pageOf(4, sys.PageSize())
	if err := st.Write("bulk", 9, data2); err != nil {
		t.Fatal(err)
	}
	got, _, err := st.Read("bulk", 9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data2) {
		t.Fatal("rewrite after trim lost data")
	}
}

func TestPublicScrubFlow(t *testing.T) {
	sys, st := openStorage(t)
	data := pageOf(9, sys.PageSize())
	if err := st.Write("log", 0, data); err != nil {
		t.Fatal(err)
	}
	_, res, err := st.Read("log", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Force an alarm with a synthetic degraded result.
	alarm := *res
	alarm.Corrected = alarm.T
	marked, err := st.CheckReadHealth("log", 0, &alarm, DefaultScrubPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !marked {
		t.Fatal("degraded result did not mark the block")
	}
	rep, err := st.Scrub("log")
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksRefreshed != 1 || rep.PagesMoved != 1 {
		t.Fatalf("scrub report %+v", rep)
	}
	got, _, err := st.Read("log", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("scrub lost data through the public API")
	}
}

func TestAdvanceTimeIncreasesCorrections(t *testing.T) {
	if testing.Short() {
		t.Skip("retention test skipped in -short mode")
	}
	sys, err := Open(Options{Blocks: 2, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AgeBlock(0, 1e5); err != nil {
		t.Fatal(err)
	}
	data := pageOf(5, sys.PageSize())
	if _, err := sys.WritePage(0, 0, data); err != nil {
		t.Fatal(err)
	}
	fresh := 0
	for i := 0; i < 10; i++ {
		rd, err := sys.ReadPage(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		fresh += rd.Corrected
	}
	sys.AdvanceTime(5e4)
	baked := 0
	for i := 0; i < 10; i++ {
		rd, err := sys.ReadPage(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		baked += rd.Corrected
	}
	if baked <= fresh {
		t.Fatalf("bake did not increase corrected errors: %d vs %d", baked, fresh)
	}
}
