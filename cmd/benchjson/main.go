// Command benchjson converts `go test -bench` text output (stdin) into a
// JSON array (stdout) so CI can archive the perf trajectory of the decode
// and queue hot paths across PRs:
//
//	go test -run '^$' -bench 'Decode|Encode|QueueReadDies' -benchmem ./... |
//	    go run ./cmd/benchjson > BENCH_decode.json
//
// Each benchmark line becomes one object with the canonical fields
// (name, iterations, ns/op, MB/s, B/op, allocs/op) plus any custom
// b.ReportMetric units under "metrics".
//
// The -suite mode regenerates a CI perf artifact locally, running the
// same benchmarks the workflow runs and writing the same BENCH_*.json:
//
//	go run ./cmd/benchjson -list            # show the suites
//	go run ./cmd/benchjson -suite array     # BENCH_array.json in .
//	go run ./cmd/benchjson -suite all -out /tmp/bench
//
// A locally regenerated file diffs cleanly against the CI artifact of
// the same commit (timings move, the structure and metrics do not), so
// perf work doesn't need a CI round-trip per measurement.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerSec    float64            `json:"mb_per_s,omitempty"`
	BytesPerOp  float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// run is one `go test -bench` invocation of a suite.
type run struct {
	pkg       string
	bench     string
	benchtime string
	// count > 1 repeats the benchmark (go test -count) so noisy hosts
	// can be judged on their best run; the regression gate aggregates
	// repeated lines by name, best first.
	count int
}

// suite is one CI perf artifact: the runs whose parsed output lands in
// BENCH_<name>.json. Definitions mirror .github/workflows/ci.yml — a
// suite added here should be wired there too (and vice versa).
type suite struct {
	name string
	desc string
	runs []run
}

var suites = []suite{
	{
		name: "decode",
		desc: "BCH decode/encode hot paths + queue read fan-out",
		runs: []run{
			{pkg: "./internal/bch", bench: "^(BenchmarkDecode|BenchmarkEncode|BenchmarkSyndromes|BenchmarkChien)", benchtime: "10x"},
			{pkg: ".", bench: "^BenchmarkQueueReadDies", benchtime: "5x"},
		},
	},
	{
		name: "readretry",
		desc: "read-recovery ladder cost on fresh vs aged media",
		runs: []run{
			{pkg: "./internal/controller", bench: "^(BenchmarkControllerRead|BenchmarkReadRecovery)", benchtime: "5x"},
		},
	},
	{
		name: "ldpc",
		desc: "LDPC codec throughput + BCH-vs-LDPC recovery",
		runs: []run{
			{pkg: "./internal/ldpc", bench: "^(BenchmarkLDPCDecode|BenchmarkLDPCDecodeSoft|BenchmarkLDPCEncode)", benchtime: "5x"},
			{pkg: "./internal/controller", bench: "^BenchmarkFamilyRecovery", benchtime: "5x"},
		},
	},
	{
		name: "lifetime",
		desc: "full-stack device-biography soak",
		runs: []run{
			{pkg: "./internal/lifetime", bench: "^BenchmarkLifetimeSmoke$", benchtime: "3x"},
		},
	},
	{
		name: "array",
		desc: "fleet IOPS and cache hit rate vs drive count (1/4/16)",
		runs: []run{
			{pkg: "./internal/array", bench: "^BenchmarkFleetIOPS$", benchtime: "1x"},
		},
	},
	{
		name: "rebuild",
		desc: "degraded-read latency overhead + rebuild MB/s vs drive count (4/8/16)",
		runs: []run{
			{pkg: "./internal/array", bench: "^BenchmarkDegradedRead$", benchtime: "256x"},
			{pkg: "./internal/array", bench: "^BenchmarkRebuild$", benchtime: "1x"},
		},
	},
	{
		name: "hotpath",
		desc: "raw-speed gauge: 16/64-drive simulated read IOPS + BCH remainder kernel",
		runs: []run{
			// Fixed iteration counts: read-disturb state accumulates with
			// b.N, so only same-benchtime numbers are comparable. count=3
			// lets the gate judge a noisy host on its best run.
			{pkg: "./internal/array", bench: "^BenchmarkHotpathReadIOPS$", benchtime: "20000x", count: 3},
			{pkg: "./internal/bch", bench: "^BenchmarkRemainderChunks4K$", benchtime: "20000x", count: 3},
		},
	},
}

func main() {
	var (
		suiteName = flag.String("suite", "", "run a named benchmark suite (or 'all') and write BENCH_<suite>.json")
		outDir    = flag.String("out", ".", "directory for -suite output files")
		gateFile  = flag.String("gate", "", "with -suite: compare results against a committed baseline JSON and fail on >15% throughput regression or any allocs/op increase")
		list      = flag.Bool("list", false, "list the benchmark suites and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range suites {
			fmt.Printf("%-10s BENCH_%s.json  %s\n", s.name, s.name, s.desc)
		}
		return
	}
	if *suiteName != "" {
		if err := runSuites(*suiteName, *outDir, *gateFile); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	// Filter mode: stdin -> stdout.
	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// runSuites executes the named suite (or every suite) and writes one
// BENCH_<name>.json per suite into dir. A non-empty gateFile then
// compares the fresh results against that committed baseline.
func runSuites(name, dir, gateFile string) error {
	var selected []suite
	for _, s := range suites {
		if name == "all" || s.name == name {
			selected = append(selected, s)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("unknown suite %q (try -list)", name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range selected {
		var results []Result
		for _, r := range s.runs {
			args := []string{"test", "-run", "^$",
				"-bench", r.bench, "-benchtime", r.benchtime, "-benchmem"}
			if r.count > 1 {
				args = append(args, "-count", strconv.Itoa(r.count))
			}
			cmd := exec.Command("go", append(args, r.pkg)...)
			cmd.Stderr = os.Stderr
			out, err := cmd.Output()
			if err != nil {
				return fmt.Errorf("suite %s: %s %s: %w", s.name, r.pkg, r.bench, err)
			}
			os.Stdout.Write(out)
			parsed, err := parse(bytes.NewReader(out))
			if err != nil {
				return fmt.Errorf("suite %s: %w", s.name, err)
			}
			results = append(results, parsed...)
		}
		if len(results) == 0 {
			return fmt.Errorf("suite %s matched no benchmarks", s.name)
		}
		buf, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, "BENCH_"+s.name+".json")
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", path, len(results))
		if gateFile != "" {
			if err := gate(results, gateFile); err != nil {
				return fmt.Errorf("suite %s: %w", s.name, err)
			}
			fmt.Fprintf(os.Stderr, "benchjson: gate passed against %s\n", gateFile)
		}
	}
	return nil
}

// gateRegressionTolerance is how much throughput a fresh run may lose
// against the committed baseline before the gate fails. Allocation
// counts get no tolerance at all: they are machine-independent, so any
// increase is a real regression.
const gateRegressionTolerance = 0.15

// gate compares fresh suite results against a committed baseline file.
// Repeated -count runs are collapsed to the best line per benchmark
// (max throughput, min allocs) on both sides, so a noisy host is judged
// on what it can do, not on its worst scheduling accident.
func gate(results []Result, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("gate baseline: %w", err)
	}
	var baseline []Result
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("gate baseline %s: %w", baselinePath, err)
	}
	base, cur := bestByName(baseline), bestByName(results)
	var failures []string
	for name, b := range base {
		c, ok := cur[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but not in this run", name))
			continue
		}
		// Throughput: prefer an explicit rate metric (sim_read_iops,
		// MB/s) over inverted ns/op, highest-signal first.
		switch {
		case b.Metrics["sim_read_iops"] > 0:
			if got, want := c.Metrics["sim_read_iops"], b.Metrics["sim_read_iops"]; got < (1-gateRegressionTolerance)*want {
				failures = append(failures, fmt.Sprintf("%s: sim_read_iops %.0f is %.1f%% below baseline %.0f",
					name, got, 100*(1-got/want), want))
			}
		case b.MBPerSec > 0:
			if got, want := c.MBPerSec, b.MBPerSec; got < (1-gateRegressionTolerance)*want {
				failures = append(failures, fmt.Sprintf("%s: %.1f MB/s is %.1f%% below baseline %.1f",
					name, got, 100*(1-got/want), want))
			}
		case b.NsPerOp > 0:
			if got, want := c.NsPerOp, b.NsPerOp; got*(1-gateRegressionTolerance) > want {
				failures = append(failures, fmt.Sprintf("%s: %.0f ns/op is %.1f%% above baseline %.0f",
					name, got, 100*(got/want-1), want))
			}
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: %.2f allocs/op, baseline %.2f (no increase allowed)",
				name, c.AllocsPerOp, b.AllocsPerOp))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("perf gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// bestByName collapses repeated benchmark lines to the strongest one
// per name: minimum ns/op and allocs/op, maximum rate metrics.
func bestByName(results []Result) map[string]Result {
	out := make(map[string]Result, len(results))
	for _, r := range results {
		b, seen := out[r.Name]
		if !seen {
			out[r.Name] = r
			continue
		}
		if r.NsPerOp > 0 && (b.NsPerOp == 0 || r.NsPerOp < b.NsPerOp) {
			b.NsPerOp = r.NsPerOp
		}
		if r.MBPerSec > b.MBPerSec {
			b.MBPerSec = r.MBPerSec
		}
		if r.AllocsPerOp < b.AllocsPerOp {
			b.AllocsPerOp = r.AllocsPerOp
		}
		if r.BytesPerOp < b.BytesPerOp {
			b.BytesPerOp = r.BytesPerOp
		}
		for k, v := range r.Metrics {
			if v > b.Metrics[k] {
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[k] = v
			}
		}
		out[r.Name] = b
	}
	return out
}

// parse converts `go test -bench` text into parsed results.
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if res, ok := parseLine(sc.Text()); ok {
			results = append(results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// parseLine handles the `BenchmarkName-P  N  <value unit>...` format.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: trimProcs(fields[0]), Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerSec = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

// trimProcs removes the -N GOMAXPROCS suffix go test appends to names.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
