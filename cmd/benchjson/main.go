// Command benchjson converts `go test -bench` text output (stdin) into a
// JSON array (stdout) so CI can archive the perf trajectory of the decode
// and queue hot paths across PRs:
//
//	go test -run '^$' -bench 'Decode|Encode|QueueReadDies' -benchmem ./... |
//	    go run ./cmd/benchjson > BENCH_decode.json
//
// Each benchmark line becomes one object with the canonical fields
// (name, iterations, ns/op, MB/s, B/op, allocs/op) plus any custom
// b.ReportMetric units under "metrics".
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerSec    float64            `json:"mb_per_s,omitempty"`
	BytesPerOp  float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine handles the `BenchmarkName-P  N  <value unit>...` format.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: trimProcs(fields[0]), Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerSec = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

// trimProcs removes the -N GOMAXPROCS suffix go test appends to names.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
