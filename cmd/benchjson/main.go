// Command benchjson converts `go test -bench` text output (stdin) into a
// JSON array (stdout) so CI can archive the perf trajectory of the decode
// and queue hot paths across PRs:
//
//	go test -run '^$' -bench 'Decode|Encode|QueueReadDies' -benchmem ./... |
//	    go run ./cmd/benchjson > BENCH_decode.json
//
// Each benchmark line becomes one object with the canonical fields
// (name, iterations, ns/op, MB/s, B/op, allocs/op) plus any custom
// b.ReportMetric units under "metrics".
//
// The -suite mode regenerates a CI perf artifact locally, running the
// same benchmarks the workflow runs and writing the same BENCH_*.json:
//
//	go run ./cmd/benchjson -list            # show the suites
//	go run ./cmd/benchjson -suite array     # BENCH_array.json in .
//	go run ./cmd/benchjson -suite all -out /tmp/bench
//
// A locally regenerated file diffs cleanly against the CI artifact of
// the same commit (timings move, the structure and metrics do not), so
// perf work doesn't need a CI round-trip per measurement.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerSec    float64            `json:"mb_per_s,omitempty"`
	BytesPerOp  float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// run is one `go test -bench` invocation of a suite.
type run struct {
	pkg       string
	bench     string
	benchtime string
}

// suite is one CI perf artifact: the runs whose parsed output lands in
// BENCH_<name>.json. Definitions mirror .github/workflows/ci.yml — a
// suite added here should be wired there too (and vice versa).
type suite struct {
	name string
	desc string
	runs []run
}

var suites = []suite{
	{
		name: "decode",
		desc: "BCH decode/encode hot paths + queue read fan-out",
		runs: []run{
			{"./internal/bch", "^(BenchmarkDecode|BenchmarkEncode|BenchmarkSyndromes|BenchmarkChien)", "10x"},
			{".", "^BenchmarkQueueReadDies", "5x"},
		},
	},
	{
		name: "readretry",
		desc: "read-recovery ladder cost on fresh vs aged media",
		runs: []run{
			{"./internal/controller", "^(BenchmarkControllerRead|BenchmarkReadRecovery)", "5x"},
		},
	},
	{
		name: "ldpc",
		desc: "LDPC codec throughput + BCH-vs-LDPC recovery",
		runs: []run{
			{"./internal/ldpc", "^(BenchmarkLDPCDecode|BenchmarkLDPCDecodeSoft|BenchmarkLDPCEncode)", "5x"},
			{"./internal/controller", "^BenchmarkFamilyRecovery", "5x"},
		},
	},
	{
		name: "lifetime",
		desc: "full-stack device-biography soak",
		runs: []run{
			{"./internal/lifetime", "^BenchmarkLifetimeSmoke$", "3x"},
		},
	},
	{
		name: "array",
		desc: "fleet IOPS and cache hit rate vs drive count (1/4/16)",
		runs: []run{
			{"./internal/array", "^BenchmarkFleetIOPS$", "1x"},
		},
	},
	{
		name: "rebuild",
		desc: "degraded-read latency overhead + rebuild MB/s vs drive count (4/8/16)",
		runs: []run{
			{"./internal/array", "^BenchmarkDegradedRead$", "256x"},
			{"./internal/array", "^BenchmarkRebuild$", "1x"},
		},
	},
}

func main() {
	var (
		suiteName = flag.String("suite", "", "run a named benchmark suite (or 'all') and write BENCH_<suite>.json")
		outDir    = flag.String("out", ".", "directory for -suite output files")
		list      = flag.Bool("list", false, "list the benchmark suites and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range suites {
			fmt.Printf("%-10s BENCH_%s.json  %s\n", s.name, s.name, s.desc)
		}
		return
	}
	if *suiteName != "" {
		if err := runSuites(*suiteName, *outDir); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	// Filter mode: stdin -> stdout.
	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// runSuites executes the named suite (or every suite) and writes one
// BENCH_<name>.json per suite into dir.
func runSuites(name, dir string) error {
	var selected []suite
	for _, s := range suites {
		if name == "all" || s.name == name {
			selected = append(selected, s)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("unknown suite %q (try -list)", name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range selected {
		var results []Result
		for _, r := range s.runs {
			cmd := exec.Command("go", "test", "-run", "^$",
				"-bench", r.bench, "-benchtime", r.benchtime, "-benchmem", r.pkg)
			cmd.Stderr = os.Stderr
			out, err := cmd.Output()
			if err != nil {
				return fmt.Errorf("suite %s: %s %s: %w", s.name, r.pkg, r.bench, err)
			}
			os.Stdout.Write(out)
			parsed, err := parse(bytes.NewReader(out))
			if err != nil {
				return fmt.Errorf("suite %s: %w", s.name, err)
			}
			results = append(results, parsed...)
		}
		if len(results) == 0 {
			return fmt.Errorf("suite %s matched no benchmarks", s.name)
		}
		buf, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, "BENCH_"+s.name+".json")
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", path, len(results))
	}
	return nil
}

// parse converts `go test -bench` text into parsed results.
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if res, ok := parseLine(sc.Text()); ok {
			results = append(results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// parseLine handles the `BenchmarkName-P  N  <value unit>...` format.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: trimProcs(fields[0]), Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerSec = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

// trimProcs removes the -N GOMAXPROCS suffix go test appends to names.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
