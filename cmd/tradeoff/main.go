// Command tradeoff enumerates the cross-layer operating points of paper
// §6.3 at a chosen wear level: the full (algorithm × capability) grid,
// the Pareto-optimal subset, and the three named service levels.
//
// Usage:
//
//	tradeoff -cycles 1e6            # end-of-life trade-off table
//	tradeoff -cycles 1e4 -stride 4  # thinner capability grid
//	tradeoff -readretry             # recovered UBER vs retry ladder depth
//	tradeoff -ldpc                  # codec families at the recovery endgame
package main

import (
	"flag"
	"fmt"
	"os"

	"xlnand"
)

func main() {
	var (
		cycles    = flag.Float64("cycles", 1e5, "program/erase cycles (wear level)")
		stride    = flag.Int("stride", 8, "capability grid stride")
		pareto    = flag.Bool("pareto", true, "print the Pareto front")
		readretry = flag.Bool("readretry", false, "print the read-retry recovery figure (recovered UBER vs ladder depth across lifetime)")
		ldpcFam   = flag.Bool("ldpc", false, "print the codec-family endgame figure (BCH ladder vs LDPC hard vs LDPC soft)")
	)
	flag.Parse()

	if *readretry {
		fig, err := xlnand.RunExperiment("ext-readretry", 1)
		if err != nil {
			fatal(err)
		}
		fmt.Println(xlnand.RenderASCII(fig, 100, 28))
		fmt.Println(xlnand.RenderTable(fig))
		return
	}
	if *ldpcFam {
		fig, err := xlnand.RunExperiment("ext-ldpc", 1)
		if err != nil {
			fatal(err)
		}
		fmt.Println(xlnand.RenderASCII(fig, 100, 28))
		fmt.Println(xlnand.RenderTable(fig))
		return
	}

	s, err := xlnand.Open()
	if err != nil {
		fatal(err)
	}
	defer s.Close()

	fmt.Printf("Cross-layer operating points at %.0f P/E cycles (target UBER 1e-11)\n\n", *cycles)
	header := fmt.Sprintf("%-8s %4s  %10s  %10s  %9s  %9s  %8s  %8s  %8s",
		"alg", "t", "RBER", "UBER", "read MB/s", "write MB/s", "power W", "wr pJ/b", "rd pJ/b")
	line := func(p xlnand.OperatingPoint, tag string) string {
		return fmt.Sprintf("%-8s %4d  %10.2e  %10.2e  %9.2f  %9.2f  %8.4f  %8.0f  %8.0f %s",
			p.Alg, p.T, p.RBER, p.UBER, p.ReadMBps, p.WriteMBps,
			p.ProgramPowerW+p.ECCPowerW, p.WriteEnergyPJPerBit, p.ReadEnergyPJPerBit, tag)
	}

	pts, err := s.ExploreOperatingPoints(*cycles, *stride)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Full grid:")
	fmt.Println(header)
	for _, p := range pts {
		tag := ""
		if p.UBER <= 1e-11 {
			tag = "meets target"
		}
		fmt.Println(line(p, tag))
	}

	if *pareto {
		fmt.Println("\nPareto front (UBER / read / write / power):")
		fmt.Println(header)
		for _, p := range xlnand.ParetoFront(pts) {
			fmt.Println(line(p, ""))
		}
	}

	fmt.Println("\nPaper service levels:")
	fmt.Println(header)
	for _, m := range []xlnand.Mode{xlnand.ModeNominal, xlnand.ModeMinUBER, xlnand.ModeMaxRead} {
		p, err := s.EvaluateMode(m, *cycles)
		if err != nil {
			fatal(err)
		}
		fmt.Println(line(p, "<- "+m.String()))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tradeoff: %v\n", err)
	os.Exit(1)
}
