// Command nandtrace replays a synthetic workload trace against the full
// simulated sub-system (controller + adaptive codec + NAND device) and
// reports throughput and reliability statistics per service level.
//
// Usage:
//
//	nandtrace -profile read -ops 400 -cycles 1e5 -mode max-read
//	nandtrace -profile mixed -ops 300 -mode nominal
package main

import (
	"flag"
	"fmt"
	"os"

	"xlnand"
	"xlnand/internal/workload"
)

func main() {
	var (
		profile = flag.String("profile", "read", "workload profile: read, write or mixed")
		ops     = flag.Int("ops", 300, "number of operations")
		cycles  = flag.Float64("cycles", 0, "pre-age every block to this wear")
		mode    = flag.String("mode", "nominal", "service level: nominal, min-uber or max-read")
		seed    = flag.Uint64("seed", 11, "trace seed")
		blocks  = flag.Int("blocks", 4, "flash blocks")
		record  = flag.String("record", "", "write the generated trace to this CSV file and exit")
		replay  = flag.String("replay", "", "replay a trace CSV instead of generating one")
	)
	flag.Parse()

	s, err := xlnand.Open(xlnand.Options{Blocks: *blocks, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	for b := 0; b < *blocks; b++ {
		if err := s.AgeBlock(b, *cycles); err != nil {
			fatal(err)
		}
	}
	var m xlnand.Mode
	switch *mode {
	case "nominal":
		m = xlnand.ModeNominal
	case "min-uber":
		m = xlnand.ModeMinUBER
	case "max-read":
		m = xlnand.ModeMaxRead
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	if err := s.SelectMode(m); err != nil {
		fatal(err)
	}

	pages := s.PagesPerBlock()
	var tr workload.Trace
	if *replay != "" {
		fh, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		tr, err = workload.ReadTrace(fh)
		fh.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		var prof workload.Profile
		switch *profile {
		case "read":
			prof = workload.ReadIntensive(*ops, *blocks, pages)
		case "write":
			prof = workload.WriteIntensive(*ops, *blocks, pages)
		case "mixed":
			prof = workload.Mixed(*ops, *blocks, pages)
		default:
			fatal(fmt.Errorf("unknown profile %q", *profile))
		}
		var err error
		tr, err = workload.Generate(prof, *seed)
		if err != nil {
			fatal(err)
		}
	}
	if *record != "" {
		fh, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		if err := workload.WriteTrace(fh, tr); err != nil {
			fatal(err)
		}
		if err := fh.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d requests to %s\n", len(tr.Requests), *record)
		return
	}
	st, err := workload.Run(s.Controller(), tr)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("trace %q, %d requests, mode %s, wear %.0f cycles\n",
		tr.Name, len(tr.Requests), m, *cycles)
	fmt.Printf("  reads:  %6d   (%.2f MB/s, %v total)\n", st.Reads, st.ReadMBps, st.ReadTime)
	fmt.Printf("  writes: %6d   (%.2f MB/s, %v total)\n", st.Writes, st.WriteMBps, st.WriteTime)
	fmt.Printf("  erases: %6d   (%v total)\n", st.Erases, st.EraseTime)
	fmt.Printf("  corrected bit errors: %d\n", st.BitErrorsCorrected)
	fmt.Printf("  uncorrectable pages:  %d\n", st.Uncorrectable)
	fmt.Printf("  modelled wall time:   %v\n", st.TotalTime())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nandtrace: %v\n", err)
	os.Exit(1)
}
