// Command nandtrace replays a synthetic workload trace against the full
// simulated sub-system (multi-die dispatcher + controller + adaptive
// codec + NAND devices) through the batched queue API and reports
// throughput and reliability statistics per service level.
//
// Usage:
//
//	nandtrace -profile read -ops 400 -cycles 1e5 -mode max-read
//	nandtrace -profile mixed -ops 300 -mode nominal -dies 4 -batch 64
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"xlnand"
	"xlnand/internal/workload"
)

func main() {
	var (
		profile = flag.String("profile", "read", "workload profile: read, write or mixed")
		ops     = flag.Int("ops", 300, "number of operations")
		cycles  = flag.Float64("cycles", 0, "pre-age every block to this wear")
		mode    = flag.String("mode", "nominal", "service level: nominal, min-uber or max-read")
		seed    = flag.Uint64("seed", 11, "trace seed")
		blocks  = flag.Int("blocks", 4, "flash blocks per die")
		dies    = flag.Int("dies", 1, "NAND dies behind the controller")
		batch   = flag.Int("batch", 32, "requests per queue submission")
		record  = flag.String("record", "", "write the generated trace to this CSV file and exit")
		replay  = flag.String("replay", "", "replay a trace CSV instead of generating one")
	)
	flag.Parse()

	s, err := xlnand.Open(
		xlnand.WithBlocks(*blocks),
		xlnand.WithDies(*dies),
		xlnand.WithSeed(*seed),
	)
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	for d := 0; d < *dies; d++ {
		for b := 0; b < *blocks; b++ {
			if err := s.AgeDieBlock(d, b, *cycles); err != nil {
				fatal(err)
			}
		}
	}
	var m xlnand.Mode
	switch *mode {
	case "nominal":
		m = xlnand.ModeNominal
	case "min-uber":
		m = xlnand.ModeMinUBER
	case "max-read":
		m = xlnand.ModeMaxRead
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	if err := s.SelectMode(m); err != nil {
		fatal(err)
	}

	// The trace addresses a flat block space; the queue stripes it
	// round-robin across the dies.
	totalBlocks := *blocks * *dies
	pages := s.PagesPerBlock()
	var tr workload.Trace
	if *replay != "" {
		fh, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		tr, err = workload.ReadTrace(fh)
		fh.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		var prof workload.Profile
		switch *profile {
		case "read":
			prof = workload.ReadIntensive(*ops, totalBlocks, pages)
		case "write":
			prof = workload.WriteIntensive(*ops, totalBlocks, pages)
		case "mixed":
			prof = workload.Mixed(*ops, totalBlocks, pages)
		default:
			fatal(fmt.Errorf("unknown profile %q", *profile))
		}
		var err error
		tr, err = workload.Generate(prof, *seed)
		if err != nil {
			fatal(err)
		}
	}
	if *record != "" {
		fh, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		if err := workload.WriteTrace(fh, tr); err != nil {
			fatal(err)
		}
		if err := fh.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d requests to %s\n", len(tr.Requests), *record)
		return
	}

	st, err := replayTrace(s, tr, *dies, *batch)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trace %q, %d requests, mode %s, wear %.0f cycles, %d die(s), batch %d\n",
		tr.Name, len(tr.Requests), m, *cycles, *dies, *batch)
	fmt.Printf("  reads:  %6d   (mean service latency %v, queueing included)\n", st.reads, st.meanRead)
	fmt.Printf("  writes: %6d   (mean service latency %v, queueing included)\n", st.writes, st.meanWrite)
	fmt.Printf("  erases: %6d\n", st.erases)
	fmt.Printf("  corrected bit errors: %d\n", st.corrected)
	fmt.Printf("  uncorrectable pages:  %d\n", st.uncorrectable)
	fmt.Printf("  modelled wall time:   %v\n", st.makespan)
	fmt.Printf("  aggregate throughput: %.2f MB/s\n", st.aggregateMBps)
}

type traceStats struct {
	reads, writes, erases int
	corrected             int
	uncorrectable         int
	readTime, writeTime   time.Duration
	meanRead, meanWrite   time.Duration
	makespan              time.Duration
	aggregateMBps         float64
}

// replayTrace drives the trace through the queue in batches, preserving
// per-block ordering (a block always maps to the same die, and per-die
// execution is FIFO).
func replayTrace(s *xlnand.Subsystem, tr workload.Trace, dies, batch int) (traceStats, error) {
	var st traceStats
	if batch < 1 {
		batch = 1
	}
	q := s.NewQueue()
	ctx := context.Background()
	page := make([]byte, s.PageSize())
	for i := range page {
		page[i] = byte(i * 131)
	}
	toRequest := func(r workload.Request) xlnand.Request {
		die, block := r.Block%dies, r.Block/dies
		switch r.Kind {
		case workload.OpWrite:
			return xlnand.WriteRequest(die, block, r.Page, page)
		case workload.OpErase:
			return xlnand.EraseRequest(die, block)
		default:
			return xlnand.ReadRequest(die, block, r.Page)
		}
	}
	var first, last time.Duration
	started := false
	for lo := 0; lo < len(tr.Requests); lo += batch {
		hi := lo + batch
		if hi > len(tr.Requests) {
			hi = len(tr.Requests)
		}
		reqs := make([]xlnand.Request, 0, hi-lo)
		for _, r := range tr.Requests[lo:hi] {
			reqs = append(reqs, toRequest(r))
		}
		comps, err := q.Submit(ctx, reqs)
		if err != nil {
			return st, err
		}
		for i, c := range comps {
			if !started || c.Start < first {
				first = c.Start
				started = true
			}
			if c.Finish > last {
				last = c.Finish
			}
			switch c.Op {
			case xlnand.OpRead:
				st.reads++
				st.corrected += c.Corrected
				st.readTime += c.Latency()
			case xlnand.OpWrite:
				st.writes++
				st.writeTime += c.Latency()
			case xlnand.OpErase:
				st.erases++
			}
			if c.Err != nil {
				if c.Op == xlnand.OpRead && c.Read != nil {
					st.uncorrectable++
					continue
				}
				return st, fmt.Errorf("op %d (%v): %w", lo+i, c.Op, c.Err)
			}
		}
	}
	st.makespan = last - first
	if st.reads > 0 {
		st.meanRead = st.readTime / time.Duration(st.reads)
	}
	if st.writes > 0 {
		st.meanWrite = st.writeTime / time.Duration(st.writes)
	}
	if st.makespan > 0 {
		st.aggregateMBps = float64(st.reads+st.writes) * float64(s.PageSize()) / st.makespan.Seconds() / 1e6
	}
	return st, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nandtrace: %v\n", err)
	os.Exit(1)
}
