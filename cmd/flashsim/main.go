// Command flashsim regenerates the figures of Zambelli et al. (DATE 2012)
// from the xlnand model stack.
//
// Usage:
//
//	flashsim -fig fig05                # one figure, ASCII chart
//	flashsim -all -format table        # every figure as data tables
//	flashsim -all -format csv -out dir # CSV files for external plotting
//	flashsim -list                     # available figure IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"xlnand"
)

func main() {
	var (
		figID  = flag.String("fig", "", "figure ID to regenerate (see -list)")
		all    = flag.Bool("all", false, "regenerate every figure")
		list   = flag.Bool("list", false, "list available figures")
		format = flag.String("format", "ascii", "output format: ascii, table or csv")
		outDir = flag.String("out", "", "write per-figure files to this directory instead of stdout")
		width  = flag.Int("width", 76, "ASCII chart width")
		height = flag.Int("height", 22, "ASCII chart height")
		seed   = flag.Uint64("seed", 42, "simulation seed")
	)
	flag.Parse()

	if *list {
		for _, e := range xlnand.Experiments() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Description)
		}
		return
	}
	var ids []string
	switch {
	case *all:
		for _, e := range xlnand.Experiments() {
			ids = append(ids, e.ID)
		}
	case *figID != "":
		ids = []string{*figID}
	default:
		fmt.Fprintln(os.Stderr, "flashsim: pass -fig <id>, -all or -list")
		os.Exit(2)
	}

	for _, id := range ids {
		fig, err := xlnand.RunExperiment(id, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flashsim: %v\n", err)
			os.Exit(1)
		}
		var rendered, ext string
		switch *format {
		case "ascii":
			rendered, ext = xlnand.RenderASCII(fig, *width, *height), "txt"
		case "table":
			rendered, ext = xlnand.RenderTable(fig), "txt"
		case "csv":
			rendered, ext = xlnand.RenderCSV(fig), "csv"
		default:
			fmt.Fprintf(os.Stderr, "flashsim: unknown format %q\n", *format)
			os.Exit(2)
		}
		if *outDir == "" {
			fmt.Printf("==== %s ====\n%s\n", id, rendered)
			continue
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "flashsim: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*outDir, id+"."+ext)
		if err := os.WriteFile(path, []byte(rendered), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "flashsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
