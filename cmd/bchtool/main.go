// Command bchtool drives real data through the adaptive BCH codec.
//
// Usage:
//
//	bchtool encode  -t 30 < data.bin > codeword.bin
//	bchtool corrupt -errors 20 -seed 3 < codeword.bin > dirty.bin
//	bchtool decode  -t 30 < dirty.bin > recovered.bin
//	bchtool roundtrip -t 30 -errors 25 < data.bin
//
// Data shorter than one 4 KB page is zero-padded; longer input is split
// into pages, each protected independently (the controller's layout).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"xlnand"
	"xlnand/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	tFlag := fs.Int("t", 30, "correction capability (3-65)")
	errFlag := fs.Int("errors", 10, "bit errors to inject per codeword (corrupt/roundtrip)")
	seedFlag := fs.Uint64("seed", 1, "error-injection seed")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	codec, err := xlnand.NewPageCodec()
	if err != nil {
		fatal(err)
	}
	in, err := io.ReadAll(os.Stdin)
	if err != nil {
		fatal(err)
	}
	pageBytes := codec.K / 8
	parityBytes, err := codec.ParityBytes(*tFlag)
	if err != nil {
		fatal(err)
	}
	cwBytes := pageBytes + parityBytes

	switch cmd {
	case "encode":
		forEachChunk(in, pageBytes, func(page []byte) {
			cw, err := codec.EncodeCodeword(*tFlag, page)
			if err != nil {
				fatal(err)
			}
			mustWrite(cw)
		})
	case "corrupt":
		rng := stats.NewRNG(*seedFlag)
		forEachChunk(in, cwBytes, func(cw []byte) {
			flipRandom(cw, *errFlag, rng)
			mustWrite(cw)
		})
	case "decode":
		total := 0
		forEachChunk(in, cwBytes, func(cw []byte) {
			n, err := codec.Decode(*tFlag, cw)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bchtool: codeword uncorrectable: %v\n", err)
				os.Exit(1)
			}
			total += n
			mustWrite(cw[:pageBytes])
		})
		fmt.Fprintf(os.Stderr, "bchtool: corrected %d bit error(s)\n", total)
	case "roundtrip":
		rng := stats.NewRNG(*seedFlag)
		pages, corrected := 0, 0
		forEachChunk(in, pageBytes, func(page []byte) {
			cw, err := codec.EncodeCodeword(*tFlag, page)
			if err != nil {
				fatal(err)
			}
			flipRandom(cw, *errFlag, rng)
			n, err := codec.Decode(*tFlag, cw)
			if err != nil {
				fatal(fmt.Errorf("page %d uncorrectable: %w", pages, err))
			}
			for i := range page {
				if cw[i] != page[i] {
					fatal(fmt.Errorf("page %d: silent corruption", pages))
				}
			}
			pages++
			corrected += n
		})
		fmt.Printf("roundtrip OK: %d page(s), t=%d, %d error(s) injected and corrected\n",
			pages, *tFlag, corrected)
	default:
		usage()
	}
}

func forEachChunk(data []byte, size int, f func([]byte)) {
	if len(data) == 0 {
		data = make([]byte, size) // empty input: one zero page
	}
	for off := 0; off < len(data); off += size {
		chunk := make([]byte, size)
		copy(chunk, data[off:min(off+size, len(data))])
		f(chunk)
	}
}

func flipRandom(buf []byte, n int, rng *stats.RNG) {
	for _, pos := range rng.SampleK(len(buf)*8, n) {
		buf[pos/8] ^= 1 << uint(7-pos%8)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func mustWrite(b []byte) {
	if _, err := os.Stdout.Write(b); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bchtool: %v\n", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bchtool {encode|corrupt|decode|roundtrip} [-t N] [-errors N] [-seed N]")
	os.Exit(2)
}
