// Command lifetime runs deterministic device-biography scenarios from
// the internal/lifetime catalog against the full stack (queue,
// dispatcher, FTL, controller, adaptive BCH, aging NAND) and prints the
// per-phase reliability/performance trajectory.
//
//	lifetime -list                 # show the catalog
//	lifetime -scenario read-archive
//	lifetime -shortest -json out.json
//	lifetime -all
//
// Every run is seed-reproducible: the same scenario and seed produce a
// byte-identical report, so a JSON diff is a behaviour diff.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"xlnand/internal/lifetime"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the scenario catalog and exit")
		name     = flag.String("scenario", "", "run one catalog scenario by name")
		all      = flag.Bool("all", false, "run every catalog scenario")
		shortest = flag.Bool("shortest", false, "run the smallest catalog scenario (CI smoke)")
		seed     = flag.Uint64("seed", 0, "override the scenario seed (0 keeps the catalog seed)")
		jsonOut  = flag.String("json", "", "write the full report JSON to this file (- for stdout)")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-18s %6s %6s  %s\n", "scenario", "ops", "phases", "description")
		for _, sc := range lifetime.Catalog() {
			fmt.Printf("%-18s %6d %6d  %s\n", sc.Name, sc.TotalOps(), len(sc.Phases), sc.Description)
		}
		return
	}

	var scenarios []lifetime.Scenario
	switch {
	case *all:
		scenarios = lifetime.Catalog()
	case *shortest:
		scenarios = []lifetime.Scenario{lifetime.ShortestScenario()}
	case *name != "":
		sc, err := lifetime.CatalogScenario(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		scenarios = []lifetime.Scenario{sc}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, sc := range scenarios {
		if *seed != 0 {
			sc.Seed = *seed
		}
		rep, err := lifetime.Run(sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep.WriteTable(os.Stdout)
		fmt.Println()
		if *jsonOut != "" {
			buf, err := rep.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if *jsonOut == "-" {
				os.Stdout.Write(buf)
				fmt.Println()
				continue
			}
			// With several scenarios, one file each: report.json becomes
			// report-<scenario>.json so no report overwrites another.
			path := *jsonOut
			if len(scenarios) > 1 {
				ext := filepath.Ext(path)
				path = path[:len(path)-len(ext)] + "-" + sc.Name + ext
			}
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}
