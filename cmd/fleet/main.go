// Command fleet runs the fleet-scale layers: the multi-drive lifetime
// scenario (N independent drive biographies run concurrently, merged
// deterministically) and the striped array service (host cache +
// per-tenant QoS over concurrent drives).
//
//	fleet                          # 16-drive lifetime smoke fleet
//	fleet -drives 64 -seed 7       # wider fleet, different seed
//	fleet -json fleet.json         # archive the merged report
//	fleet -soak                    # 128-drive fleet-soak scenario
//	fleet -soak -drives 32 -ops-scale 0.5   # reduced-rounds CI smoke
//	fleet -array                   # striped-array workload instead
//	fleet -array -drives 16 -cache-pages 256 -policy clock -ops 4000
//	fleet -array -drives 8 -redundancy parity -spares 1 \
//	    -kill-drive 3 -kill-round 20   # fail-stop drive 3 mid-run
//	fleet -kill-drive 2                # lifetime: drive 2 dies after phase 1
//	fleet -array -slo 500us -trace trace.json -metrics metrics.prom
//	                                   # latency SLO + observability exports
//
// Both modes are seed-reproducible: the same flags produce
// byte-identical JSON no matter how the drive goroutines interleave —
// including runs with injected drive deaths.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"xlnand/internal/array"
	"xlnand/internal/lifetime"
	"xlnand/internal/obs"
)

func main() {
	var (
		arrayMode = flag.Bool("array", false, "run the striped-array workload instead of the lifetime fleet")
		soakMode  = flag.Bool("soak", false, "run the 128-drive fleet-soak scenario instead of the smoke fleet (lifetime mode only)")
		opsScale  = flag.Float64("ops-scale", 1, "scale every biography phase's host ops by this factor (lifetime mode; <1 = reduced rounds for smokes)")
		drives    = flag.Int("drives", 0, "number of drives in the fleet (0 keeps the scenario's count; smoke default 16)")
		seed      = flag.Uint64("seed", 0, "override the master seed (0 keeps the default)")
		workers   = flag.Int("workers", 0, "cap on concurrently running drives (0 = min(drives, 16); lifetime mode only)")
		jsonOut   = flag.String("json", "", "write the merged report JSON to this file (- for stdout)")

		// Array-mode shape.
		dies       = flag.Int("dies", 2, "dies per drive (array mode)")
		blocks     = flag.Int("blocks", 8, "blocks per die (array mode)")
		stripe     = flag.Int("stripe", 1, "stripe unit in volume pages (array mode)")
		cachePages = flag.Int("cache-pages", 128, "host cache capacity in volume pages, 0 disables (array mode)")
		policy     = flag.String("policy", "lru", "cache eviction policy: lru or clock (array mode)")
		ops        = flag.Int("ops", 2000, "workload operations to run (array mode)")

		// Fault injection (both modes).
		redundancy = flag.String("redundancy", "none", "array redundancy: none, parity or mirror (array mode)")
		spares     = flag.Int("spares", 0, "hot spares for rebuild after a drive death (array mode)")
		killDrive  = flag.Int("kill-drive", -1, "fail-stop this drive mid-run (-1 disables)")
		killRound  = flag.Int("kill-round", 20, "array round at which -kill-drive fires (array mode)")

		// Observability exports (virtual-time; byte-identical per seed).
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (both modes)")
		metricsOut = flag.String("metrics", "", "write a Prometheus text metrics snapshot to this file (array mode)")
		sloTarget  = flag.Duration("slo", 0, "per-op latency SLO for the oltp tenant, e.g. 500us (array mode; 0 disables)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		if !*arrayMode {
			fail(fmt.Errorf("fleet: -metrics requires -array (lifetime mode publishes no registry)"))
		}
		reg = obs.NewRegistry()
	}

	var (
		js  []byte
		err error
	)
	if *arrayMode {
		js, err = runArray(arrayParams{
			drives: *drives, dies: *dies, blocks: *blocks, stripe: *stripe,
			cachePages: *cachePages, policy: *policy, ops: *ops, seed: *seed,
			redundancy: *redundancy, spares: *spares,
			killDrive: *killDrive, killRound: *killRound,
			slo: *sloTarget, tracer: tracer, reg: reg,
		})
	} else {
		js, err = runLifetimeFleet(*soakMode, *drives, *workers, *seed, *killDrive, *opsScale, tracer)
	}
	if err != nil {
		fail(err)
	}
	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if err := tracer.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		kept, dropped := tracer.Events()
		fmt.Printf("trace: %d events (%d dropped) -> %s\n", kept, dropped, *traceOut)
	}
	if reg != nil {
		if err := os.WriteFile(*metricsOut, reg.PrometheusText(), 0o644); err != nil {
			fail(err)
		}
	}
	if *jsonOut == "" {
		return
	}
	if *jsonOut == "-" {
		os.Stdout.Write(js)
		fmt.Println()
		return
	}
	if err := os.WriteFile(*jsonOut, js, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runLifetimeFleet plays the selected biography (smoke or soak) across
// the fleet and prints the merged phase table. killDrive >= 0
// fail-stops that drive after the first phase of its biography;
// opsScale < 1 compresses every phase's host ops (the CI smoke knob for
// the soak scenario). Narrowing a scenario below a scheduled fail-stop
// drops that fail-stop rather than failing validation.
func runLifetimeFleet(soak bool, drives, workers int, seed uint64, killDrive int, opsScale float64, tracer *obs.Tracer) ([]byte, error) {
	fs := lifetime.FleetSmoke()
	if soak {
		fs = lifetime.FleetSoak()
	}
	fs.Trace = tracer
	if drives > 0 {
		fs.Drives = drives
		kept := fs.FailStops[:0]
		for _, k := range fs.FailStops {
			if k.Drive < drives {
				kept = append(kept, k)
			}
		}
		fs.FailStops = kept
	}
	fs.Workers = workers
	if seed != 0 {
		fs.Seed = seed
	}
	if opsScale != 1 {
		if opsScale <= 0 {
			return nil, fmt.Errorf("fleet: -ops-scale must be positive, got %g", opsScale)
		}
		for i := range fs.Base.Phases {
			ops := int(float64(fs.Base.Phases[i].Ops) * opsScale)
			if ops < 1 {
				ops = 1
			}
			fs.Base.Phases[i].Ops = ops
		}
	}
	if killDrive >= 0 {
		fs.FailStops = []lifetime.FleetFailStop{{Drive: killDrive, AfterPhase: 0}}
	}
	res, err := lifetime.RunFleet(fs)
	if err != nil {
		return nil, err
	}
	res.WriteTable(os.Stdout)
	return res.JSON()
}

// arrayParams bundles the array-mode knobs.
type arrayParams struct {
	drives, dies, blocks, stripe int
	cachePages                   int
	policy                       string
	ops                          int
	seed                         uint64
	redundancy                   string
	spares                       int
	killDrive, killRound         int
	slo                          time.Duration
	tracer                       *obs.Tracer
	reg                          *obs.Registry
}

// runArray drives a striped volume with two tenants — an unthrottled
// latency-sensitive one and a token-bucket-limited scanner — through a
// skewed read/write mix, then prints the fleet summary. With
// -kill-drive the named drive fail-stops at -kill-round; under parity
// or mirror redundancy the run degrades and (with a spare) rebuilds
// instead of losing data.
func runArray(p arrayParams) ([]byte, error) {
	drives, dies, blocks, stripe := p.drives, p.dies, p.blocks, p.stripe
	cachePages, policy, ops, seed := p.cachePages, p.policy, p.ops, p.seed
	if drives == 0 {
		drives = 16
	}
	if seed == 0 {
		seed = 42
	}
	var plan array.FaultPlan
	if p.killDrive >= 0 {
		plan.Drives = []array.DriveFault{{
			Drive: p.killDrive, FailStopRound: int64(p.killRound),
		}}
	}
	a, err := array.New(array.Config{
		Drives:       drives,
		DiesPerDrive: dies,
		BlocksPerDie: blocks,
		Seed:         seed,
		StripePages:  stripe,
		Redundancy:   p.redundancy,
		Spares:       p.spares,
		Faults:       plan,
		Cache:        array.CacheConfig{Pages: cachePages, Policy: policy},
		Trace:        p.tracer,
		Tenants: []array.TenantConfig{
			{Name: "oltp", SLOTarget: p.slo},
			{Name: "scan", Rate: 4000, Burst: 32},
		},
	})
	if err != nil {
		return nil, err
	}
	defer a.Close()

	vol := a.VolumePages()
	hot := vol / 8
	if hot < 1 {
		hot = 1
	}
	page := func(i int) []byte {
		data := make([]byte, a.PageBytes())
		for j := range data {
			data[j] = byte(i*131 + j*31)
		}
		return data
	}
	// Seed the hot set so the read mix below never misses on unwritten
	// pages.
	for p := 0; p < hot; p++ {
		if err := a.Submit(array.Op{Tenant: "oltp", Write: true, Page: p, Data: page(p)}); err != nil {
			return nil, err
		}
	}
	if _, err := a.Drain(); err != nil {
		return nil, err
	}

	// The measured mix: oltp re-reads and updates the hot set, scan
	// streams the same pages under its token bucket.
	state := seed
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	for i := 0; i < ops; i++ {
		p := next(hot)
		var op array.Op
		switch i % 4 {
		case 0:
			op = array.Op{Tenant: "oltp", Write: true, Page: p, Data: page(p + i)}
		case 1, 2:
			op = array.Op{Tenant: "oltp", Page: p}
		default:
			op = array.Op{Tenant: "scan", Page: p}
		}
		if err := a.Submit(op); err != nil {
			return nil, err
		}
		if (i+1)%256 == 0 {
			if _, err := a.Drain(); err != nil {
				return nil, err
			}
		}
	}
	if _, err := a.Drain(); err != nil {
		return nil, err
	}
	if err := a.Flush(); err != nil {
		return nil, err
	}
	rep := a.Report()
	if p.reg != nil {
		a.PublishMetrics(p.reg)
	}
	fmt.Print(rep.Summary())
	for _, d := range rep.PerDrive {
		for _, tr := range d.Transitions {
			fmt.Printf("  drive %d health: %s -> %s (round %d, %.6fs)\n",
				d.Drive, tr.From, tr.To, tr.Round, tr.ClockSec)
		}
	}
	return rep.JSON()
}
