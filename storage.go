package xlnand

import (
	"time"

	"xlnand/internal/controller"
	"xlnand/internal/ftl"
)

// PartitionSpec declares one differentiated storage service: a share of
// the device's blocks bound to a cross-layer service level. This is the
// paper's §7 future work ("exposing differentiated storage services to
// applications") built on the cross-layer controller.
type PartitionSpec = ftl.PartitionSpec

// Storage is a flash translation layer over the sub-system: per-partition
// logical page spaces with out-of-place writes, garbage collection and
// wear-aware victim selection, each partition served at its own
// reliability/performance operating point.
type Storage struct {
	f *ftl.FTL
}

// NewStorage carves the sub-system's blocks (striped across its dies)
// into partitions. Every partition needs at least 2 blocks (one is
// over-provisioning for garbage collection); the total must fit the
// device.
func (s *Subsystem) NewStorage(specs []PartitionSpec) (*Storage, error) {
	f, err := ftl.New(s.disp, s.env, specs)
	if err != nil {
		return nil, err
	}
	return &Storage{f: f}, nil
}

// Write stores one logical page (PageSize bytes) into a partition.
func (st *Storage) Write(partition string, lpa int, data []byte) error {
	_, err := st.f.Write(partition, lpa, data)
	return err
}

// WriteResult stores one logical page and reports the physical write:
// the capability and algorithm the partition's service level resolved
// to, and the modelled latency breakdown.
func (st *Storage) WriteResult(partition string, lpa int, data []byte) (*controller.WriteResult, error) {
	return st.f.Write(partition, lpa, data)
}

// SetPartitionMode retunes a partition's service level at runtime:
// subsequent writes use the new mode while stored pages keep the
// configuration they were written with.
func (st *Storage) SetPartitionMode(partition string, m Mode) error {
	return st.f.SetMode(partition, m)
}

// Read fetches one logical page through the partition's ECC path.
func (st *Storage) Read(partition string, lpa int) ([]byte, *controller.ReadResult, error) {
	return st.f.Read(partition, lpa)
}

// Trim drops a logical page, releasing its physical copy to garbage
// collection.
func (st *Storage) Trim(partition string, lpa int) error {
	return st.f.Trim(partition, lpa)
}

// PartitionStats reports one partition's service statistics.
type PartitionStats struct {
	Name               string
	Mode               Mode
	CapacityPages      int
	HostWrites         int
	HostReads          int
	GCMoves            int
	Erases             int
	Trims              int
	WriteAmplification float64
	ServiceTime        time.Duration
	WearMin, WearMax   float64
}

// Stats returns the statistics of every partition.
func (st *Storage) Stats() ([]PartitionStats, error) {
	var out []PartitionStats
	for _, p := range st.f.Partitions() {
		min, max, err := st.f.WearSpread(p.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, PartitionStats{
			Name:               p.Name,
			Mode:               p.Mode,
			CapacityPages:      p.Capacity(),
			HostWrites:         p.HostWrites,
			HostReads:          p.HostReads,
			GCMoves:            p.GCMoves,
			Erases:             p.Erases,
			Trims:              p.Trims,
			WriteAmplification: p.WriteAmplification(),
			ServiceTime:        p.ServiceTime,
			WearMin:            min,
			WearMax:            max,
		})
	}
	return out, nil
}

// AdvanceTime moves every die's retention clock forward (hours), baking
// every stored page — lifetime studies combine this with AgeBlock.
func (s *Subsystem) AdvanceTime(hours float64) {
	_ = s.disp.AdvanceTime(hours)
}

// ScrubPolicy configures background refresh: reads whose corrected-error
// count reaches FractionOfT of the decode capability mark their physical
// block for relocation.
type ScrubPolicy = ftl.ScrubPolicy

// ScrubReport summarises one scrub pass.
type ScrubReport = ftl.ScrubReport

// DefaultScrubPolicy alarms at 70% of the correction budget.
func DefaultScrubPolicy() ScrubPolicy { return ftl.DefaultScrubPolicy() }

// CheckReadHealth feeds a read result into the scrub policy, returning
// whether the page's block was newly marked for refresh.
func (st *Storage) CheckReadHealth(partition string, lpa int, res *controller.ReadResult, pol ScrubPolicy) (bool, error) {
	return st.f.CheckReadHealth(partition, lpa, res, pol)
}

// Scrub relocates the live data of every marked block in the partition
// to fresh pages, healing accumulated read disturb and retention age.
func (st *Storage) Scrub(partition string) (ScrubReport, error) {
	return st.f.Scrub(partition)
}
