package xlnand

import "xlnand/internal/obs"

// Tracer collects virtual-time spans from the simulated stack and
// exports them as Chrome trace-event JSON (chrome://tracing or
// https://ui.perfetto.dev). Timestamps come from the modelled clocks,
// never wall time, so two runs of the same seeded configuration export
// byte-identical traces. Attach one with WithTrace.
type Tracer = obs.Tracer

// NewTracer returns an empty trace collector for WithTrace.
func NewTracer() *Tracer { return obs.NewTracer() }

// Registry is a metrics registry: counters, gauges and latency
// histograms published at snapshot time and exported as Prometheus
// text or JSON with a stable series order.
type Registry = obs.Registry

// NewRegistry returns an empty metrics registry for PublishMetrics.
func NewRegistry() *Registry { return obs.NewRegistry() }

// HistSnapshot is one latency histogram's frozen summary (count,
// min/mean/max and p50/p99/p99.9, in microseconds).
type HistSnapshot = obs.HistSnapshot

// WithTrace attaches a trace collector to the sub-system: the
// dispatcher records per-die sense/decode/transfer/program/erase spans,
// retry-ladder rungs and soft-sense escalations on the modelled
// timeline. A nil tracer (or omitting the option) compiles the hooks
// out of the hot path — disabled tracing costs nothing per operation.
func WithTrace(t *Tracer) Option {
	return optionFunc(func(c *config) { c.trace = t })
}

// traceProc mints the sub-system's trace process (pid 0) on the
// attached tracer, or nil when tracing is disabled.
func (c *config) traceProc() *obs.Proc {
	if c.trace == nil {
		return nil
	}
	return c.trace.Process(0, "subsystem")
}

// PublishMetrics publishes the sub-system's counters into reg as
// unlabelled series (nand_reads_uncorrectable_total,
// nand_retry_recovered_total, nand_soft_attempts_total,
// nand_soft_recovered_total, nand_clean_reads_total,
// dispatch_vtime_seconds). It rides the control plane, so calling it
// while traffic is in flight is safe.
func (s *Subsystem) PublishMetrics(reg *Registry) {
	s.disp.PublishMetrics(reg, "")
}
