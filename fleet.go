package xlnand

import "xlnand/internal/array"

// The fleet-scale array service: a striped multi-drive front end over
// the single-drive stack, with host-side caching, per-tenant QoS and
// merged fleet telemetry. See internal/array for the determinism
// design (round-based scheduling with order-sensitive merges at
// barriers, never in completion order).

// Array stripes a volume address space across N independent drives,
// each a full dispatcher + FTL instance with decorrelated seeds.
type Array = array.Array

// ArrayConfig shapes an Array: drive count and geometry, stripe unit,
// host cache, tenant QoS population and codec family.
type ArrayConfig = array.Config

// ArrayOp is one tenant operation against the volume address space.
type ArrayOp = array.Op

// ArrayResult reports one completed ArrayOp in deterministic schedule
// order.
type ArrayResult = array.Result

// ArrayCacheConfig shapes the host-side read cache / write-back buffer
// (capacity in volume pages, eviction policy name, flush watermarks).
type ArrayCacheConfig = array.CacheConfig

// ArrayCacheStats is the cache telemetry block of a fleet report.
type ArrayCacheStats = array.CacheStats

// ArrayTenant declares one QoS tenant: a token-bucket rate (ops per
// modelled second; 0 = unthrottled) and burst.
type ArrayTenant = array.TenantConfig

// ArrayTenantStats is the per-tenant telemetry block of a fleet report.
type ArrayTenantStats = array.TenantStats

// FleetReport is the merged fleet telemetry: per-drive wear/retry/
// soft-sense/UBER climate, cache and tenant stats, and fleet totals.
type FleetReport = array.FleetReport

// FleetDriveReport is one drive's section of a FleetReport.
type FleetDriveReport = array.DriveReport

// FleetTotals sums the per-drive climates and derives the fleet UBER.
type FleetTotals = array.FleetTotals

// ArrayFaultPlan is the deterministic drive-fault schedule: per-drive
// fail-stop rounds/times, transient error rates, latency degradation
// and UBER-climate death, all derived from the plan seed so two runs
// of the same plan inject identical faults.
type ArrayFaultPlan = array.FaultPlan

// ArrayDriveFault is one drive's entry in an ArrayFaultPlan.
type ArrayDriveFault = array.DriveFault

// ArrayHealthTransition is one recorded health-state change
// (healthy → suspect → degraded → dead → rebuilding → restored).
type ArrayHealthTransition = array.HealthTransition

// ArrayRebuildReport documents one spare rebuild: pages and bytes
// reconstructed, checkpoints, losses, and the achieved rebuild rate.
type ArrayRebuildReport = array.RebuildReport

// ErrArrayClosed is returned by Submit/Drain/Flush after Close.
// (The root ErrClosed name belongs to the single-drive dispatcher.)
var ErrArrayClosed = array.ErrClosed

// ErrArrayDriveDead reports an op refused because its slot's drive is
// dead and no redundancy could absorb the request.
var ErrArrayDriveDead = array.ErrDriveDead

// OpenArray opens a striped multi-drive array of fresh drives.
//
//	a, err := xlnand.OpenArray(xlnand.ArrayConfig{
//		Drives: 16,
//		Seed:   42,
//		Cache:  xlnand.ArrayCacheConfig{Pages: 256, Policy: "lru"},
//		Tenants: []xlnand.ArrayTenant{
//			{Name: "oltp"},
//			{Name: "scan", Rate: 2000, Burst: 64},
//		},
//	})
//
// Submit ops, Drain for deterministic results, Report for the merged
// fleet telemetry, then Close.
func OpenArray(cfg ArrayConfig) (*Array, error) { return array.New(cfg) }
