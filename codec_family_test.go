package xlnand

import (
	"bytes"
	"context"
	"time"
	"testing"

	"xlnand/internal/dispatch"
	"xlnand/internal/nand"
)

// TestWithCodecLDPCRoundTrip: the LDPC family behind Open works through
// the public queue API — write, read, family register, level recovery.
func TestWithCodecLDPCRoundTrip(t *testing.T) {
	s, err := Open(WithCodec(CodecLDPC), WithBlocks(4), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	data := make([]byte, s.PageSize())
	for i := range data {
		data[i] = byte(i * 31)
	}
	wr, err := s.WritePage(0, 0, data)
	if err != nil {
		t.Fatal(err)
	}
	maxLvl := s.Dispatcher().Codec().MaxLevel()
	if wr.T < 0 || wr.T > maxLvl {
		t.Fatalf("write level %d outside LDPC rate range [0,%d]", wr.T, maxLvl)
	}
	rd, err := s.ReadPage(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rd.Data, data) {
		t.Fatal("LDPC round trip corrupted data")
	}
	if rd.T != wr.T {
		t.Fatalf("read level %d, wrote %d", rd.T, wr.T)
	}
}

// TestWithCodecLDPCSoftRecoveryThroughQueue ages a block past every
// hard reference shift and checks the whole public pipeline: the read
// recovers through the soft-decision rung, the completion reports the
// component senses, and the modelled timeline visibly pays for them.
func TestWithCodecLDPCSoftRecoveryThroughQueue(t *testing.T) {
	steps := nand.DefaultStressConfig().RetrySteps
	s, err := Open(WithCodec(CodecLDPC), WithBlocks(4), WithSeed(31),
		WithReadRetry(steps+1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	data := make([]byte, s.PageSize())
	for i := range data {
		data[i] = byte(i * 7)
	}
	// Deep-bake corner: raw errors past the hard caps at every ladder
	// step, inside the soft capability (see controller soft tests).
	if err := s.AgeBlock(0, 2e7); err != nil {
		t.Fatal(err)
	}
	const pages = 4
	for p := 0; p < pages; p++ {
		if _, err := s.WritePage(0, p, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Dispatcher().AdvanceTime(1e5); err != nil {
		t.Fatal(err)
	}
	q := s.NewQueue()
	softSaved := 0
	for p := 0; p < pages; p++ {
		comp, err := q.Do(context.Background(), dispatch.Request{
			Op: dispatch.OpRead, Block: 0, Page: p,
		})
		if err != nil {
			continue // a lost page is possible at this climate; soft must save some
		}
		if !bytes.Equal(comp.Data, data) {
			t.Fatalf("page %d: recovered data differs", p)
		}
		if comp.SoftSenses == 0 {
			continue // lucky hard rung
		}
		softSaved++
		if comp.Retries != steps+1 {
			t.Fatalf("page %d: %d retries, want %d", p, comp.Retries, steps+1)
		}
		// The timeline must charge every hard sense plus the multi-sense
		// soft read: strictly more than the hard-ladder-only cost of the
		// same stages.
		if comp.Latency() < comp.Read.Latency.Total() {
			t.Fatalf("page %d: completion span %v below controller latency %v",
				p, comp.Latency(), comp.Read.Latency.Total())
		}
		wantTR := time.Duration(steps+1+comp.SoftSenses) * nand.PageReadTime
		if comp.Read.Latency.TR != wantTR {
			t.Fatalf("page %d: sensing time %v, want %v", p, comp.Read.Latency.TR, wantTR)
		}
	}
	if softSaved == 0 {
		t.Fatal("no page was saved by the soft rung through the public API")
	}
}

// TestWithSoftRetryDisablesSoftRung: WithSoftRetry(0) keeps even deep
// budgets on the hard ladder.
func TestWithSoftRetryDisablesSoftRung(t *testing.T) {
	steps := nand.DefaultStressConfig().RetrySteps
	s, err := Open(WithCodec(CodecLDPC), WithBlocks(4), WithSeed(31),
		WithReadRetry(steps+4), WithSoftRetry(0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	data := make([]byte, s.PageSize())
	if err := s.AgeBlock(0, 2e7); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WritePage(0, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := s.Dispatcher().AdvanceTime(1e5); err != nil {
		t.Fatal(err)
	}
	rd, err := s.ReadPage(0, 0)
	if rd.SoftSenses != 0 {
		t.Fatalf("soft rung ran with WithSoftRetry(0): %+v", rd)
	}
	_ = err // the page may well be lost without the soft rung; that is the point
}

// TestCodecFamilyBCHDefault: the default family stays BCH and its level
// semantics are unchanged t.
func TestCodecFamilyBCHDefault(t *testing.T) {
	s := openTest(t)
	defer s.Close()
	if got := s.Dispatcher().Codec().Family(); got != CodecBCH {
		t.Fatalf("default family %v, want BCH", got)
	}
	if got := s.Dispatcher().Codec().MaxLevel(); got != 65 {
		t.Fatalf("BCH max level %d, want 65", got)
	}
}
