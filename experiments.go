package xlnand

import (
	"xlnand/internal/experiments"
	"xlnand/internal/plot"
)

// Figure is a plot-ready experiment result: named series plus axis
// metadata, renderable with RenderASCII/RenderTable/RenderCSV.
type Figure = experiments.Figure

// Experiment describes one reproducible figure of the paper.
type Experiment struct {
	ID          string
	Description string
}

// Experiments lists every figure and ablation the harness can regenerate,
// in paper order.
func Experiments() []Experiment {
	rs := experiments.All()
	out := make([]Experiment, len(rs))
	for i, r := range rs {
		out[i] = Experiment{ID: r.ID, Description: r.Description}
	}
	return out
}

// RunExperiment regenerates one figure by ID (e.g. "fig05", "fig11",
// "abl-blocksize") with the paper's default environment.
func RunExperiment(id string, seed uint64) (Figure, error) {
	r, err := experiments.ByID(id)
	if err != nil {
		return Figure{}, err
	}
	return r.Run(DefaultEnv(), seed)
}

// RenderASCII renders a figure as an ASCII chart of the given size.
func RenderASCII(f Figure, width, height int) string { return plot.ASCII(f, width, height) }

// RenderTable renders a figure as an aligned data table.
func RenderTable(f Figure) string { return plot.Table(f) }

// RenderCSV renders a figure as long-format CSV (series,x,y).
func RenderCSV(f Figure) string { return plot.CSV(f) }
