package xlnand

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"xlnand/internal/stats"
)

func openTest(t *testing.T) *Subsystem {
	t.Helper()
	s, err := Open(Options{Blocks: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func pageOf(seed uint64, size int) []byte {
	r := stats.NewRNG(seed)
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(r.Intn(256))
	}
	return data
}

func TestOpenDefaults(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.PageSize() != 4096 || s.Blocks() != 8 || s.PagesPerBlock() != 64 {
		t.Fatalf("default geometry: %d/%d/%d", s.PageSize(), s.Blocks(), s.PagesPerBlock())
	}
	if s.Mode() != ModeNominal {
		t.Fatal("default mode not nominal")
	}
}

func TestOpenRejectsNegativeBlocks(t *testing.T) {
	if _, err := Open(Options{Blocks: -1}); err == nil {
		t.Fatal("negative blocks accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := openTest(t)
	data := pageOf(1, s.PageSize())
	if _, err := s.WritePage(0, 0, data); err != nil {
		t.Fatal(err)
	}
	rd, err := s.ReadPage(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rd.Data, data) {
		t.Fatal("round trip corrupted data")
	}
}

func TestModeSwitchingChangesBehaviour(t *testing.T) {
	s := openTest(t)
	if err := s.AgeBlock(0, 1e6); err != nil {
		t.Fatal(err)
	}
	if err := s.AgeBlock(1, 1e6); err != nil {
		t.Fatal(err)
	}
	if err := s.SelectMode(ModeNominal); err != nil {
		t.Fatal(err)
	}
	nom, err := s.WritePage(0, 0, pageOf(2, s.PageSize()))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SelectMode(ModeMaxRead); err != nil {
		t.Fatal(err)
	}
	fast, err := s.WritePage(1, 0, pageOf(3, s.PageSize()))
	if err != nil {
		t.Fatal(err)
	}
	if fast.Alg != ISPPDV || nom.Alg != ISPPSV {
		t.Fatalf("modes did not steer the algorithm: %v/%v", nom.Alg, fast.Alg)
	}
	if fast.T >= nom.T {
		t.Fatalf("max-read t=%d not relaxed vs nominal t=%d", fast.T, nom.T)
	}
	// Both decode fine.
	if _, err := s.ReadPage(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadPage(1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestMinUBERModeKeepsNominalT(t *testing.T) {
	s := openTest(t)
	if err := s.AgeBlock(0, 1e6); err != nil {
		t.Fatal(err)
	}
	if err := s.AgeBlock(1, 1e6); err != nil {
		t.Fatal(err)
	}
	if err := s.SelectMode(ModeNominal); err != nil {
		t.Fatal(err)
	}
	nom, err := s.WritePage(0, 0, pageOf(4, s.PageSize()))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SelectMode(ModeMinUBER); err != nil {
		t.Fatal(err)
	}
	min, err := s.WritePage(1, 0, pageOf(5, s.PageSize()))
	if err != nil {
		t.Fatal(err)
	}
	if min.T != nom.T {
		t.Fatalf("min-UBER t=%d differs from nominal t=%d", min.T, nom.T)
	}
	if min.Alg != ISPPDV {
		t.Fatal("min-UBER did not switch the physical layer")
	}
}

func TestSelectModeRejectsUnknown(t *testing.T) {
	s := openTest(t)
	if err := s.SelectMode(Mode(99)); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestUncorrectableSurfaced(t *testing.T) {
	// The recovery ladder would rescue this deliberately
	// under-provisioned page (the wear-drift share of its errors is
	// exactly what shifted references remove), so the single-shot path
	// is requested explicitly to exercise the failure surface.
	s, err := Open(Options{Blocks: 4, Seed: 7}, WithReadRetry(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	s.SetCapability(3)
	if err := s.AgeBlock(0, 1e6); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WritePage(0, 0, pageOf(6, s.PageSize())); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadPage(0, 0); !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("want ErrUncorrectable, got %v", err)
	}
	if s.Uncorrectables() == 0 {
		t.Fatal("uncorrectable counter not incremented")
	}
}

func TestEvaluateModeMetrics(t *testing.T) {
	s := openTest(t)
	nom, err := s.EvaluateMode(ModeNominal, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := s.EvaluateMode(ModeMaxRead, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if gain := fast.ReadMBps/nom.ReadMBps - 1; gain < 0.15 {
		t.Fatalf("EOL read gain %.0f%% too small", gain*100)
	}
	minU, err := s.EvaluateMode(ModeMinUBER, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Log10(nom.UBER)-math.Log10(minU.UBER) < 2 {
		t.Fatal("min-UBER boost below two decades")
	}
}

func TestLifetimeSweep(t *testing.T) {
	s := openTest(t)
	pts, err := s.LifetimeSweep([]float64{1, 1e3, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("sweep has %d points", len(pts))
	}
	for _, p := range pts {
		if p.MaxRead.T > p.Nominal.T {
			t.Fatal("max-read t above nominal in sweep")
		}
	}
	if pts[2].Nominal.T <= pts[0].Nominal.T {
		t.Fatal("nominal t did not grow with wear")
	}
}

func TestRequiredTSchedulePublic(t *testing.T) {
	s := openTest(t)
	if got := s.RequiredT(ISPPSV, 0); got != 3 {
		t.Fatalf("fresh SV t=%d", got)
	}
	if got := s.RequiredT(ISPPSV, 1e6); got < 60 {
		t.Fatalf("EOL SV t=%d", got)
	}
}

func TestParetoAndFilters(t *testing.T) {
	s := openTest(t)
	pts, err := s.ExploreOperatingPoints(1e5, 8)
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFront(pts)
	if len(front) == 0 {
		t.Fatal("empty Pareto front")
	}
	ok := MeetsUBER(pts, 1e-11)
	for _, p := range ok {
		if p.UBER > 1e-11 {
			t.Fatal("MeetsUBER filter broken")
		}
	}
}

func TestPublicCodecRoundTrip(t *testing.T) {
	codec, err := NewCodec(16, 1024, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	msg := pageOf(8, 128)
	cw, err := codec.EncodeCodeword(5, msg)
	if err != nil {
		t.Fatal(err)
	}
	cw[3] ^= 0x10
	cw[60] ^= 0x01
	n, err := codec.Decode(5, cw)
	if err != nil || n != 2 {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if !bytes.Equal(cw[:128], msg) {
		t.Fatal("codec round trip failed")
	}
}

func TestPublicUBERHelpers(t *testing.T) {
	if UBER(33808, 65, 1e-3) <= 0 {
		t.Fatal("UBER helper broken")
	}
	if UBERTail(33808, 65, 1e-3) < UBER(33808, 65, 1e-3) {
		t.Fatal("tail below dominant term")
	}
	tc, err := RequiredT(16, 32768, 1e-6, 1e-11, 65)
	if err != nil || tc != 3 {
		t.Fatalf("RequiredT = %d, %v", tc, err)
	}
	if RBER(ISPPDV, 1e6) >= RBER(ISPPSV, 1e6) {
		t.Fatal("RBER helper ordering broken")
	}
}

func TestExperimentRegistryAndRender(t *testing.T) {
	exps := Experiments()
	if len(exps) < 13 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	f, err := RunExperiment("fig05", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(RenderASCII(f, 60, 15), "RBER ISPP-SV") {
		t.Fatal("ASCII render incomplete")
	}
	if !strings.Contains(RenderTable(f), "RBER ISPP-DV") {
		t.Fatal("table render incomplete")
	}
	if !strings.HasPrefix(RenderCSV(f), "series,x,y\n") {
		t.Fatal("CSV render incomplete")
	}
	if _, err := RunExperiment("nope", 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
