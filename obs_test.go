package xlnand

import (
	"bytes"
	"strings"
	"testing"
)

// TestWithTraceDeterministic pins the root observability contract: a
// traced sub-system exports byte-identical trace JSON and metrics text
// across identical seeded runs, and the exports carry the expected
// span names and series families.
func TestWithTraceDeterministic(t *testing.T) {
	run := func() ([]byte, []byte) {
		tr := NewTracer()
		sys, err := Open(WithBlocks(2), WithDies(2), WithSeed(5), WithTrace(tr))
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		data := pageOf(3, sys.PageSize())
		for p := 0; p < 4; p++ {
			if _, err := sys.WritePage(0, p, data); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.ReadPage(0, p); err != nil {
				t.Fatal(err)
			}
		}
		reg := NewRegistry()
		sys.PublishMetrics(reg)
		return tr.JSON(), reg.PrometheusText()
	}
	j1, m1 := run()
	j2, m2 := run()
	if !bytes.Equal(j1, j2) {
		t.Fatal("trace exports diverged between identical runs")
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("metrics exports diverged between identical runs")
	}
	for _, want := range []string{`"sense"`, `"decode"`, `"program"`, `"subsystem"`} {
		if !strings.Contains(string(j1), want) {
			t.Errorf("trace missing %s", want)
		}
	}
	for _, want := range []string{"nand_clean_reads_total", "dispatch_vtime_seconds"} {
		if !strings.Contains(string(m1), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
