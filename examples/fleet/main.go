// Fleet quickstart: open a 16-drive striped volume behind a host cache,
// run two tenants against it — a latency-sensitive one unthrottled, a
// background scanner under a token bucket — and read the merged fleet
// telemetry: cache hit rate, per-tenant fairness, per-drive wear.
//
// The run is deterministic: the drives execute concurrently, but every
// order-sensitive merge happens at a barrier in drive-index order, so
// the same seed always prints the same numbers.
package main

import (
	"fmt"
	"log"

	"xlnand"
)

func main() {
	a, err := xlnand.OpenArray(xlnand.ArrayConfig{
		Drives:       16,
		DiesPerDrive: 1,
		BlocksPerDie: 4,
		Seed:         42,
		Cache:        xlnand.ArrayCacheConfig{Pages: 96, Policy: "lru"},
		Tenants: []xlnand.ArrayTenant{
			{Name: "latency"},                     // unthrottled
			{Name: "scan", Rate: 2000, Burst: 16}, // 2000 ops/modelled-second
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	fmt.Printf("volume: %d pages of %d bytes striped over 16 drives\n",
		a.VolumePages(), a.PageBytes())

	// Fill a working set. Writes land in the write-back buffer and reach
	// the drives on eviction or flush.
	const workingSet = 160
	page := func(i int) []byte {
		data := make([]byte, a.PageBytes())
		for j := range data {
			data[j] = byte(i*31 + j)
		}
		return data
	}
	for p := 0; p < workingSet; p++ {
		if err := a.Submit(xlnand.ArrayOp{Tenant: "latency", Write: true, Page: p, Data: page(p)}); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := a.Drain(); err != nil {
		log.Fatal(err)
	}

	// Both tenants hammer the working set: the scanner streams it in
	// order, the latency tenant re-reads a hot subset that fits the
	// cache.
	for round := 0; round < 6; round++ {
		for p := 0; p < workingSet; p++ {
			if err := a.Submit(xlnand.ArrayOp{Tenant: "scan", Page: p}); err != nil {
				log.Fatal(err)
			}
			if err := a.Submit(xlnand.ArrayOp{Tenant: "latency", Page: p % 64}); err != nil {
				log.Fatal(err)
			}
		}
		results, err := a.Drain()
		if err != nil {
			log.Fatal(err)
		}
		hits := 0
		for _, r := range results {
			if r.Err != nil {
				log.Fatalf("%s read of page %d failed: %v", r.Tenant, r.Page, r.Err)
			}
			if r.CacheHit {
				hits++
			}
		}
		fmt.Printf("round %d: %d ops, %d served from host cache, clock %v\n",
			round, len(results), hits, a.Clock())
	}

	// The merged fleet report: cache climate, tenant fairness, and the
	// per-drive telemetry in drive-index order.
	rep := a.Report()
	fmt.Println()
	fmt.Print(rep.Summary())
	fmt.Printf("\ncache hit rate: %.1f%%\n", rep.Cache.HitRate()*100)
	for _, tn := range rep.Tenants {
		fmt.Printf("tenant %-8s reads %4d writes %4d throttled-passes %d\n",
			tn.Name, tn.Reads, tn.Writes, tn.Throttled)
	}
}
