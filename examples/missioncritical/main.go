// Mission-critical scenario (paper §6.3.1): an OS-upgrade-style critical
// store switches the physical layer to ISPP-DV while keeping the nominal
// ECC configuration, buying orders of magnitude of UBER at zero read-
// throughput cost.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"xlnand"
)

func main() {
	sys, err := xlnand.Open(xlnand.WithBlocks(2), xlnand.WithSeed(13))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fmt.Println("UBER minimisation for critical data (OS images, secure transactions)")
	fmt.Println()
	fmt.Printf("%10s | %22s | %22s | %8s\n", "P/E cycles",
		"nominal UBER (SV)", "min-UBER mode (DV)", "decades")
	for _, wear := range []float64{1e2, 1e4, 1e6} {
		nom, err := sys.EvaluateMode(xlnand.ModeNominal, wear)
		if err != nil {
			log.Fatal(err)
		}
		crit, err := sys.EvaluateMode(xlnand.ModeMinUBER, wear)
		if err != nil {
			log.Fatal(err)
		}
		decades := math.Log10(nom.UBER) - math.Log10(crit.UBER)
		fmt.Printf("%10.0g | %22.3e | %22.3e | %8.1f\n",
			wear, nom.UBER, crit.UBER, decades)
		if crit.ReadLatency != nom.ReadLatency {
			log.Fatalf("read latency changed: %v vs %v", crit.ReadLatency, nom.ReadLatency)
		}
	}
	fmt.Println("\nread latency identical in both modes (same ECC configuration);")

	// The cost side: write throughput and device power.
	nom, _ := sys.EvaluateMode(xlnand.ModeNominal, 1e4)
	crit, _ := sys.EvaluateMode(xlnand.ModeMinUBER, 1e4)
	fmt.Printf("cost: write %.2f -> %.2f MB/s (-%.0f%%), device power +%.1f mW\n",
		nom.WriteMBps, crit.WriteMBps,
		(1-crit.WriteMBps/nom.WriteMBps)*100,
		(crit.ProgramPowerW-nom.ProgramPowerW)*1e3)

	// Store a critical payload with a per-request min-UBER override — no
	// global mode switch, so surrounding traffic keeps its own level —
	// and verify integrity.
	if err := sys.AgeBlock(0, 1e4); err != nil {
		log.Fatal(err)
	}
	image := make([]byte, sys.PageSize())
	for i := range image {
		image[i] = byte(i>>3 ^ i)
	}
	q := sys.NewQueue()
	ctx := context.Background()
	req := xlnand.WriteRequest(0, 0, 0, image)
	req.Mode = xlnand.ModeMinUBER.Ptr()
	wr, err := q.Do(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	rd, err := q.Do(ctx, xlnand.ReadRequest(0, 0, 0))
	if err != nil {
		log.Fatal(err)
	}
	for i := range image {
		if rd.Data[i] != image[i] {
			log.Fatal("critical payload corrupted")
		}
	}
	fmt.Printf("\ncritical page stored with %s at t=%d and verified intact "+
		"(%d raw errors corrected)\n", wr.Alg, wr.T, rd.Corrected)
}
