// Endurance walk-through: sweep the device lifetime and watch the
// self-adaptive reliability manager re-size the ECC capability as the raw
// bit error rate degrades — the staircase behind the paper's Fig. 8 — and
// how the three service levels trade off at each age.
package main

import (
	"fmt"
	"log"

	"xlnand"
)

func main() {
	sys, err := xlnand.Open(xlnand.WithBlocks(1), xlnand.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	grid := []float64{1, 1e2, 1e3, 1e4, 1e5, 3e5, 1e6}
	points, err := sys.LifetimeSweep(grid)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Adaptive capability schedule and mode metrics across the lifetime")
	fmt.Println()
	fmt.Printf("%10s | %14s | %6s %6s | %11s %11s | %9s\n",
		"P/E cycles", "RBER (SV)", "t(SV)", "t(DV)", "nom read", "fast read", "read gain")
	for _, p := range points {
		gain := p.MaxRead.ReadMBps/p.Nominal.ReadMBps - 1
		fmt.Printf("%10.0g | %14.2e | %6d %6d | %8.2f MB/s %8.2f MB/s | %8.1f%%\n",
			p.Cycles, p.Nominal.RBER, p.Nominal.T, p.MaxRead.T,
			p.Nominal.ReadMBps, p.MaxRead.ReadMBps, gain*100)
	}

	// Show the schedule actually engaging on the device: write the same
	// block at increasing wear and report the capability the manager
	// picked.
	fmt.Println("\nmanager-selected capability on live writes:")
	data := make([]byte, sys.PageSize())
	for i, wear := range []float64{1, 1e4, 1e6} {
		if err := sys.AgeBlock(0, wear); err != nil {
			log.Fatal(err)
		}
		wr, err := sys.WritePage(0, i, data)
		if err != nil {
			log.Fatal(err)
		}
		rd, err := sys.ReadPage(0, i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wear %8.0g: wrote at t=%d, read back with %d error(s) corrected\n",
			wear, wr.T, rd.Corrected)
	}
}
