// Endurance walk-through: sweep the device lifetime and watch the
// self-adaptive reliability manager re-size the ECC capability as the raw
// bit error rate degrades — the staircase behind the paper's Fig. 8 — and
// how the three service levels trade off at each age. The final section
// replays the same story as a measured biography: the deterministic
// lifetime scenario engine drives the full stack from fresh silicon to
// end of life and reports what the device actually experienced.
package main

import (
	"fmt"
	"log"
	"os"

	"xlnand"
	"xlnand/internal/lifetime"
)

func main() {
	sys, err := xlnand.Open(xlnand.WithBlocks(1), xlnand.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	grid := []float64{1, 1e2, 1e3, 1e4, 1e5, 3e5, 1e6}
	points, err := sys.LifetimeSweep(grid)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Adaptive capability schedule and mode metrics across the lifetime")
	fmt.Println()
	fmt.Printf("%10s | %14s | %6s %6s | %11s %11s | %9s\n",
		"P/E cycles", "RBER (SV)", "t(SV)", "t(DV)", "nom read", "fast read", "read gain")
	for _, p := range points {
		gain := p.MaxRead.ReadMBps/p.Nominal.ReadMBps - 1
		fmt.Printf("%10.0g | %14.2e | %6d %6d | %8.2f MB/s %8.2f MB/s | %8.1f%%\n",
			p.Cycles, p.Nominal.RBER, p.Nominal.T, p.MaxRead.T,
			p.Nominal.ReadMBps, p.MaxRead.ReadMBps, gain*100)
	}

	// Show the schedule actually engaging on the device: write the same
	// block at increasing wear and report the capability the manager
	// picked.
	fmt.Println("\nmanager-selected capability on live writes:")
	data := make([]byte, sys.PageSize())
	for i, wear := range []float64{1, 1e4, 1e6} {
		if err := sys.AgeBlock(0, wear); err != nil {
			log.Fatal(err)
		}
		wr, err := sys.WritePage(0, i, data)
		if err != nil {
			log.Fatal(err)
		}
		rd, err := sys.ReadPage(0, i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wear %8.0g: wrote at t=%d, read back with %d error(s) corrected\n",
			wear, wr.T, rd.Corrected)
	}

	// The analytic staircase above predicts the trade-off; the scenario
	// engine measures it. The read-archive biography streams a filled
	// partition across the whole lifetime under retention bakes and read
	// disturb, with the background scrubber running and the wear-ladder
	// policy walking the partition from nominal to max-read service —
	// seed-reproducible, so this table is identical on every run.
	fmt.Println("\nmeasured biography (lifetime scenario engine, scenario read-archive):")
	rep, err := lifetime.Run(lifetime.ReadIntensiveArchive())
	if err != nil {
		log.Fatal(err)
	}
	rep.WriteTable(os.Stdout)
	last := rep.Phases[len(rep.Phases)-1]
	fmt.Printf("\nend of life reached at %.0f P/E cycles in %s mode: %.2f MB/s reads, %d bits corrected, %d reads lost\n",
		last.WearMax, last.Partitions[0].Mode, last.ReadMBps, rep.Totals.CorrectedBits, rep.Totals.UncorrectableReads)
}
