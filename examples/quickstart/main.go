// Quickstart: open a simulated MLC NAND sub-system, write a page, age the
// device, read the page back and watch the adaptive BCH codec repair the
// raw bit errors.
package main

import (
	"fmt"
	"log"

	"xlnand"
)

func main() {
	// Open a sub-system with the paper's defaults: 4 KB pages, adaptive
	// BCH over GF(2^16) with t in [3, 65], UBER target 1e-11.
	sys, err := xlnand.Open(xlnand.Options{Blocks: 2, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// Write a page of recognisable data.
	data := make([]byte, sys.PageSize())
	for i := range data {
		data[i] = byte(i * 31)
	}
	wr, err := sys.WritePage(0, 0, data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote page 0.0 with %s at t=%d (%d parity bytes, program %v)\n",
		wr.Alg, wr.T, wr.ParityBy, wr.Latency.Program)

	// Read it back on the fresh device: errors are very rare.
	rd, err := sys.ReadPage(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fresh read: %d bit error(s) corrected, latency %v\n",
		rd.Corrected, rd.Latency.Total())

	// Fast-forward the block to 100k program/erase cycles and store a
	// page there: the reliability manager raises t automatically.
	if err := sys.AgeBlock(1, 1e5); err != nil {
		log.Fatal(err)
	}
	wrAged, err := sys.WritePage(1, 0, data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aged block write: manager raised capability to t=%d\n", wrAged.T)

	rdAged, err := sys.ReadPage(1, 0)
	if err != nil {
		log.Fatal(err)
	}
	match := "content intact"
	for i := range data {
		if rdAged.Data[i] != data[i] {
			match = "CONTENT CORRUPTED"
			break
		}
	}
	fmt.Printf("aged read: %d bit error(s) corrected, %s, latency %v\n",
		rdAged.Corrected, match, rdAged.Latency.Total())
}
