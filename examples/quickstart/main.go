// Quickstart: open a simulated MLC NAND sub-system, write a page, age the
// device, read the page back and watch the adaptive BCH codec repair the
// raw bit errors — then submit a batch through the asynchronous queue
// across two dies.
package main

import (
	"context"
	"fmt"
	"log"

	"xlnand"
)

func main() {
	// Open a sub-system with the paper's defaults: 4 KB pages, adaptive
	// BCH over GF(2^16) with t in [3, 65], UBER target 1e-11 — here with
	// two dies behind the controller. (Add
	// xlnand.WithCodec(xlnand.CodecLDPC) to swap the ECC family for the
	// soft-decision LDPC codec; with WithReadRetry opened one rung past
	// the hard ladder, a failing read then ends in a multi-sense soft
	// decode instead of data loss.)
	sys, err := xlnand.Open(
		xlnand.WithDies(2),
		xlnand.WithBlocks(2),
		xlnand.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Write a page of recognisable data (blocking convenience path).
	data := make([]byte, sys.PageSize())
	for i := range data {
		data[i] = byte(i * 31)
	}
	wr, err := sys.WritePage(0, 0, data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote page 0.0 with %s at t=%d (%d parity bytes, program %v)\n",
		wr.Alg, wr.T, wr.ParityBy, wr.Latency.Program)

	// Read it back on the fresh device: errors are very rare.
	rd, err := sys.ReadPage(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fresh read: %d bit error(s) corrected, latency %v\n",
		rd.Corrected, rd.Latency.Total())

	// Fast-forward a block to 100k program/erase cycles and store a
	// page there: the reliability manager raises t automatically.
	if err := sys.AgeBlock(1, 1e5); err != nil {
		log.Fatal(err)
	}
	wrAged, err := sys.WritePage(1, 0, data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aged block write: manager raised capability to t=%d\n", wrAged.T)

	rdAged, err := sys.ReadPage(1, 0)
	if err != nil {
		log.Fatal(err)
	}
	match := "content intact"
	for i := range data {
		if rdAged.Data[i] != data[i] {
			match = "CONTENT CORRUPTED"
			break
		}
	}
	// Every read reports its recovery-ladder climate: Retries counts the
	// re-senses at shifted read references a failing decode triggered
	// (0 = first sense decoded), AppliedOffset is the reference step of
	// the final sense, and Latency sums every stage (rd.Stages holds the
	// per-stage split when the ladder engaged). The budget is an Open
	// option: xlnand.WithReadRetry(n).
	fmt.Printf("aged read: %d bit error(s) corrected, %s, latency %v (%d retries, offset step %d)\n",
		rdAged.Corrected, match, rdAged.Latency.Total(), rdAged.Retries, rdAged.AppliedOffset)

	// The batched path: submit writes and reads across both dies in one
	// call; array operations overlap while bus and codec serialise.
	q := sys.NewQueue()
	ctx := context.Background()
	var batch []xlnand.Request
	for die := 0; die < sys.Dies(); die++ {
		for p := 1; p < 5; p++ {
			batch = append(batch, xlnand.WriteRequest(die, 0, p, data))
		}
	}
	for die := 0; die < sys.Dies(); die++ {
		for p := 1; p < 5; p++ {
			batch = append(batch, xlnand.ReadRequest(die, 0, p))
		}
	}
	comps, err := q.Submit(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}
	start, finish := comps[0].Start, comps[0].Finish
	var sequential int64
	corrected := 0
	for _, c := range comps {
		if c.Err != nil {
			log.Fatal(c.Err)
		}
		corrected += c.Corrected
		sequential += int64(c.Latency())
		if c.Start < start {
			start = c.Start
		}
		if c.Finish > finish {
			finish = c.Finish
		}
	}
	makespan := int64(finish - start)
	fmt.Printf("queued %d ops over %d dies: modelled makespan %.2fms "+
		"(%.2fms if fully serialised), %d error(s) corrected\n",
		len(comps), sys.Dies(), float64(makespan)/1e6, float64(sequential)/1e6, corrected)
}
