// Partitioned storage (paper §7 future work): one three-die array
// exposing three differentiated storage services, each running at its
// own cross-layer operating point — min-UBER for the OS image, max-read
// for media, nominal for scratch data — with garbage collection and
// wear levelling underneath, and every partition's blocks striped
// across the dies.
package main

import (
	"fmt"
	"log"

	"xlnand"
)

func main() {
	sys, err := xlnand.Open(
		xlnand.WithDies(3),
		xlnand.WithBlocks(3),
		xlnand.WithSeed(21),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	st, err := sys.NewStorage([]xlnand.PartitionSpec{
		{Name: "system", Blocks: 2, Mode: xlnand.ModeMinUBER},
		{Name: "media", Blocks: 4, Mode: xlnand.ModeMaxRead},
		{Name: "scratch", Blocks: 3, Mode: xlnand.ModeNominal},
	})
	if err != nil {
		log.Fatal(err)
	}

	page := func(tag byte) []byte {
		d := make([]byte, sys.PageSize())
		for i := range d {
			d[i] = tag ^ byte(i)
		}
		return d
	}

	// OS image into the high-reliability partition.
	for lpa := 0; lpa < 16; lpa++ {
		if err := st.Write("system", lpa, page(0xA0)); err != nil {
			log.Fatal(err)
		}
	}
	// Media library into the read-optimised partition; stream it twice.
	for lpa := 0; lpa < 48; lpa++ {
		if err := st.Write("media", lpa, page(0xB0)); err != nil {
			log.Fatal(err)
		}
	}
	for rep := 0; rep < 2; rep++ {
		for lpa := 0; lpa < 48; lpa++ {
			if _, _, err := st.Read("media", lpa); err != nil {
				log.Fatal(err)
			}
		}
	}
	// Churny scratch traffic: small working set overwritten far past the
	// partition's raw size, exercising garbage collection.
	for i := 0; i < 400; i++ {
		if err := st.Write("scratch", i%24, page(0xC0)); err != nil {
			log.Fatal(err)
		}
	}

	// Verify one page per partition.
	for _, part := range []string{"system", "media", "scratch"} {
		data, res, err := st.Read(part, 0)
		if err != nil {
			log.Fatal(err)
		}
		_ = data
		fmt.Printf("%-8s read ok: algorithm %s, t=%d, %d error(s) corrected\n",
			part, res.Alg, res.T, res.Corrected)
	}

	fmt.Println("\nper-partition service statistics:")
	stats, err := st.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %-9s %7s %7s %8s %7s %5s %7s %10s\n",
		"name", "mode", "writes", "reads", "gc-moves", "erases", "WA", "wear", "svc time")
	for _, ps := range stats {
		fmt.Printf("%-8s %-9s %7d %7d %8d %7d %5.2f %3.0f..%-3.0f %10v\n",
			ps.Name, ps.Mode, ps.HostWrites, ps.HostReads, ps.GCMoves,
			ps.Erases, ps.WriteAmplification, ps.WearMin, ps.WearMax, ps.ServiceTime)
	}
}
