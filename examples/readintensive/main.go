// Read-intensive scenario (paper §6.3.2): a multimedia workload on a worn
// device compares the nominal configuration against the cross-layer
// max-read mode — ISPP-DV programming with the ECC relaxed to hold
// UBER = 1e-11 — and measures the read-throughput gain.
package main

import (
	"fmt"
	"log"

	"xlnand"
)

func main() {
	sys, err := xlnand.Open(xlnand.Options{Blocks: 2, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	const wear = 1e6 // end of life, where the gain peaks
	for b := 0; b < sys.Blocks(); b++ {
		if err := sys.AgeBlock(b, wear); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("Streaming workload on a device at %.0g P/E cycles\n\n", wear)
	fmt.Printf("%-10s %4s %10s %12s %12s %12s\n",
		"mode", "t", "UBER", "read MB/s", "write MB/s", "read latency")

	var nominal, maxRead xlnand.OperatingPoint
	for _, m := range []xlnand.Mode{xlnand.ModeNominal, xlnand.ModeMaxRead} {
		op, err := sys.EvaluateMode(m, wear)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %4d %10.1e %12.2f %12.2f %12v\n",
			m, op.T, op.UBER, op.ReadMBps, op.WriteMBps, op.ReadLatency)
		if m == xlnand.ModeNominal {
			nominal = op
		} else {
			maxRead = op
		}
	}

	gain := maxRead.ReadMBps/nominal.ReadMBps - 1
	loss := 1 - maxRead.WriteMBps/nominal.WriteMBps
	fmt.Printf("\ncross-layer result: +%.0f%% read throughput at iso-UBER, "+
		"paying %.0f%% write throughput\n", gain*100, loss*100)

	// Demonstrate it on real traffic: stream a media file through both
	// modes and compare modelled service times.
	pages := 24
	payload := make([]byte, sys.PageSize())
	for m, label := range map[xlnand.Mode]string{
		xlnand.ModeNominal: "nominal", xlnand.ModeMaxRead: "max-read",
	} {
		if err := sys.SelectMode(m); err != nil {
			log.Fatal(err)
		}
		block := 0
		if m == xlnand.ModeMaxRead {
			block = 1
		}
		var totalRead, corrected int
		var readTime float64
		for p := 0; p < pages; p++ {
			if _, err := sys.WritePage(block, p, payload); err != nil {
				log.Fatal(err)
			}
		}
		for rep := 0; rep < 4; rep++ { // each page streamed 4 times
			for p := 0; p < pages; p++ {
				rd, err := sys.ReadPage(block, p)
				if err != nil {
					log.Fatal(err)
				}
				totalRead++
				corrected += rd.Corrected
				readTime += rd.Latency.Total().Seconds()
			}
		}
		mbps := float64(totalRead*sys.PageSize()) / readTime / 1e6
		fmt.Printf("  %-9s streamed %3d page reads: %6.2f MB/s, %d bit errors corrected\n",
			label, totalRead, mbps, corrected)
	}
}
