// Read-intensive scenario (paper §6.3.2): a multimedia workload on a worn
// device compares the nominal configuration against the cross-layer
// max-read mode — ISPP-DV programming with the ECC relaxed to hold
// UBER = 1e-11 — and measures the read-throughput gain.
package main

import (
	"context"
	"fmt"
	"log"

	"xlnand"
)

func main() {
	sys, err := xlnand.Open(xlnand.WithBlocks(2), xlnand.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	const wear = 1e6 // end of life, where the gain peaks
	for b := 0; b < sys.Blocks(); b++ {
		if err := sys.AgeBlock(b, wear); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("Streaming workload on a device at %.0g P/E cycles\n\n", wear)
	fmt.Printf("%-10s %4s %10s %12s %12s %12s\n",
		"mode", "t", "UBER", "read MB/s", "write MB/s", "read latency")

	var nominal, maxRead xlnand.OperatingPoint
	for _, m := range []xlnand.Mode{xlnand.ModeNominal, xlnand.ModeMaxRead} {
		op, err := sys.EvaluateMode(m, wear)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %4d %10.1e %12.2f %12.2f %12v\n",
			m, op.T, op.UBER, op.ReadMBps, op.WriteMBps, op.ReadLatency)
		if m == xlnand.ModeNominal {
			nominal = op
		} else {
			maxRead = op
		}
	}

	gain := maxRead.ReadMBps/nominal.ReadMBps - 1
	loss := 1 - maxRead.WriteMBps/nominal.WriteMBps
	fmt.Printf("\ncross-layer result: +%.0f%% read throughput at iso-UBER, "+
		"paying %.0f%% write throughput\n", gain*100, loss*100)

	// Demonstrate it on real traffic: stream a media file through both
	// modes via the batched queue — the mode rides on each write request,
	// so no global reconfiguration separates the two streams.
	pages := 24
	payload := make([]byte, sys.PageSize())
	q := sys.NewQueue()
	ctx := context.Background()
	for _, svc := range []struct {
		label string
		mode  xlnand.Mode
		block int
	}{
		{"nominal", xlnand.ModeNominal, 0},
		{"max-read", xlnand.ModeMaxRead, 1},
	} {
		var writes []xlnand.Request
		for p := 0; p < pages; p++ {
			r := xlnand.WriteRequest(0, svc.block, p, payload)
			r.Mode = svc.mode.Ptr()
			writes = append(writes, r)
		}
		if _, err := q.Submit(ctx, writes); err != nil {
			log.Fatal(err)
		}
		var totalRead, corrected int
		var readTime float64
		for rep := 0; rep < 4; rep++ { // each page streamed 4 times
			var reads []xlnand.Request
			for p := 0; p < pages; p++ {
				reads = append(reads, xlnand.ReadRequest(0, svc.block, p))
			}
			comps, err := q.Submit(ctx, reads)
			if err != nil {
				log.Fatal(err)
			}
			for _, c := range comps {
				if c.Err != nil {
					log.Fatal(c.Err)
				}
				totalRead++
				corrected += c.Corrected
				readTime += c.Read.Latency.Total().Seconds()
			}
		}
		mbps := float64(totalRead*sys.PageSize()) / readTime / 1e6
		fmt.Printf("  %-9s streamed %3d page reads: %6.2f MB/s, %d bit errors corrected\n",
			svc.label, totalRead, mbps, corrected)
	}
}
