package xlnand

import "xlnand/internal/sim"

// DieScaling reports the throughput of an interleaved multi-die
// organisation behind one controller, with the shared bus and codec
// serialising (see internal/sim for the pipeline model).
type DieScaling = sim.DieScaling

// ScaleDies evaluates a service level's sustained throughput for a die
// count at the given wear.
func (s *Subsystem) ScaleDies(m Mode, cycles float64, dies int) (DieScaling, error) {
	return s.env.ScaleDies(m, cycles, dies)
}

// DieSweep evaluates a service level across die counts 1..maxDies.
func (s *Subsystem) DieSweep(m Mode, cycles float64, maxDies int) ([]DieScaling, error) {
	return s.env.DieSweep(m, cycles, maxDies)
}
