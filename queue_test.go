package xlnand

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fastFabric opens a sub-system whose shared stages (DDR-class bus,
// widened codec) are fast enough that die interleaving, not transfer or
// decode, dominates read scaling — the configuration the multi-die
// benchmarks and the ScaleDies cross-checks use.
func fastFabric(dies int) []Option {
	return []Option{
		WithDies(dies),
		WithBlocks(2),
		WithSeed(11),
		WithBus(BusConfig{WidthBits: 16, ClockHz: 100e6}),
		WithCodecHW(32, 64, 200e6),
	}
}

func openQueued(t testing.TB, opts ...Option) (*Subsystem, *Queue) {
	t.Helper()
	sys, err := Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys, sys.NewQueue()
}

// TestQueueMixedBatchAcrossDies is the acceptance scenario: one
// 64-request mixed read/write batch spanning 4 dies, every completion
// verified (run under go test -race in CI).
func TestQueueMixedBatchAcrossDies(t *testing.T) {
	sys, q := openQueued(t, WithDies(4), WithBlocks(2), WithSeed(3))
	ctx := context.Background()
	page := pageOf(10, sys.PageSize())

	// Seed 32 pages (8 per die) so the mixed batch has data to read.
	var setup []Request
	for die := 0; die < 4; die++ {
		for p := 0; p < 8; p++ {
			setup = append(setup, WriteRequest(die, 0, p, page))
		}
	}
	comps, err := q.Submit(ctx, setup)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range comps {
		if c.Err != nil {
			t.Fatal(c.Err)
		}
	}

	// The 64-request mixed batch: 32 reads of the seeded pages
	// interleaved with 32 writes of fresh pages, all four dies involved.
	var batch []Request
	for die := 0; die < 4; die++ {
		for p := 0; p < 8; p++ {
			batch = append(batch, ReadRequest(die, 0, p))
			batch = append(batch, WriteRequest(die, 0, 8+p, page))
		}
	}
	if len(batch) != 64 {
		t.Fatalf("batch has %d requests", len(batch))
	}
	comps, err = q.Submit(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 64 {
		t.Fatalf("%d completions", len(comps))
	}
	reads, writes := 0, 0
	for i, c := range comps {
		if c.Err != nil {
			t.Fatalf("request %d: %v", i, c.Err)
		}
		if c.Op != batch[i].Op || c.Die != batch[i].Die || c.Page != batch[i].Page {
			t.Fatalf("completion %d does not echo its request: %+v vs %+v", i, c, batch[i])
		}
		switch c.Op {
		case OpRead:
			reads++
			if !bytes.Equal(c.Data, page) {
				t.Fatalf("read %d corrupted", i)
			}
		case OpWrite:
			writes++
		}
		if c.Finish <= c.Start {
			t.Fatalf("completion %d has empty modelled interval", i)
		}
	}
	if reads != 32 || writes != 32 {
		t.Fatalf("mix lost requests: %d reads, %d writes", reads, writes)
	}
}

// TestQueueConcurrentSubmit hammers one sub-system from many goroutines
// (distinct pages per goroutine) — the data-race acceptance gate.
func TestQueueConcurrentSubmit(t *testing.T) {
	sys, _ := openQueued(t, WithDies(4), WithBlocks(2), WithSeed(5))
	ctx := context.Background()
	page := pageOf(20, sys.PageSize())

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := sys.NewQueue() // one queue per goroutine, same dispatcher
			// Goroutine w owns pages [(w/4)*8, (w/4)*8+8) of (die w%4,
			// block 0), so writes never collide.
			die := w % 4
			var batch []Request
			for p := 0; p < 8; p++ {
				batch = append(batch, WriteRequest(die, 0, (w/4)*8+p, page))
			}
			comps, err := q.Submit(ctx, batch)
			if err != nil {
				errs <- err
				return
			}
			for _, c := range comps {
				if c.Err != nil {
					errs <- c.Err
					return
				}
			}
			// Read everything back concurrently with other goroutines.
			var reads []Request
			for p := 0; p < 8; p++ {
				reads = append(reads, ReadRequest(die, 0, (w/4)*8+p))
			}
			comps, err = q.Submit(ctx, reads)
			if err != nil {
				errs <- err
				return
			}
			for _, c := range comps {
				if c.Err != nil {
					errs <- c.Err
					return
				}
				if !bytes.Equal(c.Data, page) {
					errs <- errors.New("concurrent read corrupted data")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestQueueContextCancellation covers both cancellation shapes: a
// pre-cancelled batch (every request skipped, typed error) and a cancel
// racing a long batch (no lost completions either way).
func TestQueueContextCancellation(t *testing.T) {
	sys, q := openQueued(t, WithDies(1), WithBlocks(2), WithSeed(7))
	page := pageOf(30, sys.PageSize())

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	batch := []Request{
		WriteRequest(0, 0, 0, page),
		WriteRequest(0, 0, 1, page),
	}
	comps, err := q.Submit(cancelled, batch)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Submit returned %v", err)
	}
	if len(comps) != len(batch) {
		t.Fatalf("%d completions for %d requests", len(comps), len(batch))
	}
	for i, c := range comps {
		if !errors.Is(c.Err, context.Canceled) {
			t.Fatalf("completion %d: want context.Canceled, got %v", i, c.Err)
		}
		var oe *OpError
		if !errors.As(c.Err, &oe) {
			t.Fatalf("completion %d error is not typed: %v", i, c.Err)
		}
	}

	// Mid-batch: cancel after the first completion lands. Every request
	// must still complete — either executed or skipped with the context
	// error — and the batch error must be the cancellation.
	ctx, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var big []Request
	for p := 0; p < 32; p++ {
		big = append(big, WriteRequest(0, 1, p, page))
	}
	out, err := q.SubmitAsync(ctx, big)
	if err != nil {
		t.Fatal(err)
	}
	got, skipped, executed := 0, 0, 0
	for c := range out {
		got++
		if got == 1 {
			cancel2()
		}
		switch {
		case c.Err == nil:
			executed++
		case errors.Is(c.Err, context.Canceled):
			skipped++
		default:
			t.Fatalf("unexpected completion error: %v", c.Err)
		}
	}
	if got != len(big) {
		t.Fatalf("lost completions: %d of %d", got, len(big))
	}
	if executed == 0 {
		t.Fatal("nothing executed before cancel")
	}
	if skipped == 0 {
		t.Skip("batch drained before cancellation propagated (fast machine); skip count unassertable")
	}
}

// TestQueuePerRequestModeOverride: one batch carries nominal, max-read
// and min-UBER writes; each resolves its own algorithm/capability with
// no global mode toggling, and the sub-system default is untouched.
func TestQueuePerRequestModeOverride(t *testing.T) {
	sys, q := openQueued(t, WithDies(1), WithBlocks(3), WithSeed(9))
	ctx := context.Background()
	page := pageOf(40, sys.PageSize())
	for b := 0; b < 3; b++ {
		if err := sys.AgeBlock(b, 1e6); err != nil {
			t.Fatal(err)
		}
	}
	batch := []Request{
		WriteRequest(0, 0, 0, page), // subsystem default: nominal
		func() Request {
			r := WriteRequest(0, 1, 0, page)
			r.Mode = ModeMaxRead.Ptr()
			return r
		}(),
		func() Request {
			r := WriteRequest(0, 2, 0, page)
			r.Mode = ModeMinUBER.Ptr()
			return r
		}(),
	}
	comps, err := q.Submit(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	nom, fast, crit := comps[0], comps[1], comps[2]
	if nom.Err != nil || fast.Err != nil || crit.Err != nil {
		t.Fatalf("batch errors: %v / %v / %v", nom.Err, fast.Err, crit.Err)
	}
	if nom.Alg != ISPPSV {
		t.Fatalf("default write algorithm %v", nom.Alg)
	}
	if fast.Alg != ISPPDV || crit.Alg != ISPPDV {
		t.Fatalf("override writes did not switch the physical layer: %v / %v", fast.Alg, crit.Alg)
	}
	if fast.T >= nom.T {
		t.Fatalf("max-read t=%d not relaxed vs nominal t=%d", fast.T, nom.T)
	}
	if crit.T != nom.T {
		t.Fatalf("min-UBER t=%d deviates from the SV schedule t=%d", crit.T, nom.T)
	}
	if sys.Mode() != ModeNominal {
		t.Fatalf("per-request overrides leaked into the default mode: %v", sys.Mode())
	}
	// Explicit capability pinning per request.
	r := WriteRequest(0, 0, 1, page)
	r.T = 20
	comp, err := q.Do(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if comp.T != 20 {
		t.Fatalf("per-request T=20 resolved to %d", comp.T)
	}
}

// TestManualCapabilitySurvivesSelectMode is the regression test for the
// ManualECC clobber: SelectMode and min-UBER writes used to silently
// re-enable the reliability manager after SetCapability pinned t.
func TestManualCapabilitySurvivesSelectMode(t *testing.T) {
	sys, _ := openQueued(t, WithBlocks(2), WithSeed(13))
	page := pageOf(50, sys.PageSize())
	sys.SetCapability(7)
	if err := sys.SelectMode(ModeMaxRead); err != nil {
		t.Fatal(err)
	}
	wr, err := sys.WritePage(0, 0, page)
	if err != nil {
		t.Fatal(err)
	}
	if wr.T != 7 {
		t.Fatalf("pinned t=7 clobbered by SelectMode: wrote at t=%d", wr.T)
	}
	// The min-UBER write path must not clobber the pin either.
	if err := sys.SelectMode(ModeMinUBER); err != nil {
		t.Fatal(err)
	}
	wr, err = sys.WritePage(0, 1, page)
	if err != nil {
		t.Fatal(err)
	}
	if wr.T != 7 {
		t.Fatalf("pinned t=7 clobbered by min-UBER write path: t=%d", wr.T)
	}
	// SetAdaptive(true) is the explicit release.
	sys.SetAdaptive(true)
	if err := sys.SelectMode(ModeNominal); err != nil {
		t.Fatal(err)
	}
	wr, err = sys.WritePage(0, 2, page)
	if err != nil {
		t.Fatal(err)
	}
	if wr.T == 7 {
		t.Fatal("SetAdaptive(true) did not release the pin")
	}
	// SetAdaptive(false) freezes at an existing pin rather than
	// clobbering it with the worst case.
	sys.SetCapability(9)
	sys.SetAdaptive(false)
	wr, err = sys.WritePage(0, 3, page)
	if err != nil {
		t.Fatal(err)
	}
	if wr.T != 9 {
		t.Fatalf("SetAdaptive(false) clobbered the pinned t=9: wrote at t=%d", wr.T)
	}
}

// readBatchMBps writes `pages` pages striped over the dies, reads them
// back in one batch and returns the modelled throughput over the batch
// makespan.
func readBatchMBps(t testing.TB, sys *Subsystem, q *Queue, pages int) float64 {
	t.Helper()
	ctx := context.Background()
	dies := sys.Dies()
	page := pageOf(60, sys.PageSize())
	var writes, reads []Request
	for i := 0; i < pages; i++ {
		die := i % dies
		p := i / dies
		writes = append(writes, WriteRequest(die, 0, p, page))
		reads = append(reads, ReadRequest(die, 0, p))
	}
	comps, err := q.Submit(ctx, writes)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range comps {
		if c.Err != nil {
			t.Fatal(c.Err)
		}
	}
	comps, err = q.Submit(ctx, reads)
	if err != nil {
		t.Fatal(err)
	}
	var start, finish time.Duration
	for i, c := range comps {
		if c.Err != nil {
			t.Fatal(c.Err)
		}
		if i == 0 || c.Start < start {
			start = c.Start
		}
		if c.Finish > finish {
			finish = c.Finish
		}
	}
	return float64(pages*sys.PageSize()) / (finish - start).Seconds() / 1e6
}

// TestQueueDieScalingMatchesModel is the acceptance criterion: measured
// 4-die batch read throughput exceeds 1-die by >= 2x, and both agree
// with the ScaleDies analytic pipeline.
func TestQueueDieScalingMatchesModel(t *testing.T) {
	measured := map[int]float64{}
	predicted := map[int]float64{}
	for _, dies := range []int{1, 4} {
		sys, q := openQueued(t, fastFabric(dies)...)
		measured[dies] = readBatchMBps(t, sys, q, 64)
		ds, err := sys.ScaleDies(ModeNominal, 0, dies)
		if err != nil {
			t.Fatal(err)
		}
		predicted[dies] = ds.ReadMBps
	}
	t.Logf("read MB/s: 1 die %.1f (model %.1f), 4 dies %.1f (model %.1f)",
		measured[1], predicted[1], measured[4], predicted[4])
	if ratio := measured[4] / measured[1]; ratio < 2 {
		t.Fatalf("4-die batch read throughput only %.2fx the 1-die figure", ratio)
	}
	for _, dies := range []int{1, 4} {
		rel := measured[dies] / predicted[dies]
		if rel < 0.7 || rel > 1.3 {
			t.Fatalf("%d-die measured %.1f MB/s vs ScaleDies %.1f MB/s (x%.2f): model diverged",
				dies, measured[dies], predicted[dies], rel)
		}
	}
}

func TestSubmitAsyncStreamsAndCloses(t *testing.T) {
	sys, q := openQueued(t, WithDies(2), WithBlocks(1), WithSeed(17))
	ctx := context.Background()
	page := pageOf(70, sys.PageSize())
	var batch []Request
	for i := 0; i < 8; i++ {
		r := WriteRequest(i%2, 0, i/2, page)
		r.Tag = uint64(100 + i)
		batch = append(batch, r)
	}
	out, err := q.SubmitAsync(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	tags := map[uint64]bool{}
	for c := range out {
		if c.Err != nil {
			t.Fatal(c.Err)
		}
		tags[c.Tag] = true
	}
	if len(tags) != 8 {
		t.Fatalf("only %d distinct tags delivered", len(tags))
	}
}

func TestSubsystemCloseTyped(t *testing.T) {
	sys, q := openQueued(t, WithBlocks(1))
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(context.Background(), []Request{ReadRequest(0, 0, 0)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if _, err := sys.WritePage(0, 0, make([]byte, sys.PageSize())); !errors.Is(err, ErrClosed) {
		t.Fatalf("legacy write after Close: want ErrClosed, got %v", err)
	}
}
