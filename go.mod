module xlnand

go 1.24
