package experiments

import (
	"xlnand/internal/lifetime"
	"xlnand/internal/sim"
)

// ExtLifetime extends the evaluation from operating-point snapshots to a
// measured device biography: it plays a short deterministic lifetime
// scenario through the full stack (queue, dispatcher, FTL, controller,
// adaptive BCH, aging NAND) and plots the corrected-error density and
// read throughput the engine actually observed per phase against the
// wear reached — the paper's Fig. 8/11 story as a trajectory of one
// simulated device rather than a family of analytic curves.
func ExtLifetime(env sim.Env, seed uint64) (Figure, error) {
	sc := lifetime.GoldenShort()[0]
	sc.Seed = seed
	sc.Env = &env
	rep, err := lifetime.Run(sc)
	if err != nil {
		return Figure{}, err
	}
	f := Figure{
		ID:     "ext-lifetime",
		Title:  "Measured lifetime trajectory (scenario " + sc.Name + ")",
		XLabel: "Max P/E cycles reached",
		YLabel: "corrected bits per KB read / read MB/s",
		Notes: []string{
			"extension beyond the paper: end-to-end scenario engine, not analytic curves",
			"every point is a measurement of the full stack under the scenario seed",
		},
	}
	wear := make([]float64, 0, len(rep.Phases))
	density := make([]float64, 0, len(rep.Phases))
	readMBps := make([]float64, 0, len(rep.Phases))
	for _, ph := range rep.Phases {
		if ph.BitsRead == 0 {
			continue
		}
		// Plot wear on a log-friendly axis: fresh phases sit at 1.
		w := ph.WearMax
		if w < 1 {
			w = 1
		}
		wear = append(wear, w)
		density = append(density, float64(ph.CorrectedBits)*8192/float64(ph.BitsRead))
		readMBps = append(readMBps, ph.ReadMBps)
	}
	if err := f.AddSeries("corrected bits / KB read", wear, density); err != nil {
		return f, err
	}
	if err := f.AddSeries("read throughput [MB/s]", wear, readMBps); err != nil {
		return f, err
	}
	return f, nil
}
