package experiments

import (
	"strings"
	"testing"

	"xlnand/internal/sim"
)

// TestExtLDPCFamiliesAcceptance pins the figure's load-bearing claims:
// there is a P/E range where the full BCH hard-retry ladder is
// uncorrectable (UBER above the target) while soft-decision LDPC still
// sustains UBER at or below it, and the soft path's extra sense time is
// visible as the lowest modelled read throughput.
func TestExtLDPCFamiliesAcceptance(t *testing.T) {
	env := sim.DefaultEnv()
	f, err := ExtLDPCFamilies(env)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	var xs []float64
	for _, s := range f.Series {
		series[s.Name] = s.Y
		xs = s.X
	}
	bch := series["BCH t=65 + hard ladder"]
	hard := series["LDPC hard + ladder"]
	soft := series["LDPC soft (ladder + soft rung)"]
	if bch == nil || hard == nil || soft == nil {
		t.Fatalf("missing UBER series; have %v", seriesNames(f))
	}
	crossover := false
	for i := range xs {
		if soft[i] > bch[i]+1e-300 {
			t.Fatalf("soft LDPC worse than the BCH ladder at %.3g cycles: %.3e > %.3e",
				xs[i], soft[i], bch[i])
		}
		if bch[i] > env.TargetUBER && soft[i] <= env.TargetUBER {
			crossover = true
		}
	}
	if !crossover {
		t.Fatalf("no P/E range where the BCH ladder dies and LDPC soft holds the %g target", env.TargetUBER)
	}
	// The hard LDPC ladder must also die before the soft path does.
	hardCross := false
	for i := range xs {
		if hard[i] > env.TargetUBER && soft[i] <= env.TargetUBER {
			hardCross = true
		}
	}
	if !hardCross {
		t.Fatal("soft rung never extends past the hard LDPC ladder")
	}

	mbBCH := series["BCH ladder walk [MB/s]"][0]
	mbHard := series["LDPC hard walk [MB/s]"][0]
	mbSoft := series["LDPC soft path [MB/s]"][0]
	if !(mbSoft < mbHard && mbSoft < mbBCH) {
		t.Fatalf("soft path's sense time not visible: soft %.2f, LDPC-hard %.2f, BCH %.2f MB/s",
			mbSoft, mbHard, mbBCH)
	}
}

// TestExtLDPCRegistered: the runner registry resolves ext-ldpc.
func TestExtLDPCRegistered(t *testing.T) {
	r, err := ByID("ext-ldpc")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Description, "LDPC") {
		t.Fatalf("runner description %q", r.Description)
	}
	if _, err := r.Run(sim.DefaultEnv(), 1); err != nil {
		t.Fatal(err)
	}
}
