package experiments

import (
	"fmt"

	"xlnand/internal/sim"
)

// Runner produces one figure.
type Runner struct {
	ID          string
	Description string
	Run         func(env sim.Env, seed uint64) (Figure, error)
}

// All returns every experiment in paper order, followed by the ablations.
func All() []Runner {
	return []Runner{
		{"fig04", "compact-model fit: VTH vs VCG during ISPP",
			func(e sim.Env, s uint64) (Figure, error) { return Fig04(e, s), nil }},
		{"fig05", "RBER vs P/E cycles, ISPP-SV vs ISPP-DV",
			func(e sim.Env, s uint64) (Figure, error) { return Fig05(e), nil }},
		{"fig06", "program power vs P/E cycles, SV/DV x L1/L2/L3",
			func(e sim.Env, s uint64) (Figure, error) { return Fig06(e) }},
		{"fig07", "UBER vs RBER, ISPP-SV range (t = 3..65)",
			func(e sim.Env, s uint64) (Figure, error) { return Fig07(e), nil }},
		{"fig07dv", "UBER vs RBER, ISPP-DV range (t = 3..14)",
			func(e sim.Env, s uint64) (Figure, error) { return Fig07DV(e), nil }},
		{"fig08", "ECC encode/decode latency vs lifetime at 80 MHz",
			func(e sim.Env, s uint64) (Figure, error) { return Fig08(e), nil }},
		{"fig09", "write throughput loss of the cross-layer mode",
			func(e sim.Env, s uint64) (Figure, error) { return Fig09(e) }},
		{"fig10", "UBER improvement at constant ECC",
			func(e sim.Env, s uint64) (Figure, error) { return Fig10(e) }},
		{"fig11", "read throughput gain at constant UBER",
			func(e sim.Env, s uint64) (Figure, error) { return Fig11(e) }},
		{"abl-blocksize", "ablation: ECC block size vs parity overhead",
			func(e sim.Env, s uint64) (Figure, error) { return AblationBlockSize(e) }},
		{"abl-ispp", "ablation: delta-ISPP shrink vs double verify",
			func(e sim.Env, s uint64) (Figure, error) { return AblationISPP(e, s) }},
		{"abl-parallelism", "ablation: decoder parallelism area/latency",
			func(e sim.Env, s uint64) (Figure, error) { return AblationParallelism(e), nil }},
		{"abl-approx", "ablation: Eq. 1 vs full uncorrectable tail",
			func(e sim.Env, s uint64) (Figure, error) { return AblationApproximation(e), nil }},
		{"abl-eccfam", "ablation: Hamming vs RS vs BCH on the 4 KB page",
			func(e sim.Env, s uint64) (Figure, error) { return AblationECCFamilies(e), nil }},
		{"abl-loadstrategy", "ablation: two-round data load mitigation of write loss",
			func(e sim.Env, s uint64) (Figure, error) { return AblationLoadStrategy(e), nil }},
		{"ext-retention", "extension: retention bake vs RBER and required t",
			func(e sim.Env, s uint64) (Figure, error) { return ExtRetention(e), nil }},
		{"ext-disturb", "extension: read disturb vs RBER and required t",
			func(e sim.Env, s uint64) (Figure, error) { return ExtReadDisturb(e), nil }},
		{"ext-multidie", "extension: multi-die scaling of the cross-layer gain",
			func(e sim.Env, s uint64) (Figure, error) { return ExtMultiDie(e) }},
		{"ext-validate", "extension: trace replay vs analytic model",
			func(e sim.Env, s uint64) (Figure, error) { return ExtWorkloadValidation(e, s) }},
		{"ext-lifetime", "extension: measured lifetime trajectory of the scenario engine",
			func(e sim.Env, s uint64) (Figure, error) { return ExtLifetime(e, s) }},
		{"ext-readretry", "extension: recovered UBER vs read-retry ladder depth across lifetime",
			func(e sim.Env, s uint64) (Figure, error) { return ExtReadRetry(e), nil }},
		{"ext-ldpc", "extension: codec families at the recovery endgame (BCH ladder vs LDPC hard vs LDPC soft)",
			func(e sim.Env, s uint64) (Figure, error) { return ExtLDPCFamilies(e) }},
	}
}

// ByID returns the runner with the given figure ID.
func ByID(id string) (Runner, error) {
	for _, r := range All() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown figure %q", id)
}
