package experiments

import (
	"xlnand/internal/bch"
	"xlnand/internal/controller"
	"xlnand/internal/nand"
	"xlnand/internal/sim"
	"xlnand/internal/workload"
)

// ExtWorkloadValidation cross-validates the analytic operating-point
// model against the discrete-event path: a read-intensive trace is
// replayed through the full controller+device stack in the nominal and
// max-read modes at end of life, and the measured read throughput is
// plotted next to the analytic prediction. The two columns agreeing is
// the evidence that Figs. 9/11 (computed analytically, like the paper's)
// describe what the transaction-level system actually does.
func ExtWorkloadValidation(env sim.Env, seed uint64) (Figure, error) {
	f := Figure{
		ID:     "ext-validate",
		Title:  "Trace replay vs analytic model at end of life (extension)",
		XLabel: "mode (1=nominal, 2=max-read)",
		YLabel: "Read throughput [MB/s]",
		Notes: []string{
			"measured: 240-request read-intensive trace through the full stack; analytic: the operating-point model behind Figs. 9/11",
		},
	}
	const cycles = 1e6
	const blocks = 4
	modes := []sim.Mode{sim.ModeNominal, sim.ModeMaxRead}

	var measured, analytic []float64
	xs := []float64{1, 2}
	for _, m := range modes {
		dev := nand.NewDevice(env.Cal, blocks, seed)
		for b := 0; b < blocks; b++ {
			if err := dev.SetCycles(b, cycles); err != nil {
				return f, err
			}
		}
		codec, err := bch.NewCodec(env.M, env.K, env.TMin, env.TMax)
		if err != nil {
			return f, err
		}
		ctrl, err := controller.New(dev, bch.NewHWCodec(codec, env.HW), controller.DefaultConfig())
		if err != nil {
			return f, err
		}
		switch m {
		case sim.ModeNominal:
			ctrl.SetAlgorithm(nand.ISPPSV)
		case sim.ModeMaxRead:
			ctrl.SetAlgorithm(nand.ISPPDV)
		}
		tr, err := workload.Generate(workload.ReadIntensive(240, blocks, dev.PagesPerBlock()), seed)
		if err != nil {
			return f, err
		}
		st, err := workload.Run(ctrl, tr)
		if err != nil {
			return f, err
		}
		measured = append(measured, st.ReadMBps)

		op, err := env.EvaluateMode(m, cycles)
		if err != nil {
			return f, err
		}
		analytic = append(analytic, op.ReadMBps)
	}
	f.mustAdd("measured (trace replay)", xs, measured)
	f.mustAdd("analytic (operating point)", xs, analytic)
	return f, nil
}
