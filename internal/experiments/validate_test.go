package experiments

import (
	"math"
	"testing"
)

func TestExtWorkloadValidationAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("trace validation skipped in -short mode")
	}
	f, err := ExtWorkloadValidation(env(), 42)
	if err != nil {
		t.Fatal(err)
	}
	measured := findSeries(t, f, "measured (trace replay)")
	analytic := findSeries(t, f, "analytic (operating point)")
	if len(measured.Y) != 2 || len(analytic.Y) != 2 {
		t.Fatalf("series lengths %d/%d", len(measured.Y), len(analytic.Y))
	}
	for i := range measured.Y {
		rel := math.Abs(measured.Y[i]-analytic.Y[i]) / analytic.Y[i]
		if rel > 0.15 {
			t.Fatalf("mode %d: measured %.2f vs analytic %.2f MB/s (%.0f%% apart)",
				i+1, measured.Y[i], analytic.Y[i], rel*100)
		}
	}
	// The cross-layer gain must appear in the *measured* path too.
	gain := measured.Y[1]/measured.Y[0] - 1
	if gain < 0.2 {
		t.Fatalf("measured read gain %.0f%% too small", gain*100)
	}
}
