package experiments

import "testing"

func TestAblationECCFamiliesShape(t *testing.T) {
	f := AblationECCFamilies(env())
	if len(f.Series) != 4 {
		t.Fatalf("%d series, want 4", len(f.Series))
	}
	ham := findSeries(t, f, "Hamming SEC-DED 512 B")
	rsS := findSeries(t, f, "RS(255,223) x19")
	bch64 := findSeries(t, f, "BCH 4KB t=64")
	bch14 := findSeries(t, f, "BCH 4KB t=14")

	for i := range ham.X {
		// All monotone non-decreasing in RBER.
		if i > 0 {
			for _, s := range f.Series {
				if s.Y[i] < s.Y[i-1] {
					t.Fatalf("%s not monotone at RBER %g", s.Name, s.X[i])
				}
			}
		}
		// Hamming is the weakest protector everywhere above the floor.
		if ham.Y[i] > 1e-39 && (ham.Y[i] < rsS.Y[i] || ham.Y[i] < bch14.Y[i]) {
			t.Fatalf("Hamming outperforms stronger codes at RBER %g", ham.X[i])
		}
		// Parity efficiency (the paper §2/§6.2 argument): BCH t=14 uses
		// 28 B parity vs Hamming's 16 B yet wins by many decades; BCH
		// t=64 uses 128 B vs RS's 608 B and must stay within a few
		// decades of it despite the 4.75x parity deficit.
		if ham.Y[i] > 1e-30 && bch14.Y[i] > ham.Y[i] {
			t.Fatalf("BCH t=14 behind Hamming at RBER %g", ham.X[i])
		}
		// In the sparse regime the win is decades wide.
		if ham.X[i] <= 1e-5 && ham.Y[i] > 1e-30 && bch14.Y[i] > ham.Y[i]*1e-3 {
			t.Fatalf("BCH t=14 win under 3 decades at RBER %g", ham.X[i])
		}
		if rsS.Y[i] > 1e-35 && bch64.Y[i] > rsS.Y[i]*1e4 {
			t.Fatalf("BCH t=64 catastrophically behind RS at RBER %g (%g vs %g)",
				ham.X[i], bch64.Y[i], rsS.Y[i])
		}
	}

	// At the paper's EOL RBER (1e-3), Hamming must be catastrophically
	// inadequate (UBER near RBER itself) while BCH t=64 is near 1e-11.
	last := len(ham.X) - 1
	if ham.Y[last] < 1e-6 {
		t.Fatalf("Hamming at RBER 1e-3 implausibly good: %g", ham.Y[last])
	}
	if bch64.Y[last] > 1e-9 {
		t.Fatalf("BCH t=64 at RBER 1e-3 too weak: %g", bch64.Y[last])
	}
}
