package experiments

import (
	"testing"

	"xlnand/internal/sim"
)

func TestExtLifetime(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end scenario run skipped in -short mode")
	}
	f, err := ExtLifetime(sim.DefaultEnv(), 2024)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "ext-lifetime" || len(f.Series) != 2 {
		t.Fatalf("unexpected figure shape: %+v", f)
	}
	for _, s := range f.Series {
		if len(s.X) == 0 {
			t.Fatalf("series %q empty", s.Name)
		}
	}
	// The trajectory must show the error climate degrading with wear.
	density := f.Series[0]
	if density.Y[len(density.Y)-1] <= density.Y[0] {
		t.Fatalf("corrected density did not climb across the biography: %v", density.Y)
	}
}
