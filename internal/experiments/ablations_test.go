package experiments

import (
	"testing"
)

func TestAblationBlockSizeShape(t *testing.T) {
	f, err := AblationBlockSize(env())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 3 {
		t.Fatalf("%d series, want 3", len(f.Series))
	}
	small := findSeries(t, f, "512 B blocks (Chen et al. [28])")
	large := findSeries(t, f, "4 KB page (this work)")
	// §6.2's claim: longer blocks protect with fewer parity bits — the
	// 4 KB overhead must sit below the 512 B overhead at every RBER.
	for i := range small.X {
		if large.Y[i] >= small.Y[i] {
			t.Fatalf("4 KB overhead %v%% not below 512 B overhead %v%% at RBER %g",
				large.Y[i], small.Y[i], small.X[i])
		}
	}
	// The worst-case 4 KB overhead must fit the spare area: 1040 bits of
	// 224·8 = 1792 available (the paper's implicit feasibility claim).
	for i := range large.X {
		if large.Y[i] > 100*1040.0/32768.0+0.5 {
			t.Fatalf("4 KB overhead %v%% exceeds the t=65 budget", large.Y[i])
		}
	}
}

func TestAblationISPPShape(t *testing.T) {
	f, err := AblationISPP(env(), 3)
	if err != nil {
		t.Fatal(err)
	}
	sigma := findSeries(t, f, "SV sigma [mV]")
	times := findSeries(t, f, "SV program time [10 µs]")
	// Smaller steps compact the distribution but cost time: sigma grows
	// with step, time shrinks with step.
	for i := 1; i < len(sigma.X); i++ {
		if sigma.Y[i] < sigma.Y[i-1]*0.8 {
			t.Fatalf("sigma not growing with step at ΔISPP=%g", sigma.X[i])
		}
		if times.Y[i] > times.Y[i-1]*1.05 {
			t.Fatalf("program time not shrinking with step at ΔISPP=%g", times.X[i])
		}
	}
	// The cross-layer pitch: DV at the nominal step achieves compaction
	// comparable to a much finer SV step at lower time cost than that
	// step. DV sigma must beat nominal-step SV sigma.
	dvSigma := findSeries(t, f, "DV sigma [mV]")
	nominalIdx := -1
	for i, x := range sigma.X {
		if x == 0.25 {
			nominalIdx = i
		}
	}
	if nominalIdx < 0 {
		t.Fatal("nominal step missing from sweep")
	}
	if dvSigma.Y[0] >= sigma.Y[nominalIdx] {
		t.Fatalf("DV sigma %v mV not below nominal SV sigma %v mV",
			dvSigma.Y[0], sigma.Y[nominalIdx])
	}
}

func TestAblationParallelismShape(t *testing.T) {
	f := AblationParallelism(env())
	if len(f.Series) != 3 {
		t.Fatalf("%d series, want 3 (p sweep)", len(f.Series))
	}
	for _, s := range f.Series {
		// Within one p series, more multipliers (larger h) must never
		// slow decoding down.
		for i := 1; i < len(s.X); i++ {
			if s.X[i] <= s.X[i-1] {
				t.Fatalf("%s: multiplier count not increasing", s.Name)
			}
			if s.Y[i] > s.Y[i-1] {
				t.Fatalf("%s: latency grew with added area", s.Name)
			}
		}
	}
}

func TestAblationLoadStrategyShape(t *testing.T) {
	f := AblationLoadStrategy(env())
	full := findSeries(t, f, "full-sequence")
	two := findSeries(t, f, "two-round")
	for i := range full.X {
		if two.Y[i] >= full.Y[i] {
			t.Fatalf("two-round loss %.1f%% not below full-sequence %.1f%% at N=%g",
				two.Y[i], full.Y[i], full.X[i])
		}
		if two.Y[i] < 5 {
			t.Fatalf("two-round loss %.1f%% implausibly low at N=%g", two.Y[i], full.X[i])
		}
	}
}

func TestAblationApproximationShape(t *testing.T) {
	// This ablation deliberately exposes where Eq. 1 breaks down: the
	// ratio must be >= 1 everywhere (the tail contains the dominant
	// term) and ≈ 1 only inside the sparse regime n·RBER << t+1.
	e := env()
	f := AblationApproximation(e)
	ts := []int{3, 14, 65}
	for si, s := range f.Series {
		tc := ts[si]
		n := e.K + e.M*tc
		for i, ratio := range s.Y {
			if ratio < 1-1e-9 {
				t.Fatalf("%s: tail below dominant term at x=%g", s.Name, s.X[i])
			}
			if s.X[i]*float64(n) < float64(tc+1)/2 && ratio > 2 {
				t.Fatalf("%s: ratio %v too loose inside the sparse regime (RBER %g)",
					s.Name, ratio, s.X[i])
			}
		}
		// Outside the regime the dominant term must visibly underestimate
		// for the small-t series, demonstrating why RequiredT uses the
		// tail.
		if tc == 3 {
			last := s.Y[len(s.Y)-1]
			if last < 5 {
				t.Fatalf("t=3 breakdown not visible: final ratio %v", last)
			}
		}
	}
}

func TestAllRunnersExecute(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	e := env()
	for _, r := range All() {
		f, err := r.Run(e, 42)
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		if f.ID != r.ID {
			t.Fatalf("runner %s produced figure %s", r.ID, f.ID)
		}
		if len(f.Series) == 0 {
			t.Fatalf("%s produced no series", r.ID)
		}
		for _, s := range f.Series {
			if len(s.X) == 0 {
				t.Fatalf("%s: series %q empty", r.ID, s.Name)
			}
			if len(s.X) != len(s.Y) {
				t.Fatalf("%s: series %q length mismatch", r.ID, s.Name)
			}
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig05"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestFigureAddSeriesValidates(t *testing.T) {
	var f Figure
	if err := f.AddSeries("bad", []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := f.AddSeries("ok", []float64{1}, []float64{2}); err != nil {
		t.Fatal(err)
	}
}

func TestFigureBounds(t *testing.T) {
	var f Figure
	if _, _, _, _, ok := f.Bounds(); ok {
		t.Fatal("empty figure claims bounds")
	}
	f.mustAdd("a", []float64{1, 5}, []float64{-2, 7})
	xmin, xmax, ymin, ymax, ok := f.Bounds()
	if !ok || xmin != 1 || xmax != 5 || ymin != -2 || ymax != 7 {
		t.Fatalf("bounds %v %v %v %v", xmin, xmax, ymin, ymax)
	}
}
