package experiments

import (
	"xlnand/internal/bch"
	"xlnand/internal/nand"
	"xlnand/internal/sim"
	"xlnand/internal/stats"
)

// requiredTStressed sizes the ECC for a stressed RBER, pinning TMax when
// the target is unreachable (end-of-life behaviour).
func requiredTStressed(env sim.Env, rber float64) float64 {
	t, err := bch.RequiredT(env.M, env.K, rber, env.TargetUBER, env.TMax)
	if err != nil {
		return float64(env.TMax)
	}
	if t < env.TMin {
		t = env.TMin
	}
	return float64(t)
}

// ExtRetention extends the lifetime analysis with the data-retention
// mechanism of paper §1 [4]: RBER and the required ECC capability as a
// function of storage time at mid-life wear, for both program algorithms.
// The cross-layer headroom story repeats on this axis: DV's RBER margin
// keeps the required t low even after long bakes.
func ExtRetention(env sim.Env) Figure {
	f := Figure{
		ID:     "ext-retention",
		Title:  "Retention bake at 1e4 P/E cycles (extension)",
		XLabel: "Retention [hours]",
		YLabel: "RBER / required t",
		LogX:   true,
		LogY:   true,
		Notes: []string{
			"extension beyond the paper: retention per Mielke et al. [3] trends on the calibrated model",
		},
	}
	s := nand.DefaultStressConfig()
	grid := stats.LogSpace(1, 1e5, 11)
	const cycles = 1e4
	for _, alg := range []nand.Algorithm{nand.ISPPSV, nand.ISPPDV} {
		rber := make([]float64, len(grid))
		treq := make([]float64, len(grid))
		for i, h := range grid {
			rber[i] = env.Cal.StressedRBER(s, alg, cycles, 0, h)
			treq[i] = requiredTStressed(env, rber[i])
		}
		f.mustAdd("RBER "+alg.String(), grid, rber)
		f.mustAdd("t required "+alg.String(), grid, treq)
	}
	return f
}

// ExtMultiDie extends the throughput analysis to an interleaved
// multi-die organisation: read throughput per mode versus die count at
// end of life. With the array time hidden by parallelism the shared
// codec becomes the bottleneck — the stage the max-read mode relaxes —
// so the cross-layer gain survives (and the write penalty fades).
func ExtMultiDie(env sim.Env) (Figure, error) {
	f := Figure{
		ID:     "ext-multidie",
		Title:  "Multi-die scaling at end of life (extension)",
		XLabel: "Dies",
		YLabel: "Read throughput [MB/s]",
		Notes: []string{
			"extension beyond the paper: interleaved dies behind one controller; shared bus and codec serialise",
		},
	}
	const cycles = 1e6
	const maxDies = 8
	for _, m := range []sim.Mode{sim.ModeNominal, sim.ModeMaxRead} {
		xs := make([]float64, 0, maxDies)
		ys := make([]float64, 0, maxDies)
		sweep, err := env.DieSweep(m, cycles, maxDies)
		if err != nil {
			return f, err
		}
		for _, s := range sweep {
			xs = append(xs, float64(s.Dies))
			ys = append(ys, s.ReadMBps)
		}
		f.mustAdd("read "+m.String(), xs, ys)
	}
	return f, nil
}

// ExtReadDisturb extends the analysis with read-disturb stress: RBER and
// required capability versus the number of reads a block has absorbed
// since its last erase — the stress axis of read-intensive workloads,
// exactly the deployments §6.3.2 targets.
func ExtReadDisturb(env sim.Env) Figure {
	f := Figure{
		ID:     "ext-disturb",
		Title:  "Read disturb at 1e4 P/E cycles (extension)",
		XLabel: "Reads since erase",
		YLabel: "RBER / required t",
		LogX:   true,
		LogY:   true,
		Notes: []string{
			"extension beyond the paper: pass-voltage disturb accumulated by read-intensive use",
		},
	}
	s := nand.DefaultStressConfig()
	grid := stats.LogSpace(1e2, 1e7, 11)
	const cycles = 1e4
	for _, alg := range []nand.Algorithm{nand.ISPPSV, nand.ISPPDV} {
		rber := make([]float64, len(grid))
		treq := make([]float64, len(grid))
		for i, reads := range grid {
			rber[i] = env.Cal.StressedRBER(s, alg, cycles, reads, 0)
			treq[i] = requiredTStressed(env, rber[i])
		}
		f.mustAdd("RBER "+alg.String(), grid, rber)
		f.mustAdd("t required "+alg.String(), grid, treq)
	}
	return f
}
