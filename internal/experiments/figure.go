// Package experiments contains one runner per figure of the paper's
// evaluation (Figs. 4-11, including the mis-referenced "Fig. ??" as
// Fig. 7-DV) plus the ablations DESIGN.md §2 lists. Each runner returns a
// Figure — a plot-ready bundle of named series — that internal/plot
// renders as an ASCII chart, a table or CSV, and that the benchmark
// harness prints row by row.
package experiments

import "fmt"

// Series is one named curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a plot-ready experiment result.
type Figure struct {
	ID     string // e.g. "fig05"
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
	Series []Series
	// Notes records reproduction caveats (substitutions, known
	// deviations from the paper).
	Notes []string
}

// AddSeries appends a curve, validating lengths.
func (f *Figure) AddSeries(name string, x, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("experiments: series %q has %d x vs %d y", name, len(x), len(y))
	}
	f.Series = append(f.Series, Series{Name: name, X: x, Y: y})
	return nil
}

// mustAdd is the internal panic-on-misuse variant (lengths are
// constructed equal by the runners).
func (f *Figure) mustAdd(name string, x, y []float64) {
	if err := f.AddSeries(name, x, y); err != nil {
		panic(err)
	}
}

// Bounds returns the data extent across all series.
func (f *Figure) Bounds() (xmin, xmax, ymin, ymax float64, ok bool) {
	first := true
	for _, s := range f.Series {
		for i := range s.X {
			if first {
				xmin, xmax, ymin, ymax = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			if s.X[i] < xmin {
				xmin = s.X[i]
			}
			if s.X[i] > xmax {
				xmax = s.X[i]
			}
			if s.Y[i] < ymin {
				ymin = s.Y[i]
			}
			if s.Y[i] > ymax {
				ymax = s.Y[i]
			}
		}
	}
	return xmin, xmax, ymin, ymax, !first
}
