package experiments

import "testing"

func TestExtRetentionShape(t *testing.T) {
	f := ExtRetention(env())
	if len(f.Series) != 4 {
		t.Fatalf("%d series, want 4", len(f.Series))
	}
	svR := findSeries(t, f, "RBER ISPP-SV")
	dvR := findSeries(t, f, "RBER ISPP-DV")
	svT := findSeries(t, f, "t required ISPP-SV")
	dvT := findSeries(t, f, "t required ISPP-DV")
	for i := range svR.X {
		if dvR.Y[i] >= svR.Y[i] {
			t.Fatalf("DV RBER not below SV at %g h", svR.X[i])
		}
		if dvT.Y[i] > svT.Y[i] {
			t.Fatalf("DV required t above SV at %g h", svR.X[i])
		}
		if i > 0 && svR.Y[i] < svR.Y[i-1] {
			t.Fatal("retention RBER not monotone")
		}
		if i > 0 && svT.Y[i] < svT.Y[i-1] {
			t.Fatal("required t not monotone in retention")
		}
	}
	// The bake must materially move the requirement over 5 decades.
	if svT.Y[len(svT.Y)-1] <= svT.Y[0] {
		t.Fatal("retention never raised the SV capability requirement")
	}
}

func TestExtMultiDieShape(t *testing.T) {
	f, err := ExtMultiDie(env())
	if err != nil {
		t.Fatal(err)
	}
	nom := findSeries(t, f, "read nominal")
	fast := findSeries(t, f, "read max-read")
	if len(nom.X) != 8 || len(fast.X) != 8 {
		t.Fatalf("die sweep lengths %d/%d", len(nom.X), len(fast.X))
	}
	for i := range nom.X {
		if fast.Y[i] < nom.Y[i] {
			t.Fatalf("max-read slower than nominal at %g dies", nom.X[i])
		}
		if i > 0 && nom.Y[i] < nom.Y[i-1]-1e-9 {
			t.Fatal("nominal scaling not monotone")
		}
	}
	// The gain persists at the high-die end.
	last := len(nom.X) - 1
	if fast.Y[last]/nom.Y[last] < 1.2 {
		t.Fatalf("multi-die gain collapsed: %.2f vs %.2f", fast.Y[last], nom.Y[last])
	}
}

func TestExtReadDisturbShape(t *testing.T) {
	f := ExtReadDisturb(env())
	svR := findSeries(t, f, "RBER ISPP-SV")
	svT := findSeries(t, f, "t required ISPP-SV")
	dvT := findSeries(t, f, "t required ISPP-DV")
	for i := 1; i < len(svR.X); i++ {
		if svR.Y[i] < svR.Y[i-1] {
			t.Fatal("disturb RBER not monotone")
		}
	}
	if svT.Y[len(svT.Y)-1] <= svT.Y[0] {
		t.Fatal("disturb never raised the SV capability requirement")
	}
	// The cross-layer headroom: DV keeps the requirement below SV's even
	// at extreme read counts.
	last := len(svT.Y) - 1
	if dvT.Y[last] >= svT.Y[last] {
		t.Fatal("DV headroom lost under heavy disturb")
	}
}

// TestExtReadRetryShape checks the recovery figure. Plain monotonicity
// of Y would be tautological (each point multiplies another tail in),
// so the model content is asserted on the per-step failure tails
// instead: for the baked series, the marginal tail of a calibrated
// retry (Y[i]/Y[i-1]) must sit well below the single-shot tail Y[0] —
// the shifted re-sense is a genuinely better read, not just another
// identical coin flip. A recovery-model regression that made retries
// no better than (or worse than) the nominal read fails this.
func TestExtReadRetryShape(t *testing.T) {
	f := ExtReadRetry(env())
	if len(f.Series) != 6 {
		t.Fatalf("want 2 algorithms x 3 ages = 6 series, got %d", len(f.Series))
	}
	for _, s := range f.Series[:3] { // the ISPP-SV series carry the distress
		if s.Y[0] <= 0 {
			t.Fatalf("series %q has non-positive single-shot UBER %g", s.Name, s.Y[0])
		}
		perStep := s.Y[1] / s.Y[0]
		if perStep >= s.Y[0]*1e-2 {
			t.Fatalf("series %q first retry tail %g not well below single-shot tail %g; recovery inert",
				s.Name, perStep, s.Y[0])
		}
	}
	// The SV end-of-life series is the recovery showcase: a deep ladder
	// must buy orders of magnitude of UBER.
	eol := f.Series[2]
	first, last := eol.Y[0], eol.Y[len(eol.Y)-1]
	if first < 1e-6 {
		t.Fatalf("series %q not in distress single-shot (UBER %g); figure shows nothing", eol.Name, first)
	}
	if last > first*1e-3 {
		t.Fatalf("series %q ladder recovered only %g -> %g; want orders of magnitude", eol.Name, first, last)
	}
}
