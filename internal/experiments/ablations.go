package experiments

import (
	"fmt"

	"xlnand/internal/bch"
	"xlnand/internal/nand"
	"xlnand/internal/sim"
	"xlnand/internal/stats"
)

func sprintf(format string, args ...interface{}) string {
	return fmt.Sprintf(format, args...)
}

// AblationBlockSize quantifies §6.2's block-size argument against Chen et
// al. [28]: larger ECC blocks protect the same data with fewer parity
// bits. For 512 B, 2 KB and 4 KB blocks it plots the spare-area overhead
// (parity bits per data bit, with every block of a 4 KB page protected
// independently) needed to hold UBER <= 1e-11 across the SV RBER range.
func AblationBlockSize(env sim.Env) (Figure, error) {
	f := Figure{
		ID:     "abl-blocksize",
		Title:  "Parity overhead vs ECC block size (target UBER 1e-11)",
		XLabel: "RBER",
		YLabel: "Parity overhead [%]",
		LogX:   true,
		Notes: []string{
			"4 KB page split into independent blocks; per-block UBER budget scaled so the page-level target holds",
		},
	}
	grid := stats.LogSpace(1e-6, 1e-3, 13)
	type cfg struct {
		name   string
		kBits  int
		m      int
		blocks int // blocks per 4 KB page
	}
	cfgs := []cfg{
		{"512 B blocks (Chen et al. [28])", 512 * 8, 13, 8},
		{"2 KB blocks", 2048 * 8, 15, 2},
		{"4 KB page (this work)", 4096 * 8, 16, 1},
	}
	for _, c := range cfgs {
		ys := make([]float64, len(grid))
		for i, r := range grid {
			// The page fails if any constituent block fails; give each
			// block an equal share of the UBER budget.
			target := env.TargetUBER / float64(c.blocks)
			t, err := bch.RequiredT(c.m, c.kBits, r, target, 1024)
			if err != nil {
				return f, err
			}
			parityBits := c.m * t * c.blocks
			ys[i] = 100 * float64(parityBits) / float64(4096*8)
		}
		f.mustAdd(c.name, grid, ys)
	}
	return f, nil
}

// AblationISPP sweeps the conventional single-knob alternative to DV:
// shrinking ΔISPP on plain ISPP-SV. It plots program time and the
// programmed-distribution spread (Monte-Carlo) per step size, with
// ISPP-DV at the nominal step as the cross-layer reference point.
func AblationISPP(env sim.Env, seed uint64) (Figure, error) {
	f := Figure{
		ID:     "abl-ispp",
		Title:  "Distribution compaction: ΔISPP shrink vs double verify",
		XLabel: "ΔISPP [V]",
		YLabel: "L2 sigma [mV] / program time [10 µs]",
		Notes: []string{
			"series 'sigma': programmed L2 spread; series 'time': full-page program time; DV point plotted at its effective fine step",
		},
	}
	steps := []float64{0.10, 0.15, 0.20, 0.25, 0.35, 0.50}
	const cells = 2048
	sigma := make([]float64, len(steps))
	times := make([]float64, len(steps))
	rng := stats.NewRNG(seed)
	for i, st := range steps {
		cal := env.Cal
		cal.DeltaISPP = st
		sim := nand.NewPageSim(cal, cells, rng.Split())
		aged := cal.Age(0)
		sim.Erase(aged)
		targets := make([]nand.Level, cells)
		for j := range targets {
			targets[j] = nand.L2
		}
		res, err := sim.Program(targets, nand.ISPPSV, aged)
		if err != nil {
			return f, err
		}
		sigma[i] = stats.Summarize(sim.VTHs()).Std * 1e3
		full := nand.EstimateProgram(cal, nand.ISPPSV, aged)
		times[i] = full.Duration.Seconds() * 1e5 // units of 10 µs
		_ = res
	}
	f.mustAdd("SV sigma [mV]", steps, sigma)
	f.mustAdd("SV program time [10 µs]", steps, times)

	// The DV reference at the nominal 0.25 V step.
	dvSim := nand.NewPageSim(env.Cal, cells, rng.Split())
	aged := env.Cal.Age(0)
	dvSim.Erase(aged)
	targets := make([]nand.Level, cells)
	for j := range targets {
		targets[j] = nand.L2
	}
	if _, err := dvSim.Program(targets, nand.ISPPDV, aged); err != nil {
		return f, err
	}
	dvStep := env.Cal.DeltaISPP * env.Cal.DVStepFactor
	f.mustAdd("DV sigma [mV]", []float64{dvStep}, []float64{stats.Summarize(dvSim.VTHs()).Std * 1e3})
	dvTime := nand.EstimateProgram(env.Cal, nand.ISPPDV, aged)
	f.mustAdd("DV program time [10 µs]", []float64{dvStep}, []float64{dvTime.Duration.Seconds() * 1e5})
	return f, nil
}

// AblationParallelism sweeps the decoder's Chien parallelism h and LFSR
// parallelism p, plotting worst-case decode latency at t = 65 against
// the Galois-multiplier budget — the area/latency trade-off of §4.
func AblationParallelism(env sim.Env) Figure {
	f := Figure{
		ID:     "abl-parallelism",
		Title:  "Decoder latency vs area across (p, h) at t = 65",
		XLabel: "Galois multipliers",
		YLabel: "Decode latency [µs]",
	}
	t := env.TMax
	n := env.K + env.M*t
	for _, p := range []int{4, 8, 16} {
		xs := []float64{}
		ys := []float64{}
		for _, h := range []int{8, 16, 32, 64, 128} {
			hw := env.HW
			hw.ParallelismP = p
			hw.ChienParallelismH = h
			xs = append(xs, float64(hw.GateEstimate(t)))
			ys = append(ys, hw.DecodeLatency(n, t).Seconds()*1e6)
		}
		f.mustAdd(sprintf("p = %d", p), xs, ys)
	}
	return f
}

// AblationLoadStrategy quantifies §6.3.3's mitigation: the DV
// write-throughput loss under the full-sequence strategy (Fig. 9's
// assumption) against the two-round data-load strategy, across the
// lifetime.
func AblationLoadStrategy(env sim.Env) Figure {
	f := Figure{
		ID:     "abl-loadstrategy",
		Title:  "Write-loss mitigation by the two-round data load (§6.3.3)",
		XLabel: "Program/Erase cycles",
		YLabel: "Write Throughput Loss [%]",
		LogX:   true,
	}
	grid := stats.LogSpace(1, 1e6, 13)
	for _, strat := range []nand.LoadStrategy{nand.FullSequence, nand.TwoRound} {
		ys := make([]float64, len(grid))
		for i, n := range grid {
			ys[i] = 100 * nand.WriteLossStrategy(env.Cal, nand.ISPPDV, strat, n)
		}
		f.mustAdd(strat.String(), grid, ys)
	}
	return f
}

// AblationApproximation compares the paper's dominant-term UBER (Eq. 1)
// with the full tail accumulation across the operating RBER range at the
// paper's two end-point capabilities, quantifying how tight Eq. 1 is in
// its intended regime.
func AblationApproximation(env sim.Env) Figure {
	f := Figure{
		ID:     "abl-approx",
		Title:  "Eq. 1 dominant term vs full uncorrectable tail",
		XLabel: "RBER",
		YLabel: "tail / Eq.1 ratio",
		LogX:   true,
	}
	grid := stats.LogSpace(1e-7, 1e-3, 17)
	for _, t := range []int{3, 14, 65} {
		n := env.K + env.M*t
		ys := make([]float64, len(grid))
		for i, r := range grid {
			ys[i] = bch.UBERTail(n, t, r) / bch.UBER(n, t, r)
		}
		f.mustAdd(sprintf("t = %d", t), grid, ys)
	}
	return f
}
