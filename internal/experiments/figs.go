package experiments

import (
	"math"

	"xlnand/internal/bch"
	"xlnand/internal/nand"
	"xlnand/internal/sim"
	"xlnand/internal/stats"
)

// lifetimeGrid is the P/E-cycle sweep used by the lifetime figures.
func lifetimeGrid(points int) []float64 {
	return stats.LogSpace(1e0, 1e6, points)
}

// Fig04 reproduces the compact-model fit: cell V_TH against the ISPP
// staircase (7 µs pulses, ΔISPP = 1 V), simulated model vs (synthetic)
// experimental reference.
func Fig04(env sim.Env, seed uint64) Figure {
	f := Figure{
		ID:     "fig04",
		Title:  "NAND compact model fit during ISPP (1 V steps)",
		XLabel: "VCG [V]",
		YLabel: "VTH [V]",
		Notes: []string{
			"reference curve is synthesised from published ISPP physics in place of the 41 nm measurements of Spessot et al. [26] (DESIGN.md §3)",
		},
	}
	rng := stats.NewRNG(seed)
	simCurve := env.Cal.SimulateTransferCurve(6, 24, 1.0, -6)
	refCurve := env.Cal.ReferenceTransferCurve(6, 24, 1.0, -6, rng)
	f.mustAdd("Simulated", simCurve.VCG, simCurve.VTH)
	f.mustAdd("Experimental (synthetic)", refCurve.VCG, refCurve.VTH)
	f.Notes = append(f.Notes, fmtNote("RMS fit error = %.3f V", nand.RMSDiff(simCurve, refCurve)))
	return f
}

// Fig05 reproduces the RBER-vs-cycling characterisation for both program
// algorithms: one order of magnitude between the curves across the
// lifetime.
func Fig05(env sim.Env) Figure {
	f := Figure{
		ID:     "fig05",
		Title:  "RBER characterisation, ISPP-SV vs ISPP-DV",
		XLabel: "Program/Erase cycles",
		YLabel: "RBER",
		LogX:   true,
		LogY:   true,
	}
	grid := stats.LogSpace(1e2, 1e6, 17)
	sv := make([]float64, len(grid))
	dv := make([]float64, len(grid))
	for i, n := range grid {
		sv[i] = env.Cal.RBER(nand.ISPPSV, n)
		dv[i] = env.Cal.RBER(nand.ISPPDV, n)
	}
	f.mustAdd("RBER ISPP-SV", grid, sv)
	f.mustAdd("RBER ISPP-DV", grid, dv)
	return f
}

// Fig06 reproduces the program power characterisation: SV/DV × L1/L2/L3
// patterns over the lifetime.
func Fig06(env sim.Env) (Figure, error) {
	f := Figure{
		ID:     "fig06",
		Title:  "Program power, ISPP-SV vs ISPP-DV, per target pattern",
		XLabel: "Program/Erase cycles",
		YLabel: "Power [W]",
		LogX:   true,
	}
	grid := stats.LogSpace(1e0, 1e5, 11)
	for _, alg := range []nand.Algorithm{nand.ISPPSV, nand.ISPPDV} {
		for _, pat := range []nand.Level{nand.L1, nand.L2, nand.L3} {
			ys := make([]float64, len(grid))
			for i, n := range grid {
				rep, err := env.Power.ProgramPower(env.Cal, alg, pat, n)
				if err != nil {
					return f, err
				}
				ys[i] = rep.AveragePowerW
			}
			f.mustAdd(alg.String()+" "+pat.String()+" Pattern", grid, ys)
		}
	}
	return f, nil
}

// fig07 builds the UBER-vs-RBER family for the given RBER range and
// capability selection, shared by Fig. 7 (SV) and the paper's
// mis-referenced DV twin.
func fig07(id, title string, env sim.Env, rberLo, rberHi float64, ts []int) Figure {
	f := Figure{
		ID:     id,
		Title:  title,
		XLabel: "RBER",
		YLabel: "UBER (Eq. 1)",
		LogX:   true,
		LogY:   true,
		Notes: []string{
			"horizontal reference: manufacturer target UBER = 1e-11",
		},
	}
	grid := stats.LogSpace(rberLo, rberHi, 25)
	for _, t := range ts {
		n := env.K + env.M*t
		xs := make([]float64, 0, len(grid))
		ys := make([]float64, 0, len(grid))
		for _, r := range grid {
			// Eq. 1 is meaningful on its sparse (increasing) branch,
			// n·RBER < t+1; beyond it the dominant-term value turns
			// over, which the paper never plots.
			if r*float64(n) >= float64(t+1) {
				continue
			}
			u := bch.UBER(n, t, r)
			// Keep the plotted family inside the paper's axis decade
			// range; Eq. 1 spans hundreds of decades otherwise.
			if u < 1e-14 || u > 1e-8 {
				continue
			}
			xs = append(xs, r)
			ys = append(ys, u)
		}
		f.mustAdd(fmtNote("t = %d", t), xs, ys)
	}
	// The target line.
	f.mustAdd("UBER target", []float64{rberLo, rberHi}, []float64{1e-11, 1e-11})
	return f
}

// Fig07 reproduces the UBER/RBER relation for the ISPP-SV RBER range,
// with the paper's annotated capabilities t ∈ {3, 4, 27, 30, 65}.
func Fig07(env sim.Env) Figure {
	return fig07("fig07", "UBER vs RBER, ISPP-SV range", env, 1e-6, 1e-3,
		[]int{3, 4, 27, 30, 65})
}

// Fig07DV reproduces the DV twin ("Fig. ??" in the paper text): the same
// relation over the ISPP-DV RBER range, where t_max = 14.
func Fig07DV(env sim.Env) Figure {
	f := fig07("fig07dv", "UBER vs RBER, ISPP-DV range", env, 1e-7, 1e-4,
		[]int{3, 4, 8, 14})
	f.Notes = append(f.Notes,
		"the paper references this figure as 'Fig. ??'; reproduced from §6.2's tMAX = 14 statement")
	return f
}

// Fig08 reproduces the codec latency over the lifetime at 80 MHz: encode
// and decode, under the SV and DV capability schedules.
func Fig08(env sim.Env) Figure {
	f := Figure{
		ID:     "fig08",
		Title:  "ECC latency vs lifetime (80 MHz)",
		XLabel: "Program/Erase cycles",
		YLabel: "Latency [µs]",
		LogX:   true,
	}
	grid := lifetimeGrid(13)
	mk := func(alg nand.Algorithm, decode bool) []float64 {
		ys := make([]float64, len(grid))
		for i, n := range grid {
			t := env.RequiredT(alg, n)
			cw := env.K + env.M*t
			if decode {
				ys[i] = env.HW.DecodeLatency(cw, t).Seconds() * 1e6
			} else {
				ys[i] = env.HW.EncodeLatency(env.K).Seconds() * 1e6
			}
		}
		return ys
	}
	f.mustAdd("ISPP-SV ECC Encoding", grid, mk(nand.ISPPSV, false))
	f.mustAdd("ISPP-DV ECC Encoding", grid, mk(nand.ISPPDV, false))
	f.mustAdd("ISPP-SV ECC Decoding", grid, mk(nand.ISPPSV, true))
	f.mustAdd("ISPP-DV ECC Decoding", grid, mk(nand.ISPPDV, true))
	return f
}

// Fig09 reproduces the write-throughput penalty of the cross-layer modes
// (both switch the physical layer to ISPP-DV) against the SV baseline.
func Fig09(env sim.Env) (Figure, error) {
	f := Figure{
		ID:     "fig09",
		Title:  "Write throughput loss of the cross-layer configuration",
		XLabel: "Program/Erase cycles",
		YLabel: "Write Throughput Loss [%]",
		LogX:   true,
	}
	grid := lifetimeGrid(13)
	ys := make([]float64, len(grid))
	for i, n := range grid {
		nom, err := env.EvaluateMode(sim.ModeNominal, n)
		if err != nil {
			return f, err
		}
		dv, err := env.EvaluateMode(sim.ModeMaxRead, n)
		if err != nil {
			return f, err
		}
		ys[i] = 100 * (1 - dv.WriteMBps/nom.WriteMBps)
	}
	f.mustAdd("Write throughput loss", grid, ys)
	return f, nil
}

// Fig10 reproduces the UBER improvement of §6.3.1: the physical layer
// switches to ISPP-DV while the ECC keeps the nominal (SV-sized)
// capability schedule.
func Fig10(env sim.Env) (Figure, error) {
	f := Figure{
		ID:     "fig10",
		Title:  "UBER improvement at constant ECC configuration",
		XLabel: "Program/Erase cycles",
		YLabel: "UBER",
		LogX:   true,
		LogY:   true,
		Notes: []string{
			"modified-curve values below 1e-21 are clamped to the paper's axis floor",
		},
	}
	grid := lifetimeGrid(13)
	nominal := make([]float64, len(grid))
	modified := make([]float64, len(grid))
	const floor = 1e-21 // the paper's axis bottom
	for i, n := range grid {
		nom, err := env.EvaluateMode(sim.ModeNominal, n)
		if err != nil {
			return f, err
		}
		mod, err := env.EvaluateMode(sim.ModeMinUBER, n)
		if err != nil {
			return f, err
		}
		nominal[i] = nom.UBER
		modified[i] = math.Max(mod.UBER, floor)
	}
	f.mustAdd("Nominal", grid, nominal)
	f.mustAdd("Physical Layer Modification", grid, modified)
	return f, nil
}

// Fig11 reproduces the read-throughput gain of §6.3.2: ISPP-DV with the
// ECC relaxed to hold UBER = 1e-11.
func Fig11(env sim.Env) (Figure, error) {
	f := Figure{
		ID:     "fig11",
		Title:  "Read throughput gain of the cross-layer optimisation",
		XLabel: "Program/Erase cycles",
		YLabel: "Read Throughput Gain [%]",
		LogX:   true,
	}
	grid := lifetimeGrid(13)
	ys := make([]float64, len(grid))
	for i, n := range grid {
		nom, err := env.EvaluateMode(sim.ModeNominal, n)
		if err != nil {
			return f, err
		}
		fast, err := env.EvaluateMode(sim.ModeMaxRead, n)
		if err != nil {
			return f, err
		}
		ys[i] = 100 * (fast.ReadMBps/nom.ReadMBps - 1)
	}
	f.mustAdd("Read throughput gain", grid, ys)
	return f, nil
}

func fmtNote(format string, args ...interface{}) string {
	return sprintf(format, args...)
}
