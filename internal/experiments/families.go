package experiments

import (
	"math"

	"xlnand/internal/bch"
	"xlnand/internal/rs"
	"xlnand/internal/sim"
	"xlnand/internal/stats"
)

// AblationECCFamilies compares the three ECC families of the paper's
// related-work landscape on the 4 KB page at their natural geometries:
//
//   - SEC-DED Hamming per 512 B block (the low-end option of §1 [2]):
//     corrects 1 bit per block, 14 check bits each;
//   - RS(255, 223) over GF(2^8) interleaved across the page ([14]):
//     corrects 16 symbol errors per codeword, 32 parity bytes each;
//   - adaptive BCH over the whole page (this work) at the capability
//     whose parity cost matches RS (t = 64 -> 128 parity bytes vs RS's
//     19×32 = 608; BCH shown at both t=14 and t=64 to bracket).
//
// The figure plots page-level UBER vs RBER analytically (independent
// bit errors, the paper's §4 assumption), exposing why BCH with long
// blocks wins for NAND's non-correlated errors.
func AblationECCFamilies(env sim.Env) Figure {
	f := Figure{
		ID:     "abl-eccfam",
		Title:  "ECC family comparison on a 4 KB page (UBER vs RBER)",
		XLabel: "RBER",
		YLabel: "UBER",
		LogX:   true,
		LogY:   true,
		Notes: []string{
			"Hamming: 8 SEC-DED(512 B) blocks, 14 B parity/page",
			"RS: 19 interleaved RS(255,223) codewords, 608 B parity/page (overflows a 224 B spare area)",
			"BCH: single 4 KB codeword, t=14 (28 B) and t=64 (128 B) parity",
		},
	}
	grid := stats.LogSpace(1e-7, 1e-3, 17)
	floor := math.Log(1e-40)

	// Hamming SEC-DED per 512 B: block fails when >= 2 of its
	// 4096+14 bits err; page UBER = P_fail_block * blocks / page bits.
	hamming := make([]float64, len(grid))
	const hBlockBits = 512*8 + 14
	for i, p := range grid {
		lp := stats.LogBinomTail(hBlockBits, 2, p)
		lu := lp + math.Log(8) - math.Log(4096*8)
		hamming[i] = math.Exp(math.Max(lu, floor))
	}
	f.mustAdd("Hamming SEC-DED 512 B", grid, hamming)

	// RS(255,223): symbol error rate from bit RBER; codeword fails at
	// >= 17 symbol errors. 19 codewords cover 4 KB (4237 data bytes).
	rsUBER := make([]float64, len(grid))
	for i, p := range grid {
		ps := rs.SymbolErrorRate(p)
		lp := stats.LogBinomTail(255, 17, ps)
		lu := lp + math.Log(19) - math.Log(4096*8)
		rsUBER[i] = math.Exp(math.Max(lu, floor))
	}
	f.mustAdd("RS(255,223) x19", grid, rsUBER)

	// BCH page codes at bracketing capabilities.
	for _, t := range []int{14, 64} {
		n := env.K + env.M*t
		ys := make([]float64, len(grid))
		for i, p := range grid {
			ys[i] = math.Exp(math.Max(bch.LogUBERTail(n, t, p), floor))
		}
		f.mustAdd(fmtNote("BCH 4KB t=%d", t), grid, ys)
	}
	return f
}
