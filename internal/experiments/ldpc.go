package experiments

import (
	"math"

	"time"

	"xlnand/internal/bch"
	"xlnand/internal/ldpc"
	"xlnand/internal/nand"
	"xlnand/internal/sim"
)

// ExtLDPCFamilies is the Fig. 7-style family comparison at the recovery
// endgame: post-recovery UBER versus P/E cycles after a deep shelf bake,
// for the full BCH hard-retry ladder (t = 65, every reference shift
// tried), the LDPC hard-decision ladder, and the LDPC ladder with the
// soft-sense rung appended. The soft series keeps the UBER at or below
// the target out to wear where BOTH hard-decision ladders are
// uncorrectable — and the second series group prices it: the modelled
// end-of-life read throughput of each path, where the soft rung's extra
// component senses, transfers and min-sum iterations are visible as the
// lowest MB/s of the three. UBER curves and throughput curves share the
// log Y axis (MB/s values sit decades above the UBER floor); the table
// rendering keeps the units separate.
func ExtLDPCFamilies(env sim.Env) (Figure, error) {
	f := Figure{
		ID:     "ext-ldpc",
		Title:  "Codec families at the recovery endgame: BCH ladder vs LDPC hard vs LDPC soft (extension)",
		XLabel: "P/E cycles",
		YLabel: "post-recovery UBER  /  read MB/s",
		LogX:   true,
		LogY:   true,
		Notes: []string{
			"deep shelf bake: 1e5 h on the shelf after the last rewrite; ladder = every calibrated reference shift",
			"ladder UBER multiplies per-step uncorrectable tails (independent re-senses); soft rung appended for LDPC-soft",
			"[MB/s] series: modelled read throughput when the path's full recovery walk engages",
			"LDPC capability model: calibrated caps as effective bounded distance (internal/ldpc)",
		},
	}
	lc, err := ldpc.NewPageCodec()
	if err != nil {
		return f, err
	}
	s := nand.DefaultStressConfig()
	const bake = 1e5 // hours on the shelf — the beyond-datasheet audit
	const floor = -230.0
	bchT := env.TMax
	bchN := env.K + env.M*bchT
	lvl := lc.MaxLevel()
	ldpcN, err := lc.CodewordBits(lvl)
	if err != nil {
		return f, err
	}

	// ladderLogFail returns ln P(every hard rung fails) for one
	// codeword: per-step uncorrectable-tail probabilities multiplied
	// across independent re-senses. (Per-codeword, NOT per-bit — the
	// callers normalise to UBER once at the end; multiplying per-bit
	// UBERs across stages would divide by n per stage.)
	ladderLogFail := func(n, cap int, cycles float64) float64 {
		lf := 0.0
		lnN := math.Log(float64(n))
		for step := 0; step <= s.RetrySteps; step++ {
			rber := env.Cal.RecoveredRBER(s, nand.ISPPSV, cycles, 0, bake, step)
			lf += bch.LogUBERTail(n, cap, rber) + lnN
		}
		return lf
	}
	// softRBER mirrors the device's soft-sense bracket: component senses
	// around one step short of the deepest shift, best bracketed step
	// wins.
	softRBER := func(cycles float64) float64 {
		center := s.RetrySteps - 1
		if center < 0 {
			center = 0
		}
		best := math.Inf(1)
		for st := center - 1; st <= center+1; st++ {
			if st < 0 || st > s.RetrySteps {
				continue
			}
			if r := env.Cal.RecoveredRBER(s, nand.ISPPSV, cycles, 0, bake, st); r < best {
				best = r
			}
		}
		return best
	}

	grid := logGrid(1e4, 4e7, 22)
	bchU := make([]float64, len(grid))
	hardU := make([]float64, len(grid))
	softU := make([]float64, len(grid))
	lnNB, lnNL := math.Log(float64(bchN)), math.Log(float64(ldpcN))
	for i, cyc := range grid {
		bchU[i] = math.Exp(math.Max(ladderLogFail(bchN, bchT, cyc)-lnNB, floor))
		lfHard := ladderLogFail(ldpcN, lc.CorrectionCap(lvl), cyc)
		hardU[i] = math.Exp(math.Max(lfHard-lnNL, floor))
		lfSoft := lfHard + bch.LogUBERTail(ldpcN, lc.SoftCorrectionCap(lvl), softRBER(cyc)) + lnNL
		softU[i] = math.Exp(math.Max(lfSoft-lnNL, floor))
	}
	f.mustAdd("BCH t=65 + hard ladder", grid, bchU)
	f.mustAdd("LDPC hard + ladder", grid, hardU)
	f.mustAdd("LDPC soft (ladder + soft rung)", grid, softU)

	// Price of the paths at the same climates: modelled read throughput
	// when the full recovery walk engages. The BCH/LDPC-hard walks pay
	// every rung (tR + transfer + decode each); the soft path pays the
	// whole hard walk PLUS the multi-sense read and the soft-input
	// decode — visibly the slowest line.
	attempts := time.Duration(s.RetrySteps + 1)
	payload := float64(env.K / 8)
	mbps := func(total time.Duration) float64 {
		return payload / total.Seconds() / 1e6
	}
	hwBCH := bch.NewHWCodec(mustPageBCH(env), env.HW)
	xferB := env.Bus.Transfer(bchN / 8)
	xferL := env.Bus.Transfer(ldpcN / 8)
	bchWalk := attempts * (nand.PageReadTime + xferB + hwBCH.DecodeLatency(bchT, false))
	hardWalk := attempts * (nand.PageReadTime + xferL + lc.DecodeLatency(lvl, false))
	senses := time.Duration(s.SoftSenses)
	softWalk := hardWalk + senses*(nand.PageReadTime+xferL) + lc.SoftDecodeLatency(lvl)
	flat := func(v float64) []float64 {
		out := make([]float64, len(grid))
		for i := range out {
			out[i] = v
		}
		return out
	}
	f.mustAdd("BCH ladder walk [MB/s]", grid, flat(mbps(bchWalk)))
	f.mustAdd("LDPC hard walk [MB/s]", grid, flat(mbps(hardWalk)))
	f.mustAdd("LDPC soft path [MB/s]", grid, flat(mbps(softWalk)))
	return f, nil
}

// logGrid returns k log-spaced points in [lo, hi].
func logGrid(lo, hi float64, k int) []float64 {
	out := make([]float64, k)
	ratio := math.Pow(hi/lo, 1/float64(k-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	return out
}

// mustPageBCH builds the env-geometry BCH codec (construction cannot
// fail for the default env; an invalid env panics loudly in tests).
func mustPageBCH(env sim.Env) *bch.Codec {
	c, err := bch.NewCodec(env.M, env.K, env.TMin, env.TMax)
	if err != nil {
		panic(err)
	}
	return c
}
