package experiments

import (
	"math"
	"testing"

	"xlnand/internal/sim"
)

func env() sim.Env { return sim.DefaultEnv() }

func findSeries(t *testing.T, f Figure, name string) Series {
	t.Helper()
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("%s: series %q missing (have %v)", f.ID, name, seriesNames(f))
	return Series{}
}

func seriesNames(f Figure) []string {
	out := make([]string, len(f.Series))
	for i, s := range f.Series {
		out[i] = s.Name
	}
	return out
}

func TestFig04Shape(t *testing.T) {
	f := Fig04(env(), 1)
	simS := findSeries(t, f, "Simulated")
	ref := findSeries(t, f, "Experimental (synthetic)")
	if len(simS.X) != 19 || len(ref.X) != 19 {
		t.Fatalf("unexpected grid sizes %d/%d", len(simS.X), len(ref.X))
	}
	// Golden shape: staircase saturates with unit slope; curves agree.
	last := len(simS.Y) - 1
	slope := (simS.Y[last] - simS.Y[last-3]) / (simS.X[last] - simS.X[last-3])
	if math.Abs(slope-1) > 0.01 {
		t.Fatalf("saturated slope %v != 1", slope)
	}
	var rms float64
	for i := range simS.Y {
		d := simS.Y[i] - ref.Y[i]
		rms += d * d
	}
	rms = math.Sqrt(rms / float64(len(simS.Y)))
	if rms > 0.5 {
		t.Fatalf("model-vs-reference RMS %v V too large", rms)
	}
}

func TestFig05Shape(t *testing.T) {
	f := Fig05(env())
	sv := findSeries(t, f, "RBER ISPP-SV")
	dv := findSeries(t, f, "RBER ISPP-DV")
	for i := range sv.X {
		ratio := sv.Y[i] / dv.Y[i]
		if ratio < 8 || ratio > 16 {
			t.Fatalf("SV/DV separation %v at N=%g not ≈ one decade", ratio, sv.X[i])
		}
		if i > 0 && sv.Y[i] < sv.Y[i-1] {
			t.Fatal("SV RBER not monotone")
		}
	}
	// Endpoint anchors.
	if math.Abs(sv.Y[len(sv.Y)-1]-1e-3)/1e-3 > 0.01 {
		t.Fatalf("SV endpoint %g, want 1e-3", sv.Y[len(sv.Y)-1])
	}
}

func TestFig06Shape(t *testing.T) {
	f, err := Fig06(env())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 6 {
		t.Fatalf("Fig. 6 needs 6 series, got %d", len(f.Series))
	}
	sv2 := findSeries(t, f, "ISPP-SV L2 Pattern")
	dv2 := findSeries(t, f, "ISPP-DV L2 Pattern")
	for i := range sv2.X {
		delta := dv2.Y[i] - sv2.Y[i]
		if delta < 4e-3 || delta > 12e-3 {
			t.Fatalf("DV-SV power delta %v W at N=%g outside the ≈7.5 mW band", delta, sv2.X[i])
		}
		if sv2.Y[i] < 0.14 || dv2.Y[i] > 0.19 {
			t.Fatalf("power outside Fig. 6 axis band at N=%g", sv2.X[i])
		}
	}
	// Pattern ordering L1 < L2 < L3 for both algorithms.
	for _, alg := range []string{"ISPP-SV", "ISPP-DV"} {
		l1 := findSeries(t, f, alg+" L1 Pattern")
		l2 := findSeries(t, f, alg+" L2 Pattern")
		l3 := findSeries(t, f, alg+" L3 Pattern")
		for i := range l1.X {
			if !(l1.Y[i] < l2.Y[i] && l2.Y[i] < l3.Y[i]) {
				t.Fatalf("%s pattern power not ordered at N=%g", alg, l1.X[i])
			}
		}
	}
}

func TestFig07Shape(t *testing.T) {
	f := Fig07(env())
	// Expect one series per annotated t plus the target line.
	if len(f.Series) != 6 {
		t.Fatalf("Fig. 7 has %d series, want 6", len(f.Series))
	}
	// Higher t curves must sit at higher RBER for the same UBER: check
	// that the t=65 series spans RBER near 1e-3 while t=3 lives near
	// 1e-6.
	t3 := findSeries(t, f, "t = 3")
	t65 := findSeries(t, f, "t = 65")
	if len(t3.X) == 0 || len(t65.X) == 0 {
		t.Fatal("annotated series empty within plot window")
	}
	if t3.X[len(t3.X)-1] > 1e-4 {
		t.Fatalf("t=3 curve extends to RBER %g inside plot window", t3.X[len(t3.X)-1])
	}
	if t65.X[0] < 1e-4 {
		t.Fatalf("t=65 curve starts at RBER %g, expected near 1e-3", t65.X[0])
	}
	// Every in-window UBER point lies within the plot decades.
	for _, s := range f.Series[:5] {
		for i, u := range s.Y {
			if u < 1e-14 || u > 1e-8 {
				t.Fatalf("series %q point %d UBER %g outside window", s.Name, i, u)
			}
		}
	}
}

func TestFig07DVShape(t *testing.T) {
	f := Fig07DV(env())
	t14 := findSeries(t, f, "t = 14")
	if len(t14.X) == 0 {
		t.Fatal("t=14 series empty")
	}
	// t=14 must cover the DV end-of-life RBER ≈ 8.4e-5.
	covers := false
	for _, x := range t14.X {
		if x > 6e-5 && x < 1.2e-4 {
			covers = true
		}
	}
	if !covers {
		t.Fatal("t=14 curve does not cover the DV end-of-life RBER")
	}
}

func TestFig08Shape(t *testing.T) {
	f := Fig08(env())
	encSV := findSeries(t, f, "ISPP-SV ECC Encoding")
	decSV := findSeries(t, f, "ISPP-SV ECC Decoding")
	decDV := findSeries(t, f, "ISPP-DV ECC Decoding")
	// Encoding flat at ≈ 51 µs.
	for i := range encSV.Y {
		if math.Abs(encSV.Y[i]-encSV.Y[0]) > 1e-9 {
			t.Fatal("encode latency not flat over lifetime")
		}
	}
	if encSV.Y[0] < 45 || encSV.Y[0] > 60 {
		t.Fatalf("encode latency %v µs, want ≈ 51", encSV.Y[0])
	}
	// SV decode grows from ≈ 60 µs to ≈ 150-170 µs; DV stays much lower.
	first, last := decSV.Y[0], decSV.Y[len(decSV.Y)-1]
	if first < 55 || first > 80 {
		t.Fatalf("fresh SV decode %v µs", first)
	}
	if last < 140 || last > 180 {
		t.Fatalf("EOL SV decode %v µs, paper shows ≈ 160", last)
	}
	if dvLast := decDV.Y[len(decDV.Y)-1]; dvLast > first*1.4 {
		t.Fatalf("EOL DV decode %v µs should stay near the fresh level", dvLast)
	}
}

func TestFig09Shape(t *testing.T) {
	f, err := Fig09(env())
	if err != nil {
		t.Fatal(err)
	}
	s := f.Series[0]
	for i, y := range s.Y {
		if y < 35 || y > 55 {
			t.Fatalf("write loss %v%% at N=%g outside the paper's 40-48%% band (±5)", y, s.X[i])
		}
	}
	if s.Y[len(s.Y)-1] <= s.Y[0] {
		t.Fatal("write loss should grow toward end of life")
	}
}

func TestFig10Shape(t *testing.T) {
	f, err := Fig10(env())
	if err != nil {
		t.Fatal(err)
	}
	nom := findSeries(t, f, "Nominal")
	mod := findSeries(t, f, "Physical Layer Modification")
	for i := range nom.X {
		if nom.Y[i] > 2e-11 {
			t.Fatalf("nominal UBER %g above target band at N=%g", nom.Y[i], nom.X[i])
		}
		if mod.Y[i] >= nom.Y[i] {
			t.Fatalf("modified UBER not better at N=%g", nom.X[i])
		}
		// Improvement at least two orders of magnitude (paper: average
		// two, peak four; ours saturates at the 1e-21 plot floor).
		if mod.Y[i] > nom.Y[i]*1e-2 {
			t.Fatalf("improvement below 2 decades at N=%g", nom.X[i])
		}
		if mod.Y[i] < 1e-21 {
			t.Fatal("modified curve fell below the declared plot floor")
		}
	}
}

func TestFig11Shape(t *testing.T) {
	f, err := Fig11(env())
	if err != nil {
		t.Fatal(err)
	}
	s := f.Series[0]
	if g := s.Y[0]; g > 3 {
		t.Fatalf("fresh read gain %v%%, want ≈ 0", g)
	}
	last := s.Y[len(s.Y)-1]
	if last < 15 || last > 50 {
		t.Fatalf("EOL read gain %v%%, paper says up to ≈ 30%%", last)
	}
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] < s.Y[i-1]-3 {
			t.Fatalf("read gain regressed materially at N=%g", s.X[i])
		}
	}
}
