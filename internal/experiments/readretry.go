package experiments

import (
	"fmt"
	"math"

	"xlnand/internal/bch"
	"xlnand/internal/nand"
	"xlnand/internal/sim"
)

// ExtReadRetry extends the evaluation with the staged read-recovery
// ladder: the post-recovery UBER of a retention-baked page versus the
// retry depth the controller is allowed, across the device lifetime and
// for both program algorithms. The capability of each series is the one
// the reliability manager provisions for the *unbaked* climate at that
// wear (with its default safety margin) — exactly the situation the
// ladder exists for: data written with a correctly sized code, then
// drifted past it on the shelf. Each retry is an independent re-sense at
// the next reference offset, so the ladder fails only if every step
// fails; the plotted UBER multiplies the per-step uncorrectable tails
// (an independence approximation — re-sense noise decorrelates the
// draws in the device model the same way).
func ExtReadRetry(env sim.Env) Figure {
	f := Figure{
		ID:     "ext-readretry",
		Title:  "Staged read-retry recovery after a 2000 h bake (extension)",
		XLabel: "Retry ladder depth",
		YLabel: "post-recovery UBER",
		LogY:   true,
		Notes: []string{
			"extension beyond the paper: read-reference calibration per Cai et al.'s retention-recovery curves",
			"t per series = manager's provision for the unbaked wear; the bake then overruns it",
			"ladder UBER multiplies per-step tails (independent re-senses)",
		},
	}
	s := nand.DefaultStressConfig()
	const bake = 2000.0 // hours on the shelf after the last rewrite
	const margin = 1.3  // the controller's default SafetyMargin
	for _, alg := range []nand.Algorithm{nand.ISPPSV, nand.ISPPDV} {
		for _, cycles := range []float64{1e4, 3e5, 1e6} {
			t := requiredTStressed(env, env.Cal.RBER(alg, cycles)*margin)
			n := env.K + env.M*int(t)
			depths := make([]float64, 0, s.RetrySteps+1)
			ubers := make([]float64, 0, s.RetrySteps+1)
			logFail := 0.0
			for depth := 0; depth <= s.RetrySteps; depth++ {
				rber := env.Cal.RecoveredRBER(s, alg, cycles, 0, bake, depth)
				logFail += bch.LogUBERTail(n, int(t), rber)
				depths = append(depths, float64(depth))
				ubers = append(ubers, math.Exp(logFail))
			}
			f.mustAdd(fmt.Sprintf("%s %.0e cyc (t=%.0f)", alg, cycles, t), depths, ubers)
		}
	}
	return f
}
