package gf

import (
	"testing"

	"xlnand/internal/stats"
)

// randPoly2 delegates to the package's injectable-RNG constructor so
// the tests exercise the same draw path production callers use.
func randPoly2(r *stats.RNG, maxDeg int) Poly2 {
	return RandPoly2(r, maxDeg)
}

func TestRandPoly2Reproducible(t *testing.T) {
	// Identical seeds must yield identical draws (the package-level
	// reproducibility contract), distinct seeds distinct streams.
	a := RandPoly2(stats.NewRNG(7), 300)
	b := RandPoly2(stats.NewRNG(7), 300)
	if !a.Equal(b) {
		t.Fatalf("same seed drew different polynomials:\n%v\n%v", a, b)
	}
	c := RandPoly2(stats.NewRNG(8), 300)
	if a.Equal(c) {
		t.Fatalf("different seeds drew identical polynomials")
	}
	if d := a.Degree(); d > 300 {
		t.Fatalf("degree %d exceeds bound", d)
	}
}

func TestPoly2Construction(t *testing.T) {
	p := NewPoly2FromCoeffs(0, 1, 3)
	if p.Degree() != 3 {
		t.Fatalf("degree = %d, want 3", p.Degree())
	}
	if p.Coeff(0) != 1 || p.Coeff(1) != 1 || p.Coeff(2) != 0 || p.Coeff(3) != 1 {
		t.Fatalf("bad coefficients: %v", p)
	}
	if p.Weight() != 3 {
		t.Fatalf("weight = %d, want 3", p.Weight())
	}
	if p.String() != "x^3 + x + 1" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestPoly2DuplicateExponentsCancel(t *testing.T) {
	// In GF(2), adding the same exponent twice cancels.
	p := NewPoly2FromCoeffs(2, 2)
	if !p.IsZero() {
		t.Fatalf("x^2 + x^2 should be 0, got %v", p)
	}
}

func TestPoly2Zero(t *testing.T) {
	var z Poly2
	if !z.IsZero() || z.Degree() != -1 || z.String() != "0" {
		t.Fatalf("zero polynomial misbehaves: %v deg=%d", z, z.Degree())
	}
}

func TestPoly2FromBits(t *testing.T) {
	p := NewPoly2FromBits(0b1011) // x^3 + x + 1
	if !p.Equal(NewPoly2FromCoeffs(0, 1, 3)) {
		t.Fatalf("FromBits mismatch: %v", p)
	}
	if !NewPoly2FromBits(0).IsZero() {
		t.Fatal("FromBits(0) not zero")
	}
}

func TestPoly2AddSelfIsZero(t *testing.T) {
	r := stats.NewRNG(1)
	for i := 0; i < 100; i++ {
		p := randPoly2(r, 200)
		if !p.Add(p).IsZero() {
			t.Fatalf("p + p != 0 for %v", p)
		}
	}
}

func TestPoly2AddCommutativeAssociative(t *testing.T) {
	r := stats.NewRNG(2)
	for i := 0; i < 200; i++ {
		a, b, c := randPoly2(r, 150), randPoly2(r, 150), randPoly2(r, 150)
		if !a.Add(b).Equal(b.Add(a)) {
			t.Fatal("add not commutative")
		}
		if !a.Add(b).Add(c).Equal(a.Add(b.Add(c))) {
			t.Fatal("add not associative")
		}
	}
}

func TestPoly2ShiftLeft(t *testing.T) {
	p := NewPoly2FromCoeffs(0, 2) // 1 + x^2
	q := p.ShiftLeft(3)           // x^3 + x^5
	if !q.Equal(NewPoly2FromCoeffs(3, 5)) {
		t.Fatalf("shift mismatch: %v", q)
	}
	// Cross word boundary.
	big := NewPoly2FromCoeffs(0).ShiftLeft(63 + 5)
	if big.Degree() != 68 {
		t.Fatalf("cross-word shift degree = %d", big.Degree())
	}
}

func TestPoly2MulKnown(t *testing.T) {
	// (x+1)(x+1) = x^2+1 over GF(2)
	p := NewPoly2FromCoeffs(0, 1)
	if got := p.Mul(p); !got.Equal(NewPoly2FromCoeffs(0, 2)) {
		t.Fatalf("(x+1)^2 = %v", got)
	}
	// (x^2+x+1)(x+1) = x^3+1
	a := NewPoly2FromCoeffs(0, 1, 2)
	b := NewPoly2FromCoeffs(0, 1)
	if got := a.Mul(b); !got.Equal(NewPoly2FromCoeffs(0, 3)) {
		t.Fatalf("product = %v, want x^3 + 1", got)
	}
}

func TestPoly2MulDegreeAdds(t *testing.T) {
	r := stats.NewRNG(3)
	for i := 0; i < 100; i++ {
		a, b := randPoly2(r, 90), randPoly2(r, 130)
		if a.IsZero() || b.IsZero() {
			continue
		}
		if got := a.Mul(b).Degree(); got != a.Degree()+b.Degree() {
			t.Fatalf("deg(ab) = %d, want %d", got, a.Degree()+b.Degree())
		}
	}
}

func TestPoly2MulCommutative(t *testing.T) {
	r := stats.NewRNG(4)
	for i := 0; i < 50; i++ {
		a, b := randPoly2(r, 100), randPoly2(r, 100)
		if !a.Mul(b).Equal(b.Mul(a)) {
			t.Fatal("mul not commutative")
		}
	}
}

func TestPoly2DivModInvariant(t *testing.T) {
	// For random a, b != 0: a = q*b + r with deg(r) < deg(b).
	r := stats.NewRNG(5)
	for i := 0; i < 300; i++ {
		a := randPoly2(r, 300)
		b := randPoly2(r, 60)
		if b.IsZero() {
			continue
		}
		q, rem := a.DivMod(b)
		if rem.Degree() >= b.Degree() {
			t.Fatalf("deg(rem)=%d >= deg(b)=%d", rem.Degree(), b.Degree())
		}
		if !q.Mul(b).Add(rem).Equal(a) {
			t.Fatalf("q*b + r != a")
		}
	}
}

func TestPoly2ModByDivisor(t *testing.T) {
	a := NewPoly2FromCoeffs(0, 3) // x^3+1 = (x+1)(x^2+x+1)
	b := NewPoly2FromCoeffs(0, 1)
	if !a.Mod(b).IsZero() {
		t.Fatal("x^3+1 mod (x+1) should be 0")
	}
}

func TestPoly2DivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("division by zero polynomial did not panic")
		}
	}()
	NewPoly2FromCoeffs(1).DivMod(Poly2{})
}

func TestPoly2GCD(t *testing.T) {
	// gcd((x+1)(x^2+x+1), (x+1)(x^3+x+1)) = x+1
	xp1 := NewPoly2FromCoeffs(0, 1)
	a := xp1.Mul(NewPoly2FromCoeffs(0, 1, 2))
	b := xp1.Mul(NewPoly2FromCoeffs(0, 1, 3))
	if got := a.GCD(b); !got.Equal(xp1) {
		t.Fatalf("gcd = %v, want x + 1", got)
	}
}

func TestPoly2EvalInField(t *testing.T) {
	// The primitive polynomial must vanish at alpha.
	for _, m := range []int{4, 8, 16} {
		f := NewField(m)
		pp := NewPoly2FromBits(uint64(f.PrimPoly()))
		if got := pp.Eval(f, f.Alpha(1)); got != 0 {
			t.Fatalf("m=%d: primPoly(alpha) = %d, want 0", m, got)
		}
		// And not at 1 (prim polys here have odd weight).
		if got := pp.Eval(f, 1); got == 0 {
			t.Fatalf("m=%d: primPoly(1) = 0 unexpectedly", m)
		}
	}
}

func TestPoly2BytesRoundTrip(t *testing.T) {
	r := stats.NewRNG(6)
	for i := 0; i < 100; i++ {
		nbits := 1 + r.Intn(300)
		data := make([]byte, (nbits+7)/8)
		for j := range data {
			data[j] = byte(r.Intn(256))
		}
		// Zero the padding bits beyond nbits so round-trip is exact.
		if pad := len(data)*8 - nbits; pad > 0 {
			data[len(data)-1] &= 0xff << uint(pad)
		}
		p := NewPoly2FromBytes(data, nbits)
		back := p.Bytes(nbits)
		for j := range data {
			if back[j] != data[j] {
				t.Fatalf("byte %d mismatch: %x vs %x (nbits=%d)", j, back[j], data[j], nbits)
			}
		}
	}
}

func TestPoly2BytesMSBConvention(t *testing.T) {
	// 0x80 in one byte = highest bit set = coefficient of x^7.
	p := NewPoly2FromBytes([]byte{0x80}, 8)
	if !p.Equal(NewPoly2FromCoeffs(7)) {
		t.Fatalf("MSB convention broken: %v", p)
	}
	// 0x01 = coefficient of x^0.
	p = NewPoly2FromBytes([]byte{0x01}, 8)
	if !p.Equal(NewPoly2FromCoeffs(0)) {
		t.Fatalf("LSB convention broken: %v", p)
	}
}

func TestPoly2CloneIndependence(t *testing.T) {
	p := NewPoly2FromCoeffs(0, 5)
	q := p.Clone()
	q.w[0] = 0xffff
	if p.Coeff(2) != 0 {
		t.Fatal("clone shares storage with original")
	}
}
