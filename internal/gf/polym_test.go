package gf

import (
	"testing"

	"xlnand/internal/stats"
)

func randPolyM(r *stats.RNG, f *Field, maxDeg int) PolyM {
	coeffs := make([]uint32, maxDeg+1)
	for i := range coeffs {
		coeffs[i] = uint32(r.Intn(f.Size()))
	}
	return NewPolyM(f, coeffs...)
}

func TestPolyMBasics(t *testing.T) {
	f := NewField(4)
	p := NewPolyM(f, 1, 0, 3)
	if p.Degree() != 2 {
		t.Fatalf("degree = %d", p.Degree())
	}
	if p.Coeff(0) != 1 || p.Coeff(1) != 0 || p.Coeff(2) != 3 || p.Coeff(7) != 0 {
		t.Fatal("bad coefficients")
	}
	if NewPolyM(f).Degree() != -1 {
		t.Fatal("zero poly degree != -1")
	}
	if !NewPolyM(f, 0, 0).IsZero() {
		t.Fatal("trailing zeros not trimmed")
	}
}

func TestPolyMAddScale(t *testing.T) {
	f := NewField(8)
	r := stats.NewRNG(10)
	for i := 0; i < 200; i++ {
		p := randPolyM(r, f, 20)
		if !p.Add(p).IsZero() {
			t.Fatal("p + p != 0")
		}
		if !p.Scale(1).Equal(p) {
			t.Fatal("scale by 1 changed polynomial")
		}
		if !p.Scale(0).IsZero() {
			t.Fatal("scale by 0 not zero")
		}
		c := uint32(1 + r.Intn(f.N()))
		// (c·p)(x) == c·p(x) at a random point
		x := uint32(r.Intn(f.Size()))
		if p.Scale(c).Eval(x) != f.Mul(c, p.Eval(x)) {
			t.Fatal("scale does not commute with eval")
		}
	}
}

func TestPolyMMulEvalHomomorphism(t *testing.T) {
	// (p*q)(x) == p(x) * q(x)
	f := NewField(8)
	r := stats.NewRNG(11)
	for i := 0; i < 300; i++ {
		p := randPolyM(r, f, 12)
		q := randPolyM(r, f, 9)
		x := uint32(r.Intn(f.Size()))
		if p.Mul(q).Eval(x) != f.Mul(p.Eval(x), q.Eval(x)) {
			t.Fatal("mul-eval homomorphism fails")
		}
	}
}

func TestPolyMMulXPlusConst(t *testing.T) {
	f := NewField(8)
	r := stats.NewRNG(12)
	for i := 0; i < 200; i++ {
		p := randPolyM(r, f, 10)
		c := uint32(r.Intn(f.Size()))
		viaMul := p.Mul(NewPolyM(f, c, 1))
		if !p.MulXPlusConst(c).Equal(viaMul) {
			t.Fatal("MulXPlusConst != Mul by (x + c)")
		}
		// The product must vanish at x = c.
		if got := p.MulXPlusConst(c).Eval(c); got != 0 && !p.IsZero() {
			// p(c)*(c+c) = p(c)*0 = 0 always
			t.Fatalf("(x+c)·p does not vanish at c: %d", got)
		}
	}
}

func TestPolyMDerivative(t *testing.T) {
	f := NewField(8)
	// d/dx (a + bx + cx^2 + dx^3) = b + dx^2 in char 2.
	p := NewPolyM(f, 5, 7, 9, 11)
	d := p.Derivative()
	want := NewPolyM(f, 7, 0, 11)
	if !d.Equal(want) {
		t.Fatalf("derivative = %v, want %v", d.Coeffs, want.Coeffs)
	}
	if !NewPolyM(f, 3).Derivative().IsZero() {
		t.Fatal("derivative of constant not zero")
	}
}

func TestPolyMDerivativeLeibnizOnSquare(t *testing.T) {
	// (p^2)' = 2 p p' = 0 in characteristic 2.
	f := NewField(8)
	r := stats.NewRNG(13)
	for i := 0; i < 100; i++ {
		p := randPolyM(r, f, 8)
		if !p.Mul(p).Derivative().IsZero() {
			t.Fatal("(p^2)' != 0 in char 2")
		}
	}
}

func TestPolyMToPoly2(t *testing.T) {
	f := NewField(4)
	p := NewPolyM(f, 1, 0, 1, 1)
	q := p.ToPoly2()
	if !q.Equal(NewPoly2FromCoeffs(0, 2, 3)) {
		t.Fatalf("conversion mismatch: %v", q)
	}
}

func TestPolyMToPoly2PanicsOnNonBinary(t *testing.T) {
	f := NewField(4)
	defer func() {
		if recover() == nil {
			t.Fatal("ToPoly2 with coefficient 3 did not panic")
		}
	}()
	NewPolyM(f, 1, 3).ToPoly2()
}

func TestPolyMEvalHorner(t *testing.T) {
	f := NewField(8)
	// p(x) = 2 + 3x + x^2 at x=alpha: check against manual expansion.
	a := f.Alpha(1)
	p := NewPolyM(f, 2, 3, 1)
	want := f.Add(f.Add(2, f.Mul(3, a)), f.Mul(a, a))
	if got := p.Eval(a); got != want {
		t.Fatalf("Eval = %d, want %d", got, want)
	}
	if got := p.Eval(0); got != 2 {
		t.Fatalf("Eval(0) = %d, want constant term 2", got)
	}
}
