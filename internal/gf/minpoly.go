package gf

// CyclotomicCoset returns the 2-cyclotomic coset of s modulo 2^m - 1:
// {s, 2s, 4s, ...} reduced mod 2^m-1, in ascending generation order.
// The coset of 0 is {0}.
func (f *Field) CyclotomicCoset(s int) []int {
	n := f.N()
	s = ((s % n) + n) % n
	coset := []int{s}
	for x := (s * 2) % n; x != s; x = (x * 2) % n {
		coset = append(coset, x)
	}
	return coset
}

// CosetLeader returns the smallest element of the cyclotomic coset of s.
func (f *Field) CosetLeader(s int) int {
	min := -1
	for _, x := range f.CyclotomicCoset(s) {
		if min == -1 || x < min {
			min = x
		}
	}
	return min
}

// MinimalPolynomial returns the minimal polynomial over GF(2) of
// alpha^s, computed as the product of (x - alpha^c) over the cyclotomic
// coset c of s. The result always has coefficients in {0,1}; this is
// asserted by the conversion.
func (f *Field) MinimalPolynomial(s int) Poly2 {
	coset := f.CyclotomicCoset(s)
	p := NewPolyM(f, 1) // start from the constant 1
	for _, c := range coset {
		p = p.MulXPlusConst(f.Alpha(c))
	}
	return p.ToPoly2()
}

// MinPolyTable memoizes minimal polynomials per coset leader; BCH code
// construction for every t in 3..65 re-requests the same cosets many
// times. It is not safe for concurrent mutation; build codes from a
// single goroutine or use separate tables.
type MinPolyTable struct {
	f     *Field
	cache map[int]Poly2
}

// MinPolyCache wraps a field with a memoizing minimal-polynomial lookup.
func MinPolyCache(f *Field) *MinPolyTable {
	return &MinPolyTable{f: f, cache: make(map[int]Poly2)}
}

// Get returns the minimal polynomial of alpha^s, cached by coset leader.
func (c *MinPolyTable) Get(s int) Poly2 {
	leader := c.f.CosetLeader(s)
	if p, ok := c.cache[leader]; ok {
		return p
	}
	p := c.f.MinimalPolynomial(leader)
	c.cache[leader] = p
	return p
}
