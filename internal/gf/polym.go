package gf

// PolyM is a dense polynomial over GF(2^m): Coeffs[i] is the coefficient
// of x^i. PolyM values are operated on functionally; methods never modify
// their receivers.
type PolyM struct {
	F      *Field
	Coeffs []uint32
}

// NewPolyM builds a polynomial over f with the given ascending
// coefficients.
func NewPolyM(f *Field, coeffs ...uint32) PolyM {
	return PolyM{F: f, Coeffs: append([]uint32(nil), coeffs...)}.trim()
}

func (p PolyM) trim() PolyM {
	i := len(p.Coeffs)
	for i > 0 && p.Coeffs[i-1] == 0 {
		i--
	}
	return PolyM{F: p.F, Coeffs: p.Coeffs[:i]}
}

// Degree returns the polynomial degree, -1 for zero.
func (p PolyM) Degree() int { return len(p.trim().Coeffs) - 1 }

// IsZero reports whether all coefficients vanish.
func (p PolyM) IsZero() bool { return p.Degree() < 0 }

// Coeff returns the coefficient of x^i (0 beyond the stored degree).
func (p PolyM) Coeff(i int) uint32 {
	if i < 0 || i >= len(p.Coeffs) {
		return 0
	}
	return p.Coeffs[i]
}

// Add returns p + q.
func (p PolyM) Add(q PolyM) PolyM {
	n := len(p.Coeffs)
	if len(q.Coeffs) > n {
		n = len(q.Coeffs)
	}
	out := make([]uint32, n)
	copy(out, p.Coeffs)
	for i, c := range q.Coeffs {
		out[i] ^= c
	}
	return PolyM{F: p.F, Coeffs: out}.trim()
}

// Scale returns p * c for a field scalar c.
func (p PolyM) Scale(c uint32) PolyM {
	out := make([]uint32, len(p.Coeffs))
	for i, a := range p.Coeffs {
		out[i] = p.F.Mul(a, c)
	}
	return PolyM{F: p.F, Coeffs: out}.trim()
}

// Mul returns p * q by schoolbook convolution (degrees here are <= 2t,
// tiny, so no fancier algorithm is warranted).
func (p PolyM) Mul(q PolyM) PolyM {
	if p.IsZero() || q.IsZero() {
		return PolyM{F: p.F}
	}
	out := make([]uint32, len(p.Coeffs)+len(q.Coeffs)-1)
	for i, a := range p.Coeffs {
		if a == 0 {
			continue
		}
		for j, b := range q.Coeffs {
			if b == 0 {
				continue
			}
			out[i+j] ^= p.F.Mul(a, b)
		}
	}
	return PolyM{F: p.F, Coeffs: out}.trim()
}

// MulXPlusConst returns p * (x + c), the incremental product used when
// assembling minimal polynomials from conjugate roots.
func (p PolyM) MulXPlusConst(c uint32) PolyM {
	out := make([]uint32, len(p.Coeffs)+1)
	for i, a := range p.Coeffs {
		out[i+1] ^= a           // a * x
		out[i] ^= p.F.Mul(a, c) // a * c
	}
	return PolyM{F: p.F, Coeffs: out}.trim()
}

// Eval evaluates p at x via Horner's rule.
func (p PolyM) Eval(x uint32) uint32 {
	acc := uint32(0)
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		acc = p.F.Mul(acc, x) ^ p.Coeffs[i]
	}
	return acc
}

// Derivative returns the formal derivative of p. In characteristic 2 the
// even-power terms vanish and odd powers x^(2k+1) map to x^(2k).
func (p PolyM) Derivative() PolyM {
	if len(p.Coeffs) <= 1 {
		return PolyM{F: p.F}
	}
	out := make([]uint32, len(p.Coeffs)-1)
	for i := 1; i < len(p.Coeffs); i += 2 {
		out[i-1] = p.Coeffs[i]
	}
	return PolyM{F: p.F, Coeffs: out}.trim()
}

// ToPoly2 converts a polynomial whose coefficients are all in {0,1} to a
// Poly2. It panics if any coefficient lies outside the prime subfield,
// which would indicate a bug in minimal-polynomial construction.
func (p PolyM) ToPoly2() Poly2 {
	exps := []int{}
	for i, c := range p.Coeffs {
		switch c {
		case 0:
		case 1:
			exps = append(exps, i)
		default:
			panic("gf: polynomial has coefficients outside GF(2)")
		}
	}
	return NewPoly2FromCoeffs(exps...)
}

// Equal reports coefficient-wise equality.
func (p PolyM) Equal(q PolyM) bool {
	a, b := p.trim(), q.trim()
	if len(a.Coeffs) != len(b.Coeffs) {
		return false
	}
	for i := range a.Coeffs {
		if a.Coeffs[i] != b.Coeffs[i] {
			return false
		}
	}
	return true
}
