package gf

import (
	"testing"
)

func TestCyclotomicCosetBasics(t *testing.T) {
	f := NewField(4) // n = 15
	got := f.CyclotomicCoset(1)
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("coset(1) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coset(1) = %v, want %v", got, want)
		}
	}
	// Coset of 5 mod 15: {5, 10}
	got = f.CyclotomicCoset(5)
	if len(got) != 2 || got[0] != 5 || got[1] != 10 {
		t.Fatalf("coset(5) = %v, want [5 10]", got)
	}
	// Coset of 0 is {0}.
	if g := f.CyclotomicCoset(0); len(g) != 1 || g[0] != 0 {
		t.Fatalf("coset(0) = %v", g)
	}
}

func TestCosetsPartitionTheGroup(t *testing.T) {
	f := NewField(8)
	seen := make(map[int]int)
	for s := 0; s < f.N(); s++ {
		leader := f.CosetLeader(s)
		for _, x := range f.CyclotomicCoset(s) {
			if prev, ok := seen[x]; ok && prev != leader {
				t.Fatalf("element %d in two cosets (%d, %d)", x, prev, leader)
			}
			seen[x] = leader
		}
	}
	if len(seen) != f.N() {
		t.Fatalf("cosets cover %d elements, want %d", len(seen), f.N())
	}
}

func TestCosetSizeDividesM(t *testing.T) {
	f := NewField(12)
	for s := 1; s < 200; s++ {
		size := len(f.CyclotomicCoset(s))
		if 12%size != 0 {
			t.Fatalf("coset(%d) size %d does not divide m=12", s, size)
		}
	}
}

func TestMinimalPolynomialOfAlphaIsPrimPoly(t *testing.T) {
	for _, m := range []int{4, 8, 16} {
		f := NewField(m)
		mp := f.MinimalPolynomial(1)
		if !mp.Equal(NewPoly2FromBits(uint64(f.PrimPoly()))) {
			t.Fatalf("m=%d: minpoly(alpha) = %v, want primitive polynomial", m, mp)
		}
	}
}

func TestMinimalPolynomialRoots(t *testing.T) {
	// minpoly of alpha^s must vanish at every conjugate alpha^(s·2^j) and
	// at no other power (checked on a small field exhaustively).
	f := NewField(6)
	for s := 1; s < f.N(); s++ {
		mp := f.MinimalPolynomial(s)
		coset := map[int]bool{}
		for _, c := range f.CyclotomicCoset(s) {
			coset[c] = true
		}
		for e := 0; e < f.N(); e++ {
			v := mp.Eval(f, f.Alpha(e))
			if coset[e] && v != 0 {
				t.Fatalf("minpoly(alpha^%d) does not vanish at conjugate alpha^%d", s, e)
			}
			if !coset[e] && v == 0 {
				t.Fatalf("minpoly(alpha^%d) vanishes at non-conjugate alpha^%d", s, e)
			}
		}
	}
}

func TestMinimalPolynomialDegreeEqualsCosetSize(t *testing.T) {
	f := NewField(16)
	for _, s := range []int{1, 3, 5, 7, 9, 127, 129} {
		mp := f.MinimalPolynomial(s)
		if mp.Degree() != len(f.CyclotomicCoset(s)) {
			t.Fatalf("deg minpoly(alpha^%d) = %d, want coset size %d",
				s, mp.Degree(), len(f.CyclotomicCoset(s)))
		}
	}
}

func TestMinimalPolynomialOfZeroExponent(t *testing.T) {
	f := NewField(4)
	// alpha^0 = 1; minimal polynomial of 1 is x + 1.
	if mp := f.MinimalPolynomial(0); !mp.Equal(NewPoly2FromCoeffs(0, 1)) {
		t.Fatalf("minpoly(1) = %v, want x + 1", mp)
	}
}

func TestMinPolyCacheConsistency(t *testing.T) {
	f := NewField(16)
	c := MinPolyCache(f)
	for _, s := range []int{1, 2, 3, 5, 3, 1, 6} { // repeats exercise cache hits
		direct := f.MinimalPolynomial(s)
		cached := c.Get(s)
		if !direct.Equal(cached) {
			t.Fatalf("cache mismatch for s=%d", s)
		}
	}
	// Conjugates share the cache entry.
	if !c.Get(2).Equal(c.Get(1)) {
		t.Fatal("conjugate exponents should produce identical minimal polynomials")
	}
}
