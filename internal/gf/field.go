// Package gf implements arithmetic over the binary Galois fields GF(2^m)
// for 2 <= m <= 16, together with polynomial arithmetic over GF(2) and
// over GF(2^m), cyclotomic cosets and minimal polynomials. It is the
// algebraic substrate of the BCH codec in internal/bch.
//
// Field elements are represented in the polynomial basis as uint32 values
// whose low m bits are the coefficients of the basis polynomial; 0 is the
// additive identity and 1 the multiplicative identity. Multiplication and
// inversion use log/antilog tables built once per field.
package gf

import "fmt"

// Default primitive polynomials (in hex, including the x^m term) for each
// supported m. These are the conventional primitive trinomials/pentanomials
// used throughout the coding literature (e.g. Lin & Costello, App. B).
var defaultPrimPoly = map[int]uint32{
	2:  0x7,     // x^2+x+1
	3:  0xb,     // x^3+x+1
	4:  0x13,    // x^4+x+1
	5:  0x25,    // x^5+x^2+1
	6:  0x43,    // x^6+x+1
	7:  0x89,    // x^7+x^3+1
	8:  0x11d,   // x^8+x^4+x^3+x^2+1
	9:  0x211,   // x^9+x^4+1
	10: 0x409,   // x^10+x^3+1
	11: 0x805,   // x^11+x^2+1
	12: 0x1053,  // x^12+x^6+x^4+x+1
	13: 0x201b,  // x^13+x^4+x^3+x+1
	14: 0x4443,  // x^14+x^10+x^6+x+1
	15: 0x8003,  // x^15+x+1
	16: 0x1100b, // x^16+x^12+x^3+x+1
}

// Field is a finite field GF(2^m). It is immutable after construction and
// safe for concurrent use.
type Field struct {
	m        int    // extension degree
	n        uint32 // field size - 1 = 2^m - 1 (multiplicative group order)
	primPoly uint32
	logTbl   []uint16 // logTbl[x] = log_alpha(x), x in 1..n
	expTbl   []uint16 // expTbl[i] = alpha^i, duplicated to 2n to skip a mod; elements of GF(2^m<=16) fit uint16
}

// NewField constructs GF(2^m) with the library's default primitive
// polynomial for that m. It panics for m outside [2, 16].
func NewField(m int) *Field {
	pp, ok := defaultPrimPoly[m]
	if !ok {
		panic(fmt.Sprintf("gf: unsupported field degree m=%d", m))
	}
	f, err := NewFieldPoly(m, pp)
	if err != nil {
		panic(err) // default polynomials are known-primitive
	}
	return f
}

// NewFieldPoly constructs GF(2^m) using the given degree-m polynomial
// (bit i of primPoly is the coefficient of x^i, bit m must be set).
// It returns an error if the polynomial is not primitive, detected during
// table generation by a premature cycle of alpha powers.
func NewFieldPoly(m int, primPoly uint32) (*Field, error) {
	if m < 2 || m > 16 {
		return nil, fmt.Errorf("gf: unsupported field degree m=%d", m)
	}
	if primPoly>>uint(m) != 1 {
		return nil, fmt.Errorf("gf: polynomial %#x does not have degree %d", primPoly, m)
	}
	n := uint32(1)<<uint(m) - 1
	f := &Field{
		m:        m,
		n:        n,
		primPoly: primPoly,
		logTbl:   make([]uint16, n+1),
		expTbl:   make([]uint16, 2*n),
	}
	x := uint32(1)
	for i := uint32(0); i < n; i++ {
		if x == 1 && i != 0 {
			return nil, fmt.Errorf("gf: polynomial %#x is not primitive (alpha order %d < %d)", primPoly, i, n)
		}
		f.expTbl[i] = uint16(x)
		f.expTbl[i+n] = uint16(x)
		f.logTbl[x] = uint16(i)
		x <<= 1
		if x>>uint(m) == 1 {
			x ^= primPoly
		}
	}
	if x != 1 {
		return nil, fmt.Errorf("gf: polynomial %#x is not primitive (alpha^%d != 1)", primPoly, n)
	}
	return f, nil
}

// M returns the extension degree m.
func (f *Field) M() int { return f.m }

// Size returns the number of field elements, 2^m.
func (f *Field) Size() int { return int(f.n) + 1 }

// N returns the multiplicative group order 2^m - 1.
func (f *Field) N() int { return int(f.n) }

// PrimPoly returns the primitive polynomial defining the field.
func (f *Field) PrimPoly() uint32 { return f.primPoly }

// Alpha returns alpha^i for any integer exponent i (negative allowed).
func (f *Field) Alpha(i int) uint32 {
	e := i % int(f.n)
	if e < 0 {
		e += int(f.n)
	}
	return uint32(f.expTbl[e])
}

// Log returns log_alpha(x). It panics on x == 0, which has no logarithm.
func (f *Field) Log(x uint32) int {
	if x == 0 {
		panic("gf: log of zero")
	}
	return int(f.logTbl[x])
}

// Add returns a + b (= a - b) in GF(2^m).
func (f *Field) Add(a, b uint32) uint32 { return a ^ b }

// Mul returns a * b.
func (f *Field) Mul(a, b uint32) uint32 {
	if a == 0 || b == 0 {
		return 0
	}
	return uint32(f.expTbl[uint32(f.logTbl[a])+uint32(f.logTbl[b])])
}

// MulAlpha returns x * alpha^e for e >= 0, a common Chien-search step.
func (f *Field) MulAlpha(x uint32, e int) uint32 {
	if x == 0 {
		return 0
	}
	idx := int(f.logTbl[x]) + e%int(f.n)
	if idx >= int(f.n)*2 {
		idx -= int(f.n)
	}
	return uint32(f.expTbl[idx])
}

// MulAlphaN returns x * alpha^e for a pre-reduced exponent 0 <= e < N.
// Unlike MulAlpha it performs no modulo and no range correction: the
// antilog table is stored doubled (2N entries), so log(x) + e always
// indexes it directly. This is the inner step of the fused syndrome and
// Chien kernels in internal/bch; callers must guarantee the range.
func (f *Field) MulAlphaN(x uint32, e int) uint32 {
	if x == 0 {
		return 0
	}
	return uint32(f.expTbl[int(f.logTbl[x])+e])
}

// Tables exposes the field's log and doubled antilog tables for hot
// kernels that cannot afford a method call per element: log has N+1
// entries (log[0] is meaningless), exp has 2N entries with
// exp[i] == exp[i+N] == alpha^i. Elements are stored as uint16 (any
// GF(2^m<=16) element fits) to halve the hot working set. Both slices
// are shared and MUST be treated as read-only.
func (f *Field) Tables() (log, exp []uint16) {
	return f.logTbl, f.expTbl
}

// Inv returns the multiplicative inverse of a. It panics on a == 0.
func (f *Field) Inv(a uint32) uint32 {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return uint32(f.expTbl[f.n-uint32(f.logTbl[a])])
}

// Div returns a / b. It panics on b == 0.
func (f *Field) Div(a, b uint32) uint32 {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return uint32(f.expTbl[uint32(f.logTbl[a])+f.n-uint32(f.logTbl[b])])
}

// Pow returns a^e for any integer e (negative exponents use the inverse).
// Pow(0, 0) is defined as 1; Pow(0, e<0) panics.
func (f *Field) Pow(a uint32, e int) uint32 {
	if a == 0 {
		if e == 0 {
			return 1
		}
		if e < 0 {
			panic("gf: zero to negative power")
		}
		return 0
	}
	le := (int(f.logTbl[a]) * (e % int(f.n))) % int(f.n)
	if le < 0 {
		le += int(f.n)
	}
	return uint32(f.expTbl[le])
}

// Sqr returns a^2 (squaring is linear in characteristic 2 but we use the
// tables for uniformity).
func (f *Field) Sqr(a uint32) uint32 { return f.Mul(a, a) }

// Trace returns the field trace Tr(a) = a + a^2 + a^4 + ... + a^(2^(m-1)),
// which is always 0 or 1.
func (f *Field) Trace(a uint32) uint32 {
	t := a
	x := a
	for i := 1; i < f.m; i++ {
		x = f.Sqr(x)
		t ^= x
	}
	return t & 1
}
