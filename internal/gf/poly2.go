package gf

import (
	"fmt"
	"math/bits"
	"strings"

	"xlnand/internal/stats"
)

// Poly2 is a polynomial over GF(2), bit-packed into uint64 words with
// coefficient of x^i stored at word i/64, bit i%64. The zero polynomial is
// represented by an empty (or all-zero) word slice. Poly2 values are
// treated as immutable by all methods; operations return new polynomials.
type Poly2 struct {
	w []uint64
}

// NewPoly2FromCoeffs builds a polynomial from the exponents whose
// coefficients are 1, e.g. NewPoly2FromCoeffs(0, 1, 3) = 1 + x + x^3.
func NewPoly2FromCoeffs(exps ...int) Poly2 {
	p := Poly2{}
	for _, e := range exps {
		if e < 0 {
			panic("gf: negative exponent")
		}
		p = p.ensure(e/64 + 1)
		p.w[e/64] ^= 1 << uint(e%64)
	}
	return p.trim()
}

// RandPoly2 draws a polynomial with i.i.d. uniform coefficients up to
// degree maxDeg from the injected generator. All randomness in this
// package flows through an explicit, seedable *stats.RNG — never a
// global source — so every consumer up to the lifetime scenario engine
// stays bit-reproducible end to end; callers that only need "some"
// polynomial pass stats.NewRNG with a fixed seed.
func RandPoly2(r *stats.RNG, maxDeg int) Poly2 {
	if maxDeg < 0 {
		panic("gf: negative degree bound")
	}
	p := Poly2{}.ensure(maxDeg/64 + 1)
	for e := 0; e <= maxDeg; e++ {
		if r.Bernoulli(0.5) {
			p.w[e/64] |= 1 << uint(e%64)
		}
	}
	return p.trim()
}

// NewPoly2FromBits builds a polynomial whose i-th coefficient is bit i of
// the given word (low 32 degrees), convenient for primitive polynomials.
func NewPoly2FromBits(bitsWord uint64) Poly2 {
	if bitsWord == 0 {
		return Poly2{}
	}
	return Poly2{w: []uint64{bitsWord}}.trim()
}

// NewPoly2FromBytes interprets data as a polynomial with data[0]'s MSB as
// the highest-degree coefficient (the natural order of a message whose
// first bit transmitted is the highest power, as in systematic BCH
// encoding of a page). nbits limits the number of valid bits.
func NewPoly2FromBytes(data []byte, nbits int) Poly2 {
	if nbits < 0 || nbits > len(data)*8 {
		panic("gf: nbits out of range")
	}
	p := Poly2{}.ensure((nbits + 63) / 64)
	for i := 0; i < nbits; i++ {
		byteIdx := i / 8
		bit := (data[byteIdx] >> uint(7-i%8)) & 1
		if bit == 1 {
			deg := nbits - 1 - i
			p.w[deg/64] |= 1 << uint(deg%64)
		}
	}
	return p.trim()
}

func (p Poly2) ensure(words int) Poly2 {
	if len(p.w) >= words {
		return p
	}
	nw := make([]uint64, words)
	copy(nw, p.w)
	return Poly2{w: nw}
}

func (p Poly2) trim() Poly2 {
	i := len(p.w)
	for i > 0 && p.w[i-1] == 0 {
		i--
	}
	return Poly2{w: p.w[:i]}
}

// IsZero reports whether p is the zero polynomial.
func (p Poly2) IsZero() bool {
	for _, w := range p.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// Degree returns the degree of p, or -1 for the zero polynomial.
func (p Poly2) Degree() int {
	for i := len(p.w) - 1; i >= 0; i-- {
		if p.w[i] != 0 {
			return i*64 + 63 - bits.LeadingZeros64(p.w[i])
		}
	}
	return -1
}

// Coeff returns the coefficient (0 or 1) of x^i.
func (p Poly2) Coeff(i int) uint32 {
	if i < 0 || i/64 >= len(p.w) {
		return 0
	}
	return uint32((p.w[i/64] >> uint(i%64)) & 1)
}

// Weight returns the number of nonzero coefficients.
func (p Poly2) Weight() int {
	w := 0
	for _, word := range p.w {
		w += bits.OnesCount64(word)
	}
	return w
}

// Clone returns an independent copy of p.
func (p Poly2) Clone() Poly2 {
	return Poly2{w: append([]uint64(nil), p.w...)}
}

// Add returns p + q (XOR of coefficients).
func (p Poly2) Add(q Poly2) Poly2 {
	n := len(p.w)
	if len(q.w) > n {
		n = len(q.w)
	}
	out := make([]uint64, n)
	copy(out, p.w)
	for i, w := range q.w {
		out[i] ^= w
	}
	return Poly2{w: out}.trim()
}

// ShiftLeft returns p * x^k.
func (p Poly2) ShiftLeft(k int) Poly2 {
	if k < 0 {
		panic("gf: negative shift")
	}
	if p.IsZero() {
		return Poly2{}
	}
	words, rem := k/64, uint(k%64)
	out := make([]uint64, len(p.w)+words+1)
	for i, w := range p.w {
		out[i+words] |= w << rem
		if rem != 0 {
			out[i+words+1] |= w >> (64 - rem)
		}
	}
	return Poly2{w: out}.trim()
}

// Mul returns p * q via word-sliced carry-less multiplication.
func (p Poly2) Mul(q Poly2) Poly2 {
	if p.IsZero() || q.IsZero() {
		return Poly2{}
	}
	// Iterate over set bits of the smaller operand.
	a, b := p, q
	if a.Weight() > b.Weight() {
		a, b = b, a
	}
	out := Poly2{}
	for wi, word := range a.w {
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &^= 1 << uint(bit)
			out = out.Add(b.ShiftLeft(wi*64 + bit))
		}
	}
	return out
}

// Mod returns p mod q. It panics if q is zero.
func (p Poly2) Mod(q Poly2) Poly2 {
	_, r := p.DivMod(q)
	return r
}

// DivMod returns the quotient and remainder of p / q. It panics if q is
// the zero polynomial.
func (p Poly2) DivMod(q Poly2) (quo, rem Poly2) {
	dq := q.Degree()
	if dq < 0 {
		panic("gf: division by zero polynomial")
	}
	r := p.Clone()
	dr := r.Degree()
	if dr < dq {
		return Poly2{}, r.trim()
	}
	quoWords := make([]uint64, (dr-dq)/64+1)
	for dr >= dq {
		shift := dr - dq
		quoWords[shift/64] |= 1 << uint(shift%64)
		// r -= q << shift, in place
		words, remBits := shift/64, uint(shift%64)
		r = r.ensure(words + len(q.w) + 1)
		for i, w := range q.w {
			r.w[i+words] ^= w << remBits
			if remBits != 0 && i+words+1 < len(r.w) {
				r.w[i+words+1] ^= w >> (64 - remBits)
			}
		}
		dr = r.Degree()
	}
	return Poly2{w: quoWords}.trim(), r.trim()
}

// GCD returns the greatest common divisor of p and q.
func (p Poly2) GCD(q Poly2) Poly2 {
	a, b := p.Clone(), q.Clone()
	for !b.IsZero() {
		a, b = b, a.Mod(b)
	}
	return a
}

// Eval evaluates p at the element x of the field f using Horner's rule.
func (p Poly2) Eval(f *Field, x uint32) uint32 {
	d := p.Degree()
	if d < 0 {
		return 0
	}
	acc := uint32(0)
	for i := d; i >= 0; i-- {
		acc = f.Mul(acc, x) ^ p.Coeff(i)
	}
	return acc
}

// Bytes serialises the polynomial MSB-first into ceil(nbits/8) bytes,
// where coefficient of x^(nbits-1) lands in the MSB of byte 0. This is the
// inverse of NewPoly2FromBytes.
func (p Poly2) Bytes(nbits int) []byte {
	out := make([]byte, (nbits+7)/8)
	for i := 0; i < nbits; i++ {
		deg := nbits - 1 - i
		if p.Coeff(deg) == 1 {
			out[i/8] |= 1 << uint(7-i%8)
		}
	}
	return out
}

// Equal reports whether p and q have identical coefficients.
func (p Poly2) Equal(q Poly2) bool {
	a, b := p.trim(), q.trim()
	if len(a.w) != len(b.w) {
		return false
	}
	for i := range a.w {
		if a.w[i] != b.w[i] {
			return false
		}
	}
	return true
}

// String renders the polynomial in conventional descending-power notation,
// e.g. "x^3 + x + 1". The zero polynomial renders as "0".
func (p Poly2) String() string {
	d := p.Degree()
	if d < 0 {
		return "0"
	}
	var terms []string
	for i := d; i >= 0; i-- {
		if p.Coeff(i) == 0 {
			continue
		}
		switch i {
		case 0:
			terms = append(terms, "1")
		case 1:
			terms = append(terms, "x")
		default:
			terms = append(terms, fmt.Sprintf("x^%d", i))
		}
	}
	return strings.Join(terms, " + ")
}
