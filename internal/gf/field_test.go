package gf

import (
	"testing"
	"testing/quick"

	"xlnand/internal/stats"
)

func TestNewFieldAllSupportedDegrees(t *testing.T) {
	for m := 2; m <= 16; m++ {
		f := NewField(m)
		if f.M() != m {
			t.Fatalf("m=%d: M() = %d", m, f.M())
		}
		if f.Size() != 1<<uint(m) {
			t.Fatalf("m=%d: Size() = %d", m, f.Size())
		}
		if f.N() != (1<<uint(m))-1 {
			t.Fatalf("m=%d: N() = %d", m, f.N())
		}
	}
}

func TestNewFieldPanicsOnBadDegree(t *testing.T) {
	for _, m := range []int{0, 1, 17, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewField(%d) did not panic", m)
				}
			}()
			NewField(m)
		}()
	}
}

func TestNewFieldPolyRejectsNonPrimitive(t *testing.T) {
	// x^4 + x^3 + x^2 + x + 1 is irreducible but NOT primitive over GF(2)
	// (its roots have order 5, not 15).
	if _, err := NewFieldPoly(4, 0x1f); err == nil {
		t.Fatal("non-primitive polynomial accepted")
	}
	// x^4 + x^2 + 1 = (x^2+x+1)^2 is reducible.
	if _, err := NewFieldPoly(4, 0x15); err == nil {
		t.Fatal("reducible polynomial accepted")
	}
	// Wrong degree bit.
	if _, err := NewFieldPoly(4, 0x7); err == nil {
		t.Fatal("degree-2 polynomial accepted for m=4")
	}
}

func TestAlphaPowersCycle(t *testing.T) {
	f := NewField(8)
	if f.Alpha(0) != 1 {
		t.Fatal("alpha^0 != 1")
	}
	if f.Alpha(f.N()) != 1 {
		t.Fatal("alpha^n != 1")
	}
	if f.Alpha(-1) != f.Inv(f.Alpha(1)) {
		t.Fatal("alpha^-1 != inverse of alpha")
	}
}

func TestLogExpRoundTrip(t *testing.T) {
	f := NewField(10)
	for x := uint32(1); x <= uint32(f.N()); x++ {
		if f.Alpha(f.Log(x)) != x {
			t.Fatalf("exp(log(%d)) != %d", x, x)
		}
	}
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log(0) did not panic")
		}
	}()
	NewField(4).Log(0)
}

// fieldAxioms checks the field axioms on random triples for a given m.
func fieldAxioms(t *testing.T, m int) {
	t.Helper()
	f := NewField(m)
	r := stats.NewRNG(uint64(m) * 977)
	randElem := func() uint32 { return uint32(r.Intn(f.Size())) }
	for i := 0; i < 2000; i++ {
		a, b, c := randElem(), randElem(), randElem()
		if f.Mul(a, b) != f.Mul(b, a) {
			t.Fatalf("m=%d: mul not commutative for %d,%d", m, a, b)
		}
		if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
			t.Fatalf("m=%d: mul not associative", m)
		}
		if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
			t.Fatalf("m=%d: distributivity fails", m)
		}
		if f.Mul(a, 1) != a {
			t.Fatalf("m=%d: 1 not multiplicative identity", m)
		}
		if f.Add(a, a) != 0 {
			t.Fatalf("m=%d: characteristic != 2", m)
		}
		if a != 0 && f.Mul(a, f.Inv(a)) != 1 {
			t.Fatalf("m=%d: a * a^-1 != 1 for a=%d", m, a)
		}
	}
}

func TestFieldAxiomsSmall(t *testing.T)  { fieldAxioms(t, 4) }
func TestFieldAxiomsMedium(t *testing.T) { fieldAxioms(t, 8) }
func TestFieldAxiomsBCH(t *testing.T)    { fieldAxioms(t, 16) }

func TestMulMatchesCarrylessReference(t *testing.T) {
	// Cross-check table-based Mul against a bitwise shift-and-reduce
	// reference implementation.
	f := NewField(8)
	ref := func(a, b uint32) uint32 {
		var acc uint32
		for b != 0 {
			if b&1 == 1 {
				acc ^= a
			}
			b >>= 1
			a <<= 1
			if a&0x100 != 0 {
				a ^= f.PrimPoly()
			}
		}
		return acc
	}
	for a := uint32(0); a < 256; a += 7 {
		for b := uint32(0); b < 256; b += 5 {
			if got, want := f.Mul(a, b), ref(a, b); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMulAlphaMatchesMul(t *testing.T) {
	f := NewField(16)
	r := stats.NewRNG(99)
	for i := 0; i < 5000; i++ {
		x := uint32(r.Intn(f.Size()))
		e := r.Intn(f.N())
		if got, want := f.MulAlpha(x, e), f.Mul(x, f.Alpha(e)); got != want {
			t.Fatalf("MulAlpha(%d,%d) = %d, want %d", x, e, got, want)
		}
		// e drawn from [0, N) is pre-reduced, the MulAlphaN contract.
		if got, want := f.MulAlphaN(x, e), f.Mul(x, f.Alpha(e)); got != want {
			t.Fatalf("MulAlphaN(%d,%d) = %d, want %d", x, e, got, want)
		}
	}
}

func TestDivMulRoundTrip(t *testing.T) {
	f := NewField(12)
	r := stats.NewRNG(123)
	for i := 0; i < 5000; i++ {
		a := uint32(r.Intn(f.Size()))
		b := uint32(1 + r.Intn(f.N()))
		if f.Mul(f.Div(a, b), b) != a {
			t.Fatalf("(a/b)*b != a for a=%d b=%d", a, b)
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	NewField(4).Div(3, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	NewField(4).Inv(0)
}

func TestPow(t *testing.T) {
	f := NewField(8)
	a := f.Alpha(5)
	if f.Pow(a, 0) != 1 {
		t.Fatal("a^0 != 1")
	}
	if f.Pow(a, 1) != a {
		t.Fatal("a^1 != a")
	}
	if f.Pow(a, 3) != f.Mul(a, f.Mul(a, a)) {
		t.Fatal("a^3 mismatch")
	}
	if f.Pow(a, -1) != f.Inv(a) {
		t.Fatal("a^-1 != inverse")
	}
	if f.Pow(0, 0) != 1 {
		t.Fatal("0^0 != 1 (convention)")
	}
	if f.Pow(0, 5) != 0 {
		t.Fatal("0^5 != 0")
	}
}

func TestPowMatchesRepeatedMul(t *testing.T) {
	f := NewField(9)
	f2 := func(a uint32, e int) uint32 {
		acc := uint32(1)
		for i := 0; i < e; i++ {
			acc = f.Mul(acc, a)
		}
		return acc
	}
	r := stats.NewRNG(7)
	for i := 0; i < 300; i++ {
		a := uint32(1 + r.Intn(f.N()))
		e := r.Intn(40)
		if got, want := f.Pow(a, e), f2(a, e); got != want {
			t.Fatalf("Pow(%d,%d) = %d, want %d", a, e, got, want)
		}
	}
}

func TestFrobeniusIsAutomorphism(t *testing.T) {
	// (a+b)^2 = a^2 + b^2 in characteristic 2.
	f := NewField(16)
	prop := func(aRaw, bRaw uint16) bool {
		a, b := uint32(aRaw), uint32(bRaw)
		return f.Sqr(f.Add(a, b)) == f.Add(f.Sqr(a), f.Sqr(b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceLinearAndBinary(t *testing.T) {
	f := NewField(8)
	for a := uint32(0); a < 256; a++ {
		tr := f.Trace(a)
		if tr != 0 && tr != 1 {
			t.Fatalf("Trace(%d) = %d, not in GF(2)", a, tr)
		}
	}
	// Linearity on random pairs.
	r := stats.NewRNG(55)
	for i := 0; i < 1000; i++ {
		a := uint32(r.Intn(256))
		b := uint32(r.Intn(256))
		if f.Trace(a^b) != f.Trace(a)^f.Trace(b) {
			t.Fatalf("trace not additive at %d,%d", a, b)
		}
	}
	// Trace takes each value on exactly half the field.
	ones := 0
	for a := uint32(0); a < 256; a++ {
		ones += int(f.Trace(a))
	}
	if ones != 128 {
		t.Fatalf("trace balance = %d, want 128", ones)
	}
}
