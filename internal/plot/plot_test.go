package plot

import (
	"strings"
	"testing"

	"xlnand/internal/experiments"
)

func demoFigure() experiments.Figure {
	f := experiments.Figure{
		ID: "demo", Title: "Demo figure",
		XLabel: "cycles", YLabel: "rber",
		LogX: true, LogY: true,
		Notes: []string{"a note"},
	}
	if err := f.AddSeries("up", []float64{1e2, 1e3, 1e4}, []float64{1e-6, 1e-5, 1e-4}); err != nil {
		panic(err)
	}
	if err := f.AddSeries("down", []float64{1e2, 1e3, 1e4}, []float64{1e-4, 1e-5, 1e-6}); err != nil {
		panic(err)
	}
	return f
}

func TestASCIIContainsStructure(t *testing.T) {
	s := ASCII(demoFigure(), 60, 15)
	for _, want := range []string{"Demo figure", "cycles (log)", "rber", "* up", "o down", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Fatalf("ASCII output missing %q:\n%s", want, s)
		}
	}
	// Both series markers must appear in the grid.
	if strings.Count(s, "*") < 3 || strings.Count(s, "o") < 3 {
		t.Fatalf("series markers missing:\n%s", s)
	}
}

func TestASCIIEmptyFigure(t *testing.T) {
	s := ASCII(experiments.Figure{Title: "empty"}, 40, 10)
	if !strings.Contains(s, "(no data)") {
		t.Fatalf("empty figure render: %q", s)
	}
}

func TestASCIIClampsTinyDimensions(t *testing.T) {
	s := ASCII(demoFigure(), 1, 1)
	if len(strings.Split(s, "\n")) < 8 {
		t.Fatal("tiny dimensions not clamped")
	}
}

func TestASCIILinearScale(t *testing.T) {
	f := experiments.Figure{Title: "lin", XLabel: "x", YLabel: "y"}
	if err := f.AddSeries("s", []float64{0, 1, 2}, []float64{0, 1, 4}); err != nil {
		panic(err)
	}
	s := ASCII(f, 40, 10)
	if strings.Contains(s, "(log)") {
		t.Fatal("linear figure rendered with log axis label")
	}
}

func TestASCIIConstantSeries(t *testing.T) {
	f := experiments.Figure{Title: "const", XLabel: "x", YLabel: "y"}
	if err := f.AddSeries("flat", []float64{1, 2, 3}, []float64{5, 5, 5}); err != nil {
		panic(err)
	}
	// Must not panic on zero dynamic range.
	s := ASCII(f, 30, 8)
	if !strings.Contains(s, "flat") {
		t.Fatal("legend missing for constant series")
	}
}

func TestTableFormat(t *testing.T) {
	s := Table(demoFigure())
	for _, want := range []string{"Demo figure", "[demo]", "up", "down", "cycles", "rber", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "1e-06") && !strings.Contains(s, "1e-06") && !strings.Contains(s, "1e-06") {
		// values render in %g; just ensure numeric content is present
		if !strings.Contains(s, "100") {
			t.Fatalf("table missing data:\n%s", s)
		}
	}
}

func TestCSVFormat(t *testing.T) {
	s := CSV(demoFigure())
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if lines[0] != "series,x,y" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 1+6 {
		t.Fatalf("csv has %d lines, want 7", len(lines))
	}
	if !strings.HasPrefix(lines[1], "up,100,") {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestCSVEscaping(t *testing.T) {
	f := experiments.Figure{}
	if err := f.AddSeries(`weird, "name"`, []float64{1}, []float64{2}); err != nil {
		panic(err)
	}
	s := CSV(f)
	if !strings.Contains(s, `"weird, ""name"""`) {
		t.Fatalf("csv escaping broken: %q", s)
	}
}

func TestRealFigureRendering(t *testing.T) {
	// Smoke: render a real experiment figure end to end.
	f := experiments.Fig05(envForPlot())
	s := ASCII(f, 70, 20)
	if !strings.Contains(s, "RBER ISPP-SV") || !strings.Contains(s, "RBER ISPP-DV") {
		t.Fatalf("real figure render incomplete:\n%s", s)
	}
}
