package plot

import "xlnand/internal/sim"

func envForPlot() sim.Env { return sim.DefaultEnv() }
