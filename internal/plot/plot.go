// Package plot renders experiment figures as ASCII charts, aligned data
// tables and CSV, so the reproduction harness needs no external plotting
// stack.
package plot

import (
	"fmt"
	"math"
	"strings"

	"xlnand/internal/experiments"
)

// seriesMarks are the glyphs cycled across series in ASCII charts.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '$', '~'}

// ASCII renders the figure as a width×height character chart with axes,
// legend and log-scale support.
func ASCII(f experiments.Figure, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	xmin, xmax, ymin, ymax, ok := f.Bounds()
	if !ok {
		return f.Title + "\n(no data)\n"
	}
	tx := scaler(xmin, xmax, f.LogX)
	ty := scaler(ymin, ymax, f.LogY)

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i := range s.X {
			fx := tx(s.X[i])
			fy := ty(s.Y[i])
			if math.IsNaN(fx) || math.IsNaN(fy) {
				continue
			}
			col := int(fx * float64(width-1))
			row := height - 1 - int(fy*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	topLabel := fmt.Sprintf("%.3g", ymax)
	botLabel := fmt.Sprintf("%.3g", ymin)
	lw := len(topLabel)
	if len(botLabel) > lw {
		lw = len(botLabel)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", lw)
		if r == 0 {
			label = pad(topLabel, lw)
		}
		if r == height-1 {
			label = pad(botLabel, lw)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", lw), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.3g%*.3g\n", strings.Repeat(" ", lw), width/2, xmin, width-width/2, xmax)
	axis := f.XLabel
	if f.LogX {
		axis += " (log)"
	}
	if f.LogY {
		axis += "   [y: " + f.YLabel + ", log]"
	} else {
		axis += "   [y: " + f.YLabel + "]"
	}
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", lw), axis)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c %s\n", seriesMarks[si%len(seriesMarks)], s.Name)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

// scaler maps data space to [0,1], optionally logarithmically.
func scaler(lo, hi float64, logScale bool) func(float64) float64 {
	if logScale && lo > 0 {
		llo, lhi := math.Log10(lo), math.Log10(hi)
		if lhi == llo {
			return func(float64) float64 { return 0.5 }
		}
		return func(v float64) float64 {
			if v <= 0 {
				return math.NaN()
			}
			return (math.Log10(v) - llo) / (lhi - llo)
		}
	}
	if hi == lo {
		return func(float64) float64 { return 0.5 }
	}
	return func(v float64) float64 { return (v - lo) / (hi - lo) }
}

// Table renders the figure's data as an aligned text table, one block per
// series (series may have different X grids).
func Table(f experiments.Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s]\n", f.Title, f.ID)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "\n%s\n", s.Name)
		fmt.Fprintf(&b, "  %16s  %16s\n", f.XLabel, f.YLabel)
		for i := range s.X {
			fmt.Fprintf(&b, "  %16.6g  %16.6g\n", s.X[i], s.Y[i])
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "\nnote: %s\n", n)
	}
	return b.String()
}

// CSV renders the figure as long-format CSV: series,x,y.
func CSV(f experiments.Figure) string {
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, s := range f.Series {
		for i := range s.X {
			fmt.Fprintf(&b, "%s,%g,%g\n", csvEscape(s.Name), s.X[i], s.Y[i])
		}
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
