package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func buildTrace() *Tracer {
	tr := NewTracer()
	host := tr.Process(0, "host")
	host.Thread(0, "scheduler")
	host.Thread(10, `tenant "a"`)
	hs := host.Stream()
	hs.Span(0, "round", 0, 10*time.Microsecond)
	hs.Span1(0, "qos_stall", 10*time.Microsecond, 2500*time.Nanosecond, "round", 1)
	hs.Instant1(0, "cache_hit", 4*time.Microsecond, "page", 42)
	drive := tr.Process(2, "drive 1")
	drive.Thread(10, "die 0")
	ds := drive.Stream()
	ds.Span2(10, "sense", time.Microsecond, 40*time.Microsecond, "step", 0, "soft", 0)
	drive0 := tr.Process(1, "drive 0")
	drive0.Thread(1, "bus")
	drive0.Stream().Span(1, "transfer", 0, 5*time.Microsecond)
	return tr
}

// TestTraceJSONDeterministic builds the same trace twice — with
// processes registered in different interleavings — and requires
// byte-identical exports.
func TestTraceJSONDeterministic(t *testing.T) {
	a := buildTrace().JSON()
	b := buildTrace().JSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("trace export not byte-stable:\n%s\nvs\n%s", a, b)
	}
}

// TestTraceJSONSchema parses the export and checks the trace-event
// contract: metadata names, pid sorting, microsecond timestamps.
func TestTraceJSONSchema(t *testing.T) {
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	raw := buildTrace().JSON()
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, raw)
	}
	var procNames []string
	spans := 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "process_name" {
				procNames = append(procNames, e.Args["name"].(string))
			}
		case "X":
			spans++
			if e.Dur <= 0 {
				t.Errorf("span %q has non-positive dur %v", e.Name, e.Dur)
			}
		}
	}
	if len(procNames) != 3 || procNames[0] != "host" || procNames[1] != "drive 0" || procNames[2] != "drive 1" {
		t.Fatalf("process metadata wrong or unsorted: %v", procNames)
	}
	if spans != 4 {
		t.Fatalf("want 4 spans, got %d", spans)
	}
	// qos_stall span: ts 10µs, dur 2.5µs, args {"round":1}.
	found := false
	for _, e := range doc.TraceEvents {
		if e.Name == "qos_stall" {
			found = true
			if e.Ts != 10 || e.Dur != 2.5 || e.Args["round"].(float64) != 1 {
				t.Fatalf("qos_stall fields wrong: %+v", e)
			}
		}
	}
	if !found {
		t.Fatal("qos_stall span missing")
	}
}

// TestDisabledTracerZeroAlloc pins the disabled-path contract: nil
// streams (what every layer holds when tracing is off) must cost no
// allocations on any hook.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	var s *Stream
	if n := testing.AllocsPerRun(1000, func() {
		s.Span(1, "sense", 10, 20)
		s.Span1(1, "sense", 10, 20, "step", 3)
		s.Span2(1, "sense", 10, 20, "step", 3, "soft", 1)
		s.Instant(0, "cache_hit", 5)
		s.Instant1(0, "cache_hit", 5, "page", 9)
		s.Instant2(0, "cache_hit", 5, "page", 9, "drive", 2)
	}); n != 0 {
		t.Fatalf("disabled tracer hooks allocate %.1f/op", n)
	}
	var p *Proc
	if n := testing.AllocsPerRun(1000, func() {
		if p.Stream() != nil {
			t.Fatal("nil proc minted a stream")
		}
		p.Thread(1, "x")
	}); n != 0 {
		t.Fatalf("nil proc hooks allocate %.1f/op", n)
	}
}

func TestTraceStreamLimit(t *testing.T) {
	tr := NewTracer()
	tr.SetStreamLimit(2)
	s := tr.Process(0, "p").Stream()
	for i := 0; i < 5; i++ {
		s.Instant(0, "e", time.Duration(i))
	}
	kept, dropped := tr.Events()
	if kept != 2 || dropped != 3 {
		t.Fatalf("kept %d dropped %d", kept, dropped)
	}
	var doc map[string]any
	if err := json.Unmarshal(tr.JSON(), &doc); err != nil {
		t.Fatalf("limited trace invalid: %v", err)
	}
}

func TestNilTracerWriteJSON(t *testing.T) {
	var tr *Tracer
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
}
