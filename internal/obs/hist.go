// Package obs is the deterministic observability layer for the
// simulator: fixed-bucket log-scale latency histograms, a virtual-time
// span tracer exporting Chrome trace-event JSON, and a small metrics
// registry with stable Prometheus-style output. Everything here is
// stamped with the simulator's virtual clocks — never wall time — so
// any two runs of the same seeded scenario produce byte-identical
// traces, histograms, and metric snapshots.
package obs

import (
	"math/bits"
	"time"

	"xlnand/internal/stats"
)

// histSubBits is the number of sub-bucket bits per power of two: each
// power-of-two range splits into 32 linear sub-buckets, bounding the
// relative quantization error of any recorded value at 1/32 ≈ 3.1%.
const histSubBits = 5

const (
	histSubBuckets = 1 << histSubBits // 32
	// Values below 2^(histSubBits+1) = 64ns land in two exact unit rows;
	// every higher power of two contributes histSubBuckets buckets. A
	// uint64 nanosecond value has at most 64-6 = 58 shifted ranges, so
	// the top index is (58+1)*32 + 31 < 1920.
	histBuckets = (64 - histSubBits) * histSubBuckets
)

// LatencyHist is an HDR-style latency histogram over nanosecond
// durations: fixed storage, power-of-2 ranges with 32 linear
// sub-buckets each, zero-allocation Record, and element-wise Merge.
// It is not internally synchronized — each instance is owned by a
// single goroutine (a drive worker or the array front end) and merged
// at report time in deterministic drive-index order.
type LatencyHist struct {
	counts [histBuckets]uint64
	n      uint64
	sum    uint64
	min    uint64
	max    uint64
}

// histIndex maps a nanosecond value to its bucket. Values 0..63 map to
// themselves (exact); larger values keep their top 6 bits.
func histIndex(v uint64) int {
	if v < 2*histSubBuckets {
		return int(v)
	}
	shift := uint(bits.Len64(v)) - (histSubBits + 1)
	top := v >> shift // in [32, 64)
	return int(shift+1)*histSubBuckets + int(top-histSubBuckets)
}

// histValue returns the representative (midpoint) nanosecond value of
// bucket i — the inverse of histIndex up to sub-bucket quantization.
func histValue(i int) uint64 {
	if i < 2*histSubBuckets {
		return uint64(i)
	}
	shift := uint(i/histSubBuckets) - 1
	top := uint64(i%histSubBuckets) + histSubBuckets
	lo := top << shift
	return lo + (uint64(1)<<shift)/2
}

// Record adds one duration. Negative durations clamp to zero. It never
// allocates; on the simulated-read hot path it costs a few nanoseconds
// against a multi-microsecond op.
func (h *LatencyHist) Record(d time.Duration) {
	if h == nil {
		return
	}
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.counts[histIndex(v)]++
	h.sum += v
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
}

// Count returns the number of recorded durations.
func (h *LatencyHist) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Merge adds every bucket of o into h. Merging is associative and
// commutative, so fleet-level histograms are assembled from per-drive
// ones in any grouping without changing the result.
func (h *LatencyHist) Merge(o *LatencyHist) {
	if o == nil || o.n == 0 {
		return
	}
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// Reset clears the histogram in place.
func (h *LatencyHist) Reset() {
	*h = LatencyHist{}
}

// HistSnapshot is a serializable summary of a LatencyHist. Latencies
// are reported in microseconds, matching the virtual-time units used
// throughout the fleet reports. Percentiles come from
// stats.PercentileWeighted over the (bucket midpoint, count) pairs —
// the same closest-ranks interpolation used for exact samples — and
// are clamped to the observed [min, max].
type HistSnapshot struct {
	Count  uint64  `json:"count"`
	MinUs  float64 `json:"min_us"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

const nsPerUs = 1e3

// Snapshot summarizes the histogram. It allocates (report time only).
func (h *LatencyHist) Snapshot() HistSnapshot {
	if h == nil || h.n == 0 {
		return HistSnapshot{}
	}
	var (
		vals    []float64
		weights []uint64
	)
	for i, c := range h.counts {
		if c != 0 {
			vals = append(vals, float64(histValue(i)))
			weights = append(weights, c)
		}
	}
	clamp := func(v float64) float64 {
		if v < float64(h.min) {
			return float64(h.min)
		}
		if v > float64(h.max) {
			return float64(h.max)
		}
		return v
	}
	return HistSnapshot{
		Count:  h.n,
		MinUs:  float64(h.min) / nsPerUs,
		MeanUs: float64(h.sum) / float64(h.n) / nsPerUs,
		P50Us:  clamp(stats.PercentileWeighted(vals, weights, 0.50)) / nsPerUs,
		P99Us:  clamp(stats.PercentileWeighted(vals, weights, 0.99)) / nsPerUs,
		P999Us: clamp(stats.PercentileWeighted(vals, weights, 0.999)) / nsPerUs,
		MaxUs:  float64(h.max) / nsPerUs,
	}
}

// Quantile returns the q-quantile of the recorded durations, resolved
// through stats.PercentileWeighted and clamped to [min, max]. Returns
// 0 for an empty histogram.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	if h == nil || h.n == 0 {
		return 0
	}
	var (
		vals    []float64
		weights []uint64
	)
	for i, c := range h.counts {
		if c != 0 {
			vals = append(vals, float64(histValue(i)))
			weights = append(weights, c)
		}
	}
	v := stats.PercentileWeighted(vals, weights, q)
	if v < float64(h.min) {
		v = float64(h.min)
	}
	if v > float64(h.max) {
		v = float64(h.max)
	}
	return time.Duration(v)
}
