package obs

import (
	"math"
	"sort"
	"testing"
	"time"

	"xlnand/internal/stats"
)

// lcg is a tiny deterministic generator so tests never touch
// math/rand's global state.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l)
}

func TestHistIndexRoundTrip(t *testing.T) {
	// Every bucket's representative value must map back to the bucket,
	// and bucket boundaries must be monotonic.
	for i := 0; i < histBuckets; i++ {
		v := histValue(i)
		if got := histIndex(v); got != i {
			t.Fatalf("histIndex(histValue(%d)) = %d", i, got)
		}
	}
	var r lcg = 12345
	for n := 0; n < 100000; n++ {
		v := r.next() >> (r.next() % 40)
		i := histIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", v, i)
		}
		// Relative quantization error bounded by 1/32.
		rep := histValue(i)
		if v >= 64 {
			rel := math.Abs(float64(rep)-float64(v)) / float64(v)
			if rel > 1.0/histSubBuckets {
				t.Fatalf("bucket error %.4f for v=%d (rep %d)", rel, v, rep)
			}
		} else if rep != v {
			t.Fatalf("small value %d not exact (rep %d)", v, rep)
		}
	}
}

// TestHistQuantileAccuracy pins histogram percentiles against the
// exact stats.Percentile of the raw samples: the HDR bucketing bounds
// relative error at 1/32, so snapshots must agree within ~4%.
func TestHistQuantileAccuracy(t *testing.T) {
	var h LatencyHist
	var r lcg = 99
	exact := make([]float64, 0, 50000)
	for i := 0; i < 50000; i++ {
		// Log-uniform-ish latencies from ~100ns to ~100ms.
		v := 100 + r.next()%(uint64(1)<<(7+r.next()%20))
		h.Record(time.Duration(v))
		exact = append(exact, float64(v))
	}
	sort.Float64s(exact)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := stats.Percentile(exact, q)
		got := float64(h.Quantile(q))
		rel := math.Abs(got-want) / want
		if rel > 0.04 {
			t.Errorf("q=%.3f: hist %.0f vs exact %.0f (rel err %.4f)", q, got, want, rel)
		}
	}
	snap := h.Snapshot()
	if snap.Count != 50000 {
		t.Fatalf("snapshot count %d", snap.Count)
	}
	if !(snap.MinUs <= snap.P50Us && snap.P50Us <= snap.P99Us && snap.P99Us <= snap.P999Us && snap.P999Us <= snap.MaxUs) {
		t.Fatalf("percentiles not monotonic: %+v", snap)
	}
}

// TestHistMergeAssociativity verifies (a+b)+c == a+(b+c) == scalar sum.
func TestHistMergeAssociativity(t *testing.T) {
	var r lcg = 7
	parts := make([]*LatencyHist, 3)
	var all LatencyHist
	for p := range parts {
		parts[p] = new(LatencyHist)
		for i := 0; i < 10000; i++ {
			v := time.Duration(r.next() % 10_000_000)
			parts[p].Record(v)
			all.Record(v)
		}
	}
	var left, right LatencyHist
	left.Merge(parts[0])
	left.Merge(parts[1])
	left.Merge(parts[2])
	var bc LatencyHist
	bc.Merge(parts[1])
	bc.Merge(parts[2])
	right.Merge(parts[0])
	right.Merge(&bc)
	if left != right {
		t.Fatal("merge not associative")
	}
	if left != all {
		t.Fatal("merged parts differ from direct recording")
	}
}

func TestHistRecordZeroAlloc(t *testing.T) {
	var h LatencyHist
	if n := testing.AllocsPerRun(1000, func() {
		h.Record(123456 * time.Nanosecond)
	}); n != 0 {
		t.Fatalf("Record allocates %.1f/op", n)
	}
	var nilHist *LatencyHist
	if n := testing.AllocsPerRun(1000, func() {
		nilHist.Record(time.Microsecond)
	}); n != 0 {
		t.Fatalf("nil Record allocates %.1f/op", n)
	}
}

func TestHistEmptySnapshot(t *testing.T) {
	var h LatencyHist
	if s := h.Snapshot(); s != (HistSnapshot{}) {
		t.Fatalf("empty snapshot %+v", s)
	}
	var nilHist *LatencyHist
	if s := nilHist.Snapshot(); s != (HistSnapshot{}) {
		t.Fatalf("nil snapshot %+v", s)
	}
	if q := nilHist.Quantile(0.5); q != 0 {
		t.Fatalf("nil quantile %v", q)
	}
}
