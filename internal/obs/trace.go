package obs

import (
	"bufio"
	"bytes"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Tracer collects virtual-time spans from every layer of a run and
// exports them as Chrome trace-event JSON ("chrome://tracing" or
// https://ui.perfetto.dev). Drives map to trace processes (pid = drive
// index + 1; the array front end is pid 0) and dies/bus/codec/tenants
// map to threads within them.
//
// Determinism and thread-safety come from the stream model: a Stream
// is an append-only event buffer owned by exactly one goroutine (a
// drive worker appends under the same lock that serializes its die, the
// array front end appends from its single scheduling goroutine), and
// WriteJSON emits streams in creation order within processes sorted by
// pid. Timestamps are virtual — the fleet clock for host streams, the
// drive's dispatcher clock for drive streams — never wall time, so two
// runs of the same seeded scenario serialize byte-identically.
//
// All hook methods tolerate nil receivers: a disabled tracer threads
// nil *Stream values through the stack and every Span/Instant call
// returns immediately without allocating.
type Tracer struct {
	mu    sync.Mutex
	procs []*Proc
	limit int
}

// NewTracer returns an empty tracer. Per-stream event buffers are
// capped at a generous default; SetStreamLimit adjusts it.
func NewTracer() *Tracer {
	return &Tracer{limit: 1 << 20}
}

// SetStreamLimit caps the number of events any single stream retains;
// events past the cap are counted as drops and surface in the exported
// metadata. Zero or negative means unlimited.
func (t *Tracer) SetStreamLimit(n int) {
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// Process returns the trace process for pid, creating it (with the
// given display name) on first use. Creation order is part of the
// export only via pid sorting, so concurrent engine construction is
// safe.
func (t *Tracer) Process(pid int32, name string) *Proc {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, p := range t.procs {
		if p.pid == pid {
			return p
		}
	}
	p := &Proc{t: t, pid: pid, name: name}
	t.procs = append(t.procs, p)
	return p
}

// Proc is one trace process (a drive, or the array front end).
type Proc struct {
	t    *Tracer
	pid  int32
	name string

	mu      sync.Mutex
	threads []thread
	streams []*Stream
}

type thread struct {
	tid  int32
	name string
}

// Thread registers a thread-name metadata record (idempotent per tid).
func (p *Proc) Thread(tid int32, name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, th := range p.threads {
		if th.tid == tid {
			return
		}
	}
	p.threads = append(p.threads, thread{tid: tid, name: name})
}

// Stream mints a new single-writer event buffer within the process.
// The caller owns it: all appends must come from one goroutine (or be
// externally serialized, as die streams are by the die mutex).
func (p *Proc) Stream() *Stream {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := &Stream{limit: p.t.limit}
	p.streams = append(p.streams, s)
	return s
}

// Event phases, following the trace-event format.
const (
	phaseSpan    = 'X' // complete event: ts + dur
	phaseInstant = 'i' // instant event
)

// Event is one trace record. Names and argument keys must be static
// strings (they are written verbatim into the export); values are
// virtual durations/integers, so appending never boxes or formats.
type Event struct {
	Name   string
	Ph     byte
	Tid    int32
	Ts     time.Duration // virtual timestamp (ns since run start)
	Dur    time.Duration // span length; unused for instants
	K1, K2 string        // optional static arg keys ("" = absent)
	V1, V2 int64
}

// Stream is an append-only event buffer owned by a single writer.
type Stream struct {
	events []Event
	drops  uint64
	limit  int
}

func (s *Stream) push(e Event) {
	if s.limit > 0 && len(s.events) >= s.limit {
		s.drops++
		return
	}
	s.events = append(s.events, e)
}

// Span records a complete event [ts, ts+dur) on thread tid. A nil
// stream (tracing disabled) returns immediately and never allocates.
func (s *Stream) Span(tid int32, name string, ts, dur time.Duration) {
	if s == nil {
		return
	}
	s.push(Event{Name: name, Ph: phaseSpan, Tid: tid, Ts: ts, Dur: dur})
}

// Span1 is Span with one static-keyed integer argument.
func (s *Stream) Span1(tid int32, name string, ts, dur time.Duration, k1 string, v1 int64) {
	if s == nil {
		return
	}
	s.push(Event{Name: name, Ph: phaseSpan, Tid: tid, Ts: ts, Dur: dur, K1: k1, V1: v1})
}

// Span2 is Span with two static-keyed integer arguments.
func (s *Stream) Span2(tid int32, name string, ts, dur time.Duration, k1 string, v1 int64, k2 string, v2 int64) {
	if s == nil {
		return
	}
	s.push(Event{Name: name, Ph: phaseSpan, Tid: tid, Ts: ts, Dur: dur, K1: k1, V1: v1, K2: k2, V2: v2})
}

// Instant records a zero-length marker at ts on thread tid.
func (s *Stream) Instant(tid int32, name string, ts time.Duration) {
	if s == nil {
		return
	}
	s.push(Event{Name: name, Ph: phaseInstant, Tid: tid, Ts: ts})
}

// Instant1 is Instant with one static-keyed integer argument.
func (s *Stream) Instant1(tid int32, name string, ts time.Duration, k1 string, v1 int64) {
	if s == nil {
		return
	}
	s.push(Event{Name: name, Ph: phaseInstant, Tid: tid, Ts: ts, K1: k1, V1: v1})
}

// Instant2 is Instant with two static-keyed integer arguments.
func (s *Stream) Instant2(tid int32, name string, ts time.Duration, k1 string, v1 int64, k2 string, v2 int64) {
	if s == nil {
		return
	}
	s.push(Event{Name: name, Ph: phaseInstant, Tid: tid, Ts: ts, K1: k1, V1: v1, K2: k2, V2: v2})
}

// Events returns the total number of retained events across all
// processes, plus the number dropped to stream limits.
func (t *Tracer) Events() (kept, dropped uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, p := range t.procs {
		p.mu.Lock()
		for _, s := range p.streams {
			kept += uint64(len(s.events))
			dropped += s.drops
		}
		p.mu.Unlock()
	}
	return kept, dropped
}

// WriteJSON serializes the trace in Chrome trace-event format:
// process_name/thread_name metadata first, then every stream's events
// in append order, streams in creation order, processes sorted by pid.
// The trace-event format does not require chronological order, so this
// fixed serialization order is what makes the export byte-stable.
// Timestamps are microseconds with fixed millinanosecond precision
// ("12.345"), derived from the integer virtual nanosecond clocks.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	t.mu.Lock()
	procs := append([]*Proc(nil), t.procs...)
	t.mu.Unlock()
	sort.Slice(procs, func(i, j int) bool { return procs[i].pid < procs[j].pid })

	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString(`{"traceEvents":[`)
	first := true
	comma := func() {
		if first {
			first = false
		} else {
			bw.WriteByte(',')
		}
		bw.WriteString("\n")
	}
	var buf []byte
	for _, p := range procs {
		p.mu.Lock()
		threads := append([]thread(nil), p.threads...)
		streams := append([]*Stream(nil), p.streams...)
		p.mu.Unlock()
		sort.Slice(threads, func(i, j int) bool { return threads[i].tid < threads[j].tid })

		comma()
		buf = buf[:0]
		buf = append(buf, `{"name":"process_name","ph":"M","pid":`...)
		buf = strconv.AppendInt(buf, int64(p.pid), 10)
		buf = append(buf, `,"args":{"name":`...)
		buf = appendQuoted(buf, p.name)
		buf = append(buf, `}}`...)
		bw.Write(buf)

		for _, th := range threads {
			comma()
			buf = buf[:0]
			buf = append(buf, `{"name":"thread_name","ph":"M","pid":`...)
			buf = strconv.AppendInt(buf, int64(p.pid), 10)
			buf = append(buf, `,"tid":`...)
			buf = strconv.AppendInt(buf, int64(th.tid), 10)
			buf = append(buf, `,"args":{"name":`...)
			buf = appendQuoted(buf, th.name)
			buf = append(buf, `}}`...)
			bw.Write(buf)
		}
		for _, s := range streams {
			for i := range s.events {
				e := &s.events[i]
				comma()
				buf = appendEvent(buf[:0], p.pid, e)
				bw.Write(buf)
			}
			if s.drops > 0 {
				comma()
				buf = buf[:0]
				buf = append(buf, `{"name":"events_dropped","ph":"M","pid":`...)
				buf = strconv.AppendInt(buf, int64(p.pid), 10)
				buf = append(buf, `,"args":{"count":`...)
				buf = strconv.AppendUint(buf, s.drops, 10)
				buf = append(buf, `}}`...)
				bw.Write(buf)
			}
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// JSON returns the serialized trace as a byte slice.
func (t *Tracer) JSON() []byte {
	var b bytes.Buffer
	t.WriteJSON(&b)
	return b.Bytes()
}

func appendEvent(buf []byte, pid int32, e *Event) []byte {
	buf = append(buf, `{"name":`...)
	buf = appendQuoted(buf, e.Name)
	buf = append(buf, `,"ph":"`...)
	buf = append(buf, e.Ph)
	buf = append(buf, `","pid":`...)
	buf = strconv.AppendInt(buf, int64(pid), 10)
	buf = append(buf, `,"tid":`...)
	buf = strconv.AppendInt(buf, int64(e.Tid), 10)
	buf = append(buf, `,"ts":`...)
	buf = appendMicros(buf, e.Ts)
	if e.Ph == phaseSpan {
		buf = append(buf, `,"dur":`...)
		buf = appendMicros(buf, e.Dur)
	}
	if e.Ph == phaseInstant {
		buf = append(buf, `,"s":"t"`...)
	}
	if e.K1 != "" {
		buf = append(buf, `,"args":{`...)
		buf = appendQuoted(buf, e.K1)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, e.V1, 10)
		if e.K2 != "" {
			buf = append(buf, ',')
			buf = appendQuoted(buf, e.K2)
			buf = append(buf, ':')
			buf = strconv.AppendInt(buf, e.V2, 10)
		}
		buf = append(buf, '}')
	}
	buf = append(buf, '}')
	return buf
}

// appendMicros renders a nanosecond duration as decimal microseconds
// with exactly three fractional digits — integer math only, so the
// text is identical across platforms and runs.
func appendMicros(buf []byte, d time.Duration) []byte {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	buf = strconv.AppendInt(buf, ns/1000, 10)
	frac := ns % 1000
	buf = append(buf, '.')
	buf = append(buf, byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	return buf
}

// appendQuoted writes a JSON string. Trace names are static ASCII
// identifiers; the escape handling covers the general case anyway.
func appendQuoted(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			buf = append(buf, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}
