package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func buildRegistry() *Registry {
	r := NewRegistry()
	r.AddCounter(Label("drive_reads_total", "drive", "1"), 10)
	r.AddCounter(Label("drive_reads_total", "drive", "0"), 7)
	r.AddCounter(Label("drive_reads_total", "drive", "0"), 3) // accumulates to 10
	r.AddCounter("fleet_rounds_total", 42)
	r.SetGauge("fleet_vtime_seconds", 1.5)
	var h LatencyHist
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	r.ObserveHist(Label2("op_latency_us", "class", "clean_read", "drive", "0"), h.Snapshot())
	return r
}

func TestRegistryPrometheusStable(t *testing.T) {
	a := buildRegistry().PrometheusText()
	b := buildRegistry().PrometheusText()
	if !bytes.Equal(a, b) {
		t.Fatalf("prometheus export not stable:\n%s\nvs\n%s", a, b)
	}
	text := string(a)
	for _, want := range []string{
		"# TYPE drive_reads_total counter",
		`drive_reads_total{drive="0"} 10`,
		`drive_reads_total{drive="1"} 10`,
		"# TYPE fleet_vtime_seconds gauge",
		"# TYPE op_latency_us summary",
		`op_latency_us{class="clean_read",drive="0",quantile="0.5"}`,
		`op_latency_us_count{class="clean_read",drive="0"} 100`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// Sorted: drive 0 series before drive 1.
	if strings.Index(text, `drive="0"`) > strings.Index(text, `drive="1"`) {
		t.Error("series not sorted by name")
	}
}

func TestRegistryJSON(t *testing.T) {
	a, err := buildRegistry().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := buildRegistry().JSON()
	if !bytes.Equal(a, b) {
		t.Fatal("JSON export not stable")
	}
	var doc struct {
		Counters []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"counters"`
		Hists []struct {
			Name  string `json:"name"`
			Count uint64 `json:"count"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Counters) != 3 || len(doc.Hists) != 1 || doc.Hists[0].Count != 100 {
		t.Fatalf("unexpected shape: %s", a)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.AddCounter("x", 1)
	r.SetGauge("y", 2)
	r.ObserveHist("z", HistSnapshot{})
	if r.PrometheusText() != nil {
		t.Fatal("nil registry rendered text")
	}
}
