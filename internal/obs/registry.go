package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is a small metrics sink the layers publish snapshots into:
// counters, gauges, and latency-histogram summaries keyed by
// Prometheus-style names (optionally with inline labels, see Label).
// It follows a publish-on-snapshot model — nothing on the simulation
// hot path touches the registry; instead each layer exposes a
// PublishMetrics method that dumps its already-maintained counters at
// report time. Export order is sorted by name, so two runs of the same
// seeded scenario serialize byte-identically.
type Registry struct {
	mu       sync.Mutex
	counters map[string]float64
	gauges   map[string]float64
	hists    map[string]HistSnapshot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]float64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]HistSnapshot),
	}
}

// Label renders name{k="v"} for one-label series; labels are part of
// the series key, so sorting keys yields a stable export. Append more
// labels by nesting: Label(Label(n, k1, v1), ...) is not supported —
// use Label2 for two labels.
func Label(name, k, v string) string {
	return name + `{` + k + `="` + v + `"}`
}

// Label2 renders name{k1="v1",k2="v2"}.
func Label2(name, k1, v1, k2, v2 string) string {
	return name + `{` + k1 + `="` + v1 + `",` + k2 + `="` + v2 + `"}`
}

// AddCounter accumulates v into the named counter (creating it at
// zero). Counters accumulate so independent publishers — e.g. every
// drive — can fold into one fleet-level series.
func (r *Registry) AddCounter(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += v
	r.mu.Unlock()
}

// SetGauge sets the named gauge.
func (r *Registry) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// ObserveHist stores a histogram snapshot under the name, replacing
// any previous snapshot for the same series.
func (r *Registry) ObserveHist(name string, snap HistSnapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.hists[name] = snap
	r.mu.Unlock()
}

// family strips the label block from a series key.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// PrometheusText renders the registry in Prometheus exposition format:
// families sorted by name, one # TYPE line per family, histogram
// snapshots as summaries (quantile series plus _sum and _count).
func (r *Registry) PrometheusText() []byte {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b bytes.Buffer

	writeTyped := func(m map[string]float64, typ string) {
		names := make([]string, 0, len(m))
		for n := range m {
			names = append(names, n)
		}
		sort.Strings(names)
		lastFam := ""
		for _, n := range names {
			if f := family(n); f != lastFam {
				fmt.Fprintf(&b, "# TYPE %s %s\n", f, typ)
				lastFam = f
			}
			b.WriteString(n)
			b.WriteByte(' ')
			b.WriteString(formatVal(m[n]))
			b.WriteByte('\n')
		}
	}
	writeTyped(r.counters, "counter")
	writeTyped(r.gauges, "gauge")

	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	lastFam := ""
	for _, n := range names {
		s := r.hists[n]
		f := family(n)
		if f != lastFam {
			fmt.Fprintf(&b, "# TYPE %s summary\n", f)
			lastFam = f
		}
		labels := ""
		if i := strings.IndexByte(n, '{'); i >= 0 {
			labels = strings.TrimSuffix(n[i+1:], "}")
		}
		q := func(quant string, v float64) {
			b.WriteString(f)
			b.WriteByte('{')
			if labels != "" {
				b.WriteString(labels)
				b.WriteByte(',')
			}
			b.WriteString(`quantile="` + quant + `"} `)
			b.WriteString(formatVal(v))
			b.WriteByte('\n')
		}
		q("0.5", s.P50Us)
		q("0.99", s.P99Us)
		q("0.999", s.P999Us)
		fmt.Fprintf(&b, "%s_sum%s %s\n", f, n[len(f):], formatVal(s.MeanUs*float64(s.Count)))
		fmt.Fprintf(&b, "%s_count%s %d\n", f, n[len(f):], s.Count)
	}
	return b.Bytes()
}

func formatVal(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// metricJSON is the JSON export shape: one sorted list per kind.
type metricJSON struct {
	Counters []namedVal  `json:"counters"`
	Gauges   []namedVal  `json:"gauges,omitempty"`
	Hists    []namedHist `json:"histograms,omitempty"`
}

type namedVal struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

type namedHist struct {
	Name string `json:"name"`
	HistSnapshot
}

// JSON renders the registry as indented JSON with stable ordering.
func (r *Registry) JSON() ([]byte, error) {
	if r == nil {
		return []byte("{}"), nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out metricJSON
	for n, v := range r.counters {
		out.Counters = append(out.Counters, namedVal{n, v})
	}
	for n, v := range r.gauges {
		out.Gauges = append(out.Gauges, namedVal{n, v})
	}
	for n, s := range r.hists {
		out.Hists = append(out.Hists, namedHist{Name: n, HistSnapshot: s})
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	sort.Slice(out.Hists, func(i, j int) bool { return out.Hists[i].Name < out.Hists[j].Name })
	return json.MarshalIndent(out, "", "  ")
}
