package hv

import (
	"fmt"
	"time"

	"xlnand/internal/nand"
)

// PowerConfig gathers the load-current calibration of the HV subsystem:
// how much current each pump sources in each operation phase. These are
// the fitted constants that place the absolute power numbers in the
// paper's 0.15-0.18 W band (Fig. 6); the pump physics above them is
// structural.
type PowerConfig struct {
	Program DicksonPump
	Inhibit DicksonPump
	Verify  DicksonPump

	// BaselineWatts is the algorithm-independent die power during an
	// operation: references, logic, sense amps (I/O excluded, as in the
	// paper's measurement).
	BaselineWatts float64

	// ProgLoadBaseAmps is the program-pump load at VCG = VStart;
	// ProgLoadSlopeAmps is the extra load per volt of VCG above VStart
	// (wordline charging + cell current grow with the pulse amplitude).
	ProgLoadBaseAmps  float64
	ProgLoadSlopeAmps float64
	VStart            float64

	// InhibitLoadAmps loads the inhibit pump during program pulses,
	// scaled by the inhibited fraction of the page.
	InhibitLoadAmps float64
	InhibitTargetV  float64

	// VerifyLoadAmps loads the verify pump during verify phases (the
	// pass-bias of every unselected wordline plus sensing).
	VerifyLoadAmps float64
	VerifyTargetV  float64

	ProgTargetVMax float64 // regulation sanity bound for the program pump
}

// DefaultPowerConfig returns the calibration reproducing Fig. 6
// (see DESIGN.md §4).
func DefaultPowerConfig() PowerConfig {
	return PowerConfig{
		Program:           ProgramPump(),
		Inhibit:           InhibitPump(),
		Verify:            VerifyPump(),
		BaselineWatts:     0.118,
		ProgLoadBaseAmps:  0.65e-3,
		ProgLoadSlopeAmps: 0.10e-3,
		VStart:            14.0,
		InhibitLoadAmps:   0.45e-3,
		InhibitTargetV:    8.0,
		VerifyLoadAmps:    5.6e-3,
		VerifyTargetV:     4.5,
		ProgTargetVMax:    19.0,
	}
}

// PowerReport is the outcome of integrating pump power over an operation
// timeline.
type PowerReport struct {
	Duration time.Duration
	// Energy split by consumer [J].
	ProgramPumpJ  float64
	InhibitPumpJ  float64
	VerifyPumpJ   float64
	BaselineJ     float64
	TotalJ        float64
	AveragePowerW float64
}

// Integrate walks a program-operation timeline (from the ISPP engine) and
// accumulates supply energy per pump, returning the total and the average
// power — the quantity Fig. 6 plots.
func (pc PowerConfig) Integrate(timeline []nand.Phase) (PowerReport, error) {
	var rep PowerReport
	for _, ph := range timeline {
		dt := ph.Duration.Seconds()
		if dt < 0 {
			return rep, fmt.Errorf("hv: negative phase duration %v", ph.Duration)
		}
		rep.Duration += ph.Duration
		rep.BaselineJ += pc.BaselineWatts * dt
		switch ph.Kind {
		case nand.PhaseProgram:
			load := pc.ProgLoadBaseAmps + pc.ProgLoadSlopeAmps*(ph.VCG-pc.VStart)
			if load < 0 {
				load = pc.ProgLoadBaseAmps
			}
			// Only the active fraction of the page loads the program
			// pump; inhibited cells load the inhibit pump instead.
			pw, err := pc.Program.InputPower(minF(ph.VCG, pc.ProgTargetVMax), load*(0.35+0.65*ph.ActiveFrac))
			if err != nil {
				return rep, err
			}
			rep.ProgramPumpJ += pw * dt
			iw, err := pc.Inhibit.InputPower(pc.InhibitTargetV, pc.InhibitLoadAmps*(1-0.5*ph.ActiveFrac))
			if err != nil {
				return rep, err
			}
			rep.InhibitPumpJ += iw * dt
		case nand.PhaseVerify:
			vw, err := pc.Verify.InputPower(pc.VerifyTargetV, pc.VerifyLoadAmps)
			if err != nil {
				return rep, err
			}
			rep.VerifyPumpJ += vw * dt
		case nand.PhaseLoad, nand.PhaseErase:
			// Data load and erase use negligible pump power in this
			// model (erase power is not part of Fig. 6's comparison).
		}
	}
	rep.TotalJ = rep.ProgramPumpJ + rep.InhibitPumpJ + rep.VerifyPumpJ + rep.BaselineJ
	if rep.Duration > 0 {
		rep.AveragePowerW = rep.TotalJ / rep.Duration.Seconds()
	}
	return rep, nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// ProgramPower runs the closed-form program estimator for the given
// algorithm/pattern/wear and integrates its synthetic timeline: the fast
// path used by the Fig. 6 sweep (the Monte-Carlo timeline from the array
// simulator plugs into Integrate directly when cell-accurate waveforms
// are wanted).
func (pc PowerConfig) ProgramPower(cal nand.Calibration, alg nand.Algorithm, pattern nand.Level, cycles float64) (PowerReport, error) {
	tl, err := SyntheticTimeline(cal, alg, pattern, cycles)
	if err != nil {
		return PowerReport{}, err
	}
	return pc.Integrate(tl)
}

// SyntheticTimeline builds the expected phase sequence for programming a
// page whose cells all target `pattern` (the paper's L1/L2/L3 pattern
// measurements) at the given wear, without running the cell array.
func SyntheticTimeline(cal nand.Calibration, alg nand.Algorithm, pattern nand.Level, cycles float64) ([]nand.Phase, error) {
	if pattern == nand.L0 || !pattern.Valid() {
		return nil, fmt.Errorf("hv: pattern must be a programmed level, got %v", pattern)
	}
	aged := cal.Age(cycles)
	firstLand := cal.VStart - cal.KOffsetMu
	span := cal.VerifyTarget(pattern) - firstLand + 3*cal.KOffsetSigma + 2*aged.KSlowTail
	pulses := int(span/cal.DeltaISPP) + 2
	fine := cal.DeltaISPP * cal.DVStepFactor
	if alg == nand.ISPPDV {
		extra := (cal.DVPreOffset/fine - cal.DVPreOffset/cal.DeltaISPP) *
			(1 + cal.DVAgingTimeCoef*aged.Wear)
		pulses += int(extra + 0.5)
	}
	if mp := cal.MaxPulses(); pulses > mp {
		pulses = mp
	}
	tl := []nand.Phase{{Kind: nand.PhaseLoad, Duration: cal.TLoad}}
	vcg := cal.VStart
	for i := 0; i < pulses; i++ {
		// The active fraction decays as cells verify; approximate with a
		// linear ramp (the MC timeline carries the exact trajectory).
		act := 1 - float64(i)/float64(pulses)
		tl = append(tl, nand.Phase{
			Kind: nand.PhaseProgram, Duration: cal.TPulse,
			VCG: vcg, ActiveFrac: 0.25 + 0.75*act,
		})
		tl = append(tl, nand.Phase{Kind: nand.PhaseVerify, Duration: cal.TVerify, Level: pattern})
		if alg == nand.ISPPDV {
			tl = append(tl, nand.Phase{Kind: nand.PhaseVerify, Duration: cal.TVerify, Level: pattern})
		}
		vcg += cal.DeltaISPP
		if vcg > cal.VEnd {
			vcg = cal.VEnd
		}
	}
	return tl, nil
}
