package hv

import (
	"math"
	"testing"
)

func TestIdealOutputs(t *testing.T) {
	// (N+1)·VDD: the paper's stage counts must reach their targets with
	// regulation headroom.
	cases := []struct {
		pump   DicksonPump
		target float64
	}{
		{ProgramPump(), 19.0},
		{InhibitPump(), 8.0},
		{VerifyPump(), 4.5},
	}
	for _, c := range cases {
		if got := c.pump.IdealOutput(); got <= c.target {
			t.Errorf("%s pump ideal output %.1f V cannot reach %.1f V",
				c.pump.Name, got, c.target)
		}
	}
}

func TestOutputVoltageDroopsWithLoad(t *testing.T) {
	p := ProgramPump()
	v0 := p.OutputVoltage(0)
	v1 := p.OutputVoltage(1e-3)
	v2 := p.OutputVoltage(2e-3)
	if !(v0 > v1 && v1 > v2) {
		t.Fatalf("droop law violated: %v %v %v", v0, v1, v2)
	}
	if v0 != p.IdealOutput() {
		t.Fatalf("unloaded output %v != ideal %v", v0, v0)
	}
}

func TestMaxLoadConsistentWithDroop(t *testing.T) {
	p := ProgramPump()
	target := 19.0
	max := p.MaxLoad(target)
	if max <= 0 {
		t.Fatal("program pump has no headroom at 19 V")
	}
	// At exactly the max load, the output equals the target.
	if got := p.OutputVoltage(max); math.Abs(got-target) > 1e-9 {
		t.Fatalf("OutputVoltage(MaxLoad) = %v, want %v", got, target)
	}
	if p.MaxLoad(p.IdealOutput()+1) != 0 {
		t.Fatal("MaxLoad above ideal output should be 0")
	}
}

func TestInputPowerBehaviour(t *testing.T) {
	p := VerifyPump()
	if got, err := p.InputPower(4.5, 0); err != nil || got != 0 {
		t.Fatalf("zero load power = %v, %v", got, err)
	}
	if _, err := p.InputPower(4.5, -1); err == nil {
		t.Fatal("negative load accepted")
	}
	p1, err := p.InputPower(4.5, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p.InputPower(4.5, 2e-3)
	if err != nil {
		t.Fatal(err)
	}
	if p2 <= p1 {
		t.Fatal("input power not increasing in load")
	}
	// Charge conservation: P_in >= (N+1)·I·VDD.
	if p1 < float64(p.Stages+1)*1e-3*p.VDD {
		t.Fatal("input power below the lossless Dickson bound")
	}
}

func TestInputPowerRejectsOverload(t *testing.T) {
	p := ProgramPump()
	over := p.MaxLoad(19.0) * 1.5
	if _, err := p.InputPower(19.0, over); err == nil {
		t.Fatal("overload regulation accepted")
	}
}

func TestHigherStageCountCostsMorePower(t *testing.T) {
	// Same load, same VDD: a taller ladder draws more input current.
	prog, ver := ProgramPump(), VerifyPump()
	pp, err := prog.InputPower(10, 0.5e-3)
	if err != nil {
		t.Fatal(err)
	}
	vp, err := ver.InputPower(4.5, 0.5e-3)
	if err != nil {
		t.Fatal(err)
	}
	if pp <= vp {
		t.Fatalf("12-stage pump (%v W) not costlier than 4-stage (%v W)", pp, vp)
	}
}

func TestRiseTimeFiniteAndShort(t *testing.T) {
	p := ProgramPump()
	rt := p.RiseTime(19.0, 5e-9)
	if math.IsInf(rt, 1) || rt <= 0 {
		t.Fatalf("rise time %v not finite/positive", rt)
	}
	// Pumps must settle well within one 25 µs program pulse.
	if rt > 25e-6 {
		t.Fatalf("program pump rise time %v s exceeds a pulse width", rt)
	}
	if !math.IsInf(p.RiseTime(p.IdealOutput()+1, 5e-9), 1) {
		t.Fatal("unreachable target should have infinite rise time")
	}
}
