package hv

import (
	"testing"
	"time"

	"xlnand/internal/nand"
	"xlnand/internal/stats"
)

func TestIntegrateEmptyTimeline(t *testing.T) {
	rep, err := DefaultPowerConfig().Integrate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalJ != 0 || rep.AveragePowerW != 0 {
		t.Fatalf("empty timeline produced energy: %+v", rep)
	}
}

func TestIntegrateRejectsNegativeDuration(t *testing.T) {
	tl := []nand.Phase{{Kind: nand.PhaseLoad, Duration: -time.Microsecond}}
	if _, err := DefaultPowerConfig().Integrate(tl); err == nil {
		t.Fatal("negative duration accepted")
	}
}

func TestIntegrateEnergyAdditivity(t *testing.T) {
	pc := DefaultPowerConfig()
	cal := nand.DefaultCalibration()
	tl, err := SyntheticTimeline(cal, nand.ISPPSV, nand.L2, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pc.Integrate(tl)
	if err != nil {
		t.Fatal(err)
	}
	sum := rep.ProgramPumpJ + rep.InhibitPumpJ + rep.VerifyPumpJ + rep.BaselineJ
	if diff := rep.TotalJ - sum; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("energy split does not sum to total: %v vs %v", sum, rep.TotalJ)
	}
	if rep.Duration != nand.TimelineDuration(tl) {
		t.Fatalf("report duration %v != timeline %v", rep.Duration, nand.TimelineDuration(tl))
	}
}

func TestFig6PowerBand(t *testing.T) {
	// The paper's Fig. 6 envelope: all six series within 0.14-0.19 W.
	pc := DefaultPowerConfig()
	cal := nand.DefaultCalibration()
	for _, alg := range []nand.Algorithm{nand.ISPPSV, nand.ISPPDV} {
		for _, pat := range []nand.Level{nand.L1, nand.L2, nand.L3} {
			for _, cyc := range []float64{1, 1e3, 1e5} {
				rep, err := pc.ProgramPower(cal, alg, pat, cyc)
				if err != nil {
					t.Fatal(err)
				}
				if rep.AveragePowerW < 0.14 || rep.AveragePowerW > 0.19 {
					t.Fatalf("%v %v N=%g: power %.4f W outside Fig. 6 band",
						alg, pat, cyc, rep.AveragePowerW)
				}
			}
		}
	}
}

func TestFig6DVDeltaNear7mW(t *testing.T) {
	// Paper: "A shift of just 7.5mW between the two algorithms is
	// measured, which is a marginal 4 to 5% increment".
	pc := DefaultPowerConfig()
	cal := nand.DefaultCalibration()
	for _, pat := range []nand.Level{nand.L1, nand.L2, nand.L3} {
		sv, err := pc.ProgramPower(cal, nand.ISPPSV, pat, 1e3)
		if err != nil {
			t.Fatal(err)
		}
		dv, err := pc.ProgramPower(cal, nand.ISPPDV, pat, 1e3)
		if err != nil {
			t.Fatal(err)
		}
		deltaMW := 1e3 * (dv.AveragePowerW - sv.AveragePowerW)
		if deltaMW < 4 || deltaMW > 11 {
			t.Fatalf("%v: DV-SV delta %.1f mW, paper says ≈ 7.5 mW", pat, deltaMW)
		}
		rel := (dv.AveragePowerW - sv.AveragePowerW) / sv.AveragePowerW
		if rel < 0.02 || rel > 0.08 {
			t.Fatalf("%v: relative increment %.1f%%, paper says 4-5%%", pat, 100*rel)
		}
	}
}

func TestFig6PatternOrdering(t *testing.T) {
	// "programming a page with a target L1 distribution requires less
	// power than a L3 distribution target".
	pc := DefaultPowerConfig()
	cal := nand.DefaultCalibration()
	for _, alg := range []nand.Algorithm{nand.ISPPSV, nand.ISPPDV} {
		l1, err := pc.ProgramPower(cal, alg, nand.L1, 1e3)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := pc.ProgramPower(cal, alg, nand.L2, 1e3)
		if err != nil {
			t.Fatal(err)
		}
		l3, err := pc.ProgramPower(cal, alg, nand.L3, 1e3)
		if err != nil {
			t.Fatal(err)
		}
		if !(l1.AveragePowerW < l2.AveragePowerW && l2.AveragePowerW < l3.AveragePowerW) {
			t.Fatalf("%v: pattern power not ordered: %v %v %v", alg,
				l1.AveragePowerW, l2.AveragePowerW, l3.AveragePowerW)
		}
	}
}

func TestDVVerifyEnergyDominatesDelta(t *testing.T) {
	// The paper ascribes the DV power shift "mainly to the increased
	// usage of the read charge pump circuitry".
	pc := DefaultPowerConfig()
	cal := nand.DefaultCalibration()
	sv, err := pc.ProgramPower(cal, nand.ISPPSV, nand.L2, 1e3)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := pc.ProgramPower(cal, nand.ISPPDV, nand.L2, 1e3)
	if err != nil {
		t.Fatal(err)
	}
	verifyGrowth := dv.VerifyPumpJ - sv.VerifyPumpJ
	progGrowth := dv.ProgramPumpJ - sv.ProgramPumpJ
	if verifyGrowth <= progGrowth {
		t.Fatalf("verify-pump energy growth (%g J) not dominant over program pump (%g J)",
			verifyGrowth, progGrowth)
	}
}

func TestSyntheticTimelineRejectsL0(t *testing.T) {
	cal := nand.DefaultCalibration()
	if _, err := SyntheticTimeline(cal, nand.ISPPSV, nand.L0, 0); err == nil {
		t.Fatal("L0 pattern accepted")
	}
}

func TestIntegrateMCTimelineAgreesWithSynthetic(t *testing.T) {
	// The Monte-Carlo engine's real timeline must land in the same power
	// neighbourhood as the synthetic one (they share pump physics).
	if testing.Short() {
		t.Skip("MC timeline power comparison skipped in -short mode")
	}
	pc := DefaultPowerConfig()
	cal := nand.DefaultCalibration()
	sim := nand.NewPageSim(cal, 2048, stats.NewRNG(21))
	aged := cal.Age(1e3)
	sim.Erase(aged)
	targets := make([]nand.Level, 2048)
	for i := range targets {
		targets[i] = nand.L2
	}
	res, err := sim.Program(targets, nand.ISPPSV, aged)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := pc.Integrate(res.Timeline)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := pc.ProgramPower(cal, nand.ISPPSV, nand.L2, 1e3)
	if err != nil {
		t.Fatal(err)
	}
	ratio := mc.AveragePowerW / syn.AveragePowerW
	if ratio < 0.85 || ratio > 1.20 {
		t.Fatalf("MC power %.4f W vs synthetic %.4f W (ratio %.2f)",
			mc.AveragePowerW, syn.AveragePowerW, ratio)
	}
}

func TestPowerGrowsSlightlyWithWear(t *testing.T) {
	pc := DefaultPowerConfig()
	cal := nand.DefaultCalibration()
	fresh, err := pc.ProgramPower(cal, nand.ISPPSV, nand.L3, 1)
	if err != nil {
		t.Fatal(err)
	}
	aged, err := pc.ProgramPower(cal, nand.ISPPSV, nand.L3, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	if aged.TotalJ < fresh.TotalJ {
		t.Fatalf("aged energy %g J below fresh %g J", aged.TotalJ, fresh.TotalJ)
	}
}
