// Package hv models the high-voltage subsystem of the NAND die (paper
// §5.1): the Dickson charge pumps generating the program, inhibit and
// verify voltages, their hysteretic regulators, and the integration of
// supply power over the phase timeline of a program operation. It is the
// behavioural substitute for the paper's SPICE simulation of the STM 45 nm
// analog blocks (DESIGN.md §3): the observable consumed downstream is the
// average power per operation, reproduced with the same causal structure
// (more verify phases -> more verify-pump energy; higher VCG -> more
// program-pump energy).
package hv

import (
	"fmt"
	"math"
)

// DicksonPump is a behavioural model of an N-stage Dickson charge pump
// with a hysteretic shunt regulator (paper §5.1: "a conventional 12-stages
// Dickson modified charge pump ... The charge pump is then shut down when
// a target voltage is reached").
type DicksonPump struct {
	Name       string
	Stages     int     // number of pumping stages N
	VDD        float64 // supply voltage [V]
	ClockHz    float64 // pumping clock
	StageCapF  float64 // per-stage flying capacitance [F]
	Efficiency float64 // switching efficiency (0, 1]
}

// IdealOutput returns the unloaded output voltage (N+1)·VDD.
func (p DicksonPump) IdealOutput() float64 {
	return float64(p.Stages+1) * p.VDD
}

// OutputVoltage returns the loaded steady-state output voltage
// (N+1)·VDD − N·I/(f·C), the classic Dickson droop law.
func (p DicksonPump) OutputVoltage(loadAmps float64) float64 {
	return p.IdealOutput() - float64(p.Stages)*loadAmps/(p.ClockHz*p.StageCapF)
}

// MaxLoad returns the load current at which the pump can still reach the
// given target voltage.
func (p DicksonPump) MaxLoad(targetV float64) float64 {
	head := p.IdealOutput() - targetV
	if head <= 0 {
		return 0
	}
	return head * p.ClockHz * p.StageCapF / float64(p.Stages)
}

// CanRegulate reports whether the pump can hold targetV under loadAmps.
func (p DicksonPump) CanRegulate(targetV, loadAmps float64) bool {
	return p.OutputVoltage(loadAmps) >= targetV
}

// InputPower returns the supply power drawn while regulating targetV into
// loadAmps. Charge conservation in a Dickson ladder makes the input
// current (N+1)·I_out; the regulator's hysteretic duty cycle scales
// consumption with the fraction of capacity actually used, and switching
// losses divide by the efficiency.
func (p DicksonPump) InputPower(targetV, loadAmps float64) (float64, error) {
	if loadAmps < 0 {
		return 0, fmt.Errorf("hv: negative load %g A", loadAmps)
	}
	if loadAmps == 0 {
		return 0, nil
	}
	if !p.CanRegulate(targetV, loadAmps) {
		return 0, fmt.Errorf("hv: pump %q cannot hold %.1f V at %.2f mA (max load %.2f mA)",
			p.Name, targetV, loadAmps*1e3, p.MaxLoad(targetV)*1e3)
	}
	raw := float64(p.Stages+1) * loadAmps * p.VDD
	return raw / p.Efficiency, nil
}

// RiseTime estimates the time to charge an output capacitance coutF from
// 0 to targetV with no DC load — used to sanity-check that pumps settle
// well within a program pulse.
func (p DicksonPump) RiseTime(targetV, coutF float64) float64 {
	if targetV >= p.IdealOutput() {
		return math.Inf(1)
	}
	perCycle := p.StageCapF * (p.IdealOutput() - targetV) / coutF
	if perCycle <= 0 {
		return math.Inf(1)
	}
	cycles := targetV / (perCycle * p.IdealOutput() / float64(p.Stages+1))
	return cycles / p.ClockHz
}

// Paper §5.1 pump complement.

// ProgramPump returns the 12-stage pump supplying the 14-19 V ISPP ramp.
func ProgramPump() DicksonPump {
	return DicksonPump{
		Name: "program", Stages: 12, VDD: 1.8,
		ClockHz: 20e6, StageCapF: 500e-12, Efficiency: 0.80,
	}
}

// InhibitPump returns the 8-stage pump for the 8 V channel-boost bias of
// program-inhibited pages.
func InhibitPump() DicksonPump {
	return DicksonPump{
		Name: "inhibit", Stages: 8, VDD: 1.8,
		ClockHz: 20e6, StageCapF: 500e-12, Efficiency: 0.80,
	}
}

// VerifyPump returns the 4-stage high-speed pump for the 4.5 V read-pass
// bias applied to unselected wordlines during verify/read.
func VerifyPump() DicksonPump {
	return DicksonPump{
		Name: "verify", Stages: 4, VDD: 1.8,
		ClockHz: 40e6, StageCapF: 500e-12, Efficiency: 0.85,
	}
}
