package workload

import (
	"testing"

	"xlnand/internal/bch"
	"xlnand/internal/controller"
	"xlnand/internal/nand"
)

func newController(t *testing.T) *controller.Controller {
	t.Helper()
	dev := nand.NewDevice(nand.DefaultCalibration(), 4, 99)
	codec, err := bch.NewPageCodec()
	if err != nil {
		t.Fatal(err)
	}
	c, err := controller.New(dev, bch.NewHWCodec(codec, bch.DefaultHWConfig()), controller.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Profile{}, 1); err == nil {
		t.Fatal("empty profile accepted")
	}
	if _, err := Generate(Profile{ReadFraction: 2, Ops: 10, Blocks: 1, PagesPerBlock: 4}, 1); err == nil {
		t.Fatal("read fraction 2 accepted")
	}
}

func TestGenerateShape(t *testing.T) {
	tr, err := Generate(ReadIntensive(500, 4, 64), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) < 500 {
		t.Fatalf("trace has %d requests, want >= 500", len(tr.Requests))
	}
	reads, writes := 0, 0
	for _, r := range tr.Requests {
		switch r.Kind {
		case OpRead:
			reads++
		case OpWrite:
			writes++
		}
	}
	if reads < writes*5 {
		t.Fatalf("read-intensive trace has %d reads vs %d writes", reads, writes)
	}
}

func TestGenerateReadsOnlyWrittenPages(t *testing.T) {
	tr, err := Generate(Mixed(800, 2, 8), 11)
	if err != nil {
		t.Fatal(err)
	}
	written := map[[2]int]bool{}
	for _, r := range tr.Requests {
		key := [2]int{r.Block, r.Page}
		switch r.Kind {
		case OpWrite:
			if written[key] {
				t.Fatalf("double write without erase at %v", key)
			}
			written[key] = true
		case OpRead:
			if !written[key] {
				t.Fatalf("read of never-written page %v", key)
			}
		case OpErase:
			for k := range written {
				if k[0] == r.Block {
					delete(written, k)
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Mixed(300, 2, 8), 5)
	b, _ := Generate(Mixed(300, 2, 8), 5)
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("same seed, different trace length")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
}

func TestRunReadIntensiveTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("trace replay skipped in -short mode")
	}
	c := newController(t)
	tr, err := Generate(ReadIntensive(120, 2, 64), 13)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(c, tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reads == 0 || st.Writes == 0 {
		t.Fatalf("replay did nothing: %+v", st)
	}
	if st.Uncorrectable != 0 {
		t.Fatalf("%d uncorrectable pages on a fresh device", st.Uncorrectable)
	}
	if st.ReadMBps <= 0 || st.WriteMBps <= 0 {
		t.Fatal("throughputs not computed")
	}
	if st.TotalTime() != st.ReadTime+st.WriteTime+st.EraseTime {
		t.Fatal("total time not additive")
	}
}

func TestRunWrapsWithErase(t *testing.T) {
	if testing.Short() {
		t.Skip("trace replay skipped in -short mode")
	}
	c := newController(t)
	// Tiny address space forces wrap-around erases: 2 blocks × 64 pages
	// = 128 pages; 200 writes must trigger at least one erase.
	p := WriteIntensive(260, 2, 64)
	tr, err := Generate(p, 17)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(c, tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Erases == 0 {
		t.Fatal("wrap-around produced no erases")
	}
}

func TestOpKindString(t *testing.T) {
	if OpWrite.String() != "write" || OpRead.String() != "read" ||
		OpErase.String() != "erase" || OpKind(7).String() != "op?" {
		t.Fatal("op names drifted")
	}
}
