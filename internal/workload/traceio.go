package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteTrace serialises a trace as CSV (header: op,block,page) preceded
// by two comment-free metadata rows (name and seed), so traces can be
// recorded once and replayed across tools (cmd/nandtrace -record/-replay).
func WriteTrace(w io.Writer, tr Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"#name", tr.Name}); err != nil {
		return err
	}
	if err := cw.Write([]string{"#seed", strconv.FormatUint(tr.Seed, 10)}); err != nil {
		return err
	}
	if err := cw.Write([]string{"op", "block", "page"}); err != nil {
		return err
	}
	for _, r := range tr.Requests {
		rec := []string{r.Kind.String(), strconv.Itoa(r.Block), strconv.Itoa(r.Page)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTrace parses a trace written by WriteTrace.
func ReadTrace(r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var tr Trace
	rows, err := cr.ReadAll()
	if err != nil {
		return tr, fmt.Errorf("workload: trace parse: %w", err)
	}
	if len(rows) < 3 {
		return tr, fmt.Errorf("workload: trace too short (%d rows)", len(rows))
	}
	if rows[0][0] != "#name" || rows[1][0] != "#seed" || len(rows[0]) < 2 || len(rows[1]) < 2 {
		return tr, fmt.Errorf("workload: trace missing metadata rows")
	}
	tr.Name = rows[0][1]
	seed, err := strconv.ParseUint(rows[1][1], 10, 64)
	if err != nil {
		return tr, fmt.Errorf("workload: bad seed: %w", err)
	}
	tr.Seed = seed
	if len(rows[2]) < 3 || rows[2][0] != "op" {
		return tr, fmt.Errorf("workload: trace missing header row")
	}
	for i, row := range rows[3:] {
		if len(row) < 3 {
			return tr, fmt.Errorf("workload: row %d has %d fields", i+4, len(row))
		}
		var kind OpKind
		switch row[0] {
		case "write":
			kind = OpWrite
		case "read":
			kind = OpRead
		case "erase":
			kind = OpErase
		default:
			return tr, fmt.Errorf("workload: row %d has unknown op %q", i+4, row[0])
		}
		block, err := strconv.Atoi(row[1])
		if err != nil {
			return tr, fmt.Errorf("workload: row %d block: %w", i+4, err)
		}
		page, err := strconv.Atoi(row[2])
		if err != nil {
			return tr, fmt.Errorf("workload: row %d page: %w", i+4, err)
		}
		tr.Requests = append(tr.Requests, Request{Kind: kind, Block: block, Page: page})
	}
	return tr, nil
}
