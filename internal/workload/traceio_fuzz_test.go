package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTrace hardens the trace parser against hostile input: for any
// byte stream — malformed rows, huge fields, truncated input, binary
// garbage — ReadTrace must return (Trace, error) without panicking, and
// any trace it accepts must survive a Write/Read round trip unchanged
// (the replay-across-tools contract of cmd/nandtrace -record/-replay).
func FuzzReadTrace(f *testing.F) {
	// Seed corpus: a valid trace, then structured mutations of it.
	var valid bytes.Buffer
	tr, err := Generate(Mixed(32, 4, 8), 99)
	if err != nil {
		f.Fatal(err)
	}
	if err := WriteTrace(&valid, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("#name,x\n#seed,1\nop,block,page\n"))
	f.Add([]byte("#name,x\n#seed,1\nop,block,page\nwrite,0,0\nread,0,0\nerase,0,0\n"))
	f.Add([]byte("#name,x\n#seed,not-a-number\nop,block,page\n"))
	f.Add([]byte("#name,x\n#seed,1\nop,block,page\nwrite,999999999999999999999,0\n"))
	f.Add([]byte("#name,x\n#seed,1\nop,block,page\nteleport,0,0\n"))
	f.Add([]byte("#name,x\n#seed,1\nop,block,page\nwrite,0\n"))
	f.Add([]byte("#seed,1\n#name,x\nop,block,page\n"))
	f.Add([]byte("\"unterminated\nquote,1,2\n"))
	f.Add([]byte("#name," + strings.Repeat("A", 1<<16) + "\n#seed,1\nop,block,page\n"))
	f.Add(bytes.Repeat([]byte{0xff, 0x00, ','}, 512))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data)) // must never panic
		if err != nil {
			return
		}
		// Accepted traces must round-trip bit-exactly.
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			t.Fatalf("WriteTrace failed on accepted trace: %v", err)
		}
		tr2, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("re-parse of serialised trace failed: %v\ntrace: %+v\nserialised:\n%s", err, tr, buf.String())
		}
		if tr2.Name != tr.Name || tr2.Seed != tr.Seed || len(tr2.Requests) != len(tr.Requests) {
			t.Fatalf("round trip changed trace: %+v -> %+v", tr, tr2)
		}
		for i := range tr.Requests {
			if tr.Requests[i] != tr2.Requests[i] {
				t.Fatalf("round trip changed request %d: %+v -> %+v", i, tr.Requests[i], tr2.Requests[i])
			}
		}
	})
}
