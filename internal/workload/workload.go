// Package workload provides synthetic workload generation and trace-driven
// simulation over the full controller+device stack. The generators model
// the application classes the paper's §6.3 motivates: read-intensive
// multimedia streaming, mission-critical writes (OS upgrade, secure
// transactions) and mixed general-purpose traffic.
package workload

import (
	"fmt"
	"time"

	"xlnand/internal/controller"
	"xlnand/internal/stats"
)

// OpKind is the request type of one trace record.
type OpKind int

const (
	OpWrite OpKind = iota
	OpRead
	OpErase
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpErase:
		return "erase"
	default:
		return "op?"
	}
}

// Request is one trace record. Data is lazily generated for writes from
// the trace's seed, so traces stay compact.
type Request struct {
	Kind  OpKind
	Block int
	Page  int
}

// Trace is a replayable request sequence.
type Trace struct {
	Name     string
	Requests []Request
	Seed     uint64
}

// Profile parametrises the synthetic generator.
type Profile struct {
	Name string
	// ReadFraction in [0,1]: probability a data operation is a read.
	ReadFraction float64
	// Ops is the number of data operations to generate.
	Ops int
	// Blocks/PagesPerBlock bound the address space.
	Blocks, PagesPerBlock int
	// Sequential walks addresses in order; otherwise uniform random
	// reads over the written set.
	Sequential bool
}

// ReadIntensive returns the multimedia-streaming profile of §6.3.2
// (95% reads).
func ReadIntensive(ops, blocks, pages int) Profile {
	return Profile{Name: "read-intensive", ReadFraction: 0.95, Ops: ops,
		Blocks: blocks, PagesPerBlock: pages, Sequential: true}
}

// WriteIntensive returns a log/backup-style profile (80% writes).
func WriteIntensive(ops, blocks, pages int) Profile {
	return Profile{Name: "write-intensive", ReadFraction: 0.2, Ops: ops,
		Blocks: blocks, PagesPerBlock: pages}
}

// Mixed returns a balanced profile.
func Mixed(ops, blocks, pages int) Profile {
	return Profile{Name: "mixed", ReadFraction: 0.5, Ops: ops,
		Blocks: blocks, PagesPerBlock: pages}
}

// Generate builds a trace from the profile: writes fill pages (erasing
// blocks when they wrap), reads target previously written pages.
func Generate(p Profile, seed uint64) (Trace, error) {
	if p.Ops <= 0 || p.Blocks <= 0 || p.PagesPerBlock <= 0 {
		return Trace{}, fmt.Errorf("workload: invalid profile %+v", p)
	}
	if p.ReadFraction < 0 || p.ReadFraction > 1 {
		return Trace{}, fmt.Errorf("workload: read fraction %g outside [0,1]", p.ReadFraction)
	}
	rng := stats.NewRNG(seed)
	tr := Trace{Name: p.Name, Seed: seed}
	type addr struct{ b, pg int }
	var written []addr
	nextB, nextPg := 0, 0
	appendWrite := func() {
		// Wrapping past the end of a block requires an erase first when
		// re-entering it.
		if nextPg == 0 && len(written) >= p.Blocks*p.PagesPerBlock {
			tr.Requests = append(tr.Requests, Request{Kind: OpErase, Block: nextB})
			// Forget wiped pages.
			kept := written[:0]
			for _, a := range written {
				if a.b != nextB {
					kept = append(kept, a)
				}
			}
			written = kept
		}
		tr.Requests = append(tr.Requests, Request{Kind: OpWrite, Block: nextB, Page: nextPg})
		written = append(written, addr{nextB, nextPg})
		nextPg++
		if nextPg == p.PagesPerBlock {
			nextPg = 0
			nextB = (nextB + 1) % p.Blocks
		}
	}
	// Ensure at least one page exists before any read.
	appendWrite()
	for len(tr.Requests) < p.Ops {
		if len(written) > 0 && rng.Bernoulli(p.ReadFraction) {
			var a addr
			if p.Sequential {
				a = written[len(tr.Requests)%len(written)]
			} else {
				a = written[rng.Intn(len(written))]
			}
			tr.Requests = append(tr.Requests, Request{Kind: OpRead, Block: a.b, Page: a.pg})
		} else {
			appendWrite()
		}
	}
	return tr, nil
}

// Stats aggregates a trace replay.
type Stats struct {
	Reads, Writes, Erases int
	BitErrorsCorrected    int
	Uncorrectable         int
	ReadTime              time.Duration
	WriteTime             time.Duration
	EraseTime             time.Duration
	// Throughputs over the 4 KB payloads.
	ReadMBps, WriteMBps float64
}

// TotalTime returns the modelled wall time of the replay.
func (s Stats) TotalTime() time.Duration { return s.ReadTime + s.WriteTime + s.EraseTime }

// Run replays a trace against a controller, generating deterministic
// page contents from the trace seed and verifying data integrity on
// every read (mismatches beyond ECC are counted, not fatal).
func Run(c *controller.Controller, tr Trace) (Stats, error) {
	var st Stats
	pageBytes := c.Device().Calibration().PageDataBytes
	content := func(b, pg int) []byte {
		r := stats.NewRNG(tr.Seed ^ uint64(b)<<32 ^ uint64(pg))
		data := make([]byte, pageBytes)
		for i := range data {
			data[i] = byte(r.Intn(256))
		}
		return data
	}
	for i, req := range tr.Requests {
		switch req.Kind {
		case OpWrite:
			wr, err := c.WritePage(req.Block, req.Page, content(req.Block, req.Page))
			if err != nil {
				return st, fmt.Errorf("workload: op %d (%v %d.%d): %w", i, req.Kind, req.Block, req.Page, err)
			}
			st.Writes++
			st.WriteTime += wr.Latency.Program // pipelined write path
		case OpRead:
			rd, err := c.ReadPage(req.Block, req.Page)
			st.ReadTime += rd.Latency.Total()
			if err != nil {
				st.Uncorrectable++
				continue
			}
			st.Reads++
			st.BitErrorsCorrected += rd.Corrected
		case OpErase:
			if err := c.EraseBlock(req.Block); err != nil {
				return st, fmt.Errorf("workload: op %d erase %d: %w", i, req.Block, err)
			}
			st.Erases++
			st.EraseTime += c.Device().Calibration().TEraseOp
		default:
			return st, fmt.Errorf("workload: op %d has unknown kind %d", i, int(req.Kind))
		}
	}
	if st.ReadTime > 0 {
		st.ReadMBps = float64(st.Reads*pageBytes) / st.ReadTime.Seconds() / 1e6
	}
	if st.WriteTime > 0 {
		st.WriteMBps = float64(st.Writes*pageBytes) / st.WriteTime.Seconds() / 1e6
	}
	return st, nil
}
