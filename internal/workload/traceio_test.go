package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	orig, err := Generate(Mixed(200, 2, 16), 99)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.Seed != orig.Seed {
		t.Fatalf("metadata lost: %q/%d", back.Name, back.Seed)
	}
	if len(back.Requests) != len(orig.Requests) {
		t.Fatalf("length %d vs %d", len(back.Requests), len(orig.Requests))
	}
	for i := range back.Requests {
		if back.Requests[i] != orig.Requests[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, back.Requests[i], orig.Requests[i])
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"#name,x\n",
		"#name,x\n#seed,notanumber\nop,block,page\n",
		"#name,x\n#seed,5\nop,block,page\nfly,0,0\n",
		"#name,x\n#seed,5\nop,block,page\nwrite,zero,0\n",
		"#name,x\n#seed,5\nop,block,page\nwrite,0,zero\n",
		"#seed,5\n#name,x\nop,block,page\n", // swapped metadata
	}
	for i, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage trace accepted", i)
		}
	}
}

func TestReadTraceMinimal(t *testing.T) {
	const raw = "#name,tiny\n#seed,7\nop,block,page\nwrite,1,2\nread,1,2\nerase,1,0\n"
	tr, err := ReadTrace(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 3 {
		t.Fatalf("%d requests", len(tr.Requests))
	}
	want := []Request{
		{Kind: OpWrite, Block: 1, Page: 2},
		{Kind: OpRead, Block: 1, Page: 2},
		{Kind: OpErase, Block: 1, Page: 0},
	}
	for i := range want {
		if tr.Requests[i] != want[i] {
			t.Fatalf("request %d: %+v", i, tr.Requests[i])
		}
	}
}
