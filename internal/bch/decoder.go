package bch

import (
	"errors"
	"fmt"

	"xlnand/internal/gf"
)

// ErrUncorrectable is returned when the decoder detects more errors than
// the configured correction capability can repair. The codeword is left
// unmodified in that case.
var ErrUncorrectable = errors.New("bch: uncorrectable error pattern")

// Decoder runs the three-stage BCH decoding flow of the paper's Fig. 2:
// syndrome computation, Berlekamp-Massey, Chien search. One Decoder is
// bound to one code (one t); the adaptive Codec multiplexes between them.
type Decoder struct {
	code *Code
	syn  *SyndromeCalc
}

// NewDecoder creates a decoder for the code, sharing the given syndrome
// calculator (pass nil to create a private one).
func NewDecoder(c *Code, syn *SyndromeCalc) *Decoder {
	if syn == nil {
		syn = NewSyndromeCalc(c.Field)
	}
	return &Decoder{code: c, syn: syn}
}

// Code returns the code this decoder was built for.
func (d *Decoder) Code() *Code { return d.code }

// Decode corrects the codeword (msg ++ parity bytes, as produced by
// Encoder.EncodeCodeword) in place. It returns the number of bit errors
// corrected, or ErrUncorrectable (codeword untouched) when the pattern
// exceeds the code's capability in a detectable way.
func (d *Decoder) Decode(codeword []byte) (int, error) {
	nbits := d.code.CodewordBits()
	if nbits%8 != 0 {
		return 0, fmt.Errorf("bch: codeword bits %d not byte aligned; use DecodePoly", nbits)
	}
	if len(codeword) != nbits/8 {
		return 0, fmt.Errorf("bch: codeword is %d bytes, want %d", len(codeword), nbits/8)
	}
	syn := d.syn.Syndromes(codeword, d.code.T)
	if AllZero(syn) {
		return 0, nil
	}
	lambda, L := BerlekampMassey(d.code.Field, syn)
	if L > d.code.T || len(lambda)-1 != L {
		return 0, ErrUncorrectable
	}
	positions, ok := ChienSearch(d.code.Field, lambda, nbits)
	if !ok {
		return 0, ErrUncorrectable
	}
	for _, p := range positions {
		codeword[p/8] ^= 1 << uint(7-p%8)
	}
	// Defensive re-check: a miscorrection beyond capability can leave
	// nonzero syndromes; verify and roll back rather than hand corrupted
	// data upward.
	if !AllZero(d.syn.Syndromes(codeword, d.code.T)) {
		for _, p := range positions {
			codeword[p/8] ^= 1 << uint(7-p%8)
		}
		return 0, ErrUncorrectable
	}
	return len(positions), nil
}

// DecodePoly is the polynomial-level reference decoder used for
// non-byte-aligned toy codes and cross-validation. It returns the
// corrected codeword polynomial and the number of errors corrected.
func DecodePoly(c *Code, cw gf.Poly2) (gf.Poly2, int, error) {
	nbits := c.CodewordBits()
	syn := SyndromesPoly(c.Field, cw, c.T)
	if AllZero(syn) {
		return cw, 0, nil
	}
	lambda, L := BerlekampMassey(c.Field, syn)
	if L > c.T || len(lambda)-1 != L {
		return cw, 0, ErrUncorrectable
	}
	positions, ok := ChienSearch(c.Field, lambda, nbits)
	if !ok {
		return cw, 0, ErrUncorrectable
	}
	fix := gf.Poly2{}
	for _, p := range positions {
		fix = fix.Add(gf.NewPoly2FromCoeffs(nbits - 1 - p))
	}
	corrected := cw.Add(fix)
	if !AllZero(SyndromesPoly(c.Field, corrected, c.T)) {
		return cw, 0, ErrUncorrectable
	}
	return corrected, len(positions), nil
}
