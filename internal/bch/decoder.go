package bch

import (
	"errors"
	"fmt"
	"sync"

	"xlnand/internal/gf"
)

// ErrUncorrectable is returned when the decoder detects more errors than
// the configured correction capability can repair. The codeword is left
// unmodified in that case.
var ErrUncorrectable = errors.New("bch: uncorrectable error pattern")

// Decoder runs the three-stage BCH decoding flow of the paper's Fig. 2:
// syndrome computation, Berlekamp-Massey, Chien search. One Decoder is
// bound to one code (one t); the adaptive Codec multiplexes between them.
//
// Decoder is safe for concurrent use: all mutable per-decode state lives
// in pooled scratch contexts, so concurrent dies sharing one codec never
// contend on a lock or allocate in steady state.
type Decoder struct {
	code *Code
	syn  *SyndromeCalc
	div  *divider  // remainder-first syndrome engine; nil for toy geometries
	pool sync.Pool // of *decodeScratch
}

// decodeScratch is the reusable working set of one in-flight Decode: the
// syndrome vector, the Berlekamp-Massey polynomial buffers, the Chien
// lane arrays and the found-position list. One scratch serves decodes of
// any capability up to the decoder's t.
type decodeScratch struct {
	syn   []uint32
	delta []uint32 // re-check accumulator, one entry per odd syndrome
	reg   []uint64 // polynomial-division register (remainder-first path)
	rem   []byte   // serialised remainder, r/8 bytes
	bm    bmScratch
	chien chienScratch
	pos   []int
}

// NewDecoder creates a decoder for the code, sharing the given syndrome
// calculator (pass nil to create a private one). The calculator's lookup
// tables for the code's capability are built eagerly here, so the first
// Decode on a latency-sensitive path does table lookups only.
func NewDecoder(c *Code, syn *SyndromeCalc) *Decoder {
	if syn == nil {
		syn = NewSyndromeCalc(c.Field)
	}
	syn.Prepare(c.T)
	d := &Decoder{code: c, syn: syn, div: newDivider(c)}
	t := c.T
	d.pool.New = func() any {
		sc := &decodeScratch{
			syn:   make([]uint32, 2*t),
			delta: make([]uint32, t),
			pos:   make([]int, 0, t+1),
		}
		if d.div != nil {
			sc.reg = make([]uint64, d.div.rw)
			sc.rem = make([]byte, d.div.rb)
		}
		sc.bm.grow(2 * t)
		sc.chien.grow(t + 2)
		return sc
	}
	return d
}

// Code returns the code this decoder was built for.
func (d *Decoder) Code() *Code { return d.code }

// Decode corrects the codeword (msg ++ parity bytes, as produced by
// Encoder.EncodeCodeword) in place. It returns the number of bit errors
// corrected, or ErrUncorrectable (codeword untouched) when the pattern
// exceeds the code's capability in a detectable way.
//
// The steady-state hot path allocates nothing and walks the codeword
// exactly once: all odd syndromes advance together in one fused pass,
// and the post-correction verification updates the syndromes
// algebraically from the flipped positions (O(errors·t)) instead of
// re-reading the page.
func (d *Decoder) Decode(codeword []byte) (int, error) {
	nbits := d.code.CodewordBits()
	if nbits%8 != 0 {
		return 0, fmt.Errorf("bch: codeword bits %d not byte aligned; use DecodePoly", nbits)
	}
	if len(codeword) != nbits/8 {
		return 0, fmt.Errorf("bch: codeword is %d bytes, want %d", len(codeword), nbits/8)
	}
	sc := d.pool.Get().(*decodeScratch)
	defer d.pool.Put(sc)
	f := d.code.Field
	t := d.code.T

	// Remainder-first syndromes: divide the page by g(x) with the cheap
	// byte-LFSR, then evaluate S_1..S_2t on the r-bit remainder only —
	// bit-identical to the direct walk (see remainder.go), but the
	// expensive per-syndrome evaluation no longer touches the full page.
	// Short codewords (remainder comparable to the word itself) keep the
	// direct path.
	var syn []uint32
	if d.div != nil && len(codeword) > 2*d.div.rb {
		d.div.remainderInto(sc.rem, sc.reg, codeword)
		syn = d.syn.SyndromesInto(sc.syn, sc.rem, t)
	} else {
		syn = d.syn.SyndromesInto(sc.syn, codeword, t)
	}
	if AllZero(syn) {
		return 0, nil
	}
	lambda, L := berlekampMasseyInto(f, syn, &sc.bm)
	if L > t || len(lambda)-1 != L {
		return 0, ErrUncorrectable
	}
	positions, ok := chienSearchInto(f, lambda, nbits, sc.pos[:0], &sc.chien)
	sc.pos = positions[:0]
	if !ok {
		return 0, ErrUncorrectable
	}
	for _, p := range positions {
		codeword[p/8] ^= 1 << uint(7-p%8)
	}
	// Defensive re-check: a miscorrection beyond capability can leave
	// nonzero syndromes; verify and roll back rather than hand corrupted
	// data upward. Syndromes are linear in the codeword, so instead of
	// re-walking the page the flips are applied to the syndromes directly:
	// an error at polynomial degree p contributes alpha^(j·p) to S_j. Only
	// odd syndromes need checking — for a binary word S_2j = S_j^2, so
	// every even syndrome vanishes whenever all odd ones do.
	if !d.recheckOK(syn, positions, nbits, sc.delta) {
		for _, p := range positions {
			codeword[p/8] ^= 1 << uint(7-p%8)
		}
		return 0, ErrUncorrectable
	}
	return len(positions), nil
}

// recheckOK reports whether the odd syndromes, updated algebraically with
// the corrected bit positions, all vanish: each corrected error's
// contribution alpha^(j·deg) is accumulated per odd j into delta (scratch,
// >= t entries), stepping j -> j+2 with one MulAlphaN by alpha^(2·deg),
// and the correction is sound iff delta_j == S_j for every odd j.
func (d *Decoder) recheckOK(syn []uint32, positions []int, nbits int, delta []uint32) bool {
	f := d.code.Field
	N := f.N()
	t := d.code.T
	dl := delta[:t] // dl[i] accumulates the flips' contribution to S_{2i+1}
	for i := range dl {
		dl[i] = 0
	}
	for _, p := range positions {
		deg := nbits - 1 - p
		cur := f.Alpha(deg)     // alpha^(1·deg)
		step := (deg + deg) % N // j advances by 2 between odd syndromes
		for i := 0; i < t; i++ {
			dl[i] ^= cur
			cur = f.MulAlphaN(cur, step)
		}
	}
	for i := 0; i < t; i++ {
		if syn[2*i] != dl[i] {
			return false
		}
	}
	return true
}

// DecodePoly is the polynomial-level reference decoder used for
// non-byte-aligned toy codes and cross-validation. It returns the
// corrected codeword polynomial and the number of errors corrected.
func DecodePoly(c *Code, cw gf.Poly2) (gf.Poly2, int, error) {
	nbits := c.CodewordBits()
	syn := SyndromesPoly(c.Field, cw, c.T)
	if AllZero(syn) {
		return cw, 0, nil
	}
	lambda, L := BerlekampMassey(c.Field, syn)
	if L > c.T || len(lambda)-1 != L {
		return cw, 0, ErrUncorrectable
	}
	positions, ok := ChienSearch(c.Field, lambda, nbits)
	if !ok {
		return cw, 0, ErrUncorrectable
	}
	fix := gf.Poly2{}
	for _, p := range positions {
		fix = fix.Add(gf.NewPoly2FromCoeffs(nbits - 1 - p))
	}
	corrected := cw.Add(fix)
	if !AllZero(SyndromesPoly(c.Field, corrected, c.T)) {
		return cw, 0, ErrUncorrectable
	}
	return corrected, len(positions), nil
}
