package bch

import (
	"testing"
	"testing/quick"

	"xlnand/internal/gf"
	"xlnand/internal/stats"
)

// enumerateCodewords yields every codeword of a small code by encoding
// all 2^k messages.
func enumerateCodewords(t *testing.T, c *Code) []gf.Poly2 {
	t.Helper()
	if c.K > 16 {
		t.Fatalf("enumeration only for toy codes (k=%d)", c.K)
	}
	out := make([]gf.Poly2, 0, 1<<uint(c.K))
	for m := 0; m < 1<<uint(c.K); m++ {
		var exps []int
		for b := 0; b < c.K; b++ {
			if m>>uint(b)&1 == 1 {
				exps = append(exps, b)
			}
		}
		out = append(out, EncodePoly(c, gf.NewPoly2FromCoeffs(exps...)))
	}
	return out
}

func TestMinimumDistanceBCH15_7(t *testing.T) {
	// BCH(15,7,t=2) has designed distance 5; its true minimum distance
	// is also 5. Exhaustive check over all 128 codewords.
	c, err := NewCode(Params{M: 4, K: 7, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	minW := c.CodewordBits() + 1
	for _, cw := range enumerateCodewords(t, c) {
		if cw.IsZero() {
			continue
		}
		if w := cw.Weight(); w < minW {
			minW = w
		}
	}
	if minW != 5 {
		t.Fatalf("minimum distance = %d, want 5", minW)
	}
}

func TestMinimumDistanceHamming15_11(t *testing.T) {
	// t=1 BCH over GF(2^4) is Hamming(15,11): minimum distance 3.
	c, err := NewCode(Params{M: 4, K: 11, T: 1})
	if err != nil {
		t.Fatal(err)
	}
	minW := c.CodewordBits() + 1
	for _, cw := range enumerateCodewords(t, c) {
		if cw.IsZero() {
			continue
		}
		if w := cw.Weight(); w < minW {
			minW = w
		}
	}
	if minW != 3 {
		t.Fatalf("minimum distance = %d, want 3", minW)
	}
}

func TestCodeLinearity(t *testing.T) {
	// The sum of any two codewords is a codeword (zero syndromes).
	c := mkCode(t, 5)
	enc := NewEncoder(c)
	r := stats.NewRNG(300)
	for trial := 0; trial < 50; trial++ {
		a, err := enc.EncodeCodeword(randMsg(r, c.K/8))
		if err != nil {
			t.Fatal(err)
		}
		b, err := enc.EncodeCodeword(randMsg(r, c.K/8))
		if err != nil {
			t.Fatal(err)
		}
		sum := gf.NewPoly2FromBytes(a, c.CodewordBits()).
			Add(gf.NewPoly2FromBytes(b, c.CodewordBits()))
		if !AllZero(SyndromesPoly(c.Field, sum, c.T)) {
			t.Fatal("sum of codewords is not a codeword")
		}
	}
}

func TestEncoderSystematic(t *testing.T) {
	// The first k bits of the codeword are the message, untouched.
	c := mkCode(t, 6)
	enc := NewEncoder(c)
	r := stats.NewRNG(301)
	for trial := 0; trial < 30; trial++ {
		msg := randMsg(r, c.K/8)
		cw, err := enc.EncodeCodeword(msg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range msg {
			if cw[i] != msg[i] {
				t.Fatal("encoder not systematic")
			}
		}
	}
}

func TestDecodeIdempotent(t *testing.T) {
	c := mkCode(t, 4)
	enc, dec := NewEncoder(c), NewDecoder(c, nil)
	r := stats.NewRNG(302)
	cw, _ := enc.EncodeCodeword(randMsg(r, c.K/8))
	flipBits(cw, r.SampleK(c.CodewordBits(), 4))
	if n, err := dec.Decode(cw); err != nil || n != 4 {
		t.Fatalf("first decode: %d, %v", n, err)
	}
	if n, err := dec.Decode(cw); err != nil || n != 0 {
		t.Fatalf("second decode should be clean: %d, %v", n, err)
	}
}

func TestBurstAcrossMessageParityBoundary(t *testing.T) {
	c := mkCode(t, 8)
	enc, dec := NewEncoder(c), NewDecoder(c, nil)
	r := stats.NewRNG(303)
	msg := randMsg(r, c.K/8)
	cw, _ := enc.EncodeCodeword(msg)
	want := append([]byte(nil), cw...)
	// 6-bit burst straddling the k boundary.
	positions := make([]int, 6)
	for i := range positions {
		positions[i] = c.K - 3 + i
	}
	flipBits(cw, positions)
	n, err := dec.Decode(cw)
	if err != nil || n != 6 {
		t.Fatalf("boundary burst: n=%d err=%v", n, err)
	}
	for i := range want {
		if cw[i] != want[i] {
			t.Fatal("boundary burst not corrected")
		}
	}
}

func TestQuickRandomErrorsWithinT(t *testing.T) {
	// Property: for random messages and any error count e <= t, the
	// decoder restores the exact codeword.
	c := mkCode(t, 6)
	enc, dec := NewEncoder(c), NewDecoder(c, nil)
	r := stats.NewRNG(304)
	prop := func(seed uint64, eRaw uint8) bool {
		rr := stats.NewRNG(seed)
		msg := randMsg(rr, c.K/8)
		cw, err := enc.EncodeCodeword(msg)
		if err != nil {
			return false
		}
		want := append([]byte(nil), cw...)
		e := int(eRaw) % (c.T + 1)
		flipBits(cw, rr.SampleK(c.CodewordBits(), e))
		n, err := dec.Decode(cw)
		if err != nil || n != e {
			return false
		}
		for i := range want {
			if cw[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: nil}
	_ = r
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAllZeroMessageCodeword(t *testing.T) {
	// The zero message encodes to the zero codeword (linearity corner).
	c := mkCode(t, 3)
	enc := NewEncoder(c)
	cw, err := enc.EncodeCodeword(make([]byte, c.K/8))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range cw {
		if b != 0 {
			t.Fatal("zero message has nonzero codeword")
		}
	}
	// And still corrects errors against the zero word.
	dec := NewDecoder(c, nil)
	flipBits(cw, []int{1, 77, 130})
	if n, err := dec.Decode(cw); err != nil || n != 3 {
		t.Fatalf("zero-codeword decode: %d, %v", n, err)
	}
}

func TestParityLengthMatchesGeneratorDegreeAcrossT(t *testing.T) {
	codec, err := NewCodec(16, 1024, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	for tc := 1; tc <= 12; tc++ {
		code, err := codec.Code(tc)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := codec.ParityBytes(tc)
		if err != nil {
			t.Fatal(err)
		}
		if pb*8 != code.GenDegree {
			t.Fatalf("t=%d: parity bytes %d vs deg g %d", tc, pb, code.GenDegree)
		}
	}
}

func TestGeneratorCoefficientsSymmetryCheck(t *testing.T) {
	// Spot-check a classical generator: BCH(31,16,t=3) over GF(2^5) has
	// g(x) of degree 15 with the reciprocal-symmetric weight profile of
	// the (31,16) QR-equivalent code. We assert degree and the defining
	// root property rather than a hard-coded polynomial.
	c, err := NewCode(Params{M: 5, K: 16, T: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.GenDegree != 15 {
		t.Fatalf("deg g = %d, want 15", c.GenDegree)
	}
	for i := 1; i <= 6; i++ {
		if c.Gen.Eval(c.Field, c.Field.Alpha(i)) != 0 {
			t.Fatalf("g(alpha^%d) != 0", i)
		}
	}
}
