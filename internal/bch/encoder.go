package bch

import (
	"encoding/binary"
	"fmt"
	"sync"

	"xlnand/internal/gf"
)

// Encoder performs systematic BCH encoding: parity(x) = msg(x)·x^r mod g(x),
// the exact computation the paper's programmable parallel LFSR performs in
// k/p clock cycles. The software implementation processes the message one
// byte at a time through a 256-entry remainder table (the equivalent of a
// p = 8 parallel LFSR network with its XOR taps selected by the ROM of
// characteristic polynomials).
//
// Encoder is safe for concurrent use; the remainder register lives in a
// pooled scratch so steady-state encoding does not allocate.
type Encoder struct {
	code *Code
	r    int           // parity bits = deg(g)
	rw   int           // words in the remainder register
	tbl  [256][]uint64 // tbl[v] = v(x)·x^r mod g(x)
	// slice8 is the flat 8·256·rw slicing table (row k·256+v holds
	// v(x)·x^(r+8k) mod g), shared by the sliced encode loop and the
	// decoder's remainder-first syndrome path; nil when rw exceeds
	// slice8MaxRW (see remainder.go).
	slice8 []uint64
	regs   sync.Pool // of *[]uint64 remainder registers, len rw
}

// NewEncoder builds the remainder table for the code's generator
// polynomial. Encoding requires r >= 8; the page-scale codes used by the
// flash controller (r = 16·t >= 48) always satisfy this. For smaller toy
// codes use the polynomial API (EncodePoly).
func NewEncoder(c *Code) *Encoder {
	e := &Encoder{code: c, r: c.GenDegree, rw: (c.GenDegree + 63) / 64}
	e.regs.New = func() any { p := make([]uint64, e.rw); return &p }
	// Seed single-bit entries: x^(r+u) mod g for u = 0..7.
	var single [8]gf.Poly2
	p := gf.NewPoly2FromCoeffs(c.GenDegree) // x^r
	for u := 0; u < 8; u++ {
		single[u] = p.Mod(c.Gen)
		p = p.ShiftLeft(1)
	}
	for v := 0; v < 256; v++ {
		w := make([]uint64, e.rw)
		for u := 0; u < 8; u++ {
			// Bit u of the input byte, MSB-first: byte bit 7-u' ...
			// here v's bit position b (0 = LSB) corresponds to x^b.
			if v>>uint(u)&1 == 1 {
				xorInto(w, single[u])
			}
		}
		e.tbl[v] = w
	}
	if e.rw <= slice8MaxRW {
		e.slice8 = buildSlice8(e)
	}
	return e
}

func xorInto(dst []uint64, p gf.Poly2) {
	for i := 0; i <= p.Degree(); i++ {
		if p.Coeff(i) == 1 {
			dst[i/64] ^= 1 << uint(i%64)
		}
	}
}

// Code returns the code this encoder was built for.
func (e *Encoder) Code() *Code { return e.code }

// ParityBytes returns the parity length in bytes. It panics if the parity
// length is not byte-aligned (use EncodePoly for such codes).
func (e *Encoder) ParityBytes() int {
	if e.r%8 != 0 {
		panic("bch: parity length not byte aligned; use EncodePoly")
	}
	return e.r / 8
}

// checkGeometry validates the byte-wise fast-path preconditions.
func (e *Encoder) checkGeometry(msg []byte) error {
	k, r := e.code.K, e.r
	if k%8 != 0 || r%8 != 0 {
		return fmt.Errorf("bch: code geometry k=%d r=%d not byte aligned", k, r)
	}
	if len(msg) != k/8 {
		return fmt.Errorf("bch: message is %d bytes, want %d", len(msg), k/8)
	}
	if r < 8 {
		return fmt.Errorf("bch: r=%d too small for byte-wise encoder", r)
	}
	return nil
}

// Encode computes the parity block for msg, which must be exactly k/8
// bytes (k must be byte-aligned). The returned slice has r/8 bytes with
// the coefficient of x^(r-1) in the MSB of byte 0, matching the spare-area
// layout used by the controller.
func (e *Encoder) Encode(msg []byte) ([]byte, error) {
	if err := e.checkGeometry(msg); err != nil {
		return nil, err
	}
	out := make([]byte, e.r/8)
	e.encodeInto(out, msg)
	return out, nil
}

// EncodeInto computes the parity block for msg into parity, which must be
// exactly r/8 bytes. It is the allocation-free steady-state write path.
func (e *Encoder) EncodeInto(parity, msg []byte) error {
	if err := e.checkGeometry(msg); err != nil {
		return err
	}
	if len(parity) != e.r/8 {
		return fmt.Errorf("bch: parity buffer is %d bytes, want %d", len(parity), e.r/8)
	}
	e.encodeInto(parity, msg)
	return nil
}

// encodeInto runs the byte-wise LFSR over msg and serialises the
// remainder register MSB-first into out (validated, len r/8).
func (e *Encoder) encodeInto(out, msg []byte) {
	regp := e.regs.Get().(*[]uint64)
	reg := *regp
	for i := range reg {
		reg[i] = 0
	}
	// A byte-wise prologue aligns the bulk of the message to whole
	// 8-byte chunks for the sliced loop (see encodeChunks).
	head := len(msg)
	if e.slice8 != nil {
		head = len(msg) % 8
	}
	for _, b := range msg[:head] {
		top := e.topByte(reg)
		e.shiftLeft8(reg)
		idx := top ^ b
		for i, w := range e.tbl[idx] {
			reg[i] ^= w
		}
	}
	if e.slice8 != nil {
		e.encodeChunks(reg, msg[head:])
	}
	// Serialise the register MSB-first, one output byte at a time:
	// parity byte i carries coefficients r-8i-1 .. r-8i-8.
	r := e.r
	for i := range out {
		pos := r - 8*(i+1)
		word, off := pos/64, uint(pos%64)
		v := reg[word] >> off
		if off > 56 && word+1 < len(reg) {
			v |= reg[word+1] << (64 - off)
		}
		out[i] = byte(v)
	}
	e.regs.Put(regp)
}

// encodeChunks advances the encoding register eight message bytes per
// step. With reg = prefix(x)·x^r mod g, appending a 64-bit chunk M gives
// reg' = (reg·x^64 mod g) ^ (M(x)·x^r mod g); splitting reg·x^64 at
// degree r into overflow H (degrees r..r+63) and low part L, linearity
// of the slicing tables folds both terms into eight lookups on H ^ M:
// reg' = L ^ Σ_k T_k[byte_k(H ^ M)]. len(msg) must be a multiple of 8.
func (e *Encoder) encodeChunks(reg []uint64, msg []byte) {
	tab := e.slice8
	r := e.r
	if e.rw == 1 {
		// r <= 64: reg·x^64 has no bits below degree 64 >= r, so L = 0
		// and the new register is the table fold alone.
		g := reg[0]
		for i := 0; i+8 <= len(msg); i += 8 {
			h := binary.BigEndian.Uint64(msg[i:])
			if r < 64 {
				h ^= g << uint(64-r)
			} else {
				h ^= g
			}
			g = tab[byte(h)] ^
				tab[1*256+int(byte(h>>8))] ^
				tab[2*256+int(byte(h>>16))] ^
				tab[3*256+int(byte(h>>24))] ^
				tab[4*256+int(byte(h>>32))] ^
				tab[5*256+int(byte(h>>40))] ^
				tab[6*256+int(byte(h>>48))] ^
				tab[7*256+int(byte(h>>56))]
		}
		reg[0] = g
		return
	}
	rw := e.rw
	last := rw - 1
	s := uint(r % 64)
	for i := 0; i+8 <= len(msg); i += 8 {
		h := binary.BigEndian.Uint64(msg[i:])
		if s == 0 {
			h ^= reg[last]
		} else {
			h ^= reg[last]<<(64-s) | reg[last-1]>>s
		}
		for j := last; j > 0; j-- {
			reg[j] = reg[j-1]
		}
		reg[0] = 0
		if s != 0 {
			reg[last] &= 1<<s - 1
		}
		for k := 0; k < 8; k++ {
			row := tab[(k<<8|int(byte(h>>uint(8*k))))*rw:][:rw]
			for j, w := range row {
				reg[j] ^= w
			}
		}
	}
}

// topByte extracts the top 8 coefficients (degrees r-8..r-1) of the
// remainder register.
func (e *Encoder) topByte(reg []uint64) byte {
	pos := e.r - 8
	word, off := pos/64, uint(pos%64)
	v := reg[word] >> off
	if off > 56 && word+1 < len(reg) {
		v |= reg[word+1] << (64 - off)
	}
	return byte(v)
}

// shiftLeft8 shifts the register left by 8 bits and masks to r bits.
func (e *Encoder) shiftLeft8(reg []uint64) {
	for i := len(reg) - 1; i > 0; i-- {
		reg[i] = reg[i]<<8 | reg[i-1]>>56
	}
	reg[0] <<= 8
	// Mask the top word to r bits.
	if rem := uint(e.r % 64); rem != 0 {
		reg[len(reg)-1] &= (1 << rem) - 1
	}
}

// EncodeCodeword returns msg ++ parity, the systematic on-flash codeword,
// built with a single allocation: the parity is encoded directly into the
// codeword's tail.
func (e *Encoder) EncodeCodeword(msg []byte) ([]byte, error) {
	if err := e.checkGeometry(msg); err != nil {
		return nil, err
	}
	out := make([]byte, len(msg)+e.r/8)
	copy(out, msg)
	e.encodeInto(out[len(msg):], msg)
	return out, nil
}

// EncodePoly is the bit-exact polynomial reference implementation:
// it returns the full codeword polynomial msg(x)·x^r + parity(x).
// It works for any code geometry and is used to cross-validate the
// byte-wise fast path in tests.
func EncodePoly(c *Code, msg gf.Poly2) gf.Poly2 {
	if msg.Degree() >= c.K {
		panic(fmt.Sprintf("bch: message degree %d exceeds k-1 = %d", msg.Degree(), c.K-1))
	}
	shifted := msg.ShiftLeft(c.GenDegree)
	return shifted.Add(shifted.Mod(c.Gen))
}
