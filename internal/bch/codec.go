package bch

import (
	"fmt"
	"sync"
	"sync/atomic"

	"xlnand/internal/gf"
)

// Codec is the adaptive BCH codec of paper §4: a single hardware block
// whose correction capability t is selectable at runtime through a
// dedicated input port, in the range [TMin, TMax]. Codes for every t share
// one Galois field, one minimal-polynomial table and one syndrome
// calculator; per-t state (generator polynomial, encoder table) is built
// lazily on first use — the software analogue of the characteristic-
// polynomial ROM feeding the programmable LFSR.
//
// Codec is safe for concurrent use and, past first use of a capability,
// lock-free: per-t codes, encoders and decoders are published through
// atomic slots indexed by t, so dies hammering the shared codec never
// serialise on a codec-level mutex. The construction mutex is only taken
// the first time a capability is touched (or during Warm).
type Codec struct {
	M    int // field degree
	K    int // protected message bits per codeword
	TMin int
	TMax int

	field *gf.Field
	mpt   *gf.MinPolyTable
	syn   *SyndromeCalc

	mu       sync.Mutex // serialises slot construction only
	codes    []atomic.Pointer[Code]
	encoders []atomic.Pointer[Encoder]
	decoders []atomic.Pointer[Decoder]
}

// PageCodecParams returns the paper's instantiation: GF(2^16), k = 4 KB
// page = 32768 bits, t programmable in [3, 65].
func PageCodecParams() (m, k, tmin, tmax int) { return 16, 32768, 3, 65 }

// NewCodec constructs an adaptive codec. It validates that the largest
// capability still fits the field: k + m·tmax <= 2^m - 1.
func NewCodec(m, k, tmin, tmax int) (*Codec, error) {
	if tmin < 1 || tmin > tmax {
		return nil, fmt.Errorf("bch: invalid capability range [%d, %d]", tmin, tmax)
	}
	if err := (Params{M: m, K: k, T: tmax}).Validate(); err != nil {
		return nil, err
	}
	f := gf.NewField(m)
	return &Codec{
		M: m, K: k, TMin: tmin, TMax: tmax,
		field:    f,
		mpt:      gf.MinPolyCache(f),
		syn:      NewSyndromeCalc(f),
		codes:    make([]atomic.Pointer[Code], tmax-tmin+1),
		encoders: make([]atomic.Pointer[Encoder], tmax-tmin+1),
		decoders: make([]atomic.Pointer[Decoder], tmax-tmin+1),
	}, nil
}

// NewPageCodec builds the paper's 4 KB-page codec (t in [3, 65]).
func NewPageCodec() (*Codec, error) {
	m, k, tmin, tmax := PageCodecParams()
	return NewCodec(m, k, tmin, tmax)
}

// Field exposes the codec's Galois field (shared across capabilities).
func (c *Codec) Field() *gf.Field { return c.field }

// ClampT clips a requested capability into the codec's supported range,
// mirroring the controller behaviour of instantiating the worst-case
// architecture and refusing configurations outside it.
func (c *Codec) ClampT(t int) int {
	if t < c.TMin {
		return c.TMin
	}
	if t > c.TMax {
		return c.TMax
	}
	return t
}

func (c *Codec) slot(t int) (int, error) {
	if t < c.TMin || t > c.TMax {
		return 0, fmt.Errorf("bch: t=%d outside supported range [%d, %d]", t, c.TMin, c.TMax)
	}
	return t - c.TMin, nil
}

// Code returns (building if needed) the code instance for capability t.
func (c *Codec) Code(t int) (*Code, error) {
	i, err := c.slot(t)
	if err != nil {
		return nil, err
	}
	if code := c.codes[i].Load(); code != nil {
		return code, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if code := c.codes[i].Load(); code != nil {
		return code, nil
	}
	code, err := newCodeWith(Params{M: c.M, K: c.K, T: t}, c.field, c.mpt)
	if err != nil {
		return nil, err
	}
	c.codes[i].Store(code)
	return code, nil
}

func (c *Codec) encoder(t int) (*Encoder, error) {
	i, err := c.slot(t)
	if err != nil {
		return nil, err
	}
	if e := c.encoders[i].Load(); e != nil {
		return e, nil
	}
	code, err := c.Code(t)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.encoders[i].Load(); e != nil {
		return e, nil
	}
	e := NewEncoder(code)
	c.encoders[i].Store(e)
	return e, nil
}

func (c *Codec) decoder(t int) (*Decoder, error) {
	i, err := c.slot(t)
	if err != nil {
		return nil, err
	}
	if d := c.decoders[i].Load(); d != nil {
		return d, nil
	}
	code, err := c.Code(t)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if d := c.decoders[i].Load(); d != nil {
		return d, nil
	}
	d := NewDecoder(code, c.syn)
	c.decoders[i].Store(d)
	return d, nil
}

// ParityBytes returns the spare-area bytes consumed at capability t.
func (c *Codec) ParityBytes(t int) (int, error) {
	code, err := c.Code(t)
	if err != nil {
		return 0, err
	}
	return (code.GenDegree + 7) / 8, nil
}

// Encode computes the parity block for msg at capability t.
func (c *Codec) Encode(t int, msg []byte) ([]byte, error) {
	e, err := c.encoder(t)
	if err != nil {
		return nil, err
	}
	return e.Encode(msg)
}

// EncodeInto computes the parity block for msg at capability t into
// parity (exactly ParityBytes(t) bytes). It is the allocation-free
// steady-state write path.
func (c *Codec) EncodeInto(t int, parity, msg []byte) error {
	e, err := c.encoder(t)
	if err != nil {
		return err
	}
	return e.EncodeInto(parity, msg)
}

// EncodeCodeword returns msg ++ parity at capability t.
func (c *Codec) EncodeCodeword(t int, msg []byte) ([]byte, error) {
	e, err := c.encoder(t)
	if err != nil {
		return nil, err
	}
	return e.EncodeCodeword(msg)
}

// Decode corrects codeword in place at capability t, returning the number
// of corrected bit errors or ErrUncorrectable.
func (c *Codec) Decode(t int, codeword []byte) (int, error) {
	d, err := c.decoder(t)
	if err != nil {
		return 0, err
	}
	return d.Decode(codeword)
}

// Warm pre-builds the code, encoder and decoder for capability t — plus
// the shared syndrome lookup tables — so that first use in a
// latency-sensitive path needs no construction work and takes no lock.
func (c *Codec) Warm(t int) error {
	if _, err := c.encoder(t); err != nil {
		return err
	}
	_, err := c.decoder(t)
	return err
}
