// Package bch implements the adaptive binary BCH codec described in §4 of
// Zambelli et al. (DATE 2012): a code over GF(2^16) protecting a full 4 KB
// flash page (k = 32768 bits) with runtime-programmable correction
// capability t in [TMin, TMax] (3..65 for the paper's instantiation, so
// r = 16·t parity bits, n = k + r <= 2^16 - 1, i.e. a shortened code).
//
// The package has three layers:
//
//   - code construction: generator polynomials for every supported t,
//     cached so that reconfiguring t at runtime is table lookup only
//     (mirroring the small ROM of characteristic polynomials in the
//     paper's programmable-LFSR encoder);
//   - a functional codec: systematic encoding via polynomial modulus and
//     a full decoder (syndromes -> inverse-free Berlekamp-Massey -> Chien
//     search with shortening offset), operating on real data buffers;
//   - a hardware timing model (latency.go): cycle counts for the parallel
//     LFSR encoder (parallelism p), syndrome block, iBM machine and Chien
//     search (parallelism h) at a configurable clock, reproducing Fig. 8.
//
// UBER math (uber.go) implements the paper's Eq. (1) in the log domain so
// post-correction error rates down to 1e-30 remain representable, plus the
// inverse problem: the minimum t meeting a target UBER at a given RBER.
package bch

import (
	"fmt"

	"xlnand/internal/gf"
)

// Params describes one BCH code instance BCH[n, k] with correction
// capability t over GF(2^m).
type Params struct {
	M int // Galois field degree; codeword length bound is 2^m - 1
	K int // message length in bits (the protected page)
	T int // correction capability in bit errors per codeword
}

// R returns the number of parity bits r = m·t.
func (p Params) R() int { return p.M * p.T }

// N returns the codeword length n = k + r bits.
func (p Params) N() int { return p.K + p.R() }

// Validate checks the fundamental BCH length inequality k + r <= 2^m - 1
// (paper §4) and basic sanity of the fields.
func (p Params) Validate() error {
	if p.M < 2 || p.M > 16 {
		return fmt.Errorf("bch: field degree m=%d outside [2,16]", p.M)
	}
	if p.K <= 0 {
		return fmt.Errorf("bch: non-positive message length k=%d", p.K)
	}
	if p.T <= 0 {
		return fmt.Errorf("bch: non-positive correction capability t=%d", p.T)
	}
	if p.N() > (1<<uint(p.M))-1 {
		return fmt.Errorf("bch: k + m·t = %d exceeds 2^%d - 1 = %d",
			p.N(), p.M, (1<<uint(p.M))-1)
	}
	return nil
}

// Code is a constructed BCH code: parameters plus the generator polynomial
// and the field it lives in. Codes are immutable and safe for concurrent
// use.
type Code struct {
	Params
	Field *Field

	// Gen is the generator polynomial g(x) = lcm of the minimal
	// polynomials of alpha^1 .. alpha^2t. Its degree is the true parity
	// length; for the fields used here it equals m·t except in rare
	// degenerate coset cases, which Validate treats as the upper bound.
	Gen gf.Poly2

	// GenDegree caches Gen.Degree(): the exact number of parity bits.
	GenDegree int
}

// Field aliases gf.Field so that callers of bch need not import gf for
// the common case.
type Field = gf.Field

// NewCode constructs the BCH code for the given parameters, building the
// generator polynomial from scratch. Prefer NewCodec for adaptive use: it
// shares one field and one minimal-polynomial cache across all t.
func NewCode(p Params) (*Code, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	f := gf.NewField(p.M)
	cache := gf.MinPolyCache(f)
	return newCodeWith(p, f, cache)
}

func newCodeWith(p Params, f *gf.Field, cache *gf.MinPolyTable) (*Code, error) {
	// g(x) = lcm(m_1, m_2, ..., m_2t). For binary BCH, m_{2i} = m_i, so
	// only odd indices contribute new factors; we still iterate all and
	// dedupe by coset leader via the cache plus a local set.
	gen := gf.NewPoly2FromCoeffs(0) // 1
	seen := make(map[int]bool)
	for i := 1; i <= 2*p.T; i++ {
		leader := f.CosetLeader(i)
		if seen[leader] {
			continue
		}
		seen[leader] = true
		gen = gen.Mul(cache.Get(i))
	}
	deg := gen.Degree()
	if deg > p.R() {
		return nil, fmt.Errorf("bch: generator degree %d exceeds budget m·t=%d", deg, p.R())
	}
	return &Code{Params: p, Field: f, Gen: gen, GenDegree: deg}, nil
}

// ParityBits returns the exact parity length (degree of the generator).
// This can be slightly below m·t when conjugate cosets merge; frames are
// still laid out with the full m·t budget so that the adaptive decoder's
// alignment stage (paper §4) sees a fixed geometry per t.
func (c *Code) ParityBits() int { return c.GenDegree }

// CodewordBits returns the on-flash codeword size k + deg(g).
func (c *Code) CodewordBits() int { return c.K + c.GenDegree }

// ShorteningOffset returns the number of implicit leading zero message
// bits by which this code is shortened relative to the natural length
// 2^m - 1. The adaptive Chien search starts its root scan at
// alpha^(-offset)... in hardware this is the per-t ROM entry of "the
// first element of GF(2^m) from which the Chien search must initiate"
// (paper §4).
func (c *Code) ShorteningOffset() int {
	return c.Field.N() - c.CodewordBits()
}

// String implements fmt.Stringer with the conventional BCH[n,k,t] form.
func (c *Code) String() string {
	return fmt.Sprintf("BCH[n=%d,k=%d,t=%d] over GF(2^%d)", c.CodewordBits(), c.K, c.T, c.M)
}
