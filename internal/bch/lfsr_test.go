package bch

import (
	"testing"

	"xlnand/internal/gf"
	"xlnand/internal/stats"
)

func bytesToBits(b []byte, n int) []bool {
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = b[i/8]>>(7-uint(i%8))&1 == 1
	}
	return out
}

func TestLFSRMatchesTableEncoder(t *testing.T) {
	// The bit-accurate hardware structure must produce exactly the
	// parity the table-driven encoder computes.
	c := mkCode(t, 5)
	enc := NewEncoder(c)
	l := NewLFSR(c, 8)
	r := stats.NewRNG(400)
	for trial := 0; trial < 30; trial++ {
		msg := randMsg(r, c.K/8)
		wantParity, err := enc.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		gotPoly, cycles := l.EncodeBits(bytesToBits(msg, c.K))
		want := gf.NewPoly2FromBytes(wantParity, c.GenDegree)
		if !gotPoly.Equal(want) {
			t.Fatalf("trial %d: LFSR parity differs from table encoder", trial)
		}
		if cycles != (c.K+7)/8 {
			t.Fatalf("cycles = %d, want ceil(k/p) = %d", cycles, (c.K+7)/8)
		}
	}
}

func TestLFSRMatchesPolynomialMod(t *testing.T) {
	// Against the mathematical definition: remainder of msg·x^r mod g.
	c, err := NewCode(Params{M: 4, K: 7, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	l := NewLFSR(c, 1) // bit-serial, the textbook configuration
	for m := 0; m < 1<<7; m++ {
		bits := make([]bool, 7)
		var exps []int
		for i := 0; i < 7; i++ {
			// bits are MSB-first: bit i corresponds to degree k-1-i.
			set := m>>uint(6-i)&1 == 1
			bits[i] = set
			if set {
				exps = append(exps, 6-i)
			}
		}
		want := gf.NewPoly2FromCoeffs(exps...).ShiftLeft(c.GenDegree).Mod(c.Gen)
		got, _ := l.EncodeBits(bits)
		if !got.Equal(want) {
			t.Fatalf("message %07b: LFSR %v, want %v", m, got, want)
		}
	}
}

func TestLFSRParallelismInvariance(t *testing.T) {
	// The parity must be independent of the datapath width p; only the
	// cycle count changes (k/p — the paper's latency law).
	c := mkCode(t, 4)
	r := stats.NewRNG(401)
	msg := randMsg(r, c.K/8)
	bits := bytesToBits(msg, c.K)
	ref, refCycles := NewLFSR(c, 1).EncodeBits(bits)
	for _, p := range []int{2, 4, 8, 16} {
		got, cycles := NewLFSR(c, p).EncodeBits(bits)
		if !got.Equal(ref) {
			t.Fatalf("p=%d: parity differs from bit-serial", p)
		}
		if cycles != (c.K+p-1)/p {
			t.Fatalf("p=%d: cycles %d, want %d", p, cycles, (c.K+p-1)/p)
		}
		if cycles >= refCycles && p > 1 {
			t.Fatalf("p=%d did not reduce cycles", p)
		}
	}
}

func TestLFSRResetBetweenCodewords(t *testing.T) {
	c := mkCode(t, 3)
	l := NewLFSR(c, 8)
	r := stats.NewRNG(402)
	msg := randMsg(r, c.K/8)
	bits := bytesToBits(msg, c.K)
	first, _ := l.EncodeBits(bits)
	second, _ := l.EncodeBits(bits) // EncodeBits resets internally
	if !first.Equal(second) {
		t.Fatal("stale state leaked between codewords")
	}
}

func TestLFSRPanicsOnBadParallelism(t *testing.T) {
	c := mkCode(t, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("p=0 accepted")
		}
	}()
	NewLFSR(c, 0)
}
