package bch

import (
	"bytes"
	"sync"
	"testing"

	"xlnand/internal/stats"
)

// smallCodec returns an adaptive codec small enough for fast tests while
// keeping the paper's byte-aligned geometry: GF(2^16), k = 1024 bits
// (128 bytes), t in [1, 12] so r = 16·t is always whole bytes.
func smallCodec(t *testing.T) *Codec {
	t.Helper()
	c, err := NewCodec(16, 1024, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCodecValidation(t *testing.T) {
	if _, err := NewCodec(16, 1024, 5, 3); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := NewCodec(16, 1024, 0, 3); err == nil {
		t.Fatal("tmin=0 accepted")
	}
	if _, err := NewCodec(8, 4096, 1, 10); err == nil {
		t.Fatal("overfull field accepted") // 4096 > 255
	}
}

func TestCodecClampT(t *testing.T) {
	c := smallCodec(t)
	if c.ClampT(0) != 1 || c.ClampT(13) != 12 || c.ClampT(7) != 7 {
		t.Fatal("ClampT wrong")
	}
}

func TestCodecRejectsOutOfRangeT(t *testing.T) {
	c := smallCodec(t)
	if _, err := c.Code(0); err == nil {
		t.Fatal("t=0 accepted")
	}
	if _, err := c.Code(13); err == nil {
		t.Fatal("t>tmax accepted")
	}
	if _, err := c.Encode(13, make([]byte, 64)); err == nil {
		t.Fatal("Encode with t>tmax accepted")
	}
	if _, err := c.Decode(0, make([]byte, 70)); err == nil {
		t.Fatal("Decode with t=0 accepted")
	}
}

func TestCodecRoundTripAcrossT(t *testing.T) {
	c := smallCodec(t)
	r := stats.NewRNG(90)
	for tc := c.TMin; tc <= c.TMax; tc++ {
		msg := randMsg(r, c.K/8)
		cw, err := c.EncodeCodeword(tc, msg)
		if err != nil {
			t.Fatalf("t=%d: %v", tc, err)
		}
		code, _ := c.Code(tc)
		want := append([]byte(nil), cw...)
		flipBits(cw, r.SampleK(code.CodewordBits(), tc))
		n, err := c.Decode(tc, cw)
		if err != nil {
			t.Fatalf("t=%d: decode: %v", tc, err)
		}
		if n != tc || !bytes.Equal(cw, want) {
			t.Fatalf("t=%d: corrected %d, match=%v", tc, n, bytes.Equal(cw, want))
		}
	}
}

func TestCodecReconfigurationChangesParity(t *testing.T) {
	// The adaptive property: same message, different t, different parity
	// size — and each decodes with the t it was encoded with.
	c := smallCodec(t)
	r := stats.NewRNG(91)
	msg := randMsg(r, c.K/8)
	p4, err := c.Encode(4, msg)
	if err != nil {
		t.Fatal(err)
	}
	p9, err := c.Encode(9, msg)
	if err != nil {
		t.Fatal(err)
	}
	b4, _ := c.ParityBytes(4)
	b9, _ := c.ParityBytes(9)
	if len(p4) != b4 || len(p9) != b9 {
		t.Fatalf("parity sizes %d/%d, want %d/%d", len(p4), len(p9), b4, b9)
	}
	if len(p4) >= len(p9) {
		t.Fatal("higher t should cost more parity")
	}
}

func TestCodecSharedFieldIdentity(t *testing.T) {
	c := smallCodec(t)
	c4, _ := c.Code(4)
	c9, _ := c.Code(9)
	if c4.Field != c9.Field || c4.Field != c.Field() {
		t.Fatal("codes do not share the codec's field instance")
	}
}

func TestCodecCaching(t *testing.T) {
	c := smallCodec(t)
	a, _ := c.Code(5)
	b, _ := c.Code(5)
	if a != b {
		t.Fatal("Code(5) rebuilt instead of cached")
	}
}

func TestCodecWarm(t *testing.T) {
	c := smallCodec(t)
	if err := c.Warm(6); err != nil {
		t.Fatal(err)
	}
	if c.encoders[6-c.TMin].Load() == nil || c.decoders[6-c.TMin].Load() == nil {
		t.Fatal("Warm did not populate caches")
	}
}

func TestCodecConcurrentUse(t *testing.T) {
	c := smallCodec(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := stats.NewRNG(seed)
			for i := 0; i < 20; i++ {
				tc := 1 + r.Intn(12)
				msg := randMsg(r, c.K/8)
				cw, err := c.EncodeCodeword(tc, msg)
				if err != nil {
					errs <- err
					return
				}
				code, _ := c.Code(tc)
				flipBits(cw, r.SampleK(code.CodewordBits(), tc))
				if _, err := c.Decode(tc, cw); err != nil {
					errs <- err
					return
				}
			}
		}(uint64(g) + 1000)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPageCodecParams(t *testing.T) {
	m, k, tmin, tmax := PageCodecParams()
	if m != 16 || k != 32768 || tmin != 3 || tmax != 65 {
		t.Fatalf("paper parameters drifted: %d %d %d %d", m, k, tmin, tmax)
	}
}

// TestPageCodecFullRoundTrip exercises the real 4 KB page geometry at the
// paper's extremes (t=3 and t=65). This is the heaviest unit test in the
// package (~1 s); it guards the exact configuration every experiment uses.
func TestPageCodecFullRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("page-scale round trip skipped in -short mode")
	}
	codec, err := NewPageCodec()
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(92)
	for _, tc := range []int{3, 65} {
		msg := randMsg(r, codec.K/8)
		cw, err := codec.EncodeCodeword(tc, msg)
		if err != nil {
			t.Fatalf("t=%d: %v", tc, err)
		}
		code, _ := codec.Code(tc)
		if code.CodewordBits() != 32768+16*tc {
			t.Fatalf("t=%d: codeword bits %d", tc, code.CodewordBits())
		}
		want := append([]byte(nil), cw...)
		flipBits(cw, r.SampleK(code.CodewordBits(), tc))
		n, err := codec.Decode(tc, cw)
		if err != nil {
			t.Fatalf("t=%d decode: %v", tc, err)
		}
		if n != tc || !bytes.Equal(cw, want) {
			t.Fatalf("t=%d: page round trip failed (n=%d)", tc, n)
		}
		// Parity must fit a typical 224-byte spare area (paper §2).
		pb, _ := codec.ParityBytes(tc)
		if pb > 224 {
			t.Fatalf("t=%d: parity %d bytes exceeds spare area", tc, pb)
		}
	}
}
