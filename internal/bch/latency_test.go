package bch

import (
	"testing"
	"time"
)

func TestEncodeCyclesIndependentOfT(t *testing.T) {
	h := DefaultHWConfig()
	k := 32768
	base := h.EncodeCycles(k)
	// Encoding latency must not depend on t at all (paper §4).
	if base != h.EncodeCycles(k) {
		t.Fatal("encode cycles not deterministic")
	}
	// k/p dominates: 32768/8 = 4096 cycles + fill.
	if base < 4096 || base > 4096+64 {
		t.Fatalf("encode cycles = %d, want 4096 + small overhead", base)
	}
}

func TestEncodeLatencyMatchesPaperEnvelope(t *testing.T) {
	// Fig. 8 shows encode latency ≈ 50 µs at 80 MHz for the 4 KB page.
	h := DefaultHWConfig()
	lat := h.EncodeLatency(32768)
	if lat < 45*time.Microsecond || lat > 60*time.Microsecond {
		t.Fatalf("encode latency = %v, want ≈ 51 µs", lat)
	}
}

func TestDecodeLatencyEnvelopeFig8(t *testing.T) {
	// Fig. 8: decode latency ranges from ≈ 60 µs (t=3, fresh) to
	// ≈ 150-170 µs (t=65, end of life) at 80 MHz.
	h := DefaultHWConfig()
	k := 32768
	low := h.DecodeLatency(k+16*3, 3)
	high := h.DecodeLatency(k+16*65, 65)
	if low < 55*time.Microsecond || low > 75*time.Microsecond {
		t.Fatalf("t=3 decode latency = %v, want ≈ 60-70 µs", low)
	}
	if high < 140*time.Microsecond || high > 180*time.Microsecond {
		t.Fatalf("t=65 decode latency = %v, want ≈ 150-170 µs", high)
	}
	if high <= low {
		t.Fatal("decode latency must grow with t")
	}
}

func TestDecodeCyclesMonotoneInT(t *testing.T) {
	h := DefaultHWConfig()
	k := 32768
	prev := 0
	for tc := 3; tc <= 65; tc++ {
		cur := h.DecodeCycles(k+16*tc, tc)
		if cur <= prev {
			t.Fatalf("decode cycles not strictly increasing at t=%d", tc)
		}
		prev = cur
	}
}

func TestCleanDecodeFasterThanWorstCase(t *testing.T) {
	h := DefaultHWConfig()
	n, tc := 33808, 65
	if h.DecodeCleanCycles(n, tc) >= h.DecodeCycles(n, tc) {
		t.Fatal("early termination on clean codeword saves nothing")
	}
}

func TestChienParallelismTradeoff(t *testing.T) {
	// Ablation A3's invariant: doubling h halves Chien cycles (up to
	// ceiling) but scales the multiplier estimate.
	h1 := DefaultHWConfig()
	h2 := h1
	h2.ChienParallelismH *= 2
	n := 33808
	c1, c2 := h1.ChienCycles(n), h2.ChienCycles(n)
	if c2 > c1/2+1 {
		t.Fatalf("doubling h: cycles %d -> %d", c1, c2)
	}
	if h2.GateEstimate(30) <= h1.GateEstimate(30) {
		t.Fatal("doubling h should cost area")
	}
}

func TestSyndromeAlignmentPenalty(t *testing.T) {
	h := DefaultHWConfig()
	// n multiple of p: no alignment stage; n off by one: penalty applies.
	aligned := h.SyndromeCycles(32768, 10)
	misaligned := h.SyndromeCycles(32769, 10)
	if misaligned <= aligned {
		t.Fatal("alignment phase not charged for misaligned parity")
	}
}

func TestGateEstimateGrowsWithT(t *testing.T) {
	h := DefaultHWConfig()
	if h.GateEstimate(65) <= h.GateEstimate(3) {
		t.Fatal("gate estimate must grow with t")
	}
}

func TestLatencyDurationConversion(t *testing.T) {
	h := DefaultHWConfig()
	h.ClockHz = 1e6 // 1 MHz -> 1 µs per cycle
	if got := h.toDuration(5); got != 5*time.Microsecond {
		t.Fatalf("toDuration(5 cycles @ 1MHz) = %v", got)
	}
}
