package bch

import (
	"math"
	"testing"
)

func TestUBERMatchesDirectFormulaModerate(t *testing.T) {
	// For moderate values, compare against a directly computed Eq. (1).
	n, tc, rber := 1000, 2, 1e-3
	// C(1000,3) * p^3 * (1-p)^997 / 1000
	c3 := float64(1000*999*998) / 6
	want := c3 * math.Pow(rber, 3) * math.Pow(1-rber, 997) / 1000
	if got := UBER(n, tc, rber); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("UBER = %g, want %g", got, want)
	}
}

func TestUBEREdgeCases(t *testing.T) {
	if UBER(100, 3, 0) != 0 {
		t.Fatal("UBER at RBER=0 should be 0")
	}
	if !math.IsInf(LogUBER(100, 3, 0), -1) {
		t.Fatal("LogUBER at RBER=0 should be -inf")
	}
	if v := UBER(100, 3, 1); math.IsNaN(v) {
		t.Fatal("UBER at RBER=1 is NaN")
	}
}

func TestUBERMonotonicInRBERSparseRegime(t *testing.T) {
	// Eq. (1) is monotone in RBER while n·RBER << t (its valid regime).
	n, tc := 33808, 10
	prev := math.Inf(-1)
	for _, r := range []float64{1e-8, 1e-7, 1e-6, 1e-5} {
		cur := LogUBER(n, tc, r)
		if cur <= prev {
			t.Fatalf("UBER not increasing in RBER at %g", r)
		}
		prev = cur
	}
}

func TestUBERTailMonotonicInRBEREverywhere(t *testing.T) {
	// The tail variant is monotone even deep into the dense regime where
	// the dominant-term formula turns over.
	n, tc := 33808, 10
	prev := math.Inf(-1)
	for _, r := range []float64{1e-8, 1e-6, 1e-4, 1e-3, 1e-2, 1e-1} {
		cur := LogUBERTail(n, tc, r)
		if cur <= prev {
			t.Fatalf("tail UBER not increasing in RBER at %g", r)
		}
		prev = cur
	}
}

func TestUBERTailMonotonicInT(t *testing.T) {
	rber := 1e-4
	prev := math.Inf(1)
	for tc := 1; tc <= 40; tc++ {
		n := 32768 + 16*tc
		cur := LogUBERTail(n, tc, rber)
		if cur >= prev {
			t.Fatalf("tail UBER not decreasing in t at t=%d", tc)
		}
		prev = cur
	}
}

// TestPaperAnchorTMin reproduces the paper's §6.2 statement: at the
// best-case RBER of 1e-6, t = 3 meets the 1e-11 UBER target (and t = 2
// does not).
func TestPaperAnchorTMin(t *testing.T) {
	const target = 1e-11
	got, err := RequiredT(16, 32768, 1e-6, target, 65)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("RequiredT(RBER=1e-6) = %d, paper says 3", got)
	}
}

// TestPaperAnchorTMaxSV: at the end-of-life ISPP-SV RBER of 1e-3 the code
// needs t = 65 (the reason the paper instantiates the architecture for
// exactly that worst case).
func TestPaperAnchorTMaxSV(t *testing.T) {
	const target = 1e-11
	got, err := RequiredT(16, 32768, 1e-3, target, 80)
	if err != nil {
		t.Fatal(err)
	}
	if got < 60 || got > 68 {
		t.Fatalf("RequiredT(RBER=1e-3) = %d, paper says 65 (allowing small model slack)", got)
	}
}

// TestPaperAnchorTMaxDV: at the DV end-of-life RBER (about an order of
// magnitude better than SV), the requirement collapses to t ≈ 14.
func TestPaperAnchorTMaxDV(t *testing.T) {
	const target = 1e-11
	got, err := RequiredT(16, 32768, 8.4e-5, target, 65)
	if err != nil {
		t.Fatal(err)
	}
	if got < 12 || got > 16 {
		t.Fatalf("RequiredT(RBER=8.4e-5) = %d, paper says 14 (allowing small model slack)", got)
	}
}

func TestPaperAnchorFig7Intermediate(t *testing.T) {
	// Fig. 7 labels t = 4 around RBER = 2.5e-6.
	got, err := RequiredT(16, 32768, 2.5e-6, 1e-11, 65)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("RequiredT(RBER=2.5e-6) = %d, paper Fig. 7 says 4", got)
	}
}

func TestRequiredTErrors(t *testing.T) {
	if _, err := RequiredT(16, 32768, 0.3, 1e-11, 65); err == nil {
		t.Fatal("absurd RBER should be unreachable")
	}
	if _, err := RequiredT(16, 32768, 1e-6, 0, 65); err == nil {
		t.Fatal("target 0 accepted")
	}
	if _, err := RequiredT(16, 32768, 1e-6, 1, 65); err == nil {
		t.Fatal("target 1 accepted")
	}
}

func TestRequiredTMonotoneInRBER(t *testing.T) {
	prev := 0
	for _, r := range []float64{1e-7, 1e-6, 1e-5, 1e-4, 5e-4, 1e-3} {
		tc, err := RequiredT(16, 32768, r, 1e-11, 80)
		if err != nil {
			t.Fatal(err)
		}
		if tc < prev {
			t.Fatalf("required t decreased to %d at RBER %g", tc, r)
		}
		prev = tc
	}
}

func TestMaxRBERForTInverts(t *testing.T) {
	// For each t, RBER just below the threshold must require <= t and
	// just above must require > t.
	for _, tc := range []int{3, 10, 30, 65} {
		thr := MaxRBERForT(16, 32768, tc, 1e-11)
		if thr <= 0 {
			t.Fatalf("t=%d: no threshold found", tc)
		}
		below, err := RequiredT(16, 32768, thr*0.999, 1e-11, 80)
		if err != nil {
			t.Fatal(err)
		}
		if below > tc {
			t.Fatalf("t=%d: RBER below threshold still requires %d", tc, below)
		}
		above, err := RequiredT(16, 32768, thr*1.001, 1e-11, 80)
		if err != nil {
			t.Fatal(err)
		}
		if above <= tc {
			t.Fatalf("t=%d: RBER above threshold requires only %d", tc, above)
		}
	}
}

func TestUBERTailUpperBoundsEq1(t *testing.T) {
	for _, rber := range []float64{1e-6, 1e-5, 1e-4} {
		n, tc := 33808, 20
		if UBERTail(n, tc, rber) < UBER(n, tc, rber) {
			t.Fatalf("tail UBER below dominant-term UBER at %g", rber)
		}
		// In the sparse regime they agree closely.
		ratio := UBERTail(n, tc, rber) / UBER(n, tc, rber)
		if ratio > 1.5 {
			t.Fatalf("tail/dominant ratio %v unexpectedly large at RBER %g", ratio, rber)
		}
	}
}

func TestLog10UBERUnits(t *testing.T) {
	n, tc, rber := 33808, 3, 1e-6
	if got, want := Log10UBER(n, tc, rber), LogUBER(n, tc, rber)/math.Ln10; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Log10UBER inconsistent: %v vs %v", got, want)
	}
	// The paper's t=3 @ 1e-6 point sits between 1e-12 and 1e-11.
	v := Log10UBER(n, tc, rber)
	if v < -13 || v > -11 {
		t.Fatalf("log10 UBER at paper anchor = %v, want in [-13, -11]", v)
	}
}
