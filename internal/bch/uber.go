package bch

import (
	"fmt"
	"math"

	"xlnand/internal/stats"
)

// UBER computes the paper's Eq. (1):
//
//	UBER = C(n, t+1) · RBER^(t+1) · (1-RBER)^(n-(t+1)) / n
//
// i.e. the probability of the dominant uncorrectable event (exactly t+1
// raw errors in an n-bit codeword) normalised per bit. Computation is in
// the log domain so results far below float64's underflow threshold are
// still exact; values smaller than ~1e-300 are returned as from LogUBER.
func UBER(n, t int, rber float64) float64 {
	return math.Exp(LogUBER(n, t, rber))
}

// LogUBER returns ln(UBER) per Eq. (1). RBER must lie in (0, 1); rber = 0
// yields -Inf.
func LogUBER(n, t int, rber float64) float64 {
	if rber <= 0 {
		return math.Inf(-1)
	}
	if rber >= 1 {
		rber = 1 - 1e-15
	}
	return stats.LogBinomPMF(n, t+1, rber) - math.Log(float64(n))
}

// Log10UBER returns log10(UBER), the natural axis unit of Figs. 7 and 10.
func Log10UBER(n, t int, rber float64) float64 {
	return LogUBER(n, t, rber) / math.Ln10
}

// UBERTail is a stricter variant accumulating every uncorrectable weight
// (>= t+1 errors) rather than only the dominant term; it upper-bounds
// Eq. (1) and converges to it when n·RBER << t. Unlike the dominant-term
// formula it is monotone in RBER and in t over the whole parameter space,
// which makes it the right objective for threshold solving.
func UBERTail(n, t int, rber float64) float64 {
	return math.Exp(LogUBERTail(n, t, rber))
}

// LogUBERTail returns ln(UBERTail).
func LogUBERTail(n, t int, rber float64) float64 {
	if rber <= 0 {
		return math.Inf(-1)
	}
	if rber >= 1 {
		rber = 1 - 1e-15
	}
	return stats.LogBinomTail(n, t+1, rber) - math.Log(float64(n))
}

// RequiredT returns the minimum correction capability t such that a BCH
// code over GF(2^m) protecting k message bits at raw bit error rate rber
// achieves UBER <= target. The codeword length grows with t (n = k + m·t),
// which the search accounts for. Returns an error if even tmax fails.
//
// This is the sizing computation behind Fig. 7 ("t = 3 is sufficient" ...
// "grows to t = 65") and behind the reliability manager's runtime
// reconfiguration. It sizes against the full uncorrectable tail
// (UBERTail), which matches Eq. (1) in the sparse regime the paper plots
// but stays monotone — and therefore solvable — everywhere.
func RequiredT(m, k int, rber, target float64, tmax int) (int, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("bch: UBER target %g outside (0,1)", target)
	}
	logTarget := math.Log(target)
	for t := 1; t <= tmax; t++ {
		n := k + m*t
		if n > (1<<uint(m))-1 {
			return 0, fmt.Errorf("bch: t=%d no longer fits GF(2^%d) before meeting target", t, m)
		}
		if LogUBERTail(n, t, rber) <= logTarget {
			return t, nil
		}
	}
	return 0, fmt.Errorf("bch: target UBER %.3g unreachable at RBER %.3g within tmax=%d", target, rber, tmax)
}

// MaxRBERForT inverts RequiredT: the largest RBER (within resolution) at
// which capability t still meets the UBER target, found by bisection on
// the monotone LogUBER. Used to derive the reliability manager's
// switching thresholds.
func MaxRBERForT(m, k, t int, target float64) float64 {
	n := k + m*t
	logTarget := math.Log(target)
	lo, hi := 1e-12, 0.4
	if LogUBERTail(n, t, lo) > logTarget {
		return 0 // even vanishing RBER fails (degenerate)
	}
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection over decades
		if LogUBERTail(n, t, mid) <= logTarget {
			lo = mid
		} else {
			hi = mid
		}
		if hi/lo < 1+1e-12 {
			break
		}
	}
	return lo
}
