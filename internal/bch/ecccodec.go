package bch

import (
	"fmt"
	"math"
	"time"

	"xlnand/internal/ecc"
)

// HWCodec binds the adaptive BCH codec to its micro-architectural timing
// model, satisfying the family-generic ecc.Codec interface the controller
// programs against. The capability level IS the correction capability t;
// everything else delegates to the underlying Codec and HWConfig.
type HWCodec struct {
	C  *Codec
	HW HWConfig
}

// NewHWCodec wraps codec with the latency model hw.
func NewHWCodec(c *Codec, hw HWConfig) *HWCodec { return &HWCodec{C: c, HW: hw} }

// Family implements ecc.Codec.
func (h *HWCodec) Family() ecc.Family { return ecc.FamilyBCH }

// DataBits implements ecc.Codec.
func (h *HWCodec) DataBits() int { return h.C.K }

// MinLevel implements ecc.Codec.
func (h *HWCodec) MinLevel() int { return h.C.TMin }

// MaxLevel implements ecc.Codec.
func (h *HWCodec) MaxLevel() int { return h.C.TMax }

// ClampLevel implements ecc.Codec.
func (h *HWCodec) ClampLevel(level int) int { return h.C.ClampT(level) }

// ParityBytes implements ecc.Codec; the BCH geometry r = m·t makes it
// strictly monotone in t.
func (h *HWCodec) ParityBytes(level int) (int, error) { return h.C.ParityBytes(level) }

// LevelForSpare implements ecc.Codec: t = spare·8 / m, cross-checked
// against the exact parity footprint so a corrupt geometry is rejected
// rather than guessed at.
func (h *HWCodec) LevelForSpare(spareBytes int) (int, error) {
	t := spareBytes * 8 / h.C.M
	pb, err := h.C.ParityBytes(t)
	if err != nil || pb != spareBytes {
		return 0, fmt.Errorf("bch: spare %d bytes maps to no capability", spareBytes)
	}
	return t, nil
}

// CodewordBits implements ecc.Codec.
func (h *HWCodec) CodewordBits(level int) (int, error) {
	code, err := h.C.Code(level)
	if err != nil {
		return 0, err
	}
	return code.CodewordBits(), nil
}

// CorrectionCap implements ecc.Codec: bounded-distance decoding corrects
// exactly t errors.
func (h *HWCodec) CorrectionCap(level int) int { return h.C.ClampT(level) }

// EncodeInto implements ecc.Codec.
func (h *HWCodec) EncodeInto(level int, parity, msg []byte) error {
	return h.C.EncodeInto(level, parity, msg)
}

// Decode implements ecc.Codec.
func (h *HWCodec) Decode(level int, codeword []byte) (int, error) {
	return h.C.Decode(level, codeword)
}

// DecodeSoft implements ecc.Codec: the algebraic decoder is hard-input
// only (a Chase-style soft wrapper is possible but not modelled).
func (h *HWCodec) DecodeSoft(level int, codeword []byte, llr []int8) (int, error) {
	return 0, ecc.ErrNoSoftPath
}

// SupportsSoft implements ecc.Codec.
func (h *HWCodec) SupportsSoft() bool { return false }

// RequiredLevel implements ecc.Codec, mirroring the nominal-schedule
// solver (§6.2): the minimal t whose full uncorrectable tail meets the
// target, clamped up to TMin.
func (h *HWCodec) RequiredLevel(rber, targetUBER float64) (int, error) {
	t, err := RequiredT(h.C.M, h.C.K, rber, targetUBER, h.C.TMax)
	if err != nil {
		return 0, err
	}
	if t < h.C.TMin {
		t = h.C.TMin
	}
	return t, nil
}

// ProjectedUBER implements ecc.Codec (Eq. 1's tail-accumulated form).
func (h *HWCodec) ProjectedUBER(level int, rber float64) float64 {
	n := h.C.K + h.C.M*level
	return math.Exp(LogUBERTail(n, level, rber))
}

// EncodeLatency implements ecc.Codec; BCH encoding is independent of t
// (paper §4).
func (h *HWCodec) EncodeLatency(level int) time.Duration {
	return h.HW.EncodeLatency(h.C.K)
}

// DecodeLatency implements ecc.Codec.
func (h *HWCodec) DecodeLatency(level int, clean bool) time.Duration {
	n := h.C.K + h.C.M*level
	if clean {
		return h.HW.DecodeCleanLatency(n, level)
	}
	return h.HW.DecodeLatency(n, level)
}

// SoftDecodeLatency implements ecc.Codec (no soft path).
func (h *HWCodec) SoftDecodeLatency(level int) time.Duration { return 0 }

// Warm implements ecc.Codec.
func (h *HWCodec) Warm(level int) error { return h.C.Warm(level) }

var _ ecc.Codec = (*HWCodec)(nil)
