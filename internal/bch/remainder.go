package bch

import (
	"encoding/binary"
	"math/bits"
)

// Remainder-first syndrome computation.
//
// The received word c(x) splits as q(x)·g(x) + rem(x) with deg(rem) < r,
// and every syndrome root alpha^j (j = 1..2t) is a root of g, so
// S_j = c(alpha^j) = rem(alpha^j): the syndromes of the r-bit remainder
// are exactly the syndromes of the whole codeword. Dividing by g is far
// cheaper than evaluating 2t syndromes across the page — especially with
// the slicing-by-8 tables below, which consume the page 64 bits at a
// time with eight independent table lookups per step (the classic CRC
// slicing technique lifted to an arbitrary-degree GF(2) modulus). After
// division, the fused per-syndrome evaluation of SyndromesInto only has
// to walk r/8 remainder bytes instead of the full page. The result is
// bit-identical to the direct path: both compute the same field
// elements exactly.

// slice8MaxRW caps the register width (in 64-bit words) for which the
// 8×256-row slicing tables are built: 8·256·rw·8 bytes per decoder, so
// the cap bounds the table at 128 KB. Wider codes (t > 32 for the
// paper's m = 16 instantiation) fall back to the byte-wise division
// loop, which still beats the direct syndrome walk by ~4× there since
// the walk's cost grows with t while the division's does not.
const slice8MaxRW = 8

// divider wraps an Encoder used purely as a polynomial-division engine
// plus the geometry needed to serialise its register.
type divider struct {
	enc    *Encoder
	r      int      // deg(g) = remainder bits
	rw     int      // remainder register words
	rb     int      // remainder bytes = r/8
	slice8 []uint64 // flat 8·256·rw table: row (k·256+v) is v(x)·x^(r+8k) mod g

	// Four-way interleave geometry (rw == 1 codes only). The sliced loop
	// is latency-bound on its loop-carried register dependency, so for
	// the code's full-length codeword — the only length the decoder ever
	// divides — the body splits into four independently-divided segments
	// whose remainders recombine through the shiftL fold tables:
	// rem(A·x^m + B) = rem(A)·x^m + rem(B) (mod g).
	fourLen int      // post-prologue byte count the 4-way loop is built for
	segLen  int      // bytes per interleaved segment (multiple of 8)
	shiftL  []uint64 // flat rb·256: row (j·256+v) = v(x)·x^(8·(segLen+j)) mod g
}

// newDivider returns a division engine for the code, or nil when the
// code's parity is not byte-aligned (toy codes fall back to the direct
// syndrome walk).
func newDivider(c *Code) *divider {
	if c.GenDegree < 8 || c.GenDegree%8 != 0 {
		return nil
	}
	e := NewEncoder(c)
	dv := &divider{enc: e, r: e.r, rw: e.rw, rb: e.r / 8, slice8: e.slice8}
	if expD := (c.K + c.GenDegree) / 8; dv.rw == 1 && dv.slice8 != nil {
		body := expD - expD%8
		if seg := (body / 8 / 4) * 8; seg >= 8*dv.rb {
			dv.fourLen = body
			dv.segLen = seg
			dv.shiftL = buildShiftL(dv, seg)
		}
	}
	return dv
}

// buildShiftL tabulates S_j[v] = v(x)·x^(8·(segBytes+j)) mod g for
// j = 0..rb-1 — the per-byte fold of a remainder register across one
// segment's length. Only built for rw == 1 (r <= 64) codes. One walk
// carries x^(8·segBytes) up from x^r; each row then derives from an
// 8-element bit basis by subset XOR, so the build is O(segBytes + rb·256)
// rather than O(256·segBytes) — it runs lazily on a die's first decode
// at a given capability, inside the simulation's measured hot path.
func buildShiftL(dv *divider, segBytes int) []uint64 {
	e := dv.enc
	r, rb := dv.r, dv.rb
	mask := ^uint64(0)
	if r < 64 {
		mask = 1<<uint(r) - 1
	}
	// g = x^r + gLow, so x^r ≡ gLow (mod g) — and e.tbl[1] is exactly
	// 1·x^r mod g.
	gLow := e.tbl[1][0]
	shift8 := func(v uint64) uint64 {
		top := byte(v >> uint(r-8))
		return (v << 8 & mask) ^ e.tbl[top][0]
	}
	shift1 := func(v uint64) uint64 {
		top := v >> uint(r-1)
		v = v << 1 & mask
		if top != 0 {
			v ^= gLow
		}
		return v
	}
	w := gLow // x^r mod g
	for k := 0; k < segBytes-rb; k++ {
		w = shift8(w) // now x^(8·segBytes) mod g
	}
	tab := make([]uint64, rb*256)
	var basis [8]uint64
	for j := 0; j < rb; j++ {
		basis[0] = w
		for u := 1; u < 8; u++ {
			basis[u] = shift1(basis[u-1]) // x^(8·(segBytes+j)+u) mod g
		}
		row := tab[j*256 : (j+1)*256]
		for v := 1; v < 256; v++ {
			// Subset-sum: drop v's lowest set bit, XOR that bit's basis.
			row[v] = row[v&(v-1)] ^ basis[bits.TrailingZeros8(uint8(v))]
		}
		w = shift8(w)
	}
	return tab
}

// foldSeg advances a remainder register across one segment's worth of
// zeros: R·x^(8·segLen) mod g, one table row per register byte.
func (dv *divider) foldSeg(R uint64) uint64 {
	st := dv.shiftL
	var v uint64
	for j := 0; j < dv.rb; j++ {
		v ^= st[j*256+int(byte(R>>uint(8*j)))]
	}
	return v
}

// buildSlice8 extends the encoder's remainder table T_0[v] = v(x)·x^r
// mod g to T_k[v] = v(x)·x^(r+8k) mod g for k = 0..7, iterating
// T_{k+1}[v] = T_k[v]·x^8 mod g with the byte-wise step.
func buildSlice8(e *Encoder) []uint64 {
	rw := e.rw
	tab := make([]uint64, 8*256*rw)
	tmp := make([]uint64, rw)
	for v := 0; v < 256; v++ {
		copy(tab[v*rw:(v+1)*rw], e.tbl[v])
	}
	for k := 1; k < 8; k++ {
		for v := 0; v < 256; v++ {
			copy(tmp, tab[((k-1)*256+v)*rw:][:rw])
			top := e.topByte(tmp)
			e.shiftLeft8(tmp)
			row := e.tbl[top]
			dst := tab[(k*256+v)*rw:][:rw]
			for i := range dst {
				dst[i] = tmp[i] ^ row[i]
			}
		}
	}
	return tab
}

// remainderInto computes rem(x) = codeword(x) mod g(x) into rem
// (MSB-first, coefficient of x^(r-1) in the MSB of rem[0] — the same
// layout SyndromesInto expects), using reg (len rw) as the division
// register.
func (dv *divider) remainderInto(rem []byte, reg []uint64, codeword []byte) {
	for i := range reg {
		reg[i] = 0
	}
	// A leading byte-wise prologue aligns the bulk of the word to whole
	// 8-byte chunks for the sliced loop.
	head := len(codeword)
	if dv.slice8 != nil {
		head = len(codeword) % 8
	}
	dv.bytewise(reg, codeword[:head])
	if dv.slice8 != nil {
		if body := codeword[head:]; len(body) == dv.fourLen {
			dv.chunks4(reg, body)
		} else {
			dv.chunks(reg, body)
		}
	}
	// Serialise MSB-first: rem byte i carries coefficients
	// r-8i-1 .. r-8i-8, matching the encoder's parity layout.
	r := dv.r
	for i := range rem {
		pos := r - 8*(i+1)
		word, off := pos/64, uint(pos%64)
		v := reg[word] >> off
		if off > 56 && word+1 < len(reg) {
			v |= reg[word+1] << (64 - off)
		}
		rem[i] = byte(v)
	}
}

// bytewise is the one-byte-per-step division: the non-premultiplied
// variant of the encoder's LFSR, where the incoming byte enters at
// degree 0 rather than degree r, so the register tracks the plain
// remainder of the received word instead of msg·x^r mod g.
func (dv *divider) bytewise(reg []uint64, data []byte) {
	e := dv.enc
	last := len(reg) - 1
	topPos := dv.r - 8
	tw, toff := topPos/64, uint(topPos%64)
	topMask := ^uint64(0)
	if remBits := uint(dv.r % 64); remBits != 0 {
		topMask = 1<<remBits - 1
	}
	for _, b := range data {
		// reg·x^8 + b (mod g): extract the byte that overflows past
		// x^(r-1), shift, inject b at the bottom, fold the overflow back
		// in via tbl[top] = top(x)·x^r mod g.
		top := reg[tw] >> toff
		if toff > 56 && tw+1 < len(reg) {
			top |= reg[tw+1] << (64 - toff)
		}
		row := e.tbl[byte(top)]
		for i := last; i > 0; i-- {
			reg[i] = (reg[i]<<8 | reg[i-1]>>56) ^ row[i]
		}
		reg[0] = reg[0]<<8 ^ row[0] ^ uint64(b)
		reg[last] &= topMask
	}
}

// chunks4 is the rw == 1 sliced loop with the loop-carried dependency
// broken four ways: the body splits into four segments divided
// independently (their recurrences share no state, so the four table
// fold chains overlap in flight), and the partial remainders recombine
// with three foldSeg applications — polynomial concatenation is linear,
// rem(A·x^m + B) = rem(A)·x^m + rem(B) (mod g). len(data) must equal
// dv.fourLen; any extra leading chunks beyond the four equal segments
// run single-stream first.
func (dv *divider) chunks4(reg []uint64, data []byte) {
	// The hot loops index tab with k·256 + byte, k = 0..7: resłicing to
	// exactly 2048 entries lets the compiler drop every bounds check.
	tab := dv.slice8[:2048:2048]
	r := uint(dv.r)
	sh := 64 - r // Go shifts >= width yield 0, so r == 64 needs no branch
	lmask := ^uint64(0)
	if r < 64 {
		lmask = 1<<r - 1
	}
	seg := dv.segLen
	g0 := reg[0]
	p := 0
	for extra := len(data) - 4*seg; p < extra; p += 8 {
		b := binary.BigEndian.Uint64(data[p:])
		h := g0<<sh | b>>r
		g0 = (b & lmask) ^
			tab[byte(h)] ^
			tab[1*256+int(byte(h>>8))] ^
			tab[2*256+int(byte(h>>16))] ^
			tab[3*256+int(byte(h>>24))] ^
			tab[4*256+int(byte(h>>32))] ^
			tab[5*256+int(byte(h>>40))] ^
			tab[6*256+int(byte(h>>48))] ^
			tab[7*256+int(h>>56&0xff)]
	}
	d0 := data[p : p+seg : p+seg]
	d1 := data[p+seg : p+2*seg : p+2*seg]
	d2 := data[p+2*seg : p+3*seg : p+3*seg]
	d3 := data[p+3*seg:]
	var g1, g2, g3 uint64
	// Advancing the slices themselves (rather than indexing) keeps the
	// loads free of bounds checks: the length guards cover each Uint64
	// and each re-slice. The four lengths are equal by construction; the
	// redundant compares cost far less than the checks they eliminate.
	for len(d0) >= 8 && len(d1) >= 8 && len(d2) >= 8 && len(d3) >= 8 {
		b0 := binary.BigEndian.Uint64(d0)
		b1 := binary.BigEndian.Uint64(d1)
		b2 := binary.BigEndian.Uint64(d2)
		b3 := binary.BigEndian.Uint64(d3)
		d0, d1, d2, d3 = d0[8:], d1[8:], d2[8:], d3[8:]
		h0 := g0<<sh | b0>>r
		h1 := g1<<sh | b1>>r
		h2 := g2<<sh | b2>>r
		h3 := g3<<sh | b3>>r
		g0 = (b0 & lmask) ^
			tab[byte(h0)] ^
			tab[1*256+int(byte(h0>>8))] ^
			tab[2*256+int(byte(h0>>16))] ^
			tab[3*256+int(byte(h0>>24))] ^
			tab[4*256+int(byte(h0>>32))] ^
			tab[5*256+int(byte(h0>>40))] ^
			tab[6*256+int(byte(h0>>48))] ^
			tab[7*256+int(h0>>56&0xff)]
		g1 = (b1 & lmask) ^
			tab[byte(h1)] ^
			tab[1*256+int(byte(h1>>8))] ^
			tab[2*256+int(byte(h1>>16))] ^
			tab[3*256+int(byte(h1>>24))] ^
			tab[4*256+int(byte(h1>>32))] ^
			tab[5*256+int(byte(h1>>40))] ^
			tab[6*256+int(byte(h1>>48))] ^
			tab[7*256+int(h1>>56&0xff)]
		g2 = (b2 & lmask) ^
			tab[byte(h2)] ^
			tab[1*256+int(byte(h2>>8))] ^
			tab[2*256+int(byte(h2>>16))] ^
			tab[3*256+int(byte(h2>>24))] ^
			tab[4*256+int(byte(h2>>32))] ^
			tab[5*256+int(byte(h2>>40))] ^
			tab[6*256+int(byte(h2>>48))] ^
			tab[7*256+int(h2>>56&0xff)]
		g3 = (b3 & lmask) ^
			tab[byte(h3)] ^
			tab[1*256+int(byte(h3>>8))] ^
			tab[2*256+int(byte(h3>>16))] ^
			tab[3*256+int(byte(h3>>24))] ^
			tab[4*256+int(byte(h3>>32))] ^
			tab[5*256+int(byte(h3>>40))] ^
			tab[6*256+int(byte(h3>>48))] ^
			tab[7*256+int(h3>>56&0xff)]
	}
	R := dv.foldSeg(g0) ^ g1
	R = dv.foldSeg(R) ^ g2
	R = dv.foldSeg(R) ^ g3
	reg[0] = R
}

// chunks advances the division register eight bytes per step:
// reg·x^64 + B splits at degree r into a 64-bit overflow H (degrees
// r..r+63) and an r-bit low part, and H folds back in as
// Σ_k T_k[byte_k(H)] — eight independent lookups the CPU can overlap.
// len(data) must be a multiple of 8.
func (dv *divider) chunks(reg []uint64, data []byte) {
	tab := dv.slice8
	r := dv.r
	if dv.rw == 1 {
		// r <= 64: the whole register is one word, kept in a local.
		lmask := ^uint64(0)
		if r < 64 {
			lmask = 1<<uint(r) - 1
		}
		g := reg[0]
		for i := 0; i+8 <= len(data); i += 8 {
			b := binary.BigEndian.Uint64(data[i:])
			h := g
			if r < 64 {
				h = g<<uint(64-r) | b>>uint(r)
			}
			g = (b & lmask) ^
				tab[byte(h)] ^
				tab[1*256+int(byte(h>>8))] ^
				tab[2*256+int(byte(h>>16))] ^
				tab[3*256+int(byte(h>>24))] ^
				tab[4*256+int(byte(h>>32))] ^
				tab[5*256+int(byte(h>>40))] ^
				tab[6*256+int(byte(h>>48))] ^
				tab[7*256+int(h>>56&0xff)]
		}
		reg[0] = g
		return
	}
	// Generic width (r > 64): word-shift the register by 64 bits, inject
	// the chunk at the bottom, fold the evicted 64 bits back in.
	rw := dv.rw
	last := rw - 1
	s := uint(r % 64)
	for i := 0; i+8 <= len(data); i += 8 {
		b := binary.BigEndian.Uint64(data[i:])
		var h uint64
		if s == 0 {
			h = reg[last]
		} else {
			h = reg[last]<<(64-s) | reg[last-1]>>s
		}
		for j := last; j > 0; j-- {
			reg[j] = reg[j-1]
		}
		reg[0] = b
		if s != 0 {
			reg[last] &= 1<<s - 1
		}
		for k := 0; k < 8; k++ {
			row := tab[(k<<8|int(byte(h>>uint(8*k))))*rw:][:rw]
			for j, w := range row {
				reg[j] ^= w
			}
		}
	}
}
