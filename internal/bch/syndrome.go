package bch

import (
	"fmt"
	"sync"
	"sync/atomic"

	"xlnand/internal/gf"
)

// SyndromeCalc computes the 2t codeword syndromes S_j = C(alpha^j),
// j = 1..2t. This is the software equivalent of the decoder's syndrome
// block: one parallel LFSR per generating polynomial psi_i followed by an
// evaluation network (paper §4).
//
// The implementation processes the codeword one byte at a time (p = 8),
// computing only the odd syndromes directly and deriving even ones via
// the binary-code identity S_2j = S_j^2 (Frobenius: C(alpha^2j) =
// C(alpha^j)^2 for binary C). All odd syndromes advance together in a
// single pass over the codeword: the per-byte lookup values for every
// odd j live in one interleaved table (row b holds the contribution of
// byte value b to every S_j), so a 4KB page is walked once, not once
// per syndrome.
//
// Tables depend only on the field, not on t, so one SyndromeCalc serves
// every correction capability of an adaptive codec. The table set is
// published through an atomic pointer: once Prepare(t) has run (eagerly
// at decoder construction / Codec.Warm), Syndromes is lock-free — the
// mutex is only ever taken to grow the set for a larger t.
type SyndromeCalc struct {
	f *gf.Field

	tbl atomic.Pointer[synTables] // current immutable table set
	mu  sync.Mutex                // serialises growth only
}

// synTables is an immutable snapshot of the per-odd-j lookup tables,
// interleaved so that one codeword byte touches one contiguous row.
type synTables struct {
	nOdd  int      // number of odd exponents covered: j = 1, 3, .. 2*nOdd-1
	steps []int    // steps[i] = 8*j mod N for j = 2i+1 (per-byte Horner multiplier)
	v     []uint16 // v[b*nOdd+i] = contribution of byte value b to S_{2i+1}
}

// NewSyndromeCalc creates a calculator over the given field.
func NewSyndromeCalc(f *gf.Field) *SyndromeCalc {
	return &SyndromeCalc{f: f}
}

// Prepare eagerly builds the lookup tables for every odd j needed at
// correction capability t (j = 1..2t-1), so that subsequent Syndromes
// calls at capability <= t never take a lock. It is idempotent and safe
// for concurrent use.
func (s *SyndromeCalc) Prepare(t int) {
	if t <= 0 {
		panic("bch: non-positive t")
	}
	if tb := s.tbl.Load(); tb != nil && tb.nOdd >= t {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.tbl.Load()
	if old != nil && old.nOdd >= t {
		return
	}
	nOdd := t
	nt := &synTables{
		nOdd:  nOdd,
		steps: make([]int, nOdd),
		v:     make([]uint16, 256*nOdd),
	}
	N := s.f.N()
	for i := 0; i < nOdd; i++ {
		j := 2*i + 1
		nt.steps[i] = (8 * j) % N
		// Bit u counted from MSB has in-byte degree 7-u.
		var single [8]uint32
		for u := 0; u < 8; u++ {
			single[u] = s.f.Alpha(j * (7 - u) % N)
		}
		for b := 0; b < 256; b++ {
			var acc uint32
			for u := 0; u < 8; u++ {
				if b>>(7-uint(u))&1 == 1 {
					acc ^= single[u]
				}
			}
			nt.v[b*nOdd+i] = uint16(acc)
		}
	}
	s.tbl.Store(nt)
}

// tables returns a snapshot covering capability t, building one if
// needed (slow path, construction time only).
func (s *SyndromeCalc) tables(t int) *synTables {
	if tb := s.tbl.Load(); tb != nil && tb.nOdd >= t {
		return tb
	}
	s.Prepare(t)
	return s.tbl.Load()
}

// Syndromes returns S_1..S_2t (index 0 holds S_1) for the codeword bytes,
// whose first byte's MSB is the coefficient of x^(nbits-1). nbits must be
// 8*len(codeword).
func (s *SyndromeCalc) Syndromes(codeword []byte, t int) []uint32 {
	if t <= 0 {
		panic("bch: non-positive t")
	}
	return s.SyndromesInto(make([]uint32, 2*t), codeword, t)
}

// SyndromesInto computes S_1..S_2t into dst, which must have at least 2t
// entries, and returns dst[:2t]. It performs no allocation and — once
// Prepare(t) has run — takes no lock: this is the steady-state decode
// hot path.
func (s *SyndromeCalc) SyndromesInto(dst []uint32, codeword []byte, t int) []uint32 {
	if t <= 0 {
		panic("bch: non-positive t")
	}
	syn := dst[:2*t]
	for i := range syn {
		syn[i] = 0
	}
	tb := s.tables(t)
	nOdd := tb.nOdd
	steps := tb.steps[:t]
	log, exp := s.f.Tables()

	// Fused odd-syndrome pass: one walk over the codeword advances every
	// odd accumulator. acc[i] holds S_{2i+1}; the per-byte Horner step is
	// acc = acc*alpha^(8j) + v[b][i], the multiply being gf.MulAlphaN's
	// contract (no modulo, no range check — the antilog table is doubled)
	// open-coded on hoisted table slices: a method call per element costs
	// ~35% of the kernel because the table headers reload every call.
	acc := syn[:t]
	for _, b := range codeword {
		row := tb.v[int(b)*nOdd : int(b)*nOdd+t]
		for i, rv := range row {
			a := acc[i]
			if a != 0 {
				a = uint32(exp[int(log[a])+steps[i]])
			}
			acc[i] = a ^ uint32(rv)
		}
	}
	// Fan the compact accumulators out to their S_j slots (descending so
	// acc, which aliases syn[:t], is never clobbered before being read),
	// then derive even syndromes by squaring.
	for i := t - 1; i >= 0; i-- {
		syn[2*i] = acc[i]
	}
	for j := 2; j <= 2*t; j += 2 {
		sj := syn[j/2-1]
		if sj != 0 {
			l := int(log[sj])
			sj = uint32(exp[l+l]) // 2l <= 2N-2, inside the doubled table
		}
		syn[j-1] = sj
	}
	return syn
}

// SyndromesPoly is the reference implementation evaluating the codeword
// polynomial directly; used to cross-check the table path in tests and
// for non-byte-aligned toy codes.
func SyndromesPoly(f *gf.Field, cw gf.Poly2, t int) []uint32 {
	syn := make([]uint32, 2*t)
	for j := 1; j <= 2*t; j++ {
		syn[j-1] = cw.Eval(f, f.Alpha(j))
	}
	return syn
}

// AllZero reports whether every syndrome vanishes (error-free codeword,
// where the decoder terminates early — paper §4).
func AllZero(syn []uint32) bool {
	for _, s := range syn {
		if s != 0 {
			return false
		}
	}
	return true
}

// String renders syndromes compactly for diagnostics.
func SyndromeString(syn []uint32) string {
	return fmt.Sprintf("S[1..%d]=%v", len(syn), syn)
}
