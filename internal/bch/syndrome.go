package bch

import (
	"fmt"
	"sync"

	"xlnand/internal/gf"
)

// SyndromeCalc computes the 2t codeword syndromes S_j = C(alpha^j),
// j = 1..2t. This is the software equivalent of the decoder's syndrome
// block: one parallel LFSR per generating polynomial psi_i followed by an
// evaluation network (paper §4).
//
// The implementation processes the codeword one byte at a time (p = 8)
// with per-exponent lookup tables, computing only the odd syndromes
// directly and deriving even ones via the binary-code identity
// S_2j = S_j^2 (Frobenius: C(alpha^2j) = C(alpha^j)^2 for binary C).
//
// Tables depend only on the field, not on t, so one SyndromeCalc serves
// every correction capability of an adaptive codec.
type SyndromeCalc struct {
	f *gf.Field

	mu   sync.Mutex
	tbls map[int]*synTable // keyed by odd exponent j
}

type synTable struct {
	v     [256]uint32 // v[b] = sum over set bits u (MSB-first) of alpha^(j*(7-u))
	step8 int         // 8*j mod N, the per-byte Horner multiplier exponent
}

// NewSyndromeCalc creates a calculator over the given field.
func NewSyndromeCalc(f *gf.Field) *SyndromeCalc {
	return &SyndromeCalc{f: f, tbls: make(map[int]*synTable)}
}

func (s *SyndromeCalc) table(j int) *synTable {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tbls[j]; ok {
		return t
	}
	t := &synTable{step8: (8 * j) % s.f.N()}
	var single [8]uint32
	for u := 0; u < 8; u++ {
		// Bit u counted from MSB has in-byte degree 7-u.
		single[u] = s.f.Alpha(j * (7 - u) % s.f.N())
	}
	for b := 0; b < 256; b++ {
		var acc uint32
		for u := 0; u < 8; u++ {
			if b>>(7-uint(u))&1 == 1 {
				acc ^= single[u]
			}
		}
		t.v[b] = acc
	}
	s.tbls[j] = t
	return t
}

// Syndromes returns S_1..S_2t (index 0 holds S_1) for the codeword bytes,
// whose first byte's MSB is the coefficient of x^(nbits-1). nbits must be
// 8*len(codeword).
func (s *SyndromeCalc) Syndromes(codeword []byte, t int) []uint32 {
	if t <= 0 {
		panic("bch: non-positive t")
	}
	syn := make([]uint32, 2*t)
	// Odd syndromes by byte-wise Horner.
	for j := 1; j <= 2*t-1; j += 2 {
		tbl := s.table(j)
		var acc uint32
		for _, b := range codeword {
			acc = s.f.MulAlpha(acc, tbl.step8) ^ tbl.v[b]
		}
		syn[j-1] = acc
	}
	// Even syndromes via squaring.
	for j := 2; j <= 2*t; j += 2 {
		syn[j-1] = s.f.Sqr(syn[j/2-1])
	}
	return syn
}

// SyndromesPoly is the reference implementation evaluating the codeword
// polynomial directly; used to cross-check the table path in tests and
// for non-byte-aligned toy codes.
func SyndromesPoly(f *gf.Field, cw gf.Poly2, t int) []uint32 {
	syn := make([]uint32, 2*t)
	for j := 1; j <= 2*t; j++ {
		syn[j-1] = cw.Eval(f, f.Alpha(j))
	}
	return syn
}

// AllZero reports whether every syndrome vanishes (error-free codeword,
// where the decoder terminates early — paper §4).
func AllZero(syn []uint32) bool {
	for _, s := range syn {
		if s != 0 {
			return false
		}
	}
	return true
}

// String renders syndromes compactly for diagnostics.
func SyndromeString(syn []uint32) string {
	return fmt.Sprintf("S[1..%d]=%v", len(syn), syn)
}
