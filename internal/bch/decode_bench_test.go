package bch

// Decode-pipeline micro-benchmarks: the error-count × capability matrix
// the ISSUE's perf-tracking job consumes (BENCH_decode.json). All
// benchmarks report allocs/op; the steady-state encode and decode paths
// must stay at 0.

import (
	"fmt"
	"testing"

	"xlnand/internal/stats"
)

// benchCodec builds the paper's page codec warmed at capability t.
func benchCodec(b *testing.B, t int) *Codec {
	b.Helper()
	codec, err := NewPageCodec()
	if err != nil {
		b.Fatal(err)
	}
	if err := codec.Warm(t); err != nil {
		b.Fatal(err)
	}
	return codec
}

func benchPage(r *stats.RNG, n int) []byte {
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(r.Intn(256))
	}
	return msg
}

// dedupeCounts drops repeated error counts (e.g. t/2 == 1 at t = 3) so
// benchmark and test matrices emit one stably-named series per count.
func dedupeCounts(counts ...int) []int {
	out := counts[:0]
	for _, c := range counts {
		dup := false
		for _, o := range out {
			if o == c {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// BenchmarkDecode measures the full decode pipeline (fused syndromes ->
// BM -> Chien -> in-place correction -> incremental re-check) at error
// counts {0, 1, t/2, t} for t in {3, 16, 65}. The same error pattern is
// re-applied before every iteration: decoding corrects it in place, so
// each iteration starts from an identically corrupted page without a
// 4KB copy inside the timed loop.
func BenchmarkDecode(b *testing.B) {
	for _, tcap := range []int{3, 16, 65} {
		codec := benchCodec(b, tcap)
		code, err := codec.Code(tcap)
		if err != nil {
			b.Fatal(err)
		}
		r := stats.NewRNG(0xdec0de + uint64(tcap))
		msg := benchPage(r, codec.K/8)
		cw, err := codec.EncodeCodeword(tcap, msg)
		if err != nil {
			b.Fatal(err)
		}
		for _, nerr := range dedupeCounts(0, 1, tcap/2, tcap) {
			positions := r.SampleK(code.CodewordBits(), nerr)
			b.Run(fmt.Sprintf("t=%d/errs=%d", tcap, nerr), func(b *testing.B) {
				b.SetBytes(int64(codec.K / 8))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, p := range positions {
						cw[p/8] ^= 1 << uint(7-p%8)
					}
					n, err := codec.Decode(tcap, cw)
					if err != nil {
						b.Fatal(err)
					}
					if n != nerr {
						b.Fatalf("corrected %d of %d errors", n, nerr)
					}
				}
			})
		}
	}
}

// BenchmarkEncode measures the steady-state parity computation through
// the allocation-free EncodeInto path.
func BenchmarkEncode(b *testing.B) {
	for _, tcap := range []int{3, 16, 65} {
		codec := benchCodec(b, tcap)
		r := stats.NewRNG(0xe6c0de + uint64(tcap))
		msg := benchPage(r, codec.K/8)
		pb, err := codec.ParityBytes(tcap)
		if err != nil {
			b.Fatal(err)
		}
		parity := make([]byte, pb)
		b.Run(fmt.Sprintf("t=%d", tcap), func(b *testing.B) {
			b.SetBytes(int64(len(msg)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := codec.EncodeInto(tcap, parity, msg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSyndromes isolates the fused single-pass syndrome kernel.
func BenchmarkSyndromes(b *testing.B) {
	for _, tcap := range []int{3, 16, 65} {
		codec := benchCodec(b, tcap)
		r := stats.NewRNG(0x517d + uint64(tcap))
		msg := benchPage(r, codec.K/8)
		cw, err := codec.EncodeCodeword(tcap, msg)
		if err != nil {
			b.Fatal(err)
		}
		syn := make([]uint32, 2*tcap)
		b.Run(fmt.Sprintf("t=%d", tcap), func(b *testing.B) {
			b.SetBytes(int64(len(cw)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				codec.syn.SyndromesInto(syn, cw, tcap)
			}
		})
	}
}

// BenchmarkChien isolates the strided log-domain Chien kernel on a
// worst-ish-case locator: t errors spread over the page.
func BenchmarkChien(b *testing.B) {
	for _, tcap := range []int{3, 16, 65} {
		codec := benchCodec(b, tcap)
		code, err := codec.Code(tcap)
		if err != nil {
			b.Fatal(err)
		}
		r := stats.NewRNG(0xc41e + uint64(tcap))
		msg := benchPage(r, codec.K/8)
		cw, err := codec.EncodeCodeword(tcap, msg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.SampleK(code.CodewordBits(), tcap) {
			cw[p/8] ^= 1 << uint(7-p%8)
		}
		syn := codec.syn.Syndromes(cw, tcap)
		lambda, L := BerlekampMassey(code.Field, syn)
		if L != tcap {
			b.Fatalf("locator degree %d, want %d", L, tcap)
		}
		var sc chienScratch
		sc.grow(len(lambda))
		var pos []int
		b.Run(fmt.Sprintf("t=%d", tcap), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, ok := chienSearchInto(code.Field, lambda, code.CodewordBits(), pos[:0], &sc)
				if !ok || len(p) != tcap {
					b.Fatalf("chien found %d roots (ok=%v), want %d", len(p), ok, tcap)
				}
				pos = p
			}
		})
	}
}
