package bch

import "xlnand/internal/gf"

// ChienSearch finds the error positions encoded in the locator polynomial
// lambda for a (possibly shortened) codeword of nbits bits. It returns the
// bit indices (0 = first transmitted bit = coefficient of x^(nbits-1)) of
// every error, or ok = false if the number of roots found in the valid
// position range does not match deg(lambda) — the uncorrectable-pattern
// signature.
//
// Like the paper's adaptable Chien block, the search does not sweep all of
// GF(2^m): for a code shortened by `offset` positions the scan covers only
// exponents corresponding to real codeword positions. (In hardware the
// start exponent per t comes from a small ROM; here it is computed from
// the code geometry.)
//
// An error at polynomial degree d (0 <= d < nbits) has locator X = alpha^d
// and manifests as lambda(alpha^-d) = 0. The scan therefore evaluates
// lambda at alpha^0 (d = 0) and alpha^j for j = N-nbits+1 .. N-1
// (d = N - j), i.e. exactly nbits candidate exponents.
func ChienSearch(f *gf.Field, lambda []uint32, nbits int) (positions []int, ok bool) {
	var sc chienScratch
	sc.grow(len(lambda))
	return chienSearchInto(f, lambda, nbits, nil, &sc)
}

// chienBlock is the position-tile width of the strided kernel: the
// partial-sum tile (2 bytes per position) stays L1-resident while each
// locator term sweeps it as a single constant-stride stream through the
// antilog table — the access pattern hardware prefetchers track, unlike
// the textbook per-position loop whose deg(lambda) interleaved streams
// exceed any prefetcher's capacity.
const chienBlock = 4096

// chienScratch holds the reusable kernel state: the nonzero locator terms
// in log domain, their per-position exponent steps, and the partial-sum
// tile.
type chienScratch struct {
	ltm   []int32  // log of term i's value at the current tile base
	steps []int32  // exponent advance of term i per position (its degree)
	sums  []uint16 // lambda evaluations for one tile of positions
}

func (sc *chienScratch) grow(n int) {
	if cap(sc.ltm) < n {
		sc.ltm = make([]int32, n)
		sc.steps = make([]int32, n)
	}
	if sc.sums == nil {
		sc.sums = make([]uint16, chienBlock)
	}
}

// chienSearchInto is the allocation-free kernel behind ChienSearch.
// Found positions are appended to pos (pass a reusable pos[:0] slice).
//
// The scan is restructured against the textbook form for speed:
//
//   - a degree-1 locator is solved in closed form (d = log lambda_1 -
//     log lambda_0), so the dominant single-error page never scans at all;
//   - zero coefficients are compacted away, and the survivors are kept in
//     log domain: evaluating a term is one antilog lookup, advancing it
//     one add and one conditional subtract;
//   - positions are processed in L1-sized tiles with the loops
//     interchanged — each term streams through the antilog table at a
//     constant stride, accumulating into the tile — rather than evaluating
//     every term per position;
//   - the early exits of the adaptable hardware block are preserved at
//     tile granularity: the scan stops once deg(lambda) roots are found or
//     the positions left cannot host the roots still missing.
func chienSearchInto(f *gf.Field, lambda []uint32, nbits int, pos []int, sc *chienScratch) (positions []int, ok bool) {
	degLam := len(lambda) - 1
	for degLam > 0 && lambda[degLam] == 0 {
		degLam--
	}
	if degLam == 0 {
		return pos, true // no errors located
	}
	N := f.N()
	if nbits > N {
		return pos, false
	}
	positions = pos

	// Position d = 0 (exponent j = 0): lambda(alpha^0) = sum of coeffs.
	var sum0 uint32
	for i := 0; i <= degLam; i++ {
		sum0 ^= lambda[i]
	}
	if sum0 == 0 {
		positions = append(positions, nbits-1) // d = 0 -> last bit index
		if len(positions) == degLam {
			return positions, true
		}
	}
	log, exp := f.Tables()

	// Single error: lambda_0 + lambda_1 x has the lone root x =
	// lambda_0/lambda_1 = alpha^-d, i.e. d = log lambda_1 - log lambda_0.
	if degLam == 1 && lambda[0] != 0 {
		d := (int(log[lambda[1]]) - int(log[lambda[0]]) + N) % N
		if d == 0 || d >= nbits {
			return positions, false // root outside the shortened codeword
		}
		return append(positions, nbits-1-d), true
	}

	// Compact the nonzero terms of degree >= 1 into log domain at the
	// scan start j0; the degree-0 term is a constant folded into the
	// tile initialisation.
	j0 := N - nbits + 1
	sc.grow(degLam + 1)
	ltm, steps := sc.ltm[:0], sc.steps[:0]
	for i := 1; i <= degLam; i++ {
		if lambda[i] != 0 {
			ltm = append(ltm, int32((int(log[lambda[i]])+i*j0)%N))
			steps = append(steps, int32(i%N))
		}
	}
	cst := uint16(lambda[0])

	n32 := int32(N)
	for j := j0; j < N; {
		width := N - j
		if width > chienBlock {
			width = chienBlock
		}
		tile := sc.sums[:width]
		for u := range tile {
			tile[u] = cst
		}
		// Sweep the tile four terms at a time: each term is one
		// constant-stride stream through the antilog table (prefetcher
		// friendly), and sharing the sweep amortises the tile update.
		k := 0
		for ; k+3 < len(ltm); k += 4 {
			l0, l1, l2, l3 := ltm[k], ltm[k+1], ltm[k+2], ltm[k+3]
			s0, s1, s2, s3 := steps[k], steps[k+1], steps[k+2], steps[k+3]
			for u := range tile {
				tile[u] ^= exp[l0] ^ exp[l1] ^ exp[l2] ^ exp[l3]
				l0 += s0
				if l0 >= n32 {
					l0 -= n32
				}
				l1 += s1
				if l1 >= n32 {
					l1 -= n32
				}
				l2 += s2
				if l2 >= n32 {
					l2 -= n32
				}
				l3 += s3
				if l3 >= n32 {
					l3 -= n32
				}
			}
			ltm[k], ltm[k+1], ltm[k+2], ltm[k+3] = l0, l1, l2, l3
		}
		for ; k < len(ltm); k++ {
			l, st := ltm[k], steps[k]
			for u := range tile {
				tile[u] ^= exp[l]
				l += st
				if l >= n32 {
					l -= n32
				}
			}
			ltm[k] = l
		}
		for u, s := range tile {
			if s == 0 {
				d := N - (j + u)
				positions = append(positions, nbits-1-d)
				if len(positions) == degLam {
					return positions, true
				}
			}
		}
		j += width
		if degLam-len(positions) > N-j {
			break // not enough candidates left to find the missing roots
		}
	}
	return positions, false
}
