package bch

import "xlnand/internal/gf"

// ChienSearch finds the error positions encoded in the locator polynomial
// lambda for a (possibly shortened) codeword of nbits bits. It returns the
// bit indices (0 = first transmitted bit = coefficient of x^(nbits-1)) of
// every error, or ok = false if the number of roots found in the valid
// position range does not match deg(lambda) — the uncorrectable-pattern
// signature.
//
// Like the paper's adaptable Chien block, the search does not sweep all of
// GF(2^m): for a code shortened by `offset` positions the scan covers only
// exponents corresponding to real codeword positions. (In hardware the
// start exponent per t comes from a small ROM; here it is computed from
// the code geometry.)
//
// An error at polynomial degree d (0 <= d < nbits) has locator X = alpha^d
// and manifests as lambda(alpha^-d) = 0. The scan therefore evaluates
// lambda at alpha^0 (d = 0) and alpha^j for j = N-nbits+1 .. N-1
// (d = N - j), i.e. exactly nbits candidate exponents.
func ChienSearch(f *gf.Field, lambda []uint32, nbits int) (positions []int, ok bool) {
	degLam := len(lambda) - 1
	for degLam > 0 && lambda[degLam] == 0 {
		degLam--
	}
	if degLam == 0 {
		return nil, true // no errors located
	}
	N := f.N()
	if nbits > N {
		return nil, false
	}
	positions = make([]int, 0, degLam)

	// terms[i] = lambda_i * alpha^(i*j), updated incrementally as j
	// advances by one. Start at j0 = N - nbits + 1, after first testing
	// j = 0 (position d = 0) directly.
	var sum0 uint32
	for i := 0; i <= degLam; i++ {
		sum0 ^= lambda[i]
	}
	if sum0 == 0 {
		positions = append(positions, nbits-1) // d = 0 -> last bit index
	}

	j0 := N - nbits + 1
	terms := make([]uint32, degLam+1)
	for i := 0; i <= degLam; i++ {
		if lambda[i] != 0 {
			terms[i] = f.MulAlpha(lambda[i], i*j0%N)
		}
	}
	for j := j0; j < N; j++ {
		var sum uint32
		for _, tm := range terms {
			sum ^= tm
		}
		if sum == 0 {
			d := N - j
			positions = append(positions, nbits-1-d)
			if len(positions) == degLam {
				break
			}
		}
		// Advance: terms[i] *= alpha^i.
		for i := 1; i <= degLam; i++ {
			if terms[i] != 0 {
				terms[i] = f.MulAlpha(terms[i], i)
			}
		}
	}
	if len(positions) != degLam {
		return positions, false
	}
	return positions, true
}
