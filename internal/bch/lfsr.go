package bch

import "xlnand/internal/gf"

// LFSR is the bit-accurate model of the paper's programmable encoder
// datapath (§4): an r-bit linear feedback shift register whose XOR taps
// are selected by the characteristic polynomial held in the tap ROM, fed
// p bits per clock cycle through the parallelised network. It computes
// the same remainder as the table-driven Encoder — the table encoder is
// the fast software path, this structure mirrors the hardware and is
// cross-validated against it in the tests.
type LFSR struct {
	taps  []int  // exponents i (< r) with g_i = 1, excluding the monic term
	r     int    // register length = deg(g)
	p     int    // input bits consumed per Clock
	state []bool // state[i] = coefficient of x^i
}

// NewLFSR builds the programmable LFSR for a code's generator polynomial
// with datapath width p (the paper instantiates p = 8).
func NewLFSR(c *Code, p int) *LFSR {
	if p < 1 {
		panic("bch: LFSR parallelism must be >= 1")
	}
	l := &LFSR{r: c.GenDegree, p: p, state: make([]bool, c.GenDegree)}
	for i := 0; i < c.GenDegree; i++ {
		if c.Gen.Coeff(i) == 1 {
			l.taps = append(l.taps, i)
		}
	}
	return l
}

// Reset clears the register between codewords.
func (l *LFSR) Reset() {
	for i := range l.state {
		l.state[i] = false
	}
}

// shiftBit advances the register by one bit of input: the classic
// Galois-configuration step — feedback = msb XOR input; every ROM-selected
// tap XORs the feedback into its stage.
func (l *LFSR) shiftBit(in bool) {
	feedback := l.state[l.r-1] != in
	for i := l.r - 1; i > 0; i-- {
		l.state[i] = l.state[i-1]
		if feedback && hasTap(l.taps, i) {
			l.state[i] = !l.state[i]
		}
	}
	l.state[0] = feedback && hasTap(l.taps, 0)
}

func hasTap(taps []int, i int) bool {
	for _, t := range taps {
		if t == i {
			return true
		}
	}
	return false
}

// Clock consumes up to p input bits (MSB-first order within the slice),
// modelling one hardware cycle of the parallel network. It returns the
// number of bits consumed.
func (l *LFSR) Clock(bits []bool) int {
	n := len(bits)
	if n > l.p {
		n = l.p
	}
	for i := 0; i < n; i++ {
		l.shiftBit(bits[i])
	}
	return n
}

// Remainder returns the current register contents as a polynomial: the
// parity block once the whole message has been clocked through.
func (l *LFSR) Remainder() gf.Poly2 {
	var exps []int
	for i, b := range l.state {
		if b {
			exps = append(exps, i)
		}
	}
	return gf.NewPoly2FromCoeffs(exps...)
}

// EncodeBits runs a full message (MSB-first bit slice, length k) through
// the LFSR and returns the parity polynomial, plus the number of clock
// cycles the hardware would spend (ceil(k/p) — the paper's encode
// latency).
func (l *LFSR) EncodeBits(msg []bool) (gf.Poly2, int) {
	l.Reset()
	cycles := 0
	for off := 0; off < len(msg); off += l.p {
		end := off + l.p
		if end > len(msg) {
			end = len(msg)
		}
		l.Clock(msg[off:end])
		cycles++
	}
	return l.Remainder(), cycles
}
