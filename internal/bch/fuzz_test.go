package bch

// Round-trip fuzzer for the byte-wise fast paths: every input drives the
// table-driven encoder/decoder AND the polynomial reference
// (EncodePoly/DecodePoly) through the same message and error pattern, and
// the two implementations must agree bit-exactly — on the codeword, on
// the corrected output, on the corrected-bit count and on the
// uncorrectable verdict. Run with `go test -fuzz FuzzEncodeDecodeRoundtrip
// ./internal/bch` to explore beyond the seed corpus.

import (
	"bytes"
	"sync"
	"testing"

	"xlnand/internal/gf"
)

// fuzzCode is a small byte-aligned code (GF(2^8), k = 128, t = 4) kept
// package-global so the fuzz engine does not rebuild tables per input.
var fuzzCode = sync.OnceValues(func() (*Code, error) {
	return NewCode(Params{M: 8, K: 128, T: 4})
})

func FuzzEncodeDecodeRoundtrip(f *testing.F) {
	f.Add([]byte{0x00}, uint16(0), byte(0))
	f.Add([]byte{0xff, 0x01, 0x80, 0xaa}, uint16(3), byte(2))
	f.Add(bytes.Repeat([]byte{0x5a}, 16), uint16(0xbeef), byte(4))
	f.Add([]byte("fuzz the decoder"), uint16(0x1234), byte(7))

	f.Fuzz(func(t *testing.T, raw []byte, errSeed uint16, errCount byte) {
		c, err := fuzzCode()
		if err != nil {
			t.Fatal(err)
		}
		enc, dec := NewEncoder(c), NewDecoder(c, nil)
		nbits := c.CodewordBits()

		// Normalise the fuzz input into one exact-size message.
		msg := make([]byte, c.K/8)
		copy(msg, raw)

		// Byte-wise and polynomial encoders must emit the same codeword.
		cw, err := enc.EncodeCodeword(msg)
		if err != nil {
			t.Fatal(err)
		}
		ref := EncodePoly(c, gf.NewPoly2FromBytes(msg, c.K))
		if !ref.Equal(gf.NewPoly2FromBytes(cw, nbits)) {
			t.Fatal("byte encoder disagrees with EncodePoly")
		}

		// Derive up to 2t+1 distinct error positions from the fuzz seed
		// (an LCG walk keeps the mapping deterministic and cheap).
		nerr := int(errCount) % (2*c.T + 2)
		state := uint32(errSeed) + 1
		seen := map[int]bool{}
		var positions []int
		for len(positions) < nerr {
			state = state*1664525 + 1013904223
			p := int(state>>8) % nbits
			if !seen[p] {
				seen[p] = true
				positions = append(positions, p)
			}
		}
		clean := append([]byte(nil), cw...)
		flipBits(cw, positions)
		dirty := append([]byte(nil), cw...)
		corrupted := gf.NewPoly2FromBytes(cw, nbits)

		// Decode through both implementations and cross-check verdicts.
		n, decErr := dec.Decode(cw)
		refFixed, refN, refErr := DecodePoly(c, corrupted)
		if (decErr != nil) != (refErr != nil) {
			t.Fatalf("verdicts disagree: byte=%v poly=%v (e=%d)", decErr, refErr, nerr)
		}
		if decErr != nil {
			if !bytes.Equal(cw, dirty) {
				t.Fatal("ErrUncorrectable but codeword was modified")
			}
			return
		}
		if n != refN {
			t.Fatalf("corrected-bit counts disagree: byte=%d poly=%d", n, refN)
		}
		if !refFixed.Equal(gf.NewPoly2FromBytes(cw, nbits)) {
			t.Fatal("byte decoder output disagrees with DecodePoly")
		}
		if nerr <= c.T {
			if n != nerr {
				t.Fatalf("corrected %d of %d injected errors", n, nerr)
			}
			if !bytes.Equal(cw, clean) {
				t.Fatal("decode did not restore the original codeword")
			}
		}
	})
}
