package bch

import (
	"bytes"
	"errors"
	"testing"

	"xlnand/internal/gf"
	"xlnand/internal/stats"
)

// mkCode builds a small byte-aligned code for round-trip testing:
// GF(2^8), k = 128 bits (16 bytes), r = 8t bits.
func mkCode(t *testing.T, tcap int) *Code {
	t.Helper()
	c, err := NewCode(Params{M: 8, K: 128, T: tcap})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randMsg(r *stats.RNG, bytes int) []byte {
	msg := make([]byte, bytes)
	for i := range msg {
		msg[i] = byte(r.Intn(256))
	}
	return msg
}

func flipBits(cw []byte, positions []int) {
	for _, p := range positions {
		cw[p/8] ^= 1 << uint(7-p%8)
	}
}

func TestEncodeMatchesPolyReference(t *testing.T) {
	c := mkCode(t, 4)
	enc := NewEncoder(c)
	r := stats.NewRNG(71)
	for trial := 0; trial < 50; trial++ {
		msg := randMsg(r, c.K/8)
		cw, err := enc.EncodeCodeword(msg)
		if err != nil {
			t.Fatal(err)
		}
		ref := EncodePoly(c, gf.NewPoly2FromBytes(msg, c.K))
		if !ref.Equal(gf.NewPoly2FromBytes(cw, c.CodewordBits())) {
			t.Fatalf("trial %d: byte encoder disagrees with polynomial reference", trial)
		}
	}
}

func TestEncodedCodewordIsMultipleOfGenerator(t *testing.T) {
	c := mkCode(t, 5)
	enc := NewEncoder(c)
	r := stats.NewRNG(72)
	for trial := 0; trial < 50; trial++ {
		cw, err := enc.EncodeCodeword(randMsg(r, c.K/8))
		if err != nil {
			t.Fatal(err)
		}
		p := gf.NewPoly2FromBytes(cw, c.CodewordBits())
		if !p.Mod(c.Gen).IsZero() {
			t.Fatalf("trial %d: codeword not divisible by g(x)", trial)
		}
	}
}

func TestEncodeRejectsBadLength(t *testing.T) {
	c := mkCode(t, 3)
	enc := NewEncoder(c)
	if _, err := enc.Encode(make([]byte, 5)); err == nil {
		t.Fatal("wrong-length message accepted")
	}
}

func TestDecodeCleanCodeword(t *testing.T) {
	c := mkCode(t, 4)
	enc, dec := NewEncoder(c), NewDecoder(c, nil)
	r := stats.NewRNG(73)
	cw, _ := enc.EncodeCodeword(randMsg(r, c.K/8))
	orig := append([]byte(nil), cw...)
	n, err := dec.Decode(cw)
	if err != nil || n != 0 {
		t.Fatalf("clean decode: n=%d err=%v", n, err)
	}
	if !bytes.Equal(cw, orig) {
		t.Fatal("clean decode modified the codeword")
	}
}

func TestRoundTripAllErrorCounts(t *testing.T) {
	// Every error count e in [0, t] must be corrected exactly.
	for _, tcap := range []int{1, 2, 4, 8} {
		c := mkCode(t, tcap)
		enc, dec := NewEncoder(c), NewDecoder(c, nil)
		r := stats.NewRNG(uint64(100 + tcap))
		nbits := c.CodewordBits()
		for e := 0; e <= tcap; e++ {
			for trial := 0; trial < 20; trial++ {
				msg := randMsg(r, c.K/8)
				cw, err := enc.EncodeCodeword(msg)
				if err != nil {
					t.Fatal(err)
				}
				want := append([]byte(nil), cw...)
				flipBits(cw, r.SampleK(nbits, e))
				n, err := dec.Decode(cw)
				if err != nil {
					t.Fatalf("t=%d e=%d trial=%d: decode failed: %v", tcap, e, trial, err)
				}
				if n != e {
					t.Fatalf("t=%d e=%d: corrected %d errors", tcap, e, n)
				}
				if !bytes.Equal(cw, want) {
					t.Fatalf("t=%d e=%d: corrected codeword differs from original", tcap, e)
				}
			}
		}
	}
}

func TestErrorsInParityAreCorrected(t *testing.T) {
	c := mkCode(t, 4)
	enc, dec := NewEncoder(c), NewDecoder(c, nil)
	r := stats.NewRNG(75)
	msg := randMsg(r, c.K/8)
	cw, _ := enc.EncodeCodeword(msg)
	want := append([]byte(nil), cw...)
	// Flip bits only inside the parity region.
	parityStart := c.K
	flipBits(cw, []int{parityStart, parityStart + 7, c.CodewordBits() - 1})
	n, err := dec.Decode(cw)
	if err != nil || n != 3 {
		t.Fatalf("parity-error decode: n=%d err=%v", n, err)
	}
	if !bytes.Equal(cw, want) {
		t.Fatal("parity errors not corrected in place")
	}
}

func TestBurstErrorsWithinT(t *testing.T) {
	c := mkCode(t, 8)
	enc, dec := NewEncoder(c), NewDecoder(c, nil)
	r := stats.NewRNG(76)
	msg := randMsg(r, c.K/8)
	cw, _ := enc.EncodeCodeword(msg)
	want := append([]byte(nil), cw...)
	// 8 consecutive bit errors (a full byte wiped).
	start := 40
	positions := make([]int, 8)
	for i := range positions {
		positions[i] = start + i
	}
	flipBits(cw, positions)
	n, err := dec.Decode(cw)
	if err != nil || n != 8 {
		t.Fatalf("burst decode: n=%d err=%v", n, err)
	}
	if !bytes.Equal(cw, want) {
		t.Fatal("burst not corrected")
	}
}

func TestUncorrectableDetected(t *testing.T) {
	// With e = t+1 ... 2t errors, the decoder must not return corrupted
	// data silently: it must either report ErrUncorrectable or (rare for
	// small codes) miscorrect to another codeword — in which case the
	// syndrome re-check keeps quiet. For this geometry we assert the
	// common path: uncorrectable detection.
	c := mkCode(t, 3)
	enc, dec := NewEncoder(c), NewDecoder(c, nil)
	r := stats.NewRNG(77)
	detected, miscorrected := 0, 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		msg := randMsg(r, c.K/8)
		cw, _ := enc.EncodeCodeword(msg)
		flipBits(cw, r.SampleK(c.CodewordBits(), c.T+1))
		dirty := append([]byte(nil), cw...)
		n, err := dec.Decode(cw)
		if errors.Is(err, ErrUncorrectable) {
			detected++
			if !bytes.Equal(cw, dirty) {
				t.Fatal("ErrUncorrectable but codeword was modified")
			}
			continue
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		// Miscorrection: decoder landed on a different valid codeword.
		miscorrected++
		if n > c.T {
			t.Fatalf("claimed to correct %d > t errors", n)
		}
	}
	if detected == 0 {
		t.Fatal("no uncorrectable pattern detected in any trial")
	}
	if miscorrected > trials/2 {
		t.Fatalf("implausibly high miscorrection rate: %d/%d", miscorrected, trials)
	}
}

func TestUncorrectableLeavesCodewordIntact(t *testing.T) {
	c := mkCode(t, 2)
	enc, dec := NewEncoder(c), NewDecoder(c, nil)
	r := stats.NewRNG(78)
	for trial := 0; trial < 100; trial++ {
		msg := randMsg(r, c.K/8)
		cw, _ := enc.EncodeCodeword(msg)
		flipBits(cw, r.SampleK(c.CodewordBits(), 2*c.T+1))
		dirty := append([]byte(nil), cw...)
		if _, err := dec.Decode(cw); errors.Is(err, ErrUncorrectable) {
			if !bytes.Equal(cw, dirty) {
				t.Fatal("ErrUncorrectable but codeword was modified")
			}
		}
	}
}

func TestDecodeRejectsBadLength(t *testing.T) {
	c := mkCode(t, 3)
	dec := NewDecoder(c, nil)
	if _, err := dec.Decode(make([]byte, 3)); err == nil {
		t.Fatal("wrong-length codeword accepted")
	}
}

func TestPolyDecodeToyCodeNonAligned(t *testing.T) {
	// BCH(15, 7, t=2): not byte aligned; exercise the polynomial path.
	c, err := NewCode(Params{M: 4, K: 7, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(79)
	for trial := 0; trial < 200; trial++ {
		var exps []int
		for e := 0; e < c.K; e++ {
			if r.Bernoulli(0.5) {
				exps = append(exps, e)
			}
		}
		msg := gf.NewPoly2FromCoeffs(exps...)
		cw := EncodePoly(c, msg)
		e := r.Intn(c.T + 1)
		errPoly := gf.Poly2{}
		for _, p := range r.SampleK(c.CodewordBits(), e) {
			errPoly = errPoly.Add(gf.NewPoly2FromCoeffs(p))
		}
		corrupted := cw.Add(errPoly)
		fixed, n, err := DecodePoly(c, corrupted)
		if err != nil {
			t.Fatalf("trial %d (e=%d): %v", trial, e, err)
		}
		if n != e || !fixed.Equal(cw) {
			t.Fatalf("trial %d: corrected %d of %d errors, match=%v", trial, n, e, fixed.Equal(cw))
		}
	}
}

func TestShortenedCodeRoundTrip(t *testing.T) {
	// Heavily shortened code over GF(2^10): n = 160+10*4 = 200 << 1023.
	c, err := NewCode(Params{M: 10, K: 160, T: 4})
	if err != nil {
		t.Fatal(err)
	}
	enc, dec := NewEncoder(c), NewDecoder(c, nil)
	r := stats.NewRNG(80)
	for trial := 0; trial < 50; trial++ {
		msg := randMsg(r, c.K/8)
		cw, err := enc.EncodeCodeword(msg)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]byte(nil), cw...)
		flipBits(cw, r.SampleK(c.CodewordBits(), c.T))
		if n, err := dec.Decode(cw); err != nil || n != c.T {
			t.Fatalf("shortened decode: n=%d err=%v", n, err)
		}
		if !bytes.Equal(cw, want) {
			t.Fatal("shortened codeword not restored")
		}
	}
}

func TestErrorsAtCodewordBoundaries(t *testing.T) {
	c := mkCode(t, 4)
	enc, dec := NewEncoder(c), NewDecoder(c, nil)
	r := stats.NewRNG(81)
	msg := randMsg(r, c.K/8)
	cw, _ := enc.EncodeCodeword(msg)
	want := append([]byte(nil), cw...)
	nbits := c.CodewordBits()
	flipBits(cw, []int{0, 1, nbits - 2, nbits - 1}) // first and last two bits
	n, err := dec.Decode(cw)
	if err != nil || n != 4 {
		t.Fatalf("boundary decode: n=%d err=%v", n, err)
	}
	if !bytes.Equal(cw, want) {
		t.Fatal("boundary errors not corrected")
	}
}

func TestSyndromeTableMatchesPolyReference(t *testing.T) {
	c := mkCode(t, 6)
	enc := NewEncoder(c)
	sc := NewSyndromeCalc(c.Field)
	r := stats.NewRNG(82)
	for trial := 0; trial < 30; trial++ {
		cw, _ := enc.EncodeCodeword(randMsg(r, c.K/8))
		flipBits(cw, r.SampleK(c.CodewordBits(), r.Intn(10)))
		got := sc.Syndromes(cw, c.T)
		want := SyndromesPoly(c.Field, gf.NewPoly2FromBytes(cw, c.CodewordBits()), c.T)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("trial %d: S_%d = %d, want %d", trial, j+1, got[j], want[j])
			}
		}
	}
}

func TestEvenSyndromesAreSquaresOfHalf(t *testing.T) {
	c := mkCode(t, 5)
	enc := NewEncoder(c)
	sc := NewSyndromeCalc(c.Field)
	r := stats.NewRNG(83)
	cw, _ := enc.EncodeCodeword(randMsg(r, c.K/8))
	flipBits(cw, r.SampleK(c.CodewordBits(), 7))
	syn := sc.Syndromes(cw, c.T)
	for j := 2; j <= 2*c.T; j += 2 {
		if syn[j-1] != c.Field.Sqr(syn[j/2-1]) {
			t.Fatalf("S_%d != S_%d^2", j, j/2)
		}
	}
}
