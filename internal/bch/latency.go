package bch

import "time"

// HWConfig captures the micro-architectural parameters of the adaptive
// codec that determine its latency (paper §4 and Fig. 8):
//
//   - ParallelismP: datapath width p of the programmable LFSRs. Encoding
//     consumes the k-bit message in k/p cycles; the syndrome block streams
//     the n-bit codeword in n/p cycles.
//   - ChienParallelismH: number of simultaneous locator evaluations h in
//     the Chien search (t × h constant Galois multipliers); the search
//     covers the n real codeword positions in n/h cycles.
//   - IBMCyclesPerT2: the iBM machine performs t iterations, each updating
//     up to t+1 locator coefficients over a bounded multiplier pool, i.e.
//     a serialised O(t^2) multiplier schedule. This constant is the cycle
//     cost per t^2 unit (1.8 in the paper-calibrated default).
//   - ClockHz: codec clock (80 MHz in the paper).
//
// Latency numbers are architectural estimates, deliberately decoupled from
// the speed of the software implementation.
type HWConfig struct {
	ParallelismP      int
	ChienParallelismH int
	IBMCyclesPerT2    float64
	SyndromeEvalCyc   int // per-syndrome evaluation-network cycles
	AlignOverheadCyc  int // parity alignment stage when r % p != 0 (paper §4)
	PipelineFillCyc   int // fixed pipeline fill/drain overhead per operation
	ClockHz           float64
}

// DefaultHWConfig returns the calibration used to reproduce Fig. 8:
// p = 8, h = 32, 80 MHz, iBM serialisation 1.8 cycles per t².
func DefaultHWConfig() HWConfig {
	return HWConfig{
		ParallelismP:      8,
		ChienParallelismH: 32,
		IBMCyclesPerT2:    1.8,
		SyndromeEvalCyc:   4,
		AlignOverheadCyc:  8,
		PipelineFillCyc:   16,
		ClockHz:           80e6,
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// EncodeCycles returns the encoder latency in clock cycles for a code
// with message length k. The programmable LFSR absorbs p bits per cycle;
// the latency is independent of t (paper §4: "The encoding latency is
// therefore not influenced by the selected correction capability").
func (h HWConfig) EncodeCycles(k int) int {
	return ceilDiv(k, h.ParallelismP) + h.PipelineFillCyc
}

// SyndromeCycles returns the syndrome-block latency: the n-bit codeword
// streams through the 2t parallel LFSRs at p bits/cycle, followed by the
// evaluation networks and, when the parity length does not fit the
// datapath width, the preliminary alignment phase.
func (h HWConfig) SyndromeCycles(n, t int) int {
	c := ceilDiv(n, h.ParallelismP) + 2*t*h.SyndromeEvalCyc
	if (n % h.ParallelismP) != 0 {
		c += h.AlignOverheadCyc
	}
	return c
}

// IBMCycles returns the Berlekamp-Massey machine latency: t iterations
// with a serialised multiplier schedule growing linearly per iteration.
func (h HWConfig) IBMCycles(t int) int {
	return int(h.IBMCyclesPerT2*float64(t)*float64(t) + 0.5)
}

// ChienCycles returns the Chien-search latency: n real positions examined
// h at a time (the shortening-offset ROM skips the virtual positions).
func (h HWConfig) ChienCycles(n int) int {
	return ceilDiv(n, h.ChienParallelismH)
}

// DecodeCycles returns the worst-case decoder latency (errors present, all
// three stages run) for a codeword of n bits at capability t.
func (h HWConfig) DecodeCycles(n, t int) int {
	return h.SyndromeCycles(n, t) + h.IBMCycles(t) + h.ChienCycles(n) + h.PipelineFillCyc
}

// DecodeCleanCycles returns the decoder latency when the codeword is
// error-free: the decoder terminates after the syndrome stage (paper §4,
// "If all reminders are null ... the decoding process ends").
func (h HWConfig) DecodeCleanCycles(n, t int) int {
	return h.SyndromeCycles(n, t) + h.PipelineFillCyc
}

func (h HWConfig) toDuration(cycles int) time.Duration {
	sec := float64(cycles) / h.ClockHz
	return time.Duration(sec * float64(time.Second))
}

// EncodeLatency returns the encoder latency as a wall-clock duration.
func (h HWConfig) EncodeLatency(k int) time.Duration {
	return h.toDuration(h.EncodeCycles(k))
}

// DecodeLatency returns the worst-case decode duration for (n, t).
func (h HWConfig) DecodeLatency(n, t int) time.Duration {
	return h.toDuration(h.DecodeCycles(n, t))
}

// DecodeCleanLatency returns the error-free decode duration for (n, t).
func (h HWConfig) DecodeCleanLatency(n, t int) time.Duration {
	return h.toDuration(h.DecodeCleanCycles(n, t))
}

// GateEstimate roughly sizes the decoder datapath in constant Galois
// multipliers, the dominant resource (paper §4: t × h multipliers in the
// Chien block plus 2t LFSRs). Used by ablation A3 to expose the
// latency/area trade-off of the parallelism choice.
func (h HWConfig) GateEstimate(t int) int {
	chien := t * h.ChienParallelismH
	syndrome := 2 * t * h.ParallelismP
	ibm := 3 * t // iBM datapath registers+multipliers scale linearly
	return chien + syndrome + ibm
}
