package bch

import (
	"math/rand"
	"testing"
)

// TestRemainderSyndromesMatchDirect pins the remainder-first syndrome
// path bit-identical to the direct full-codeword walk across
// capabilities and error weights: same field elements, in the same
// order, for clean words, correctable patterns and saturated garbage.
func TestRemainderSyndromesMatchDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// t = 3 exercises the one-word four-way interleaved loop, 4 the same
	// at exactly r = 64 (zero-width top shifts), 5 and 9 the multi-word
	// sliced loop with a non-word-aligned register top, 8 and 24 the
	// word-aligned multi-word loop, 65 the byte-wise fallback past
	// slice8MaxRW.
	for _, tc := range []int{3, 4, 5, 8, 9, 24, 65} {
		code, err := NewCode(Params{M: 16, K: 32768, T: tc})
		if err != nil {
			t.Fatalf("t=%d: %v", tc, err)
		}
		dv := newDivider(code)
		if dv == nil {
			t.Fatalf("t=%d: expected byte-aligned divider", tc)
		}
		syn := NewSyndromeCalc(code.Field)
		syn.Prepare(tc)
		enc := NewEncoder(code)
		msg := make([]byte, code.K/8)
		reg := make([]uint64, dv.rw)
		rem := make([]byte, dv.rb)
		direct := make([]uint32, 2*tc)
		fast := make([]uint32, 2*tc)
		for trial := 0; trial < 4; trial++ {
			rng.Read(msg)
			cw, err := enc.EncodeCodeword(msg)
			if err != nil {
				t.Fatal(err)
			}
			nerr := []int{0, 1, tc, 4 * tc}[trial]
			for e := 0; e < nerr; e++ {
				p := rng.Intn(len(cw) * 8)
				cw[p/8] ^= 1 << uint(7-p%8)
			}
			syn.SyndromesInto(direct, cw, tc)
			dv.remainderInto(rem, reg, cw)
			syn.SyndromesInto(fast, rem, tc)
			for i := range direct {
				if direct[i] != fast[i] {
					t.Fatalf("t=%d trial=%d: S_%d mismatch: direct=%#x fast=%#x",
						tc, trial, i+1, direct[i], fast[i])
				}
			}
			if nerr == 0 && !AllZero(fast) {
				t.Fatalf("t=%d: clean codeword has nonzero fast syndromes", tc)
			}
		}
	}
}
