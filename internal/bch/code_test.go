package bch

import (
	"strings"
	"testing"

	"xlnand/internal/gf"
)

func TestParamsBasics(t *testing.T) {
	p := Params{M: 16, K: 32768, T: 65}
	if p.R() != 1040 {
		t.Fatalf("R = %d, want 1040", p.R())
	}
	if p.N() != 33808 {
		t.Fatalf("N = %d, want 33808", p.N())
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("paper parameters rejected: %v", err)
	}
}

func TestParamsValidateRejects(t *testing.T) {
	bad := []Params{
		{M: 1, K: 10, T: 1},        // field too small
		{M: 17, K: 10, T: 1},       // field too large
		{M: 8, K: 0, T: 1},         // empty message
		{M: 8, K: 10, T: 0},        // no correction
		{M: 8, K: 250, T: 1},       // 250+8 > 255
		{M: 16, K: 32768, T: 2048}, // overflow the field
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", p)
		}
	}
}

func TestNewCodeSmallKnown(t *testing.T) {
	// Classic BCH(15, 7, t=2) over GF(2^4): g(x) = x^8+x^7+x^6+x^4+1.
	c, err := NewCode(Params{M: 4, K: 7, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := gf.NewPoly2FromCoeffs(0, 4, 6, 7, 8)
	if !c.Gen.Equal(want) {
		t.Fatalf("generator = %v, want %v", c.Gen, want)
	}
	if c.GenDegree != 8 {
		t.Fatalf("deg g = %d, want 8", c.GenDegree)
	}
	if c.CodewordBits() != 15 {
		t.Fatalf("codeword bits = %d, want 15", c.CodewordBits())
	}
	if c.ShorteningOffset() != 0 {
		t.Fatalf("BCH(15,7) should be unshortened, offset = %d", c.ShorteningOffset())
	}
}

func TestNewCodeHamming(t *testing.T) {
	// t=1 BCH over GF(2^4) is the Hamming(15,11) code: g = primitive poly.
	c, err := NewCode(Params{M: 4, K: 11, T: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Gen.Equal(gf.NewPoly2FromCoeffs(0, 1, 4)) {
		t.Fatalf("generator = %v, want x^4 + x + 1", c.Gen)
	}
}

func TestGeneratorDividesXnMinus1(t *testing.T) {
	// g(x) must divide x^(2^m - 1) + 1 for a cyclic code.
	for _, p := range []Params{{M: 5, K: 10, T: 3}, {M: 6, K: 30, T: 4}} {
		c, err := NewCode(p)
		if err != nil {
			t.Fatal(err)
		}
		nFull := (1 << uint(p.M)) - 1
		xn1 := gf.NewPoly2FromCoeffs(0, nFull)
		if !xn1.Mod(c.Gen).IsZero() {
			t.Fatalf("%v: generator does not divide x^%d + 1", c, nFull)
		}
	}
}

func TestGeneratorHasDesignedRoots(t *testing.T) {
	// g(alpha^i) = 0 for i = 1..2t (the BCH bound's defining property).
	c, err := NewCode(Params{M: 8, K: 100, T: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2*c.T; i++ {
		if v := c.Gen.Eval(c.Field, c.Field.Alpha(i)); v != 0 {
			t.Fatalf("g(alpha^%d) = %d, want 0", i, v)
		}
	}
	// And not at alpha^0 = 1 (g would otherwise waste a factor (x+1)).
	if v := c.Gen.Eval(c.Field, 1); v == 0 {
		t.Fatal("g(1) = 0: generator contains unnecessary (x+1) factor")
	}
}

func TestPageCodeGeneratorDegrees(t *testing.T) {
	// For the paper's field every coset in range has size 16, so
	// deg g = 16·t exactly for t = 3..65.
	codec, err := NewPageCodec()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []int{3, 14, 30, 65} {
		code, err := codec.Code(tc)
		if err != nil {
			t.Fatal(err)
		}
		if code.GenDegree != 16*tc {
			t.Fatalf("t=%d: deg g = %d, want %d", tc, code.GenDegree, 16*tc)
		}
		if code.ShorteningOffset() != 65535-(32768+16*tc) {
			t.Fatalf("t=%d: bad shortening offset %d", tc, code.ShorteningOffset())
		}
	}
}

func TestCodeString(t *testing.T) {
	c, err := NewCode(Params{M: 4, K: 7, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := c.String()
	for _, want := range []string{"n=15", "k=7", "t=2", "GF(2^4)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
