package bch

import "xlnand/internal/gf"

// BerlekampMassey computes the error-locator polynomial lambda(x) from the
// syndrome sequence S_1..S_2t using the iterative (inverse-free in spirit;
// one division per length change) Berlekamp-Massey algorithm the paper
// adopts from Micheloni et al. [29]. The adaptive hardware runs one
// iteration per unit of correction capability; this software version is
// bit-exact with that datapath.
//
// It returns lambda (ascending coefficients, lambda[0] == 1) and the LFSR
// length L = assumed number of errors. Callers must reject L > t and
// deg(lambda) != L as uncorrectable.
func BerlekampMassey(f *gf.Field, syn []uint32) (lambda []uint32, L int) {
	var sc bmScratch
	sc.grow(len(syn))
	lam, L := berlekampMasseyInto(f, syn, &sc)
	return append([]uint32(nil), lam...), L
}

// bmScratch holds the three polynomial buffers the iteration rotates
// through (lambda, the stashed pre-update copy B, and the update target),
// sized once for the largest syndrome sequence a decoder can see.
type bmScratch struct {
	a, b, c []uint32
}

func (sc *bmScratch) grow(n2t int) {
	// A buffer can grow to len(prev)+shift <= 2t + 1 coefficients.
	want := n2t + 2
	if cap(sc.a) < want {
		sc.a = make([]uint32, want)
		sc.b = make([]uint32, want)
		sc.c = make([]uint32, want)
	}
}

// berlekampMasseyInto is the allocation-free kernel behind BerlekampMassey:
// the returned lambda aliases one of the scratch buffers and is only valid
// until the scratch is reused.
func berlekampMasseyInto(f *gf.Field, syn []uint32, sc *bmScratch) (lambda []uint32, L int) {
	n2t := len(syn)
	sc.grow(n2t)
	lam := sc.a[:1]
	lam[0] = 1
	prev := sc.b[:1] // B(x): copy of lambda before the last length change
	prev[0] = 1
	spare := sc.c
	b := uint32(1) // discrepancy at the last length change
	shift := 1     // x^shift multiplier applied to B

	for r := 1; r <= n2t; r++ {
		// Discrepancy d = S_r + sum_{i=1..L} lambda_i * S_{r-i}.
		var d uint32
		for i := 0; i <= L && i < len(lam); i++ {
			if r-i >= 1 {
				d ^= f.Mul(lam[i], syn[r-i-1])
			}
		}
		if d == 0 {
			shift++
			continue
		}
		// lambda' = lambda - (d/b) x^shift B(x), built in the spare buffer.
		coef := f.Div(d, b)
		nlen := max(len(lam), len(prev)+shift)
		next := spare[:nlen]
		n := copy(next, lam)
		for i := n; i < nlen; i++ {
			next[i] = 0
		}
		for i, pb := range prev {
			next[i+shift] ^= f.Mul(coef, pb)
		}
		if 2*L <= r-1 {
			// Length change: stash the pre-update lambda; the old B's
			// buffer becomes the new spare. The three buffers stay a
			// permutation of (lambda, B, spare) — never aliased.
			spare = prev[:cap(prev)]
			prev = lam
			b = d
			L = r - L
			shift = 1
		} else {
			spare = lam[:cap(lam)]
			shift++
		}
		lam = next
	}
	// Trim trailing zeros for a well-defined degree.
	for len(lam) > 1 && lam[len(lam)-1] == 0 {
		lam = lam[:len(lam)-1]
	}
	return lam, L
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
