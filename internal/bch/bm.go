package bch

import "xlnand/internal/gf"

// BerlekampMassey computes the error-locator polynomial lambda(x) from the
// syndrome sequence S_1..S_2t using the iterative (inverse-free in spirit;
// one division per length change) Berlekamp-Massey algorithm the paper
// adopts from Micheloni et al. [29]. The adaptive hardware runs one
// iteration per unit of correction capability; this software version is
// bit-exact with that datapath.
//
// It returns lambda (ascending coefficients, lambda[0] == 1) and the LFSR
// length L = assumed number of errors. Callers must reject L > t and
// deg(lambda) != L as uncorrectable.
func BerlekampMassey(f *gf.Field, syn []uint32) (lambda []uint32, L int) {
	n2t := len(syn)
	lambda = make([]uint32, 1, n2t/2+2)
	lambda[0] = 1
	prev := []uint32{1} // B(x): copy of lambda before the last length change
	b := uint32(1)      // discrepancy at the last length change
	shift := 1          // x^shift multiplier applied to B

	for r := 1; r <= n2t; r++ {
		// Discrepancy d = S_r + sum_{i=1..L} lambda_i * S_{r-i}.
		var d uint32
		for i := 0; i <= L && i < len(lambda); i++ {
			if r-i >= 1 {
				d ^= f.Mul(lambda[i], syn[r-i-1])
			}
		}
		if d == 0 {
			shift++
			continue
		}
		// lambda' = lambda - (d/b) x^shift B(x)
		coef := f.Div(d, b)
		next := make([]uint32, max(len(lambda), len(prev)+shift))
		copy(next, lambda)
		for i, pb := range prev {
			next[i+shift] ^= f.Mul(coef, pb)
		}
		if 2*L <= r-1 {
			// Length change: stash the pre-update lambda.
			prev = lambda
			b = d
			L = r - L
			shift = 1
		} else {
			shift++
		}
		lambda = next
	}
	// Trim trailing zeros for a well-defined degree.
	for len(lambda) > 1 && lambda[len(lambda)-1] == 0 {
		lambda = lambda[:len(lambda)-1]
	}
	return lambda, L
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
