package bch

import "testing"

// BenchmarkRemainderChunks4K gauges the polynomial-division kernel on
// one full-length codeword of the paper's page code at t = 3 — the
// dominant per-read cost of the simulation hot path.
func BenchmarkRemainderChunks4K(b *testing.B) {
	code, err := NewCode(Params{M: 16, K: 32768, T: 3})
	if err != nil {
		b.Fatal(err)
	}
	dv := newDivider(code)
	data := make([]byte, (code.K+code.GenDegree)/8)
	for i := range data {
		data[i] = byte(i * 31)
	}
	reg := make([]uint64, dv.rw)
	rem := make([]byte, dv.rb)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dv.remainderInto(rem, reg, data)
	}
}
