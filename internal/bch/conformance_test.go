package bch_test

import (
	"testing"

	"xlnand/internal/bch"
	"xlnand/internal/codectest"
)

// TestCodecConformance runs the shared ecc.Codec conformance suite
// against the BCH family — the same suite the LDPC package runs, so
// the two families can never drift apart behind the interface.
func TestCodecConformance(t *testing.T) {
	codec, err := bch.NewPageCodec()
	if err != nil {
		t.Fatal(err)
	}
	codectest.Run(t, bch.NewHWCodec(codec, bch.DefaultHWConfig()), codectest.Options{
		// Bounded-distance decoding: t+1 errors must never decode.
		StrictCapPlusOne: true,
		Levels:           []int{3, 16, 65},
	})
}
