package bch

// Table-driven coverage of the rebuilt decode pipeline at page scale:
// every capability tier the benchmarks track ({3, 16, 65}) is exercised
// at error counts {0, 1, t/2, t, t+1}, asserting exact corrected-bit
// counts within capability and the ErrUncorrectable rollback contract
// beyond it.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"xlnand/internal/stats"
)

func TestDecodeErrorCountMatrix(t *testing.T) {
	codec, err := NewPageCodec()
	if err != nil {
		t.Fatal(err)
	}
	for _, tcap := range []int{3, 16, 65} {
		if err := codec.Warm(tcap); err != nil {
			t.Fatal(err)
		}
		code, err := codec.Code(tcap)
		if err != nil {
			t.Fatal(err)
		}
		nbits := code.CodewordBits()
		for _, nerr := range dedupeCounts(0, 1, tcap/2, tcap, tcap+1) {
			t.Run(fmt.Sprintf("t=%d/errs=%d", tcap, nerr), func(t *testing.T) {
				r := stats.NewRNG(uint64(1000*tcap + nerr))
				const trials = 4
				detected := 0
				for trial := 0; trial < trials; trial++ {
					msg := randMsg(r, codec.K/8)
					cw, err := codec.EncodeCodeword(tcap, msg)
					if err != nil {
						t.Fatal(err)
					}
					clean := append([]byte(nil), cw...)
					flipBits(cw, r.SampleK(nbits, nerr))
					dirty := append([]byte(nil), cw...)

					n, err := codec.Decode(tcap, cw)
					if nerr <= tcap {
						if err != nil {
							t.Fatalf("trial %d: decode of %d <= t errors failed: %v", trial, nerr, err)
						}
						if n != nerr {
							t.Fatalf("trial %d: corrected %d bits, want %d", trial, n, nerr)
						}
						if !bytes.Equal(cw, clean) {
							t.Fatalf("trial %d: corrected codeword differs from original", trial)
						}
						continue
					}
					// Beyond capability: the decoder must either detect the
					// overload (rolling the codeword back untouched) or — rare
					// for page-scale codes — miscorrect onto another valid
					// codeword, never claiming more than t repairs.
					if errors.Is(err, ErrUncorrectable) {
						detected++
						if !bytes.Equal(cw, dirty) {
							t.Fatalf("trial %d: ErrUncorrectable but codeword was modified", trial)
						}
						continue
					}
					if err != nil {
						t.Fatalf("trial %d: unexpected error: %v", trial, err)
					}
					if n > tcap {
						t.Fatalf("trial %d: claimed to correct %d > t errors", trial, n)
					}
				}
				if nerr > tcap && detected == 0 {
					t.Fatalf("no trial detected the %d-error overload", nerr)
				}
			})
		}
	}
}

// TestDecodeConcurrentSharedDecoder hammers one warmed codec from many
// goroutines at mixed capabilities: the lock-free syndrome tables, codec
// slots and pooled scratch must never cross-contaminate decodes.
func TestDecodeConcurrentSharedDecoder(t *testing.T) {
	codec, err := NewCodec(16, 1024, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []int{3, 8, 12} {
		if err := codec.Warm(tc); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed uint64) {
			r := stats.NewRNG(seed)
			for i := 0; i < 50; i++ {
				tc := []int{3, 8, 12}[r.Intn(3)]
				code, err := codec.Code(tc)
				if err != nil {
					done <- err
					return
				}
				msg := randMsg(r, codec.K/8)
				cw, err := codec.EncodeCodeword(tc, msg)
				if err != nil {
					done <- err
					return
				}
				nerr := r.Intn(tc + 1)
				flipBits(cw, r.SampleK(code.CodewordBits(), nerr))
				n, err := codec.Decode(tc, cw)
				if err != nil || n != nerr {
					done <- fmt.Errorf("t=%d: corrected %d of %d errors (err=%v)", tc, n, nerr, err)
					return
				}
			}
			done <- nil
		}(uint64(500 + g))
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
