package controller

import (
	"fmt"
	"testing"
	"time"

	"xlnand/internal/bch"
	"xlnand/internal/ecc"
	"xlnand/internal/ldpc"
	"xlnand/internal/nand"
)

// BenchmarkFamilyRecovery sweeps both codec families through the full
// recovery pipeline at three device ages (the retry matrix's fresh /
// cycled / retention-baked corners) and reports decode throughput,
// recovered UBER (lost bits per bit read on the modelled medium) and the
// modelled read MB/s — the artifact CI archives as BENCH_ldpc.json so
// the family trade-off trajectory is tracked across PRs. The retry
// budget opens one rung past the hard ladder, so the LDPC series pays
// its soft-sense rung where the climate demands it.
func BenchmarkFamilyRecovery(b *testing.B) {
	const pages = 6
	steps := nand.DefaultStressConfig().RetrySteps
	families := []struct {
		name  string
		build func(b *testing.B) ecc.Codec
	}{
		{"bch", func(b *testing.B) ecc.Codec {
			c, err := bch.NewPageCodec()
			if err != nil {
				b.Fatal(err)
			}
			return bch.NewHWCodec(c, bch.DefaultHWConfig())
		}},
		{"ldpc", func(b *testing.B) ecc.Codec {
			c, err := ldpc.NewPageCodec()
			if err != nil {
				b.Fatal(err)
			}
			return c
		}},
	}
	for _, fam := range families {
		for _, cond := range ladderConditions() {
			b.Run(fmt.Sprintf("%s/%s", fam.name, cond.name), func(b *testing.B) {
				dev := nand.NewDevice(nand.DefaultCalibration(), 4, 11)
				cfg := DefaultConfig()
				cfg.MaxRetries = steps + 1
				c, err := New(dev, fam.build(b), cfg)
				if err != nil {
					b.Fatal(err)
				}
				want := prepareLadderPages(b, c, cond, pages)
				pageBits := int64(len(want[0])) * 8
				var bits, lost int64
				var modelled time.Duration
				b.SetBytes(int64(len(want[0])))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := c.ReadPage(0, i%pages)
					bits += pageBits
					modelled += res.Latency.Total()
					if err != nil {
						lost += pageBits
					}
				}
				b.StopTimer()
				if bits > 0 {
					b.ReportMetric(float64(lost)/float64(bits), "recovered-UBER")
				}
				if modelled > 0 {
					b.ReportMetric(float64(len(want[0]))*float64(b.N)/modelled.Seconds()/1e6, "model-MB/s")
				}
			})
		}
	}
}
