// Package controller implements the advanced NAND memory controller of
// paper §3 (Fig. 1): the command/status register file behind the on-chip
// network socket, the page-buffer RAM, the adaptive-ECC datapath glue and
// the reliability manager that re-selects the correction capability and
// the program algorithm at runtime to hold a target UBER.
package controller

import "fmt"

// Register identifies one configuration/status register of the controller
// (the "command/status control register" block of Fig. 1). Configuration
// writes arriving over the socket interface update these; the core
// controller reads them to steer each operation.
type Register int

const (
	// RegAlgorithm selects the program algorithm (0 = ISPP-SV,
	// 1 = ISPP-DV) — the physical-layer knob exposed to software.
	RegAlgorithm Register = iota
	// RegECCCapability holds the correction capability t for subsequent
	// operations (clamped to the codec's supported range).
	RegECCCapability
	// RegTargetUBERExp holds the UBER target as a negative power of ten
	// (11 means 1e-11).
	RegTargetUBERExp
	// RegAdaptive enables the self-adaptive reliability manager
	// (non-zero: the manager overrides RegECCCapability).
	RegAdaptive
	// RegReadRetry holds the read-recovery ladder budget: the maximum
	// number of re-reads at shifted read references a failing decode may
	// trigger (0 disables staged recovery).
	RegReadRetry
	// RegSoftRetry holds the soft-decision rung budget: how many
	// soft-sense decode attempts may follow an exhausted hard ladder
	// (0 disables the soft rung; ignored by codecs without a soft path).
	RegSoftRetry
	// RegCodecFamily is read-only: the attached codec family
	// (0 = BCH, 1 = LDPC), fixed at construction.
	RegCodecFamily
	// RegStatus is read-only: bit 0 = last op OK, bit 1 = uncorrectable,
	// bit 2 = program failure.
	RegStatus
	// RegErrCount is read-only: bit errors corrected by the last decode.
	RegErrCount
	numRegisters
)

// String implements fmt.Stringer.
func (r Register) String() string {
	switch r {
	case RegAlgorithm:
		return "ALG_SELECT"
	case RegECCCapability:
		return "ECC_T"
	case RegTargetUBERExp:
		return "TARGET_UBER_EXP"
	case RegAdaptive:
		return "ADAPTIVE"
	case RegReadRetry:
		return "READ_RETRY"
	case RegSoftRetry:
		return "SOFT_RETRY"
	case RegCodecFamily:
		return "CODEC_FAMILY"
	case RegStatus:
		return "STATUS"
	case RegErrCount:
		return "ERR_COUNT"
	default:
		return fmt.Sprintf("REG_%d", int(r))
	}
}

// Status register bits.
const (
	StatusOK            = 1 << 0
	StatusUncorrectable = 1 << 1
	StatusProgramFail   = 1 << 2
)

// RegisterFile is the controller's register block.
type RegisterFile struct {
	regs [numRegisters]uint32
}

// Write updates a configuration register; writes to read-only registers
// are rejected, mirroring a bus-error response.
func (rf *RegisterFile) Write(r Register, v uint32) error {
	if r < 0 || r >= numRegisters {
		return fmt.Errorf("controller: write to unknown register %d", int(r))
	}
	if r == RegStatus || r == RegErrCount || r == RegCodecFamily {
		return fmt.Errorf("controller: register %v is read-only", r)
	}
	rf.regs[r] = v
	return nil
}

// Read returns a register value.
func (rf *RegisterFile) Read(r Register) (uint32, error) {
	if r < 0 || r >= numRegisters {
		return 0, fmt.Errorf("controller: read of unknown register %d", int(r))
	}
	return rf.regs[r], nil
}

// setStatus is the internal (hardware-side) status update path.
func (rf *RegisterFile) setStatus(status, errCount uint32) {
	rf.regs[RegStatus] = status
	rf.regs[RegErrCount] = errCount
}

// setFamily is the internal (construction-time) codec-family strap.
func (rf *RegisterFile) setFamily(family uint32) {
	rf.regs[RegCodecFamily] = family
}
