package controller

import (
	"testing"

	"xlnand/internal/bch"
	"xlnand/internal/nand"
)

func newManager(t *testing.T) *ReliabilityManager {
	t.Helper()
	codec, err := bch.NewPageCodec()
	if err != nil {
		t.Fatal(err)
	}
	return NewReliabilityManager(bch.NewHWCodec(codec, bch.DefaultHWConfig()), 1e-11)
}

func TestSelectTMonotoneInWear(t *testing.T) {
	m := newManager(t)
	prev := 0
	for _, n := range []float64{0, 1e2, 1e3, 1e4, 1e5, 1e6} {
		cur := m.SelectT(nand.ISPPSV, n)
		if cur < prev {
			t.Fatalf("t decreased with wear at N=%g: %d < %d", n, cur, prev)
		}
		prev = cur
	}
	if prev < 60 {
		t.Fatalf("EOL SV t=%d, expected ≈ 65", prev)
	}
}

func TestSelectTDVBelowSV(t *testing.T) {
	m := newManager(t)
	for _, n := range []float64{1e3, 1e5, 1e6} {
		sv := m.SelectT(nand.ISPPSV, n)
		dv := m.SelectT(nand.ISPPDV, n)
		if dv > sv {
			t.Fatalf("N=%g: DV t=%d above SV t=%d", n, dv, sv)
		}
	}
}

func TestSelectTPinsTMaxWhenUnreachable(t *testing.T) {
	m := newManager(t)
	cal := nand.DefaultCalibration()
	cal.RBERCeiling = 0.2 // absurd degradation
	m.SetCalibration(cal)
	if got := m.SelectT(nand.ISPPSV, 1e12); got != 65 {
		t.Fatalf("unreachable target should pin TMax, got %d", got)
	}
}

func TestMeasurementOverridesOptimisticModel(t *testing.T) {
	m := newManager(t)
	// Model says fresh (1e-6) but decodes report ~1e-3 worth of errors.
	n := 32768 + 16*65
	for i := 0; i < 200; i++ {
		m.ObserveDecode(nand.ISPPSV, n, 34)
	}
	est := m.EstimateRBER(nand.ISPPSV, 0)
	if est < 5e-4 {
		t.Fatalf("estimator ignored measured errors: %g", est)
	}
	if got := m.SelectT(nand.ISPPSV, 0); got < 50 {
		t.Fatalf("capability %d not raised despite measured degradation", got)
	}
}

func TestModelOverridesOptimisticMeasurement(t *testing.T) {
	// Clean decodes on an aged block must not lower t below the model:
	// the fusion is max(), a self-protective bias.
	m := newManager(t)
	for i := 0; i < 50; i++ {
		m.ObserveDecode(nand.ISPPSV, 33808, 0)
	}
	if got := m.SelectT(nand.ISPPSV, 1e6); got < 60 {
		t.Fatalf("clean-read streak lowered EOL capability to %d", got)
	}
}

func TestEWMAWarmsUp(t *testing.T) {
	m := newManager(t)
	if _, ok := m.MeasuredRBER(nand.ISPPSV); ok {
		t.Fatal("estimator claims data before any observation")
	}
	m.ObserveDecode(nand.ISPPSV, 1000, 1)
	got, ok := m.MeasuredRBER(nand.ISPPSV)
	if !ok || got != 1e-3 {
		t.Fatalf("first sample not adopted directly: %g, %v", got, ok)
	}
}

func TestProjectedUBERMeetsTargetAtSelectedT(t *testing.T) {
	m := newManager(t)
	for _, n := range []float64{0, 1e4, 1e6} {
		for _, alg := range []nand.Algorithm{nand.ISPPSV, nand.ISPPDV} {
			tc := m.SelectT(alg, n)
			got := m.ProjectedUBER(tc, alg, n)
			if got <= m.TargetUBER() {
				continue
			}
			// At SV end-of-life the safety margin pushes the requirement
			// past TMax; the manager pins t=65 and delivers best effort
			// within a small factor of the target (the same corner where
			// the paper instantiates its worst case).
			if tc != 65 || got > 10*m.TargetUBER() {
				t.Fatalf("%v N=%g: selected t=%d projects UBER %g above target %g",
					alg, n, tc, got, m.TargetUBER())
			}
		}
	}
}

func TestUncorrectableCounter(t *testing.T) {
	m := newManager(t)
	for i := 0; i < 3; i++ {
		m.ObserveUncorrectable()
	}
	if got := m.Uncorrectables(); got != 3 {
		t.Fatalf("uncorrectable count = %d", got)
	}
}
