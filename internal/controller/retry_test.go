package controller

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"xlnand/internal/bch"
	"xlnand/internal/nand"
	"xlnand/internal/stats"
)

// retryRig builds a controller with an explicit retry budget over a
// fresh device.
func retryRig(t testing.TB, maxRetries int, seed uint64) *Controller {
	t.Helper()
	cal := nand.DefaultCalibration()
	dev := nand.NewDevice(cal, 4, seed)
	codec, err := bch.NewCodec(16, cal.PageDataBits(), 3, 65)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxRetries = maxRetries
	c, err := New(dev, bch.NewHWCodec(codec, bch.DefaultHWConfig()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func retryPage(seed uint64, size int) []byte {
	r := stats.NewRNG(seed)
	p := make([]byte, size)
	for i := range p {
		p[i] = byte(r.Intn(256))
	}
	return p
}

// TestReadPageSpareMismatch covers the capability-recovery error path:
// a page whose spare area does not map onto a supported t must be
// rejected with a configuration error, not ErrUncorrectable.
func TestReadPageSpareMismatch(t *testing.T) {
	c := retryRig(t, 4, 1)
	data := retryPage(2, c.Device().Calibration().PageDataBytes)
	// 13 spare bytes = 104 bits: 104/16 = t 6, whose parity is 12 bytes
	// — the stored geometry is inconsistent with every capability.
	if _, err := c.Device().Program(0, 0, data, make([]byte, 13), nand.ISPPSV); err != nil {
		t.Fatal(err)
	}
	_, err := c.ReadPage(0, 0)
	if err == nil {
		t.Fatal("mismatched spare accepted")
	}
	if errors.Is(err, ErrUncorrectable) {
		t.Fatalf("spare mismatch mis-reported as uncorrectable: %v", err)
	}
}

// TestReadPageNeverProgrammed covers the unwritten-page error path; it
// must not consume retry budget, touch the status register, or count as
// an uncorrectable.
func TestReadPageNeverProgrammed(t *testing.T) {
	c := retryRig(t, 4, 1)
	res, err := c.ReadPage(0, 3)
	if err == nil {
		t.Fatal("read of unwritten page succeeded")
	}
	if errors.Is(err, ErrUncorrectable) {
		t.Fatalf("unwritten page mis-reported as uncorrectable: %v", err)
	}
	if res.Retries != 0 || res.Latency.Total() != 0 {
		t.Fatalf("unwritten read consumed ladder budget: %+v", res)
	}
	if c.Manager().Uncorrectables() != 0 {
		t.Fatal("unwritten read counted as uncorrectable")
	}
}

// TestReadPageOutOfRange covers the address error path.
func TestReadPageOutOfRange(t *testing.T) {
	c := retryRig(t, 4, 1)
	if _, err := c.ReadPage(99, 0); err == nil {
		t.Fatal("out-of-range block accepted")
	}
	if _, err := c.ReadPage(0, 9999); err == nil {
		t.Fatal("out-of-range page accepted")
	}
}

// ladderCondition is one (age, bake) corner of the retry matrix.
type ladderCondition struct {
	name   string
	cycles float64
	bake   float64
}

func ladderConditions() []ladderCondition {
	return []ladderCondition{
		{"fresh", 0, 0},
		{"cycled-1e6", 1e6, 0},
		{"baked-1e6", 1e6, 1e4},
	}
}

// prepareLadderPages writes n pages on block 0 under the condition:
// wear first (so the manager provisions t for the aged climate), then
// the retention bake on the stored data.
func prepareLadderPages(t testing.TB, c *Controller, cond ladderCondition, n int) [][]byte {
	t.Helper()
	if cond.cycles > 0 {
		if err := c.Device().SetCycles(0, cond.cycles); err != nil {
			t.Fatal(err)
		}
	}
	pages := make([][]byte, n)
	for i := range pages {
		pages[i] = retryPage(uint64(100+i), c.Device().Calibration().PageDataBytes)
		if _, err := c.WritePage(0, i, pages[i]); err != nil {
			t.Fatal(err)
		}
	}
	if cond.bake > 0 {
		c.Device().AdvanceTime(cond.bake)
	}
	return pages
}

// TestRetryLadderMatrix plays the (age x retry-depth) matrix the issue
// asks for: recovery must be monotone in ladder depth, fresh pages must
// never need the ladder, and the retention-baked end-of-life corner —
// uncorrectable at depth 0 — must read back correctly within the
// configured ladder with exact per-stage latency accounting.
func TestRetryLadderMatrix(t *testing.T) {
	const pages = 16
	depths := []int{0, 1, 2, 6}
	fails := map[string]map[int]int{}
	for _, cond := range ladderConditions() {
		fails[cond.name] = map[int]int{}
		for _, depth := range depths {
			c := retryRig(t, depth, 7)
			want := prepareLadderPages(t, c, cond, pages)
			for i := 0; i < pages; i++ {
				res, err := c.ReadPage(0, i)
				if err != nil {
					if !errors.Is(err, ErrUncorrectable) {
						t.Fatalf("%s depth %d: %v", cond.name, depth, err)
					}
					fails[cond.name][depth]++
					continue
				}
				for j := range want[i] {
					if res.Data[j] != want[i][j] {
						t.Fatalf("%s depth %d page %d: decoded data wrong at byte %d", cond.name, depth, i, j)
					}
				}
				if res.Retries > depth {
					t.Fatalf("%s: read took %d retries over budget %d", cond.name, res.Retries, depth)
				}
				assertLatencyAccounting(t, c, res)
				if cond.name == "fresh" && res.Retries != 0 {
					t.Fatalf("fresh page needed %d retries", res.Retries)
				}
			}
		}
	}
	// Monotone recovery: deeper ladders never lose more pages.
	for name, byDepth := range fails {
		for i := 1; i < len(depths); i++ {
			lo, hi := depths[i-1], depths[i]
			if byDepth[hi] > byDepth[lo] {
				t.Fatalf("%s: deeper ladder lost more pages: depth %d -> %d failures, depth %d -> %d",
					name, lo, byDepth[lo], hi, byDepth[hi])
			}
		}
	}
	if fails["fresh"][0] != 0 {
		t.Fatalf("fresh pages failed at depth 0: %d", fails["fresh"][0])
	}
	// The acceptance corner: a retention-baked end-of-life block that
	// loses pages single-shot reads everything back within the ladder.
	if fails["baked-1e6"][0] == 0 {
		t.Fatal("baked EOL pages all readable at depth 0; the matrix exercises nothing")
	}
	if n := fails["baked-1e6"][6]; n != 0 {
		t.Fatalf("full ladder left %d baked EOL pages unreadable", n)
	}
}

// assertLatencyAccounting pins the exact cost model of a recovered
// read: every stage pays full tR + transfer + decode, components sum
// across stages, and the per-stage breakdown is consistent.
func assertLatencyAccounting(t testing.TB, c *Controller, res ReadResult) {
	t.Helper()
	attempts := res.Retries + 1
	if res.Latency.TR != time.Duration(attempts)*nand.PageReadTime {
		t.Fatalf("tR %v for %d attempts, want %v", res.Latency.TR, attempts,
			time.Duration(attempts)*nand.PageReadTime)
	}
	pb, err := c.codec.ParityBytes(res.T)
	if err != nil {
		t.Fatal(err)
	}
	xfer := c.bus.Transfer(len(res.Data) + pb)
	if res.Latency.Transfer != time.Duration(attempts)*xfer {
		t.Fatalf("transfer %v for %d attempts, want %v", res.Latency.Transfer, attempts,
			time.Duration(attempts)*xfer)
	}
	if res.Latency.Total() != res.Latency.TR+res.Latency.Transfer+res.Latency.Decode {
		t.Fatal("latency total not additive")
	}
	if res.Retries == 0 {
		if res.Stages != nil {
			t.Fatalf("single-attempt read materialised %d stages", len(res.Stages))
		}
		return
	}
	if len(res.Stages) != attempts {
		t.Fatalf("%d stages for %d attempts", len(res.Stages), attempts)
	}
	var sum ReadLatency
	for _, st := range res.Stages {
		if st.Latency.TR != nand.PageReadTime {
			t.Fatalf("stage tR %v, want %v", st.Latency.TR, nand.PageReadTime)
		}
		sum.TR += st.Latency.TR
		sum.Transfer += st.Latency.Transfer
		sum.Decode += st.Latency.Decode
	}
	if sum != res.Latency {
		t.Fatalf("stage latencies %+v do not sum to total %+v", sum, res.Latency)
	}
	if res.Stages[len(res.Stages)-1].Step != res.AppliedOffset {
		t.Fatalf("final stage step %d != applied offset %d",
			res.Stages[len(res.Stages)-1].Step, res.AppliedOffset)
	}
}

// TestCalibrationCachePredictsOffset checks the learning loop: once one
// read has paid for walking the ladder, later reads of the same wear
// bucket start at the learned offset and recover without retries.
func TestCalibrationCachePredictsOffset(t *testing.T) {
	const pages = 12
	c := retryRig(t, 6, 21)
	prepareLadderPages(t, c, ladderCondition{"baked", 1e6, 1e4}, pages)
	if got := c.Manager().PredictStep(1e6); got != 0 {
		t.Fatalf("cache pre-populated with step %d", got)
	}
	firstRetries := -1
	predicted := 0
	for i := 0; i < pages; i++ {
		res, err := c.ReadPage(0, i)
		if err != nil {
			t.Fatalf("page %d unreadable with full ladder: %v", i, err)
		}
		if firstRetries == -1 {
			firstRetries = res.Retries
			predicted = res.AppliedOffset
			continue
		}
		// Every subsequent read starts at the cached prediction: no
		// ladder walk, non-zero offset.
		if res.Retries != 0 {
			t.Fatalf("page %d paid %d retries after the cache learned step %d", i, res.Retries, predicted)
		}
		if res.AppliedOffset == 0 {
			t.Fatalf("page %d read at nominal references despite cached step %d", i, predicted)
		}
	}
	if firstRetries == 0 {
		t.Fatal("first baked read needed no retries; cache never exercised")
	}
	if got := c.Manager().PredictStep(1e6); got != predicted {
		t.Fatalf("cache predicts step %d, want %d", got, predicted)
	}
	if c.Manager().Recovered() == 0 {
		t.Fatal("manager recorded no recovered reads")
	}
	hist := c.Manager().RetryHistogram()
	total := 0
	for _, n := range hist {
		total += n
	}
	if total != pages {
		t.Fatalf("retry histogram holds %d reads, want %d", total, pages)
	}
	if hist[0] != pages-1 {
		t.Fatalf("histogram bucket 0 = %d, want %d (all but the ladder walk)", hist[0], pages-1)
	}
}

// TestZeroBudgetReadDoesNotClobberCache: a successful single-shot read
// (forced to step 0, never consulting the cache) must not overwrite the
// learned offset of its wear bucket — and the zero-budget read itself
// must sense at nominal references despite the cached prediction.
func TestZeroBudgetReadDoesNotClobberCache(t *testing.T) {
	const pages = 4
	c := retryRig(t, 6, 33)
	prepareLadderPages(t, c, ladderCondition{"baked", 1e6, 1e4}, pages)
	if _, err := c.ReadPage(0, 0); err != nil {
		t.Fatalf("ladder walk failed: %v", err)
	}
	learned := c.Manager().PredictStep(1e6)
	if learned == 0 {
		t.Fatal("ladder walk taught nothing; cache never exercised")
	}
	// Zero-budget reads until one succeeds at nominal references (the
	// baked medium fails most single shots; any success must neither
	// have used the prediction nor overwrite it).
	for i := 0; i < pages; i++ {
		res, err := c.ReadPageRetry(0, i, 0)
		if res.AppliedOffset != 0 {
			t.Fatalf("zero-budget read sensed at step %d, want nominal", res.AppliedOffset)
		}
		_ = err
	}
	if got := c.Manager().PredictStep(1e6); got != learned {
		t.Fatalf("zero-budget reads changed the learned step %d -> %d", learned, got)
	}
}

// TestNegativeLadderDepthFallsBackToNominal: a degenerate stress
// config with RetrySteps < 0 must leave the nominal sense working.
func TestNegativeLadderDepthFallsBackToNominal(t *testing.T) {
	c := retryRig(t, 4, 9)
	s := c.Device().Stress()
	s.RetrySteps = -1
	c.Device().SetStress(s)
	data := retryPage(8, c.Device().Calibration().PageDataBytes)
	if _, err := c.WritePage(0, 0, data); err != nil {
		t.Fatal(err)
	}
	res, err := c.ReadPage(0, 0)
	if err != nil {
		t.Fatalf("nominal read broken by degenerate ladder config: %v", err)
	}
	if res.AppliedOffset != 0 || res.Retries != 0 {
		t.Fatalf("degenerate ladder read at step %d with %d retries", res.AppliedOffset, res.Retries)
	}
}

// TestReadRetryRegister checks the socket-visible configuration surface.
func TestReadRetryRegister(t *testing.T) {
	c := retryRig(t, 3, 1)
	if got := c.ReadRetry(); got != 3 {
		t.Fatalf("ReadRetry = %d, want 3", got)
	}
	c.SetReadRetry(-5)
	if got := c.ReadRetry(); got != 0 {
		t.Fatalf("negative budget clamped to %d, want 0", got)
	}
	v, err := c.Registers().Read(RegReadRetry)
	if err != nil || v != 0 {
		t.Fatalf("RegReadRetry = %d (%v)", v, err)
	}
}

// TestReadPageAllocs pins the pooled codeword buffer: a steady-state
// read allocates only the caller-owned result page (plus the Data
// header), never a fresh codeword staging buffer.
func TestReadPageAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	c := retryRig(t, 4, 3)
	data := retryPage(5, c.Device().Calibration().PageDataBytes)
	if _, err := c.WritePage(0, 0, data); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadPage(0, 0); err != nil {
		t.Fatal(err) // warm codec tables outside the measurement
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := c.ReadPage(0, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("ReadPage allocates %.1f objects/op, want <= 2 (result page only)", allocs)
	}
}

// BenchmarkControllerRead extends the decode pipeline's ReportAllocs
// coverage to the controller read path: clean aged page, steady state.
func BenchmarkControllerRead(b *testing.B) {
	c := retryRig(b, 4, 3)
	if err := c.Device().SetCycles(0, 1e4); err != nil {
		b.Fatal(err)
	}
	data := retryPage(5, c.Device().Calibration().PageDataBytes)
	if _, err := c.WritePage(0, 0, data); err != nil {
		b.Fatal(err)
	}
	if _, err := c.ReadPage(0, 0); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReadPage(0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadRecovery sweeps the recovery ladder across three device
// ages at three retry depths and reports the recovered UBER (lost bits
// per bit read on the modelled medium) and the modelled read throughput
// — the artifact CI archives as BENCH_readretry.json.
func BenchmarkReadRecovery(b *testing.B) {
	const pages = 8
	for _, cond := range ladderConditions() {
		for _, depth := range []int{0, 2, 6} {
			b.Run(fmt.Sprintf("%s/retry%d", cond.name, depth), func(b *testing.B) {
				c := retryRig(b, depth, 11)
				want := prepareLadderPages(b, c, cond, pages)
				pageBits := int64(len(want[0])) * 8
				var bits, lost int64
				var modelled time.Duration
				b.SetBytes(int64(len(want[0])))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := c.ReadPage(0, i%pages)
					bits += pageBits
					modelled += res.Latency.Total()
					if err != nil {
						lost += pageBits
					}
				}
				b.StopTimer()
				if bits > 0 {
					b.ReportMetric(float64(lost)/float64(bits), "recovered-UBER")
				}
				if modelled > 0 {
					b.ReportMetric(float64(len(want[0]))*float64(b.N)/modelled.Seconds()/1e6, "model-MB/s")
				}
			})
		}
	}
}
