package controller

import (
	"strings"
	"testing"
)

func TestRegisterReadWrite(t *testing.T) {
	var rf RegisterFile
	if err := rf.Write(RegAlgorithm, 1); err != nil {
		t.Fatal(err)
	}
	v, err := rf.Read(RegAlgorithm)
	if err != nil || v != 1 {
		t.Fatalf("read back %d, %v", v, err)
	}
}

func TestReadOnlyRegistersRejectWrites(t *testing.T) {
	var rf RegisterFile
	if err := rf.Write(RegStatus, 1); err == nil {
		t.Fatal("STATUS accepted a bus write")
	}
	if err := rf.Write(RegErrCount, 1); err == nil {
		t.Fatal("ERR_COUNT accepted a bus write")
	}
}

func TestUnknownRegister(t *testing.T) {
	var rf RegisterFile
	if err := rf.Write(Register(99), 0); err == nil {
		t.Fatal("unknown register write accepted")
	}
	if _, err := rf.Read(Register(-1)); err == nil {
		t.Fatal("unknown register read accepted")
	}
}

func TestInternalStatusPath(t *testing.T) {
	var rf RegisterFile
	rf.setStatus(StatusOK, 7)
	s, _ := rf.Read(RegStatus)
	e, _ := rf.Read(RegErrCount)
	if s != StatusOK || e != 7 {
		t.Fatalf("status path: %d/%d", s, e)
	}
}

func TestRegisterNames(t *testing.T) {
	names := map[Register]string{
		RegAlgorithm:     "ALG_SELECT",
		RegECCCapability: "ECC_T",
		RegStatus:        "STATUS",
	}
	for r, want := range names {
		if r.String() != want {
			t.Fatalf("register %d renders as %q", int(r), r.String())
		}
	}
	if !strings.HasPrefix(Register(42).String(), "REG_") {
		t.Fatal("unknown register should render with REG_ prefix")
	}
}
