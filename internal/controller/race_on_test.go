//go:build race

package controller

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
