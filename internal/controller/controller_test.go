package controller

import (
	"bytes"
	"errors"
	"testing"

	"xlnand/internal/bch"
	"xlnand/internal/nand"
	"xlnand/internal/stats"
)

// newRig builds a full-page controller rig (GF(2^16), 4 KB pages).
func newRig(t *testing.T, adaptive bool) *Controller {
	t.Helper()
	dev := nand.NewDevice(nand.DefaultCalibration(), 4, 1234)
	codec, err := bch.NewPageCodec()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Adaptive = adaptive
	c, err := New(dev, bch.NewHWCodec(codec, bch.DefaultHWConfig()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randPage(seed uint64) []byte {
	r := stats.NewRNG(seed)
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(r.Intn(256))
	}
	return data
}

func TestNewRejectsMismatchedCodec(t *testing.T) {
	dev := nand.NewDevice(nand.DefaultCalibration(), 1, 1)
	codec, err := bch.NewCodec(16, 1024, 3, 10) // protects 1024 bits, page has 32768
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(dev, bch.NewHWCodec(codec, bch.DefaultHWConfig()), DefaultConfig()); err == nil {
		t.Fatal("mismatched codec accepted")
	}
}

func TestWriteReadRoundTripFresh(t *testing.T) {
	c := newRig(t, true)
	data := randPage(1)
	wr, err := c.WritePage(0, 0, data)
	if err != nil {
		t.Fatal(err)
	}
	if wr.T < 3 || wr.T > 65 {
		t.Fatalf("capability %d outside codec range", wr.T)
	}
	rd, err := c.ReadPage(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rd.Data, data) {
		t.Fatal("data corrupted through write/read")
	}
	if rd.T != wr.T {
		t.Fatalf("read used t=%d, page written at t=%d", rd.T, wr.T)
	}
}

func TestFreshDeviceUsesMinimalT(t *testing.T) {
	// Paper: at fresh RBER 1e-6 with margin, t stays small (3-4).
	c := newRig(t, true)
	wr, err := c.WritePage(0, 0, randPage(2))
	if err != nil {
		t.Fatal(err)
	}
	if wr.T > 5 {
		t.Fatalf("fresh device assigned t=%d, expected near the t=3 floor", wr.T)
	}
}

func TestAgedBlockRaisesT(t *testing.T) {
	c := newRig(t, true)
	if err := c.Device().SetCycles(1, 1e6); err != nil {
		t.Fatal(err)
	}
	fresh, err := c.WritePage(0, 0, randPage(3))
	if err != nil {
		t.Fatal(err)
	}
	aged, err := c.WritePage(1, 0, randPage(4))
	if err != nil {
		t.Fatal(err)
	}
	if aged.T <= fresh.T {
		t.Fatalf("aged block t=%d not above fresh t=%d", aged.T, fresh.T)
	}
	if aged.T < 60 {
		t.Fatalf("EOL SV block got t=%d, paper says ≈ 65", aged.T)
	}
}

func TestAgedReadsCorrectErrors(t *testing.T) {
	c := newRig(t, true)
	if err := c.Device().SetCycles(0, 1e5); err != nil {
		t.Fatal(err)
	}
	data := randPage(5)
	if _, err := c.WritePage(0, 0, data); err != nil {
		t.Fatal(err)
	}
	totalCorrected := 0
	for i := 0; i < 5; i++ {
		rd, err := c.ReadPage(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rd.Data, data) {
			t.Fatal("corrected data mismatch")
		}
		totalCorrected += rd.Corrected
	}
	// RBER ≈ 1.8e-4 over ~33.5 kbit: ≈ 6 errors per read.
	if totalCorrected == 0 {
		t.Fatal("no errors corrected at 1e5 cycles; fault injection broken?")
	}
}

func TestDVWritesNeedLowerT(t *testing.T) {
	c := newRig(t, true)
	if err := c.Device().SetCycles(0, 1e6); err != nil {
		t.Fatal(err)
	}
	if err := c.Device().SetCycles(1, 1e6); err != nil {
		t.Fatal(err)
	}
	c.SetAlgorithm(nand.ISPPSV)
	sv, err := c.WritePage(0, 0, randPage(6))
	if err != nil {
		t.Fatal(err)
	}
	c.SetAlgorithm(nand.ISPPDV)
	dv, err := c.WritePage(1, 0, randPage(7))
	if err != nil {
		t.Fatal(err)
	}
	if dv.T >= sv.T {
		t.Fatalf("DV t=%d not below SV t=%d at EOL", dv.T, sv.T)
	}
	if dv.T > 20 {
		t.Fatalf("DV EOL t=%d, paper says ≈ 14", dv.T)
	}
	if dv.ParityBy >= sv.ParityBy {
		t.Fatal("DV parity not smaller than SV parity")
	}
	if dv.Latency.Program <= sv.Latency.Program {
		t.Fatal("DV program not slower than SV")
	}
}

func TestManualCapabilityRespected(t *testing.T) {
	c := newRig(t, false)
	c.SetCapability(10)
	wr, err := c.WritePage(0, 0, randPage(8))
	if err != nil {
		t.Fatal(err)
	}
	if wr.T != 10 {
		t.Fatalf("manual t=10 ignored, used %d", wr.T)
	}
	// Reconfigure before read: the page must still decode at t=10.
	c.SetCapability(30)
	rd, err := c.ReadPage(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rd.T != 10 {
		t.Fatalf("read did not recover written capability: %d", rd.T)
	}
}

func TestCapabilityClamped(t *testing.T) {
	c := newRig(t, false)
	c.SetCapability(200)
	wr, err := c.WritePage(0, 0, randPage(9))
	if err != nil {
		t.Fatal(err)
	}
	if wr.T != 65 {
		t.Fatalf("t=200 clamped to %d, want 65", wr.T)
	}
}

func TestWriteRejectsBadSize(t *testing.T) {
	c := newRig(t, true)
	if _, err := c.WritePage(0, 0, make([]byte, 100)); err == nil {
		t.Fatal("short page accepted")
	}
}

func TestUncorrectablePathAndStatus(t *testing.T) {
	c := newRig(t, false)
	c.SetCapability(3) // deliberately under-provisioned
	if err := c.Device().SetCycles(0, 1e6); err != nil {
		t.Fatal(err) // SV RBER 1e-3: ≈ 33 errors per codeword >> 3
	}
	if _, err := c.WritePage(0, 0, randPage(10)); err != nil {
		t.Fatal(err)
	}
	_, err := c.ReadPage(0, 0)
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("want ErrUncorrectable, got %v", err)
	}
	s, _ := c.Registers().Read(RegStatus)
	if s&StatusUncorrectable == 0 {
		t.Fatal("STATUS missing uncorrectable bit")
	}
	if c.Manager().Uncorrectables() == 0 {
		t.Fatal("manager did not observe the failure")
	}
}

func TestReadLatencyGrowsWithT(t *testing.T) {
	c := newRig(t, false)
	data := randPage(11)
	c.SetCapability(3)
	if _, err := c.WritePage(0, 0, data); err != nil {
		t.Fatal(err)
	}
	c.SetCapability(65)
	if _, err := c.WritePage(0, 1, data); err != nil {
		t.Fatal(err)
	}
	r3, err := c.ReadPage(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r65, err := c.ReadPage(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r65.Latency.Decode <= r3.Latency.Decode {
		t.Fatalf("decode latency t=65 (%v) not above t=3 (%v)",
			r65.Latency.Decode, r3.Latency.Decode)
	}
	if r3.Latency.TR != nand.PageReadTime {
		t.Fatalf("tR = %v, want %v", r3.Latency.TR, nand.PageReadTime)
	}
	if r3.Latency.Total() != r3.Latency.TR+r3.Latency.Transfer+r3.Latency.Decode {
		t.Fatal("latency total not additive")
	}
}

func TestWriteLatencyBreakdown(t *testing.T) {
	c := newRig(t, true)
	wr, err := c.WritePage(0, 0, randPage(12))
	if err != nil {
		t.Fatal(err)
	}
	l := wr.Latency
	if l.Total() != l.Encode+l.Transfer+l.Program {
		t.Fatal("write latency not additive")
	}
	if l.Program < 10*l.Encode {
		t.Fatalf("program (%v) should dominate encode (%v) per paper §6.3.3", l.Program, l.Encode)
	}
}

func TestAlgorithmRegisterDrivesDevice(t *testing.T) {
	c := newRig(t, true)
	c.SetAlgorithm(nand.ISPPDV)
	wr, err := c.WritePage(0, 0, randPage(13))
	if err != nil {
		t.Fatal(err)
	}
	if wr.Alg != nand.ISPPDV {
		t.Fatalf("algorithm register ignored: wrote with %v", wr.Alg)
	}
	if wr.Program.PreVerifies == 0 {
		t.Fatal("DV write shows no pre-verifies")
	}
}

func TestEraseBlockResetsPages(t *testing.T) {
	c := newRig(t, true)
	if _, err := c.WritePage(2, 0, randPage(14)); err != nil {
		t.Fatal(err)
	}
	if err := c.EraseBlock(2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadPage(2, 0); err == nil {
		t.Fatal("read of erased page succeeded")
	}
	if _, err := c.WritePage(2, 0, randPage(15)); err != nil {
		t.Fatalf("rewrite after erase failed: %v", err)
	}
}
