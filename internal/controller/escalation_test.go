package controller

import (
	"errors"
	"testing"
	"time"

	"xlnand/internal/nand"
)

// hopelessStress strips the soft read of its capture ability: no
// misread cell is ever flagged low-confidence, so min-sum faces
// confidently-wrong bits and every soft attempt fails. That forces the
// full escalation sequence onto the stage record.
func hopelessStress(c *Controller) {
	stress := c.Device().Stress()
	stress.SoftCapture = 0
	stress.SoftFalseWeak = 0
	c.Device().SetStress(stress)
}

// softStages filters a result's stage breakdown to the soft rungs.
func softStages(res ReadResult) []ReadStage {
	var out []ReadStage
	for _, st := range res.Stages {
		if st.Soft {
			out = append(out, st)
		}
	}
	return out
}

// TestSoftEscalationWidens pins the adaptive escalation mechanics on a
// page no read can save: every soft attempt fails, so the full
// escalation sequence is recorded — senses widen 3→5→7 (base + one
// bracket pair per failure), each stage paying its own sensing time.
func TestSoftEscalationWidens(t *testing.T) {
	steps := nand.DefaultStressConfig().RetrySteps
	c := softRig(t, steps+3, 103) // budget leaves room for 3 soft attempts
	c.SetSoftRetry(3)
	hopelessStress(c)
	prepareLadderPages(t, c, softCondition, 1)

	res, err := c.ReadPage(0, 0)
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("hopeless page decoded (err=%v); the escalation corner exercises nothing", err)
	}
	soft := softStages(res)
	if len(soft) != 3 {
		t.Fatalf("%d soft stages, want 3: %+v", len(soft), res.Stages)
	}
	base := c.Device().Stress().SoftSenses
	wantSenses := []int{base, base + 2, base + 4} // 3, 5, 7 with defaults
	total := 0
	for i, st := range soft {
		if st.Senses != wantSenses[i] {
			t.Fatalf("soft attempt %d sensed %d times, want %d", i, st.Senses, wantSenses[i])
		}
		if st.Latency.TR != time.Duration(st.Senses)*nand.PageReadTime {
			t.Fatalf("soft attempt %d charged %v of tR for %d senses", i, st.Latency.TR, st.Senses)
		}
		total += st.Senses
	}
	if res.SoftSenses != total {
		t.Fatalf("result accumulated %d senses, stages sum to %d", res.SoftSenses, total)
	}
	if res.Retries != steps+3 {
		t.Fatalf("retries %d, want %d (hard ladder + 3 soft)", res.Retries, steps+3)
	}
}

// TestSoftEscalationCapped pins the device-side cap: with SoftSensesMax
// lowered to 5, the third attempt stays at 5 senses instead of 7.
func TestSoftEscalationCapped(t *testing.T) {
	steps := nand.DefaultStressConfig().RetrySteps
	c := softRig(t, steps+3, 104)
	c.SetSoftRetry(3)
	hopelessStress(c)
	stress := c.Device().Stress()
	stress.SoftSensesMax = 5
	c.Device().SetStress(stress)
	prepareLadderPages(t, c, softCondition, 1)

	res, err := c.ReadPage(0, 0)
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("hopeless page decoded: %v", err)
	}
	soft := softStages(res)
	if len(soft) != 3 {
		t.Fatalf("%d soft stages, want 3", len(soft))
	}
	for i, want := range []int{3, 5, 5} {
		if soft[i].Senses != want {
			t.Fatalf("soft attempt %d sensed %d times, want %d (cap 5)", i, soft[i].Senses, want)
		}
	}
}

// TestSoftEscalationNoCapStaysFlat pins the opt-out: SoftSensesMax=0
// disables escalation entirely, so every attempt re-reads at the base
// width — the pre-escalation behaviour by configuration.
func TestSoftEscalationNoCapStaysFlat(t *testing.T) {
	steps := nand.DefaultStressConfig().RetrySteps
	c := softRig(t, steps+3, 105)
	c.SetSoftRetry(3)
	hopelessStress(c)
	stress := c.Device().Stress()
	stress.SoftSensesMax = stress.SoftSenses
	c.Device().SetStress(stress)
	prepareLadderPages(t, c, softCondition, 1)

	res, err := c.ReadPage(0, 0)
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("hopeless page decoded: %v", err)
	}
	for i, st := range softStages(res) {
		if st.Senses != 3 {
			t.Fatalf("soft attempt %d sensed %d times, want flat 3", i, st.Senses)
		}
	}
}

// TestSoftEscalationRecovers is the payoff test: in a corner where the
// base-width soft read loses pages, the escalating budget brings some
// back — and the save happens on a widened attempt.
func TestSoftEscalationRecovers(t *testing.T) {
	steps := nand.DefaultStressConfig().RetrySteps
	const pages = 12
	cond := softCondition
	// A mediocre capture rate leaves min-sum facing a fistful of
	// confidently-wrong bits per read; escalation compounds the capture
	// per bracket pair (0.5 → 0.75 → 0.875), which is the margin the
	// widened attempts win back.
	weakCapture := func(c *Controller) {
		stress := c.Device().Stress()
		stress.SoftCapture = 0.5
		c.Device().SetStress(stress)
	}

	// Baseline: single base-width soft attempt.
	narrow := softRig(t, steps+1, 61)
	weakCapture(narrow)
	prepareLadderPages(t, narrow, cond, pages)
	narrowLost := 0
	for i := 0; i < pages; i++ {
		if _, err := narrow.ReadPage(0, i); err != nil {
			if !errors.Is(err, ErrUncorrectable) {
				t.Fatal(err)
			}
			narrowLost++
		}
	}
	if narrowLost == 0 {
		t.Skip("base-width soft read saved everything; corner too mild to exercise escalation")
	}

	wide := softRig(t, steps+3, 61)
	wide.SetSoftRetry(3)
	weakCapture(wide)
	prepareLadderPages(t, wide, cond, pages)
	escalatedSaves := 0
	for i := 0; i < pages; i++ {
		res, err := wide.ReadPage(0, i)
		if err != nil {
			if !errors.Is(err, ErrUncorrectable) {
				t.Fatal(err)
			}
			continue
		}
		if !res.Soft {
			continue
		}
		soft := softStages(res)
		if len(soft) > 1 {
			last := soft[len(soft)-1]
			if last.Senses <= soft[0].Senses {
				t.Fatalf("page %d: escalation did not widen: %+v", i, soft)
			}
			escalatedSaves++
		}
	}
	if escalatedSaves == 0 {
		t.Fatal("escalating soft budget never saved a page on a widened attempt")
	}
}
