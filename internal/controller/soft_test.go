package controller

import (
	"errors"
	"testing"
	"time"

	"xlnand/internal/ldpc"
	"xlnand/internal/nand"
)

// softRig builds a controller over the soft-decision LDPC codec with an
// explicit hard-retry budget.
func softRig(t testing.TB, maxRetries int, seed uint64) *Controller {
	t.Helper()
	cal := nand.DefaultCalibration()
	dev := nand.NewDevice(cal, 4, seed)
	codec, err := ldpc.NewPageCodec()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxRetries = maxRetries
	c, err := New(dev, codec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// softCondition is the deep-bake corner the soft rung exists for: wear
// plus shelf time that pushes the raw error count past every hard
// reference shift but inside the soft-decision capability.
var softCondition = ladderCondition{"soft-bake", 2e7, 1e5}

// TestSoftRungRecovers is the end-to-end acceptance of the soft path: a
// page every hard ladder rung loses decodes through the soft-sense
// final rung, with the multi-sense latency accounted stage by stage.
func TestSoftRungRecovers(t *testing.T) {
	const pages = 6
	steps := nand.DefaultStressConfig().RetrySteps
	c := softRig(t, steps+1, 31) // budget one past the hard ladder: soft unlocked
	want := prepareLadderPages(t, c, softCondition, pages)

	// Same climate, hard-only budget: the ladder alone must lose pages
	// (otherwise this test exercises nothing).
	hardOnly := softRig(t, steps, 31)
	prepareLadderPages(t, hardOnly, softCondition, pages)
	hardLost := 0
	for i := 0; i < pages; i++ {
		if _, err := hardOnly.ReadPage(0, i); err != nil {
			if !errors.Is(err, ErrUncorrectable) {
				t.Fatal(err)
			}
			hardLost++
		}
	}
	if hardLost == 0 {
		t.Fatal("full hard ladder reads everything; the soft corner exercises nothing")
	}

	softSaved := 0
	for i := 0; i < pages; i++ {
		res, err := c.ReadPage(0, i)
		if err != nil {
			if !errors.Is(err, ErrUncorrectable) {
				t.Fatal(err)
			}
			continue
		}
		for j := range want[i] {
			if res.Data[j] != want[i][j] {
				t.Fatalf("page %d: soft recovery returned wrong data at byte %d", i, j)
			}
		}
		if !res.Soft {
			continue // a lucky hard rung got it; not a soft save
		}
		softSaved++
		senses := c.Device().Stress().SoftSenses
		if res.SoftSenses != senses {
			t.Fatalf("page %d: SoftSenses %d, want %d", i, res.SoftSenses, senses)
		}
		if res.Retries != steps+1 {
			t.Fatalf("page %d: %d retries, want %d (full hard walk + soft)", i, res.Retries, steps+1)
		}
		if len(res.Stages) != steps+2 {
			t.Fatalf("page %d: %d stages, want %d", i, len(res.Stages), steps+2)
		}
		last := res.Stages[len(res.Stages)-1]
		if !last.Soft || last.Senses != senses {
			t.Fatalf("page %d: final stage %+v not the soft rung", i, last)
		}
		// Latency: steps+1 hard senses pay one tR each, the soft stage
		// pays senses x tR; the soft stage's transfer is senses x the
		// hard stage transfer.
		wantTR := time.Duration(steps+1+senses) * nand.PageReadTime
		if res.Latency.TR != wantTR {
			t.Fatalf("page %d: total tR %v, want %v", i, res.Latency.TR, wantTR)
		}
		if last.Latency.Transfer != time.Duration(senses)*res.Stages[0].Latency.Transfer {
			t.Fatalf("page %d: soft transfer %v vs hard %v", i, last.Latency.Transfer, res.Stages[0].Latency.Transfer)
		}
		if last.Latency.Decode <= res.Stages[0].Latency.Decode {
			t.Fatalf("page %d: soft decode %v not above hard decode %v", i, last.Latency.Decode, res.Stages[0].Latency.Decode)
		}
	}
	if softSaved == 0 {
		t.Fatal("soft rung saved nothing in the deep-bake corner")
	}
	attempts, recovered := c.Manager().SoftStats()
	if attempts == 0 || recovered != softSaved {
		t.Fatalf("manager soft stats %d/%d, want recovered %d", recovered, attempts, softSaved)
	}
}

// TestSoftRungNeedsFullLadderBudget: a budget that does not clear the
// full hard ladder never pays multi-sense reads — the disturb-aware
// retry guard depends on this gate.
func TestSoftRungNeedsFullLadderBudget(t *testing.T) {
	steps := nand.DefaultStressConfig().RetrySteps
	c := softRig(t, steps+1, 77)
	const pages = 3
	prepareLadderPages(t, c, softCondition, pages)
	for i := 0; i < pages; i++ {
		res, err := c.ReadPageRetry(0, i, steps) // one short of unlocking soft
		if res.SoftSenses != 0 || res.Soft {
			t.Fatalf("page %d: capped budget went soft: %+v", i, res)
		}
		_ = err // losing the page is expected here
	}
	// Zero soft budget: even a deep walk stays hard.
	c.SetSoftRetry(0)
	for i := 0; i < pages; i++ {
		res, _ := c.ReadPageRetry(0, i, 1<<20)
		if res.SoftSenses != 0 {
			t.Fatalf("page %d: RegSoftRetry=0 still sensed soft", i)
		}
	}
	if got := c.SoftRetry(); got != 0 {
		t.Fatalf("SoftRetry = %d, want 0", got)
	}
}

// TestSoftRungDeepRetryBudget: the FTL's deep-retry budget (effectively
// unbounded) walks the hard ladder and then the soft rung.
func TestSoftRungDeepRetryBudget(t *testing.T) {
	steps := nand.DefaultStressConfig().RetrySteps
	c := softRig(t, 0, 13) // controller default budget: single-shot
	const pages = 4
	prepareLadderPages(t, c, softCondition, pages)
	saved := 0
	for i := 0; i < pages; i++ {
		res, err := c.ReadPageRetry(0, i, 1<<20)
		if err == nil && res.Soft {
			saved++
			if res.Retries != steps+1 {
				t.Fatalf("deep retry took %d attempts, want %d", res.Retries, steps+1)
			}
		}
	}
	if saved == 0 {
		t.Fatal("deep-retry budget never reached the soft rung")
	}
}

// TestLDPCControllerRoundTrip: the family works as the controller's
// primary codec on a healthy device — write, read, zero retries, level
// recovered from the stored spare geometry.
func TestLDPCControllerRoundTrip(t *testing.T) {
	c := softRig(t, 4, 5)
	data := retryPage(9, c.Device().Calibration().PageDataBytes)
	wr, err := c.WritePage(0, 0, data)
	if err != nil {
		t.Fatal(err)
	}
	if wr.T < 0 || wr.T > c.Codec().MaxLevel() {
		t.Fatalf("write level %d outside the rate range", wr.T)
	}
	rd, err := c.ReadPage(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rd.T != wr.T {
		t.Fatalf("read recovered level %d, wrote %d", rd.T, wr.T)
	}
	if rd.Retries != 0 || rd.Soft {
		t.Fatalf("fresh LDPC read needed recovery: %+v", rd)
	}
	for i := range data {
		if rd.Data[i] != data[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
	if fam, _ := c.Registers().Read(RegCodecFamily); fam != 1 {
		t.Fatalf("RegCodecFamily = %d, want 1 (LDPC)", fam)
	}
	if err := c.Registers().Write(RegCodecFamily, 0); err == nil {
		t.Fatal("RegCodecFamily accepted a write")
	}
}
