package controller

import (
	"testing"
	"time"

	"xlnand/internal/nand"
)

func newSocketRig(t *testing.T, depth int) (*Socket, *Controller) {
	t.Helper()
	c := newRig(t, true)
	s, err := NewSocket(c, depth)
	if err != nil {
		t.Fatal(err)
	}
	return s, c
}

func TestNewSocketValidatesDepth(t *testing.T) {
	c := newRig(t, true)
	if _, err := NewSocket(c, 0); err == nil {
		t.Fatal("zero-depth queue accepted")
	}
}

func TestSocketWriteReadFlow(t *testing.T) {
	s, _ := newSocketRig(t, 4)
	data := randPage(40)
	wr, err := s.Submit(Tx{Kind: TxWrite, Arrival: 0, Block: 0, Page: 0, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	if wr.Service <= 0 || wr.Wait != 0 {
		t.Fatalf("first write wait=%v service=%v", wr.Wait, wr.Service)
	}
	rd, err := s.Submit(Tx{Kind: TxRead, Arrival: wr.Complete, Block: 0, Page: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rd.Wait != 0 {
		t.Fatalf("read after completion should not wait, got %v", rd.Wait)
	}
	for i := range data {
		if rd.Data[i] != data[i] {
			t.Fatal("socket read returned wrong data")
		}
	}
	if s.Accepted != 2 || s.Rejected != 0 {
		t.Fatalf("stats: %d/%d", s.Accepted, s.Rejected)
	}
}

func TestSocketQueuingDelay(t *testing.T) {
	s, _ := newSocketRig(t, 8)
	data := randPage(41)
	// Two writes arriving at the same instant: the second must wait for
	// the full service time of the first.
	first, err := s.Submit(Tx{Kind: TxWrite, Arrival: 0, Block: 0, Page: 0, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Submit(Tx{Kind: TxWrite, Arrival: 0, Block: 0, Page: 1, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	if second.Wait != first.Service {
		t.Fatalf("second wait %v != first service %v", second.Wait, first.Service)
	}
	if s.AvgWait() != (first.Wait+second.Wait)/2 {
		t.Fatal("AvgWait accounting wrong")
	}
}

func TestSocketQueueFullPushback(t *testing.T) {
	s, _ := newSocketRig(t, 2)
	data := randPage(42)
	// Three simultaneous arrivals against depth 2: the third is pushed
	// back (OCP SCmdAccept deasserted).
	var page int
	submit := func() (TxResult, error) {
		tx := Tx{Kind: TxWrite, Arrival: 0, Block: 0, Page: page, Data: data}
		page++
		return s.Submit(tx)
	}
	if _, err := submit(); err != nil {
		t.Fatal(err)
	}
	if _, err := submit(); err != nil {
		t.Fatal(err)
	}
	if _, err := submit(); err == nil {
		t.Fatal("third transaction accepted into a depth-2 queue")
	}
	if s.Rejected != 1 {
		t.Fatalf("rejected = %d", s.Rejected)
	}
	// After the backlog drains, submissions succeed again.
	if _, err := s.Submit(Tx{Kind: TxWrite, Arrival: 10 * time.Second, Block: 0, Page: 5, Data: data}); err != nil {
		t.Fatalf("post-drain submit failed: %v", err)
	}
}

func TestSocketConfigTransaction(t *testing.T) {
	s, c := newSocketRig(t, 4)
	res, err := s.Submit(Tx{Kind: TxConfig, Arrival: 0, Reg: RegAlgorithm, Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Service <= 0 {
		t.Fatal("config transaction has no bus cost")
	}
	wr, err := c.WritePage(0, 0, randPage(43))
	if err != nil {
		t.Fatal(err)
	}
	if wr.Alg != nand.ISPPDV {
		t.Fatal("config transaction did not reach the register file")
	}
	// Config writes to read-only registers propagate the bus error.
	if _, err := s.Submit(Tx{Kind: TxConfig, Arrival: time.Second, Reg: RegStatus, Value: 1}); err == nil {
		t.Fatal("read-only register write accepted via socket")
	}
}

func TestSocketUnknownKind(t *testing.T) {
	s, _ := newSocketRig(t, 4)
	if _, err := s.Submit(Tx{Kind: TxKind(9)}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestSocketUtilisation(t *testing.T) {
	s, _ := newSocketRig(t, 8)
	data := randPage(44)
	// Saturating arrivals -> utilisation ~ 1.
	var at time.Duration
	for i := 0; i < 4; i++ {
		res, err := s.Submit(Tx{Kind: TxWrite, Arrival: at, Block: 0, Page: i, Data: data})
		if err != nil {
			t.Fatal(err)
		}
		_ = res
	}
	if u := s.Utilisation(); u < 0.95 || u > 1.0001 {
		t.Fatalf("saturated utilisation = %v", u)
	}
	if s.MaxDepth < 2 {
		t.Fatalf("max depth %d under saturation", s.MaxDepth)
	}
}

func TestSocketIdleUtilisation(t *testing.T) {
	s, _ := newSocketRig(t, 4)
	if s.Utilisation() != 0 || s.AvgWait() != 0 {
		t.Fatal("idle socket reports activity")
	}
	data := randPage(45)
	// Widely spaced arrivals -> low utilisation.
	if _, err := s.Submit(Tx{Kind: TxWrite, Arrival: 0, Block: 0, Page: 0, Data: data}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Tx{Kind: TxWrite, Arrival: time.Second, Block: 0, Page: 1, Data: data}); err != nil {
		t.Fatal(err)
	}
	if u := s.Utilisation(); u > 0.05 {
		t.Fatalf("sparse utilisation = %v", u)
	}
}

func TestSocketKindString(t *testing.T) {
	if TxRead.String() != "read" || TxWrite.String() != "write" ||
		TxConfig.String() != "config" || TxKind(7).String() != "tx?" {
		t.Fatal("kind names drifted")
	}
}
