package controller

import (
	"errors"
	"fmt"
	"time"

	"xlnand/internal/ecc"
	"xlnand/internal/nand"
	"xlnand/internal/timing"
)

// ErrUncorrectable is surfaced when the decoder cannot repair a page.
var ErrUncorrectable = errors.New("controller: uncorrectable page")

// Controller drives one NAND device through a family-generic adaptive
// codec (BCH or LDPC behind the ecc.Codec interface). It owns the page
// buffer, the register file and (optionally) the reliability manager,
// and accounts architectural latency for every operation with the
// paper's timing model: page read time tR, bus transfer, and the
// codec's own latency descriptors.
type Controller struct {
	dev   *nand.Device
	codec ecc.Codec
	// ml is non-nil when the codec calibrates decode cost per error
	// weight (ecc.MeasuredLatency); successful decodes then book the
	// measured duration instead of the flat estimate.
	ml   ecc.MeasuredLatency
	bus  timing.FlashBus
	regs RegisterFile
	mgr  *ReliabilityManager

	pageBuffer []byte // controller-side page RAM (Fig. 1), size of one codeword
	readBuffer []byte // codeword staging RAM for the read path (pooled across reads)
	llrBuffer  []int8 // per-bit confidence staging for soft-sense reads (soft codecs only)

	// cleanSeq records, per physical page, the device content stamp of
	// the last codeword this controller encoded and programmed there.
	// When a sense comes back with zero injected bit errors AND the
	// stored content still carries that stamp, the decode verdict is
	// fully determined — a valid codeword decodes to itself with zero
	// corrections — so the read path skips the syndrome walk outright
	// (the FEMU-style emulation fast path). Any reprogram, through this
	// controller or not, bumps the device stamp and voids the mark.
	cleanSeq []uint64
	// cleanHits counts reads resolved by the clean-read short-circuit —
	// the observability layer surfaces it per drive so fleet reports
	// show how much of the read load the emulation fast path absorbs.
	cleanHits uint64
	// decodeWarm tracks (one bit per capability level) whether this
	// controller has run the shared codec's real decoder at that level.
	// The first clean read per level decodes anyway: the codec builds
	// its per-capability machinery lazily on first use, and warming it
	// on the predictable first read keeps that construction out of the
	// steady-state (zero-allocation) path a rare corrupted read would
	// otherwise hit.
	decodeWarm uint64
}

// Config parametrises controller construction.
type Config struct {
	Bus timing.FlashBus
	// TargetUBERExp initialises RegTargetUBERExp (e.g. 11 for 1e-11).
	TargetUBERExp uint32
	// InitialLevel initialises RegECCCapability (clamped to the codec's
	// level range; 0 selects the codec's worst case).
	InitialLevel uint32
	// Adaptive enables the reliability manager from the start.
	Adaptive bool
	// MaxRetries initialises RegReadRetry: how many re-reads at shifted
	// read references a failing decode may trigger (0 disables staged
	// recovery; negative is clamped to 0).
	MaxRetries int
	// SoftRetries initialises RegSoftRetry: how many soft-sense decode
	// attempts the recovery ladder's final rung may make once every hard
	// reference shift has failed (ignored by codecs without a soft
	// path; negative is clamped to 0).
	SoftRetries int
}

// DefaultConfig returns the paper's baseline controller configuration:
// default bus, UBER target 1e-11, worst-case initial capability (until
// the manager relaxes it), manager enabled, a 4-step read-recovery
// ladder. SoftRetries arms one soft-sense attempt as the ladder's final
// rung, but the rung only engages on reads whose budget clears the
// device's FULL hard ladder — with the default 4-retry budget that is
// the FTL's deep-retry path; raise MaxRetries past the device's
// RetrySteps (e.g. WithReadRetry(7) on the default stress model) to
// put it on the ordinary read path.
func DefaultConfig() Config {
	return Config{
		Bus:           timing.DefaultFlashBus(),
		TargetUBERExp: 11,
		InitialLevel:  0,
		Adaptive:      true,
		MaxRetries:    4,
		SoftRetries:   1,
	}
}

// New wires a controller to a device and an adaptive codec. The codec's
// message length must match the device page size.
func New(dev *nand.Device, codec ecc.Codec, cfg Config) (*Controller, error) {
	if codec.DataBits() != dev.Calibration().PageDataBits() {
		return nil, fmt.Errorf("controller: codec protects %d bits but page holds %d",
			codec.DataBits(), dev.Calibration().PageDataBits())
	}
	maxParity, err := codec.ParityBytes(codec.MaxLevel())
	if err != nil {
		return nil, err
	}
	if maxParity > dev.Calibration().PageSpareBytes {
		return nil, fmt.Errorf("controller: worst-case parity %d B exceeds spare area %d B",
			maxParity, dev.Calibration().PageSpareBytes)
	}
	bufBytes := dev.Calibration().PageDataBytes + dev.Calibration().PageSpareBytes
	c := &Controller{
		dev:        dev,
		codec:      codec,
		bus:        cfg.Bus,
		pageBuffer: make([]byte, bufBytes),
		readBuffer: make([]byte, bufBytes),
		cleanSeq:   make([]uint64, dev.Blocks()*dev.PagesPerBlock()),
	}
	c.ml, _ = codec.(ecc.MeasuredLatency)
	if codec.SupportsSoft() {
		c.llrBuffer = make([]int8, bufBytes*8)
	}
	if err := c.regs.Write(RegTargetUBERExp, cfg.TargetUBERExp); err != nil {
		return nil, err
	}
	lvl := int(cfg.InitialLevel)
	if lvl == 0 {
		lvl = codec.MaxLevel()
	}
	if err := c.regs.Write(RegECCCapability, uint32(codec.ClampLevel(lvl))); err != nil {
		return nil, err
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if err := c.regs.Write(RegReadRetry, uint32(cfg.MaxRetries)); err != nil {
		return nil, err
	}
	if cfg.SoftRetries < 0 {
		cfg.SoftRetries = 0
	}
	if err := c.regs.Write(RegSoftRetry, uint32(cfg.SoftRetries)); err != nil {
		return nil, err
	}
	c.regs.setFamily(uint32(codec.Family()))
	c.mgr = NewReliabilityManager(codec, c.targetUBER())
	if cfg.Adaptive {
		if err := c.regs.Write(RegAdaptive, 1); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Registers exposes the register file (the socket-visible configuration
// surface).
func (c *Controller) Registers() *RegisterFile { return &c.regs }

// Manager exposes the reliability manager for inspection.
func (c *Controller) Manager() *ReliabilityManager { return c.mgr }

// Device exposes the attached NAND device.
func (c *Controller) Device() *nand.Device { return c.dev }

// CleanHits reports how many reads the clean-read short-circuit
// resolved without a decoder walk. Like the rest of the controller it
// must be read with the die quiescent (or via the dispatcher's
// control-plane hop).
func (c *Controller) CleanHits() uint64 { return c.cleanHits }

// Codec exposes the attached adaptive codec.
func (c *Controller) Codec() ecc.Codec { return c.codec }

// targetUBER decodes RegTargetUBERExp.
func (c *Controller) targetUBER() float64 {
	exp, _ := c.regs.Read(RegTargetUBERExp)
	u := 1.0
	for i := uint32(0); i < exp; i++ {
		u /= 10
	}
	return u
}

// algorithm decodes RegAlgorithm.
func (c *Controller) algorithm() nand.Algorithm {
	v, _ := c.regs.Read(RegAlgorithm)
	if v != 0 {
		return nand.ISPPDV
	}
	return nand.ISPPSV
}

// SetAlgorithm writes RegAlgorithm — the runtime program-algorithm
// selection this paper introduces.
func (c *Controller) SetAlgorithm(alg nand.Algorithm) {
	v := uint32(0)
	if alg == nand.ISPPDV {
		v = 1
	}
	// Only writable registers involved; error impossible by construction.
	_ = c.regs.Write(RegAlgorithm, v)
}

// SetCapability writes RegECCCapability (clamped to the codec's level
// range — t for BCH, rate index for LDPC) and disables the adaptive
// manager's override for subsequent operations.
func (c *Controller) SetCapability(level int) {
	_ = c.regs.Write(RegECCCapability, uint32(c.codec.ClampLevel(level)))
	_ = c.regs.Write(RegAdaptive, 0)
}

// SetAdaptive re-enables the reliability manager.
func (c *Controller) SetAdaptive(on bool) {
	v := uint32(0)
	if on {
		v = 1
	}
	_ = c.regs.Write(RegAdaptive, v)
}

// currentLevel resolves the capability level for the next operation: the
// manager's choice in adaptive mode, the register value otherwise.
func (c *Controller) currentLevel(blockIdx int) int {
	if v, _ := c.regs.Read(RegAdaptive); v != 0 {
		cycles, err := c.dev.Cycles(blockIdx)
		if err != nil {
			cycles = 0
		}
		return c.mgr.SelectLevel(c.algorithm(), cycles)
	}
	v, _ := c.regs.Read(RegECCCapability)
	return c.codec.ClampLevel(int(v))
}

// WriteLatency breaks down one page write.
type WriteLatency struct {
	Encode   time.Duration
	Transfer time.Duration
	Program  time.Duration
}

// Total returns the end-to-end (unpipelined) write latency.
func (l WriteLatency) Total() time.Duration { return l.Encode + l.Transfer + l.Program }

// WriteResult reports one page write.
type WriteResult struct {
	// T is the capability level the page was encoded at (the BCH
	// correction capability t, or the LDPC rate index).
	T        int
	Alg      nand.Algorithm
	Latency  WriteLatency
	Program  nand.ProgramResult
	ParityBy int
}

// WritePage encodes data (exactly one page) at the current capability and
// programs it with the current algorithm. The modelled latency covers
// encode, codeword transfer and the ISPP run.
func (c *Controller) WritePage(blockIdx, pageIdx int, data []byte) (WriteResult, error) {
	var res WriteResult
	if len(data) != c.dev.Calibration().PageDataBytes {
		return res, fmt.Errorf("controller: page write needs %d bytes, got %d",
			c.dev.Calibration().PageDataBytes, len(data))
	}
	res.T = c.currentLevel(blockIdx)
	res.Alg = c.algorithm()
	pb, err := c.codec.ParityBytes(res.T)
	if err != nil {
		return res, err
	}
	// Page buffer staging (Fig. 1: the embedded RAM between socket and
	// flash interface): the parity is encoded straight into the buffer's
	// spare region, so the steady-state write path allocates nothing —
	// the device copies on Program.
	copy(c.pageBuffer, data)
	parity := c.pageBuffer[len(data) : len(data)+pb]
	if err := c.codec.EncodeInto(res.T, parity, data); err != nil {
		return res, err
	}
	res.ParityBy = len(parity)

	prog, err := c.dev.Program(blockIdx, pageIdx, data, parity, res.Alg)
	if err != nil {
		c.regs.setStatus(StatusProgramFail, 0)
		return res, err
	}
	res.Program = prog
	// The page now stores a codeword this controller encoded: stamp it
	// clean so error-free senses can skip the decode.
	if idx := blockIdx*c.dev.PagesPerBlock() + pageIdx; idx >= 0 && idx < len(c.cleanSeq) {
		c.cleanSeq[idx] = c.dev.LastProgramSeq()
	}
	res.Latency = WriteLatency{
		Encode:   c.codec.EncodeLatency(res.T),
		Transfer: c.bus.Transfer(len(data) + len(parity)),
		Program:  prog.Duration,
	}
	c.regs.setStatus(StatusOK, 0)
	return res, nil
}

// ReadLatency breaks down one page read. For a recovered read the
// components are sums across every ladder stage (each retry pays full
// tR + transfer + decode; a soft stage pays one tR and transfer per
// component sense); ReadResult.Stages holds the per-stage split.
type ReadLatency struct {
	TR       time.Duration // array-to-register sensing
	Transfer time.Duration // codeword over the flash bus
	Decode   time.Duration // decoder occupancy at the codec clock
}

// Total returns the end-to-end read latency.
func (l ReadLatency) Total() time.Duration { return l.TR + l.Transfer + l.Decode }

// ReadStage records one sense attempt of the recovery ladder.
type ReadStage struct {
	// Step is the read-reference ladder step the page was sensed at.
	Step int
	// Soft marks the soft-decision rung: a multi-sense read feeding the
	// codec's soft-input decoder.
	Soft bool
	// Senses is the number of component array senses this attempt paid
	// (1 for a hard read, StressConfig.SoftSenses for a soft read).
	Senses int
	// Latency is this attempt's full cost (tR + transfer + decode,
	// summed over its component senses).
	Latency ReadLatency
}

// ReadResult reports one page read.
type ReadResult struct {
	Data []byte
	// T is the capability level recovered from the stored parity
	// geometry (BCH t, or LDPC rate index).
	T         int
	Alg       nand.Algorithm
	Corrected int
	// Retries counts the decode attempts beyond the first (soft-rung
	// attempts included); 0 means the read at the predicted reference
	// offset decoded immediately.
	Retries int
	// AppliedOffset is the read-reference ladder step of the final
	// attempt — the one that decoded, or the last failure.
	AppliedOffset int
	// Soft reports that the final attempt was the soft-decision rung;
	// SoftSenses is the total number of component array senses the soft
	// rung paid (0 when the read never went soft).
	Soft       bool
	SoftSenses int
	// BlockReads is the block's reads-since-erase counter after this
	// read (its senses included) — the disturb telemetry the FTL's
	// retry guard budgets against without a control-plane round trip.
	BlockReads float64
	// Latency is the end-to-end cost, summed over every ladder stage.
	Latency ReadLatency
	// Stages breaks the ladder down per attempt. It is nil for
	// single-attempt reads (the common case stays allocation-lean):
	// the one stage is then exactly Latency at step AppliedOffset.
	Stages []ReadStage
}

// maxLadderSlots bounds the attempt-order scratch; devices calibrate
// far fewer ladder steps than this.
const maxLadderSlots = 32

// ReadPage reads, transfers and decodes a page through the staged
// recovery ladder at the controller's configured retry budget
// (RegReadRetry).
func (c *Controller) ReadPage(blockIdx, pageIdx int) (ReadResult, error) {
	v, _ := c.regs.Read(RegReadRetry)
	return c.ReadPageRetry(blockIdx, pageIdx, int(v))
}

// noteStage accumulates one ladder attempt into the result: latency
// components, the per-stage breakdown (materialised lazily once a second
// attempt happens), retry count and applied offset.
func (res *ReadResult) noteStage(step int, soft bool, senses, attempt, capHint int, stage ReadLatency) {
	res.Latency.TR += stage.TR
	res.Latency.Transfer += stage.Transfer
	res.Latency.Decode += stage.Decode
	if attempt == 1 {
		// The ladder engaged: materialise the per-stage breakdown,
		// back-filling the first attempt.
		first := ReadStage{Step: res.AppliedOffset, Soft: res.Soft, Senses: 1, Latency: res.Latency}
		first.Latency.TR -= stage.TR
		first.Latency.Transfer -= stage.Transfer
		first.Latency.Decode -= stage.Decode
		res.Stages = append(make([]ReadStage, 0, capHint), first)
	}
	if res.Stages != nil {
		res.Stages = append(res.Stages, ReadStage{Step: step, Soft: soft, Senses: senses, Latency: stage})
	}
	res.Retries = attempt
	res.AppliedOffset = step
	res.Soft = soft
	if soft {
		res.SoftSenses += senses
	}
}

// ReadPageRetry is the read-recovery pipeline with an explicit retry
// budget. The first sense happens at the read-reference offset the
// reliability manager's calibration cache predicts for the block's wear;
// a decode failure walks the remaining ladder steps (nominal references
// first, then deeper shifts) until the decode succeeds or the budget is
// exhausted. Every attempt pays the full tR + transfer + decode latency
// and counts against the block's read-disturb stress.
//
// When the budget extends past the deepest reference shift and the codec
// has a soft-decision path, the ladder's final rung is a soft-sense
// read: the device senses the page at adjacent references (each
// component sense paying tR and disturb stress), derives per-bit
// confidence, and the codec's soft-input decoder takes over — the
// recovery endgame for pages no hard reference shift can save. The
// decode runs at the capability level the page was written with,
// recovered from the stored parity length — reconfiguring the
// controller between write and read therefore never corrupts old
// pages. Uncorrectable pages return ErrUncorrectable with the final
// attempt's raw data attached.
func (c *Controller) ReadPageRetry(blockIdx, pageIdx, maxRetries int) (ReadResult, error) {
	return c.readPageRetryInto(blockIdx, pageIdx, maxRetries, nil)
}

// ReadPageRetryInto is ReadPageRetry with a caller-provided destination
// for the decoded page: when dst is at least the page's data size, the
// result's Data aliases dst and the steady-state read path performs no
// allocation. A nil or short dst falls back to allocating, preserving
// ReadPageRetry semantics exactly.
func (c *Controller) ReadPageRetryInto(blockIdx, pageIdx, maxRetries int, dst []byte) (ReadResult, error) {
	return c.readPageRetryInto(blockIdx, pageIdx, maxRetries, dst)
}

// claimData materialises a read result's data: into dst when it is big
// enough, freshly allocated otherwise.
func claimData(dst, src []byte) []byte {
	if len(dst) >= len(src) {
		dst = dst[:len(src)]
	} else {
		dst = make([]byte, len(src))
	}
	copy(dst, src)
	return dst
}

func (c *Controller) readPageRetryInto(blockIdx, pageIdx, maxRetries int, dst []byte) (ReadResult, error) {
	var res ReadResult
	res.Alg = c.algorithm()
	if alg, err := c.dev.WrittenAlgorithm(blockIdx, pageIdx); err == nil {
		res.Alg = alg // report the algorithm the page actually carries
	}
	cycles, err := c.dev.Cycles(blockIdx)
	if err != nil {
		cycles = 0 // out-of-range block: the first sense will report it
	}

	// Ladder order: the calibrated prediction first, then every other
	// step from the nominal references upward. A mispredicted offset
	// therefore re-tries the nominal read before paying deeper shifts.
	// A zero budget is the true pre-recovery single-shot path: nominal
	// references, no prediction — with no retry to fall back on, a
	// stale cache entry (e.g. taught by an FTL deep-retry rescue) must
	// not be able to over-shift the only sense the read gets.
	steps := c.dev.RetrySteps()
	if steps < 0 {
		steps = 0 // degenerate stress config: only the nominal sense exists
	}
	if steps >= maxLadderSlots {
		steps = maxLadderSlots - 1
	}
	pred := 0
	if maxRetries > 0 {
		pred = c.mgr.PredictStep(cycles)
		if pred > steps {
			pred = steps
		}
		if pred < 0 {
			pred = 0
		}
	}
	var order [maxLadderSlots]int
	order[0] = pred
	n := 1
	for k := 0; k <= steps; k++ {
		if k != pred {
			order[n] = k
			n++
		}
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	if n > maxRetries+1 {
		n = maxRetries + 1
	}
	// Soft-decision rung: available only when the budget extends past
	// the full hard ladder — it is the rung after the deepest reference
	// shift, never a substitute for one. A capped budget (e.g. the
	// FTL's disturb-aware retry guard) therefore skips the multi-sense
	// walk entirely.
	softAttempts := 0
	if rem := maxRetries + 1 - n; rem > 0 && c.codec.SupportsSoft() {
		v, _ := c.regs.Read(RegSoftRetry)
		softAttempts = int(v)
		if softAttempts > rem {
			softAttempts = rem
		}
	}
	capHint := n + softAttempts

	var level int
	attempt := 0
	for ; attempt < n; attempt++ {
		step := order[attempt]
		nData, nSpare, rerr := c.dev.ReadInto(blockIdx, pageIdx, step, c.readBuffer)
		if rerr != nil {
			return res, rerr
		}
		if attempt == 0 {
			level, err = c.codec.LevelForSpare(nSpare)
			if err != nil {
				return res, fmt.Errorf("controller: page %d.%d spare (%d bytes) does not map to a supported capability: %w",
					blockIdx, pageIdx, nSpare, err)
			}
			res.T = level
		}
		codeword := c.readBuffer[:nData+nSpare]
		var nErr int
		var decErr error
		if seq, flips := c.dev.LastSense(); flips == 0 && seq != 0 &&
			c.cleanSeq[blockIdx*c.dev.PagesPerBlock()+pageIdx] == seq &&
			c.decodeWarm&(1<<(uint(level)&63)) != 0 {
			// Clean-read short-circuit: the sense injected no errors and
			// the stored bytes are the codeword this controller encoded,
			// so the decoder would compute an all-zero syndrome and
			// return the buffer unchanged — report that verdict without
			// walking the page. Bit-identical to the full decode: same
			// result fields, same latency booking, no RNG involved.
			nErr, decErr = 0, nil
			c.cleanHits++
		} else {
			nErr, decErr = c.codec.Decode(level, codeword)
			c.decodeWarm |= 1 << (uint(level) & 63)
		}

		// A successful decode's cost is booked at the observed error
		// weight when the codec calibrates it (measured min-sum
		// iterations); failures and flat-latency codecs keep the
		// worst-case estimate.
		decLat := c.codec.DecodeLatency(level, nErr == 0 && decErr == nil)
		if c.ml != nil && decErr == nil {
			decLat = c.ml.MeasuredDecodeLatency(level, nErr)
		}
		stage := ReadLatency{
			TR:       nand.PageReadTime,
			Transfer: c.bus.Transfer(len(codeword)),
			Decode:   decLat,
		}
		res.noteStage(step, false, 1, attempt, capHint, stage)

		if decErr == nil {
			res.Corrected = nErr
			res.Data = claimData(dst, codeword[:nData])
			c.regs.setStatus(StatusOK, uint32(nErr))
			c.mgr.ObserveDecode(res.Alg, c.codewordBits(level), nErr)
			c.mgr.ObserveRetry(cycles, step, attempt, true)
			c.noteBlockReads(blockIdx, &res)
			return res, nil
		}
		if attempt == n-1 && softAttempts == 0 {
			// Budget exhausted: surface the final attempt's raw data.
			res.Data = claimData(dst, codeword[:nData])
		}
	}

	// Final rung: soft-sense reads feeding the soft-input decoder. The
	// multi-sense read centers one step short of the deepest reference
	// shift (its component senses bracket the center, covering the deep
	// end of the ladder) — the region retention drift pushed the cells
	// into, which is the regime the soft path exists for. Repeat
	// attempts escalate adaptively: each min-sum failure widens the
	// next read by one bracket pair (3→5→7 senses with the defaults, up
	// to the device's SoftSensesMax), paying the wider read's full
	// sensing time and disturb stress.
	softStep := steps - 1
	if softStep < 0 {
		softStep = 0
	}
	stress := c.dev.Stress()
	softBase := stress.SoftSenses
	if softBase < 1 {
		softBase = 1
	}
	for s := 0; s < softAttempts; s, attempt = s+1, attempt+1 {
		want := softBase + 2*s // ReadSoftN clamps at the device's cap
		nData, nSpare, senses, rerr := c.dev.ReadSoftN(blockIdx, pageIdx, softStep, want, c.readBuffer, c.llrBuffer)
		if rerr != nil {
			return res, rerr
		}
		codeword := c.readBuffer[:nData+nSpare]
		nErr, decErr := c.codec.DecodeSoft(level, codeword, c.llrBuffer[:(nData+nSpare)*8])

		stage := ReadLatency{
			TR:       time.Duration(senses) * nand.PageReadTime,
			Transfer: time.Duration(senses) * c.bus.Transfer(len(codeword)),
			Decode:   c.codec.SoftDecodeLatency(level),
		}
		res.noteStage(softStep, true, senses, attempt, capHint, stage)

		if decErr == nil {
			res.Corrected = nErr
			res.Data = claimData(dst, codeword[:nData])
			c.regs.setStatus(StatusOK, uint32(nErr))
			c.mgr.ObserveDecode(res.Alg, c.codewordBits(level), nErr)
			c.mgr.ObserveRetry(cycles, softStep, attempt, true)
			c.mgr.ObserveSoft(true)
			c.noteBlockReads(blockIdx, &res)
			return res, nil
		}
		c.mgr.ObserveSoft(false)
		if s == softAttempts-1 {
			res.Data = claimData(dst, codeword[:nData])
		}
	}

	c.regs.setStatus(StatusUncorrectable, 0)
	c.mgr.ObserveUncorrectable()
	c.mgr.ObserveRetry(cycles, res.AppliedOffset, res.Retries, false)
	c.noteBlockReads(blockIdx, &res)
	return res, fmt.Errorf("%w: block %d page %d (after %d retries)",
		ErrUncorrectable, blockIdx, pageIdx, res.Retries)
}

// noteBlockReads attaches the block's post-read disturb counter to the
// result (upstream retry guards budget against it without a separate
// control-plane hop).
func (c *Controller) noteBlockReads(blockIdx int, res *ReadResult) {
	if r, err := c.dev.BlockReads(blockIdx); err == nil {
		res.BlockReads = r
	}
}

// codewordBits resolves the codeword length for telemetry; level is
// always valid here (it decoded a parity geometry already).
func (c *Controller) codewordBits(level int) int {
	n, err := c.codec.CodewordBits(level)
	if err != nil {
		return c.codec.DataBits()
	}
	return n
}

// SetReadRetry reconfigures the recovery ladder budget (RegReadRetry).
func (c *Controller) SetReadRetry(n int) {
	if n < 0 {
		n = 0
	}
	_ = c.regs.Write(RegReadRetry, uint32(n))
}

// ReadRetry returns the configured recovery ladder budget.
func (c *Controller) ReadRetry() int {
	v, _ := c.regs.Read(RegReadRetry)
	return int(v)
}

// SetSoftRetry reconfigures the soft-decision rung budget (RegSoftRetry):
// how many soft-sense decode attempts may follow an exhausted hard
// ladder. It has no effect on codecs without a soft path.
func (c *Controller) SetSoftRetry(n int) {
	if n < 0 {
		n = 0
	}
	_ = c.regs.Write(RegSoftRetry, uint32(n))
}

// SoftRetry returns the configured soft-decision rung budget.
func (c *Controller) SoftRetry() int {
	v, _ := c.regs.Read(RegSoftRetry)
	return int(v)
}

// EraseBlock erases a device block through the controller.
func (c *Controller) EraseBlock(blockIdx int) error {
	return c.dev.Erase(blockIdx)
}
