package controller

import (
	"errors"
	"fmt"
	"time"

	"xlnand/internal/bch"
	"xlnand/internal/nand"
	"xlnand/internal/timing"
)

// ErrUncorrectable is surfaced when the decoder cannot repair a page.
var ErrUncorrectable = errors.New("controller: uncorrectable page")

// Controller drives one NAND device through the adaptive BCH codec. It
// owns the page buffer, the register file and (optionally) the
// reliability manager, and accounts architectural latency for every
// operation with the paper's timing model: page read time tR, bus
// transfer, and codec cycles at 80 MHz.
type Controller struct {
	dev   *nand.Device
	codec *bch.Codec
	hw    bch.HWConfig
	bus   timing.FlashBus
	regs  RegisterFile
	mgr   *ReliabilityManager

	pageBuffer []byte // controller-side page RAM (Fig. 1), size of one codeword
	readBuffer []byte // codeword staging RAM for the read path (pooled across reads)
}

// Config parametrises controller construction.
type Config struct {
	HW  bch.HWConfig
	Bus timing.FlashBus
	// TargetUBERExp initialises RegTargetUBERExp (e.g. 11 for 1e-11).
	TargetUBERExp uint32
	// InitialT initialises RegECCCapability.
	InitialT uint32
	// Adaptive enables the reliability manager from the start.
	Adaptive bool
	// MaxRetries initialises RegReadRetry: how many re-reads at shifted
	// read references a failing decode may trigger (0 disables staged
	// recovery; negative is clamped to 0).
	MaxRetries int
}

// DefaultConfig returns the paper's baseline controller configuration:
// default codec hardware at 80 MHz, default bus, UBER target 1e-11,
// t = 65 (worst-case until the manager relaxes it), manager enabled,
// a 4-step read-recovery ladder.
func DefaultConfig() Config {
	return Config{
		HW:            bch.DefaultHWConfig(),
		Bus:           timing.DefaultFlashBus(),
		TargetUBERExp: 11,
		InitialT:      65,
		Adaptive:      true,
		MaxRetries:    4,
	}
}

// New wires a controller to a device and an adaptive codec. The codec's
// message length must match the device page size.
func New(dev *nand.Device, codec *bch.Codec, cfg Config) (*Controller, error) {
	if codec.K != dev.Calibration().PageDataBits() {
		return nil, fmt.Errorf("controller: codec protects %d bits but page holds %d",
			codec.K, dev.Calibration().PageDataBits())
	}
	maxParity, err := codec.ParityBytes(codec.TMax)
	if err != nil {
		return nil, err
	}
	if maxParity > dev.Calibration().PageSpareBytes {
		return nil, fmt.Errorf("controller: worst-case parity %d B exceeds spare area %d B",
			maxParity, dev.Calibration().PageSpareBytes)
	}
	c := &Controller{
		dev:        dev,
		codec:      codec,
		hw:         cfg.HW,
		bus:        cfg.Bus,
		pageBuffer: make([]byte, dev.Calibration().PageDataBytes+dev.Calibration().PageSpareBytes),
		readBuffer: make([]byte, dev.Calibration().PageDataBytes+dev.Calibration().PageSpareBytes),
	}
	if err := c.regs.Write(RegTargetUBERExp, cfg.TargetUBERExp); err != nil {
		return nil, err
	}
	if err := c.regs.Write(RegECCCapability, cfg.InitialT); err != nil {
		return nil, err
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if err := c.regs.Write(RegReadRetry, uint32(cfg.MaxRetries)); err != nil {
		return nil, err
	}
	c.mgr = NewReliabilityManager(codec, c.targetUBER())
	if cfg.Adaptive {
		if err := c.regs.Write(RegAdaptive, 1); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Registers exposes the register file (the socket-visible configuration
// surface).
func (c *Controller) Registers() *RegisterFile { return &c.regs }

// Manager exposes the reliability manager for inspection.
func (c *Controller) Manager() *ReliabilityManager { return c.mgr }

// Device exposes the attached NAND device.
func (c *Controller) Device() *nand.Device { return c.dev }

// targetUBER decodes RegTargetUBERExp.
func (c *Controller) targetUBER() float64 {
	exp, _ := c.regs.Read(RegTargetUBERExp)
	u := 1.0
	for i := uint32(0); i < exp; i++ {
		u /= 10
	}
	return u
}

// algorithm decodes RegAlgorithm.
func (c *Controller) algorithm() nand.Algorithm {
	v, _ := c.regs.Read(RegAlgorithm)
	if v != 0 {
		return nand.ISPPDV
	}
	return nand.ISPPSV
}

// SetAlgorithm writes RegAlgorithm — the runtime program-algorithm
// selection this paper introduces.
func (c *Controller) SetAlgorithm(alg nand.Algorithm) {
	v := uint32(0)
	if alg == nand.ISPPDV {
		v = 1
	}
	// Only writable registers involved; error impossible by construction.
	_ = c.regs.Write(RegAlgorithm, v)
}

// SetCapability writes RegECCCapability (clamped to the codec range) and
// disables the adaptive manager's override for subsequent operations.
func (c *Controller) SetCapability(t int) {
	_ = c.regs.Write(RegECCCapability, uint32(c.codec.ClampT(t)))
	_ = c.regs.Write(RegAdaptive, 0)
}

// SetAdaptive re-enables the reliability manager.
func (c *Controller) SetAdaptive(on bool) {
	v := uint32(0)
	if on {
		v = 1
	}
	_ = c.regs.Write(RegAdaptive, v)
}

// currentT resolves the capability for the next operation: the manager's
// choice in adaptive mode, the register value otherwise.
func (c *Controller) currentT(blockIdx int) int {
	if v, _ := c.regs.Read(RegAdaptive); v != 0 {
		cycles, err := c.dev.Cycles(blockIdx)
		if err != nil {
			cycles = 0
		}
		return c.mgr.SelectT(c.algorithm(), cycles)
	}
	v, _ := c.regs.Read(RegECCCapability)
	return c.codec.ClampT(int(v))
}

// WriteLatency breaks down one page write.
type WriteLatency struct {
	Encode   time.Duration
	Transfer time.Duration
	Program  time.Duration
}

// Total returns the end-to-end (unpipelined) write latency.
func (l WriteLatency) Total() time.Duration { return l.Encode + l.Transfer + l.Program }

// WriteResult reports one page write.
type WriteResult struct {
	T        int
	Alg      nand.Algorithm
	Latency  WriteLatency
	Program  nand.ProgramResult
	ParityBy int
}

// WritePage encodes data (exactly one page) at the current capability and
// programs it with the current algorithm. The modelled latency covers
// encode (k/p cycles), codeword transfer and the ISPP run.
func (c *Controller) WritePage(blockIdx, pageIdx int, data []byte) (WriteResult, error) {
	var res WriteResult
	if len(data) != c.dev.Calibration().PageDataBytes {
		return res, fmt.Errorf("controller: page write needs %d bytes, got %d",
			c.dev.Calibration().PageDataBytes, len(data))
	}
	res.T = c.currentT(blockIdx)
	res.Alg = c.algorithm()
	pb, err := c.codec.ParityBytes(res.T)
	if err != nil {
		return res, err
	}
	// Page buffer staging (Fig. 1: the embedded RAM between socket and
	// flash interface): the parity is encoded straight into the buffer's
	// spare region, so the steady-state write path allocates nothing —
	// the device copies on Program.
	copy(c.pageBuffer, data)
	parity := c.pageBuffer[len(data) : len(data)+pb]
	if err := c.codec.EncodeInto(res.T, parity, data); err != nil {
		return res, err
	}
	res.ParityBy = len(parity)

	prog, err := c.dev.Program(blockIdx, pageIdx, data, parity, res.Alg)
	if err != nil {
		c.regs.setStatus(StatusProgramFail, 0)
		return res, err
	}
	res.Program = prog
	res.Latency = WriteLatency{
		Encode:   c.hw.EncodeLatency(c.codec.K),
		Transfer: c.bus.Transfer(len(data) + len(parity)),
		Program:  prog.Duration,
	}
	c.regs.setStatus(StatusOK, 0)
	return res, nil
}

// ReadLatency breaks down one page read. For a recovered read the
// components are sums across every ladder stage (each retry pays full
// tR + transfer + decode); ReadResult.Stages holds the per-stage split.
type ReadLatency struct {
	TR       time.Duration // array-to-register sensing
	Transfer time.Duration // codeword over the flash bus
	Decode   time.Duration // syndrome + iBM + Chien at the codec clock
}

// Total returns the end-to-end read latency.
func (l ReadLatency) Total() time.Duration { return l.TR + l.Transfer + l.Decode }

// ReadStage records one sense attempt of the recovery ladder.
type ReadStage struct {
	// Step is the read-reference ladder step the page was sensed at.
	Step int
	// Latency is this attempt's full cost (tR + transfer + decode).
	Latency ReadLatency
}

// ReadResult reports one page read.
type ReadResult struct {
	Data      []byte
	T         int
	Alg       nand.Algorithm
	Corrected int
	// Retries counts the sense attempts beyond the first; 0 means the
	// read at the predicted reference offset decoded immediately.
	Retries int
	// AppliedOffset is the read-reference ladder step of the final
	// attempt — the one that decoded, or the last failure.
	AppliedOffset int
	// Latency is the end-to-end cost, summed over every ladder stage.
	Latency ReadLatency
	// Stages breaks the ladder down per attempt. It is nil for
	// single-attempt reads (the common case stays allocation-lean):
	// the one stage is then exactly Latency at step AppliedOffset.
	Stages []ReadStage
}

// maxLadderSlots bounds the attempt-order scratch; devices calibrate
// far fewer ladder steps than this.
const maxLadderSlots = 32

// ReadPage reads, transfers and decodes a page through the staged
// recovery ladder at the controller's configured retry budget
// (RegReadRetry).
func (c *Controller) ReadPage(blockIdx, pageIdx int) (ReadResult, error) {
	v, _ := c.regs.Read(RegReadRetry)
	return c.ReadPageRetry(blockIdx, pageIdx, int(v))
}

// ReadPageRetry is the read-recovery pipeline with an explicit retry
// budget. The first sense happens at the read-reference offset the
// reliability manager's calibration cache predicts for the block's wear;
// a decode failure walks the remaining ladder steps (nominal references
// first, then deeper shifts) until the decode succeeds or the budget is
// exhausted. Every attempt pays the full tR + transfer + decode latency
// and counts against the block's read-disturb stress. The decode runs at
// the capability the page was written with, recovered from the stored
// parity length (the geometry r = m·t makes the mapping exact) —
// reconfiguring the controller between write and read therefore never
// corrupts old pages. Uncorrectable pages return ErrUncorrectable with
// the final attempt's raw data attached.
func (c *Controller) ReadPageRetry(blockIdx, pageIdx, maxRetries int) (ReadResult, error) {
	var res ReadResult
	res.Alg = c.algorithm()
	if alg, err := c.dev.WrittenAlgorithm(blockIdx, pageIdx); err == nil {
		res.Alg = alg // report the algorithm the page actually carries
	}
	cycles, err := c.dev.Cycles(blockIdx)
	if err != nil {
		cycles = 0 // out-of-range block: the first sense will report it
	}

	// Ladder order: the calibrated prediction first, then every other
	// step from the nominal references upward. A mispredicted offset
	// therefore re-tries the nominal read before paying deeper shifts.
	// A zero budget is the true pre-recovery single-shot path: nominal
	// references, no prediction — with no retry to fall back on, a
	// stale cache entry (e.g. taught by an FTL deep-retry rescue) must
	// not be able to over-shift the only sense the read gets.
	steps := c.dev.RetrySteps()
	if steps < 0 {
		steps = 0 // degenerate stress config: only the nominal sense exists
	}
	if steps >= maxLadderSlots {
		steps = maxLadderSlots - 1
	}
	pred := 0
	if maxRetries > 0 {
		pred = c.mgr.PredictStep(cycles)
		if pred > steps {
			pred = steps
		}
		if pred < 0 {
			pred = 0
		}
	}
	var order [maxLadderSlots]int
	order[0] = pred
	n := 1
	for k := 0; k <= steps; k++ {
		if k != pred {
			order[n] = k
			n++
		}
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	if n > maxRetries+1 {
		n = maxRetries + 1
	}

	var codeBits int
	for attempt := 0; attempt < n; attempt++ {
		step := order[attempt]
		nData, nSpare, rerr := c.dev.ReadInto(blockIdx, pageIdx, step, c.readBuffer)
		if rerr != nil {
			return res, rerr
		}
		if attempt == 0 {
			res.T = nSpare * 8 / c.codec.M
			parityBytes, perr := c.codec.ParityBytes(res.T)
			if perr != nil || parityBytes != nSpare {
				return res, fmt.Errorf("controller: page %d.%d spare (%d bytes) does not map to a supported capability",
					blockIdx, pageIdx, nSpare)
			}
			code, cerr := c.codec.Code(res.T)
			if cerr != nil {
				return res, cerr
			}
			codeBits = code.CodewordBits()
		}
		codeword := c.readBuffer[:nData+nSpare]
		nErr, decErr := c.codec.Decode(res.T, codeword)

		stage := ReadLatency{
			TR:       nand.PageReadTime,
			Transfer: c.bus.Transfer(len(codeword)),
		}
		if nErr == 0 && decErr == nil {
			stage.Decode = c.hw.DecodeCleanLatency(codeBits, res.T)
		} else {
			stage.Decode = c.hw.DecodeLatency(codeBits, res.T)
		}
		res.Latency.TR += stage.TR
		res.Latency.Transfer += stage.Transfer
		res.Latency.Decode += stage.Decode
		if attempt == 1 {
			// The ladder engaged: materialise the per-stage breakdown,
			// back-filling the first attempt.
			res.Stages = make([]ReadStage, 0, n)
			res.Stages = append(res.Stages, ReadStage{Step: res.AppliedOffset, Latency: res.Latency})
			res.Stages[0].Latency.TR -= stage.TR
			res.Stages[0].Latency.Transfer -= stage.Transfer
			res.Stages[0].Latency.Decode -= stage.Decode
		}
		if res.Stages != nil {
			res.Stages = append(res.Stages, ReadStage{Step: step, Latency: stage})
		}
		res.Retries = attempt
		res.AppliedOffset = step

		if decErr == nil {
			res.Corrected = nErr
			res.Data = make([]byte, nData)
			copy(res.Data, codeword[:nData])
			c.regs.setStatus(StatusOK, uint32(nErr))
			c.mgr.ObserveDecode(res.Alg, codeBits, nErr)
			c.mgr.ObserveRetry(cycles, step, attempt, true)
			return res, nil
		}
		if attempt == n-1 {
			// Budget exhausted: surface the final attempt's raw data.
			res.Data = make([]byte, nData)
			copy(res.Data, codeword[:nData])
		}
	}
	c.regs.setStatus(StatusUncorrectable, 0)
	c.mgr.ObserveUncorrectable()
	c.mgr.ObserveRetry(cycles, res.AppliedOffset, res.Retries, false)
	return res, fmt.Errorf("%w: block %d page %d (after %d retries)",
		ErrUncorrectable, blockIdx, pageIdx, res.Retries)
}

// SetReadRetry reconfigures the recovery ladder budget (RegReadRetry).
func (c *Controller) SetReadRetry(n int) {
	if n < 0 {
		n = 0
	}
	_ = c.regs.Write(RegReadRetry, uint32(n))
}

// ReadRetry returns the configured recovery ladder budget.
func (c *Controller) ReadRetry() int {
	v, _ := c.regs.Read(RegReadRetry)
	return int(v)
}

// EraseBlock erases a device block through the controller.
func (c *Controller) EraseBlock(blockIdx int) error {
	return c.dev.Erase(blockIdx)
}
