package controller

import "testing"

// TestReadPageRetryIntoZeroAlloc pins the controller's steady-state
// read path at zero allocations per operation: with a caller-provided
// destination the sense, transfer and decode all run in reused scratch
// (device read buffer, BCH remainder registers, result data aliasing
// dst). Occasional decoder pool refills after a GC are tolerated by the
// sub-one average, not by rounding up the contract.
func TestReadPageRetryIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	c := newRig(t, true)
	data := randPage(9)
	if _, err := c.WritePage(0, 0, data); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(data))
	// Warm every lazily-built structure (divider tables, syndrome
	// scratch, pooled decode registers) before counting.
	for i := 0; i < 4; i++ {
		if _, err := c.ReadPageRetryInto(0, 0, 0, dst); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := c.ReadPageRetryInto(0, 0, 0, dst); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state read allocates %.2f/op, want 0", avg)
	}
}
