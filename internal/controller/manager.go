package controller

import (
	"math"
	"sync"

	"xlnand/internal/ecc"
	"xlnand/internal/nand"
)

// ReliabilityManager is the "integrated reliability manager" of paper §3:
// it fuses decoder feedback (corrected-error counts per codeword) with
// the wear-indexed RBER model to keep the ECC capability at the minimum
// value meeting the UBER target — the in-situ self-adaptation loop.
//
// Two estimation paths coexist:
//
//   - model path: the block's P/E cycle count indexes the calibrated
//     RBER lifetime model (what the paper's evaluation uses);
//   - measurement path: an exponentially-weighted estimate of RBER from
//     observed corrected errors, which overrides the model when it is
//     materially worse (a self-protective bias).
//
// A safety margin multiplies the estimate before the t solver so that
// estimation noise cannot push the real UBER past the target.
type ReliabilityManager struct {
	mu sync.Mutex

	codec      ecc.Codec
	targetUBER float64
	cal        nand.Calibration

	// Measurement state, tracked per program algorithm: SV pages and DV
	// pages have error rates an order of magnitude apart, so a shared
	// estimate would poison the better algorithm's capability choice.
	ewmaRBER      [2]float64
	ewmaWeight    [2]float64
	alpha         float64 // EWMA smoothing factor
	uncorrectable int

	// Read-retry calibration cache: the ladder step at which reads of
	// blocks in each wear bucket last decoded successfully. The
	// controller starts its recovery ladder at the predicted step, so
	// once one read has paid for walking the ladder, later reads of
	// similarly worn blocks recover on their first sense — the in-situ
	// analogue of the offline read-voltage optimisation of "Dynamic
	// Write-Voltage Design and Read-Voltage Optimization for MLC NAND
	// Flash Memory".
	predictedStep [retryWearBuckets]int

	// Retry telemetry: reads bucketed by the retries they needed, and
	// the count of reads that only succeeded after at least one retry.
	retryHist [RetryHistBuckets]int
	recovered int

	// Soft-rung telemetry: soft-sense decode attempts and the subset
	// that recovered the page.
	softAttempts  int
	softRecovered int

	// SafetyMargin scales the RBER estimate before solving for t.
	SafetyMargin float64
}

// retryWearBuckets is the calibration cache's wear resolution: one
// bucket per decade of program/erase cycles.
const retryWearBuckets = 8

// RetryHistBuckets is the size of the retry-depth histogram; the last
// bucket collects everything at or beyond RetryHistBuckets-1 retries.
const RetryHistBuckets = 8

// retryWearBucket maps a block's cycle count onto its cache bucket.
func retryWearBucket(cycles float64) int {
	b := int(math.Log10(1 + cycles))
	if b < 0 {
		b = 0
	}
	if b >= retryWearBuckets {
		b = retryWearBuckets - 1
	}
	return b
}

// PredictStep returns the calibrated read-reference ladder step the
// cache predicts for a block at the given wear (0 until a recovery has
// taught the bucket otherwise).
func (m *ReliabilityManager) PredictStep(cycles float64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.predictedStep[retryWearBucket(cycles)]
}

// ObserveRetry feeds one completed read (successful or not) into the
// retry telemetry and, on success, teaches the calibration cache the
// step that worked for the block's wear bucket.
func (m *ReliabilityManager) ObserveRetry(cycles float64, step, retries int, success bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := retries
	if h >= RetryHistBuckets {
		h = RetryHistBuckets - 1
	}
	if h < 0 {
		h = 0
	}
	m.retryHist[h]++
	if success {
		if retries > 0 {
			m.recovered++
		}
		// Teach the cache only from reads that engaged the recovery
		// machinery: a ladder walk (retries > 0) or a first-sense
		// success at a predicted offset (step > 0). A zero-budget read
		// is forced to step 0 without consulting the cache, and its
		// success must not clobber a learned offset.
		if retries > 0 || step > 0 {
			m.predictedStep[retryWearBucket(cycles)] = step
		}
	}
}

// RetryHistogram returns the counts of reads by the retries they needed
// (last bucket: RetryHistBuckets-1 or more).
func (m *ReliabilityManager) RetryHistogram() [RetryHistBuckets]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retryHist
}

// Recovered returns the number of reads that decoded successfully only
// after at least one ladder retry — reads the single-shot pipeline
// would have lost.
func (m *ReliabilityManager) Recovered() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recovered
}

func algIndex(alg nand.Algorithm) int {
	if alg == nand.ISPPDV {
		return 1
	}
	return 0
}

// NewReliabilityManager builds a manager for the codec and UBER target.
func NewReliabilityManager(codec ecc.Codec, targetUBER float64) *ReliabilityManager {
	return &ReliabilityManager{
		codec:        codec,
		targetUBER:   targetUBER,
		cal:          nand.DefaultCalibration(),
		alpha:        0.05,
		SafetyMargin: 1.3,
	}
}

// SetCalibration replaces the RBER model calibration (tests and ablations).
func (m *ReliabilityManager) SetCalibration(cal nand.Calibration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cal = cal
}

// TargetUBER returns the UBER the manager is holding.
func (m *ReliabilityManager) TargetUBER() float64 { return m.targetUBER }

// ObserveDecode feeds one successful decode (codeword length n bits,
// nErr corrected) of a page written with the given algorithm into the
// measurement estimator.
func (m *ReliabilityManager) ObserveDecode(alg nand.Algorithm, nBits, nErr int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	i := algIndex(alg)
	sample := float64(nErr) / float64(nBits)
	if m.ewmaWeight[i] == 0 {
		m.ewmaRBER[i] = sample
		m.ewmaWeight[i] = 1
		return
	}
	m.ewmaRBER[i] = (1-m.alpha)*m.ewmaRBER[i] + m.alpha*sample
}

// ObserveUncorrectable records a decode failure; a burst of failures is
// the strongest possible signal that the capability is under-provisioned.
func (m *ReliabilityManager) ObserveUncorrectable() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.uncorrectable++
}

// Uncorrectables returns the number of observed decode failures.
func (m *ReliabilityManager) Uncorrectables() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.uncorrectable
}

// MeasuredRBER returns the EWMA estimate for the algorithm and whether
// any data backs it.
func (m *ReliabilityManager) MeasuredRBER(alg nand.Algorithm) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	i := algIndex(alg)
	return m.ewmaRBER[i], m.ewmaWeight[i] > 0
}

// EstimateRBER fuses the model and measurement paths for the given
// algorithm and wear.
func (m *ReliabilityManager) EstimateRBER(alg nand.Algorithm, cycles float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	est := m.cal.RBER(alg, cycles)
	if i := algIndex(alg); m.ewmaWeight[i] > 0 && m.ewmaRBER[i] > est {
		est = m.ewmaRBER[i]
	}
	return est
}

// SelectLevel returns the minimum capability level meeting the UBER
// target at the estimated RBER (with safety margin), clamped to the
// codec's range. If even the strongest level cannot meet the target the
// manager pins it — the device is end-of-life and the status path will
// surface uncorrectables. For the BCH family the level is the
// correction capability t; for LDPC it is the rate index.
func (m *ReliabilityManager) SelectLevel(alg nand.Algorithm, cycles float64) int {
	rber := m.EstimateRBER(alg, cycles) * m.SafetyMargin
	lvl, err := m.codec.RequiredLevel(rber, m.targetUBER)
	if err != nil {
		return m.codec.MaxLevel()
	}
	return m.codec.ClampLevel(lvl)
}

// SelectT is the historical (BCH-era) name of SelectLevel.
func (m *ReliabilityManager) SelectT(alg nand.Algorithm, cycles float64) int {
	return m.SelectLevel(alg, cycles)
}

// ProjectedUBER reports the post-correction error rate the manager
// expects for a level/algorithm/wear triple, per the codec family's
// reliability model.
func (m *ReliabilityManager) ProjectedUBER(level int, alg nand.Algorithm, cycles float64) float64 {
	rber := m.EstimateRBER(alg, cycles)
	return m.codec.ProjectedUBER(level, rber)
}

// ObserveSoft feeds one soft-rung decode attempt into the telemetry.
func (m *ReliabilityManager) ObserveSoft(success bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.softAttempts++
	if success {
		m.softRecovered++
	}
}

// SoftStats returns the soft-rung attempt and recovery counts.
func (m *ReliabilityManager) SoftStats() (attempts, recovered int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.softAttempts, m.softRecovered
}
