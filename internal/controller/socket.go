package controller

import (
	"fmt"
	"time"

	"xlnand/internal/timing"
)

// Socket models the controller's network-facing front end of the paper's
// Fig. 1: an OCP-style target interface whose transactions (read, write,
// configuration) pass through a request queue into the core controller.
// The on-chip network is much faster than the flash device, so the
// socket's job is buffering and decoupling; the model tracks queue
// occupancy and per-transaction waiting/service times so that
// system-level studies can see the queuing component of latency.
//
// Time is virtual: transactions carry explicit arrival times and the
// socket replays them against the controller's modelled service times.
type Socket struct {
	ctrl *Controller
	bus  timing.FlashBus
	// depth is the request-queue capacity (transactions).
	depth int

	// busyUntil is the virtual time at which the controller finishes its
	// current transaction backlog.
	busyUntil time.Duration
	// queued tracks the virtual completion times of in-flight
	// transactions for occupancy accounting.
	queued []time.Duration

	// Stats.
	Accepted  int
	Rejected  int // queue-full pushbacks (the OCP SCmdAccept=0 path)
	TotalWait time.Duration
	TotalServ time.Duration
	MaxDepth  int
}

// TxKind is the transaction type.
type TxKind int

const (
	// TxRead is a page read request.
	TxRead TxKind = iota
	// TxWrite is a page program request.
	TxWrite
	// TxConfig is a register write (mode/capability/algorithm change).
	TxConfig
)

// String implements fmt.Stringer.
func (k TxKind) String() string {
	switch k {
	case TxRead:
		return "read"
	case TxWrite:
		return "write"
	case TxConfig:
		return "config"
	default:
		return "tx?"
	}
}

// Tx is one socket transaction.
type Tx struct {
	Kind    TxKind
	Arrival time.Duration // virtual arrival time
	Block   int
	Page    int
	Data    []byte   // write payload
	Reg     Register // config target
	Value   uint32   // config value
}

// TxResult reports one completed transaction.
type TxResult struct {
	Tx       Tx
	Wait     time.Duration // time spent queued behind earlier work
	Service  time.Duration // controller+device service time
	Complete time.Duration // virtual completion time
	Data     []byte        // read payload
	Err      error
}

// NewSocket wraps a controller with a request queue of the given depth.
func NewSocket(ctrl *Controller, depth int) (*Socket, error) {
	if depth < 1 {
		return nil, fmt.Errorf("controller: socket queue depth %d < 1", depth)
	}
	return &Socket{ctrl: ctrl, bus: ctrl.bus, depth: depth}, nil
}

// drain removes transactions that completed before t from the occupancy
// window.
func (s *Socket) drain(t time.Duration) {
	keep := s.queued[:0]
	for _, done := range s.queued {
		if done > t {
			keep = append(keep, done)
		}
	}
	s.queued = keep
}

// Submit offers a transaction to the socket at its arrival time.
// Transactions must be submitted in non-decreasing arrival order. A full
// queue rejects the transaction (counted, error returned) — the network
// would retry later.
func (s *Socket) Submit(tx Tx) (TxResult, error) {
	res := TxResult{Tx: tx}
	s.drain(tx.Arrival)
	if len(s.queued) >= s.depth {
		s.Rejected++
		res.Err = fmt.Errorf("controller: socket queue full (%d in flight)", len(s.queued))
		return res, res.Err
	}

	start := tx.Arrival
	if s.busyUntil > start {
		start = s.busyUntil
	}
	res.Wait = start - tx.Arrival

	var service time.Duration
	switch tx.Kind {
	case TxRead:
		rd, err := s.ctrl.ReadPage(tx.Block, tx.Page)
		service = rd.Latency.Total()
		res.Data = rd.Data
		res.Err = err
	case TxWrite:
		wr, err := s.ctrl.WritePage(tx.Block, tx.Page, tx.Data)
		// Unpipelined single-transaction service: encode + transfer +
		// program (sustained streams overlap these; the socket models
		// request/response semantics).
		service = wr.Latency.Total()
		res.Err = err
	case TxConfig:
		// A register write costs one bus beat.
		res.Err = s.ctrl.regs.Write(tx.Reg, tx.Value)
		service = s.bus.Transfer(4)
	default:
		res.Err = fmt.Errorf("controller: unknown transaction kind %d", int(tx.Kind))
		return res, res.Err
	}

	res.Service = service
	res.Complete = start + service
	s.busyUntil = res.Complete
	s.queued = append(s.queued, res.Complete)
	if len(s.queued) > s.MaxDepth {
		s.MaxDepth = len(s.queued)
	}
	s.Accepted++
	s.TotalWait += res.Wait
	s.TotalServ += service
	return res, res.Err
}

// Utilisation returns the controller-busy fraction over the window from
// time zero to the last completion.
func (s *Socket) Utilisation() float64 {
	if s.busyUntil == 0 {
		return 0
	}
	return s.TotalServ.Seconds() / s.busyUntil.Seconds()
}

// AvgWait returns the mean queuing delay of accepted transactions.
func (s *Socket) AvgWait() time.Duration {
	if s.Accepted == 0 {
		return 0
	}
	return s.TotalWait / time.Duration(s.Accepted)
}
