package array

import (
	"fmt"
	"sync"
	"time"

	"xlnand/internal/controller"
	"xlnand/internal/dispatch"
	"xlnand/internal/ftl"
	"xlnand/internal/sim"
)

// driveSeedStride decorrelates per-drive RNG streams the same way
// dispatch's dieSeedStride decorrelates dies. A distinct odd constant
// (splitmix64's second-round multiplier) keeps drive n's die streams
// disjoint from a single-drive run at seed+n.
const driveSeedStride = 0xbf58476d1ce4e5b9

// volPartition is the single FTL partition backing a drive's slice of
// the volume.
const volPartition = "vol"

// driveOp is one operation bound for a specific drive within a round:
// the drive-local logical page, the direction, and the result slot the
// drive worker fills. Slots are owned exclusively by one worker between
// the round's dispatch and its barrier.
type driveOp struct {
	write bool
	lpa   int
	data  []byte
	res   *Result
}

// drive is one member of the array: a full dispatcher + FTL stack with
// a dedicated worker goroutine consuming whole-round batches.
type drive struct {
	idx  int
	seed uint64
	disp *dispatch.Dispatcher
	f    *ftl.FTL
	part *ftl.Partition

	jobs chan driveJob
	done chan struct{}

	// Perf accumulators, touched only by the worker goroutine between
	// barriers and by the front end after them.
	readOps, writeOps  int64
	readLat, writeLat  time.Duration
	uncorrectableReads int64
	writebackErrors    int64         // failed cache write-backs (no result slot to carry them)
	lastNow            time.Duration // Now() at the previous barrier
	roundElapsed       time.Duration // modelled time this drive spent in the current round
}

type driveJob struct {
	batch []driveOp
	wg    *sync.WaitGroup
}

// newDrive builds one drive: Dies×BlocksPerDie of NAND behind its own
// dispatcher, with a single volume partition spanning every block.
func newDrive(idx int, cfg Config, env sim.Env, ctrlCfg controller.Config) (*drive, error) {
	seed := cfg.Seed + uint64(idx)*driveSeedStride
	disp, err := dispatch.New(dispatch.Config{
		Dies:         cfg.DiesPerDrive,
		BlocksPerDie: cfg.BlocksPerDie,
		Seed:         seed,
		Env:          env,
		Controller:   ctrlCfg,
		Family:       cfg.Family,
	})
	if err != nil {
		return nil, fmt.Errorf("array: drive %d: %w", idx, err)
	}
	f, err := ftl.New(disp, env, []ftl.PartitionSpec{
		{Name: volPartition, Blocks: cfg.DiesPerDrive * cfg.BlocksPerDie},
	})
	if err != nil {
		disp.Close()
		return nil, fmt.Errorf("array: drive %d: %w", idx, err)
	}
	part, err := f.Partition(volPartition)
	if err != nil {
		disp.Close()
		return nil, fmt.Errorf("array: drive %d: %w", idx, err)
	}
	d := &drive{
		idx:  idx,
		seed: seed,
		disp: disp,
		f:    f,
		part: part,
		jobs: make(chan driveJob),
		done: make(chan struct{}),
	}
	go d.worker()
	return d, nil
}

// worker consumes round batches. Each batch executes strictly in order
// on this drive's own stack; concurrency exists only across drives.
func (d *drive) worker() {
	defer close(d.done)
	for job := range d.jobs {
		d.roundElapsed = 0
		before := d.disp.Now()
		for i := range job.batch {
			d.execute(&job.batch[i])
		}
		d.roundElapsed = d.disp.Now() - before
		job.wg.Done()
	}
}

// execute runs one op through the FTL and fills its result slot.
func (d *drive) execute(op *driveOp) {
	if op.write {
		wr, err := d.f.Write(volPartition, op.lpa, op.data)
		d.writeOps++
		if wr != nil {
			d.writeLat += wr.Latency.Total()
		}
		if op.res != nil {
			op.res.Drive = d.idx
			op.res.Err = err
			if wr != nil {
				op.res.Latency = wr.Latency.Total()
			}
		} else if err != nil {
			d.writebackErrors++
		}
		return
	}
	data, rr, err := d.f.Read(volPartition, op.lpa)
	d.readOps++
	if rr != nil {
		d.readLat += rr.Latency.Total()
	}
	if err != nil {
		d.uncorrectableReads++
	}
	if op.res != nil {
		op.res.Drive = d.idx
		op.res.Err = err
		if err == nil {
			op.res.Data = data
		}
		if rr != nil {
			op.res.Latency = rr.Latency.Total()
		}
	}
}

// report gathers this drive's telemetry. Called by the front end only
// between barriers, so it races with nothing.
func (d *drive) report() DriveReport {
	rep := DriveReport{
		Drive:     d.idx,
		Seed:      d.seed,
		RetryHist: make([]int, controller.RetryHistBuckets),
	}
	rep.HostReads = d.part.HostReads
	rep.HostWrites = d.part.HostWrites
	rep.GCMoves = d.part.GCMoves
	rep.Erases = d.part.Erases
	rep.LostPages = d.part.LostPages
	rep.UncorrectableReads = d.uncorrectableReads
	rep.WritebackErrors = d.writebackErrors

	geo := d.disp.Geometry()
	for die := 0; die < geo.Dies; die++ {
		c := d.disp.Controller(die)
		m := c.Manager()
		hist := m.RetryHistogram()
		for i, n := range hist {
			rep.RetryHist[i] += n
		}
		rep.RetryRecovered += m.Recovered()
		rep.Uncorrectable += m.Uncorrectables()
		attempts, recovered := m.SoftStats()
		rep.SoftAttempts += attempts
		rep.SoftRecovered += recovered
	}
	if wmin, wmax, err := d.f.WearSpread(volPartition); err == nil {
		rep.WearMin = wmin
		rep.WearMax = wmax
	}
	rep.ModelledSeconds = d.disp.Now().Seconds()
	if d.readOps > 0 {
		rep.AvgReadLatencyUs = float64(d.readLat.Microseconds()) / float64(d.readOps)
	}
	if d.writeOps > 0 {
		rep.AvgWriteLatencyUs = float64(d.writeLat.Microseconds()) / float64(d.writeOps)
	}
	return rep
}

// close stops the worker and releases the dispatcher.
func (d *drive) close() {
	close(d.jobs)
	<-d.done
	d.disp.Close()
}
