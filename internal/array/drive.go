package array

import (
	"fmt"
	"sync"
	"time"

	"xlnand/internal/controller"
	"xlnand/internal/dispatch"
	"xlnand/internal/ftl"
	"xlnand/internal/obs"
	"xlnand/internal/sim"
)

// ftlTraceTid is the trace thread id the drive's FTL stream reports
// under (matching dispatch's internal thread layout: bus=1, codec=2,
// ftl=3, dies from 10).
const ftlTraceTid = 3

// driveSeedStride decorrelates per-drive RNG streams the same way
// dispatch's dieSeedStride decorrelates dies. A distinct odd constant
// (splitmix64's second-round multiplier) keeps drive n's die streams
// disjoint from a single-drive run at seed+n.
const driveSeedStride = 0xbf58476d1ce4e5b9

// volPartition is the single FTL partition backing a drive's slice of
// the volume.
const volPartition = "vol"

// driveOp is one operation bound for a specific physical drive within
// a phase: the drive-local logical page, the direction, and exactly one
// of two result sinks — a host Result slot or an internal read slot.
// slot is the logical array slot the drive currently serves; host
// results report it as the serving drive. Sinks are owned exclusively
// by one worker between a phase's dispatch and its barrier.
type driveOp struct {
	write bool
	lpa   int
	slot  int
	data  []byte
	// dst, for host reads, is the caller-owned destination buffer from
	// Op.Buf: the page decodes straight into it and the Result's Data
	// aliases it. nil reads allocate their own copy.
	dst []byte
	res *Result
	out *internalRead
}

// fill routes an op's outcome to its sink. Latency accumulates rather
// than assigns so a recovery re-dispatch of the same host result keeps
// the failed attempt's cost on the books.
func (op *driveOp) fill(data []byte, lat time.Duration, err error) {
	if op.out != nil {
		op.out.data = data
		op.out.err = err
		op.out.lat += lat
		return
	}
	if op.res == nil {
		return
	}
	op.res.Drive = op.slot
	op.res.Err = err
	if err == nil && !op.write && data != nil {
		op.res.Data = data
	}
	op.res.Latency += lat
}

// drive is one physical member of the array: a full dispatcher + FTL
// stack with a dedicated worker goroutine consuming whole-phase
// batches, plus its deterministic fault state.
type drive struct {
	idx  int
	seed uint64
	disp *dispatch.Dispatcher
	f    *ftl.FTL
	part *ftl.Partition

	jobs chan driveJob
	done chan struct{}

	// Fault state, set once before the worker sees traffic: transient
	// refusal rate, modelled-latency multiplier, and the seeded
	// splitmix64 stream behind faultRoll. frng is worker-confined.
	errRate   float64
	latFactor float64
	frng      uint64

	// Perf accumulators, touched only by the worker goroutine between
	// barriers and by the front end after them.
	readOps, writeOps  int64
	readLat, writeLat  time.Duration
	uncorrectableReads int64
	injected           int64         // injected transient faults (per refused attempt)
	roundElapsed       time.Duration // modelled time this drive spent in the current phase

	// Per-op-class latency histograms, same ownership discipline as the
	// accumulators above. Always recorded (Record is a few nanoseconds
	// against multi-microsecond ops and never allocates); snapshotted
	// into the drive report and merged fleet-wide in slot order.
	latClean   obs.LatencyHist // reads decoded without any recovery rung
	latRetried obs.LatencyHist // reads that paid the hard retry ladder
	latSoft    obs.LatencyHist // reads that escalated to soft multi-sense
	latWrite   obs.LatencyHist

	closed bool
}

type driveJob struct {
	batch []driveOp
	wg    *sync.WaitGroup
}

// newDrive builds one drive: Dies×BlocksPerDie of NAND behind its own
// dispatcher, with a single volume partition spanning every block.
func newDrive(idx int, cfg Config, env sim.Env, ctrlCfg controller.Config) (*drive, error) {
	seed := cfg.Seed + uint64(idx)*driveSeedStride
	// Each drive is its own trace process (pid = index + 1; pid 0 is
	// the host front end); dispatch registers the bus/codec/die threads.
	var proc *obs.Proc
	if cfg.Trace != nil {
		proc = cfg.Trace.Process(int32(idx+1), fmt.Sprintf("drive %d", idx))
	}
	disp, err := dispatch.New(dispatch.Config{
		Dies:         cfg.DiesPerDrive,
		BlocksPerDie: cfg.BlocksPerDie,
		Seed:         seed,
		Env:          env,
		Controller:   ctrlCfg,
		Family:       cfg.Family,
		Trace:        proc,
	})
	if err != nil {
		return nil, fmt.Errorf("array: drive %d: %w", idx, err)
	}
	f, err := ftl.New(disp, env, []ftl.PartitionSpec{
		{Name: volPartition, Blocks: cfg.DiesPerDrive * cfg.BlocksPerDie},
	})
	if err != nil {
		disp.Close()
		return nil, fmt.Errorf("array: drive %d: %w", idx, err)
	}
	if proc != nil {
		// The FTL's background spans (GC, scrub, deep retries) report on
		// their own thread within the drive process. The stream is
		// appended only from whichever goroutine drives the FTL — here
		// the drive worker — preserving the single-writer contract.
		proc.Thread(ftlTraceTid, "ftl")
		f.SetTrace(proc.Stream(), ftlTraceTid)
	}
	part, err := f.Partition(volPartition)
	if err != nil {
		disp.Close()
		return nil, fmt.Errorf("array: drive %d: %w", idx, err)
	}
	d := &drive{
		idx:  idx,
		seed: seed,
		disp: disp,
		f:    f,
		part: part,
		jobs: make(chan driveJob),
		done: make(chan struct{}),
	}
	go d.worker()
	return d, nil
}

// setFault arms the drive's deterministic fault stream. Called before
// the drive sees any traffic.
func (d *drive) setFault(f DriveFault, planSeed uint64) {
	d.errRate = f.TransientErrRate
	d.latFactor = f.LatencyFactor
	d.frng = d.seed ^ planSeed ^ uint64(d.idx+1)*faultSeedStride
}

// worker consumes phase batches. Each batch executes strictly in order
// on this drive's own stack; concurrency exists only across drives. A
// latency-degradation fault inflates the drive's contribution to the
// round's critical path without touching the stack's own clock.
func (d *drive) worker() {
	defer close(d.done)
	for job := range d.jobs {
		d.roundElapsed = 0
		before := d.disp.Now()
		for i := range job.batch {
			d.execute(&job.batch[i])
		}
		elapsed := d.disp.Now() - before
		if d.latFactor > 1 {
			elapsed = time.Duration(float64(elapsed) * d.latFactor)
		}
		d.roundElapsed = elapsed
		job.wg.Done()
	}
}

// execute runs one op through the FTL and fills its sink. Transient
// faults roll per attempt: a refused op retries immediately up to
// faultRetries times before ErrDriveFault escapes the drive.
func (d *drive) execute(op *driveOp) {
	attempts := 0
	for d.faultRoll() {
		d.injected++
		attempts++
		if attempts > faultRetries {
			if op.write {
				d.writeOps++
			} else {
				d.readOps++
			}
			op.fill(nil, 0, fmt.Errorf("array: drive %d lpa %d: %w", d.idx, op.lpa, ErrDriveFault))
			return
		}
	}
	if op.write {
		wr, err := d.f.Write(volPartition, op.lpa, op.data)
		d.writeOps++
		var lat time.Duration
		if wr != nil {
			lat = wr.Latency.Total()
			d.writeLat += lat
			d.latWrite.Record(lat)
		}
		op.fill(nil, lat, err)
		return
	}
	data, rr, err := d.f.ReadInto(volPartition, op.lpa, op.dst)
	d.readOps++
	var lat time.Duration
	if rr != nil {
		lat = rr.Latency.Total()
		d.readLat += lat
		if err == nil {
			// Classify by how hard the read worked: the soft multi-sense
			// rung dominates the hard ladder, which dominates clean.
			switch {
			case rr.Soft:
				d.latSoft.Record(lat)
			case rr.Retries > 0:
				d.latRetried.Record(lat)
			default:
				d.latClean.Record(lat)
			}
		}
	}
	if err != nil {
		d.uncorrectableReads++
	}
	op.fill(data, lat, err)
}

// report gathers this drive's telemetry. Called by the front end only
// between barriers, so it races with nothing.
func (d *drive) report() DriveReport {
	rep := DriveReport{
		Drive:     d.idx,
		Physical:  d.idx,
		Seed:      d.seed,
		RetryHist: make([]int, controller.RetryHistBuckets),
	}
	rep.HostReads = d.part.HostReads
	rep.HostWrites = d.part.HostWrites
	rep.GCMoves = d.part.GCMoves
	rep.Erases = d.part.Erases
	rep.LostPages = d.part.LostPages
	rep.UncorrectableReads = d.uncorrectableReads
	rep.InjectedFaults = d.injected

	geo := d.disp.Geometry()
	for die := 0; die < geo.Dies; die++ {
		c := d.disp.Controller(die)
		m := c.Manager()
		hist := m.RetryHistogram()
		for i, n := range hist {
			rep.RetryHist[i] += n
		}
		rep.RetryRecovered += m.Recovered()
		rep.Uncorrectable += m.Uncorrectables()
		attempts, recovered := m.SoftStats()
		rep.SoftAttempts += attempts
		rep.SoftRecovered += recovered
	}
	if wmin, wmax, err := d.f.WearSpread(volPartition); err == nil {
		rep.WearMin = wmin
		rep.WearMax = wmax
	}
	rep.CleanReads = int64(d.disp.CleanHits())
	if d.latClean.Count()+d.latRetried.Count()+d.latSoft.Count()+d.latWrite.Count() > 0 {
		rep.Latency = &DriveLatency{
			CleanRead:   d.latClean.Snapshot(),
			RetriedRead: d.latRetried.Snapshot(),
			SoftRead:    d.latSoft.Snapshot(),
			Write:       d.latWrite.Snapshot(),
		}
	}
	rep.ModelledSeconds = d.disp.Now().Seconds()
	if d.readOps > 0 {
		rep.AvgReadLatencyUs = float64(d.readLat.Microseconds()) / float64(d.readOps)
	}
	if d.writeOps > 0 {
		rep.AvgWriteLatencyUs = float64(d.writeLat.Microseconds()) / float64(d.writeOps)
	}
	return rep
}

// close stops the worker and releases the dispatcher. Idempotent: a
// drive killed mid-run is closed again by Array.Close harmlessly.
func (d *drive) close() {
	if d.closed {
		return
	}
	d.closed = true
	close(d.jobs)
	<-d.done
	d.disp.Close()
}
