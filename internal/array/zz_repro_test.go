package array

import (
	"bytes"
	"testing"
)

// Align host overwrites with the rebuild cursor: round r >= 18 rebuilds
// lpas 2(r-18), 2(r-18)+1 and the same round's host ops overwrite those
// very pages.
func TestReproRebuildClobber(t *testing.T) {
	cfg := testConfig(2)
	cfg.Redundancy = RedundancyMirror
	cfg.Spares = 1
	cfg.RoundOps = 8
	cfg.Faults = FaultPlan{Drives: []DriveFault{{Drive: 0, FailStopRound: 18}}}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	n := a.VolumePages() // 128
	w := func(p, v int) {
		if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: pagePattern(a, p, v)}); err != nil {
			t.Fatal(err)
		}
	}
	rd := func(p int) {
		if err := a.Submit(Op{Tenant: "default", Page: p}); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < n; p++ { // rounds 1..16
		w(p, 0)
	}
	for i := 0; i < 8; i++ { // round 17: padding
		rd(n - 1)
	}
	for c := 0; c < n; c += 2 { // round 18+c/2: overwrite the cursor pair
		w(c, 1)
		w(c+1, 1)
		for i := 0; i < 6; i++ {
			rd(n - 1)
		}
	}
	mustDrain(t, a)
	for p := 0; p < n; p++ {
		rd(p)
	}
	stale := 0
	for _, r := range mustDrain(t, a) {
		if r.Err != nil {
			t.Fatalf("read %d: %v", r.Page, r.Err)
		}
		if !bytes.Equal(r.Data, pagePattern(a, r.Page, 1)) {
			if bytes.Equal(r.Data, pagePattern(a, r.Page, 0)) {
				stale++
				if stale <= 5 {
					t.Logf("page %d serves STALE pre-overwrite data from slot %d", r.Page, r.Drive)
				}
			} else {
				t.Fatalf("page %d: garbage", r.Page)
			}
		}
	}
	rep := a.Report()
	t.Logf("stale=%d lost=%d rebuild=%+v", stale, rep.Totals.LostWrites, rep.Rebuilds[0])
	if stale > 0 {
		t.Fatalf("%d pages serve stale data after rebuild", stale)
	}
}
