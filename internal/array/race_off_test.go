//go:build !race

package array

const raceEnabled = false
