// Package array is the fleet-scale front end over the single-drive
// stack: an Array stripes a volume address space across N independent
// drives (each a full dispatcher + FTL instance with its own seeded RNG
// streams), serves reads through a host-side cache with pluggable
// eviction, buffers writes in a write-back buffer with deterministic
// flush ordering, and schedules tenants through token-bucket QoS.
// Cross-drive redundancy (rotating parity or mirroring), deterministic
// fault injection, degraded-mode operation, and background rebuild onto
// hot spares layer on top without giving up reproducibility.
//
// Determinism at scale is the design center. The front end runs in
// rounds: a single-threaded scheduler picks the round's ops, batches
// them per drive, the per-drive workers execute their batches
// concurrently, and a barrier joins them before any order-sensitive
// work (cache fills, parity math, telemetry merges, clock advance)
// happens — always in drive-index order, never completion order. Two
// runs with the same seed, submission sequence, and fault plan produce
// byte-identical fleet reports no matter how the goroutines interleave,
// even through drive deaths and rebuilds.
package array

import (
	"fmt"
	"math"
	"sync"
	"time"

	"xlnand/internal/controller"
	"xlnand/internal/ecc"
	"xlnand/internal/obs"
	"xlnand/internal/sim"
)

// Host-process trace thread ids (the front end is trace pid 0; drives
// are pid index+1). Tenants get tids from hostTidTenant0 in declared
// order, the rebuild tenant last.
const (
	hostTidSched   = 0 // scheduling rounds and QoS stalls
	hostTidCache   = 1 // cache hits/misses
	hostTidRecov   = 2 // degraded-read reconstructions
	hostTidRebuild = 3 // rebuild progress
	hostTidTenant0 = 10
)

// Config shapes an Array.
type Config struct {
	// Drives is the number of array slots (>= 1; parity needs >= 3,
	// mirror an even count >= 2).
	Drives int
	// DiesPerDrive and BlocksPerDie shape each drive (defaults 2 and 64).
	DiesPerDrive int
	BlocksPerDie int
	// Seed derives every drive's RNG streams (drive i runs at
	// Seed + i*driveSeedStride).
	Seed uint64
	// StripePages is the striping unit in volume pages (default 1:
	// consecutive pages land on consecutive drives).
	StripePages int
	// Redundancy selects cross-drive protection: "none" (default),
	// "parity" (RAID-5 rotating parity) or "mirror" (RAID-1 pairs).
	Redundancy string
	// Spares is the number of hot-spare drives standing by to replace
	// dead members (default 0). Spares only attach when Redundancy is
	// not "none" — without redundancy there is nothing to rebuild from.
	Spares int
	// Faults is the deterministic drive-fault schedule (zero = none).
	Faults FaultPlan
	// RebuildRate throttles background rebuild traffic, in pages per
	// modelled second through the reserved "rebuild" QoS tenant
	// (0 = unthrottled; rebuild still yields to the per-round budget).
	RebuildRate float64
	// Cache shapes the host cache; a zero-capacity cache disables both
	// read caching and write-back buffering.
	Cache CacheConfig
	// Tenants declares the QoS population (default: one unthrottled
	// tenant named "default"). The name "rebuild" is reserved when
	// redundancy is enabled.
	Tenants []TenantConfig
	// RoundOps bounds how many tenant ops one scheduling round admits
	// (default 8 per drive).
	RoundOps int
	// HitLatency is the modelled host-side service time of a cache hit
	// (default 1µs).
	HitLatency time.Duration
	// Family selects the drives' ECC codec family (zero = adaptive BCH).
	Family ecc.Family
	// Env overrides the model environment (nil = sim.DefaultEnv()).
	Env *sim.Env
	// Controller overrides the per-die controller config (nil = defaults).
	Controller *controller.Config
	// Trace, when non-nil, collects virtual-time spans from every layer:
	// the front end (rounds, QoS stalls, cache traffic, reconstructions,
	// rebuild progress) as trace process 0 and each drive's stack (dies,
	// bus, codec, FTL background work) as its own process. nil disables
	// tracing at zero per-op cost.
	Trace *obs.Tracer
}

// Op is one tenant operation against the volume address space.
type Op struct {
	Tenant string
	Write  bool
	Page   int // volume page address
	Data   []byte
	// Buf, for reads, is an optional caller-owned destination: the page
	// is decoded straight into it and Result.Data aliases it (no per-op
	// allocation). The caller must not touch Buf until the op's Result
	// has surfaced from Drain, and two in-flight reads must never share
	// one Buf: drive workers decode into their ops' buffers concurrently,
	// so a shared Buf is a data race, not just a stale result.
	Buf []byte
	// Tag is an opaque caller token echoed in the Result, mirroring
	// dispatch.Request.Tag one layer up.
	Tag uint64
}

// Result reports one completed Op in deterministic schedule order.
type Result struct {
	Tenant   string
	Write    bool
	Page     int
	Tag      uint64
	CacheHit bool
	Drive    int // serving slot; -1 for pure cache traffic
	Data     []byte
	Latency  time.Duration
	Err      error
}

// Array is the striped multi-drive front end. The scheduling front end
// (Submit, Drain, Flush, Report, Close) is confined to one caller
// goroutine; only the drive workers run concurrently, strictly between
// a phase's dispatch and its barrier.
type Array struct {
	cfg   Config
	mode  string
	cache *hostCache
	sched *scheduler

	// slots are the logical array members; allDrives every physical
	// stack ever built (members + spares); sparePool the unattached
	// spares in attach order.
	slots      []*slot
	allDrives  []*drive
	sparePool  []*drive
	rebuildTen *tenant

	pageBytes    int
	stripes      int // stripe rows per drive
	perDriveLPAs int
	volumePages  int

	// written marks volume pages that have ever landed on a drive;
	// parityOK (parity mode) marks drive-local parity pages whose stored
	// parity matches the row's data.
	written  []bool
	parityOK []bool

	clock        time.Duration // fleet modelled clock
	rounds       int64
	stalls       int64
	parityStale  int64
	rebuiltPages int64
	pendingWB    []writeback // dirty evictions carried into the next round

	// trace is the host front end's span stream (nil when tracing is
	// off); every hook through it is front-end confined.
	trace *obs.Stream

	// Front-end-owned op-class histograms: degraded reads served by
	// reconstruction and rebuild page copies (neither belongs to any one
	// drive). retired accumulates the per-class histograms of stacks
	// that died mid-run, so fleet-level summaries never lose history.
	latDegraded obs.LatencyHist
	latRebuild  obs.LatencyHist
	retired     [4]obs.LatencyHist // clean, retried, soft, write

	// scr is the round's reusable staging (front-end confined). The
	// results handed back from round are copied by Drain before the next
	// round recycles them.
	scr roundScratch
	// phaseWG is runPhase's reusable barrier: phases are strictly
	// sequential, so the group is always at zero between uses.
	phaseWG sync.WaitGroup

	rebuilds []*RebuildReport
	closed   bool
}

// fill records one cache-miss read whose data back-fills the cache
// after the round's barrier.
type fill struct{ slot, page int }

// roundScratch holds the per-round staging slices reused across rounds,
// so a steady-state round performs no allocations of its own: host
// results, drive-bound actions, cache fills, the per-slot phase batches,
// and the flat executor's read/write bookkeeping.
type roundScratch struct {
	results []Result
	acts    []action
	fills   []fill
	batches [][]driveOp
	reads   []pendingRead
	writes  []flatWrite
}

// phaseBatches returns the reusable per-slot batch staging, emptied.
// Only the single-phase flat executor uses it; the multi-phase parity
// executor allocates per phase (overlapping lifetimes).
func (a *Array) phaseBatches(n int) [][]driveOp {
	if len(a.scr.batches) != n {
		a.scr.batches = make([][]driveOp, n)
	}
	b := a.scr.batches
	for i := range b {
		b[i] = b[i][:0]
	}
	return b
}

// New opens an array of cfg.Drives fresh drives plus cfg.Spares hot
// spares.
func New(cfg Config) (*Array, error) {
	if cfg.Drives < 1 {
		return nil, fmt.Errorf("array: need >= 1 drive, got %d", cfg.Drives)
	}
	if cfg.DiesPerDrive == 0 {
		cfg.DiesPerDrive = 2
	}
	if cfg.BlocksPerDie == 0 {
		cfg.BlocksPerDie = 64
	}
	if cfg.StripePages == 0 {
		cfg.StripePages = 1
	}
	if cfg.StripePages < 1 {
		return nil, fmt.Errorf("array: bad stripe unit %d", cfg.StripePages)
	}
	if cfg.RoundOps == 0 {
		cfg.RoundOps = 8 * cfg.Drives
	}
	if cfg.HitLatency == 0 {
		cfg.HitLatency = time.Microsecond
	}
	mode, err := normalizeRedundancy(cfg.Redundancy, cfg.Drives)
	if err != nil {
		return nil, err
	}
	cfg.Redundancy = mode
	if cfg.Spares < 0 {
		return nil, fmt.Errorf("array: negative spare count %d", cfg.Spares)
	}
	if cfg.RebuildRate < 0 || math.IsNaN(cfg.RebuildRate) || math.IsInf(cfg.RebuildRate, 0) {
		return nil, fmt.Errorf("array: bad rebuild rate %v", cfg.RebuildRate)
	}
	if err := cfg.Faults.validate(cfg.Drives); err != nil {
		return nil, err
	}
	env := sim.DefaultEnv()
	if cfg.Env != nil {
		env = *cfg.Env
	}
	ctrlCfg := controller.DefaultConfig()
	if cfg.Controller != nil {
		ctrlCfg = *cfg.Controller
	}
	cache, err := newHostCache(cfg.Cache)
	if err != nil {
		return nil, err
	}
	sched, err := newScheduler(cfg.Tenants)
	if err != nil {
		return nil, err
	}
	a := &Array{cfg: cfg, mode: mode, cache: cache, sched: sched}
	if mode != RedundancyNone {
		if _, dup := sched.byName[rebuildTenant]; dup {
			return nil, fmt.Errorf("array: tenant name %q is reserved when redundancy is enabled", rebuildTenant)
		}
		t, err := newTenant(TenantConfig{Name: rebuildTenant, Rate: cfg.RebuildRate})
		if err != nil {
			return nil, err
		}
		sched.tenants = append(sched.tenants, t)
		sched.byName[rebuildTenant] = t
		a.rebuildTen = t
	}
	if cfg.Trace != nil {
		host := cfg.Trace.Process(0, "host")
		host.Thread(hostTidSched, "scheduler")
		host.Thread(hostTidCache, "cache")
		host.Thread(hostTidRecov, "recovery")
		host.Thread(hostTidRebuild, "rebuild")
		for i, t := range sched.tenants {
			t.tid = hostTidTenant0 + int32(i)
			host.Thread(t.tid, "tenant "+t.cfg.Name)
		}
		a.trace = host.Stream()
	}
	faults := make(map[int]DriveFault, len(cfg.Faults.Drives))
	for _, df := range cfg.Faults.Drives {
		faults[df.Drive] = df
	}
	for i := 0; i < cfg.Drives+cfg.Spares; i++ {
		d, err := newDrive(i, cfg, env, ctrlCfg)
		if err != nil {
			a.Close()
			return nil, err
		}
		a.allDrives = append(a.allDrives, d)
	}
	for i := 0; i < cfg.Drives; i++ {
		s := &slot{id: i, d: a.allDrives[i]}
		if f, ok := faults[i]; ok {
			s.fault = f
			s.hasFault = true
			s.d.setFault(f, cfg.Faults.Seed)
		}
		a.slots = append(a.slots, s)
	}
	a.sparePool = append(a.sparePool, a.allDrives[cfg.Drives:]...)
	a.pageBytes = a.allDrives[0].disp.Geometry().PageDataBytes
	perDrive := a.allDrives[0].part.Capacity()
	a.stripes = perDrive / cfg.StripePages
	if a.stripes == 0 {
		a.Close()
		return nil, fmt.Errorf("array: stripe unit %d exceeds drive capacity %d pages",
			cfg.StripePages, perDrive)
	}
	a.perDriveLPAs = a.stripes * cfg.StripePages
	a.volumePages = a.perDriveLPAs * a.dataSlots()
	a.written = make([]bool, a.volumePages)
	if mode == RedundancyParity {
		a.parityOK = make([]bool, a.perDriveLPAs)
	}
	return a, nil
}

// VolumePages is the volume's capacity in pages (net of redundancy).
func (a *Array) VolumePages() int { return a.volumePages }

// PageBytes is the volume's page payload size.
func (a *Array) PageBytes() int { return a.pageBytes }

// Clock returns the fleet's modelled clock: the accumulated per-round
// critical path (slowest drive per phase) plus host-side service and
// QoS stall time.
func (a *Array) Clock() time.Duration { return a.clock }

// Submit queues one op on its tenant. Ops admit in QoS order, not
// submission order: one tenant's queue is FIFO, but the fair scheduler
// interleaves tenants, so an op that depends on another tenant's
// earlier op needs a Drain barrier between them. Results surface from
// Drain.
func (a *Array) Submit(op Op) error {
	if a.closed {
		return ErrClosed
	}
	if op.Page < 0 || op.Page >= a.volumePages {
		return fmt.Errorf("array: page %d outside volume [0,%d)", op.Page, a.volumePages)
	}
	if op.Write {
		if len(op.Data) != a.pageBytes {
			return fmt.Errorf("array: write needs %d bytes, got %d", a.pageBytes, len(op.Data))
		}
		// Copy: the caller may reuse its buffer; the op may sit queued
		// and then cached for many rounds.
		op.Data = append([]byte(nil), op.Data...)
	} else if op.Data != nil {
		return fmt.Errorf("array: read carries data")
	} else if op.Buf != nil && len(op.Buf) < a.pageBytes {
		return fmt.Errorf("array: read buffer needs %d bytes, got %d", a.pageBytes, len(op.Buf))
	}
	return a.sched.enqueue(op)
}

// Drain runs scheduling rounds until every tenant queue is empty and
// any active rebuild converged, returning completions in deterministic
// schedule order. A rebuild whose sources stay down (a second fault
// inside the repair window) is abandoned with its losses on record
// rather than spinning forever.
func (a *Array) Drain() ([]Result, error) {
	if a.closed {
		return nil, ErrClosed
	}
	var out []Result
	idle, idleLimit := 0, 4*a.perDriveLPAs+1024
	for a.sched.pending() > 0 || a.rebuildActive() {
		progress := a.rebuiltPages
		res, err := a.round()
		if err != nil {
			return out, err
		}
		out = append(out, res...)
		if a.sched.pending() == 0 && a.rebuildActive() {
			if a.rebuiltPages == progress {
				idle++
				if idle > idleLimit {
					a.abandonRebuild()
				}
			} else {
				idle = 0
			}
		}
	}
	// Dirty evictions raised by the last round's cache fills would
	// otherwise sit staged forever (they are already counted as
	// writebacks): land them before handing control back.
	a.drainPending()
	return out, nil
}

// drainPending executes any carried write-backs as one extra round.
func (a *Array) drainPending() {
	if len(a.pendingWB) == 0 {
		return
	}
	acts := a.wbActions(a.pendingWB)
	a.pendingWB = nil
	a.advance(a.execRound(acts, false))
}

// wbActions converts staged write-backs into round actions (no host
// result slot: they are the cache's own traffic).
func (a *Array) wbActions(wbs []writeback) []action {
	acts := make([]action, 0, len(wbs))
	for _, wb := range wbs {
		acts = append(acts, action{write: true, page: wb.page, data: wb.data})
	}
	return acts
}

// round runs one scheduling round: fire scheduled faults, refill
// buckets, pick fairly, serve from cache, then hand the drive-bound
// actions (plus any rebuild traffic) to the redundancy-mode executor
// and judge each faulted drive's UBER climate at the barrier.
func (a *Array) round() ([]Result, error) {
	a.rounds++
	roundStart := a.clock
	a.applyScheduledFaults()
	picked := a.sched.pick(a.cfg.RoundOps)
	if len(picked) == 0 && !a.rebuildActive() {
		// Every queued tenant is out of tokens: jump the fleet clock to
		// the earliest refill instead of spinning.
		wait := a.sched.stallWait()
		if wait <= 0 {
			return nil, fmt.Errorf("array: scheduler stalled with %d ops pending", a.sched.pending())
		}
		a.stalls++
		a.trace.Span1(hostTidSched, "qos_stall", a.clock, wait, "round", a.rounds)
		a.advance(wait)
		return nil, nil
	}

	if cap(a.scr.results) < len(picked) {
		a.scr.results = make([]Result, len(picked))
	}
	results := a.scr.results[:len(picked)]
	for i := range results {
		results[i] = Result{}
	}
	a.scr.results = results
	acts := a.scr.acts[:0]

	// Dirty evictions from the previous round's cache fills flush
	// first, preserving first-dirtied order ahead of new traffic.
	for _, wb := range a.pendingWB {
		acts = append(acts, action{write: true, page: wb.page, data: wb.data})
	}
	a.pendingWB = a.pendingWB[:0]

	fills := a.scr.fills[:0]
	var hostTime time.Duration

	for i, op := range picked {
		r := &results[i]
		r.Tenant, r.Write, r.Page, r.Tag = op.Tenant, op.Write, op.Page, op.Tag
		r.Drive = -1
		t := a.sched.byName[op.Tenant]
		if op.Write {
			t.stats.Writes++
			t.stats.BytesWrite += int64(len(op.Data))
			if a.cache.enabled() {
				// Write-back: ack into the buffer; the drive write
				// happens on eviction or flush.
				r.CacheHit = true
				r.Latency = a.cfg.HitLatency
				hostTime += a.cfg.HitLatency
				if wb := a.cache.put(op.Page, op.Data, true); wb != nil {
					acts = append(acts, a.wbActions([]writeback{*wb})...)
				}
				continue
			}
			acts = append(acts, action{write: true, page: op.Page, data: op.Data, res: r})
			continue
		}
		t.stats.Reads++
		if data, ok := a.cache.lookup(op.Page); ok {
			t.stats.CacheHits++
			t.stats.BytesRead += int64(len(data))
			a.trace.Instant1(hostTidCache, "cache_hit", a.clock, "page", int64(op.Page))
			r.CacheHit = true
			if op.Buf != nil {
				r.Data = op.Buf[:len(data)]
				copy(r.Data, data)
			} else {
				r.Data = append([]byte(nil), data...)
			}
			r.Latency = a.cfg.HitLatency
			hostTime += a.cfg.HitLatency
			continue
		}
		acts = append(acts, action{page: op.Page, res: r, buf: op.Buf})
		if a.cache.enabled() {
			a.trace.Instant1(hostTidCache, "cache_miss", a.clock, "page", int64(op.Page))
			fills = append(fills, fill{slot: i, page: op.Page})
		}
	}

	// Watermark flush: drain the write-back buffer down to the low
	// water once it crosses the high water, in first-dirtied order.
	high, low := a.watermarks()
	if a.cache.enabled() && a.cache.dirtyCount() >= high {
		acts = append(acts, a.wbActions(a.cache.flush(a.cache.dirtyCount()-low))...)
	}
	a.scr.acts, a.scr.fills = acts, fills

	progress := a.rebuiltPages
	crit := a.execRound(acts, true)
	a.judgeClimate()

	// Post-barrier, deterministic order: account read bytes, record
	// per-tenant latencies against any SLO, fill the cache with miss
	// data (evictions carry to the next round), and advance the fleet
	// clock by the round's critical path.
	for i := range results {
		r := &results[i]
		t := a.sched.byName[r.Tenant]
		if !r.Write && !r.CacheHit && r.Err == nil {
			t.stats.BytesRead += int64(len(r.Data))
		}
		if r.Err == nil {
			t.observe(r.Latency, a.rounds)
			if a.trace != nil {
				name := "read"
				if r.Write {
					name = "write"
				}
				a.trace.Span2(t.tid, name, roundStart, r.Latency,
					"page", int64(r.Page), "drive", int64(r.Drive))
			}
		}
	}
	for _, fl := range fills {
		r := &results[fl.slot]
		if r.Err != nil {
			continue
		}
		if wb := a.cache.fill(fl.page, r.Data); wb != nil {
			a.pendingWB = append(a.pendingWB, *wb)
		}
	}
	if len(picked) == 0 && crit == 0 && hostTime == 0 && a.rebuiltPages == progress && a.rebuildActive() {
		// Rebuild-only round that made no progress (token-starved or
		// sources deferred): jump the clock to the next rebuild token.
		wait := a.rebuildTen.tokenWait()
		if wait <= 0 {
			wait = time.Microsecond
		}
		a.stalls++
		a.trace.Span1(hostTidSched, "qos_stall", a.clock, wait, "round", a.rounds)
		a.advance(wait)
		return nil, nil
	}
	a.advance(crit + hostTime)
	if a.trace != nil && a.clock > roundStart {
		a.trace.Span2(hostTidSched, "round", roundStart, a.clock-roundStart,
			"round", a.rounds, "ops", int64(len(picked)))
	}
	return results, nil
}

// watermarks resolves the configured dirty watermarks against their
// defaults (3/4 and 1/4 of capacity).
func (a *Array) watermarks() (high, low int) {
	high, low = a.cfg.Cache.DirtyHighWater, a.cfg.Cache.DirtyLowWater
	if high <= 0 {
		high = a.cache.cap * 3 / 4
		if high < 1 {
			high = 1
		}
	}
	if low < 0 || low >= high {
		low = a.cache.cap / 4
		if low >= high {
			low = high - 1
		}
	}
	return high, low
}

// advance moves the fleet clock and refills every token bucket.
func (a *Array) advance(dt time.Duration) {
	if dt <= 0 {
		return
	}
	a.clock += dt
	a.sched.refill(dt)
}

// Flush writes back every dirty page, in first-dirtied order, through
// the drives. The write-back buffer is empty afterwards.
func (a *Array) Flush() error {
	if a.closed {
		return ErrClosed
	}
	wbs := append(a.pendingWB, a.cache.flush(0)...)
	a.pendingWB = nil
	if len(wbs) == 0 {
		return nil
	}
	a.advance(a.execRound(a.wbActions(wbs), false))
	return nil
}

// Close stops the drive workers and releases every drive (members,
// spares, and stacks already killed by faults). Dirty cache pages are
// NOT flushed — call Flush first if they matter. Idempotent; calls
// into the array after Close return ErrClosed.
func (a *Array) Close() {
	if a.closed {
		return
	}
	a.closed = true
	for _, d := range a.allDrives {
		if d != nil {
			d.close()
		}
	}
}
