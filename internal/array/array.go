// Package array is the fleet-scale front end over the single-drive
// stack: an Array stripes a volume address space across N independent
// drives (each a full dispatcher + FTL instance with its own seeded RNG
// streams), serves reads through a host-side cache with pluggable
// eviction, buffers writes in a write-back buffer with deterministic
// flush ordering, and schedules tenants through token-bucket QoS.
//
// Determinism at scale is the design center. The front end runs in
// rounds: a single-threaded scheduler picks the round's ops, batches
// them per drive, the per-drive workers execute their batches
// concurrently, and a barrier joins them before any order-sensitive
// work (cache fills, telemetry merges, clock advance) happens — always
// in drive-index order, never completion order. Two runs with the same
// seed and submission sequence produce byte-identical fleet reports no
// matter how the goroutines interleave.
package array

import (
	"fmt"
	"sync"
	"time"

	"xlnand/internal/controller"
	"xlnand/internal/ecc"
	"xlnand/internal/sim"
)

// Config shapes an Array.
type Config struct {
	// Drives is the number of independent drive instances (>= 1).
	Drives int
	// DiesPerDrive and BlocksPerDie shape each drive (defaults 2 and 64).
	DiesPerDrive int
	BlocksPerDie int
	// Seed derives every drive's RNG streams (drive i runs at
	// Seed + i*driveSeedStride).
	Seed uint64
	// StripePages is the striping unit in volume pages (default 1:
	// consecutive pages land on consecutive drives).
	StripePages int
	// Cache shapes the host cache; a zero-capacity cache disables both
	// read caching and write-back buffering.
	Cache CacheConfig
	// Tenants declares the QoS population (default: one unthrottled
	// tenant named "default").
	Tenants []TenantConfig
	// RoundOps bounds how many tenant ops one scheduling round admits
	// (default 8 per drive).
	RoundOps int
	// HitLatency is the modelled host-side service time of a cache hit
	// (default 1µs).
	HitLatency time.Duration
	// Family selects the drives' ECC codec family (zero = adaptive BCH).
	Family ecc.Family
	// Env overrides the model environment (nil = sim.DefaultEnv()).
	Env *sim.Env
	// Controller overrides the per-die controller config (nil = defaults).
	Controller *controller.Config
}

// Op is one tenant operation against the volume address space.
type Op struct {
	Tenant string
	Write  bool
	Page   int // volume page address
	Data   []byte
	// Tag is an opaque caller token echoed in the Result, mirroring
	// dispatch.Request.Tag one layer up.
	Tag uint64
}

// Result reports one completed Op in deterministic schedule order.
type Result struct {
	Tenant   string
	Write    bool
	Page     int
	Tag      uint64
	CacheHit bool
	Drive    int // serving drive; -1 for pure cache traffic
	Data     []byte
	Latency  time.Duration
	Err      error
}

// Array is the striped multi-drive front end. The scheduling front end
// (Submit, Drain, Flush, Report, Close) is confined to one caller
// goroutine; only the drive workers run concurrently, strictly between
// a round's dispatch and its barrier.
type Array struct {
	cfg    Config
	drives []*drive
	cache  *hostCache
	sched  *scheduler

	pageBytes   int
	stripes     int // stripes per drive
	volumePages int

	clock     time.Duration // fleet modelled clock
	rounds    int64
	stalls    int64
	pendingWB []writeback // dirty evictions carried into the next round

	closed bool
}

// New opens an array of cfg.Drives fresh drives.
func New(cfg Config) (*Array, error) {
	if cfg.Drives < 1 {
		return nil, fmt.Errorf("array: need >= 1 drive, got %d", cfg.Drives)
	}
	if cfg.DiesPerDrive == 0 {
		cfg.DiesPerDrive = 2
	}
	if cfg.BlocksPerDie == 0 {
		cfg.BlocksPerDie = 64
	}
	if cfg.StripePages == 0 {
		cfg.StripePages = 1
	}
	if cfg.StripePages < 1 {
		return nil, fmt.Errorf("array: bad stripe unit %d", cfg.StripePages)
	}
	if cfg.RoundOps == 0 {
		cfg.RoundOps = 8 * cfg.Drives
	}
	if cfg.HitLatency == 0 {
		cfg.HitLatency = time.Microsecond
	}
	env := sim.DefaultEnv()
	if cfg.Env != nil {
		env = *cfg.Env
	}
	ctrlCfg := controller.DefaultConfig()
	if cfg.Controller != nil {
		ctrlCfg = *cfg.Controller
	}
	cache, err := newHostCache(cfg.Cache)
	if err != nil {
		return nil, err
	}
	sched, err := newScheduler(cfg.Tenants)
	if err != nil {
		return nil, err
	}
	a := &Array{cfg: cfg, cache: cache, sched: sched}
	for i := 0; i < cfg.Drives; i++ {
		d, err := newDrive(i, cfg, env, ctrlCfg)
		if err != nil {
			a.Close()
			return nil, err
		}
		a.drives = append(a.drives, d)
	}
	a.pageBytes = a.drives[0].disp.Geometry().PageDataBytes
	perDrive := a.drives[0].part.Capacity()
	a.stripes = perDrive / cfg.StripePages
	if a.stripes == 0 {
		a.Close()
		return nil, fmt.Errorf("array: stripe unit %d exceeds drive capacity %d pages",
			cfg.StripePages, perDrive)
	}
	a.volumePages = a.stripes * cfg.StripePages * cfg.Drives
	return a, nil
}

// VolumePages is the volume's capacity in pages.
func (a *Array) VolumePages() int { return a.volumePages }

// PageBytes is the volume's page payload size.
func (a *Array) PageBytes() int { return a.pageBytes }

// Clock returns the fleet's modelled clock: the accumulated per-round
// critical path (slowest drive per round) plus host-side service and
// QoS stall time.
func (a *Array) Clock() time.Duration { return a.clock }

// locate maps a volume page to (drive, drive-local LPA).
func (a *Array) locate(page int) (drv, lpa int) {
	stripe := page / a.cfg.StripePages
	off := page % a.cfg.StripePages
	drv = stripe % a.cfg.Drives
	lpa = (stripe/a.cfg.Drives)*a.cfg.StripePages + off
	return drv, lpa
}

// Submit queues one op on its tenant. Ops admit in QoS order, not
// submission order: one tenant's queue is FIFO, but the fair scheduler
// interleaves tenants, so an op that depends on another tenant's
// earlier op needs a Drain barrier between them. Results surface from
// Drain.
func (a *Array) Submit(op Op) error {
	if a.closed {
		return fmt.Errorf("array: closed")
	}
	if op.Page < 0 || op.Page >= a.volumePages {
		return fmt.Errorf("array: page %d outside volume [0,%d)", op.Page, a.volumePages)
	}
	if op.Write {
		if len(op.Data) != a.pageBytes {
			return fmt.Errorf("array: write needs %d bytes, got %d", a.pageBytes, len(op.Data))
		}
		// Copy: the caller may reuse its buffer; the op may sit queued
		// and then cached for many rounds.
		op.Data = append([]byte(nil), op.Data...)
	} else if op.Data != nil {
		return fmt.Errorf("array: read carries data")
	}
	return a.sched.enqueue(op)
}

// Drain runs scheduling rounds until every tenant queue is empty and
// returns the completions in deterministic schedule order.
func (a *Array) Drain() ([]Result, error) {
	if a.closed {
		return nil, fmt.Errorf("array: closed")
	}
	var out []Result
	for a.sched.pending() > 0 {
		res, err := a.round()
		if err != nil {
			return out, err
		}
		out = append(out, res...)
	}
	// Dirty evictions raised by the last round's cache fills would
	// otherwise sit staged forever (they are already counted as
	// writebacks): land them before handing control back.
	a.drainPending()
	return out, nil
}

// drainPending executes any carried write-backs as one extra batch.
func (a *Array) drainPending() {
	if len(a.pendingWB) == 0 {
		return
	}
	batches := make([][]driveOp, a.cfg.Drives)
	a.stageWritebacks(a.pendingWB, batches)
	a.pendingWB = nil
	a.runBatches(batches)
	a.advance(a.critTime())
}

// critTime is the last round's critical path: the slowest drive.
func (a *Array) critTime() time.Duration {
	var crit time.Duration
	for _, d := range a.drives {
		if d.roundElapsed > crit {
			crit = d.roundElapsed
		}
	}
	return crit
}

// round runs one scheduling round: refill buckets, pick fairly, serve
// from cache, batch misses and write-backs per drive, execute the
// batches concurrently, join at the barrier, then merge in drive-index
// order.
func (a *Array) round() ([]Result, error) {
	a.rounds++
	picked := a.sched.pick(a.cfg.RoundOps)
	if len(picked) == 0 {
		// Every queued tenant is out of tokens: jump the fleet clock to
		// the earliest refill instead of spinning.
		wait := a.sched.stallWait()
		if wait <= 0 {
			return nil, fmt.Errorf("array: scheduler stalled with %d ops pending", a.sched.pending())
		}
		a.stalls++
		a.advance(wait)
		return nil, nil
	}

	results := make([]Result, len(picked))
	batches := make([][]driveOp, a.cfg.Drives)

	// Dirty evictions from the previous round's cache fills flush
	// first, preserving first-dirtied order ahead of new traffic.
	a.stageWritebacks(a.pendingWB, batches)
	a.pendingWB = nil

	type fill struct{ slot, page int }
	var fills []fill
	var hostTime time.Duration

	for i, op := range picked {
		r := &results[i]
		r.Tenant, r.Write, r.Page, r.Tag = op.Tenant, op.Write, op.Page, op.Tag
		r.Drive = -1
		t := a.sched.byName[op.Tenant]
		if op.Write {
			t.stats.Writes++
			t.stats.BytesWrite += int64(len(op.Data))
			if a.cache.enabled() {
				// Write-back: ack into the buffer; the drive write
				// happens on eviction or flush.
				r.CacheHit = true
				r.Latency = a.cfg.HitLatency
				hostTime += a.cfg.HitLatency
				if wb := a.cache.put(op.Page, op.Data, true); wb != nil {
					a.stageWritebacks([]writeback{*wb}, batches)
				}
				continue
			}
			drv, lpa := a.locate(op.Page)
			batches[drv] = append(batches[drv], driveOp{write: true, lpa: lpa, data: op.Data, res: r})
			continue
		}
		t.stats.Reads++
		if data, ok := a.cache.lookup(op.Page); ok {
			t.stats.CacheHits++
			t.stats.BytesRead += int64(len(data))
			r.CacheHit = true
			r.Data = append([]byte(nil), data...)
			r.Latency = a.cfg.HitLatency
			hostTime += a.cfg.HitLatency
			continue
		}
		drv, lpa := a.locate(op.Page)
		batches[drv] = append(batches[drv], driveOp{lpa: lpa, res: r})
		if a.cache.enabled() {
			fills = append(fills, fill{slot: i, page: op.Page})
		}
	}

	// Watermark flush: drain the write-back buffer down to the low
	// water once it crosses the high water, in first-dirtied order.
	high, low := a.watermarks()
	if a.cache.enabled() && a.cache.dirtyCount() >= high {
		a.stageWritebacks(a.cache.flush(a.cache.dirtyCount()-low), batches)
	}

	a.runBatches(batches)

	// Post-barrier, deterministic order: account read bytes, fill the
	// cache with miss data (evictions carry to the next round), and
	// advance the fleet clock by the slowest drive's round time.
	for i := range results {
		r := &results[i]
		if !r.Write && !r.CacheHit && r.Err == nil {
			a.sched.byName[r.Tenant].stats.BytesRead += int64(len(r.Data))
		}
	}
	for _, fl := range fills {
		r := &results[fl.slot]
		if r.Err != nil {
			continue
		}
		if wb := a.cache.fill(fl.page, r.Data); wb != nil {
			a.pendingWB = append(a.pendingWB, *wb)
		}
	}
	a.advance(a.critTime() + hostTime)
	return results, nil
}

// watermarks resolves the configured dirty watermarks against their
// defaults (3/4 and 1/4 of capacity).
func (a *Array) watermarks() (high, low int) {
	high, low = a.cfg.Cache.DirtyHighWater, a.cfg.Cache.DirtyLowWater
	if high <= 0 {
		high = a.cache.cap * 3 / 4
		if high < 1 {
			high = 1
		}
	}
	if low < 0 || low >= high {
		low = a.cache.cap / 4
		if low >= high {
			low = high - 1
		}
	}
	return high, low
}

// stageWritebacks appends dirty pages to their drives' batches, in the
// given (first-dirtied) order. Write-backs carry no result slot — they
// are the cache's own traffic.
func (a *Array) stageWritebacks(wbs []writeback, batches [][]driveOp) {
	for _, wb := range wbs {
		drv, lpa := a.locate(wb.page)
		batches[drv] = append(batches[drv], driveOp{write: true, lpa: lpa, data: wb.data})
	}
}

// runBatches hands each non-empty batch to its drive worker and blocks
// at the barrier until all complete.
func (a *Array) runBatches(batches [][]driveOp) {
	var wg sync.WaitGroup
	for i, b := range batches {
		if len(b) == 0 {
			a.drives[i].roundElapsed = 0
			continue
		}
		wg.Add(1)
		a.drives[i].jobs <- driveJob{batch: b, wg: &wg}
	}
	wg.Wait()
}

// advance moves the fleet clock and refills every token bucket.
func (a *Array) advance(dt time.Duration) {
	if dt <= 0 {
		return
	}
	a.clock += dt
	a.sched.refill(dt)
}

// Flush writes back every dirty page, in first-dirtied order, through
// the drives. The write-back buffer is empty afterwards.
func (a *Array) Flush() error {
	if a.closed {
		return fmt.Errorf("array: closed")
	}
	wbs := append(a.pendingWB, a.cache.flush(0)...)
	a.pendingWB = nil
	if len(wbs) == 0 {
		return nil
	}
	batches := make([][]driveOp, a.cfg.Drives)
	a.stageWritebacks(wbs, batches)
	a.runBatches(batches)
	a.advance(a.critTime())
	return nil
}

// Close stops the drive workers and releases every drive. Dirty cache
// pages are NOT flushed — call Flush first if they matter.
func (a *Array) Close() {
	if a.closed {
		return
	}
	a.closed = true
	for _, d := range a.drives {
		if d != nil {
			d.close()
		}
	}
}
