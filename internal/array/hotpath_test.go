package array

import (
	"fmt"
	"testing"
)

// BenchmarkHotpathReadIOPS is the raw-speed gauge for the simulation
// hot path: an array with the host cache disabled, so every op is a
// drive-bound read crossing cache → QoS → round barrier → FTL →
// dispatch → controller → NAND model. The 16-drive point is the
// canonical gauge; the 64-drive point is the fleet-scale one the
// hundreds-of-drives soak leans on. The wall-clock reads/second is
// reported as sim_read_iops; CI archives it in BENCH_hotpath.json and
// gates regressions against the committed baseline.
func BenchmarkHotpathReadIOPS(b *testing.B) {
	for _, drives := range []int{16, 64} {
		b.Run(fmt.Sprintf("drives=%d", drives), func(b *testing.B) {
			cfg := testConfig(drives)
			a, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer a.Close()
			n := a.VolumePages()
			data := make([]byte, a.PageBytes())
			for p := 0; p < n; p++ {
				if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: data}); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := a.Drain(); err != nil {
				b.Fatal(err)
			}
			// One buffer per in-flight op: ops sharing a Buf inside one
			// Drain window would race, since different drive workers
			// decode into their ops' buffers concurrently.
			bufs := make([][]byte, 256)
			for i := range bufs {
				bufs[i] = make([]byte, a.PageBytes())
			}
			// Warm pass: one read per page, so every drive controller's
			// first-read decode warm-up (lazy per-capability codec build)
			// happens before the timer — the measured loop is steady state.
			for p := 0; p < n; p++ {
				if err := a.Submit(Op{Tenant: "default", Page: p, Buf: bufs[p%256]}); err != nil {
					b.Fatal(err)
				}
				if p%256 == 255 {
					if _, err := a.Drain(); err != nil {
						b.Fatal(err)
					}
				}
			}
			if _, err := a.Drain(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := a.Submit(Op{Tenant: "default", Page: (i * 13) % n, Buf: bufs[i%256]}); err != nil {
					b.Fatal(err)
				}
				if i%256 == 255 {
					if _, err := a.Drain(); err != nil {
						b.Fatal(err)
					}
				}
			}
			if _, err := a.Drain(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			elapsed := b.Elapsed().Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed, "sim_read_iops")
			}
		})
	}
}
