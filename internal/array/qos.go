package array

import (
	"fmt"
	"math"
	"time"

	"xlnand/internal/obs"
)

// TenantConfig declares one tenant sharing the array.
type TenantConfig struct {
	Name string
	// Rate is the sustained token refill rate in page operations per
	// modelled second; each read or write costs one token. Rate <= 0
	// means unthrottled.
	Rate float64
	// Burst caps the bucket (tokens accumulate while the tenant idles).
	// Defaults to max(1, Rate/10) for throttled tenants.
	Burst float64
	// SLOTarget is the tenant's per-op latency objective (0 = no SLO).
	// Every completed op whose end-to-end modelled latency exceeds the
	// target counts as a breach; breaches and the rounds they occurred
	// in surface in the tenant's FleetReport entry.
	SLOTarget time.Duration
}

// TenantStats is one tenant's merged throughput climate.
type TenantStats struct {
	Name string `json:"name"`
	// Configured sustained rate, ops per modelled second (0 = unlimited).
	Rate float64 `json:"rate_ops_per_sec"`
	// Ops served, split by direction and by where reads were served.
	Reads      int64 `json:"reads"`
	Writes     int64 `json:"writes"`
	CacheHits  int64 `json:"cache_hits"`
	BytesRead  int64 `json:"bytes_read"`
	BytesWrite int64 `json:"bytes_written"`
	// Throttled counts scheduler passes in which this tenant had work
	// queued but no tokens — the visible cost of its budget.
	Throttled int64 `json:"throttled"`
	// Latency summarizes the tenant's end-to-end op latencies (cache
	// hits included) when any op completed.
	Latency *obs.HistSnapshot `json:"latency,omitempty"`
	// SLO accounting, present only for tenants with a latency objective:
	// the configured target, ops that missed it, and the first rounds
	// (up to sloBreachRoundsCap) in which a miss occurred.
	SLOTargetUs  float64 `json:"slo_target_us,omitempty"`
	SLOBreaches  int64   `json:"slo_breaches,omitempty"`
	BreachRounds []int64 `json:"slo_breach_rounds,omitempty"`
}

// sloBreachRoundsCap bounds the recorded breach-round list per tenant;
// the breach counter keeps the full count regardless.
const sloBreachRoundsCap = 64

// tenant is the scheduler's per-tenant state: a token bucket refilled
// on the fleet's modelled clock plus the pending-op queue. The queue is
// queue[head:]: grants advance head instead of reslicing away the
// front, so a drained queue snaps back to the start of its backing
// array and steady-state submit/serve cycles stop allocating.
type tenant struct {
	cfg    TenantConfig
	tokens float64
	queue  []Op
	head   int
	stats  TenantStats

	// Observability, front-end confined: the end-to-end latency
	// histogram (recorded post-barrier in round order), SLO breach
	// accounting, and the tenant's trace thread id.
	lat             obs.LatencyHist
	sloBreaches     int64
	breachRounds    []int64
	lastBreachRound int64
	tid             int32
}

// observe records one completed op's end-to-end latency and judges it
// against the tenant's SLO. Breach rounds dedupe per round and cap at
// sloBreachRoundsCap entries; the counter keeps the full tally.
func (t *tenant) observe(lat time.Duration, round int64) {
	t.lat.Record(lat)
	if t.cfg.SLOTarget <= 0 || lat <= t.cfg.SLOTarget {
		return
	}
	t.sloBreaches++
	if t.lastBreachRound != round {
		t.lastBreachRound = round
		if len(t.breachRounds) < sloBreachRoundsCap {
			t.breachRounds = append(t.breachRounds, round)
		}
	}
}

// newTenant validates and initialises one tenant; buckets start full so
// a fresh tenant can burst immediately.
func newTenant(cfg TenantConfig) (*tenant, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("array: tenant with empty name")
	}
	if cfg.Rate < 0 || math.IsNaN(cfg.Rate) || math.IsInf(cfg.Rate, 0) {
		return nil, fmt.Errorf("array: tenant %q: bad rate %v", cfg.Name, cfg.Rate)
	}
	if cfg.Rate > 0 && cfg.Burst <= 0 {
		cfg.Burst = math.Max(1, cfg.Rate/10)
	}
	if cfg.Rate > 0 && cfg.Burst < 1 {
		// A bucket that can never hold a whole token would stall forever.
		return nil, fmt.Errorf("array: tenant %q: burst %v below one token", cfg.Name, cfg.Burst)
	}
	if cfg.SLOTarget < 0 {
		return nil, fmt.Errorf("array: tenant %q: negative SLO target %v", cfg.Name, cfg.SLOTarget)
	}
	t := &tenant{cfg: cfg, tokens: cfg.Burst}
	t.stats.Name = cfg.Name
	t.stats.Rate = cfg.Rate
	return t, nil
}

// limited reports whether this tenant runs against a token budget.
func (t *tenant) limited() bool { return t.cfg.Rate > 0 }

// refill accrues tokens for dt of modelled time, capped at the burst.
func (t *tenant) refill(dt time.Duration) {
	if !t.limited() || dt <= 0 {
		return
	}
	t.tokens = math.Min(t.cfg.Burst, t.tokens+t.cfg.Rate*dt.Seconds())
}

// take spends one token if available.
func (t *tenant) take() bool {
	if !t.limited() {
		return true
	}
	if t.tokens < 1 {
		return false
	}
	t.tokens--
	return true
}

// tokenWait returns the modelled time until this tenant next holds a
// whole token, or a negative duration if it never will (unlimited
// tenants wait zero).
func (t *tenant) tokenWait() time.Duration {
	if !t.limited() {
		return 0
	}
	if t.tokens >= 1 {
		return 0
	}
	need := 1 - t.tokens
	d := time.Duration(math.Ceil(need / t.cfg.Rate * float64(time.Second)))
	if d < 1 {
		// Float crumbs (tokens like 0.999…) must still advance the
		// clock, or a stall round would spin without refilling anything.
		d = 1
	}
	return d
}

// scheduler is the fair per-tenant front end: tenants in declared
// order, a rotating round-robin start so no tenant owns the first slot,
// one op granted per tenant per pass. All state is confined to the
// array's front-end goroutine.
type scheduler struct {
	tenants []*tenant
	byName  map[string]*tenant
	round   int
	// pickBuf backs pick's result, reused round over round: exactly one
	// round's pick is alive at a time on the front-end goroutine.
	pickBuf []Op
}

func newScheduler(cfgs []TenantConfig) (*scheduler, error) {
	if len(cfgs) == 0 {
		cfgs = []TenantConfig{{Name: "default"}}
	}
	s := &scheduler{byName: make(map[string]*tenant, len(cfgs))}
	for _, cfg := range cfgs {
		t, err := newTenant(cfg)
		if err != nil {
			return nil, err
		}
		if _, dup := s.byName[cfg.Name]; dup {
			return nil, fmt.Errorf("array: duplicate tenant %q", cfg.Name)
		}
		s.tenants = append(s.tenants, t)
		s.byName[cfg.Name] = t
	}
	return s, nil
}

// enqueue appends an op to its tenant's queue.
func (s *scheduler) enqueue(op Op) error {
	t, ok := s.byName[op.Tenant]
	if !ok {
		return fmt.Errorf("array: unknown tenant %q", op.Tenant)
	}
	if t.head == len(t.queue) {
		// Fully drained: rewind onto the start of the backing array.
		t.queue, t.head = t.queue[:0], 0
	} else if t.head > 64 && 2*t.head >= len(t.queue) {
		// Mostly-served long queue: compact the live tail down so the
		// backing array stops growing without bound.
		n := copy(t.queue, t.queue[t.head:])
		t.queue, t.head = t.queue[:n], 0
	}
	t.queue = append(t.queue, op)
	return nil
}

// pending reports the total queued ops across tenants.
func (s *scheduler) pending() int {
	n := 0
	for _, t := range s.tenants {
		n += len(t.queue) - t.head
	}
	return n
}

// refill accrues tokens on every bucket for dt of modelled time.
func (s *scheduler) refill(dt time.Duration) {
	for _, t := range s.tenants {
		t.refill(dt)
	}
}

// pick selects up to max ops for one round: repeated round-robin passes
// granting at most one op per tenant per pass, starting each round at a
// rotating offset. A tenant with queued work but an empty bucket is
// skipped (and its Throttled counter bumped once per pass), so a greedy
// tenant can never push past its token rate while others wait.
func (s *scheduler) pick(max int) []Op {
	if max <= 0 {
		return nil
	}
	if cap(s.pickBuf) < max {
		s.pickBuf = make([]Op, 0, max)
	}
	picked := s.pickBuf[:0]
	start := s.round % len(s.tenants)
	s.round++
	for len(picked) < max {
		granted := false
		for i := 0; i < len(s.tenants) && len(picked) < max; i++ {
			t := s.tenants[(start+i)%len(s.tenants)]
			if t.head == len(t.queue) {
				continue
			}
			if !t.take() {
				t.stats.Throttled++
				continue
			}
			picked = append(picked, t.queue[t.head])
			t.head++
			granted = true
		}
		if !granted {
			break
		}
	}
	return picked
}

// stallWait returns the shortest modelled wait after which some blocked
// tenant can run, or 0 when nothing is blocked on tokens. Used when a
// round picks nothing: the fleet clock jumps forward instead of
// busy-spinning.
func (s *scheduler) stallWait() time.Duration {
	var best time.Duration
	for _, t := range s.tenants {
		if t.head == len(t.queue) {
			continue
		}
		w := t.tokenWait()
		if w <= 0 {
			continue
		}
		if best == 0 || w < best {
			best = w
		}
	}
	return best
}

// stats returns per-tenant counters in declared order, folding in the
// latency snapshot and SLO accounting gathered since the last call.
func (s *scheduler) stats() []TenantStats {
	out := make([]TenantStats, len(s.tenants))
	for i, t := range s.tenants {
		out[i] = t.stats
		if t.lat.Count() > 0 {
			snap := t.lat.Snapshot()
			out[i].Latency = &snap
		}
		if t.cfg.SLOTarget > 0 {
			out[i].SLOTargetUs = float64(t.cfg.SLOTarget) / float64(time.Microsecond)
			out[i].SLOBreaches = t.sloBreaches
			out[i].BreachRounds = t.breachRounds
		}
	}
	return out
}
