package array

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// TestParityGeometry pins the RAID-5 address math: locate and pageOf
// are inverses, no data page ever lands on its row's parity slot, and
// every (slot, lpa) cell is used at most once.
func TestParityGeometry(t *testing.T) {
	for _, sp := range []int{1, 4} {
		a := &Array{cfg: Config{Drives: 5, StripePages: sp}, mode: RedundancyParity}
		seen := map[[2]int]int{}
		pages := 5 * 4 * sp * 4 // a few full parity rotations
		for p := 0; p < pages; p++ {
			drv, lpa := a.locate(p)
			row, _ := a.rowOff(lpa)
			if drv == a.parityLoc(row) {
				t.Fatalf("stripe %d: page %d landed on parity slot %d", sp, p, drv)
			}
			if back := a.pageOf(drv, lpa); back != p {
				t.Fatalf("stripe %d: pageOf(locate(%d)) = %d", sp, p, back)
			}
			key := [2]int{drv, lpa}
			if prev, dup := seen[key]; dup {
				t.Fatalf("stripe %d: pages %d and %d share slot %d lpa %d", sp, prev, p, drv, lpa)
			}
			seen[key] = p
		}
		// Every parity cell resolves to no data page.
		for row := 0; row < 8; row++ {
			pd := a.parityLoc(row)
			for off := 0; off < sp; off++ {
				if got := a.pageOf(pd, row*sp+off); got != -1 {
					t.Fatalf("parity cell slot %d row %d resolved to page %d", pd, row, got)
				}
			}
		}
	}
}

// TestErrClosed pins the typed post-Close contract: Submit, Drain and
// Flush all return ErrClosed, and double-Close is a no-op.
func TestErrClosed(t *testing.T) {
	a, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	a.Close() // idempotent
	if err := a.Submit(Op{Tenant: "default", Page: 0}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
	if _, err := a.Drain(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Drain after Close: %v, want ErrClosed", err)
	}
	if err := a.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close: %v, want ErrClosed", err)
	}
}

// TestRedundancyValidation pins config rejection: parity below three
// drives, mirror with odd counts, unknown modes, malformed fault plans,
// and the reserved rebuild tenant name.
func TestRedundancyValidation(t *testing.T) {
	bad := []Config{
		func() Config { c := testConfig(2); c.Redundancy = "parity"; return c }(),
		func() Config { c := testConfig(3); c.Redundancy = "mirror"; return c }(),
		func() Config { c := testConfig(2); c.Redundancy = "raid6"; return c }(),
		func() Config {
			c := testConfig(2)
			c.Faults = FaultPlan{Drives: []DriveFault{{Drive: 7}}}
			return c
		}(),
		func() Config {
			c := testConfig(2)
			c.Faults = FaultPlan{Drives: []DriveFault{{Drive: 0, TransientErrRate: 1.5}}}
			return c
		}(),
		func() Config {
			c := testConfig(4)
			c.Redundancy = "mirror"
			c.Tenants = []TenantConfig{{Name: "rebuild"}}
			return c
		}(),
	}
	for i, cfg := range bad {
		if a, err := New(cfg); err == nil {
			a.Close()
			t.Fatalf("config %d accepted, want error", i)
		}
	}
}

// parityScenario runs the catalog scenario: an 8-drive parity fleet
// with one hot spare loses drive 3 to a fail-stop mid-biography. It
// returns the report JSON and a completion digest.
func parityScenario(t *testing.T) ([]byte, string) {
	t.Helper()
	cfg := testConfig(8)
	cfg.Redundancy = RedundancyParity
	cfg.Spares = 1
	cfg.Cache = CacheConfig{Pages: 16}
	cfg.Faults = FaultPlan{Seed: 77, Drives: []DriveFault{{Drive: 3, FailStopRound: 5}}}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	const n = 240
	var digest string
	addDigest := func(res []Result) {
		for _, r := range res {
			errBit := 0
			if r.Err != nil {
				errBit = 1
			}
			digest += fmt.Sprintf("%v/%d/%d/%v/%d/%d;", r.Write, r.Page, r.Drive, r.CacheHit, r.Latency, errBit)
		}
	}

	// Phase A: fill. The fail-stop fires mid-drain, so part of the fill
	// lands degraded (parity carries the dead slot's content).
	for p := 0; p < n; p++ {
		if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: pagePattern(a, p, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	res := mustDrain(t, a)
	addDigest(res)
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("write page %d lost through single failure: %v", r.Page, r.Err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}

	// Phase B: read everything back — degraded reads reconstruct the
	// dead slot's pages until the rebuild catches up.
	for p := 0; p < n; p++ {
		if err := a.Submit(Op{Tenant: "default", Page: p}); err != nil {
			t.Fatal(err)
		}
	}
	res = mustDrain(t, a)
	addDigest(res)
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("read page %d through single failure: %v", r.Page, r.Err)
		}
		if !bytes.Equal(r.Data, pagePattern(a, r.Page, 0)) {
			t.Fatalf("page %d silently corrupted through failure", r.Page)
		}
	}

	// Phase C: the rebuild converged inside Drain; the restored slot
	// (now the spare) must serve directly.
	for p := 0; p < n; p++ {
		if err := a.Submit(Op{Tenant: "default", Page: p}); err != nil {
			t.Fatal(err)
		}
	}
	res = mustDrain(t, a)
	addDigest(res)
	for _, r := range res {
		if r.Err != nil || !bytes.Equal(r.Data, pagePattern(a, r.Page, 0)) {
			t.Fatalf("page %d wrong after restore: %v", r.Page, r.Err)
		}
	}

	js, err := a.Report().JSON()
	if err != nil {
		t.Fatal(err)
	}

	rep := a.Report()
	s3 := rep.PerDrive[3]
	if s3.Health != "restored" {
		t.Fatalf("slot 3 health %q, want restored", s3.Health)
	}
	wantSeq := []string{"dead", "rebuilding", "restored"}
	if len(s3.Transitions) != len(wantSeq) {
		t.Fatalf("slot 3 transitions %+v, want healthy→dead→rebuilding→restored", s3.Transitions)
	}
	for i, tr := range s3.Transitions {
		if tr.To != wantSeq[i] {
			t.Fatalf("transition %d = %s→%s, want →%s", i, tr.From, tr.To, wantSeq[i])
		}
	}
	if s3.Transitions[0].From != "healthy" {
		t.Fatalf("first transition from %q, want healthy", s3.Transitions[0].From)
	}
	if rep.Totals.LostWrites != 0 || rep.Cache.WritebackLost != 0 {
		t.Fatalf("lost writes through a single protected failure: %d (+%d writebacks)",
			rep.Totals.LostWrites, rep.Cache.WritebackLost)
	}
	if rep.Totals.DegradedReads == 0 || rep.Totals.ReconstructedBytes == 0 {
		t.Fatalf("no degraded reads recorded: %+v", rep.Totals)
	}
	if len(rep.Rebuilds) != 1 || !rep.Rebuilds[0].Complete || rep.Rebuilds[0].Lost != 0 {
		t.Fatalf("rebuild did not converge cleanly: %+v", rep.Rebuilds)
	}
	if rep.SparesFree != 0 || len(rep.Retired) != 1 {
		t.Fatalf("spare accounting wrong: free %d retired %d", rep.SparesFree, len(rep.Retired))
	}
	if s3.Physical != 8 {
		t.Fatalf("slot 3 served by physical %d, want spare 8", s3.Physical)
	}
	return js, digest
}

// TestParityFailStop is the acceptance pin: a parity-protected 8-drive
// fleet fail-stops one drive mid-biography and completes with zero
// lost writes, zero silent corruption, the full health transition on
// record, and a byte-identical report per seed.
func TestParityFailStop(t *testing.T) {
	js1, d1 := parityScenario(t)
	js2, d2 := parityScenario(t)
	if d1 != d2 {
		t.Fatal("completion streams diverged between identical degraded runs")
	}
	if !bytes.Equal(js1, js2) {
		t.Fatal("fleet reports diverged between identical degraded runs")
	}
}

// TestMirrorFailStop runs the same biography under RAID-1: partner
// copies serve degraded reads and source the rebuild.
func TestMirrorFailStop(t *testing.T) {
	cfg := testConfig(4)
	cfg.Redundancy = RedundancyMirror
	cfg.Spares = 1
	cfg.Cache = CacheConfig{Pages: 8}
	cfg.Faults = FaultPlan{Drives: []DriveFault{{Drive: 0, FailStopRound: 3}}}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	if a.VolumePages() != 2*128 {
		t.Fatalf("mirror volume pages = %d, want 256", a.VolumePages())
	}
	const n = 120
	for p := 0; p < n; p++ {
		if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: pagePattern(a, p, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	mustDrain(t, a)
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	// Overwrite a slice while degraded, then verify everything.
	for p := 0; p < n; p += 3 {
		if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: pagePattern(a, p, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	mustDrain(t, a)
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < n; p++ {
		if err := a.Submit(Op{Tenant: "default", Page: p}); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range mustDrain(t, a) {
		if r.Err != nil {
			t.Fatalf("mirror read page %d: %v", r.Page, r.Err)
		}
		version := 0
		if r.Page%3 == 0 {
			version = 1
		}
		if !bytes.Equal(r.Data, pagePattern(a, r.Page, version)) {
			t.Fatalf("mirror page %d corrupted through failure", r.Page)
		}
	}
	rep := a.Report()
	if rep.Totals.LostWrites != 0 || rep.Cache.WritebackLost != 0 {
		t.Fatalf("mirror lost writes: %+v", rep.Totals)
	}
	if rep.PerDrive[0].Health != "restored" {
		t.Fatalf("slot 0 health %q, want restored", rep.PerDrive[0].Health)
	}
	if len(rep.Rebuilds) != 1 || !rep.Rebuilds[0].Complete || rep.Rebuilds[0].Lost != 0 {
		t.Fatalf("mirror rebuild: %+v", rep.Rebuilds)
	}
}

// TestNoneModeHonestLoss pins degraded behavior WITHOUT redundancy: a
// dead drive's pages are errors, dirty write-backs aimed at it are
// counted lost, and nothing panics or lies.
func TestNoneModeHonestLoss(t *testing.T) {
	cfg := testConfig(4)
	cfg.Cache = CacheConfig{Pages: 8}
	cfg.Faults = FaultPlan{Drives: []DriveFault{{Drive: 2, FailStopRound: 3}}}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	const n = 64
	for p := 0; p < n; p++ {
		if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: pagePattern(a, p, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	mustDrain(t, a)
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	// Overwrite everything after the drive died: write-backs aimed at
	// the dead drive must surface as losses, not vanish.
	for p := 0; p < n; p++ {
		if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: pagePattern(a, p, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	mustDrain(t, a)
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}

	for p := 0; p < n; p++ {
		if err := a.Submit(Op{Tenant: "default", Page: p}); err != nil {
			t.Fatal(err)
		}
	}
	deadErrs := 0
	for _, r := range mustDrain(t, a) {
		drv, _ := a.locate(r.Page)
		if r.Err != nil {
			if !errors.Is(r.Err, ErrDriveDead) {
				t.Fatalf("read page %d: unexpected error %v", r.Page, r.Err)
			}
			if drv != 2 {
				t.Fatalf("live drive %d surfaced ErrDriveDead for page %d", drv, r.Page)
			}
			deadErrs++
			continue
		}
		if drv != 2 && !bytes.Equal(r.Data, pagePattern(a, r.Page, 1)) {
			t.Fatalf("live page %d served wrong version", r.Page)
		}
	}
	if deadErrs == 0 {
		t.Fatal("no honest errors for the dead drive's pages")
	}
	rep := a.Report()
	if rep.Totals.LostWrites == 0 || rep.Cache.WritebackLost == 0 {
		t.Fatalf("write-back loss not surfaced: lost %d cache %d",
			rep.Totals.LostWrites, rep.Cache.WritebackLost)
	}
	if rep.PerDrive[2].Health != "dead" {
		t.Fatalf("slot 2 health %q, want dead (no redundancy, no rebuild)", rep.PerDrive[2].Health)
	}
	if rep.PerDrive[2].Physical != 2 {
		t.Fatalf("dead slot report lost its stack snapshot: %+v", rep.PerDrive[2])
	}
}

// TestTransientFaultRecovery pins the injector and the recovery path:
// a drive refusing ops at a seeded rate stays usable behind parity,
// the injected count lands in the report, and the run is deterministic.
func TestTransientFaultRecovery(t *testing.T) {
	run := func() ([]byte, int64) {
		cfg := testConfig(4)
		cfg.Redundancy = RedundancyParity
		cfg.Cache = CacheConfig{Pages: 8}
		cfg.Faults = FaultPlan{Seed: 5, Drives: []DriveFault{
			{Drive: 1, TransientErrRate: 0.2, LatencyFactor: 3},
		}}
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		const n = 150
		for p := 0; p < n; p++ {
			if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: pagePattern(a, p, 0)}); err != nil {
				t.Fatal(err)
			}
		}
		mustDrain(t, a)
		if err := a.Flush(); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < n; p++ {
			if err := a.Submit(Op{Tenant: "default", Page: p}); err != nil {
				t.Fatal(err)
			}
		}
		for _, r := range mustDrain(t, a) {
			if r.Err == nil && !bytes.Equal(r.Data, pagePattern(a, r.Page, 0)) {
				t.Fatalf("page %d silently corrupted by transient faults", r.Page)
			}
		}
		rep := a.Report()
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js, rep.Totals.InjectedFaults
	}
	js1, injected := run()
	js2, _ := run()
	if injected == 0 {
		t.Fatal("fault injector never fired at rate 0.2")
	}
	if !bytes.Equal(js1, js2) {
		t.Fatal("reports diverged under seeded transient faults")
	}
}

// TestUBERClimateDeath pins the climate arm of the health machine: a
// drive whose observed error rate crosses the ceiling is declared dead
// and rebuilt onto the spare.
func TestUBERClimateDeath(t *testing.T) {
	cfg := testConfig(4)
	cfg.Redundancy = RedundancyParity
	cfg.Spares = 1
	cfg.Faults = FaultPlan{Seed: 9, Drives: []DriveFault{
		{Drive: 2, TransientErrRate: 0.6, UBERCeiling: 0.05, MinReads: 16},
	}}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	const n = 200
	for p := 0; p < n; p++ {
		if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: pagePattern(a, p, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	mustDrain(t, a)
	for p := 0; p < n; p++ {
		if err := a.Submit(Op{Tenant: "default", Page: p}); err != nil {
			t.Fatal(err)
		}
	}
	mustDrain(t, a)
	rep := a.Report()
	s2 := rep.PerDrive[2]
	if s2.Health != "restored" && s2.Health != "rebuilding" && s2.Health != "dead" {
		t.Fatalf("slot 2 health %q: UBER climate never judged", s2.Health)
	}
	sawDead := false
	for _, tr := range s2.Transitions {
		if tr.To == "dead" {
			sawDead = true
		}
	}
	if !sawDead {
		t.Fatalf("no death transition recorded: %+v", s2.Transitions)
	}
}

// TestRebuildThrottled pins rebuild-as-a-tenant: a throttled rebuild
// rate visibly stretches the repair and records throttling, yet still
// converges inside Drain.
func TestRebuildThrottled(t *testing.T) {
	cfg := testConfig(4)
	cfg.Redundancy = RedundancyParity
	cfg.Spares = 1
	cfg.RebuildRate = 50 // burst 5: the ~50-page rebuild must wait on tokens
	cfg.Faults = FaultPlan{Drives: []DriveFault{{Drive: 1, FailStopRound: 7}}}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// The whole fill lands while the drive is alive; the fail-stop fires
	// during the read pass, so everything on the slot needs rebuilding.
	const n = 150
	for p := 0; p < n; p++ {
		if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: pagePattern(a, p, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	mustDrain(t, a)
	for p := 0; p < n; p++ {
		if err := a.Submit(Op{Tenant: "default", Page: p}); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range mustDrain(t, a) {
		if r.Err != nil {
			t.Fatalf("read page %d during throttled rebuild: %v", r.Page, r.Err)
		}
	}
	rep := a.Report()
	if len(rep.Rebuilds) != 1 || !rep.Rebuilds[0].Complete {
		t.Fatalf("throttled rebuild did not converge: %+v", rep.Rebuilds)
	}
	var rb TenantStats
	for _, ts := range rep.Tenants {
		if ts.Name == rebuildTenant {
			rb = ts
		}
	}
	if rb.Name == "" {
		t.Fatal("rebuild tenant missing from report")
	}
	if rb.Writes == 0 {
		t.Fatal("rebuild tenant moved no pages")
	}
	if rb.Rate != 50 || rb.Throttled == 0 {
		t.Fatalf("rebuild throttling invisible: %+v", rb)
	}
}

// faultFleetWorkload is fleetWorkload's degraded twin: 16 drives with
// parity, a hot spare, a mid-run fail-stop and a transient-fault drive.
func faultFleetWorkload(t *testing.T) ([]byte, string) {
	t.Helper()
	cfg := testConfig(16)
	cfg.Seed = 424243
	cfg.Redundancy = RedundancyParity
	cfg.Spares = 1
	cfg.Cache = CacheConfig{Pages: 48, Policy: "clock"}
	cfg.Tenants = []TenantConfig{
		{Name: "scan", Rate: 4000, Burst: 16},
		{Name: "oltp"},
	}
	cfg.Faults = FaultPlan{Seed: 31337, Drives: []DriveFault{
		{Drive: 5, FailStopRound: 7},
		{Drive: 11, TransientErrRate: 0.02, LatencyFactor: 2},
	}}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	state := uint64(0xabcdef12345)
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(mod))
	}
	var digest string
	for round := 0; round < 6; round++ {
		for i := 0; i < 60; i++ {
			tenant := "scan"
			if i%3 == 0 {
				tenant = "oltp"
			}
			page := next(a.VolumePages())
			if next(10) < 6 {
				if err := a.Submit(Op{Tenant: tenant, Write: true, Page: page, Data: pagePattern(a, page, round)}); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := a.Submit(Op{Tenant: tenant, Page: page}); err != nil {
					t.Fatal(err)
				}
			}
		}
		res, err := a.Drain()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			errBit := 0
			if r.Err != nil {
				errBit = 1
			}
			digest += fmt.Sprintf("%s/%v/%d/%d/%v/%d/%d;", r.Tenant, r.Write, r.Page, r.Drive, r.CacheHit, r.Latency, errBit)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	js, err := a.Report().JSON()
	if err != nil {
		t.Fatal(err)
	}
	return js, digest
}

// TestFleetDeterminismUnderFaults is the degraded determinism pin: a
// 16-drive run with a mid-run fail-stop and seeded transient faults
// produces byte-identical FleetReports per seed (run under -race in CI).
func TestFleetDeterminismUnderFaults(t *testing.T) {
	js1, d1 := faultFleetWorkload(t)
	js2, d2 := faultFleetWorkload(t)
	if d1 != d2 {
		t.Fatal("completion streams diverged between identical faulted runs")
	}
	if !bytes.Equal(js1, js2) {
		t.Fatalf("fleet reports diverged between identical faulted runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", js1, js2)
	}
}

// BenchmarkDegradedRead measures the reconstruction overhead: reads of
// a parity fleet before and after one member dies (no spare, so every
// read of the dead slot reconstructs). CI archives it in
// BENCH_rebuild.json.
func BenchmarkDegradedRead(b *testing.B) {
	for _, state := range []string{"healthy", "degraded"} {
		b.Run(state, func(b *testing.B) {
			cfg := testConfig(8)
			cfg.Redundancy = RedundancyParity
			a, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer a.Close()
			const warm = 256
			for p := 0; p < warm; p++ {
				if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: make([]byte, a.PageBytes())}); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := a.Drain(); err != nil {
				b.Fatal(err)
			}
			if state == "degraded" {
				a.kill(a.slots[3]) // no spare: stays dead, reads reconstruct
			}
			// Both variants read the same page set — the pages living on
			// slot 3 — so the delta is purely the reconstruction cost.
			var targets []int
			for p := 0; p < warm; p++ {
				if drv, _ := a.locate(p); drv == 3 {
					targets = append(targets, p)
				}
			}
			var lat, reads int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := a.Submit(Op{Tenant: "default", Page: targets[i%len(targets)]}); err != nil {
					b.Fatal(err)
				}
				if i%64 == 63 {
					res, err := a.Drain()
					if err != nil {
						b.Fatal(err)
					}
					for _, r := range res {
						lat += r.Latency.Microseconds()
						reads++
					}
				}
			}
			res, err := a.Drain()
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			for _, r := range res {
				lat += r.Latency.Microseconds()
				reads++
			}
			rep := a.Report()
			if reads > 0 {
				b.ReportMetric(float64(lat)/float64(reads), "read_us")
			}
			b.ReportMetric(float64(rep.Totals.DegradedReads), "degraded_reads")
		})
	}
}

// BenchmarkRebuild measures modelled rebuild throughput vs fleet size:
// one member dies with a hot spare standing by and Drain carries the
// rebuild to convergence. CI archives it in BENCH_rebuild.json.
func BenchmarkRebuild(b *testing.B) {
	for _, drives := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("drives=%d", drives), func(b *testing.B) {
			var mbps, pages float64
			for i := 0; i < b.N; i++ {
				cfg := testConfig(drives)
				cfg.Redundancy = RedundancyParity
				cfg.Spares = 1
				a, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				warm := a.VolumePages() / 2
				for p := 0; p < warm; p++ {
					if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: make([]byte, a.PageBytes())}); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := a.Drain(); err != nil {
					b.Fatal(err)
				}
				a.kill(a.slots[1]) // spare attaches, rebuild starts
				if _, err := a.Drain(); err != nil {
					b.Fatal(err)
				}
				rep := a.Report()
				if len(rep.Rebuilds) != 1 || !rep.Rebuilds[0].Complete {
					b.Fatalf("rebuild did not converge: %+v", rep.Rebuilds)
				}
				mbps += rep.Rebuilds[0].MBPerSec
				pages += float64(rep.Rebuilds[0].Pages)
				a.Close()
			}
			b.ReportMetric(mbps/float64(b.N), "rebuild_mb_per_sec")
			b.ReportMetric(pages/float64(b.N), "rebuild_pages")
		})
	}
}

// runRebuildClobber aligns host overwrites with the rebuild cursor:
// after deadSlot fail-stops, every rebuild round's host ops overwrite
// the very volume pages whose drive-local lpas the cursor copies that
// round (where overlap(lpa) allows), then a full read pass verifies no
// page serves its stale pre-overwrite image. This is the ordering bug
// class fixed in execFlat: the rebuild source image is read in phase 1
// but written onto the spare in phase 3, after the host write landed.
func runRebuildClobber(t *testing.T, cfg Config, deadSlot int, overlap func(lpa int) bool) {
	t.Helper()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	n := a.VolumePages()
	version := make([]int, n)
	w := func(p, v int) {
		if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: pagePattern(a, p, v)}); err != nil {
			t.Fatal(err)
		}
		version[p] = v
	}
	rd := func(p int) {
		if err := a.Submit(Op{Tenant: "default", Page: p}); err != nil {
			t.Fatal(err)
		}
	}
	ops := cfg.RoundOps
	for p := 0; p < n; p++ { // fill rounds: 1..n/ops
		w(p, 0)
	}
	for i := 0; i < ops; i++ { // one padding round before the fail-stop
		rd(n - 1)
	}
	// From the fail-stop round on, the cursor copies `budget` lpas per
	// round; submit each round's overwrites first so they share the
	// round with the rebuild of the same pages.
	budget := ops / 4
	for cur := 0; cur < a.perDriveLPAs; cur += budget {
		submitted := 0
		for k := 0; k < budget && cur+k < a.perDriveLPAs; k++ {
			lpa := cur + k
			pg := a.pageOf(deadSlot, lpa)
			if pg >= 0 && overlap(lpa) {
				w(pg, 1)
				submitted++
			}
		}
		for ; submitted < ops; submitted++ {
			rd(n - 1)
		}
	}
	mustDrain(t, a)
	for p := 0; p < n; p++ {
		rd(p)
	}
	stale := 0
	for _, r := range mustDrain(t, a) {
		if r.Err != nil {
			t.Fatalf("read %d: %v", r.Page, r.Err)
		}
		want := version[r.Page]
		if !bytes.Equal(r.Data, pagePattern(a, r.Page, want)) {
			if want == 1 && bytes.Equal(r.Data, pagePattern(a, r.Page, 0)) {
				stale++
				if stale <= 5 {
					t.Logf("page %d serves STALE pre-overwrite data from slot %d", r.Page, r.Drive)
				}
			} else {
				t.Fatalf("page %d: garbage", r.Page)
			}
		}
	}
	rep := a.Report()
	if len(rep.Rebuilds) != 1 || !rep.Rebuilds[0].Complete {
		t.Fatalf("rebuild did not converge: %+v", rep.Rebuilds)
	}
	t.Logf("stale=%d lost=%d rebuild=%+v", stale, rep.Totals.LostWrites, rep.Rebuilds[0])
	if stale > 0 {
		t.Fatalf("%d pages serve stale data after rebuild", stale)
	}
}

// clobberConfig builds the aligned-overwrite fleet: RoundOps 8 means a
// rebuild budget of 2 lpas per round, and the fail-stop fires right
// after the fill plus one padding round so cursor position and round
// number stay in lockstep.
func clobberConfig(t *testing.T, drives int, mode string) Config {
	t.Helper()
	cfg := testConfig(drives)
	cfg.Redundancy = mode
	cfg.Spares = 1
	cfg.RoundOps = 8
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	failRound := int64(a.VolumePages()/cfg.RoundOps) + 2
	a.Close()
	cfg.Faults = FaultPlan{Drives: []DriveFault{{Drive: 0, FailStopRound: failRound}}}
	return cfg
}

// TestReproRebuildClobber is the mirror-mode regression: round r's host
// overwrite of the pages the cursor rebuilds in round r must win over
// the stale partner image read before the write landed.
func TestReproRebuildClobber(t *testing.T) {
	cfg := clobberConfig(t, 2, RedundancyMirror)
	runRebuildClobber(t, cfg, 0, func(int) bool { return true })
}

// TestReproRebuildClobberParity pins the same ordering guarantee for
// the parity executor, where rebuild copies are staged ahead of host
// writes inside the phase-3 batch so the host write wins batch order.
func TestReproRebuildClobberParity(t *testing.T) {
	cfg := clobberConfig(t, 4, RedundancyParity)
	runRebuildClobber(t, cfg, 0, func(int) bool { return true })
}

// TestReproRebuildClobberCheckpointEdge overwrites exactly the pages at
// the 32-page checkpoint boundary (lpas 31..33) and nothing else, so
// the invalidation path crosses a progress checkpoint mid-stream.
func TestReproRebuildClobberCheckpointEdge(t *testing.T) {
	cfg := clobberConfig(t, 2, RedundancyMirror)
	runRebuildClobber(t, cfg, 0, func(lpa int) bool {
		return lpa >= rebuildCheckpointEvery-1 && lpa <= rebuildCheckpointEvery+1
	})
}
