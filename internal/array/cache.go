package array

import (
	"container/list"
	"fmt"
)

// Policy is a pluggable eviction policy for the host cache: it tracks
// residency order, nothing else. The cache calls Admit when a page
// becomes resident, Touch on every reference to a resident page, Victim
// when it must evict (the policy removes and returns its choice) and
// Remove when the cache drops a page for its own reasons. Policies are
// strictly deterministic: the same call sequence always yields the same
// victims, which is what keeps fleet reports byte-identical per seed.
type Policy interface {
	Name() string
	Admit(page int)
	Touch(page int)
	Victim() int
	Remove(page int)
	Len() int
}

// NewPolicy builds a named eviction policy: "lru" (default for the
// empty string) or "clock".
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "", "lru":
		return NewLRU(), nil
	case "clock":
		return NewClock(), nil
	default:
		return nil, fmt.Errorf("array: unknown eviction policy %q", name)
	}
}

// LRU evicts the least-recently-used page: a doubly linked list in
// recency order with a map from page to list element.
type LRU struct {
	order *list.List            // front = most recent
	elem  map[int]*list.Element // page -> element (Value is the page)
}

// NewLRU returns an empty LRU policy.
func NewLRU() *LRU {
	return &LRU{order: list.New(), elem: make(map[int]*list.Element)}
}

// Name implements Policy.
func (l *LRU) Name() string { return "lru" }

// Admit implements Policy.
func (l *LRU) Admit(page int) { l.elem[page] = l.order.PushFront(page) }

// Touch implements Policy.
func (l *LRU) Touch(page int) {
	if e, ok := l.elem[page]; ok {
		l.order.MoveToFront(e)
	}
}

// Victim implements Policy.
func (l *LRU) Victim() int {
	e := l.order.Back()
	if e == nil {
		panic("array: LRU victim of empty cache")
	}
	page := e.Value.(int)
	l.order.Remove(e)
	delete(l.elem, page)
	return page
}

// Remove implements Policy.
func (l *LRU) Remove(page int) {
	if e, ok := l.elem[page]; ok {
		l.order.Remove(e)
		delete(l.elem, page)
	}
}

// Len implements Policy.
func (l *LRU) Len() int { return l.order.Len() }

// Clock is the classic second-chance approximation of LRU: resident
// pages sit on a circular list with one reference bit each; the hand
// sweeps, clearing set bits, and evicts the first page it finds clear.
// O(1) per touch, no reordering on hit — the policy hardware caches use.
type Clock struct {
	ring *list.List            // circular order (hand wraps via Front)
	hand *list.Element         // next candidate; nil when empty
	elem map[int]*list.Element // page -> element (Value is *clockSlot)
}

type clockSlot struct {
	page int
	ref  bool
}

// NewClock returns an empty clock policy.
func NewClock() *Clock {
	return &Clock{ring: list.New(), elem: make(map[int]*list.Element)}
}

// Name implements Policy.
func (c *Clock) Name() string { return "clock" }

// Admit implements Policy. New pages enter behind the hand with their
// reference bit set, so they survive the hand's current lap.
func (c *Clock) Admit(page int) {
	slot := &clockSlot{page: page, ref: true}
	var e *list.Element
	if c.hand == nil {
		e = c.ring.PushBack(slot)
		c.hand = e
	} else {
		e = c.ring.InsertBefore(slot, c.hand)
	}
	c.elem[page] = e
}

// Touch implements Policy.
func (c *Clock) Touch(page int) {
	if e, ok := c.elem[page]; ok {
		e.Value.(*clockSlot).ref = true
	}
}

// advance moves the hand one slot, wrapping at the ring's end.
func (c *Clock) advance() {
	c.hand = c.hand.Next()
	if c.hand == nil {
		c.hand = c.ring.Front()
	}
}

// Victim implements Policy.
func (c *Clock) Victim() int {
	if c.hand == nil {
		panic("array: clock victim of empty cache")
	}
	for {
		slot := c.hand.Value.(*clockSlot)
		if slot.ref {
			slot.ref = false
			c.advance()
			continue
		}
		victim := c.hand
		c.advance()
		if victim == c.hand { // last element
			c.hand = nil
		}
		c.ring.Remove(victim)
		delete(c.elem, slot.page)
		return slot.page
	}
}

// Remove implements Policy.
func (c *Clock) Remove(page int) {
	e, ok := c.elem[page]
	if !ok {
		return
	}
	if e == c.hand {
		c.advance()
		if e == c.hand { // last element
			c.hand = nil
		}
	}
	c.ring.Remove(e)
	delete(c.elem, page)
}

// Len implements Policy.
func (c *Clock) Len() int { return c.ring.Len() }

// CacheConfig parametrises the host-side cache.
type CacheConfig struct {
	// Pages is the cache capacity in volume pages (0 disables caching:
	// every read misses to a drive and every write dispatches
	// immediately).
	Pages int
	// Policy names the eviction policy: "lru" (the default) or "clock".
	Policy string
	// DirtyHighWater triggers a background flush once this many dirty
	// pages accumulate in the write-back buffer; the flush drains down
	// to DirtyLowWater. Defaults: 3/4 and 1/4 of Pages.
	DirtyHighWater int
	DirtyLowWater  int
}

// CacheStats is the cache's observable climate, merged into the fleet
// report.
type CacheStats struct {
	PolicyName string `json:"policy"`
	Capacity   int    `json:"capacity_pages"`
	Hits       int64  `json:"hits"`
	Misses     int64  `json:"misses"`
	// Evictions counts pages pushed out by capacity pressure;
	// Writebacks counts dirty pages written to a drive for any reason
	// (eviction of a dirty page, watermark flush, or a final Flush).
	Evictions  int64 `json:"evictions"`
	Writebacks int64 `json:"writebacks"`
	// WritebackLost counts dirty pages whose write-back could not land
	// on any drive (dead target with no redundancy to absorb it, or a
	// persistent injected fault). The page's newest version is gone and
	// this counter is the honest record of it.
	WritebackLost int64 `json:"writeback_lost"`
	// DirtyHighWaterMark is the largest number of dirty pages the
	// write-back buffer ever held.
	DirtyHighWaterMark int `json:"dirty_high_water_mark"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// cacheEntry is one resident volume page.
type cacheEntry struct {
	data  []byte
	dirty bool
	// fifo is the entry's position in the dirty FIFO (nil when clean):
	// write-back order is strictly first-dirtied-first-flushed, so the
	// drives below observe host writes in a stable, reproducible order.
	fifo *list.Element // Value is the page number
}

// hostCache is the host-side read cache and write-back buffer. It is
// confined to the array's front-end goroutine — determinism comes from
// single-threaded access, not locking.
type hostCache struct {
	cap     int
	pol     Policy
	entries map[int]*cacheEntry
	dirty   *list.List // page numbers in first-dirtied order
	stats   CacheStats
}

// writeback is one dirty page leaving the cache for a drive.
type writeback struct {
	page int
	data []byte
}

func newHostCache(cfg CacheConfig) (*hostCache, error) {
	if cfg.Pages < 0 {
		return nil, fmt.Errorf("array: negative cache capacity %d", cfg.Pages)
	}
	pol, err := NewPolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	c := &hostCache{
		cap:     cfg.Pages,
		pol:     pol,
		entries: make(map[int]*cacheEntry),
		dirty:   list.New(),
	}
	c.stats.PolicyName = pol.Name()
	c.stats.Capacity = cfg.Pages
	return c, nil
}

// enabled reports whether the cache holds anything at all.
func (c *hostCache) enabled() bool { return c.cap > 0 }

// lookup serves a read: on hit the resident copy is returned (dirty or
// clean — the buffer always holds the newest version).
func (c *hostCache) lookup(page int) ([]byte, bool) {
	if !c.enabled() {
		return nil, false
	}
	e, ok := c.entries[page]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.pol.Touch(page)
	return e.data, true
}

// put installs a page (a fill from a drive read, or a host write into
// the write-back buffer), evicting if the cache is full. The returned
// writeback is non-nil when the eviction victim was dirty — the caller
// owns getting it to a drive. data is copied.
func (c *hostCache) put(page int, data []byte, dirty bool) *writeback {
	if !c.enabled() {
		panic("array: put into disabled cache")
	}
	var wb *writeback
	e, ok := c.entries[page]
	if !ok {
		if len(c.entries) >= c.cap {
			wb = c.evict()
		}
		e = &cacheEntry{data: append([]byte(nil), data...)}
		c.entries[page] = e
		c.pol.Admit(page)
	} else {
		e.data = append(e.data[:0], data...)
		c.pol.Touch(page)
	}
	if dirty && e.fifo == nil {
		e.fifo = c.dirty.PushBack(page)
	}
	e.dirty = e.dirty || dirty
	if n := c.dirty.Len(); n > c.stats.DirtyHighWaterMark {
		c.stats.DirtyHighWaterMark = n
	}
	return wb
}

// fill installs a clean copy read from a drive — unless the page is
// already resident, in which case the resident copy is newer (a write
// landed between the miss and the fill) and the stale fill is dropped.
func (c *hostCache) fill(page int, data []byte) *writeback {
	if _, ok := c.entries[page]; ok {
		return nil
	}
	return c.put(page, data, false)
}

// evict removes the policy's victim, surfacing a writeback if it was
// dirty.
func (c *hostCache) evict() *writeback {
	page := c.pol.Victim()
	e := c.entries[page]
	delete(c.entries, page)
	c.stats.Evictions++
	if !e.dirty {
		return nil
	}
	c.dirty.Remove(e.fifo)
	c.stats.Writebacks++
	return &writeback{page: page, data: e.data}
}

// flush drains up to max dirty pages (all of them when max <= 0) in
// first-dirtied order. The pages stay resident and become clean; the
// caller owns writing the returned copies to the drives.
func (c *hostCache) flush(max int) []writeback {
	if max <= 0 || max > c.dirty.Len() {
		max = c.dirty.Len()
	}
	out := make([]writeback, 0, max)
	for i := 0; i < max; i++ {
		front := c.dirty.Front()
		page := front.Value.(int)
		c.dirty.Remove(front)
		e := c.entries[page]
		e.dirty = false
		e.fifo = nil
		c.stats.Writebacks++
		out = append(out, writeback{page: page, data: append([]byte(nil), e.data...)})
	}
	return out
}

// dirtyCount returns the write-back buffer's current depth.
func (c *hostCache) dirtyCount() int { return c.dirty.Len() }
