// Background rebuild: when a dead slot gets a hot spare, a cursor
// sweeps the drive-local address space, reconstructing each page that
// holds live content (mirror: copy from the partner; parity: XOR of
// the row's peers, or a parity recompute when the slot owns the row's
// parity chunk) and writing it onto the spare. Rebuild traffic is just
// another QoS tenant — it competes for round budget through the same
// token bucket machinery as host tenants, so a throttled rebuild
// visibly stretches the repair window in the report.
package array

import "time"

// rebuildTenant is the reserved QoS tenant name carrying rebuild I/O.
const rebuildTenant = "rebuild"

// rebuildCheckpointEvery is the progress-checkpoint stride in pages.
const rebuildCheckpointEvery = 32

// rbItem is one page of rebuild work planned for a round.
type rbItem struct {
	s   *slot
	lpa int

	srcSlot       int  // flat modes: the partner slot supplying the copy
	parityRebuild bool // parity mode: this lpa holds the row's parity chunk

	skip bool // sources unavailable this round: retry later
	lost bool // unrecoverable: counted, cursor moves on

	comps []*internalRead // parity mode: XOR components
	read  *internalRead   // flat modes: partner read
	write *internalRead   // the spare write's result
}

// RebuildCheckpoint is one recorded point of rebuild progress.
type RebuildCheckpoint struct {
	Pages    int64   `json:"pages"`
	Round    int64   `json:"round"`
	ClockSec float64 `json:"clock_seconds"`
}

// RebuildReport is one slot's rebuild biography.
type RebuildReport struct {
	Slot          int     `json:"slot"`
	SpareDrive    int     `json:"spare_drive"`
	StartRound    int64   `json:"start_round"`
	StartClockSec float64 `json:"start_clock_seconds"`
	Pages         int64   `json:"pages_rebuilt"`
	Bytes         int64   `json:"bytes_rebuilt"`
	// Lost counts pages whose content could not be reconstructed (e.g.
	// a second fault inside the rebuild window, or stale parity).
	Lost         int64               `json:"pages_lost"`
	Complete     bool                `json:"complete"`
	DoneRound    int64               `json:"done_round,omitempty"`
	DoneClockSec float64             `json:"done_clock_seconds,omitempty"`
	MBPerSec     float64             `json:"rebuild_mb_per_sec,omitempty"`
	Checkpoints  []RebuildCheckpoint `json:"checkpoints,omitempty"`
}

// rebuildActive reports whether any slot is mid-rebuild.
func (a *Array) rebuildActive() bool {
	for _, s := range a.slots {
		if s.state == Rebuilding {
			return true
		}
	}
	return false
}

// attachSpare hands the next hot spare to a dead slot and starts its
// rebuild. No spare available leaves the slot dead; degraded operation
// continues through the redundancy layer.
func (a *Array) attachSpare(s *slot) {
	if len(a.sparePool) == 0 {
		return
	}
	d := a.sparePool[0]
	a.sparePool = a.sparePool[1:]
	s.d = d
	s.transition(Rebuilding, a.rounds, a.clock.Seconds())
	s.rebuilt = make([]bool, a.perDriveLPAs)
	s.cursor = 0
	s.stale = nil
	s.rb = &RebuildReport{
		Slot:          s.id,
		SpareDrive:    d.idx,
		StartRound:    a.rounds,
		StartClockSec: a.clock.Seconds(),
	}
	a.rebuilds = append(a.rebuilds, s.rb)
	a.trace.Instant2(hostTidRebuild, "rebuild_start", a.clock,
		"slot", int64(s.id), "spare", int64(d.idx))
}

// rebuildNeeded reports whether the slot's spare is missing live
// content at lpa (pages that never held data, or mirror secondaries,
// rebuild for free).
func (a *Array) rebuildNeeded(s *slot, lpa int) bool {
	switch a.mode {
	case RedundancyParity:
		row, _ := a.rowOff(lpa)
		if a.parityLoc(row) == s.id {
			return a.anyRowWritten(lpa)
		}
		pj := a.pageOf(s.id, lpa)
		return pj >= 0 && a.written[pj]
	case RedundancyMirror:
		pj := a.pageOf(s.id, lpa)
		return pj >= 0 && a.written[pj]
	}
	return false
}

// planRebuild sweeps each rebuilding slot's cursor and plans this
// round's rebuild items, bounded by a per-round budget and the rebuild
// tenant's token bucket. Pages with nothing to restore are marked
// rebuilt for free and do not consume budget.
func (a *Array) planRebuild() []rbItem {
	if a.mode == RedundancyNone {
		return nil
	}
	var items []rbItem
	for _, s := range a.slots {
		if s.state != Rebuilding {
			continue
		}
		for s.cursor < a.perDriveLPAs && s.rebuilt[s.cursor] {
			s.cursor++
		}
		budget := a.cfg.RoundOps / 4
		if budget < 1 {
			budget = 1
		}
		for lpa := s.cursor; lpa < a.perDriveLPAs && budget > 0; lpa++ {
			if s.rebuilt[lpa] {
				continue
			}
			if !a.rebuildNeeded(s, lpa) {
				s.rebuilt[lpa] = true
				continue
			}
			if !a.rebuildTen.take() {
				a.rebuildTen.stats.Throttled++
				break
			}
			it := rbItem{s: s, lpa: lpa}
			if a.mode == RedundancyMirror {
				it.srcSlot = s.id ^ 1
			}
			items = append(items, it)
			budget--
		}
	}
	return items
}

// stageRebuildWrites runs the flat-mode spare-write phase: value
// extracts each item's reconstructed content (nil defers the item to a
// later round).
func (a *Array) stageRebuildWrites(items []rbItem, value func(*rbItem) []byte) time.Duration {
	if len(items) == 0 {
		return 0
	}
	batches := make([][]driveOp, len(a.slots))
	staged := false
	for i := range items {
		it := &items[i]
		if it.skip || it.lost {
			continue
		}
		v := value(it)
		if v == nil {
			it.skip = true
			continue
		}
		it.write = &internalRead{}
		batches[it.s.id] = append(batches[it.s.id],
			driveOp{write: true, lpa: it.lpa, slot: it.s.id, data: v, out: it.write})
		staged = true
	}
	if !staged {
		return 0
	}
	return a.runPhase(batches)
}

// finishRebuild folds a round's rebuild outcomes into the slots: marks
// restored pages, accounts tenant throughput and checkpoints, and
// promotes any slot whose sweep converged to restored.
func (a *Array) finishRebuild(items []rbItem) {
	for i := range items {
		it := &items[i]
		s := it.s
		if it.lost {
			s.rebuilt[it.lpa] = true
			s.rb.Lost++
			a.rebuiltPages++
			continue
		}
		if it.skip || it.write == nil || it.write.err != nil {
			continue // retried in a later round
		}
		s.rebuilt[it.lpa] = true
		a.rebuiltPages++
		s.rb.Pages++
		s.rb.Bytes += int64(a.pageBytes)
		a.latRebuild.Record(it.write.lat)
		if a.mode == RedundancyParity && it.parityRebuild {
			a.parityOK[it.lpa] = true
		}
		a.rebuildTen.stats.Writes++
		a.rebuildTen.stats.BytesWrite += int64(a.pageBytes)
		if s.rb.Pages%rebuildCheckpointEvery == 0 {
			s.rb.Checkpoints = append(s.rb.Checkpoints, RebuildCheckpoint{
				Pages: s.rb.Pages, Round: a.rounds, ClockSec: a.clock.Seconds(),
			})
			a.trace.Instant2(hostTidRebuild, "rebuild_checkpoint", a.clock,
				"slot", int64(s.id), "pages", s.rb.Pages)
		}
	}
	for _, s := range a.slots {
		if s.state != Rebuilding {
			continue
		}
		for s.cursor < a.perDriveLPAs && s.rebuilt[s.cursor] {
			s.cursor++
		}
		if s.cursor < a.perDriveLPAs {
			continue
		}
		s.transition(Restored, a.rounds, a.clock.Seconds())
		a.trace.Instant2(hostTidRebuild, "rebuild_done", a.clock,
			"slot", int64(s.id), "pages", s.rb.Pages)
		s.rb.Complete = true
		s.rb.DoneRound = a.rounds
		s.rb.DoneClockSec = a.clock.Seconds()
		if dt := s.rb.DoneClockSec - s.rb.StartClockSec; dt > 0 && s.rb.Bytes > 0 {
			s.rb.MBPerSec = float64(s.rb.Bytes) / (1 << 20) / dt
		}
		s.rebuilt = nil
		s.stale = nil
		a.rebuiltPages++ // restoring a slot is progress for the drain guard
	}
}

// abandonRebuild gives up on a rebuild that cannot converge (a second
// fault holding its sources down): remaining pages are counted lost,
// honestly, and the slot completes with losses on record.
func (a *Array) abandonRebuild() {
	for _, s := range a.slots {
		if s.state != Rebuilding {
			continue
		}
		for lpa := 0; lpa < a.perDriveLPAs; lpa++ {
			if !s.rebuilt[lpa] {
				if a.rebuildNeeded(s, lpa) {
					s.rb.Lost++
				}
				s.rebuilt[lpa] = true
			}
		}
	}
	a.finishRebuild(nil)
}
