package array

import (
	"errors"
	"fmt"
	"time"
)

// Typed front-end errors. All of them survive fmt wrapping, so callers
// test with errors.Is.
var (
	// ErrClosed reports a Submit/Drain/Flush after Close.
	ErrClosed = errors.New("array: closed")
	// ErrDriveDead reports an op that needed a dead, unprotected drive.
	ErrDriveDead = errors.New("array: drive dead")
	// ErrDriveFault reports a deterministic injected transient fault
	// that persisted through the in-batch retries.
	ErrDriveFault = errors.New("array: injected drive fault")
)

// DriveFault is the deterministic fault schedule for one array slot.
// Zero values disable each mechanism independently.
type DriveFault struct {
	// Drive is the targeted slot index.
	Drive int
	// FailStopRound halts the drive at the start of that scheduling
	// round (1-based; 0 = disabled).
	FailStopRound int64
	// FailStopAt halts the drive once the fleet clock reaches this
	// modelled time (0 = disabled).
	FailStopAt time.Duration
	// TransientErrRate is the per-op probability (0..1) that the drive
	// refuses an op with ErrDriveFault. Each op retries up to
	// faultRetries times inside its batch before the failure surfaces.
	TransientErrRate float64
	// LatencyFactor multiplies the drive's modelled per-round time
	// (0 or 1 = no degradation).
	LatencyFactor float64
	// UBERCeiling declares the drive dead once its observed page error
	// rate (uncorrectable + injected errors over reads served) crosses
	// it; ¼ and ½ of the ceiling mark the suspect and degraded states.
	// 0 disables UBER-climate death.
	UBERCeiling float64
	// MinReads is the sample floor before the UBER climate is judged
	// (default 64).
	MinReads int64
}

// FaultPlan is the array-wide deterministic fault schedule.
type FaultPlan struct {
	// Seed decorrelates the transient-fault streams from the drive
	// workload streams (folded into each drive's fault RNG).
	Seed uint64
	// Drives lists per-slot fault schedules (at most one per slot).
	Drives []DriveFault
}

// validate rejects malformed plans against the array shape.
func (fp FaultPlan) validate(drives int) error {
	seen := make(map[int]bool, len(fp.Drives))
	for _, df := range fp.Drives {
		if df.Drive < 0 || df.Drive >= drives {
			return fmt.Errorf("array: fault plan targets drive %d of %d", df.Drive, drives)
		}
		if seen[df.Drive] {
			return fmt.Errorf("array: duplicate fault plan for drive %d", df.Drive)
		}
		seen[df.Drive] = true
		if df.TransientErrRate < 0 || df.TransientErrRate >= 1 {
			return fmt.Errorf("array: drive %d: transient error rate %v outside [0,1)", df.Drive, df.TransientErrRate)
		}
		if df.LatencyFactor < 0 {
			return fmt.Errorf("array: drive %d: negative latency factor", df.Drive)
		}
		if df.UBERCeiling < 0 || df.FailStopRound < 0 || df.FailStopAt < 0 || df.MinReads < 0 {
			return fmt.Errorf("array: drive %d: negative fault parameter", df.Drive)
		}
	}
	return nil
}

// faultRetries is the in-batch retry budget for transient faults: a
// refused op is retried immediately (fresh RNG draw each attempt)
// before the failure escapes the drive.
const faultRetries = 2

// faultSeedStride decorrelates per-drive fault streams (splitmix64's
// third-round multiplier — distinct from the drive and die strides).
const faultSeedStride = 0x94d049bb133111eb

// faultRoll draws the drive's seeded splitmix64 stream once and reports
// whether this attempt is refused. Worker-goroutine only.
func (d *drive) faultRoll() bool {
	if d.errRate <= 0 {
		return false
	}
	d.frng += 0x9e3779b97f4a7c15
	z := d.frng
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/(1<<53) < d.errRate
}

// applyScheduledFaults fires fail-stop faults whose round or clock
// trigger has arrived. Called at the start of every round, between
// barriers.
func (a *Array) applyScheduledFaults() {
	for _, s := range a.slots {
		if !s.hasFault || s.state >= Dead {
			continue
		}
		f := s.fault
		if (f.FailStopRound > 0 && a.rounds >= f.FailStopRound) ||
			(f.FailStopAt > 0 && a.clock >= f.FailStopAt) {
			a.kill(s)
		}
	}
}

// judgeClimate walks the UBER-climate arm of the health state machine
// after a round's barrier: the drive's observed page error rate
// (uncorrectable + injected over reads served) against the ceiling.
func (a *Array) judgeClimate() {
	for _, s := range a.slots {
		if !s.hasFault || s.fault.UBERCeiling <= 0 || s.state >= Dead || s.d == nil {
			continue
		}
		minReads := s.fault.MinReads
		if minReads == 0 {
			minReads = 64
		}
		if s.d.readOps < minReads {
			continue
		}
		observed := float64(s.d.uncorrectableReads+s.d.injected) / float64(s.d.readOps)
		ceil := s.fault.UBERCeiling
		switch {
		case observed >= ceil:
			if s.state < Degraded {
				s.transition(Degraded, a.rounds, a.clock.Seconds())
			}
			a.kill(s)
		case observed >= ceil/2 && s.state < Degraded:
			if s.state < Suspect {
				s.transition(Suspect, a.rounds, a.clock.Seconds())
			}
			s.transition(Degraded, a.rounds, a.clock.Seconds())
		case observed >= ceil/4 && s.state < Suspect:
			s.transition(Suspect, a.rounds, a.clock.Seconds())
		}
	}
}

// kill declares a slot's member dead: snapshot its telemetry, stop the
// stack, and — when redundancy and a hot spare allow it — attach the
// spare and begin rebuilding. Called only between barriers.
func (a *Array) kill(s *slot) {
	if s.state >= Dead {
		return
	}
	s.transition(Dead, a.rounds, a.clock.Seconds())
	a.trace.Instant1(hostTidSched, "drive_dead", a.clock, "slot", int64(s.id))
	if s.d != nil {
		rep := s.d.report()
		rep.Health = Dead.String()
		s.final = &rep
		// Fold the dead stack's class histograms into the fleet-level
		// retired accumulators so merged latency summaries keep its
		// history after the stack is released.
		a.retired[0].Merge(&s.d.latClean)
		a.retired[1].Merge(&s.d.latRetried)
		a.retired[2].Merge(&s.d.latSoft)
		a.retired[3].Merge(&s.d.latWrite)
		s.d.close()
		s.d = nil
	}
	if a.mode != RedundancyNone {
		a.attachSpare(s)
	}
}
