// Redundancy geometry and the phased round executors. The array runs
// every round as a short sequence of barriers: internal reads (RMW old
// values, reconstruction peers, rebuild sources), recovery reads for
// transient faults, data writes, then parity writes. Each phase batches
// per drive, executes concurrently, and joins before the next phase's
// order-sensitive planning — the same determinism contract as the
// original single-barrier round, just deeper.
package array

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Redundancy modes.
const (
	// RedundancyNone stripes with no cross-drive protection.
	RedundancyNone = "none"
	// RedundancyParity rotates RAID-5 parity across the stripe: N-1
	// data chunks plus one parity chunk per row, parity drive = row mod N.
	RedundancyParity = "parity"
	// RedundancyMirror pairs drives (2k, 2k+1) as RAID-1 copies.
	RedundancyMirror = "mirror"
)

// normalizeRedundancy resolves the config string.
func normalizeRedundancy(mode string, drives int) (string, error) {
	switch mode {
	case "", RedundancyNone:
		return RedundancyNone, nil
	case RedundancyParity:
		if drives < 3 {
			return "", fmt.Errorf("array: parity redundancy needs >= 3 drives, got %d", drives)
		}
		return RedundancyParity, nil
	case RedundancyMirror:
		if drives < 2 || drives%2 != 0 {
			return "", fmt.Errorf("array: mirror redundancy needs an even drive count >= 2, got %d", drives)
		}
		return RedundancyMirror, nil
	}
	return "", fmt.Errorf("array: unknown redundancy mode %q", mode)
}

// dataSlots is how many of the N slots hold distinct data per stripe
// row under the active mode.
func (a *Array) dataSlots() int {
	switch a.mode {
	case RedundancyParity:
		return a.cfg.Drives - 1
	case RedundancyMirror:
		return a.cfg.Drives / 2
	}
	return a.cfg.Drives
}

// locate maps a volume page to its primary (slot, drive-local LPA).
func (a *Array) locate(page int) (drv, lpa int) {
	sp := a.cfg.StripePages
	stripe, off := page/sp, page%sp
	ds := a.dataSlots()
	row, k := stripe/ds, stripe%ds
	lpa = row*sp + off
	switch a.mode {
	case RedundancyParity:
		pd := row % a.cfg.Drives
		if k < pd {
			drv = k
		} else {
			drv = k + 1
		}
	case RedundancyMirror:
		drv = k * 2
	default:
		drv = k
	}
	return drv, lpa
}

// rowOff splits a drive-local LPA into (stripe row, page offset).
func (a *Array) rowOff(lpa int) (row, off int) {
	return lpa / a.cfg.StripePages, lpa % a.cfg.StripePages
}

// parityLoc is the slot holding the parity chunk of a stripe row.
func (a *Array) parityLoc(row int) int { return row % a.cfg.Drives }

// pageOf inverts locate: the volume page stored on slot at lpa, or -1
// when the slot holds parity there (or mirrors another slot's primary).
func (a *Array) pageOf(slotID, lpa int) int {
	sp := a.cfg.StripePages
	row, off := a.rowOff(lpa)
	ds := a.dataSlots()
	switch a.mode {
	case RedundancyParity:
		pd := a.parityLoc(row)
		if slotID == pd {
			return -1
		}
		k := slotID
		if slotID > pd {
			k = slotID - 1
		}
		return (row*ds+k)*sp + off
	case RedundancyMirror:
		return (row*ds+slotID/2)*sp + off
	default:
		return (row*ds+slotID)*sp + off
	}
}

// xorInto accumulates src into dst. Parity accumulation and degraded-
// read reconstruction both funnel through here, so the loop runs
// word-parallel: uint64 8-byte chunks with a byte tail (the unaligned
// load/store pair compiles to single MOVs on the targets we care
// about). XOR is bitwise, so chunking cannot change the result.
func xorInto(dst, src []byte) {
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}

// internalRead is a drive read or write with no host result slot: RMW
// old values, reconstruction peers, parity updates, rebuild traffic.
// Owned by exactly one worker between dispatch and barrier.
type internalRead struct {
	data []byte
	err  error
	lat  time.Duration
}

// readKey identifies one deduplicated internal read.
type readKey struct{ slot, lpa int }

// readSet collects the internal reads one phase needs, deduplicated,
// in deterministic first-want order.
type readSet struct {
	order []readKey
	m     map[readKey]*internalRead
}

func newReadSet() *readSet { return &readSet{m: map[readKey]*internalRead{}} }

// want registers (slot, lpa) for the phase and returns its shared slot.
func (rs *readSet) want(slot, lpa int) *internalRead {
	k := readKey{slot, lpa}
	if ir, ok := rs.m[k]; ok {
		return ir
	}
	ir := &internalRead{}
	rs.m[k] = ir
	rs.order = append(rs.order, k)
	return ir
}

// stage appends the set's reads to the per-slot batches in want order.
func (rs *readSet) stage(batches [][]driveOp) {
	for _, k := range rs.order {
		batches[k.slot] = append(batches[k.slot], driveOp{lpa: k.lpa, slot: k.slot, out: rs.m[k]})
	}
}

// runPhase hands each slot's non-empty batch to its attached member and
// blocks at the barrier; returns the phase's critical path (the slowest
// member's modelled time). Batches for slots with no member are a
// planner bug.
func (a *Array) runPhase(batches [][]driveOp) time.Duration {
	any := false
	for _, b := range batches {
		if len(b) > 0 {
			any = true
			break
		}
	}
	if !any {
		return 0
	}
	// a.phaseWG is reusable: the barrier below returns only once the
	// count is back to zero, and phases never overlap on the front-end
	// goroutine — hoisting it off the stack saves one heap allocation
	// per phase (the pointer escapes through the job channel).
	wg := &a.phaseWG
	for i, b := range batches {
		if len(b) == 0 {
			continue
		}
		d := a.slots[i].d
		if d == nil {
			panic(fmt.Sprintf("array: phase batch for detached slot %d", i))
		}
		wg.Add(1)
		d.jobs <- driveJob{batch: b, wg: wg}
	}
	wg.Wait()
	var crit time.Duration
	for i, b := range batches {
		if len(b) == 0 {
			continue
		}
		if e := a.slots[i].d.roundElapsed; e > crit {
			crit = e
		}
	}
	return crit
}

// action is one drive-bound host operation in round order: a read miss
// or a write leaving the cache layer (res == nil for cache write-backs,
// which have no host result slot).
type action struct {
	write bool
	page  int
	data  []byte
	// buf is the read's caller-owned destination (Op.Buf), threaded to
	// the serving drive so the page decodes without a per-op allocation.
	buf []byte
	res *Result
}

// loseWrite accounts one unrecoverable write honestly: a result slot
// gets the typed error; a write-back bumps the cache-loss counter.
func (a *Array) loseWrite(s *slot, act *action, cause error) {
	s.lostWrites++
	if act.res != nil {
		act.res.Drive = s.id
		act.res.Err = fmt.Errorf("array: write page %d lost: %w", act.page, cause)
		return
	}
	s.wbErrors++
	a.cache.stats.WritebackLost++
}

// execRound executes one round's drive-bound actions under the active
// redundancy mode, interleaving rebuild traffic when allowed, and
// returns the round's accumulated critical-path time.
func (a *Array) execRound(acts []action, allowRebuild bool) time.Duration {
	var items []rbItem
	if allowRebuild {
		items = a.planRebuild()
	}
	var crit time.Duration
	if a.mode == RedundancyParity {
		crit = a.execParity(acts, items)
	} else {
		crit = a.execFlat(acts, items)
	}
	a.finishRebuild(items)
	return crit
}

// pendingRead tracks a host read served directly in phase 1 so a
// persistent transient fault can be recovered in phase 2.
type pendingRead struct {
	res  *Result
	page int
	slot int // serving slot
}

// flatWrite is one host write's fan-out in the flat executor: up to two
// targets (primary plus mirror partner), with a nil out entry where
// act.res carries the result instead.
type flatWrite struct {
	act   *action
	lpa   int
	n     int
	slots [2]int
	outs  [2]*internalRead
}

// execFlat is the single-mixed-batch executor for the none and mirror
// modes: reads and writes stay interleaved per drive in op order
// (preserving read-after-write semantics within a round), with a
// recovery phase for transient read faults and a spare-write phase for
// rebuild traffic.
func (a *Array) execFlat(acts []action, items []rbItem) time.Duration {
	n := len(a.slots)
	batches := a.phaseBatches(n)

	// Rebuild sources: the partner image is read in phase 1 but only
	// written onto the spare in phase 3, after host writes — so any
	// same-round host write to the same page invalidates the copy below.
	for i := range items {
		it := &items[i]
		if it.skip {
			continue
		}
		src := a.slots[it.srcSlot]
		if !src.readable(it.lpa) {
			it.lost = true
			continue
		}
		it.read = &internalRead{}
		batches[it.srcSlot] = append(batches[it.srcSlot], driveOp{lpa: it.lpa, slot: it.srcSlot, out: it.read})
	}

	writes := a.scr.writes[:0]
	reads := a.scr.reads[:0]

	for ai := range acts {
		act := &acts[ai]
		drv, lpa := a.locate(act.page)
		if act.write {
			targets := [2]int{drv, -1}
			nt := 1
			if a.mode == RedundancyMirror {
				targets[1] = drv ^ 1
				nt = 2
			}
			fw := flatWrite{act: act, lpa: lpa}
			carried := false
			for _, t := range targets[:nt] {
				if !a.slots[t].writable() {
					continue
				}
				op := driveOp{write: true, lpa: lpa, data: act.data, slot: t}
				var out *internalRead
				if !carried && act.res != nil {
					op.res = act.res
					carried = true
				} else {
					out = &internalRead{}
					op.out = out
				}
				batches[t] = append(batches[t], op)
				fw.slots[fw.n] = t
				fw.outs[fw.n] = out
				fw.n++
			}
			if fw.n == 0 {
				a.loseWrite(a.slots[drv], act, ErrDriveDead)
				continue
			}
			writes = append(writes, fw)
			continue
		}
		// Read: primary slot, mirror partner as fallback.
		srv := -1
		if a.slots[drv].readable(lpa) {
			srv = drv
		} else if a.mode == RedundancyMirror && a.slots[drv^1].readable(lpa) {
			srv = drv ^ 1
		}
		if srv < 0 {
			act.res.Drive = drv
			act.res.Err = fmt.Errorf("array: read page %d: %w", act.page, ErrDriveDead)
			continue
		}
		if srv != drv {
			a.slots[drv].degradedReads++
		}
		batches[srv] = append(batches[srv], driveOp{lpa: lpa, slot: srv, dst: act.buf, res: act.res})
		reads = append(reads, pendingRead{res: act.res, page: act.page, slot: srv})
	}
	a.scr.writes, a.scr.reads = writes, reads

	crit := a.runPhase(batches)

	// Phase 2: recover transient-faulted reads from the mirror partner.
	// The recovery batch is allocated only when a fault actually fired —
	// the common clean round stays allocation-free.
	if a.mode == RedundancyMirror {
		var rec [][]driveOp
		for _, pr := range reads {
			if pr.res.Err == nil || !isFault(pr.res.Err) {
				continue
			}
			other := pr.slot ^ 1
			_, lpa := a.locate(pr.page)
			if !a.slots[other].readable(lpa) {
				continue
			}
			a.slots[pr.slot].degradedReads++
			pr.res.Err = nil
			if rec == nil {
				rec = make([][]driveOp, n)
			}
			rec[other] = append(rec[other], driveOp{lpa: lpa, slot: other, res: pr.res})
		}
		if rec != nil {
			crit += a.runPhase(rec)
		}
	}

	// Write bookkeeping: written[] on any success, stale marks on
	// partial mirror failures.
	for wi := range writes {
		fw := &writes[wi]
		anyOK := false
		for i, t := range fw.slots[:fw.n] {
			var err error
			if fw.outs[i] == nil {
				err = fw.act.res.Err
			} else {
				err = fw.outs[i].err
			}
			s := a.slots[t]
			if err == nil {
				anyOK = true
				s.markFresh(fw.lpa)
			} else {
				s.markStale(fw.lpa)
				if fw.outs[i] != nil {
					s.wbErrors++
				}
			}
		}
		if anyOK {
			a.written[fw.act.page] = true
		} else if fw.act.res == nil {
			a.cache.stats.WritebackLost++
			a.slots[fw.slots[0]].lostWrites++
		} else {
			a.slots[fw.slots[0]].lostWrites++
		}
	}

	// Invalidate rebuild copies clobbered by same-round host writes: the
	// source image was read in phase 1, so a host write to the same page
	// that landed on either mirror half makes that image stale. If it
	// landed on the rebuilding slot itself the spare already holds the
	// newest content (markFresh marked the page rebuilt); if it landed
	// only on the partner, the copy retries next round from the fresh
	// source. Only a write that failed everywhere leaves the phase-1
	// image canonical.
	for i := range items {
		it := &items[i]
		if it.skip || it.lost || it.read == nil {
			continue
		}
		for wi := range writes {
			fw := &writes[wi]
			if fw.lpa != it.lpa {
				continue
			}
			for j, t := range fw.slots[:fw.n] {
				if t != it.s.id && t != it.srcSlot {
					continue
				}
				var err error
				if fw.outs[j] == nil {
					err = fw.act.res.Err
				} else {
					err = fw.outs[j].err
				}
				if err == nil {
					it.skip = true
					break
				}
			}
			if it.skip {
				break
			}
		}
	}

	// Phase 3: rebuild copies onto the spare.
	crit += a.stageRebuildWrites(items, func(it *rbItem) []byte {
		if it.read == nil || it.read.err != nil {
			return nil
		}
		return it.read.data
	})
	return crit
}

// isFault reports whether an op error is an injected transient fault.
func isFault(err error) bool { return errors.Is(err, ErrDriveFault) }

// pwrite is one parity-mode write reaching the drives this round.
type pwrite struct {
	act                *action
	drv, lpa, row, off int
	l                  int  // parity page index (== parity lpa)
	degraded           bool // target dead with no spare: parity alone carries the content
	oldData            *internalRead
	out                *internalRead // internal data-write result when act.res is nil
	ok                 bool          // data write landed
}

// prow accumulates one touched parity page's update plan: either a
// delta chain (old parity ⊕ old data ⊕ new data per write) or an
// absolute recompute from the row's current values.
type prow struct {
	l, row, pd int
	absolute   bool
	skip       bool // parity slot unwritable: updates are dropped, honestly
	oldParity  *internalRead
	peers      []peerRead
	writes     []int // indexes into pw, op order
	stage      *internalRead
	val        []byte
}

// peerRead is one row member's current value wanted for an absolute
// parity recompute; ir == nil marks a member that cannot be read.
type peerRead struct {
	slot, page int
	ir         *internalRead
}

// recRead is one host read served by reconstruction: XOR of the row's
// readable peers and its parity.
type recRead struct {
	res   *Result
	page  int
	drv   int
	comps []*internalRead
}

// execParity is the phased RAID-5 executor: phase 1 reads (primary
// host reads, RMW old values, reconstruction peers, rebuild sources),
// phase 2 recovery reads for transient faults, phase 3 data writes
// (rebuild copies first, so same-round host writes win), phase 4
// parity writes computed only from writes that actually landed.
func (a *Array) execParity(acts []action, items []rbItem) time.Duration {
	n := len(a.slots)
	rs := newReadSet()
	prows := map[int]*prow{}
	var prowOrder []int
	var pw []pwrite
	var recs []recRead
	var reads []pendingRead
	var hostOps []driveOp
	pendingData := map[int][]byte{}

	getProw := func(row, off int) *prow {
		l := row*a.cfg.StripePages + off
		if pr, ok := prows[l]; ok {
			return pr
		}
		pd := a.parityLoc(row)
		pr := &prow{l: l, row: row, pd: pd}
		if !a.slots[pd].writable() {
			pr.skip = true
		}
		prows[l] = pr
		prowOrder = append(prowOrder, l)
		return pr
	}
	makeAbsolute := func(pr *prow) {
		if pr.absolute || pr.skip {
			pr.absolute = true
			pr.oldParity = nil
			return
		}
		pr.absolute = true
		pr.oldParity = nil
		if pr.peers != nil {
			return
		}
		for j := 0; j < n; j++ {
			if j == pr.pd {
				continue
			}
			pj := a.pageOf(j, pr.l)
			if pj < 0 || !a.written[pj] {
				continue
			}
			p := peerRead{slot: j, page: pj}
			if a.slots[j].readable(pr.l) {
				p.ir = rs.want(j, pr.l)
			}
			pr.peers = append(pr.peers, p)
		}
	}

	// Rebuild source planning shares the phase-1 read set.
	for i := range items {
		it := &items[i]
		row, _ := a.rowOff(it.lpa)
		pd := a.parityLoc(row)
		if it.s.id == pd {
			it.parityRebuild = true
			for j := 0; j < n; j++ {
				if j == pd {
					continue
				}
				pj := a.pageOf(j, it.lpa)
				if pj < 0 || !a.written[pj] {
					continue
				}
				if !a.slots[j].readable(it.lpa) {
					it.skip = true // peer also down: retry a later round
					break
				}
				it.comps = append(it.comps, rs.want(j, it.lpa))
			}
			continue
		}
		if !a.parityOK[it.lpa] {
			it.lost = true // content existed only on the dead member
			continue
		}
		ok := a.slots[pd].readable(it.lpa)
		if ok {
			it.comps = append(it.comps, rs.want(pd, it.lpa))
		} else {
			it.skip = true
		}
		for j := 0; ok && j < n; j++ {
			if j == pd || j == it.s.id {
				continue
			}
			pj := a.pageOf(j, it.lpa)
			if pj < 0 || !a.written[pj] {
				continue
			}
			if !a.slots[j].readable(it.lpa) {
				it.skip = true
				it.comps = nil
				break
			}
			it.comps = append(it.comps, rs.want(j, it.lpa))
		}
	}

	// Host action walk, in schedule order.
	for ai := range acts {
		act := &acts[ai]
		drv, lpa := a.locate(act.page)
		row, off := a.rowOff(lpa)
		st := a.slots[drv]
		if !act.write {
			if v, ok := pendingData[act.page]; ok {
				// Read-after-write inside the round: the accepted write
				// is the newest version; forward it host-side.
				act.res.Drive = drv
				act.res.Data = append([]byte(nil), v...)
				act.res.Latency = a.cfg.HitLatency
				continue
			}
			if st.readable(lpa) {
				hostOps = append(hostOps, driveOp{lpa: lpa, slot: drv, res: act.res})
				reads = append(reads, pendingRead{res: act.res, page: act.page, slot: drv})
				continue
			}
			rec, err := a.planRecon(rs, act.page, drv, lpa)
			if err != nil {
				act.res.Drive = drv
				act.res.Err = err
				continue
			}
			rec.res = act.res
			recs = append(recs, rec)
			continue
		}

		w := pwrite{act: act, drv: drv, lpa: lpa, row: row, off: off, l: lpa}
		pr := getProw(row, off)
		if st.writable() {
			if a.written[act.page] {
				if st.readable(lpa) {
					w.oldData = rs.want(drv, lpa)
				} else {
					makeAbsolute(pr) // old value only reachable through the row
				}
			}
			if act.res == nil {
				w.out = &internalRead{}
			}
		} else {
			w.degraded = true
			if pr.skip {
				a.loseWrite(st, act, ErrDriveDead)
				continue
			}
			makeAbsolute(pr)
			if act.res != nil {
				act.res.Drive = drv
			}
		}
		if !pr.skip && !pr.absolute {
			if a.parityOK[pr.l] {
				if a.slots[pr.pd].readable(pr.l) {
					if pr.oldParity == nil {
						pr.oldParity = rs.want(pr.pd, pr.l)
					}
				} else {
					makeAbsolute(pr)
				}
			} else if a.anyRowWritten(pr.l) {
				makeAbsolute(pr) // stale parity: re-establish from the row
			}
		}
		pr.writes = append(pr.writes, len(pw))
		pendingData[act.page] = act.data
		pw = append(pw, w)
	}

	// Phase 1: every planned read.
	batches := make([][]driveOp, n)
	rs.stage(batches)
	for _, op := range hostOps {
		batches[op.slot] = append(batches[op.slot], op)
	}
	crit := a.runPhase(batches)

	// Resolve phase-1 reconstructions.
	for _, rec := range recs {
		a.resolveRecon(rec)
	}

	// Phase 2: transient-faulted primary reads recover through the row.
	rs2 := newReadSet()
	var recs2 []recRead
	for _, prd := range reads {
		if !isFault(prd.res.Err) {
			continue
		}
		drv, lpa := a.locate(prd.page)
		rec, err := a.planRecon(rs2, prd.page, drv, lpa)
		if err != nil {
			continue // the injected fault stands as the honest error
		}
		prd.res.Err = nil
		rec.res = prd.res
		recs2 = append(recs2, rec)
	}
	if len(rs2.order) > 0 {
		b2 := make([][]driveOp, n)
		rs2.stage(b2)
		crit += a.runPhase(b2)
	}
	for _, rec := range recs2 {
		a.resolveRecon(rec)
	}

	// Phase 3: rebuild copies first, then host data writes.
	b3 := make([][]driveOp, n)
	for i := range items {
		it := &items[i]
		if it.skip || it.lost {
			continue
		}
		val := make([]byte, a.pageBytes)
		bad := false
		for _, c := range it.comps {
			if c.err != nil {
				bad = true
				break
			}
			xorInto(val, c.data)
		}
		if bad {
			it.skip = true
			continue
		}
		it.write = &internalRead{}
		b3[it.s.id] = append(b3[it.s.id], driveOp{write: true, lpa: it.lpa, slot: it.s.id, data: val, out: it.write})
	}
	for i := range pw {
		w := &pw[i]
		if w.degraded {
			continue
		}
		op := driveOp{write: true, lpa: w.lpa, slot: w.drv, data: w.act.data, res: w.act.res, out: w.out}
		b3[w.drv] = append(b3[w.drv], op)
	}
	crit += a.runPhase(b3)

	// Post-barrier write bookkeeping: only landed writes feed parity.
	fin := map[int][]byte{}
	for i := range pw {
		w := &pw[i]
		if w.degraded {
			fin[w.act.page] = w.act.data // resolved by the parity write
			continue
		}
		var err error
		if w.out != nil {
			err = w.out.err
		} else {
			err = w.act.res.Err
		}
		if err == nil {
			w.ok = true
			a.written[w.act.page] = true
			a.slots[w.drv].markFresh(w.lpa)
			fin[w.act.page] = w.act.data
		} else {
			a.slots[w.drv].lostWrites++
			if w.out != nil {
				a.slots[w.drv].wbErrors++
				a.cache.stats.WritebackLost++
			}
		}
	}

	// Compute and stage phase-4 parity writes.
	b4 := make([][]driveOp, n)
	staged4 := false
	for _, l := range prowOrder {
		pr := prows[l]
		if pr.skip {
			if a.parityOK[l] && a.rowChanged(pr, pw) {
				a.parityOK[l] = false
				a.parityStale++
			}
			continue
		}
		val, ok := a.parityValue(pr, pw, fin)
		if !ok {
			a.parityOK[l] = false
			a.parityStale++
			a.failDegraded(pr, pw)
			continue
		}
		if val == nil {
			continue // nothing landed on this row
		}
		pr.val = val
		pr.stage = &internalRead{}
		b4[pr.pd] = append(b4[pr.pd], driveOp{write: true, lpa: l, slot: pr.pd, data: val, out: pr.stage})
		staged4 = true
	}
	if staged4 {
		crit += a.runPhase(b4)
	}
	for _, l := range prowOrder {
		pr := prows[l]
		if pr.stage == nil {
			continue
		}
		if pr.stage.err == nil {
			a.parityOK[l] = true
			a.slots[pr.pd].markFresh(l)
			for _, wi := range pr.writes {
				w := &pw[wi]
				if !w.degraded {
					continue
				}
				a.written[w.act.page] = true
				if w.act.res != nil {
					w.act.res.Latency += pr.stage.lat
				}
			}
		} else {
			a.parityOK[l] = false
			a.parityStale++
			a.failDegraded(pr, pw)
		}
	}
	return crit
}

// planRecon plans a reconstruction read of one page whose primary slot
// cannot serve it: every written peer of the row plus the parity chunk.
func (a *Array) planRecon(rs *readSet, page, drv, lpa int) (recRead, error) {
	row, _ := a.rowOff(lpa)
	pd := a.parityLoc(row)
	if !a.written[page] {
		return recRead{}, fmt.Errorf("array: page %d never written (drive %d %s)", page, drv, a.slots[drv].state)
	}
	if !a.parityOK[lpa] {
		return recRead{}, fmt.Errorf("array: page %d unreconstructable: parity stale: %w", page, ErrDriveDead)
	}
	rec := recRead{page: page, drv: drv}
	if !a.slots[pd].readable(lpa) {
		return recRead{}, fmt.Errorf("array: page %d unreconstructable: parity drive %d down too: %w", page, pd, ErrDriveDead)
	}
	rec.comps = append(rec.comps, rs.want(pd, lpa))
	for j := 0; j < len(a.slots); j++ {
		if j == pd || j == drv {
			continue
		}
		pj := a.pageOf(j, lpa)
		if pj < 0 || !a.written[pj] {
			continue
		}
		if !a.slots[j].readable(lpa) {
			return recRead{}, fmt.Errorf("array: page %d unreconstructable: peer drive %d down too: %w", page, j, ErrDriveDead)
		}
		rec.comps = append(rec.comps, rs.want(j, lpa))
	}
	a.slots[drv].degradedReads++
	return rec, nil
}

// resolveRecon XORs a reconstruction's components into the host result.
// The degraded-read class histogram and trace span record here: the
// reconstruction costs its slowest component read plus the host-side
// XOR service time, starting at the round's clock (the fleet clock does
// not advance until the round ends, so the span nests inside the
// round's).
func (a *Array) resolveRecon(rec recRead) {
	var lat time.Duration
	for _, c := range rec.comps {
		if c.err != nil {
			rec.res.Drive = rec.drv
			rec.res.Err = fmt.Errorf("array: degraded read page %d: %w", rec.page, c.err)
			return
		}
		if c.lat > lat {
			lat = c.lat
		}
	}
	data := make([]byte, a.pageBytes)
	for _, c := range rec.comps {
		xorInto(data, c.data)
	}
	rec.res.Drive = rec.drv
	rec.res.Data = data
	rec.res.Latency += lat + a.cfg.HitLatency
	a.slots[rec.drv].reconBytes += int64(a.pageBytes)
	a.latDegraded.Record(lat + a.cfg.HitLatency)
	// The span covers the component-read window only (the host-side XOR
	// service time is not part of any drive's timeline), which keeps it
	// nested inside the round span even when the reconstruction is the
	// round's entire critical path.
	a.trace.Span2(hostTidRecov, "reconstruct", a.clock, lat,
		"page", int64(rec.page), "slot", int64(rec.drv))
}

// anyRowWritten reports whether any data page of the row holding
// parity page l has ever landed on a drive.
func (a *Array) anyRowWritten(l int) bool {
	for j := 0; j < len(a.slots); j++ {
		if pj := a.pageOf(j, l); pj >= 0 && a.written[pj] {
			return true
		}
	}
	return false
}

// rowChanged reports whether any of the prow's writes landed.
func (a *Array) rowChanged(pr *prow, pw []pwrite) bool {
	for _, wi := range pr.writes {
		if pw[wi].ok {
			return true
		}
	}
	return false
}

// failDegraded surfaces the loss of every degraded write on a parity
// row whose parity update could not land.
func (a *Array) failDegraded(pr *prow, pw []pwrite) {
	for _, wi := range pr.writes {
		w := &pw[wi]
		if w.degraded {
			a.loseWrite(a.slots[w.drv], w.act, ErrDriveDead)
		}
	}
}

// parityValue computes the new parity for a touched row. Returns
// (nil, true) when nothing landed, (nil, false) when the update is
// uncomputable (stale parity results).
func (a *Array) parityValue(pr *prow, pw []pwrite, fin map[int][]byte) ([]byte, bool) {
	if pr.absolute {
		val := make([]byte, a.pageBytes)
		covered := map[int]bool{}
		for _, p := range pr.peers {
			if v, ok := fin[p.page]; ok {
				xorInto(val, v)
				covered[p.page] = true
				continue
			}
			if p.ir == nil || p.ir.err != nil {
				return nil, false
			}
			xorInto(val, p.ir.data)
			covered[p.page] = true
		}
		for _, wi := range pr.writes {
			w := &pw[wi]
			if covered[w.act.page] {
				continue
			}
			if v, ok := fin[w.act.page]; ok {
				xorInto(val, v)
				covered[w.act.page] = true
			}
		}
		return val, true
	}
	// Delta chain over the writes that landed, in op order.
	if pr.oldParity != nil && pr.oldParity.err != nil {
		return nil, false
	}
	val := make([]byte, a.pageBytes)
	if pr.oldParity != nil {
		copy(val, pr.oldParity.data)
	}
	chain := map[int][]byte{}
	changed := false
	for _, wi := range pr.writes {
		w := &pw[wi]
		if !w.ok {
			continue
		}
		old, seen := chain[w.act.page]
		if !seen {
			if w.oldData != nil {
				if w.oldData.err != nil {
					return nil, false
				}
				old = w.oldData.data
			}
		}
		if old != nil {
			xorInto(val, old)
		}
		xorInto(val, w.act.data)
		chain[w.act.page] = w.act.data
		changed = true
	}
	if !changed {
		return nil, true
	}
	return val, true
}
