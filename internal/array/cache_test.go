package array

import "testing"

// policyMakers enumerates every eviction policy for the conformance
// suite; new policies join here and inherit the whole suite.
var policyMakers = []struct {
	name string
	make func() Policy
}{
	{"lru", func() Policy { return NewLRU() }},
	{"clock", func() Policy { return NewClock() }},
}

// TestPolicyConformance runs the policy-agnostic contract every
// eviction policy must satisfy: victims are always resident, each
// admitted page is evicted exactly once, Remove really removes, and
// Len tracks residency.
func TestPolicyConformance(t *testing.T) {
	for _, pm := range policyMakers {
		t.Run(pm.name, func(t *testing.T) {
			p := pm.make()
			if p.Name() != pm.name {
				t.Fatalf("Name() = %q, want %q", p.Name(), pm.name)
			}
			if p.Len() != 0 {
				t.Fatalf("fresh policy Len = %d", p.Len())
			}
			// Touch/Remove of non-resident pages are no-ops.
			p.Touch(99)
			p.Remove(99)
			if p.Len() != 0 {
				t.Fatalf("no-op Touch/Remove changed Len to %d", p.Len())
			}

			const k = 17
			for i := 0; i < k; i++ {
				p.Admit(i)
			}
			if p.Len() != k {
				t.Fatalf("Len = %d after %d admits", p.Len(), k)
			}
			p.Remove(5)
			if p.Len() != k-1 {
				t.Fatalf("Len = %d after Remove", p.Len())
			}
			seen := make(map[int]bool)
			for p.Len() > 0 {
				v := p.Victim()
				if v == 5 {
					t.Fatalf("victim returned removed page 5")
				}
				if v < 0 || v >= k {
					t.Fatalf("victim %d never admitted", v)
				}
				if seen[v] {
					t.Fatalf("page %d evicted twice", v)
				}
				seen[v] = true
			}
			if len(seen) != k-1 {
				t.Fatalf("evicted %d distinct pages, want %d", len(seen), k-1)
			}
		})
	}
}

// TestPolicyConformanceInterleaved drives each policy through a fixed
// admit/touch/remove/victim script twice and requires the identical
// victim sequence — the determinism the fleet report depends on.
func TestPolicyConformanceInterleaved(t *testing.T) {
	script := func(p Policy) []int {
		var victims []int
		for i := 0; i < 8; i++ {
			p.Admit(i)
		}
		p.Touch(0)
		p.Touch(3)
		victims = append(victims, p.Victim(), p.Victim())
		p.Admit(8)
		p.Remove(3)
		p.Touch(8)
		for p.Len() > 0 {
			victims = append(victims, p.Victim())
		}
		return victims
	}
	for _, pm := range policyMakers {
		t.Run(pm.name, func(t *testing.T) {
			a, b := script(pm.make()), script(pm.make())
			if len(a) != len(b) {
				t.Fatalf("victim counts differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("victim %d differs: %d vs %d (full: %v vs %v)", i, a[i], b[i], a, b)
				}
			}
		})
	}
}

// TestLRUOrder pins exact LRU semantics: the least recently used page
// goes first, and Touch refreshes recency.
func TestLRUOrder(t *testing.T) {
	p := NewLRU()
	p.Admit(1)
	p.Admit(2)
	p.Admit(3)
	p.Touch(1) // order (most→least recent): 1, 3, 2
	if v := p.Victim(); v != 2 {
		t.Fatalf("victim = %d, want 2", v)
	}
	if v := p.Victim(); v != 3 {
		t.Fatalf("victim = %d, want 3", v)
	}
	if v := p.Victim(); v != 1 {
		t.Fatalf("victim = %d, want 1", v)
	}
}

// TestClockSecondChance pins the second-chance property: a page whose
// reference bit is set when the hand arrives survives that sweep.
func TestClockSecondChance(t *testing.T) {
	p := NewClock()
	p.Admit(1)
	p.Admit(2)
	p.Admit(3)
	// All reference bits set: the first victim is the oldest (FIFO).
	if v := p.Victim(); v != 1 {
		t.Fatalf("first victim = %d, want 1", v)
	}
	p.Touch(2) // re-referenced: must survive the next sweep
	if v := p.Victim(); v != 3 {
		t.Fatalf("second victim = %d, want 3 (2 had its second chance)", v)
	}
	if v := p.Victim(); v != 2 {
		t.Fatalf("third victim = %d, want 2", v)
	}
}

func mustCache(t *testing.T, cfg CacheConfig) *hostCache {
	t.Helper()
	c, err := newHostCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCacheCounters pins hit/miss/evict/writeback accounting.
func TestCacheCounters(t *testing.T) {
	c := mustCache(t, CacheConfig{Pages: 2})
	if _, ok := c.lookup(1); ok {
		t.Fatal("hit in empty cache")
	}
	if wb := c.put(1, []byte{1}, false); wb != nil {
		t.Fatal("eviction from non-full cache")
	}
	if data, ok := c.lookup(1); !ok || data[0] != 1 {
		t.Fatal("miss after put")
	}
	c.put(2, []byte{2}, true)
	// Cache full; a third page evicts the LRU victim (page 1, clean).
	if wb := c.put(3, []byte{3}, false); wb != nil {
		t.Fatalf("clean eviction surfaced writeback for page %d", wb.page)
	}
	// Page 2 is dirty; filling 4 evicts it (2 was touched after 3? no:
	// order most→least recent is 3, 2) — victim is 2, dirty.
	wb := c.put(4, []byte{4}, false)
	if wb == nil || wb.page != 2 || wb.data[0] != 2 {
		t.Fatalf("dirty eviction: got %+v, want page 2", wb)
	}
	s := c.stats
	if s.Hits != 1 || s.Misses != 1 || s.Evictions != 2 || s.Writebacks != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", got)
	}
}

// TestCacheFlushOrder pins the write-back buffer's deterministic
// ordering: dirty pages flush in first-dirtied order, an overwrite of
// an already-dirty page keeps its original position, and flushed
// entries stay resident but clean.
func TestCacheFlushOrder(t *testing.T) {
	c := mustCache(t, CacheConfig{Pages: 8})
	c.put(5, []byte{50}, true)
	c.put(3, []byte{30}, true)
	c.put(9, []byte{90}, true)
	c.put(3, []byte{31}, true) // overwrite: newest data, original order slot
	if c.dirtyCount() != 3 {
		t.Fatalf("dirty count %d, want 3", c.dirtyCount())
	}
	if c.stats.DirtyHighWaterMark != 3 {
		t.Fatalf("dirty high-water mark %d, want 3", c.stats.DirtyHighWaterMark)
	}

	// Partial flush takes the oldest first.
	part := c.flush(1)
	if len(part) != 1 || part[0].page != 5 || part[0].data[0] != 50 {
		t.Fatalf("partial flush = %+v, want page 5", part)
	}
	rest := c.flush(0)
	if len(rest) != 2 || rest[0].page != 3 || rest[1].page != 9 {
		t.Fatalf("flush order = %+v, want [3 9]", rest)
	}
	if rest[0].data[0] != 31 {
		t.Fatalf("flush of overwritten page carried stale data %d", rest[0].data[0])
	}
	if c.dirtyCount() != 0 {
		t.Fatalf("dirty count %d after full flush", c.dirtyCount())
	}
	// Flushed pages remain resident (clean): their next eviction must
	// not write back again.
	if data, ok := c.lookup(3); !ok || data[0] != 31 {
		t.Fatal("flushed page left the cache")
	}
	if c.stats.Writebacks != 3 {
		t.Fatalf("writebacks %d, want 3", c.stats.Writebacks)
	}
}

// TestCacheFillDoesNotClobberDirty pins the read-fill race rule: a
// drive fill arriving after a newer host write must not overwrite the
// dirty resident copy.
func TestCacheFillDoesNotClobberDirty(t *testing.T) {
	c := mustCache(t, CacheConfig{Pages: 4})
	c.put(7, []byte{2}, true) // host write
	if wb := c.fill(7, []byte{1}); wb != nil {
		t.Fatal("fill of resident page evicted something")
	}
	data, ok := c.lookup(7)
	if !ok || data[0] != 2 {
		t.Fatalf("stale fill clobbered dirty page: got %v", data)
	}
	if c.dirtyCount() != 1 {
		t.Fatal("fill cleaned a dirty page")
	}
}
