package array

import "testing"

// TestArrayRoundZeroAlloc pins the whole per-round hot path — QoS pick,
// flat executor, dispatch lean reads, controller decode, result
// surfacing — at zero steady-state allocations. Ops carry caller-owned
// destination buffers (one per in-flight op; sharing would race) and
// every piece of round scratch is array-owned and reused.
func TestArrayRoundZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	cfg := testConfig(4)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	n := a.VolumePages()
	data := make([]byte, a.PageBytes())
	for p := 0; p < n; p++ {
		if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Drain(); err != nil {
		t.Fatal(err)
	}

	const batch = 16
	bufs := make([][]byte, batch)
	for i := range bufs {
		bufs[i] = make([]byte, a.PageBytes())
	}
	page := 0
	cycle := func() {
		for i := 0; i < batch; i++ {
			page = (page + 13) % n
			if err := a.Submit(Op{Tenant: "default", Page: page, Buf: bufs[i]}); err != nil {
				t.Fatal(err)
			}
		}
		for a.sched.pending() > 0 {
			if _, err := a.round(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm all lazily-grown scratch: queue capacity, round scratch,
	// dispatch job pools, per-partition FTL buffers.
	for i := 0; i < 8; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(30, cycle); avg != 0 {
		t.Fatalf("steady-state array round allocates %.2f/batch, want 0", avg)
	}
}
