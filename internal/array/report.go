package array

import (
	"encoding/json"
	"fmt"
	"strings"
)

// DriveReport is one drive's telemetry slice of the fleet report,
// merged strictly in drive-index order.
type DriveReport struct {
	Drive int    `json:"drive"`
	Seed  uint64 `json:"seed"`

	HostReads  int `json:"host_reads"`
	HostWrites int `json:"host_writes"`
	GCMoves    int `json:"gc_moves"`
	Erases     int `json:"erases"`
	LostPages  int `json:"lost_pages"`

	// Recovery climate, summed over the drive's dies.
	RetryHist      []int `json:"retry_hist"`
	RetryRecovered int   `json:"retry_recovered"`
	Uncorrectable  int   `json:"uncorrectable"`
	SoftAttempts   int   `json:"soft_attempts"`
	SoftRecovered  int   `json:"soft_recovered"`

	UncorrectableReads int64 `json:"uncorrectable_reads"`
	WritebackErrors    int64 `json:"writeback_errors"`

	WearMin float64 `json:"wear_min_cycles"`
	WearMax float64 `json:"wear_max_cycles"`

	ModelledSeconds   float64 `json:"modelled_seconds"`
	AvgReadLatencyUs  float64 `json:"avg_read_latency_us"`
	AvgWriteLatencyUs float64 `json:"avg_write_latency_us"`
}

// FleetTotals is the merged climate across every drive.
type FleetTotals struct {
	HostReads  int `json:"host_reads"`
	HostWrites int `json:"host_writes"`
	GCMoves    int `json:"gc_moves"`
	Erases     int `json:"erases"`
	LostPages  int `json:"lost_pages"`

	RetryHist      []int `json:"retry_hist"`
	RetryRecovered int   `json:"retry_recovered"`
	SoftAttempts   int   `json:"soft_attempts"`
	SoftRecovered  int   `json:"soft_recovered"`

	UncorrectableReads int64 `json:"uncorrectable_reads"`
	// UBER is the fleet's observed uncorrectable bit error rate:
	// uncorrectable page reads × page bits over total bits read from
	// the drives (the host-observed counterpart of the paper's target).
	UBER float64 `json:"uber"`
}

// FleetReport is the deterministic merged result of an array run.
type FleetReport struct {
	Drives      int     `json:"drives"`
	Seed        uint64  `json:"seed"`
	StripePages int     `json:"stripe_pages"`
	VolumePages int     `json:"volume_pages"`
	PageBytes   int     `json:"page_bytes"`
	Rounds      int64   `json:"rounds"`
	QoSStalls   int64   `json:"qos_stalls"`
	ClockSec    float64 `json:"modelled_clock_seconds"`
	// FleetIOPS is total tenant ops over the fleet's modelled clock.
	FleetIOPS float64 `json:"fleet_iops"`

	Cache    CacheStats    `json:"cache"`
	Tenants  []TenantStats `json:"tenants"`
	PerDrive []DriveReport `json:"per_drive"`
	Totals   FleetTotals   `json:"totals"`
}

// Report assembles the fleet report. Call it between Drains (never
// while a round is in flight); the gather walks drives in index order
// so the output is byte-stable per seed.
func (a *Array) Report() *FleetReport {
	rep := &FleetReport{
		Drives:      a.cfg.Drives,
		Seed:        a.cfg.Seed,
		StripePages: a.cfg.StripePages,
		VolumePages: a.volumePages,
		PageBytes:   a.pageBytes,
		Rounds:      a.rounds,
		QoSStalls:   a.stalls,
		ClockSec:    a.clock.Seconds(),
		Cache:       a.cache.stats,
		Tenants:     a.sched.stats(),
	}
	var ops int64
	for _, t := range rep.Tenants {
		ops += t.Reads + t.Writes
	}
	if rep.ClockSec > 0 {
		rep.FleetIOPS = float64(ops) / rep.ClockSec
	}
	for _, d := range a.drives {
		rep.PerDrive = append(rep.PerDrive, d.report())
	}
	rep.Totals = mergeTotals(rep.PerDrive, a.pageBytes)
	return rep
}

// mergeTotals folds per-drive reports into the fleet climate.
func mergeTotals(drives []DriveReport, pageBytes int) FleetTotals {
	var t FleetTotals
	for _, d := range drives {
		t.HostReads += d.HostReads
		t.HostWrites += d.HostWrites
		t.GCMoves += d.GCMoves
		t.Erases += d.Erases
		t.LostPages += d.LostPages
		if t.RetryHist == nil {
			t.RetryHist = make([]int, len(d.RetryHist))
		}
		for i, n := range d.RetryHist {
			t.RetryHist[i] += n
		}
		t.RetryRecovered += d.RetryRecovered
		t.SoftAttempts += d.SoftAttempts
		t.SoftRecovered += d.SoftRecovered
		t.UncorrectableReads += d.UncorrectableReads
	}
	pageBits := float64(pageBytes) * 8
	bitsRead := float64(t.HostReads) * pageBits
	if bitsRead > 0 {
		t.UBER = float64(t.UncorrectableReads) * pageBits / bitsRead
	}
	return t
}

// JSON renders the report byte-stably (two-space indent, struct-order
// keys, no maps anywhere in the tree).
func (r *FleetReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Summary renders a short human-readable digest.
func (r *FleetReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d drives, %d volume pages (stripe %d), seed %d\n",
		r.Drives, r.VolumePages, r.StripePages, r.Seed)
	fmt.Fprintf(&b, "  clock %.6fs  rounds %d  stalls %d  fleet IOPS %.0f\n",
		r.ClockSec, r.Rounds, r.QoSStalls, r.FleetIOPS)
	fmt.Fprintf(&b, "  cache[%s cap %d]: hits %d misses %d (%.1f%%) evict %d writeback %d\n",
		r.Cache.PolicyName, r.Cache.Capacity, r.Cache.Hits, r.Cache.Misses,
		100*r.Cache.HitRate(), r.Cache.Evictions, r.Cache.Writebacks)
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "  tenant %-12s reads %6d (hits %6d) writes %6d throttled %d\n",
			t.Name, t.Reads, t.CacheHits, t.Writes, t.Throttled)
	}
	fmt.Fprintf(&b, "  totals: host R/W %d/%d  gc %d  erases %d  retries recovered %d  soft %d/%d  UBER %.3g\n",
		r.Totals.HostReads, r.Totals.HostWrites, r.Totals.GCMoves, r.Totals.Erases,
		r.Totals.RetryRecovered, r.Totals.SoftRecovered, r.Totals.SoftAttempts, r.Totals.UBER)
	return b.String()
}
