package array

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"xlnand/internal/obs"
)

// DriveLatency groups one drive's per-op-class latency summaries.
type DriveLatency struct {
	CleanRead   obs.HistSnapshot `json:"clean_read"`
	RetriedRead obs.HistSnapshot `json:"retried_read"`
	SoftRead    obs.HistSnapshot `json:"soft_read"`
	Write       obs.HistSnapshot `json:"write"`
}

// FleetLatency is the fleet-merged per-op-class latency view: the
// drives' class histograms (retired stacks included) plus the two
// front-end classes no single drive owns — reads served by parity
// reconstruction and rebuild page copies onto spares.
type FleetLatency struct {
	CleanRead    obs.HistSnapshot `json:"clean_read"`
	RetriedRead  obs.HistSnapshot `json:"retried_read"`
	SoftRead     obs.HistSnapshot `json:"soft_read"`
	DegradedRead obs.HistSnapshot `json:"degraded_read"`
	Write        obs.HistSnapshot `json:"write"`
	RebuildCopy  obs.HistSnapshot `json:"rebuild_copy"`
}

// DriveReport is one slot's telemetry slice of the fleet report,
// merged strictly in slot order. Drive is the logical slot; Physical
// identifies the stack serving it (>= Drives for an attached spare).
type DriveReport struct {
	Drive    int    `json:"drive"`
	Physical int    `json:"physical_drive"`
	Seed     uint64 `json:"seed"`

	Health      string             `json:"health,omitempty"`
	Transitions []HealthTransition `json:"health_transitions,omitempty"`

	HostReads  int `json:"host_reads"`
	HostWrites int `json:"host_writes"`
	GCMoves    int `json:"gc_moves"`
	Erases     int `json:"erases"`
	LostPages  int `json:"lost_pages"`

	// Recovery climate, summed over the drive's dies. CleanReads counts
	// reads the controller's stamped-page short-circuit served without
	// touching the decoder.
	RetryHist      []int `json:"retry_hist"`
	RetryRecovered int   `json:"retry_recovered"`
	Uncorrectable  int   `json:"uncorrectable"`
	SoftAttempts   int   `json:"soft_attempts"`
	SoftRecovered  int   `json:"soft_recovered"`
	CleanReads     int64 `json:"clean_reads"`

	// Latency holds the drive's per-op-class latency snapshots once any
	// op has been served.
	Latency *DriveLatency `json:"latency,omitempty"`

	UncorrectableReads int64 `json:"uncorrectable_reads"`
	WritebackErrors    int64 `json:"writeback_errors"`

	// Fault-layer climate: injected transient faults served by the
	// stack, host reads answered by peer reconstruction, bytes rebuilt
	// into results that way, and writes lost for good.
	InjectedFaults     int64 `json:"injected_faults,omitempty"`
	DegradedReads      int64 `json:"degraded_reads,omitempty"`
	ReconstructedBytes int64 `json:"reconstructed_bytes,omitempty"`
	LostWrites         int64 `json:"lost_writes,omitempty"`

	WearMin float64 `json:"wear_min_cycles"`
	WearMax float64 `json:"wear_max_cycles"`

	ModelledSeconds   float64 `json:"modelled_seconds"`
	AvgReadLatencyUs  float64 `json:"avg_read_latency_us"`
	AvgWriteLatencyUs float64 `json:"avg_write_latency_us"`
}

// FleetTotals is the merged climate across every drive.
type FleetTotals struct {
	HostReads  int `json:"host_reads"`
	HostWrites int `json:"host_writes"`
	GCMoves    int `json:"gc_moves"`
	Erases     int `json:"erases"`
	LostPages  int `json:"lost_pages"`

	RetryHist      []int `json:"retry_hist"`
	RetryRecovered int   `json:"retry_recovered"`
	SoftAttempts   int   `json:"soft_attempts"`
	SoftRecovered  int   `json:"soft_recovered"`
	CleanReads     int64 `json:"clean_reads"`

	UncorrectableReads int64 `json:"uncorrectable_reads"`
	// UBER is the fleet's observed uncorrectable bit error rate:
	// uncorrectable page reads × page bits over total bits read from
	// the drives (the host-observed counterpart of the paper's target).
	UBER float64 `json:"uber"`

	InjectedFaults     int64 `json:"injected_faults"`
	DegradedReads      int64 `json:"degraded_reads"`
	ReconstructedBytes int64 `json:"reconstructed_bytes"`
	LostWrites         int64 `json:"lost_writes"`
	ParityStaleEvents  int64 `json:"parity_stale_events"`
}

// FleetReport is the deterministic merged result of an array run.
type FleetReport struct {
	Drives      int     `json:"drives"`
	Seed        uint64  `json:"seed"`
	StripePages int     `json:"stripe_pages"`
	Redundancy  string  `json:"redundancy"`
	Spares      int     `json:"spares"`
	SparesFree  int     `json:"spares_free"`
	VolumePages int     `json:"volume_pages"`
	PageBytes   int     `json:"page_bytes"`
	Rounds      int64   `json:"rounds"`
	QoSStalls   int64   `json:"qos_stalls"`
	ClockSec    float64 `json:"modelled_clock_seconds"`
	// FleetIOPS is total tenant ops over the fleet's modelled clock.
	FleetIOPS float64 `json:"fleet_iops"`

	Cache   CacheStats    `json:"cache"`
	Tenants []TenantStats `json:"tenants"`
	// PerDrive is one entry per slot (a slot served by a spare reports
	// the spare's stack); Retired holds the final snapshots of stacks
	// that died mid-run, so their history is never silently dropped.
	PerDrive []DriveReport   `json:"per_drive"`
	Retired  []DriveReport   `json:"retired,omitempty"`
	Rebuilds []RebuildReport `json:"rebuilds,omitempty"`
	// Latency is the fleet-merged per-op-class latency view.
	Latency *FleetLatency `json:"latency,omitempty"`
	Totals  FleetTotals   `json:"totals"`
}

// slotReport renders one slot: the live stack's telemetry (or the dead
// stack's final snapshot) plus the slot's health history and
// degraded-mode counters.
func (a *Array) slotReport(s *slot) DriveReport {
	var rep DriveReport
	switch {
	case s.d != nil:
		rep = s.d.report()
	case s.final != nil:
		rep = *s.final
	default:
		rep = DriveReport{Physical: -1}
	}
	rep.Drive = s.id
	rep.Health = s.state.String()
	rep.Transitions = s.transitions
	rep.DegradedReads = s.degradedReads
	rep.ReconstructedBytes = s.reconBytes
	rep.LostWrites = s.lostWrites
	rep.WritebackErrors = s.wbErrors
	return rep
}

// Report assembles the fleet report. Call it between Drains (never
// while a round is in flight); the gather walks slots in index order
// so the output is byte-stable per seed.
func (a *Array) Report() *FleetReport {
	rep := &FleetReport{
		Drives:      a.cfg.Drives,
		Seed:        a.cfg.Seed,
		StripePages: a.cfg.StripePages,
		Redundancy:  a.mode,
		Spares:      a.cfg.Spares,
		SparesFree:  len(a.sparePool),
		VolumePages: a.volumePages,
		PageBytes:   a.pageBytes,
		Rounds:      a.rounds,
		QoSStalls:   a.stalls,
		ClockSec:    a.clock.Seconds(),
		Cache:       a.cache.stats,
		Tenants:     a.sched.stats(),
	}
	var ops int64
	for _, t := range rep.Tenants {
		if t.Name == rebuildTenant {
			continue
		}
		ops += t.Reads + t.Writes
	}
	if rep.ClockSec > 0 {
		rep.FleetIOPS = float64(ops) / rep.ClockSec
	}
	for _, s := range a.slots {
		rep.PerDrive = append(rep.PerDrive, a.slotReport(s))
		if s.final != nil && s.d != nil {
			// The slot is served by a spare now: the dead stack's last
			// snapshot moves to the retired list.
			rep.Retired = append(rep.Retired, *s.final)
		}
	}
	for _, rb := range a.rebuilds {
		rep.Rebuilds = append(rep.Rebuilds, *rb)
	}
	rep.Latency = a.fleetLatency()
	rep.Totals = mergeTotals(append(append([]DriveReport(nil), rep.PerDrive...), rep.Retired...), a.pageBytes)
	rep.Totals.ParityStaleEvents = a.parityStale
	return rep
}

// fleetLatency merges the per-drive class histograms (live members in
// slot order, then the retired accumulators) with the front-end-owned
// degraded-read and rebuild-copy classes. Merge is associative, so the
// grouping cannot change the summaries. Returns nil before any op.
func (a *Array) fleetLatency() *FleetLatency {
	var clean, retried, soft, write obs.LatencyHist
	for _, s := range a.slots {
		if s.d == nil {
			continue
		}
		clean.Merge(&s.d.latClean)
		retried.Merge(&s.d.latRetried)
		soft.Merge(&s.d.latSoft)
		write.Merge(&s.d.latWrite)
	}
	clean.Merge(&a.retired[0])
	retried.Merge(&a.retired[1])
	soft.Merge(&a.retired[2])
	write.Merge(&a.retired[3])
	total := clean.Count() + retried.Count() + soft.Count() + write.Count() +
		a.latDegraded.Count() + a.latRebuild.Count()
	if total == 0 {
		return nil
	}
	return &FleetLatency{
		CleanRead:    clean.Snapshot(),
		RetriedRead:  retried.Snapshot(),
		SoftRead:     soft.Snapshot(),
		DegradedRead: a.latDegraded.Snapshot(),
		Write:        write.Snapshot(),
		RebuildCopy:  a.latRebuild.Snapshot(),
	}
}

// mergeTotals folds per-drive reports into the fleet climate.
func mergeTotals(drives []DriveReport, pageBytes int) FleetTotals {
	var t FleetTotals
	for _, d := range drives {
		t.HostReads += d.HostReads
		t.HostWrites += d.HostWrites
		t.GCMoves += d.GCMoves
		t.Erases += d.Erases
		t.LostPages += d.LostPages
		if t.RetryHist == nil {
			t.RetryHist = make([]int, len(d.RetryHist))
		}
		for i, n := range d.RetryHist {
			t.RetryHist[i] += n
		}
		t.RetryRecovered += d.RetryRecovered
		t.SoftAttempts += d.SoftAttempts
		t.SoftRecovered += d.SoftRecovered
		t.CleanReads += d.CleanReads
		t.UncorrectableReads += d.UncorrectableReads
		t.InjectedFaults += d.InjectedFaults
		t.DegradedReads += d.DegradedReads
		t.ReconstructedBytes += d.ReconstructedBytes
		t.LostWrites += d.LostWrites
	}
	pageBits := float64(pageBytes) * 8
	bitsRead := float64(t.HostReads) * pageBits
	if bitsRead > 0 {
		t.UBER = float64(t.UncorrectableReads) * pageBits / bitsRead
	}
	return t
}

// JSON renders the report byte-stably (two-space indent, struct-order
// keys, no maps anywhere in the tree).
func (r *FleetReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Summary renders a short human-readable digest.
func (r *FleetReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d drives (%s, %d spare), %d volume pages (stripe %d), seed %d\n",
		r.Drives, r.Redundancy, r.Spares, r.VolumePages, r.StripePages, r.Seed)
	fmt.Fprintf(&b, "  clock %.6fs  rounds %d  stalls %d  fleet IOPS %.0f\n",
		r.ClockSec, r.Rounds, r.QoSStalls, r.FleetIOPS)
	fmt.Fprintf(&b, "  cache[%s cap %d]: hits %d misses %d (%.1f%%) evict %d writeback %d lost %d\n",
		r.Cache.PolicyName, r.Cache.Capacity, r.Cache.Hits, r.Cache.Misses,
		100*r.Cache.HitRate(), r.Cache.Evictions, r.Cache.Writebacks, r.Cache.WritebackLost)
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "  tenant %-12s reads %6d (hits %6d) writes %6d throttled %d",
			t.Name, t.Reads, t.CacheHits, t.Writes, t.Throttled)
		if t.Latency != nil {
			fmt.Fprintf(&b, "  p50/p99 %.1f/%.1fus", t.Latency.P50Us, t.Latency.P99Us)
		}
		if t.SLOTargetUs > 0 {
			fmt.Fprintf(&b, "  SLO %.0fus breaches %d", t.SLOTargetUs, t.SLOBreaches)
			if len(t.BreachRounds) > 0 {
				b.WriteString(" (rounds")
				for _, rd := range t.BreachRounds {
					b.WriteByte(' ')
					b.WriteString(strconv.FormatInt(rd, 10))
				}
				if t.SLOBreaches > int64(len(t.BreachRounds)) {
					b.WriteString(" ...")
				}
				b.WriteByte(')')
			}
		}
		b.WriteByte('\n')
	}
	if r.Latency != nil {
		lat := func(name string, s obs.HistSnapshot) {
			if s.Count == 0 {
				return
			}
			fmt.Fprintf(&b, "  lat %-13s n %8d  p50 %9.1fus  p99 %9.1fus  p99.9 %9.1fus  max %9.1fus\n",
				name, s.Count, s.P50Us, s.P99Us, s.P999Us, s.MaxUs)
		}
		lat("clean read", r.Latency.CleanRead)
		lat("retried read", r.Latency.RetriedRead)
		lat("soft read", r.Latency.SoftRead)
		lat("degraded read", r.Latency.DegradedRead)
		lat("write", r.Latency.Write)
		lat("rebuild copy", r.Latency.RebuildCopy)
	}
	for _, d := range r.PerDrive {
		if d.Health != "" && d.Health != "healthy" {
			fmt.Fprintf(&b, "  drive %d: %s  degraded reads %d  recon %d B  lost writes %d\n",
				d.Drive, d.Health, d.DegradedReads, d.ReconstructedBytes, d.LostWrites)
		}
	}
	for _, rb := range r.Rebuilds {
		state := "in progress"
		if rb.Complete {
			state = fmt.Sprintf("complete in %.3fs (%.1f MB/s)",
				rb.DoneClockSec-rb.StartClockSec, rb.MBPerSec)
		}
		fmt.Fprintf(&b, "  rebuild slot %d -> spare %d: %d pages (%d lost) %s\n",
			rb.Slot, rb.SpareDrive, rb.Pages, rb.Lost, state)
	}
	fmt.Fprintf(&b, "  totals: host R/W %d/%d  gc %d  erases %d  retries recovered %d  soft %d/%d  UBER %.3g\n",
		r.Totals.HostReads, r.Totals.HostWrites, r.Totals.GCMoves, r.Totals.Erases,
		r.Totals.RetryRecovered, r.Totals.SoftRecovered, r.Totals.SoftAttempts, r.Totals.UBER)
	if r.Totals.InjectedFaults+r.Totals.DegradedReads+r.Totals.LostWrites > 0 {
		fmt.Fprintf(&b, "  faults: injected %d  degraded reads %d  recon %d B  lost writes %d  parity stale %d\n",
			r.Totals.InjectedFaults, r.Totals.DegradedReads, r.Totals.ReconstructedBytes,
			r.Totals.LostWrites, r.Totals.ParityStaleEvents)
	}
	return b.String()
}

// PublishMetrics dumps the fleet's counters, gauges, and latency-class
// summaries into the registry: array-level series first, then each
// attached drive's dispatcher and FTL series labelled drive="<slot>".
// Publish-on-snapshot: nothing here runs on the round hot path. Call it
// between Drains, like Report.
func (a *Array) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	rep := a.Report()
	reg.SetGauge("array_drives", float64(rep.Drives))
	reg.SetGauge("array_spares_free", float64(rep.SparesFree))
	reg.SetGauge("array_clock_seconds", rep.ClockSec)
	reg.SetGauge("array_fleet_iops", rep.FleetIOPS)
	reg.AddCounter("array_rounds_total", float64(rep.Rounds))
	reg.AddCounter("array_qos_stalls_total", float64(rep.QoSStalls))
	reg.AddCounter("array_cache_hits_total", float64(rep.Cache.Hits))
	reg.AddCounter("array_cache_misses_total", float64(rep.Cache.Misses))
	reg.AddCounter("array_cache_writebacks_total", float64(rep.Cache.Writebacks))
	reg.AddCounter("array_degraded_reads_total", float64(rep.Totals.DegradedReads))
	reg.AddCounter("array_lost_writes_total", float64(rep.Totals.LostWrites))
	reg.AddCounter("array_parity_stale_total", float64(rep.Totals.ParityStaleEvents))
	for _, t := range rep.Tenants {
		reg.AddCounter(obs.Label("tenant_reads_total", "name", t.Name), float64(t.Reads))
		reg.AddCounter(obs.Label("tenant_writes_total", "name", t.Name), float64(t.Writes))
		reg.AddCounter(obs.Label("tenant_throttled_total", "name", t.Name), float64(t.Throttled))
		if t.SLOTargetUs > 0 {
			reg.SetGauge(obs.Label("tenant_slo_target_us", "name", t.Name), t.SLOTargetUs)
			reg.AddCounter(obs.Label("tenant_slo_breaches_total", "name", t.Name), float64(t.SLOBreaches))
		}
		if t.Latency != nil {
			reg.ObserveHist(obs.Label("tenant_latency_us", "name", t.Name), *t.Latency)
		}
	}
	if rep.Latency != nil {
		class := func(name string, s obs.HistSnapshot) {
			if s.Count > 0 {
				reg.ObserveHist(obs.Label("array_op_latency_us", "class", name), s)
			}
		}
		class("clean_read", rep.Latency.CleanRead)
		class("retried_read", rep.Latency.RetriedRead)
		class("soft_read", rep.Latency.SoftRead)
		class("degraded_read", rep.Latency.DegradedRead)
		class("write", rep.Latency.Write)
		class("rebuild_copy", rep.Latency.RebuildCopy)
	}
	for _, s := range a.slots {
		if s.d == nil {
			continue
		}
		label := `drive="` + strconv.Itoa(s.id) + `"`
		s.d.disp.PublishMetrics(reg, label)
		s.d.f.PublishMetrics(reg, label)
	}
}
