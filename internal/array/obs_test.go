package array

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"xlnand/internal/obs"
)

// tracedDegradedRun drives a parity fleet through writes, a drive
// death, and reads that must reconstruct, returning the trace export
// and the fleet report.
func tracedDegradedRun(t *testing.T) ([]byte, *FleetReport) {
	t.Helper()
	tr := obs.NewTracer()
	cfg := testConfig(4)
	cfg.Redundancy = RedundancyParity
	cfg.Trace = tr
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	const warm = 64
	for p := 0; p < warm; p++ {
		if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: pagePattern(a, p, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Drain(); err != nil {
		t.Fatal(err)
	}
	a.kill(a.slots[2]) // no spare: reads of slot 2 must reconstruct
	for p := 0; p < warm; p++ {
		if drv, _ := a.locate(p); drv == 2 {
			if err := a.Submit(Op{Tenant: "default", Page: p}); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := a.Drain()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("degraded read page %d failed: %v", r.Page, r.Err)
		}
	}
	return tr.JSON(), a.Report()
}

// traceEvent mirrors the exported trace-event fields the tests check.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
}

func parseTrace(t *testing.T, raw []byte) []traceEvent {
	t.Helper()
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	return doc.TraceEvents
}

// TestArrayTraceDeterministic pins the acceptance contract: two traced
// runs of the same degraded scenario export byte-identical JSON.
func TestArrayTraceDeterministic(t *testing.T) {
	j1, _ := tracedDegradedRun(t)
	j2, _ := tracedDegradedRun(t)
	if !bytes.Equal(j1, j2) {
		t.Fatal("trace exports diverged between identical degraded runs")
	}
}

// TestArrayTraceSchema checks the degraded-run trace's shape: host and
// per-drive processes, reconstruction spans on the recovery thread with
// virtual timestamps correctly nested inside their scheduling round,
// and drive-level sense/decode spans from the dispatch layer.
func TestArrayTraceSchema(t *testing.T) {
	raw, rep := tracedDegradedRun(t)
	if rep.Totals.DegradedReads == 0 {
		t.Fatal("scenario produced no degraded reads")
	}
	events := parseTrace(t, raw)

	procs := map[int]string{}
	var rounds, recons []traceEvent
	names := map[string]int{}
	for _, e := range events {
		if e.Ph == "M" && e.Name == "process_name" {
			procs[e.Pid] = e.Args["name"].(string)
		}
		if e.Ph == "X" {
			names[e.Name]++
		}
		if e.Pid != 0 {
			continue
		}
		switch e.Name {
		case "round":
			rounds = append(rounds, e)
		case "reconstruct":
			recons = append(recons, e)
		}
	}
	if procs[0] != "host" || !strings.HasPrefix(procs[1], "drive") {
		t.Fatalf("process layout wrong: %v", procs)
	}
	for _, want := range []string{"round", "reconstruct", "sense", "decode", "program"} {
		if names[want] == 0 {
			t.Errorf("no %q spans in trace", want)
		}
	}
	if len(recons) == 0 {
		t.Fatal("no reconstruction spans despite degraded reads")
	}
	const eps = 1e-9
	for _, rc := range recons {
		if rc.Tid != hostTidRecov {
			t.Fatalf("reconstruct span on tid %d, want %d", rc.Tid, hostTidRecov)
		}
		nested := false
		for _, rd := range rounds {
			if rc.Ts >= rd.Ts-eps && rc.Ts+rc.Dur <= rd.Ts+rd.Dur+eps {
				nested = true
				break
			}
		}
		if !nested {
			t.Fatalf("reconstruct span [%v,+%v) not nested in any round span", rc.Ts, rc.Dur)
		}
	}
	// The death marker rides the scheduler thread.
	found := false
	for _, e := range events {
		if e.Name == "drive_dead" && e.Pid == 0 {
			found = true
			if e.Args["slot"].(float64) != 2 {
				t.Fatalf("drive_dead marks slot %v, want 2", e.Args["slot"])
			}
		}
	}
	if !found {
		t.Fatal("no drive_dead instant in trace")
	}
}

// TestTenantSLOBreaches pins the per-tenant latency SLO satellite: a
// sub-microsecond target must breach on every drive-served op, the
// breach rounds dedupe and cap, and an SLO-free tenant reports nothing.
func TestTenantSLOBreaches(t *testing.T) {
	cfg := testConfig(2)
	cfg.Tenants = []TenantConfig{
		{Name: "strict", SLOTarget: time.Nanosecond},
		{Name: "loose"},
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	const ops = 40
	for p := 0; p < ops; p++ {
		if err := a.Submit(Op{Tenant: "strict", Write: true, Page: p, Data: pagePattern(a, p, 0)}); err != nil {
			t.Fatal(err)
		}
		if err := a.Submit(Op{Tenant: "loose", Write: true, Page: ops + p, Data: pagePattern(a, p, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Drain(); err != nil {
		t.Fatal(err)
	}
	rep := a.Report()
	var strict, loose *TenantStats
	for i := range rep.Tenants {
		switch rep.Tenants[i].Name {
		case "strict":
			strict = &rep.Tenants[i]
		case "loose":
			loose = &rep.Tenants[i]
		}
	}
	if strict == nil || loose == nil {
		t.Fatal("tenants missing from report")
	}
	if strict.SLOBreaches != ops {
		t.Fatalf("strict tenant breaches = %d, want %d", strict.SLOBreaches, ops)
	}
	if len(strict.BreachRounds) == 0 || len(strict.BreachRounds) > sloBreachRoundsCap {
		t.Fatalf("breach round list size %d outside (0,%d]", len(strict.BreachRounds), sloBreachRoundsCap)
	}
	for i := 1; i < len(strict.BreachRounds); i++ {
		if strict.BreachRounds[i] <= strict.BreachRounds[i-1] {
			t.Fatal("breach rounds not strictly increasing (per-round dedup broken)")
		}
	}
	if strict.Latency == nil || strict.Latency.Count != ops {
		t.Fatalf("strict tenant latency snapshot missing or wrong count: %+v", strict.Latency)
	}
	if loose.SLOBreaches != 0 || loose.SLOTargetUs != 0 || loose.BreachRounds != nil {
		t.Fatalf("SLO-free tenant carries SLO state: %+v", loose)
	}
	if loose.Latency == nil || loose.Latency.Count != ops {
		t.Fatalf("loose tenant latency snapshot missing: %+v", loose.Latency)
	}
}

// TestFleetLatencyClasses checks the per-op-class histograms surface in
// both the per-drive and fleet-level report sections, with ordered
// quantiles.
func TestFleetLatencyClasses(t *testing.T) {
	cfg := testConfig(2)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	const ops = 32
	for p := 0; p < ops; p++ {
		if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: pagePattern(a, p, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Drain(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < ops; p++ {
		if err := a.Submit(Op{Tenant: "default", Page: p}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Drain(); err != nil {
		t.Fatal(err)
	}
	rep := a.Report()
	if rep.Latency == nil {
		t.Fatal("fleet latency section missing")
	}
	reads := rep.Latency.CleanRead.Count + rep.Latency.RetriedRead.Count + rep.Latency.SoftRead.Count
	if reads != ops {
		t.Fatalf("read-class counts sum to %d, want %d", reads, ops)
	}
	if rep.Latency.Write.Count != ops {
		t.Fatalf("write-class count %d, want %d", rep.Latency.Write.Count, ops)
	}
	check := func(name string, s obs.HistSnapshot) {
		if s.Count == 0 {
			return
		}
		if s.P50Us > s.P99Us || s.P99Us > s.P999Us || s.MinUs > s.P50Us || s.P999Us > s.MaxUs {
			t.Errorf("%s quantiles disordered: %+v", name, s)
		}
	}
	check("clean", rep.Latency.CleanRead)
	check("write", rep.Latency.Write)
	var perDrive uint64
	for _, d := range rep.PerDrive {
		if d.Latency == nil {
			t.Fatalf("drive %d missing latency section", d.Drive)
		}
		perDrive += d.Latency.CleanRead.Count + d.Latency.RetriedRead.Count + d.Latency.SoftRead.Count
	}
	if perDrive != reads {
		t.Fatalf("per-drive read counts sum to %d, fleet says %d", perDrive, reads)
	}
}

// TestArrayPublishMetrics checks the registry export is byte-stable
// and carries the expected series families.
func TestArrayPublishMetrics(t *testing.T) {
	run := func() []byte {
		cfg := testConfig(2)
		cfg.Tenants = []TenantConfig{{Name: "default", SLOTarget: time.Nanosecond}}
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		for p := 0; p < 16; p++ {
			if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: pagePattern(a, p, 0)}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := a.Drain(); err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		a.PublishMetrics(reg)
		return reg.PrometheusText()
	}
	p1, p2 := run(), run()
	if !bytes.Equal(p1, p2) {
		t.Fatal("metrics export diverged between identical runs")
	}
	for _, want := range []string{
		"array_fleet_iops",
		"array_op_latency_us{class=\"write\",quantile=\"0.99\"}",
		"tenant_slo_breaches_total{name=\"default\"}",
		"nand_clean_reads_total{drive=\"0\"}",
		"ftl_host_writes_total{drive=\"1\",part=\"vol\"}",
	} {
		if !strings.Contains(string(p1), want) {
			t.Errorf("metrics export missing %q", want)
		}
	}
}
