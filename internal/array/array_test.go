package array

import (
	"bytes"
	"fmt"
	"testing"
)

// testConfig is a small fast fleet: single-die drives, three blocks
// each (128-page drive capacity).
func testConfig(drives int) Config {
	return Config{
		Drives:       drives,
		DiesPerDrive: 1,
		BlocksPerDie: 3,
		Seed:         4242,
	}
}

func pagePattern(a *Array, page, version int) []byte {
	data := make([]byte, a.PageBytes())
	for i := range data {
		data[i] = byte(page*31 + version*7 + i)
	}
	return data
}

func mustDrain(t *testing.T, a *Array) []Result {
	t.Helper()
	res, err := a.Drain()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestArrayRoundtrip writes and reads back a striped volume through
// the cache and checks every byte plus the basic counters.
func TestArrayRoundtrip(t *testing.T) {
	cfg := testConfig(4)
	cfg.Cache = CacheConfig{Pages: 8}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	if a.VolumePages() != 4*128 {
		t.Fatalf("volume pages = %d, want 512", a.VolumePages())
	}
	const n = 40
	for p := 0; p < n; p++ {
		if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: pagePattern(a, p, 0), Tag: uint64(p)}); err != nil {
			t.Fatal(err)
		}
	}
	writes := mustDrain(t, a)
	if len(writes) != n {
		t.Fatalf("%d write completions, want %d", len(writes), n)
	}
	for _, r := range writes {
		if r.Err != nil {
			t.Fatalf("write page %d: %v", r.Page, r.Err)
		}
		if r.Tag != uint64(r.Page) {
			t.Fatalf("tag %d echoed for page %d", r.Tag, r.Page)
		}
	}
	for p := 0; p < n; p++ {
		if err := a.Submit(Op{Tenant: "default", Page: p}); err != nil {
			t.Fatal(err)
		}
	}
	reads := mustDrain(t, a)
	if len(reads) != n {
		t.Fatalf("%d read completions, want %d", len(reads), n)
	}
	for _, r := range reads {
		if r.Err != nil {
			t.Fatalf("read page %d: %v", r.Page, r.Err)
		}
		if !bytes.Equal(r.Data, pagePattern(a, r.Page, 0)) {
			t.Fatalf("page %d read back wrong data", r.Page)
		}
		if r.CacheHit {
			if r.Drive != -1 {
				t.Fatalf("cache hit tagged with drive %d", r.Drive)
			}
		} else if r.Drive < 0 || r.Drive >= cfg.Drives {
			t.Fatalf("miss served by drive %d", r.Drive)
		}
	}
	// The scan's tail is resident now: re-reading it must hit.
	hits := 0
	for p := n - 8; p < n; p++ {
		if err := a.Submit(Op{Tenant: "default", Page: p}); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range mustDrain(t, a) {
		if r.Err != nil {
			t.Fatalf("re-read page %d: %v", r.Page, r.Err)
		}
		if !bytes.Equal(r.Data, pagePattern(a, r.Page, 0)) {
			t.Fatalf("re-read page %d wrong data", r.Page)
		}
		if r.CacheHit {
			hits++
		}
	}
	if hits != 8 {
		t.Fatalf("re-read of resident tail hit %d/8 times", hits)
	}
	rep := a.Report()
	if rep.Cache.Hits == 0 || rep.Cache.Misses == 0 || rep.Cache.Evictions == 0 || rep.Cache.Writebacks == 0 {
		t.Fatalf("cache climate incomplete: %+v", rep.Cache)
	}
	if int(rep.Cache.Hits) != hits {
		t.Fatalf("report hits %d, results saw %d", rep.Cache.Hits, hits)
	}
	if rep.FleetIOPS <= 0 || rep.ClockSec <= 0 {
		t.Fatalf("fleet perf not measured: IOPS %v clock %v", rep.FleetIOPS, rep.ClockSec)
	}
	var hostWrites int
	for _, d := range rep.PerDrive {
		hostWrites += d.HostWrites
	}
	if int64(hostWrites) != rep.Cache.Writebacks {
		t.Fatalf("drives saw %d writes, cache wrote back %d", hostWrites, rep.Cache.Writebacks)
	}
}

// TestArrayStriping pins the address math: with StripePages=1,
// consecutive volume pages land on consecutive drives.
func TestArrayStriping(t *testing.T) {
	cfg := testConfig(4)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for p := 0; p < 8; p++ {
		if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: pagePattern(a, p, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range mustDrain(t, a) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Drive != r.Page%4 {
			t.Fatalf("page %d served by drive %d, want %d", r.Page, r.Drive, r.Page%4)
		}
	}

	wide := testConfig(2)
	wide.StripePages = 4
	w, err := New(wide)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for _, tc := range []struct{ page, drive int }{
		{0, 0}, {3, 0}, {4, 1}, {7, 1}, {8, 0}, {12, 1},
	} {
		if drv, _ := w.locate(tc.page); drv != tc.drive {
			t.Fatalf("stripe 4: page %d on drive %d, want %d", tc.page, drv, tc.drive)
		}
	}
}

// TestWriteBackConsistency pins write-back ordering against the FTL:
// overwrites coalesce in the buffer, Flush lands the newest version in
// first-dirtied order, and once clean evictions push the pages out of
// the cache, the drives serve the newest data back.
func TestWriteBackConsistency(t *testing.T) {
	cfg := testConfig(2)
	cfg.Cache = CacheConfig{Pages: 32}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	const n = 12
	submit := func(p, version int) {
		t.Helper()
		if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: pagePattern(a, p, version)}); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < n; p++ {
		submit(p, 0)
	}
	// Overwrite half while still buffered: the buffer must coalesce.
	for p := 0; p < n; p += 2 {
		submit(p, 1)
	}
	mustDrain(t, a)
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	rep := a.Report()
	if rep.Cache.Writebacks != n {
		t.Fatalf("writebacks %d, want %d (overwrites must coalesce)", rep.Cache.Writebacks, n)
	}
	var hostWrites int
	for _, d := range rep.PerDrive {
		hostWrites += d.HostWrites
	}
	if hostWrites != n {
		t.Fatalf("drives saw %d writes, want %d", hostWrites, n)
	}

	// Evict the targets with clean fills of other pages, then read the
	// targets from the drives and require the newest versions.
	for p := 100; p < 100+2*int(32); p++ {
		if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: pagePattern(a, p, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	mustDrain(t, a)
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < n; p++ {
		if err := a.Submit(Op{Tenant: "default", Page: p}); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range mustDrain(t, a) {
		if r.Err != nil {
			t.Fatalf("read page %d: %v", r.Page, r.Err)
		}
		version := 0
		if r.Page%2 == 0 {
			version = 1
		}
		if !bytes.Equal(r.Data, pagePattern(a, r.Page, version)) {
			t.Fatalf("page %d served stale version after write-back", r.Page)
		}
	}
}

// TestQoSFairness pins the token-rate ceiling: a greedy tenant's
// completed ops can never exceed its burst plus rate × modelled time,
// and an unthrottled tenant is never throttled alongside it.
func TestQoSFairness(t *testing.T) {
	cfg := testConfig(2)
	cfg.Tenants = []TenantConfig{
		{Name: "greedy", Rate: 50, Burst: 5},
		{Name: "latency"},
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	const greedyOps, latencyOps = 60, 30
	for i := 0; i < greedyOps; i++ {
		if err := a.Submit(Op{Tenant: "greedy", Write: true, Page: i, Data: pagePattern(a, i, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < latencyOps; i++ {
		p := 128 + i
		if err := a.Submit(Op{Tenant: "latency", Write: true, Page: p, Data: pagePattern(a, p, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	res := mustDrain(t, a)
	if len(res) != greedyOps+latencyOps {
		t.Fatalf("%d completions, want %d", len(res), greedyOps+latencyOps)
	}
	rep := a.Report()
	var greedy, latency TenantStats
	for _, ts := range rep.Tenants {
		switch ts.Name {
		case "greedy":
			greedy = ts
		case "latency":
			latency = ts
		}
	}
	// Token conservation: every op spent a token; tokens available =
	// burst + rate × modelled time.
	ceiling := 5 + 50*rep.ClockSec
	if float64(greedy.Writes) > ceiling+1e-9 {
		t.Fatalf("greedy tenant did %d ops with a ceiling of %.2f (clock %.3fs)",
			greedy.Writes, ceiling, rep.ClockSec)
	}
	if greedy.Throttled == 0 {
		t.Fatal("greedy tenant was never throttled")
	}
	if latency.Throttled != 0 {
		t.Fatalf("unthrottled tenant throttled %d times", latency.Throttled)
	}
	if latency.Writes != latencyOps {
		t.Fatalf("latency tenant completed %d/%d", latency.Writes, latencyOps)
	}
	if rep.QoSStalls == 0 {
		t.Fatal("scheduler never stalled: the rate limit did no work")
	}
}

// fleetWorkload drives a 16-drive array through a deterministic mixed
// workload and returns the report JSON plus a digest of the completion
// stream.
func fleetWorkload(t *testing.T, drives int) ([]byte, string) {
	t.Helper()
	cfg := testConfig(drives)
	cfg.Seed = 900913
	cfg.Cache = CacheConfig{Pages: 48, Policy: "clock"}
	cfg.Tenants = []TenantConfig{
		{Name: "scan", Rate: 4000, Burst: 16},
		{Name: "oltp"},
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// A fixed LCG generates the op stream: no wall-clock, no math/rand.
	state := uint64(0xabcdef12345)
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(mod))
	}
	var digest string
	for round := 0; round < 6; round++ {
		for i := 0; i < 60; i++ {
			tenant := "scan"
			if i%3 == 0 {
				tenant = "oltp"
			}
			page := next(a.VolumePages())
			if next(10) < 6 {
				if err := a.Submit(Op{Tenant: tenant, Write: true, Page: page, Data: pagePattern(a, page, round)}); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := a.Submit(Op{Tenant: tenant, Page: page}); err != nil {
					t.Fatal(err)
				}
			}
		}
		res, err := a.Drain()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			errBit := 0
			if r.Err != nil {
				errBit = 1
			}
			digest += fmt.Sprintf("%s/%v/%d/%d/%v/%d/%d;", r.Tenant, r.Write, r.Page, r.Drive, r.CacheHit, r.Latency, errBit)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	js, err := a.Report().JSON()
	if err != nil {
		t.Fatal(err)
	}
	return js, digest
}

// TestFleetDeterminism is the acceptance pin: the same seed and
// submission sequence over 16 concurrently-executing drives produces a
// byte-identical fleet report and an identical completion stream.
func TestFleetDeterminism(t *testing.T) {
	js1, digest1 := fleetWorkload(t, 16)
	js2, digest2 := fleetWorkload(t, 16)
	if digest1 != digest2 {
		t.Fatal("completion streams diverged between identical runs")
	}
	if !bytes.Equal(js1, js2) {
		t.Fatalf("fleet reports diverged between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", js1, js2)
	}
}

// BenchmarkFleetIOPS measures fleet throughput scaling across drive
// counts; CI archives its output as BENCH_array.json.
func BenchmarkFleetIOPS(b *testing.B) {
	for _, drives := range []int{1, 4, 16} {
		// '=' keeps the drive count out of benchjson's GOMAXPROCS-suffix
		// trimming (a trailing -N would be stripped from the name).
		b.Run(fmt.Sprintf("drives=%d", drives), func(b *testing.B) {
			cfg := testConfig(drives)
			cfg.Cache = CacheConfig{Pages: 64}
			a, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer a.Close()
			// Warm fill: one write per cached page plus a striped tail.
			warm := 96
			if warm > a.VolumePages() {
				warm = a.VolumePages()
			}
			data := make([]byte, a.PageBytes())
			for p := 0; p < warm; p++ {
				if err := a.Submit(Op{Tenant: "default", Write: true, Page: p, Data: data}); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := a.Drain(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Three hot reads (a set sized to the cache) per cold
				// sweep read, so the archived hit rate is meaningful even
				// at -benchtime 1x.
				page := warm - 64 + (i*13)%64
				if i%4 == 3 {
					page = (i * 7) % warm
				}
				if err := a.Submit(Op{Tenant: "default", Page: page}); err != nil {
					b.Fatal(err)
				}
				if i%64 == 63 {
					if _, err := a.Drain(); err != nil {
						b.Fatal(err)
					}
				}
			}
			if _, err := a.Drain(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			rep := a.Report()
			b.ReportMetric(rep.FleetIOPS, "fleet_iops")
			b.ReportMetric(rep.Cache.HitRate(), "cache_hit_rate")
		})
	}
}
