package array

// Health is one array member's position in the drive health state
// machine:
//
//	healthy → suspect → degraded → dead → rebuilding → restored
//
// The first three are in-service states driven by the drive's observed
// UBER climate against FaultPlan.UBERCeiling (¼ and ½ of the ceiling
// mark suspect and degraded; crossing it declares the drive dead).
// Fail-stop faults jump straight to dead. A dead slot with a hot spare
// available transitions to rebuilding in the same round; when the
// background rebuild converges the slot is restored and the spare is a
// full member. Transitions are strictly forward and every one is
// recorded with its round and fleet clock in the report.
type Health int

const (
	Healthy Health = iota
	Suspect
	Degraded
	Dead
	Rebuilding
	Restored
)

// String renders the state for reports and errors.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Degraded:
		return "degraded"
	case Dead:
		return "dead"
	case Rebuilding:
		return "rebuilding"
	case Restored:
		return "restored"
	}
	return "unknown"
}

// HealthTransition is one recorded state change of an array slot.
type HealthTransition struct {
	From     string  `json:"from"`
	To       string  `json:"to"`
	Round    int64   `json:"round"`
	ClockSec float64 `json:"clock_seconds"`
}

// slot is one logical member of the array: the currently attached
// physical drive stack (nil while dead with no spare), its health
// history, the fault schedule targeting it, and the degraded-mode
// counters. Slots are confined to the front-end goroutine.
type slot struct {
	id int
	d  *drive

	state       Health
	transitions []HealthTransition
	fault       DriveFault
	hasFault    bool

	// final is the dead stack's last telemetry snapshot, folded into the
	// report until (and after) a spare replaces it.
	final *DriveReport

	// Degraded-mode accounting.
	degradedReads int64
	reconBytes    int64
	lostWrites    int64
	wbErrors      int64 // failed cache write-backs (no result slot)

	// stale marks drive-local pages whose last mirror-copy write failed:
	// the member holds an old version its partner has superseded, so
	// reads must not be served from it until a later write lands.
	stale map[int]bool

	// Rebuild state: rebuilt[lpa] means the attached spare already holds
	// the current content for that drive-local page; cursor is the sweep
	// position. Non-nil only while rebuilding.
	rebuilt []bool
	cursor  int
	rb      *RebuildReport
}

// transition moves the slot forward and records the step.
func (s *slot) transition(to Health, round int64, clock float64) {
	s.transitions = append(s.transitions, HealthTransition{
		From: s.state.String(), To: to.String(), Round: round, ClockSec: clock,
	})
	s.state = to
}

// inService reports whether the slot's member is executing ops at all
// (dead slots are not; a rebuilding slot serves through its spare for
// pages already rebuilt).
func (s *slot) inService() bool {
	return s.state != Dead && s.d != nil
}

// readable reports whether a read of the given drive-local page can be
// served directly from this slot's member.
func (s *slot) readable(lpa int) bool {
	if !s.inService() {
		return false
	}
	if s.state == Rebuilding && !s.rebuilt[lpa] {
		return false
	}
	if s.stale != nil && s.stale[lpa] {
		return false
	}
	return true
}

// writable reports whether a write of the given drive-local page can
// land on this slot's member (rebuilding slots absorb writes directly
// onto the spare, which marks the page rebuilt).
func (s *slot) writable() bool { return s.inService() }

// markStale records a mirror-divergent page; markFresh clears it after
// a successful write.
func (s *slot) markStale(lpa int) {
	if s.stale == nil {
		s.stale = map[int]bool{}
	}
	s.stale[lpa] = true
}

func (s *slot) markFresh(lpa int) {
	if s.stale != nil {
		delete(s.stale, lpa)
	}
	if s.state == Rebuilding && !s.rebuilt[lpa] {
		s.rebuilt[lpa] = true
	}
}
