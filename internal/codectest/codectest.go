// Package codectest is the shared conformance suite of the ecc.Codec
// interface: one set of table-driven behavioural checks that every
// codec family — the adaptive BCH block and the soft-decision LDPC
// engine alike — must pass behind the same seam the controller programs
// against. The suite pins the contracts the rest of the stack leans on:
// level geometry (monotone parity, exact spare-to-level inversion),
// encode/decode round trips across the error-count matrix
// {0, 1, cap/2, cap, cap+1}, rollback on failure, steady-state
// allocation freedom and descriptor sanity.
package codectest

import (
	"bytes"
	"fmt"
	"testing"

	"xlnand/internal/ecc"
	"xlnand/internal/stats"
)

// Options tunes family-specific expectations.
type Options struct {
	// StrictCapPlusOne requires cap+1 errors to FAIL decoding (true for
	// bounded-distance codes like BCH, whose capability is algebraic).
	// Iterative families may repair slightly past their conservative
	// calibrated cap: for them cap+1 must either fail with rollback or
	// succeed with the exact original data — never silent corruption.
	StrictCapPlusOne bool
	// Levels lists the capability levels to exercise (nil: min, one
	// middle, max).
	Levels []int
}

// Run drives the full conformance suite against one codec.
func Run(t *testing.T, c ecc.Codec, opt Options) {
	t.Helper()
	levels := opt.Levels
	if levels == nil {
		levels = []int{c.MinLevel(), (c.MinLevel() + c.MaxLevel()) / 2, c.MaxLevel()}
	}
	t.Run("geometry", func(t *testing.T) { geometry(t, c) })
	for _, lvl := range levels {
		lvl := lvl
		t.Run(levelName(c, lvl), func(t *testing.T) {
			matrix(t, c, lvl, opt)
			rollback(t, c, lvl)
			descriptors(t, c, lvl)
		})
	}
	t.Run("allocs", func(t *testing.T) { allocs(t, c) })
	t.Run("required-level", func(t *testing.T) { requiredLevel(t, c) })
}

func levelName(c ecc.Codec, lvl int) string {
	return fmt.Sprintf("%s-level-%d", c.Family(), lvl)
}

// geometry pins the spare-footprint contract: ParityBytes strictly
// monotone in level and LevelForSpare its exact inverse; clamping
// saturates at the range ends.
func geometry(t *testing.T, c ecc.Codec) {
	t.Helper()
	prev := -1
	for lvl := c.MinLevel(); lvl <= c.MaxLevel(); lvl++ {
		pb, err := c.ParityBytes(lvl)
		if err != nil {
			t.Fatalf("ParityBytes(%d): %v", lvl, err)
		}
		if pb <= prev {
			t.Fatalf("parity bytes not strictly ascending at level %d (%d after %d)", lvl, pb, prev)
		}
		prev = pb
		got, err := c.LevelForSpare(pb)
		if err != nil || got != lvl {
			t.Fatalf("LevelForSpare(%d) = %d, %v; want level %d", pb, got, err, lvl)
		}
		n, err := c.CodewordBits(lvl)
		if err != nil || n != c.DataBits()+pb*8 {
			t.Fatalf("CodewordBits(%d) = %d, %v; want %d", lvl, n, err, c.DataBits()+pb*8)
		}
		if cap := c.CorrectionCap(lvl); cap <= 0 {
			t.Fatalf("level %d: non-positive correction cap %d", lvl, cap)
		}
	}
	if got := c.ClampLevel(c.MinLevel() - 100); got != c.MinLevel() {
		t.Fatalf("ClampLevel below range = %d", got)
	}
	if got := c.ClampLevel(c.MaxLevel() + 100); got != c.MaxLevel() {
		t.Fatalf("ClampLevel above range = %d", got)
	}
	if _, err := c.LevelForSpare(prev + 1); err == nil {
		t.Fatal("unknown spare size accepted")
	}
}

// codeword builds a seeded random message and its encoded codeword.
func codeword(t *testing.T, c ecc.Codec, lvl int, seed uint64) (cw []byte) {
	t.Helper()
	rng := stats.NewRNG(seed)
	msg := make([]byte, c.DataBits()/8)
	for i := range msg {
		msg[i] = byte(rng.Intn(256))
	}
	pb, err := c.ParityBytes(lvl)
	if err != nil {
		t.Fatal(err)
	}
	cw = make([]byte, len(msg)+pb)
	copy(cw, msg)
	if err := c.EncodeInto(lvl, cw[len(msg):], msg); err != nil {
		t.Fatalf("EncodeInto(%d): %v", lvl, err)
	}
	return cw
}

// matrix drives the error-count grid {0, 1, cap/2, cap, cap+1}.
func matrix(t *testing.T, c ecc.Codec, lvl int, opt Options) {
	t.Helper()
	cap := c.CorrectionCap(lvl)
	for _, nerr := range []int{0, 1, cap / 2, cap, cap + 1} {
		rng := stats.NewRNG(uint64(5000 + lvl*977 + nerr))
		cw := codeword(t, c, lvl, uint64(5000+lvl*977+nerr))
		clean := append([]byte(nil), cw...)
		for _, p := range rng.SampleK(len(cw)*8, nerr) {
			cw[p/8] ^= 1 << uint(7-p%8)
		}
		dirty := append([]byte(nil), cw...)
		n, err := c.Decode(lvl, cw)
		switch {
		case nerr <= cap:
			if err != nil {
				t.Fatalf("level %d: decode failed at %d <= cap %d: %v", lvl, nerr, cap, err)
			}
			if n != nerr || !bytes.Equal(cw, clean) {
				t.Fatalf("level %d nerr %d: corrected %d, restored=%v", lvl, nerr, n, bytes.Equal(cw, clean))
			}
		case err != nil:
			if !bytes.Equal(cw, dirty) {
				t.Fatalf("level %d nerr %d: failed decode modified the codeword", lvl, nerr)
			}
		default:
			if opt.StrictCapPlusOne {
				t.Fatalf("level %d: bounded-distance family decoded cap+1 = %d errors", lvl, nerr)
			}
			// Iterative family repairing past its conservative cap: must
			// be the exact original, never a miscorrection.
			if !bytes.Equal(cw, clean) {
				t.Fatalf("level %d nerr %d: decode succeeded with wrong data", lvl, nerr)
			}
		}
	}
}

// rollback floods the decoder far past any capability and checks the
// input is untouched on failure.
func rollback(t *testing.T, c ecc.Codec, lvl int) {
	t.Helper()
	cap := c.CorrectionCap(lvl)
	rng := stats.NewRNG(uint64(31000 + lvl))
	cw := codeword(t, c, lvl, uint64(31000+lvl))
	for _, p := range rng.SampleK(len(cw)*8, 6*cap) {
		cw[p/8] ^= 1 << uint(7-p%8)
	}
	dirty := append([]byte(nil), cw...)
	if _, err := c.Decode(lvl, cw); err == nil {
		// Astronomically unlikely for either family at 6x cap — and if
		// it does decode, it must be exact, which 6x cap cannot be.
		t.Fatalf("level %d: decode of %d errors claimed success", lvl, 6*cap)
	}
	if !bytes.Equal(cw, dirty) {
		t.Fatalf("level %d: failed decode modified the codeword", lvl)
	}
}

// descriptors sanity-checks the latency and reliability surfaces.
func descriptors(t *testing.T, c ecc.Codec, lvl int) {
	t.Helper()
	if enc := c.EncodeLatency(lvl); enc <= 0 {
		t.Fatalf("level %d: encode latency %v", lvl, enc)
	}
	clean, dirty := c.DecodeLatency(lvl, true), c.DecodeLatency(lvl, false)
	if clean <= 0 || dirty <= clean {
		t.Fatalf("level %d: decode latencies clean=%v dirty=%v", lvl, clean, dirty)
	}
	if c.SupportsSoft() {
		if soft := c.SoftDecodeLatency(lvl); soft <= dirty {
			t.Fatalf("level %d: soft decode latency %v not above dirty %v", lvl, soft, dirty)
		}
	} else {
		cw := codeword(t, c, lvl, 1)
		llr := make([]int8, len(cw)*8)
		if _, err := c.DecodeSoft(lvl, cw, llr); err == nil {
			t.Fatalf("level %d: soft decode succeeded on a family without a soft path", lvl)
		}
	}
	// The projected UBER must fall as the level rises at fixed RBER.
	if c.MaxLevel() > c.MinLevel() {
		lo := c.ProjectedUBER(c.MinLevel(), 1e-4)
		hi := c.ProjectedUBER(c.MaxLevel(), 1e-4)
		if hi >= lo {
			t.Fatalf("ProjectedUBER not improving with level: min %.3e max %.3e", lo, hi)
		}
	}
}

// allocs pins the steady-state allocation freedom of the hot paths on
// the strongest level.
func allocs(t *testing.T, c ecc.Codec) {
	t.Helper()
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	lvl := c.MaxLevel()
	cap := c.CorrectionCap(lvl)
	rng := stats.NewRNG(61000)
	cw := codeword(t, c, lvl, 61000)
	msg := append([]byte(nil), cw[:c.DataBits()/8]...)
	pb, _ := c.ParityBytes(lvl)
	parity := make([]byte, pb)
	for _, p := range rng.SampleK(len(cw)*8, cap/2) {
		cw[p/8] ^= 1 << uint(7-p%8)
	}
	dirty := append([]byte(nil), cw...)
	if _, err := c.Decode(lvl, cw); err != nil {
		t.Fatal(err) // warm tables and scratch pools outside the pin
	}
	if a := testing.AllocsPerRun(10, func() {
		copy(cw, dirty)
		if _, err := c.Decode(lvl, cw); err != nil {
			t.Fatal(err)
		}
	}); a > 0 {
		t.Fatalf("steady-state decode allocates %.1f objects/op, want 0", a)
	}
	if a := testing.AllocsPerRun(10, func() {
		if err := c.EncodeInto(lvl, parity, msg); err != nil {
			t.Fatal(err)
		}
	}); a > 0 {
		t.Fatalf("steady-state EncodeInto allocates %.1f objects/op, want 0", a)
	}
}

// requiredLevel checks the level solver: monotone in RBER, meeting the
// target at the returned level, erroring when nothing can.
func requiredLevel(t *testing.T, c ecc.Codec) {
	t.Helper()
	const target = 1e-11
	prev := c.MinLevel()
	for _, rber := range []float64{1e-7, 1e-6, 1e-5, 1e-4, 3e-4} {
		lvl, err := c.RequiredLevel(rber, target)
		if err != nil {
			t.Fatalf("RequiredLevel(%g): %v", rber, err)
		}
		if lvl < prev {
			t.Fatalf("RequiredLevel not monotone: %d after %d at %g", lvl, prev, rber)
		}
		prev = lvl
		if u := c.ProjectedUBER(lvl, rber); u > target {
			t.Fatalf("level %d at RBER %g projects %.3e above target", lvl, rber, u)
		}
	}
	if _, err := c.RequiredLevel(0.2, target); err == nil {
		t.Fatal("unreachable target accepted")
	}
}
