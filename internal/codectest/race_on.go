//go:build race

package codectest

// raceEnabled reports whether the race detector is compiled in (alloc
// pins are skipped under its instrumentation).
const raceEnabled = true
