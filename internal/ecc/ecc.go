// Package ecc defines the family-generic codec surface the memory
// controller programs against. The paper's architecture hard-wires one
// adaptive BCH block; modern controllers treat the ECC capability knob as
// a trade-off surface spanning code families — hard-decision algebraic
// codes (BCH) for the low-latency common case and soft-decision LDPC as
// the recovery endgame (Cai et al., arXiv:1805.02819; Luo,
// arXiv:1808.04016). This package is the seam: a Codec is an adaptive
// encoder/decoder whose correction strength is selected by an abstract
// *level* — the BCH capability t, or the LDPC rate index — and whose
// spare-area footprint, latency and reliability descriptors the
// controller, dispatcher and reliability manager consume without knowing
// the family.
//
// Levels share one contract across families: higher level means more
// parity and more correction; ParityBytes is strictly monotone in level,
// so the write-time level is always recoverable from the stored spare
// length (LevelForSpare) — reconfiguring a controller between write and
// read never corrupts old pages, exactly as the BCH geometry r = m·t
// already guaranteed.
package ecc

import (
	"errors"
	"time"
)

// Family identifies a codec family.
type Family int

const (
	// FamilyBCH is the paper's adaptive hard-decision BCH codec
	// (level = correction capability t).
	FamilyBCH Family = iota
	// FamilyLDPC is the rate-compatible quasi-cyclic LDPC codec with
	// normalized min-sum decoding (level = rate index; higher level means
	// more parity, i.e. a lower code rate).
	FamilyLDPC
)

// String implements fmt.Stringer.
func (f Family) String() string {
	switch f {
	case FamilyBCH:
		return "bch"
	case FamilyLDPC:
		return "ldpc"
	default:
		return "family?"
	}
}

// ErrNoSoftPath is returned by DecodeSoft on codecs without a
// soft-decision decoder (the controller then never schedules the
// soft-sense rung).
var ErrNoSoftPath = errors.New("ecc: codec has no soft-decision decode path")

// Codec is the family-generic adaptive codec. Implementations must be
// safe for concurrent use (one hardware codec is shared by every die)
// and allocation-free on the steady-state EncodeInto/Decode/DecodeSoft
// paths.
type Codec interface {
	// Family identifies the code family.
	Family() Family
	// DataBits is the protected message length k per codeword.
	DataBits() int

	// MinLevel/MaxLevel bound the capability range; ClampLevel clips a
	// requested level into it (the worst-case-instantiated hardware
	// refuses nothing, it saturates).
	MinLevel() int
	MaxLevel() int
	ClampLevel(level int) int

	// ParityBytes is the spare-area footprint of a codeword at level.
	// It is strictly monotone in level.
	ParityBytes(level int) (int, error)
	// LevelForSpare recovers the write-time level from a stored parity
	// size; it errors when the spare length maps to no level.
	LevelForSpare(spareBytes int) (int, error)
	// CodewordBits is the total codeword length n at level.
	CodewordBits(level int) (int, error)
	// CorrectionCap is the number of raw bit errors per codeword the
	// hard-decision decode reliably corrects at level — exact for
	// bounded-distance codes (BCH: t), a calibrated conservative bound
	// for iterative decoders (LDPC). Policies and conformance tests key
	// on it.
	CorrectionCap(level int) int

	// EncodeInto writes the parity block for msg at level into parity
	// (exactly ParityBytes(level) bytes) without allocating.
	EncodeInto(level int, parity, msg []byte) error
	// Decode hard-decodes codeword (msg ++ parity) in place, returning
	// the number of corrected bit errors. On failure the codeword is
	// left unmodified (rollback contract).
	Decode(level int, codeword []byte) (int, error)
	// DecodeSoft decodes with per-bit confidence: llr holds one signed
	// log-likelihood per codeword bit (positive = bit 0, magnitude =
	// confidence; sign must agree with the hard decisions in codeword).
	// Same rollback contract as Decode. Codecs without a soft path
	// return ErrNoSoftPath.
	DecodeSoft(level int, codeword []byte, llr []int8) (int, error)
	// SupportsSoft reports whether DecodeSoft is implemented.
	SupportsSoft() bool

	// RequiredLevel returns the minimum level meeting the UBER target at
	// the raw bit error rate, or an error when even MaxLevel misses it.
	RequiredLevel(rber, targetUBER float64) (int, error)
	// ProjectedUBER is the modelled post-correction error rate of the
	// hard-decision decode at (level, rber).
	ProjectedUBER(level int, rber float64) float64

	// Latency descriptors at the codec's modelled micro-architecture.
	EncodeLatency(level int) time.Duration
	DecodeLatency(level int, clean bool) time.Duration
	// SoftDecodeLatency is the soft-input decode cost (0 when
	// unsupported).
	SoftDecodeLatency(level int) time.Duration

	// Warm pre-builds per-level state so first use in a latency-
	// sensitive path needs no construction work.
	Warm(level int) error
}

// MeasuredLatency is an optional Codec extension for engines whose
// decode cost depends on the observed error weight. Implementations
// calibrate against the decoder itself (e.g. measured min-sum
// iterations-to-converge per level × weight) and the controller books
// the returned duration on the codec calendar instead of the flat
// DecodeLatency estimate. nErr is the corrected bit count of a
// successful decode; implementations must make nErr == 0 agree with
// DecodeLatency(level, true) so clean reads price identically on both
// paths.
type MeasuredLatency interface {
	MeasuredDecodeLatency(level, nErr int) time.Duration
}
