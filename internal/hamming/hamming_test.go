package hamming

import (
	"bytes"
	"errors"
	"testing"

	"xlnand/internal/stats"
)

func mkCode(t *testing.T, bytes int) *Code {
	t.Helper()
	c, err := New(bytes)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("zero-size block accepted")
	}
	if _, err := New(-4); err == nil {
		t.Fatal("negative block accepted")
	}
}

func TestParityBitsSized(t *testing.T) {
	// 512 B = 4096 bits: r = 13 (2^13 = 8192 >= 4096+13+1), +1 = 14.
	c := mkCode(t, 512)
	if c.ParityBits() != 14 {
		t.Fatalf("512 B parity bits = %d, want 14", c.ParityBits())
	}
	if c.ParityBytes() != 2 {
		t.Fatalf("512 B parity bytes = %d, want 2", c.ParityBytes())
	}
	// 1 byte = 8 bits: r = 4, +1 = 5.
	if mkCode(t, 1).ParityBits() != 5 {
		t.Fatal("1 B parity sizing wrong")
	}
}

func TestCleanRoundTrip(t *testing.T) {
	c := mkCode(t, 512)
	r := stats.NewRNG(1)
	for trial := 0; trial < 30; trial++ {
		data := make([]byte, 512)
		for i := range data {
			data[i] = byte(r.Intn(256))
		}
		check, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		n, err := c.Decode(data, check)
		if err != nil || n != 0 {
			t.Fatalf("clean decode: n=%d err=%v", n, err)
		}
	}
}

func TestEverySingleBitErrorCorrected(t *testing.T) {
	// Exhaustive over a small block: every possible single data-bit
	// error must be corrected exactly.
	c := mkCode(t, 8)
	r := stats.NewRNG(2)
	data := make([]byte, 8)
	for i := range data {
		data[i] = byte(r.Intn(256))
	}
	check, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < 64; pos++ {
		dirty := append([]byte(nil), data...)
		flip(dirty, pos)
		n, err := c.Decode(dirty, check)
		if err != nil {
			t.Fatalf("bit %d: %v", pos, err)
		}
		if n != 1 || !bytes.Equal(dirty, data) {
			t.Fatalf("bit %d: not corrected (n=%d)", pos, n)
		}
	}
}

func TestCheckWordErrorTolerated(t *testing.T) {
	// An error in the stored parity itself must not corrupt the payload.
	c := mkCode(t, 64)
	r := stats.NewRNG(3)
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(r.Intn(256))
	}
	check, _ := c.Encode(data)
	want := append([]byte(nil), data...)
	for j := 0; j < c.ParityBits(); j++ {
		dirty := append([]byte(nil), data...)
		n, err := c.Decode(dirty, check^(1<<uint(j)))
		if err != nil {
			t.Fatalf("parity bit %d: %v", j, err)
		}
		if n != 1 || !bytes.Equal(dirty, want) {
			t.Fatalf("parity bit %d: payload disturbed", j)
		}
	}
}

func TestDoubleErrorsDetectedNotMiscorrected(t *testing.T) {
	c := mkCode(t, 64)
	r := stats.NewRNG(4)
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(r.Intn(256))
	}
	check, _ := c.Encode(data)
	for trial := 0; trial < 300; trial++ {
		dirty := append([]byte(nil), data...)
		pos := r.SampleK(512, 2)
		flip(dirty, pos[0])
		flip(dirty, pos[1])
		n, err := c.Decode(dirty, check)
		if !errors.Is(err, ErrDoubleError) {
			t.Fatalf("double error (bits %v) not detected: n=%d err=%v", pos, n, err)
		}
	}
}

func TestDecodeRejectsWrongSize(t *testing.T) {
	c := mkCode(t, 64)
	if _, err := c.Decode(make([]byte, 8), 0); err == nil {
		t.Fatal("wrong block size accepted")
	}
	if _, err := c.Encode(make([]byte, 8)); err == nil {
		t.Fatal("wrong block size accepted by encoder")
	}
}

func TestAllZeroAndAllOnesBlocks(t *testing.T) {
	c := mkCode(t, 32)
	zero := make([]byte, 32)
	ones := bytes.Repeat([]byte{0xff}, 32)
	for _, data := range [][]byte{zero, ones} {
		check, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		cp := append([]byte(nil), data...)
		if n, err := c.Decode(cp, check); err != nil || n != 0 {
			t.Fatalf("degenerate block: n=%d err=%v", n, err)
		}
		flip(cp, 100)
		if n, err := c.Decode(cp, check); err != nil || n != 1 {
			t.Fatalf("degenerate block single error: n=%d err=%v", n, err)
		}
		if !bytes.Equal(cp, data) {
			t.Fatal("degenerate block not restored")
		}
	}
}
