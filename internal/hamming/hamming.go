// Package hamming implements a SEC-DED (single-error-correcting,
// double-error-detecting) extended Hamming code over configurable block
// sizes — the low-end ECC family the paper cites for "relatively small
// flash memories that hold non-critical, error-tolerant data" (§1,
// derivatives of the Hamming code [2]). It is the weakest baseline of the
// ECC-family comparison experiment.
package hamming

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrDoubleError reports a detected-but-uncorrectable double bit error.
var ErrDoubleError = errors.New("hamming: double bit error detected")

// Code is a SEC-DED code protecting DataBytes of payload with parity
// bits stored separately (r Hamming bits + 1 overall parity).
type Code struct {
	DataBytes int
	r         int // Hamming parity bits: 2^r >= k + r + 1
}

// New builds a SEC-DED code for the given payload size.
func New(dataBytes int) (*Code, error) {
	if dataBytes <= 0 {
		return nil, fmt.Errorf("hamming: non-positive block size %d", dataBytes)
	}
	k := dataBytes * 8
	r := 1
	for (1 << uint(r)) < k+r+1 {
		r++
	}
	return &Code{DataBytes: dataBytes, r: r}, nil
}

// ParityBits returns the total check bits (Hamming r + overall parity).
func (c *Code) ParityBits() int { return c.r + 1 }

// ParityBytes returns the spare bytes consumed per block.
func (c *Code) ParityBytes() int { return (c.ParityBits() + 7) / 8 }

// bit reads data bit i (MSB-first within bytes).
func bit(data []byte, i int) uint32 {
	return uint32(data[i/8]>>(7-uint(i%8))) & 1
}

// flip toggles data bit i.
func flip(data []byte, i int) {
	data[i/8] ^= 1 << (7 - uint(i%8))
}

// syndromeOf computes the Hamming syndrome and overall parity of the
// payload combined with the given check word. Data bits occupy the
// non-power-of-two positions of the conceptual codeword, in order.
func (c *Code) syndromeOf(data []byte, check uint32) (syn uint32, overall uint32) {
	k := c.DataBytes * 8
	pos := 1 // codeword positions start at 1; powers of two are parity
	for i := 0; i < k; i++ {
		for pos&(pos-1) == 0 { // skip parity positions
			pos++
		}
		if bit(data, i) == 1 {
			syn ^= uint32(pos)
			overall ^= 1
		}
		pos++
	}
	// Fold in the stored parity bits: Hamming bit j sits at position 2^j.
	for j := 0; j < c.r; j++ {
		if check>>uint(j)&1 == 1 {
			syn ^= 1 << uint(j)
			overall ^= 1
		}
	}
	overall ^= check >> uint(c.r) & 1 // stored overall parity
	return syn, overall
}

// Encode returns the check word for a payload block: bits 0..r-1 are the
// Hamming parity bits, bit r the overall parity.
func (c *Code) Encode(data []byte) (uint32, error) {
	if len(data) != c.DataBytes {
		return 0, fmt.Errorf("hamming: block is %d bytes, want %d", len(data), c.DataBytes)
	}
	// Choose check bits so that the full-codeword syndrome and overall
	// parity vanish: compute them over data alone, then set parity bits
	// to cancel.
	syn, overall := c.syndromeOf(data, 0)
	check := syn // parity bit j = syndrome bit j cancels it
	// Recompute overall parity including the chosen Hamming bits.
	ones := uint32(bits.OnesCount32(check)) & 1
	check |= ((overall ^ ones) & 1) << uint(c.r)
	return check, nil
}

// Decode verifies and repairs a payload block in place given its stored
// check word. It returns the number of corrected bit errors (0 or 1);
// double errors return ErrDoubleError with the data untouched.
func (c *Code) Decode(data []byte, check uint32) (int, error) {
	if len(data) != c.DataBytes {
		return 0, fmt.Errorf("hamming: block is %d bytes, want %d", len(data), c.DataBytes)
	}
	syn, overall := c.syndromeOf(data, check)
	switch {
	case syn == 0 && overall == 0:
		return 0, nil
	case overall == 1:
		// Single error: in a parity position (syn is a power of two or
		// zero -> stored check corrupted, data fine) or in a data bit.
		if syn == 0 || syn&(syn-1) == 0 {
			return 1, nil // check-word error; payload intact
		}
		idx, err := c.dataIndexOfPosition(int(syn))
		if err != nil {
			return 0, ErrDoubleError // syndrome points outside the code
		}
		flip(data, idx)
		return 1, nil
	default:
		// Nonzero syndrome with even overall parity: double error.
		return 0, ErrDoubleError
	}
}

// dataIndexOfPosition maps a codeword position to the payload bit index.
func (c *Code) dataIndexOfPosition(target int) (int, error) {
	if target < 3 {
		return 0, fmt.Errorf("hamming: position %d is a parity slot", target)
	}
	k := c.DataBytes * 8
	idx := 0
	pos := 1
	for i := 0; i < k; i++ {
		for pos&(pos-1) == 0 {
			pos++
		}
		if pos == target {
			return idx, nil
		}
		idx++
		pos++
	}
	return 0, fmt.Errorf("hamming: position %d beyond codeword", target)
}
