// Package lifetime drives the full cross-layer stack — submission queue,
// multi-die dispatcher, FTL, controller, adaptive BCH codec and aging
// NAND devices — from fresh silicon to end of life under a deterministic
// scenario catalog. A scenario is a seeded, phase-structured device
// biography: each phase first applies stress (P/E fast-forward, a
// retention bake, raw read-disturb aggression) and then plays host
// traffic through the FTL while the background scrubber and a cross-layer
// mode policy react to the measured error climate.
//
// Every run is bit-reproducible: all randomness flows from the scenario
// seed through explicit stats.RNG streams, FTL traffic is submitted
// synchronously (one outstanding request), and the scrubber processes
// marked blocks in sorted order. Two runs of the same scenario with the
// same seed therefore produce byte-identical LifetimeReports — which is
// what lets the engine double as the repo's end-to-end soak harness:
// invariants (no lost writes, no silent corruption, monotone wear, scrub
// heals what it claims) are checked inside the run and fail loudly with
// the reproducing seed.
package lifetime

import (
	"fmt"

	"xlnand/internal/ecc"
	"xlnand/internal/ftl"
	"xlnand/internal/obs"
	"xlnand/internal/sim"
)

// PartitionConfig declares one differentiated storage service of a
// scenario.
type PartitionConfig struct {
	Name   string
	Blocks int
	// Mode is the initial service level; a scenario Policy may retune it
	// between phases.
	Mode sim.Mode
	// WorkingSet is the number of distinct logical pages the workload
	// touches (0 means 3/4 of the partition capacity, which keeps the
	// garbage collector exercised without over-constraining it).
	WorkingSet int
}

// Phase is one segment of the device biography: stress first, then
// traffic.
type Phase struct {
	Name string

	// AgeCycles fast-forwards every block's program/erase count by this
	// many cycles before the phase's traffic (the Calibration.Age model
	// scales all wear-dependent variability from the new count).
	AgeCycles float64
	// AgeCyclesByDie, when non-nil, fast-forwards each die by its own
	// extra cycle count (index = die; missing entries age by 0) instead
	// of the uniform AgeCycles — the asymmetric-wear stress that makes
	// the per-die read-reference calibration caches diverge. Dies are
	// aged one at a time with the same stepped-refresh discipline.
	AgeCyclesByDie []float64
	// BakeHours advances the retention clock, baking every stored page.
	BakeHours float64
	// DisturbReads performs this many raw array reads (ECC bypassed) of
	// the first page of every programmed block on every die —
	// neighbouring-tenant read-disturb aggression outside the host path.
	DisturbReads int

	// Ops is the number of host operations to play.
	Ops int
	// ReadFraction in [0,1] is the probability a host op is a read.
	ReadFraction float64
}

// Scenario is one deterministic device biography.
type Scenario struct {
	Name        string
	Description string
	Seed        uint64

	Dies         int
	BlocksPerDie int

	Partitions []PartitionConfig
	Phases     []Phase

	// Scrub is the background refresh policy; ScrubEvery is the host-op
	// cadence of scrub passes (0 disables scrubbing; a pass also runs at
	// the end of every phase when enabled).
	Scrub      ftl.ScrubPolicy
	ScrubEvery int

	// WearCeiling retires blocks whose P/E count reaches it (0 disables
	// retirement).
	WearCeiling float64

	// MaxUBER is the invariant ceiling on the post-correction bit error
	// rate of the whole run (lost bits / bits read). 0 means no data
	// loss is tolerated at all.
	MaxUBER float64

	// ReadRetry sets the read-recovery ladder budget on every die.
	// CAUTION: the zero value means "controller default" (so scenario
	// literals need not spell it), NOT "no retries" — unlike
	// xlnand.WithReadRetry(0)/Request.Retries=&0, where 0 is the
	// single-shot path. Use the named sentinels: ReadRetryDefault keeps
	// the controller default, ReadRetrySingleShot (-1) disables staged
	// recovery entirely (the pre-recovery single-shot read at nominal
	// references), and a positive value allows that many re-senses at
	// shifted read references per failing read.
	ReadRetry int

	// SafetyMargin overrides the reliability manager's RBER
	// over-provisioning factor on every die (0 keeps the controller
	// default of 1.3). Lifetime scenarios use a larger margin than an
	// interactive controller would: a fast-forwarded biography compresses
	// months of gradual aging into a handful of steps, so the capability
	// chosen at a step must still cover the RBER at the next one.
	SafetyMargin float64

	// Policy, when non-nil, retunes each partition's service level at
	// the end of every phase from the measured error climate.
	Policy Policy

	// Codec selects the ECC family behind every die's controller (the
	// zero value is the paper's adaptive BCH; ecc.FamilyLDPC swaps in
	// the soft-decision LDPC codec, whose soft-sense rung unlocks once
	// ReadRetry extends past the device's hard reference ladder).
	Codec ecc.Family

	// Env overrides the analytic environment (nil uses sim.DefaultEnv).
	Env *sim.Env

	// Trace, when non-nil, is the trace process this drive's engine
	// annotates: the dispatcher registers its bus/codec/die threads on
	// it, the FTL its maintenance thread, and the phase loop emits one
	// span per biography phase on the dispatcher's virtual clock. The
	// report schema is unaffected — tracing is a parallel export.
	Trace *obs.Proc
}

// Scenario.ReadRetry sentinels. The field's zero value keeps the
// controller's default ladder so existing scenario literals are
// unaffected; disabling recovery must be asked for by name.
const (
	// ReadRetryDefault keeps the controller's default retry budget.
	ReadRetryDefault = 0
	// ReadRetrySingleShot disables staged recovery: every read is the
	// pre-recovery single sense at nominal references.
	ReadRetrySingleShot = -1
)

// TotalOps returns the scenario's host-operation count across phases —
// the catalog's notion of "shortest".
func (sc Scenario) TotalOps() int {
	n := 0
	for _, ph := range sc.Phases {
		n += ph.Ops
	}
	return n
}

// Validate rejects malformed scenarios before any hardware is built.
func (sc Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("lifetime: scenario needs a name")
	}
	if sc.Dies < 1 || sc.BlocksPerDie < 1 {
		return fmt.Errorf("lifetime: %s: geometry %dx%d invalid", sc.Name, sc.Dies, sc.BlocksPerDie)
	}
	if len(sc.Partitions) == 0 {
		return fmt.Errorf("lifetime: %s: no partitions", sc.Name)
	}
	total := 0
	for _, pc := range sc.Partitions {
		if pc.Blocks < 2 {
			return fmt.Errorf("lifetime: %s: partition %q needs >= 2 blocks", sc.Name, pc.Name)
		}
		total += pc.Blocks
	}
	if total > sc.Dies*sc.BlocksPerDie {
		return fmt.Errorf("lifetime: %s: partitions need %d blocks, device has %d",
			sc.Name, total, sc.Dies*sc.BlocksPerDie)
	}
	if len(sc.Phases) == 0 {
		return fmt.Errorf("lifetime: %s: no phases", sc.Name)
	}
	for _, ph := range sc.Phases {
		if ph.Ops < 0 || ph.ReadFraction < 0 || ph.ReadFraction > 1 {
			return fmt.Errorf("lifetime: %s: phase %q invalid", sc.Name, ph.Name)
		}
		if ph.AgeCycles < 0 || ph.BakeHours < 0 || ph.DisturbReads < 0 {
			return fmt.Errorf("lifetime: %s: phase %q has negative stress", sc.Name, ph.Name)
		}
		if len(ph.AgeCyclesByDie) > sc.Dies {
			return fmt.Errorf("lifetime: %s: phase %q ages %d dies, device has %d",
				sc.Name, ph.Name, len(ph.AgeCyclesByDie), sc.Dies)
		}
		for _, d := range ph.AgeCyclesByDie {
			if d < 0 {
				return fmt.Errorf("lifetime: %s: phase %q has negative per-die aging", sc.Name, ph.Name)
			}
		}
	}
	if sc.ScrubEvery < 0 {
		return fmt.Errorf("lifetime: %s: negative scrub cadence", sc.Name)
	}
	if sc.ScrubEvery > 0 && (sc.Scrub.FractionOfT <= 0 || sc.Scrub.FractionOfT > 1) {
		return fmt.Errorf("lifetime: %s: scrub threshold %g outside (0,1]", sc.Name, sc.Scrub.FractionOfT)
	}
	if sc.ScrubEvery > 0 && sc.Scrub.RetryAlarm < 0 {
		return fmt.Errorf("lifetime: %s: negative scrub retry alarm %d", sc.Name, sc.Scrub.RetryAlarm)
	}
	if sc.ReadRetry < -1 {
		return fmt.Errorf("lifetime: %s: read-retry budget %d below -1", sc.Name, sc.ReadRetry)
	}
	return nil
}

// Catalog returns the scenario catalog: four device biographies
// mirroring the examples/ personas, each walking the stack from fresh
// silicon to end of life. All are sized to run in seconds while still
// crossing the wear range where the adaptive capability staircase, the
// scrubber and the mode policy all engage.
func Catalog() []Scenario {
	return []Scenario{
		ReadIntensiveArchive(),
		WriteHeavyLogging(),
		MixedMultiTenant(),
		MissionCriticalMinUBER(),
		ColdStorageDeepBake(),
		SoftDecisionLDPCArchive(),
	}
}

// CatalogScenario returns a catalog scenario by name.
func CatalogScenario(name string) (Scenario, error) {
	for _, sc := range Catalog() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("lifetime: unknown scenario %q", name)
}

// ShortestScenario returns the catalog entry with the fewest host
// operations — the CI smoke target.
func ShortestScenario() Scenario {
	cat := Catalog()
	best := cat[0]
	for _, sc := range cat[1:] {
		if sc.TotalOps() < best.TotalOps() {
			best = sc
		}
	}
	return best
}

// ReadIntensiveArchive is the multimedia-archive persona (§6.3.2): a
// cold fill, then long read-dominated phases with retention bakes and
// read-disturb aggression as the medium ages. The wear-ladder policy
// moves the partition to max-read once aging makes nominal decodes
// expensive — the paper's ≈30% read-throughput claim at end of life.
func ReadIntensiveArchive() Scenario {
	return Scenario{
		Name:        "read-archive",
		Description: "multimedia archive: fill once, stream under retention and read disturb",
		Seed:        42,
		Dies:        2, BlocksPerDie: 4,
		Partitions:   []PartitionConfig{{Name: "archive", Blocks: 8, Mode: sim.ModeNominal}},
		Scrub:        ftl.DefaultScrubPolicy(),
		ScrubEvery:   150,
		MaxUBER:      1e-9,
		SafetyMargin: 1.7,
		Policy:       DefaultWearLadder(),
		Phases: []Phase{
			{Name: "fill", Ops: 220, ReadFraction: 0.1},
			{Name: "young-stream", AgeCycles: 1e3, BakeHours: 200, Ops: 240, ReadFraction: 0.95},
			{Name: "mid-life-stream", AgeCycles: 9e3, BakeHours: 500, DisturbReads: 40, Ops: 240, ReadFraction: 0.95},
			// Crossing 1e5 cycles trips the wear ladder: the partition
			// streams its end of life in max-read mode.
			{Name: "late-stream", AgeCycles: 1.4e5, BakeHours: 200, DisturbReads: 40, Ops: 240, ReadFraction: 0.95},
			{Name: "eol-stream", AgeCycles: 8.5e5, BakeHours: 100, DisturbReads: 40, Ops: 220, ReadFraction: 0.95},
		},
	}
}

// WriteHeavyLogging is the logging/backup persona: a small hot working
// set rewritten continuously, so garbage collection and wear dominate
// and the wear ceiling starts retiring blocks near end of life.
func WriteHeavyLogging() Scenario {
	return Scenario{
		Name:        "write-logging",
		Description: "write-heavy logging: hot working set, GC churn, block retirement near EOL",
		Seed:        7,
		Dies:        2, BlocksPerDie: 4,
		Partitions: []PartitionConfig{{Name: "log", Blocks: 8, Mode: sim.ModeNominal, WorkingSet: 200}},
		Scrub:      ftl.DefaultScrubPolicy(),
		ScrubEvery: 200,
		// All blocks fast-forward uniformly, so the ceiling engages in
		// the last phase and the spare-block guard sheds a few blocks.
		WearCeiling:  9e5,
		MaxUBER:      1e-9,
		SafetyMargin: 1.7,
		Policy:       DefaultWearLadder(),
		Phases: []Phase{
			{Name: "burn-in", Ops: 240, ReadFraction: 0.2},
			{Name: "steady-logging", AgeCycles: 1e4, Ops: 280, ReadFraction: 0.2},
			{Name: "eol-logging", AgeCycles: 9.4e5, BakeHours: 50, Ops: 240, ReadFraction: 0.25},
		},
	}
}

// MixedMultiTenant is the general-purpose persona: three tenants with
// different service levels sharing the array, balanced traffic, moderate
// stress between phases.
func MixedMultiTenant() Scenario {
	return Scenario{
		Name:        "mixed-tenants",
		Description: "three tenants (nominal / max-read / min-UBER) sharing the array",
		Seed:        1234,
		Dies:        3, BlocksPerDie: 4,
		Partitions: []PartitionConfig{
			{Name: "general", Blocks: 4, Mode: sim.ModeNominal},
			{Name: "stream", Blocks: 4, Mode: sim.ModeMaxRead},
			{Name: "vault", Blocks: 4, Mode: sim.ModeMinUBER},
		},
		Scrub:        ftl.DefaultScrubPolicy(),
		ScrubEvery:   180,
		MaxUBER:      1e-9,
		SafetyMargin: 1.7,
		Phases: []Phase{
			{Name: "provision", Ops: 260, ReadFraction: 0.3},
			{Name: "mid-life", AgeCycles: 5e4, BakeHours: 300, DisturbReads: 25, Ops: 300, ReadFraction: 0.5},
			{Name: "late-life", AgeCycles: 4.5e5, BakeHours: 150, Ops: 260, ReadFraction: 0.5},
		},
	}
}

// MissionCriticalMinUBER is the secure-transaction persona (§6.3.1):
// min-UBER service from day one, aggressive scrubbing, zero tolerance
// for data loss across the whole life.
func MissionCriticalMinUBER() Scenario {
	return Scenario{
		Name:        "mission-critical",
		Description: "min-UBER service end to end: DV programming with SV-sized capability",
		Seed:        99,
		Dies:        2, BlocksPerDie: 3,
		Partitions:   []PartitionConfig{{Name: "txn", Blocks: 6, Mode: sim.ModeMinUBER, WorkingSet: 160}},
		Scrub:        ftl.ScrubPolicy{FractionOfT: 0.5},
		ScrubEvery:   100,
		MaxUBER:      0, // any lost bit fails the run
		SafetyMargin: 1.7,
		Phases: []Phase{
			{Name: "deploy", Ops: 200, ReadFraction: 0.4},
			{Name: "service", AgeCycles: 1e5, BakeHours: 250, Ops: 240, ReadFraction: 0.6},
			{Name: "eol-service", AgeCycles: 8e5, BakeHours: 100, Ops: 200, ReadFraction: 0.6},
		},
	}
}

// ColdStorageDeepBake is the cold-archive persona the read-recovery
// pipeline exists for: data written once and audited rarely, with
// multi-thousand-hour shelf time between audits. At end of life the
// bake pushes the raw error rate past even the worst-case capability,
// so audit reads fail single-shot and survive only through the staged
// retry ladder — the retry and recovered-read columns of this
// scenario's report are the acceptance evidence that recovery is
// threaded through the whole stack (and its read throughput visibly
// pays for the ladder walks).
func ColdStorageDeepBake() Scenario {
	return Scenario{
		Name:        "cold-storage",
		Description: "write-once cold archive: deep retention bakes between sparse audits, reads live on the retry ladder at EOL",
		Seed:        77,
		Dies:        2, BlocksPerDie: 3,
		Partitions:   []PartitionConfig{{Name: "vault", Blocks: 6, Mode: sim.ModeNominal, WorkingSet: 128}},
		Scrub:        ftl.DefaultScrubPolicy(),
		ScrubEvery:   90,
		MaxUBER:      1e-9,
		SafetyMargin: 1.7,
		Policy:       DefaultWearLadder(),
		Phases: []Phase{
			{Name: "ingest", Ops: 180, ReadFraction: 0.1},
			{Name: "shelf-audit", AgeCycles: 1e4, BakeHours: 3000, Ops: 160, ReadFraction: 0.9},
			{Name: "deep-shelf", AgeCycles: 9.9e5, BakeHours: 1e4, Ops: 160, ReadFraction: 0.95},
		},
	}
}

// SoftDecisionLDPCArchive is the beyond-datasheet cold-archive persona
// the LDPC family exists for: the device is aged and shelf-baked so far
// past its rating that the raw error count at EVERY hard read-reference
// shift exceeds what any hard-decision decode can repair — the regime
// where a BCH controller (t <= 65, full retry ladder) loses the medium
// outright. The LDPC controller, with the retry budget opened one rung
// past the hard ladder, survives on soft-sense reads: every deep-shelf
// audit walks the full hard ladder, fails, pays the multi-sense soft
// read and decodes through min-sum — so the report's soft-sense column
// is the acceptance evidence of the whole soft pipeline, and the phase
// read throughput visibly collapses under the extra senses and decode
// iterations.
func SoftDecisionLDPCArchive() Scenario {
	steps := 6 // nand.DefaultStressConfig().RetrySteps (kept literal: scenarios are data)
	return Scenario{
		Name:        "ldpc-soft-archive",
		Description: "soft-decision LDPC cold archive: aged past the BCH cliff, audits survive on multi-sense soft reads",
		Seed:        271,
		Dies:        1, BlocksPerDie: 4,
		Codec:        ecc.FamilyLDPC,
		Partitions:   []PartitionConfig{{Name: "vault", Blocks: 4, Mode: sim.ModeNominal, WorkingSet: 48}},
		Scrub:        ftl.ScrubPolicy{FractionOfT: 0.7, RetryAlarm: 3},
		ScrubEvery:   80,
		MaxUBER:      1e-9,
		SafetyMargin: 1.7,
		ReadRetry:    steps + 1, // one rung past the hard ladder: soft unlocked
		Phases: []Phase{
			{Name: "ingest", Ops: 120, ReadFraction: 0.15},
			{Name: "shelf-audit", AgeCycles: 1e4, BakeHours: 2500, Ops: 100, ReadFraction: 0.9},
			// Past the BCH cliff: raw RBER pins at the physical ceiling,
			// the best reference shift still leaves ~2x the strongest
			// hard-decision capability — only the soft rung reads back.
			{Name: "beyond-datasheet-shelf", AgeCycles: 2e7, BakeHours: 1e5, Ops: 90, ReadFraction: 0.95},
		},
	}
}

// AsymmetricDieWear is the golden regression scenario for per-die
// calibration-cache divergence: one die of a two-die array ages hard
// while the other stays young, a shared shelf bake drifts both, and the
// following audit reads teach each die's reliability manager its own
// read-reference offset — the report's per-die calibration column must
// show the caches diverging (worn die at a deep step, young die at or
// near nominal).
func AsymmetricDieWear() Scenario {
	return Scenario{
		Name:        "golden-asym",
		Description: "golden fixture: asymmetric per-die wear drives calibration-cache divergence",
		Seed:        616,
		Dies:        2, BlocksPerDie: 2,
		// The live set exceeds what the young die alone can hold (two
		// blocks = 128 pages), so data MUST keep occupying the worn die
		// by pigeonhole: the wear-levelling victim choice would otherwise
		// drain it entirely (low-wear blocks are preferred frontiers) and
		// the audit would never touch the climate this fixture pins.
		Partitions:   []PartitionConfig{{Name: "p0", Blocks: 4, Mode: sim.ModeNominal, WorkingSet: 150}},
		Scrub:        ftl.ScrubPolicy{FractionOfT: 0.5, RetryAlarm: 2},
		ScrubEvery:   90,
		MaxUBER:      1e-8,
		SafetyMargin: 1.7,
		Policy:       DefaultWearLadder(),
		Phases: []Phase{
			{Name: "fill", Ops: 420, ReadFraction: 0.05},
			// Die 0 takes three decades more wear than die 1; the bake
			// then drifts stored charge on both, but only die 0's climate
			// needs deep reference shifts.
			{Name: "asym-age", AgeCyclesByDie: []float64{9e5, 2e3}, BakeHours: 9e3, Ops: 130, ReadFraction: 0.85},
			{Name: "late-audit", BakeHours: 4e3, Ops: 110, ReadFraction: 0.9},
		},
	}
}

// GoldenShort returns the two canned regression scenarios whose report
// summaries are pinned as golden fixtures in testdata/: tiny biographies
// that still cross an aging step, a scrub pass and (for golden-churn) GC
// churn, so a perf PR that changes reliability behaviour anywhere in the
// stack moves the fixture.
func GoldenShort() []Scenario {
	return []Scenario{
		AsymmetricDieWear(),
		{
			Name:        "golden-stream",
			Description: "golden fixture: fill + aged streaming reads",
			Seed:        2024,
			Dies:        1, BlocksPerDie: 3,
			Partitions: []PartitionConfig{{Name: "p0", Blocks: 3, Mode: sim.ModeNominal, WorkingSet: 64}},
			// Alarm well below the default 0.7·t so the fixture also pins
			// scrub marking/refresh behaviour on a short run.
			Scrub:        ftl.ScrubPolicy{FractionOfT: 0.3},
			ScrubEvery:   60,
			MaxUBER:      1e-8,
			SafetyMargin: 1.7,
			Policy:       DefaultWearLadder(),
			Phases: []Phase{
				{Name: "fill", Ops: 90, ReadFraction: 0.2},
				{Name: "aged-stream", AgeCycles: 2e5, BakeHours: 300, DisturbReads: 20, Ops: 110, ReadFraction: 0.9},
			},
		},
		{
			Name:        "golden-churn",
			Description: "golden fixture: overwrite churn across an aging step",
			Seed:        4096,
			Dies:        2, BlocksPerDie: 2,
			Partitions:   []PartitionConfig{{Name: "p0", Blocks: 4, Mode: sim.ModeMinUBER, WorkingSet: 96}},
			Scrub:        ftl.ScrubPolicy{FractionOfT: 0.25},
			ScrubEvery:   70,
			MaxUBER:      1e-8,
			SafetyMargin: 1.7,
			Phases: []Phase{
				{Name: "churn", Ops: 120, ReadFraction: 0.35},
				{Name: "aged-churn", AgeCycles: 3e5, BakeHours: 150, Ops: 100, ReadFraction: 0.5},
			},
		},
	}
}
