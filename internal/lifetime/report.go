package lifetime

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"xlnand/internal/controller"
)

// CorrectedHistBuckets is the number of power-of-two buckets in the
// corrected-bits-per-read histogram: 0, 1, 2-3, 4-7, 8-15, 16-31, 32-63,
// and 64+ (the last bucket also catches anything beyond the t=65 budget).
const CorrectedHistBuckets = 8

// CorrectedHist buckets corrected-error counts per read by powers of
// two. The fixed shape keeps report JSON stable across code changes.
type CorrectedHist [CorrectedHistBuckets]int

// Add records one read's corrected-error count.
func (h *CorrectedHist) Add(corrected int) {
	b := 0
	for corrected > 0 && b < CorrectedHistBuckets-1 {
		corrected >>= 1
		b++
	}
	h[b]++
}

// Labels returns the bucket labels, aligned with the counts.
func (h CorrectedHist) Labels() []string {
	out := make([]string, CorrectedHistBuckets)
	out[0], out[1] = "0", "1"
	for b := 2; b < CorrectedHistBuckets-1; b++ {
		out[b] = fmt.Sprintf("%d-%d", 1<<(b-1), 1<<b-1)
	}
	out[CorrectedHistBuckets-1] = strconv.Itoa(1<<(CorrectedHistBuckets-2)) + "+"
	return out
}

// RetryHistBuckets is the number of buckets in the read-retry-depth
// histogram: retries 0..6 directly, 7+ collected in the last bucket.
// It mirrors the controller's manager-level histogram so the two "reads
// by retry depth" views can never drift apart.
const RetryHistBuckets = controller.RetryHistBuckets

// RetryHist buckets reads by the recovery-ladder retries they needed.
type RetryHist [RetryHistBuckets]int

// Add records one read's retry count.
func (h *RetryHist) Add(retries int) {
	if retries < 0 {
		retries = 0
	}
	if retries >= RetryHistBuckets {
		retries = RetryHistBuckets - 1
	}
	h[retries]++
}

// PartitionPhase is one partition's slice of a phase.
type PartitionPhase struct {
	Name string `json:"name"`
	Mode string `json:"mode"` // service level at the END of the phase

	Reads          int     `json:"reads"`
	Writes         int     `json:"writes"`
	CorrectedBits  int     `json:"corrected_bits"`
	CorrectedPerKB float64 `json:"corrected_per_kb"`
	Uncorrectable  int     `json:"uncorrectable"`
	// Retries counts the recovery-ladder re-senses the partition's reads
	// needed this phase; Recovered counts reads saved by the ladder.
	Retries       int     `json:"retries"`
	Recovered     int     `json:"recovered"`
	WearMin       float64 `json:"wear_min"`
	WearMax       float64 `json:"wear_max"`
	Retired       int     `json:"retired_blocks"` // cumulative
	DeepRecovered int     `json:"deep_recovered"` // cumulative
}

// PhaseReport is the time-series element of a run.
type PhaseReport struct {
	Name string `json:"name"`

	// Stress applied before the phase's traffic.
	AgeCycles    float64 `json:"age_cycles"`
	BakeHours    float64 `json:"bake_hours"`
	DisturbReads int     `json:"disturb_reads"`

	// Host traffic.
	HostReads  int `json:"host_reads"`
	HostWrites int `json:"host_writes"`
	// VerifyReads are the engine's post-scrub heal-check reads (not host
	// traffic, but they do stress the medium like any read).
	VerifyReads int `json:"verify_reads"`
	// RefreshReads/RefreshedPages are the stepped-aging maintenance
	// traffic: live data re-read and rewritten at the new wear after
	// each fast-forward step.
	RefreshReads   int `json:"refresh_reads"`
	RefreshedPages int `json:"refreshed_pages"`

	// Reliability.
	BitsRead           int64         `json:"bits_read"`
	CorrectedBits      int           `json:"corrected_bits"`
	CorrectedHist      CorrectedHist `json:"corrected_hist"`
	UncorrectableReads int           `json:"uncorrectable_reads"`
	LostBits           int64         `json:"lost_bits"`
	// Read-recovery climate: total ladder re-senses, the histogram of
	// reads by retry depth, reads the ladder saved from data loss, and
	// pages the FTL's deep-retry relocation attempt rescued.
	Retries        int       `json:"retries"`
	RetryHist      RetryHist `json:"retry_hist"`
	RecoveredReads int       `json:"recovered_reads"`
	// RelocRetries are the ladder re-senses paid by FTL relocation
	// reads (GC, scrub, retirement, deep-retry walks) this phase: they
	// never cross the host read path but occupy the same timeline.
	RelocRetries  int `json:"reloc_retries"`  // delta over the phase
	DeepRecovered int `json:"deep_recovered"` // delta over the phase
	// Soft-decision climate: component array senses the soft-sense rung
	// paid this phase, and verified reads only the soft-input decoder
	// could bring back (both 0 for hard-only codec families).
	SoftSenses    int `json:"soft_senses"`
	SoftRecovered int `json:"soft_recovered"`
	// CalibSteps is each die's predicted read-reference ladder step for
	// its most-worn blocks at phase end — the per-die calibration-cache
	// state (asymmetric wear makes the entries diverge).
	CalibSteps []int `json:"calib_steps"`
	// UBER is the phase's post-correction error rate: lost bits / bits
	// read (0 when nothing was read).
	UBER float64 `json:"uber"`

	// Maintenance traffic.
	ScrubPasses     int     `json:"scrub_passes"`
	BlocksRefreshed int     `json:"blocks_refreshed"`
	PagesScrubbed   int     `json:"pages_scrubbed"`
	GCMoves         int     `json:"gc_moves"` // delta over the phase
	Erases          int     `json:"erases"`   // delta over the phase
	RetiredBlocks   int     `json:"retired"`  // delta over the phase
	PendingScrubs   int     `json:"pending"`  // marks left at phase end
	WearMin         float64 `json:"wear_min"`
	WearMax         float64 `json:"wear_max"`

	// Performance on the modelled timeline.
	MakespanMS float64 `json:"makespan_ms"`
	ReadMBps   float64 `json:"read_mbps"`
	WriteMBps  float64 `json:"write_mbps"`

	Partitions []PartitionPhase `json:"partitions"`
}

// Totals aggregates the run.
type Totals struct {
	HostReads          int     `json:"host_reads"`
	HostWrites         int     `json:"host_writes"`
	BitsRead           int64   `json:"bits_read"`
	CorrectedBits      int     `json:"corrected_bits"`
	UncorrectableReads int     `json:"uncorrectable_reads"`
	LostBits           int64   `json:"lost_bits"`
	UBER               float64 `json:"uber"`
	Retries            int     `json:"retries"`
	RecoveredReads     int     `json:"recovered_reads"`
	RelocRetries       int     `json:"reloc_retries"`
	DeepRecovered      int     `json:"deep_recovered"`
	SoftSenses         int     `json:"soft_senses"`
	SoftRecovered      int     `json:"soft_recovered"`
	ScrubPasses        int     `json:"scrub_passes"`
	PagesScrubbed      int     `json:"pages_scrubbed"`
	GCMoves            int     `json:"gc_moves"`
	Erases             int     `json:"erases"`
	RetiredBlocks      int     `json:"retired_blocks"`
	FinalWearMax       float64 `json:"final_wear_max"`
}

// Report is the full deterministic output of one scenario run.
type Report struct {
	Scenario     string        `json:"scenario"`
	Description  string        `json:"description"`
	Seed         uint64        `json:"seed"`
	Dies         int           `json:"dies"`
	BlocksPerDie int           `json:"blocks_per_die"`
	Phases       []PhaseReport `json:"phases"`
	Totals       Totals        `json:"totals"`
}

// JSON serialises the report with stable formatting; two runs of the
// same scenario and seed produce byte-identical output.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteTable renders a human-readable phase table.
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "scenario %s (seed %d, %d dies x %d blocks)\n",
		r.Scenario, r.Seed, r.Dies, r.BlocksPerDie)
	fmt.Fprintf(w, "%-16s %8s %8s %10s %9s %7s %7s %7s %7s %7s %8s %9s %9s\n",
		"phase", "reads", "writes", "corrected", "uncorr", "retry", "recov", "soft", "scrub", "retired", "wearmax", "readMB/s", "UBER")
	for _, ph := range r.Phases {
		fmt.Fprintf(w, "%-16s %8d %8d %10d %9d %7d %7d %7d %7d %7d %8.0f %9.2f %9.2e\n",
			ph.Name, ph.HostReads, ph.HostWrites, ph.CorrectedBits, ph.UncorrectableReads,
			ph.Retries, ph.RecoveredReads, ph.SoftRecovered, ph.PagesScrubbed, ph.RetiredBlocks, ph.WearMax, ph.ReadMBps, ph.UBER)
	}
	t := r.Totals
	fmt.Fprintf(w, "%-16s %8d %8d %10d %9d %7d %7d %7d %7d %7d %8.0f %9s %9.2e\n",
		"TOTAL", t.HostReads, t.HostWrites, t.CorrectedBits, t.UncorrectableReads,
		t.Retries, t.RecoveredReads, t.SoftRecovered, t.PagesScrubbed, t.RetiredBlocks, t.FinalWearMax, "", t.UBER)
}

// PhaseSummary is the golden-fixture slice of a phase: exact counters
// plus floats rounded to 3 significant digits, so fixtures survive
// platform-level floating-point library differences while still pinning
// the reliability trajectory.
type PhaseSummary struct {
	Name          string `json:"name"`
	HostReads     int    `json:"host_reads"`
	HostWrites    int    `json:"host_writes"`
	CorrectedBits int    `json:"corrected_bits"`
	Uncorrectable int    `json:"uncorrectable"`
	Retries       int    `json:"retries"`
	Recovered     int    `json:"recovered"`
	SoftSenses    int    `json:"soft_senses"`
	SoftRecovered int    `json:"soft_recovered"`
	PagesScrubbed int    `json:"pages_scrubbed"`
	Retired       int    `json:"retired"`
	UBER          string `json:"uber"`
	WearMax       string `json:"wear_max"`
	Modes         string `json:"modes"`
	// CalibSteps renders the per-die calibration-cache state, e.g.
	// "5,0" for a worn die predicting step 5 next to a young one at
	// nominal references.
	CalibSteps string `json:"calib_steps"`
}

// Summary projects the report onto its golden-fixture form.
type Summary struct {
	Scenario string         `json:"scenario"`
	Seed     uint64         `json:"seed"`
	Phases   []PhaseSummary `json:"phases"`
	Totals   struct {
		CorrectedBits int    `json:"corrected_bits"`
		Uncorrectable int    `json:"uncorrectable"`
		Retries       int    `json:"retries"`
		Recovered     int    `json:"recovered"`
		SoftRecovered int    `json:"soft_recovered"`
		LostBits      int64  `json:"lost_bits"`
		Retired       int    `json:"retired"`
		UBER          string `json:"uber"`
	} `json:"totals"`
}

// Summarize builds the golden-fixture summary of the report.
func (r *Report) Summarize() Summary {
	s := Summary{Scenario: r.Scenario, Seed: r.Seed}
	for _, ph := range r.Phases {
		modes := ""
		for i, pp := range ph.Partitions {
			if i > 0 {
				modes += ","
			}
			modes += pp.Name + "=" + pp.Mode
		}
		calib := ""
		for i, st := range ph.CalibSteps {
			if i > 0 {
				calib += ","
			}
			calib += strconv.Itoa(st)
		}
		s.Phases = append(s.Phases, PhaseSummary{
			Name:          ph.Name,
			HostReads:     ph.HostReads,
			HostWrites:    ph.HostWrites,
			CorrectedBits: ph.CorrectedBits,
			Uncorrectable: ph.UncorrectableReads,
			Retries:       ph.Retries,
			Recovered:     ph.RecoveredReads,
			SoftSenses:    ph.SoftSenses,
			SoftRecovered: ph.SoftRecovered,
			PagesScrubbed: ph.PagesScrubbed,
			Retired:       ph.RetiredBlocks,
			UBER:          fmt.Sprintf("%.3g", ph.UBER),
			WearMax:       fmt.Sprintf("%.3g", ph.WearMax),
			Modes:         modes,
			CalibSteps:    calib,
		})
	}
	s.Totals.CorrectedBits = r.Totals.CorrectedBits
	s.Totals.Uncorrectable = r.Totals.UncorrectableReads
	s.Totals.Retries = r.Totals.Retries
	s.Totals.Recovered = r.Totals.RecoveredReads
	s.Totals.SoftRecovered = r.Totals.SoftRecovered
	s.Totals.LostBits = r.Totals.LostBits
	s.Totals.Retired = r.Totals.RetiredBlocks
	s.Totals.UBER = fmt.Sprintf("%.3g", r.Totals.UBER)
	return s
}
