package lifetime

import "testing"

// TestLDPCSoftArchiveLivesOnSoftRung is the scenario-level acceptance of
// the soft-decision pipeline: the beyond-datasheet phase must survive on
// multi-sense soft reads (hard rungs exhausted), lose nothing, and pay
// for it in modelled read throughput.
func TestLDPCSoftArchiveLivesOnSoftRung(t *testing.T) {
	if raceEnabled {
		t.Skip("full LDPC biography is minutes under race; the catalog soak covers it race-free")
	}
	rep, err := Run(SoftDecisionLDPCArchive())
	if err != nil {
		t.Fatalf("ldpc-soft-archive failed: %v", err)
	}
	young := rep.Phases[0]
	deep := rep.Phases[len(rep.Phases)-1]
	if deep.SoftRecovered == 0 || deep.SoftSenses == 0 {
		t.Fatalf("deep-shelf phase never used the soft rung: %+v", deep)
	}
	if deep.Retries < deep.SoftRecovered*3 {
		t.Fatalf("soft saves without full hard walks: %d retries for %d soft recoveries",
			deep.Retries, deep.SoftRecovered)
	}
	if deep.UBER > SoftDecisionLDPCArchive().MaxUBER {
		t.Fatalf("deep-shelf UBER %.3e above ceiling", deep.UBER)
	}
	// The soft senses and decode iterations must be visible in the
	// modelled throughput: the deep-shelf audit reads far slower than
	// the young medium.
	if deep.ReadMBps >= young.ReadMBps/2 {
		t.Fatalf("soft recovery not visible in throughput: young %.2f MB/s, deep-shelf %.2f MB/s",
			young.ReadMBps, deep.ReadMBps)
	}
	// Every die is LDPC here: the retry histogram's deep bucket holds
	// the full-ladder walks.
	if deep.RetryHist[RetryHistBuckets-1] == 0 {
		t.Fatal("no read walked the full ladder in the deep-shelf phase")
	}
}

// TestAsymmetricWearDivergesCalibration pins the per-die cache split:
// after the asymmetric aging phase the worn die predicts a deeper
// read-reference step than the young one.
func TestAsymmetricWearDivergesCalibration(t *testing.T) {
	if raceEnabled {
		t.Skip("golden-asym pins the same trajectory under race")
	}
	rep, err := Run(AsymmetricDieWear())
	if err != nil {
		t.Fatalf("golden-asym failed: %v", err)
	}
	last := rep.Phases[len(rep.Phases)-1]
	if len(last.CalibSteps) != 2 {
		t.Fatalf("calibration report covers %d dies, want 2", len(last.CalibSteps))
	}
	if last.CalibSteps[0] <= last.CalibSteps[1] {
		t.Fatalf("calibration caches did not diverge: worn die %d, young die %d",
			last.CalibSteps[0], last.CalibSteps[1])
	}
	if last.CalibSteps[1] != 0 {
		t.Fatalf("young die learned step %d; its climate needs none", last.CalibSteps[1])
	}
}
