package lifetime

import (
	"testing"

	"xlnand/internal/sim"
)

// TestColdStorageLivesOnTheLadder is the end-to-end acceptance check of
// the read-recovery pipeline: the cold-storage biography's deep-bake
// phase must exercise the retry ladder (re-senses and recovered reads in
// the report), pay for it in read throughput, and still lose no data —
// with the recovery invariant (never wrong data silently) checked by the
// engine on every read along the way.
func TestColdStorageLivesOnTheLadder(t *testing.T) {
	if raceEnabled {
		t.Skip("full cold-storage biography is minutes under race")
	}
	rep, err := Run(ColdStorageDeepBake())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Retries == 0 || rep.Totals.RecoveredReads == 0 {
		t.Fatalf("cold storage never exercised the ladder: %d retries, %d recovered",
			rep.Totals.Retries, rep.Totals.RecoveredReads)
	}
	if rep.Totals.LostBits != 0 {
		t.Fatalf("recovery pipeline lost %d bits", rep.Totals.LostBits)
	}
	last := rep.Phases[len(rep.Phases)-1]
	if last.Retries == 0 {
		t.Fatal("deep-shelf phase shows no retries")
	}
	walked := 0
	for b := 1; b < RetryHistBuckets; b++ {
		walked += last.RetryHist[b]
	}
	if walked == 0 {
		t.Fatalf("retry histogram records no ladder walks: %v", last.RetryHist)
	}
	// The ladder's cost must be visible in throughput: the deep-bake
	// phase reads measurably slower than the young audit phase.
	young := rep.Phases[1]
	if last.ReadMBps >= young.ReadMBps {
		t.Fatalf("deep-shelf read throughput %.2f MB/s not below young audit %.2f MB/s",
			last.ReadMBps, young.ReadMBps)
	}
}

// TestScenarioReadRetryKnob checks the cross-layer wiring of the
// Scenario.ReadRetry budget: the same biography run with the ladder
// disabled must lose the pages the ladder saves (data loss instead of
// recovered reads), while the default run stays clean.
func TestScenarioReadRetryKnob(t *testing.T) {
	if raceEnabled {
		t.Skip("two full cold-storage biographies are minutes under race")
	}
	sc := ColdStorageDeepBake()
	sc.ReadRetry = ReadRetrySingleShot
	// Loss is now expected: lift the UBER invariant so the run reports
	// instead of aborting.
	sc.MaxUBER = 1
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Retries != 0 || rep.Totals.RelocRetries != 0 {
		t.Fatalf("disabled ladder still retried: %d host, %d reloc", rep.Totals.Retries, rep.Totals.RelocRetries)
	}
	if rep.Totals.DeepRecovered != 0 {
		t.Fatalf("single-shot run still rescued %d pages via deep retry", rep.Totals.DeepRecovered)
	}
	if rep.Totals.UncorrectableReads == 0 {
		t.Fatal("single-shot run saw no uncorrectables; the ladder was never the difference")
	}
}

// TestWearLadderRetryClimate checks the policy hook: an average retry
// depth at the threshold escalates to min-UBER service, and below it
// the mode is untouched.
func TestWearLadderRetryClimate(t *testing.T) {
	w := WearLadder{MinUBERRetriesPerRead: 0.5}
	o := Observation{Mode: sim.ModeNominal, RetriesPerRead: 0.6}
	if got := w.Retune(o); got != sim.ModeMinUBER {
		t.Fatalf("retry pressure 0.6 kept mode %v", got)
	}
	o.RetriesPerRead = 0.4
	if got := w.Retune(o); got != sim.ModeNominal {
		t.Fatalf("retry pressure 0.4 moved mode to %v", got)
	}
	// Disabled threshold ignores the climate entirely.
	w.MinUBERRetriesPerRead = 0
	o.RetriesPerRead = 10
	if got := w.Retune(o); got != sim.ModeNominal {
		t.Fatalf("disabled retry threshold moved mode to %v", got)
	}
}
