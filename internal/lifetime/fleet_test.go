package lifetime

import (
	"bytes"
	"testing"
)

// TestFleetDeterminism is the acceptance pin for determinism at scale:
// sixteen drives run their biographies concurrently, and two runs of
// the same fleet seed produce byte-identical merged reports.
func TestFleetDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet determinism needs two full 16-drive runs")
	}
	fs := FleetSmoke()
	run := func() []byte {
		t.Helper()
		res, err := RunFleet(fs)
		if err != nil {
			t.Fatal(err)
		}
		js, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js
	}
	js1, js2 := run(), run()
	if !bytes.Equal(js1, js2) {
		t.Fatalf("fleet results diverged between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", js1, js2)
	}
}

// TestFleetSoakDeterminism is the acceptance pin for the
// hundreds-of-drives soak: the full 128-drive fleet-soak scenario runs
// twice and the merged reports must be byte-identical, with the three
// scheduled fail-stops recorded exactly where the scenario put them.
func TestFleetSoakDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet soak needs two full 128-drive runs")
	}
	if raceEnabled {
		t.Skip("128-drive soak is minutes under the race detector; TestFleetDeterminism covers the concurrent merge")
	}
	fs := FleetSoak()
	run := func() (*FleetResult, []byte) {
		t.Helper()
		res, err := RunFleet(fs)
		if err != nil {
			t.Fatal(err)
		}
		js, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return res, js
	}
	res, js1 := run()
	if _, js2 := run(); !bytes.Equal(js1, js2) {
		t.Fatal("fleet-soak diverged between identical runs")
	}
	if res.Drives != 128 || len(res.PerDrive) != 128 {
		t.Fatalf("soak ran %d drives (%d reported), want 128", res.Drives, len(res.PerDrive))
	}
	dead := map[int]int{17: 1, 63: 2, 101: 2}
	for _, d := range res.PerDrive {
		want, killed := dead[d.Drive]
		if killed {
			if d.Health != "dead" || d.PhasesRun != want {
				t.Fatalf("drive %d reports health %q phases %d, want dead/%d", d.Drive, d.Health, d.PhasesRun, want)
			}
		} else if d.Health != "" {
			t.Fatalf("healthy drive %d reports health %q", d.Drive, d.Health)
		}
	}
}

// TestFleetMerge checks the merged result's structure: per-drive
// entries in index order with decorrelated seeds, phase counters that
// sum the drives, and totals consistent with the per-drive totals.
func TestFleetMerge(t *testing.T) {
	fs := FleetSmoke()
	fs.Drives = 4
	fs.Name = "fleet-merge-test"
	res, err := RunFleet(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerDrive) != 4 {
		t.Fatalf("%d per-drive entries, want 4", len(res.PerDrive))
	}
	seeds := make(map[uint64]bool)
	var reads, writes int
	for i, d := range res.PerDrive {
		if d.Drive != i {
			t.Fatalf("per-drive entry %d carries drive %d: merge is not index-ordered", i, d.Drive)
		}
		if seeds[d.Seed] {
			t.Fatalf("drive %d reuses seed %d", i, d.Seed)
		}
		seeds[d.Seed] = true
		if d.Totals.HostReads == 0 || d.Totals.HostWrites == 0 {
			t.Fatalf("drive %d saw no traffic: %+v", i, d.Totals)
		}
		reads += d.Totals.HostReads
		writes += d.Totals.HostWrites
	}
	if res.Totals.HostReads != reads || res.Totals.HostWrites != writes {
		t.Fatalf("totals %d/%d reads/writes, drives sum to %d/%d",
			res.Totals.HostReads, res.Totals.HostWrites, reads, writes)
	}
	if len(res.Phases) != len(fs.Base.Phases) {
		t.Fatalf("%d merged phases, want %d", len(res.Phases), len(fs.Base.Phases))
	}
	var phaseReads int
	for _, ph := range res.Phases {
		phaseReads += ph.HostReads
	}
	if phaseReads != reads {
		t.Fatalf("phase series sums to %d reads, drives to %d", phaseReads, reads)
	}
}

// TestFleetFailStop kills one drive mid-biography and checks the merge
// stays honest: the dead drive contributes only its completed phases,
// its health is recorded, and the run stays byte-deterministic.
func TestFleetFailStop(t *testing.T) {
	fs := FleetSmoke()
	fs.Drives = 4
	fs.Name = "fleet-failstop-test"
	fs.FailStops = []FleetFailStop{{Drive: 2, AfterPhase: 0}}
	run := func() (*FleetResult, []byte) {
		t.Helper()
		res, err := RunFleet(fs)
		if err != nil {
			t.Fatal(err)
		}
		js, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return res, js
	}
	res, js1 := run()
	if _, js2 := run(); !bytes.Equal(js1, js2) {
		t.Fatal("fail-stop fleet diverged between identical runs")
	}
	for i, d := range res.PerDrive {
		if i == 2 {
			if d.Health != "dead" || d.PhasesRun != 1 {
				t.Fatalf("killed drive reports health %q phases %d, want dead/1", d.Health, d.PhasesRun)
			}
			continue
		}
		if d.Health != "" || d.PhasesRun != 0 {
			t.Fatalf("healthy drive %d reports health %q phases %d", i, d.Health, d.PhasesRun)
		}
	}
	// The dead drive is absent from every phase after the kill: the
	// second phase's counters sum only the three survivors, so they
	// must be strictly below a full four-drive fleet's.
	full := fs
	full.FailStops = nil
	fullRes, err := RunFleet(full)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Phases[1].HostReads, fullRes.Phases[1].HostReads; got >= want {
		t.Fatalf("post-kill phase saw %d reads, full fleet %d: dead drive still contributing", got, want)
	}
	if res.Phases[0].HostWrites != fullRes.Phases[0].HostWrites {
		t.Fatalf("pre-kill phase diverged: %d writes vs %d", res.Phases[0].HostWrites, fullRes.Phases[0].HostWrites)
	}
	if res.Totals.HostReads >= fullRes.Totals.HostReads {
		t.Fatalf("fleet totals %d reads not below full fleet's %d", res.Totals.HostReads, fullRes.Totals.HostReads)
	}
}

// TestFleetValidate rejects malformed fleet scenarios.
func TestFleetValidate(t *testing.T) {
	good := FleetSmoke()
	if err := good.Validate(); err != nil {
		t.Fatalf("catalog fleet invalid: %v", err)
	}
	bad := good
	bad.Drives = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-drive fleet validated")
	}
	bad = good
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Fatal("nameless fleet validated")
	}
	bad = good
	bad.Base.Phases = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("phaseless base validated")
	}
	bad = good
	bad.FailStops = []FleetFailStop{{Drive: 99, AfterPhase: 0}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range fail-stop drive validated")
	}
	bad = good
	bad.FailStops = []FleetFailStop{{Drive: 0, AfterPhase: 5}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range fail-stop phase validated")
	}
	bad = good
	bad.FailStops = []FleetFailStop{{Drive: 1, AfterPhase: 0}, {Drive: 1, AfterPhase: 1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("duplicate fail-stop drive validated")
	}
}
