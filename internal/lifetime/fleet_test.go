package lifetime

import (
	"bytes"
	"testing"
)

// TestFleetDeterminism is the acceptance pin for determinism at scale:
// sixteen drives run their biographies concurrently, and two runs of
// the same fleet seed produce byte-identical merged reports.
func TestFleetDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet determinism needs two full 16-drive runs")
	}
	fs := FleetSmoke()
	run := func() []byte {
		t.Helper()
		res, err := RunFleet(fs)
		if err != nil {
			t.Fatal(err)
		}
		js, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js
	}
	js1, js2 := run(), run()
	if !bytes.Equal(js1, js2) {
		t.Fatalf("fleet results diverged between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", js1, js2)
	}
}

// TestFleetMerge checks the merged result's structure: per-drive
// entries in index order with decorrelated seeds, phase counters that
// sum the drives, and totals consistent with the per-drive totals.
func TestFleetMerge(t *testing.T) {
	fs := FleetSmoke()
	fs.Drives = 4
	fs.Name = "fleet-merge-test"
	res, err := RunFleet(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerDrive) != 4 {
		t.Fatalf("%d per-drive entries, want 4", len(res.PerDrive))
	}
	seeds := make(map[uint64]bool)
	var reads, writes int
	for i, d := range res.PerDrive {
		if d.Drive != i {
			t.Fatalf("per-drive entry %d carries drive %d: merge is not index-ordered", i, d.Drive)
		}
		if seeds[d.Seed] {
			t.Fatalf("drive %d reuses seed %d", i, d.Seed)
		}
		seeds[d.Seed] = true
		if d.Totals.HostReads == 0 || d.Totals.HostWrites == 0 {
			t.Fatalf("drive %d saw no traffic: %+v", i, d.Totals)
		}
		reads += d.Totals.HostReads
		writes += d.Totals.HostWrites
	}
	if res.Totals.HostReads != reads || res.Totals.HostWrites != writes {
		t.Fatalf("totals %d/%d reads/writes, drives sum to %d/%d",
			res.Totals.HostReads, res.Totals.HostWrites, reads, writes)
	}
	if len(res.Phases) != len(fs.Base.Phases) {
		t.Fatalf("%d merged phases, want %d", len(res.Phases), len(fs.Base.Phases))
	}
	var phaseReads int
	for _, ph := range res.Phases {
		phaseReads += ph.HostReads
	}
	if phaseReads != reads {
		t.Fatalf("phase series sums to %d reads, drives to %d", phaseReads, reads)
	}
}

// TestFleetValidate rejects malformed fleet scenarios.
func TestFleetValidate(t *testing.T) {
	good := FleetSmoke()
	if err := good.Validate(); err != nil {
		t.Fatalf("catalog fleet invalid: %v", err)
	}
	bad := good
	bad.Drives = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-drive fleet validated")
	}
	bad = good
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Fatal("nameless fleet validated")
	}
	bad = good
	bad.Base.Phases = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("phaseless base validated")
	}
}
