//go:build race

package lifetime

// raceEnabled reports whether the race detector is compiled in. The
// full catalog soak is minutes-long under the detector's ~10-20x decode
// slowdown, so the heavy tests skip themselves and race coverage comes
// from the golden scenarios (which cross every goroutine boundary the
// catalog does) plus the FTL's targeted scrub-vs-I/O race test.
const raceEnabled = true
