package lifetime

import (
	"bytes"
	"testing"

	"xlnand/internal/sim"
)

// TestLifetimeCatalogInvariants runs every catalog scenario end to end.
// The engine checks the soak invariants internally (no lost writes, no
// silent corruption, monotone per-block wear, scrub heals what it
// claims, run UBER under the scenario ceiling) and fails loudly with the
// reproducing seed; this test additionally sanity-checks the report
// shape.
func TestLifetimeCatalogInvariants(t *testing.T) {
	if raceEnabled {
		t.Skip("catalog soak is minutes under the race detector; golden scenarios cover the same paths")
	}
	for _, sc := range Catalog() {
		sc := sc
		if sc.Name == "ldpc-soft-archive" {
			// ~30s of min-sum on deliberately-hopeless hard rungs;
			// TestLDPCSoftArchiveLivesOnSoftRung runs it with stronger
			// assertions, so the generic soak skips the duplicate.
			continue
		}
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(sc)
			if err != nil {
				t.Fatalf("scenario failed: %v", err)
			}
			if len(rep.Phases) != len(sc.Phases) {
				t.Fatalf("report has %d phases, scenario %d", len(rep.Phases), len(sc.Phases))
			}
			if rep.Totals.HostReads == 0 || rep.Totals.HostWrites == 0 {
				t.Fatalf("degenerate run: totals %+v", rep.Totals)
			}
			if rep.Totals.UBER > sc.MaxUBER {
				t.Fatalf("UBER %g above ceiling %g escaped the engine", rep.Totals.UBER, sc.MaxUBER)
			}
			// Wear must ratchet upward across the phase series.
			prev := 0.0
			for _, ph := range rep.Phases {
				if ph.WearMax < prev {
					t.Fatalf("phase %q wear max %g below previous %g", ph.Name, ph.WearMax, prev)
				}
				prev = ph.WearMax
			}
			// A biography that never exercised the decoder is sized wrong.
			if rep.Totals.CorrectedBits == 0 {
				t.Fatalf("scenario never saw a corrected bit; stress too low")
			}
		})
	}
}

// TestLifetimeDeterministicReports is the seed-reproducibility contract:
// two runs of the same scenario with the same seed produce byte-identical
// report JSON.
func TestLifetimeDeterministicReports(t *testing.T) {
	scenarios := GoldenShort()
	if !raceEnabled {
		scenarios = append(scenarios, ShortestScenario())
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			a, err := Run(sc)
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			b, err := Run(sc)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			ja, err := a.JSON()
			if err != nil {
				t.Fatal(err)
			}
			jb, err := b.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ja, jb) {
				t.Fatalf("same seed produced different reports:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", ja, jb)
			}
		})
	}
}

// TestLifetimeSeedChangesTrajectory guards against the opposite failure:
// a seed that does not reach the fault-injection path would make the
// determinism test vacuous.
func TestLifetimeSeedChangesTrajectory(t *testing.T) {
	if raceEnabled {
		t.Skip("skipped under race: golden determinism tests cover the engine")
	}
	sc := GoldenShort()[0]
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed++
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := a.JSON()
	jb, _ := b.JSON()
	if bytes.Equal(ja, jb) {
		t.Fatalf("different seeds produced identical reports; fault injection not engaged")
	}
}

// TestLifetimePolicyRetunes checks the cross-layer hook: the wear ladder
// must move a nominal partition to max-read once the biography crosses
// its wear threshold.
func TestLifetimePolicyRetunes(t *testing.T) {
	if raceEnabled {
		t.Skip("full read-archive biography is minutes under race")
	}
	sc := ReadIntensiveArchive()
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	first := rep.Phases[0].Partitions[0].Mode
	if first != sim.ModeNominal.String() {
		t.Fatalf("archive started in %q, want nominal", first)
	}
	last := rep.Phases[len(rep.Phases)-1].Partitions[0].Mode
	if last != sim.ModeMaxRead.String() {
		t.Fatalf("archive ended in %q, want max-read (wear %g crossed the ladder)",
			last, rep.Totals.FinalWearMax)
	}
}

// TestLifetimeRetirementEngages checks that the write-heavy biography
// actually sheds worn blocks, and that the spare-block guard leaves the
// partition functional afterwards (the run itself would fail on any
// write error).
func TestLifetimeRetirementEngages(t *testing.T) {
	if raceEnabled {
		t.Skip("full write-logging biography is minutes under race")
	}
	rep, err := Run(WriteHeavyLogging())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.RetiredBlocks == 0 {
		t.Fatalf("wear ceiling %g never retired a block (final wear %g)",
			WriteHeavyLogging().WearCeiling, rep.Totals.FinalWearMax)
	}
}

// TestLifetimeScrubberEngages checks the background refresh loop did
// real work in at least one catalog scenario.
func TestLifetimeScrubberEngages(t *testing.T) {
	if raceEnabled {
		t.Skip("full write-logging biography is minutes under race")
	}
	rep, err := Run(WriteHeavyLogging())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.PagesScrubbed == 0 {
		t.Fatalf("scrubber never moved a page over the whole biography")
	}
}

// TestScenarioValidation exercises the scenario validator's rejections.
func TestScenarioValidation(t *testing.T) {
	base := GoldenShort()[0]
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"empty name", func(s *Scenario) { s.Name = "" }},
		{"no dies", func(s *Scenario) { s.Dies = 0 }},
		{"no partitions", func(s *Scenario) { s.Partitions = nil }},
		{"tiny partition", func(s *Scenario) { s.Partitions[0].Blocks = 1 }},
		{"oversubscribed", func(s *Scenario) { s.Partitions[0].Blocks = 99 }},
		{"no phases", func(s *Scenario) { s.Phases = nil }},
		{"bad read fraction", func(s *Scenario) { s.Phases[0].ReadFraction = 1.5 }},
		{"negative stress", func(s *Scenario) { s.Phases[0].BakeHours = -1 }},
		{"bad scrub threshold", func(s *Scenario) { s.Scrub.FractionOfT = 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := base
			sc.Partitions = append([]PartitionConfig(nil), base.Partitions...)
			sc.Phases = append([]Phase(nil), base.Phases...)
			tc.mutate(&sc)
			if err := sc.Validate(); err == nil {
				t.Fatalf("validator accepted %s", tc.name)
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("validator rejected a catalog fixture: %v", err)
	}
}

// TestCorrectedHist pins the histogram bucketing.
func TestCorrectedHist(t *testing.T) {
	var h CorrectedHist
	for _, c := range []int{0, 1, 2, 3, 4, 7, 8, 63, 64, 1000} {
		h.Add(c)
	}
	want := CorrectedHist{1, 1, 2, 2, 1, 0, 1, 2}
	if h != want {
		t.Fatalf("hist = %v, want %v", h, want)
	}
	labels := h.Labels()
	if labels[0] != "0" || labels[2] != "2-3" || labels[7] != "64+" {
		t.Fatalf("labels = %v", labels)
	}
}

// BenchmarkLifetimeSmoke runs the shortest catalog scenario end to end —
// the number CI archives as BENCH_lifetime.json to track the soak
// harness's wall cost across PRs.
func BenchmarkLifetimeSmoke(b *testing.B) {
	sc := ShortestScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Totals.CorrectedBits), "corrected_bits")
	}
}
