//go:build !race

package lifetime

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
