package lifetime

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"xlnand/internal/ftl"
	"xlnand/internal/obs"
	"xlnand/internal/sim"
)

// fleetSeedStride decorrelates per-drive scenario seeds (splitmix64's
// second-round multiplier — a different odd constant than the
// dispatcher's per-die stride, so drive streams and die streams can
// never alias).
const fleetSeedStride = 0xbf58476d1ce4e5b9

// FleetScenario drives N identical drives through a shared phase
// schedule: every drive plays the Base biography with its own seed
// (Seed + drive*fleetSeedStride), so the fleet ages in lock-step while
// each drive's fault history stays statistically independent.
type FleetScenario struct {
	Name        string
	Description string
	// Seed is the fleet master seed; drive i runs Base with
	// Seed + i*fleetSeedStride (Base.Seed is ignored).
	Seed   uint64
	Drives int
	// Workers caps concurrently running drive engines (0 = min(Drives, 16)).
	Workers int
	Base    Scenario
	// FailStops kills drives mid-biography: each entry truncates one
	// drive's run after the named phase, modelling a fail-stop fault.
	// The dead drive contributes nothing to later phases and is marked
	// "dead" in the merged result.
	FailStops []FleetFailStop
	// Trace, when non-nil, collects every drive's virtual-time spans:
	// drive i becomes trace process i ("drive i"), with its dispatcher,
	// FTL and phase threads inside. The export is byte-identical per
	// seed regardless of worker scheduling (processes serialize sorted
	// by pid; each drive appends only to its own streams).
	Trace *obs.Tracer
}

// FleetFailStop is one scheduled mid-biography drive death.
type FleetFailStop struct {
	// Drive is the slot to kill (0-based fleet index).
	Drive int
	// AfterPhase is the last phase the drive completes (0-based index
	// into Base.Phases); the drive fail-stops before the next one.
	AfterPhase int
}

// Validate rejects malformed fleet scenarios.
func (fs FleetScenario) Validate() error {
	if fs.Name == "" {
		return fmt.Errorf("lifetime: fleet scenario needs a name")
	}
	if fs.Drives < 1 {
		return fmt.Errorf("lifetime: fleet %s: need >= 1 drive, got %d", fs.Name, fs.Drives)
	}
	if fs.Workers < 0 {
		return fmt.Errorf("lifetime: fleet %s: negative worker cap", fs.Name)
	}
	killed := make(map[int]bool, len(fs.FailStops))
	for _, k := range fs.FailStops {
		if k.Drive < 0 || k.Drive >= fs.Drives {
			return fmt.Errorf("lifetime: fleet %s: fail-stop drive %d out of range [0,%d)", fs.Name, k.Drive, fs.Drives)
		}
		if k.AfterPhase < 0 || k.AfterPhase >= len(fs.Base.Phases) {
			return fmt.Errorf("lifetime: fleet %s: fail-stop after phase %d, scenario has %d", fs.Name, k.AfterPhase, len(fs.Base.Phases))
		}
		if killed[k.Drive] {
			return fmt.Errorf("lifetime: fleet %s: drive %d fail-stops twice", fs.Name, k.Drive)
		}
		killed[k.Drive] = true
	}
	return fs.Base.Validate()
}

// FleetPhase is one shared schedule slot merged across every drive:
// counters sum, wear takes the fleet-wide extremes.
type FleetPhase struct {
	Name               string  `json:"name"`
	HostReads          int     `json:"host_reads"`
	HostWrites         int     `json:"host_writes"`
	CorrectedBits      int     `json:"corrected_bits"`
	UncorrectableReads int     `json:"uncorrectable_reads"`
	LostBits           int64   `json:"lost_bits"`
	Retries            int     `json:"retries"`
	RecoveredReads     int     `json:"recovered_reads"`
	SoftSenses         int     `json:"soft_senses"`
	SoftRecovered      int     `json:"soft_recovered"`
	PagesScrubbed      int     `json:"pages_scrubbed"`
	RetiredBlocks      int     `json:"retired"`
	WearMin            float64 `json:"wear_min"`
	WearMax            float64 `json:"wear_max"`
	UBER               float64 `json:"uber"`
}

// FleetDrive is one drive's compact slice of the fleet result.
type FleetDrive struct {
	Drive  int    `json:"drive"`
	Seed   uint64 `json:"seed"`
	Totals Totals `json:"totals"`
	// Health is "dead" for a fail-stopped drive (empty = healthy);
	// PhasesRun counts the phases it completed before dying (always
	// >= 1 for a killed drive, omitted for healthy ones).
	Health    string `json:"health,omitempty"`
	PhasesRun int    `json:"phases_run,omitempty"`
}

// FleetResult is the deterministic merged output of a fleet run: the
// per-drive reports reduced to totals (in drive-index order) plus the
// shared phase series and fleet-wide climate.
type FleetResult struct {
	Name        string       `json:"fleet"`
	Description string       `json:"description"`
	Scenario    string       `json:"scenario"`
	Seed        uint64       `json:"seed"`
	Drives      int          `json:"drives"`
	PerDrive    []FleetDrive `json:"per_drive"`
	Phases      []FleetPhase `json:"phases"`
	Totals      Totals       `json:"totals"`
}

// JSON serialises the fleet result with stable formatting: two runs of
// the same fleet scenario and seed are byte-identical.
func (r *FleetResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteTable renders a human-readable fleet phase table.
func (r *FleetResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "fleet %s: %d x %s (seed %d)\n", r.Name, r.Drives, r.Scenario, r.Seed)
	fmt.Fprintf(w, "%-24s %9s %9s %11s %9s %8s %8s %8s %9s\n",
		"phase", "reads", "writes", "corrected", "uncorr", "retry", "recov", "soft", "UBER")
	for _, ph := range r.Phases {
		fmt.Fprintf(w, "%-24s %9d %9d %11d %9d %8d %8d %8d %9.2e\n",
			ph.Name, ph.HostReads, ph.HostWrites, ph.CorrectedBits, ph.UncorrectableReads,
			ph.Retries, ph.RecoveredReads, ph.SoftRecovered, ph.UBER)
	}
	t := r.Totals
	fmt.Fprintf(w, "%-24s %9d %9d %11d %9d %8d %8d %8d %9.2e\n",
		"TOTAL", t.HostReads, t.HostWrites, t.CorrectedBits, t.UncorrectableReads,
		t.Retries, t.RecoveredReads, t.SoftRecovered, t.UBER)
	for _, d := range r.PerDrive {
		if d.Health == "dead" {
			fmt.Fprintf(w, "drive %03d: fail-stopped after %d/%d phases\n",
				d.Drive, d.PhasesRun, len(r.Phases))
		}
	}
}

// RunFleet plays a fleet scenario: up to Workers drive engines run
// concurrently, each a fully independent stack, and the merge happens
// only after every drive finishes — strictly in drive-index order, so
// the result is byte-identical per seed regardless of scheduling.
func RunFleet(fs FleetScenario) (*FleetResult, error) {
	if err := fs.Validate(); err != nil {
		return nil, err
	}
	workers := fs.Workers
	if workers == 0 {
		workers = fs.Drives
		if workers > 16 {
			workers = 16
		}
	}
	killAfter := make(map[int]int, len(fs.FailStops))
	for _, k := range fs.FailStops {
		killAfter[k.Drive] = k.AfterPhase
	}
	reports := make([]*Report, fs.Drives)
	errs := make([]error, fs.Drives)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < fs.Drives; i++ {
		wg.Add(1)
		// Trace processes are minted on the main goroutine so drive 0's
		// proc exists before any worker races to register threads on it.
		var proc *obs.Proc
		if fs.Trace != nil {
			proc = fs.Trace.Process(int32(i), fmt.Sprintf("drive %d", i))
		}
		go func(idx int, proc *obs.Proc) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sc := fs.Base
			sc.Seed = fs.Seed + uint64(idx)*fleetSeedStride
			sc.Name = fmt.Sprintf("%s/drive%03d", fs.Name, idx)
			sc.Trace = proc
			if after, ok := killAfter[idx]; ok {
				// A fail-stopped drive plays its biography only up to
				// the kill point; truncating the schedule IS the fault
				// model — nothing it would have done afterwards exists.
				sc.Phases = sc.Phases[:after+1]
			}
			reports[idx], errs[idx] = Run(sc)
		}(i, proc)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("lifetime: fleet %s: drive %d: %w", fs.Name, i, err)
		}
	}
	return mergeFleet(fs, reports), nil
}

// mergeFleet folds per-drive reports into the fleet result. Reports
// arrive indexed by drive, never by completion order.
func mergeFleet(fs FleetScenario, reports []*Report) *FleetResult {
	res := &FleetResult{
		Name:        fs.Name,
		Description: fs.Description,
		Scenario:    fs.Base.Name,
		Seed:        fs.Seed,
		Drives:      fs.Drives,
		Phases:      make([]FleetPhase, len(fs.Base.Phases)),
	}
	for pi, ph := range fs.Base.Phases {
		res.Phases[pi].Name = ph.Name
	}
	var bitsRead, lostBits int64
	seen := make([]int, len(res.Phases))
	for di, rep := range reports {
		fd := FleetDrive{Drive: di, Seed: rep.Seed, Totals: rep.Totals}
		if len(rep.Phases) < len(res.Phases) {
			// A truncated report means RunFleet fail-stopped this drive:
			// it completed only its own phases, then died.
			fd.Health = "dead"
			fd.PhasesRun = len(rep.Phases)
		}
		res.PerDrive = append(res.PerDrive, fd)
		for pi := range rep.Phases {
			ph := &rep.Phases[pi]
			m := &res.Phases[pi]
			m.HostReads += ph.HostReads
			m.HostWrites += ph.HostWrites
			m.CorrectedBits += ph.CorrectedBits
			m.UncorrectableReads += ph.UncorrectableReads
			m.LostBits += ph.LostBits
			m.Retries += ph.Retries
			m.RecoveredReads += ph.RecoveredReads
			m.SoftSenses += ph.SoftSenses
			m.SoftRecovered += ph.SoftRecovered
			m.PagesScrubbed += ph.PagesScrubbed
			m.RetiredBlocks += ph.RetiredBlocks
			if seen[pi] == 0 || ph.WearMin < m.WearMin {
				m.WearMin = ph.WearMin
			}
			if ph.WearMax > m.WearMax {
				m.WearMax = ph.WearMax
			}
			seen[pi]++
		}
		t := &res.Totals
		rt := rep.Totals
		t.HostReads += rt.HostReads
		t.HostWrites += rt.HostWrites
		t.BitsRead += rt.BitsRead
		t.CorrectedBits += rt.CorrectedBits
		t.UncorrectableReads += rt.UncorrectableReads
		t.LostBits += rt.LostBits
		t.Retries += rt.Retries
		t.RecoveredReads += rt.RecoveredReads
		t.RelocRetries += rt.RelocRetries
		t.DeepRecovered += rt.DeepRecovered
		t.SoftSenses += rt.SoftSenses
		t.SoftRecovered += rt.SoftRecovered
		t.ScrubPasses += rt.ScrubPasses
		t.PagesScrubbed += rt.PagesScrubbed
		t.GCMoves += rt.GCMoves
		t.Erases += rt.Erases
		t.RetiredBlocks += rt.RetiredBlocks
		if rt.FinalWearMax > t.FinalWearMax {
			t.FinalWearMax = rt.FinalWearMax
		}
		bitsRead += rt.BitsRead
		lostBits += rt.LostBits
	}
	// Per-phase and fleet UBER recompute from merged counts rather than
	// averaging per-drive rates.
	for pi := range res.Phases {
		var phBits, phLost int64
		for _, rep := range reports {
			if pi >= len(rep.Phases) {
				continue // drive fail-stopped before this phase
			}
			phBits += rep.Phases[pi].BitsRead
			phLost += rep.Phases[pi].LostBits
		}
		if phBits > 0 {
			res.Phases[pi].UBER = float64(phLost) / float64(phBits)
		}
	}
	if bitsRead > 0 {
		res.Totals.UBER = float64(lostBits) / float64(bitsRead)
	}
	return res
}

// FleetSmoke is the CI fleet scenario: sixteen drives of a tiny
// two-phase biography that still crosses an aging step and a scrub
// pass per drive — small enough for the race detector, wide enough to
// exercise the concurrent merge.
func FleetSmoke() FleetScenario {
	return FleetScenario{
		Name:        "fleet-smoke",
		Description: "16-drive smoke fleet: fill + aged stream per drive",
		Seed:        31337,
		Drives:      16,
		Base:        fleetBase(),
	}
}

// FleetSoak is the hundreds-of-drives catalog scenario the word-parallel
// kernels exist for: 128 drives play a compressed three-phase biography
// (fill, mid-life churn, end-of-life audit) concurrently, with three
// scheduled fail-stops standing in for the drive deaths a parity layer
// would absorb at this fleet width. The merge is byte-deterministic per
// seed — TestFleetSoakDeterminism pins it — and the run is sized so a
// single soak completes in tens of seconds on the fast read path.
func FleetSoak() FleetScenario {
	return FleetScenario{
		Name:        "fleet-soak",
		Description: "128-drive parity-fleet soak: compressed fill/mid-life/EOL biography per drive, three mid-life fail-stops",
		Seed:        90125,
		Drives:      128,
		Base:        soakBase(),
		FailStops: []FleetFailStop{
			{Drive: 17, AfterPhase: 0},
			{Drive: 63, AfterPhase: 1},
			{Drive: 101, AfterPhase: 1},
		},
	}
}

// soakBase is the compressed per-drive biography of the soak fleet: the
// golden-stream shape extended by an end-of-life audit phase, so every
// drive crosses two aging steps and a retention bake while staying small
// enough that 128 of them finish quickly.
func soakBase() Scenario {
	return Scenario{
		Name:        "soak-base",
		Description: "compressed soak biography: fill, mid-life churn, end-of-life audit",
		Dies:        1, BlocksPerDie: 3,
		Partitions:   []PartitionConfig{{Name: "p0", Blocks: 3, Mode: sim.ModeNominal, WorkingSet: 64}},
		Scrub:        ftl.ScrubPolicy{FractionOfT: 0.3},
		ScrubEvery:   60,
		MaxUBER:      1e-8,
		SafetyMargin: 1.7,
		Phases: []Phase{
			{Name: "fill", Ops: 70, ReadFraction: 0.2},
			{Name: "mid-life", AgeCycles: 2e5, BakeHours: 300, Ops: 80, ReadFraction: 0.6},
			{Name: "eol-audit", AgeCycles: 3e5, BakeHours: 200, Ops: 70, ReadFraction: 0.9},
		},
	}
}

// fleetBase is the per-drive biography fleet scenarios share: a
// compact fill + aged-stream pair (the golden-stream shape, reseeded
// per drive by RunFleet).
func fleetBase() Scenario {
	return Scenario{
		Name:        "fleet-base",
		Description: "per-drive fleet biography: fill, then aged streaming reads",
		Dies:        1, BlocksPerDie: 3,
		Partitions:   []PartitionConfig{{Name: "p0", Blocks: 3, Mode: sim.ModeNominal, WorkingSet: 64}},
		Scrub:        ftl.ScrubPolicy{FractionOfT: 0.3},
		ScrubEvery:   60,
		MaxUBER:      1e-8,
		SafetyMargin: 1.7,
		Phases: []Phase{
			{Name: "fill", Ops: 90, ReadFraction: 0.2},
			{Name: "aged-stream", AgeCycles: 2e5, BakeHours: 300, Ops: 110, ReadFraction: 0.9},
		},
	}
}
