package lifetime

import "xlnand/internal/sim"

// Observation is what the engine measured about one partition during a
// phase — the evidence a cross-layer policy retunes from. All quantities
// are measurements of the real stack (decoder feedback, wear counters),
// not model evaluations, mirroring the paper's in-situ adaptation loop.
type Observation struct {
	Partition string
	// Mode is the partition's current service level.
	Mode sim.Mode
	// Phase indexes the just-finished phase.
	Phase int
	// MaxWear is the highest program/erase count across the partition's
	// blocks.
	MaxWear float64
	// CorrectedPerKB is the phase's corrected raw bit errors per KB of
	// data read (0 when the phase read nothing).
	CorrectedPerKB float64
	// UncorrectableReads counts the partition's decode failures so far
	// (cumulative over the run).
	UncorrectableReads int
	// RetriesPerRead is the phase's average read-recovery ladder depth:
	// re-senses per read across the partition's traffic (0 when every
	// read decoded on its first sense). It is the latency face of the
	// error climate — a partition living on the ladder is paying tR,
	// bus and codec several times per read.
	RetriesPerRead float64
	// RecoveredReads counts this phase's reads that only decoded after
	// at least one ladder retry.
	RecoveredReads int
	// RelocRetries counts the ladder re-senses this phase's FTL
	// relocation reads paid (GC, scrub, retirement, deep-retry walks)
	// — retry climate the host path never sees but the timeline does.
	RelocRetries int
}

// Policy retunes a partition's service level between phases. Retune
// returns the mode the partition should use for the next phase;
// returning Observation.Mode keeps it unchanged. Implementations must be
// deterministic functions of the observation — the engine's
// reproducibility contract extends through the policy.
type Policy interface {
	Retune(Observation) sim.Mode
}

// WearLadder is the default cross-layer lifetime policy, walking the
// paper's trade-off as the measured error climate degrades:
//
//   - any decode failure, a corrected-error density at or above
//     MinUBERCorrectedPerKB, or an average retry depth at or above
//     MinUBERRetriesPerRead, escalates to min-UBER service (maximum
//     reliability margin: DV programming under the SV-sized capability);
//   - otherwise, wear at or above MaxReadAtCycles moves to max-read
//     (DV programming with the capability relaxed to the target — the
//     ≈30% read-throughput recovery at end of life);
//   - otherwise the mode is left alone.
type WearLadder struct {
	// MaxReadAtCycles switches to ModeMaxRead at this wear (0 disables).
	MaxReadAtCycles float64
	// MinUBERCorrectedPerKB escalates to ModeMinUBER at this corrected
	// density (0 disables).
	MinUBERCorrectedPerKB float64
	// MinUBERRetriesPerRead escalates to ModeMinUBER once the average
	// recovery-ladder depth per read reaches this value (0 disables) —
	// the retry-budget side of the trade-off: a partition paying the
	// ladder on ordinary reads is burning its service level on
	// re-senses, and DV programming buys the margin back outright.
	MinUBERRetriesPerRead float64
}

// DefaultWearLadder engages max-read at 10^5 cycles (where the nominal
// decode latency begins to dominate reads), escalates to min-UBER at
// 150 corrected bits per KB read (half the worst-case t=65 budget per
// 4 KB codeword arriving on every page) or when reads average 3/4 of a
// ladder step each.
func DefaultWearLadder() Policy {
	return WearLadder{MaxReadAtCycles: 1e5, MinUBERCorrectedPerKB: 150, MinUBERRetriesPerRead: 0.75}
}

// Retune implements Policy.
func (w WearLadder) Retune(o Observation) sim.Mode {
	if o.UncorrectableReads > 0 ||
		(w.MinUBERCorrectedPerKB > 0 && o.CorrectedPerKB >= w.MinUBERCorrectedPerKB) ||
		(w.MinUBERRetriesPerRead > 0 && o.RetriesPerRead >= w.MinUBERRetriesPerRead) {
		return sim.ModeMinUBER
	}
	if w.MaxReadAtCycles > 0 && o.MaxWear >= w.MaxReadAtCycles && o.Mode == sim.ModeNominal {
		return sim.ModeMaxRead
	}
	return o.Mode
}
