package lifetime

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"time"

	"xlnand/internal/controller"
	"xlnand/internal/dispatch"
	"xlnand/internal/ftl"
	"xlnand/internal/obs"
	"xlnand/internal/sim"
	"xlnand/internal/stats"
)

// Trace thread ids within a drive's trace process. The dispatcher owns
// tids 1 (bus), 2 (codec) and 10+ (dies); the phase annotator and the
// FTL maintenance thread take the gaps.
const (
	phaseTraceTid = 0
	ftlTraceTid   = 3
)

// InvariantError reports a violated end-to-end invariant. The scenario
// name and seed reproduce the failure exactly: rerunning the scenario
// with the same seed replays the identical operation and fault-injection
// sequence.
type InvariantError struct {
	Scenario string
	Seed     uint64
	Phase    string
	Detail   string
}

// Error implements the error interface.
func (e *InvariantError) Error() string {
	return fmt.Sprintf("lifetime: invariant violated in scenario %q phase %q (reproduce with -scenario %s -seed %d): %s",
		e.Scenario, e.Phase, e.Scenario, e.Seed, e.Detail)
}

// partState is the engine's oracle for one partition: the version of
// every logical page it has written (page contents derive
// deterministically from scenario seed, partition, lpa and version, so
// the oracle holds no data — only counters).
type partState struct {
	idx int
	cfg PartitionConfig
	ws  int // working-set size in pages

	versions []int // per-lpa write count (0 = never written)
	written  []int // lpas written at least once, in first-write order

	uncorrectable int // cumulative decode failures

	// per-phase counters, reset by beginPhase
	reads, writes int
	allReads      int // every verified read (host + verify + refresh)
	readBits      int64
	corrected     int
	retries       int
	recovered     int
}

// engine runs one scenario.
type engine struct {
	sc   Scenario
	env  sim.Env
	disp *dispatch.Dispatcher
	f    *ftl.FTL
	geo  dispatch.Geometry
	rng  *stats.RNG

	parts     []*partState
	pageBytes int
	scratch   []byte // expected-content buffer

	trace *obs.Stream // phase-annotation spans (nil = tracing disabled)

	opsSinceScrub int
	prevWear      [][]float64 // previous phase's (die, block) cycles

	// per-phase performance accumulators
	readBytes, writeBytes int64
	readTime, writeTime   time.Duration
}

// Run plays a scenario from fresh silicon to end of life and returns its
// report. Any invariant violation aborts the run with an
// *InvariantError carrying the reproducing seed.
func Run(sc Scenario) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	env := sim.DefaultEnv()
	if sc.Env != nil {
		env = *sc.Env
	}
	ctrlCfg := controller.DefaultConfig()
	switch {
	case sc.ReadRetry > 0:
		ctrlCfg.MaxRetries = sc.ReadRetry
	case sc.ReadRetry < 0:
		ctrlCfg.MaxRetries = 0 // single-shot read path
	}
	disp, err := dispatch.New(dispatch.Config{
		Dies:         sc.Dies,
		BlocksPerDie: sc.BlocksPerDie,
		Seed:         sc.Seed,
		Env:          env,
		Controller:   ctrlCfg,
		Family:       sc.Codec,
		Trace:        sc.Trace,
	})
	if err != nil {
		return nil, err
	}
	defer disp.Close()

	specs := make([]ftl.PartitionSpec, len(sc.Partitions))
	for i, pc := range sc.Partitions {
		specs[i] = ftl.PartitionSpec{Name: pc.Name, Blocks: pc.Blocks, Mode: pc.Mode}
	}
	f, err := ftl.New(disp, env, specs)
	if err != nil {
		return nil, err
	}
	if sc.ReadRetry < 0 {
		// The single-shot ablation must be the pre-recovery pipeline
		// end to end: no FTL deep-retry rescue either.
		f.SetDeepRetry(false)
	}
	// The disturb-aware retry guard rides on the scrub policy's knobs (a
	// zero DisturbRetryBudget leaves it disabled).
	f.SetRetryGuard(sc.Scrub)

	e := &engine{
		sc:        sc,
		env:       env,
		disp:      disp,
		f:         f,
		geo:       disp.Geometry(),
		rng:       stats.NewRNG(sc.Seed),
		pageBytes: disp.Geometry().PageDataBytes,
	}
	e.scratch = make([]byte, e.pageBytes)
	if sc.Trace != nil {
		sc.Trace.Thread(phaseTraceTid, "phase")
		e.trace = sc.Trace.Stream()
		sc.Trace.Thread(ftlTraceTid, "ftl")
		f.SetTrace(sc.Trace.Stream(), ftlTraceTid)
	}
	if sc.SafetyMargin > 0 {
		for die := 0; die < sc.Dies; die++ {
			if err := disp.WithController(die, func(c *controller.Controller) {
				c.Manager().SafetyMargin = sc.SafetyMargin
			}); err != nil {
				return nil, err
			}
		}
	}
	for i, pc := range sc.Partitions {
		p, err := f.Partition(pc.Name)
		if err != nil {
			return nil, err
		}
		ws := pc.WorkingSet
		if ws == 0 {
			ws = p.Capacity() * 3 / 4
		}
		if ws > p.Capacity() {
			return nil, fmt.Errorf("lifetime: %s: partition %q working set %d exceeds capacity %d",
				sc.Name, pc.Name, ws, p.Capacity())
		}
		e.parts = append(e.parts, &partState{
			idx: i, cfg: pc, ws: ws,
			versions: make([]int, p.Capacity()),
		})
	}
	return e.run()
}

func (e *engine) invariantf(phase, format string, args ...any) error {
	return &InvariantError{
		Scenario: e.sc.Name, Seed: e.sc.Seed, Phase: phase,
		Detail: fmt.Sprintf(format, args...),
	}
}

// run is the top-level phase loop.
func (e *engine) run() (*Report, error) {
	rep := &Report{
		Scenario:     e.sc.Name,
		Description:  e.sc.Description,
		Seed:         e.sc.Seed,
		Dies:         e.sc.Dies,
		BlocksPerDie: e.sc.BlocksPerDie,
	}
	var err error
	if e.prevWear, err = e.wearSnapshot(); err != nil {
		return nil, err
	}
	for phi, ph := range e.sc.Phases {
		pr, err := e.runPhase(phi, ph)
		if err != nil {
			return nil, err
		}
		rep.Phases = append(rep.Phases, *pr)
	}
	e.total(rep)
	if rep.Totals.UBER > e.sc.MaxUBER {
		last := e.sc.Phases[len(e.sc.Phases)-1].Name
		return nil, e.invariantf(last, "run UBER %.3e exceeds scenario ceiling %.3e (%d bits lost over %d read)",
			rep.Totals.UBER, e.sc.MaxUBER, rep.Totals.LostBits, rep.Totals.BitsRead)
	}
	return rep, nil
}

// runPhase applies the phase's stress, plays its traffic, runs
// maintenance (scrub cadence, retirement), checks invariants and fills
// the phase report.
func (e *engine) runPhase(phi int, ph Phase) (*PhaseReport, error) {
	pr := &PhaseReport{
		Name:         ph.Name,
		AgeCycles:    ph.AgeCycles,
		BakeHours:    ph.BakeHours,
		DisturbReads: ph.DisturbReads,
	}
	phaseStart := e.disp.Now()
	// Stress first: the phase's traffic sees the aged medium.
	if ph.AgeCycles > 0 {
		if err := e.agePhased(ph.Name, ph.AgeCycles, pr); err != nil {
			return nil, err
		}
	}
	if ph.AgeCyclesByDie != nil {
		for die, delta := range ph.AgeCyclesByDie {
			if delta > 0 {
				if err := e.agePhasedDie(ph.Name, die, delta, pr); err != nil {
					return nil, err
				}
			}
		}
	}
	if ph.BakeHours > 0 {
		if err := e.disp.AdvanceTime(ph.BakeHours); err != nil {
			return nil, err
		}
	}
	if ph.DisturbReads > 0 {
		if err := e.disturb(ph.DisturbReads); err != nil {
			return nil, err
		}
	}

	// Reset per-phase accumulators and snapshot maintenance baselines.
	e.readBytes, e.writeBytes = 0, 0
	e.readTime, e.writeTime = 0, 0
	type baseline struct{ gc, erases, deep, relocRetries int }
	base := make([]baseline, len(e.parts))
	for i, ps := range e.parts {
		p, err := e.f.Partition(ps.cfg.Name)
		if err != nil {
			return nil, err
		}
		base[i] = baseline{p.GCMoves, p.Erases, p.DeepRecovered, p.RelocRetries}
		ps.reads, ps.writes, ps.readBits, ps.corrected = 0, 0, 0, 0
		ps.allReads, ps.retries, ps.recovered = 0, 0, 0
	}
	start := e.disp.Now()

	// Traffic with the scrubber on its cadence.
	for op := 0; op < ph.Ops; op++ {
		if err := e.step(ph, pr); err != nil {
			return nil, err
		}
		e.opsSinceScrub++
		if e.sc.ScrubEvery > 0 && e.opsSinceScrub >= e.sc.ScrubEvery {
			e.opsSinceScrub = 0
			if err := e.scrubPass(ph.Name, pr); err != nil {
				return nil, err
			}
		}
	}
	// End-of-phase scrub heals the phase's accumulated stress before the
	// next fast-forward compounds it.
	if e.sc.ScrubEvery > 0 {
		if err := e.scrubPass(ph.Name, pr); err != nil {
			return nil, err
		}
	}
	// Retirement by wear ceiling.
	if e.sc.WearCeiling > 0 {
		for _, ps := range e.parts {
			n, err := e.f.RetireWorn(ps.cfg.Name, e.sc.WearCeiling)
			if err != nil {
				return nil, err
			}
			pr.RetiredBlocks += n
		}
	}

	// Performance on the modelled timeline.
	pr.MakespanMS = (e.disp.Now() - start).Seconds() * 1e3
	if e.readTime > 0 {
		pr.ReadMBps = float64(e.readBytes) / e.readTime.Seconds() / 1e6
	}
	if e.writeTime > 0 {
		pr.WriteMBps = float64(e.writeBytes) / e.writeTime.Seconds() / 1e6
	}

	// Wear: snapshot, monotonicity invariant, global min/max.
	wear, err := e.wearSnapshot()
	if err != nil {
		return nil, err
	}
	pr.WearMin, pr.WearMax = wear[0][0], wear[0][0]
	for die := range wear {
		for blk := range wear[die] {
			w := wear[die][blk]
			if w < e.prevWear[die][blk] {
				return nil, e.invariantf(ph.Name, "wear of die %d block %d went backwards: %g -> %g",
					die, blk, e.prevWear[die][blk], w)
			}
			if w < pr.WearMin {
				pr.WearMin = w
			}
			if w > pr.WearMax {
				pr.WearMax = w
			}
		}
	}
	e.prevWear = wear

	// Per-die calibration-cache state: the read-reference step each
	// die's manager predicts for its own most-worn blocks — the
	// observable that asymmetric-wear scenarios pin (diverged caches)
	// and uniform ones keep in lockstep.
	pr.CalibSteps = make([]int, e.geo.Dies)
	for die := 0; die < e.geo.Dies; die++ {
		maxWear := 0.0
		for _, w := range wear[die] {
			if w > maxWear {
				maxWear = w
			}
		}
		die := die
		if err := e.disp.WithController(die, func(c *controller.Controller) {
			pr.CalibSteps[die] = c.Manager().PredictStep(maxWear)
		}); err != nil {
			return nil, err
		}
	}

	// Per-partition slice, observation and policy retune.
	for i, ps := range e.parts {
		p, err := e.f.Partition(ps.cfg.Name)
		if err != nil {
			return nil, err
		}
		wmin, wmax, err := e.f.WearSpread(ps.cfg.Name)
		if err != nil {
			return nil, err
		}
		correctedPerKB := 0.0
		if ps.readBits > 0 {
			correctedPerKB = float64(ps.corrected) * 8192 / float64(ps.readBits)
		}
		mode, err := e.f.ModeOf(ps.cfg.Name)
		if err != nil {
			return nil, err
		}
		retriesPerRead := 0.0
		if ps.allReads > 0 {
			retriesPerRead = float64(ps.retries) / float64(ps.allReads)
		}
		if e.sc.Policy != nil {
			next := e.sc.Policy.Retune(Observation{
				Partition:          ps.cfg.Name,
				Mode:               mode,
				Phase:              phi,
				MaxWear:            wmax,
				CorrectedPerKB:     correctedPerKB,
				UncorrectableReads: ps.uncorrectable,
				RetriesPerRead:     retriesPerRead,
				RecoveredReads:     ps.recovered,
				RelocRetries:       p.RelocRetries - base[i].relocRetries,
			})
			if next != mode {
				if err := e.f.SetMode(ps.cfg.Name, next); err != nil {
					return nil, err
				}
				mode = next
			}
		}
		pr.Partitions = append(pr.Partitions, PartitionPhase{
			Name:           ps.cfg.Name,
			Mode:           mode.String(),
			Reads:          ps.reads,
			Writes:         ps.writes,
			CorrectedBits:  ps.corrected,
			CorrectedPerKB: correctedPerKB,
			Uncorrectable:  ps.uncorrectable,
			Retries:        ps.retries,
			Recovered:      ps.recovered,
			WearMin:        wmin,
			WearMax:        wmax,
			Retired:        p.Retired(),
			DeepRecovered:  p.DeepRecovered,
		})
		pr.GCMoves += p.GCMoves - base[i].gc
		pr.Erases += p.Erases - base[i].erases
		pr.DeepRecovered += p.DeepRecovered - base[i].deep
		pr.RelocRetries += p.RelocRetries - base[i].relocRetries
		pr.PendingScrubs += p.PendingScrubs()
	}
	if pr.BitsRead > 0 {
		pr.UBER = float64(pr.LostBits) / float64(pr.BitsRead)
	}
	// One span per biography phase on the dispatcher's virtual clock,
	// named after the phase, wrapping its stress and traffic segments.
	e.trace.Span2(phaseTraceTid, ph.Name, phaseStart, e.disp.Now()-phaseStart,
		"ops", int64(ph.Ops), "reads", int64(pr.HostReads))
	return pr, nil
}

// step plays one host operation.
func (e *engine) step(ph Phase, pr *PhaseReport) error {
	ps := e.parts[e.rng.Intn(len(e.parts))]
	if len(ps.written) > 0 && e.rng.Bernoulli(ph.ReadFraction) {
		lpa := ps.written[e.rng.Intn(len(ps.written))]
		_, err := e.verifiedRead(ph.Name, ps, lpa, pr, readHost)
		return err
	}
	lpa := e.rng.Intn(ps.ws)
	ps.versions[lpa]++
	if ps.versions[lpa] == 1 {
		ps.written = append(ps.written, lpa)
	}
	wr, err := e.f.Write(ps.cfg.Name, lpa, e.content(ps, lpa, ps.versions[lpa]))
	if err != nil {
		return fmt.Errorf("lifetime: %s phase %q: host write %q/%d: %w",
			e.sc.Name, ph.Name, ps.cfg.Name, lpa, err)
	}
	pr.HostWrites++
	ps.writes++
	e.writeBytes += int64(e.pageBytes)
	e.writeTime += wr.Latency.Program
	return nil
}

// readKind labels who issued a verified read; it selects which report
// counter the read lands in, nothing else.
type readKind int

const (
	readHost    readKind = iota // host traffic (health-checked)
	readVerify                  // post-scrub heal check
	readRefresh                 // stepped-aging data refresh
)

// verifiedRead reads one live logical page, verifies it against the
// oracle and accounts reliability statistics identically for every
// caller (host traffic, scrub heal checks, aging refreshes), so the
// engine's UBER bookkeeping cannot diverge between paths. It returns
// the decoded page on success and nil after an uncorrectable read
// (which is accounted as data loss, not an error); any other failure —
// including the silent-corruption invariant — is fatal.
func (e *engine) verifiedRead(phase string, ps *partState, lpa int, pr *PhaseReport, kind readKind) ([]byte, error) {
	data, res, err := e.f.Read(ps.cfg.Name, lpa)
	bitsRead := int64(e.pageBytes) * 8
	pr.BitsRead += bitsRead
	ps.readBits += bitsRead
	ps.allReads++
	switch kind {
	case readHost:
		pr.HostReads++
		ps.reads++
	case readVerify:
		pr.VerifyReads++
	case readRefresh:
		pr.RefreshReads++
	}
	if res != nil {
		// Recovery-ladder climate: every re-sense is counted, successful
		// or not, and a read the ladder saved is a recovered read.
		pr.Retries += res.Retries
		ps.retries += res.Retries
		pr.RetryHist.Add(res.Retries)
		if err == nil && res.Retries > 0 {
			pr.RecoveredReads++
			ps.recovered++
		}
		// Soft-decision climate: component senses paid by the soft rung,
		// and reads only it could save.
		pr.SoftSenses += res.SoftSenses
		if err == nil && res.Soft {
			pr.SoftRecovered++
		}
	}
	expect := e.content(ps, lpa, ps.versions[lpa])
	if err != nil {
		if !errors.Is(err, controller.ErrUncorrectable) {
			return nil, fmt.Errorf("lifetime: %s phase %q: read %q/%d: %w",
				e.sc.Name, phase, ps.cfg.Name, lpa, err)
		}
		pr.UncorrectableReads++
		ps.uncorrectable++
		lost := bitsRead
		if res != nil && len(res.Data) == len(expect) {
			lost = int64(diffBits(res.Data, expect))
			e.readTime += res.Latency.Total()
			e.readBytes += int64(e.pageBytes)
		}
		pr.LostBits += lost
		return nil, nil
	}
	e.readTime += res.Latency.Total()
	e.readBytes += int64(e.pageBytes)
	if !bytes.Equal(data, expect) {
		if res.Retries > 0 {
			// The dedicated recovery invariant: a read the ladder
			// rescued must never return wrong data silently — a shifted
			// re-sense that "decodes" into a different codeword would be
			// worse than the loss it papers over.
			return nil, e.invariantf(phase,
				"read recovery returned wrong data silently: partition %q lpa %d version %d decoded after %d retries at offset step %d but differs from written content in %d bits",
				ps.cfg.Name, lpa, ps.versions[lpa], res.Retries, res.AppliedOffset, diffBits(data, expect))
		}
		return nil, e.invariantf(phase,
			"silent corruption: partition %q lpa %d version %d decoded successfully but differs from written content in %d bits",
			ps.cfg.Name, lpa, ps.versions[lpa], diffBits(data, expect))
	}
	pr.CorrectedBits += res.Corrected
	ps.corrected += res.Corrected
	pr.CorrectedHist.Add(res.Corrected)
	if kind == readHost && e.sc.ScrubEvery > 0 {
		if _, err := e.f.CheckReadHealth(ps.cfg.Name, lpa, res, e.sc.Scrub); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// scrubPass runs the scrubber over every partition and verifies its
// healing claim: every logical page that was live on a marked block must
// be readable (and correct) afterwards, less the losses the scrub report
// itself declared.
func (e *engine) scrubPass(phase string, pr *PhaseReport) error {
	for _, ps := range e.parts {
		name := ps.cfg.Name
		marks, err := e.f.ScrubMarks(name)
		if err != nil {
			return err
		}
		if len(marks) == 0 {
			continue
		}
		marked := make(map[int]bool, len(marks))
		for _, blk := range marks {
			marked[blk] = true
		}
		var toVerify []int
		for _, lpa := range ps.written {
			blk, err := e.f.BlockOf(name, lpa)
			if err != nil {
				continue // trimmed or lost mapping; nothing to verify
			}
			if marked[blk] {
				toVerify = append(toVerify, lpa)
			}
		}
		p, err := e.f.Partition(name)
		if err != nil {
			return err
		}
		lostBefore := p.LostPages
		srep, err := e.f.Scrub(name)
		if err != nil {
			return fmt.Errorf("lifetime: %s phase %q: scrub %q: %w", e.sc.Name, phase, name, err)
		}
		pr.ScrubPasses++
		pr.BlocksRefreshed += srep.BlocksRefreshed
		pr.PagesScrubbed += srep.PagesMoved
		// The scrub's own relocation writes can trigger GC rounds whose
		// uncorrectable reads lose pages (tracked in LostPages, not in
		// the scrub report); those losses are declared too, so the heal
		// check must not pin them on the scrubber.
		allowed := srep.Uncorrectable + (p.LostPages - lostBefore)
		before := pr.UncorrectableReads
		for _, lpa := range toVerify {
			if _, err := e.verifiedRead(phase, ps, lpa, pr, readVerify); err != nil {
				return err
			}
			if failures := pr.UncorrectableReads - before; failures > allowed {
				return e.invariantf(phase,
					"scrub of %q claimed %d unrecoverable pages but left lpa %d (and %d total) unreadable",
					name, srep.Uncorrectable, lpa, failures)
			}
		}
	}
	return nil
}

// agePhased fast-forwards wear by delta cycles in multiplicative steps,
// refreshing all live data after each step. A fast-forward compresses
// months of real operation during which the background scrubber would
// have relocated stored data many times at gradually increasing wear; a
// single giant jump would instead strand cold pages with a capability
// sized for a much younger device and read them straight into decode
// failure — a fast-forward artifact, not a behaviour of the modelled
// system. The step refreshes reproduce the gradual path: after each
// step, live pages are rewritten at the new wear (and therefore with the
// capability the reliability manager now selects), exactly as the
// maintenance loop would have done along the way.
func (e *engine) agePhased(phase string, delta float64, pr *PhaseReport) error {
	cur := 0.0
	for die := 0; die < e.geo.Dies; die++ {
		for blk := 0; blk < e.geo.BlocksPerDie; blk++ {
			c, err := e.disp.Cycles(die, blk)
			if err != nil {
				return err
			}
			if c > cur {
				cur = c
			}
		}
	}
	target := cur + delta
	for cur < target {
		next := cur * ageStepFactor
		if next < ageStepFloor {
			next = ageStepFloor
		}
		if next > target {
			next = target
		}
		if err := e.age(next - cur); err != nil {
			return err
		}
		cur = next
		if err := e.refresh(phase, pr); err != nil {
			return err
		}
	}
	return nil
}

// Aging advances at most this factor per step before a refresh, and the
// first step lands at the floor (fresh-device wear is too low for the
// factor to make progress from). The factor is bounded by the
// reliability manager's provisioning margin: the calibrated RBER grows
// roughly as cycles^0.75 near end of life, so a 1.6x cycle step raises
// RBER by ~1.45x — within the safety margin lifetime scenarios
// configure, which keeps pages written before a step decodable after it.
const (
	ageStepFactor = 1.6
	ageStepFloor  = 1e3
)

// refresh rewrites every live logical page at the device's current wear,
// verifying each against the oracle on the way through. Unreadable pages
// are data loss (counted, left in place); readable pages are rewritten
// from the decoded content, never from the oracle, so a miscorrection
// cannot be silently healed.
func (e *engine) refresh(phase string, pr *PhaseReport) error {
	for _, ps := range e.parts {
		for _, lpa := range ps.written {
			data, err := e.verifiedRead(phase, ps, lpa, pr, readRefresh)
			if err != nil {
				return err
			}
			if data == nil {
				continue // unreadable: accounted as loss, left in place
			}
			if _, err := e.f.Write(ps.cfg.Name, lpa, data); err != nil {
				return fmt.Errorf("lifetime: %s phase %q: refresh write %q/%d: %w",
					e.sc.Name, phase, ps.cfg.Name, lpa, err)
			}
			pr.RefreshedPages++
		}
	}
	return nil
}

// agePhasedDie is agePhased for ONE die — the asymmetric-wear stress.
// The same multiplicative stepping and live-data refresh discipline
// applies (refreshes span every partition, since partitions stripe over
// all dies), but only the target die's blocks advance.
func (e *engine) agePhasedDie(phase string, die int, delta float64, pr *PhaseReport) error {
	if die < 0 || die >= e.geo.Dies {
		return fmt.Errorf("lifetime: %s: aging die %d of %d", e.sc.Name, die, e.geo.Dies)
	}
	cur := 0.0
	for blk := 0; blk < e.geo.BlocksPerDie; blk++ {
		c, err := e.disp.Cycles(die, blk)
		if err != nil {
			return err
		}
		if c > cur {
			cur = c
		}
	}
	target := cur + delta
	for cur < target {
		next := cur * ageStepFactor
		if next < ageStepFloor {
			next = ageStepFloor
		}
		if next > target {
			next = target
		}
		for blk := 0; blk < e.geo.BlocksPerDie; blk++ {
			c, err := e.disp.Cycles(die, blk)
			if err != nil {
				return err
			}
			if err := e.disp.SetCycles(die, blk, c+next-cur); err != nil {
				return err
			}
		}
		cur = next
		if err := e.refresh(phase, pr); err != nil {
			return err
		}
	}
	return nil
}

// age fast-forwards every block's program/erase wear.
func (e *engine) age(delta float64) error {
	for die := 0; die < e.geo.Dies; die++ {
		for blk := 0; blk < e.geo.BlocksPerDie; blk++ {
			c, err := e.disp.Cycles(die, blk)
			if err != nil {
				return err
			}
			if err := e.disp.SetCycles(die, blk, c+delta); err != nil {
				return err
			}
		}
	}
	return nil
}

// disturb performs raw array reads (ECC bypassed) of the first page of
// every programmed block — read-disturb aggression outside the host
// path, run on each die's worker for exclusive device access.
func (e *engine) disturb(n int) error {
	for die := 0; die < e.geo.Dies; die++ {
		err := e.disp.WithController(die, func(c *controller.Controller) {
			dev := c.Device()
			for blk := 0; blk < dev.Blocks(); blk++ {
				for r := 0; r < n; r++ {
					if _, _, err := dev.Read(blk, 0); err != nil {
						break // unwritten block: no stress to apply
					}
				}
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// wearSnapshot reads every block's cycle count.
func (e *engine) wearSnapshot() ([][]float64, error) {
	out := make([][]float64, e.geo.Dies)
	for die := range out {
		out[die] = make([]float64, e.geo.BlocksPerDie)
		for blk := range out[die] {
			c, err := e.disp.Cycles(die, blk)
			if err != nil {
				return nil, err
			}
			out[die][blk] = c
		}
	}
	return out, nil
}

// content deterministically regenerates the page content of (partition,
// lpa, version) into the engine's scratch buffer. The mapping is a pure
// function of the scenario seed, so the oracle never stores data.
func (e *engine) content(ps *partState, lpa, version int) []byte {
	h := e.sc.Seed
	for _, v := range [3]uint64{uint64(ps.idx) + 1, uint64(lpa) + 1, uint64(version)} {
		h = (h ^ v) * 0x100000001b3
	}
	r := stats.NewRNG(h)
	for i := 0; i+8 <= len(e.scratch); i += 8 {
		binary.LittleEndian.PutUint64(e.scratch[i:], r.Uint64())
	}
	return e.scratch
}

// diffBits counts differing bits between equal-length buffers.
func diffBits(a, b []byte) int {
	n := 0
	for i := range a {
		n += bits.OnesCount8(a[i] ^ b[i])
	}
	return n
}

// total folds the phase series into run totals.
func (e *engine) total(rep *Report) {
	t := &rep.Totals
	for _, ph := range rep.Phases {
		t.HostReads += ph.HostReads
		t.HostWrites += ph.HostWrites
		t.BitsRead += ph.BitsRead
		t.CorrectedBits += ph.CorrectedBits
		t.UncorrectableReads += ph.UncorrectableReads
		t.LostBits += ph.LostBits
		t.Retries += ph.Retries
		t.RecoveredReads += ph.RecoveredReads
		t.RelocRetries += ph.RelocRetries
		t.DeepRecovered += ph.DeepRecovered
		t.SoftSenses += ph.SoftSenses
		t.SoftRecovered += ph.SoftRecovered
		t.ScrubPasses += ph.ScrubPasses
		t.PagesScrubbed += ph.PagesScrubbed
		t.GCMoves += ph.GCMoves
		t.Erases += ph.Erases
		t.RetiredBlocks += ph.RetiredBlocks
		if ph.WearMax > t.FinalWearMax {
			t.FinalWearMax = ph.WearMax
		}
	}
	if t.BitsRead > 0 {
		t.UBER = float64(t.LostBits) / float64(t.BitsRead)
	}
}
