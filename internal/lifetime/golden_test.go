package lifetime

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenTrajectories pins the reliability trajectory of two short
// canned scenarios against committed fixtures, so a performance PR that
// accidentally changes behaviour anywhere in the stack (fault injection,
// capability selection, scrub order, GC policy) moves a fixture and
// fails loudly instead of silently shifting reliability.
//
// Regenerate the fixtures after an INTENTIONAL behaviour change with:
//
//	UPDATE_LIFETIME_GOLDEN=1 go test ./internal/lifetime -run TestGoldenTrajectories
//
// and review the fixture diff like any other behaviour diff.
func TestGoldenTrajectories(t *testing.T) {
	update := os.Getenv("UPDATE_LIFETIME_GOLDEN") != ""
	for _, sc := range GoldenShort() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rep, err := Run(sc)
			if err != nil {
				t.Fatalf("golden scenario failed: %v", err)
			}
			got, err := json.MarshalIndent(rep.Summarize(), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden_"+sc.Name+".json")
			if update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with UPDATE_LIFETIME_GOLDEN=1 to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("lifetime trajectory diverged from fixture %s.\n--- got ---\n%s\n--- want ---\n%s\n"+
					"If this change is intentional, regenerate with UPDATE_LIFETIME_GOLDEN=1 and review the diff.",
					path, got, want)
			}
		})
	}
}
