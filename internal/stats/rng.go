// Package stats provides the deterministic statistics substrate used by
// every simulation layer of the xlnand library: a seedable, reproducible
// random number generator, Gaussian and binomial sampling, tail-probability
// math (Q-function), log-domain binomial terms for extreme-probability
// arithmetic (UBER down to 1e-30 and beyond), and histogram utilities.
//
// Everything in this package is pure computation with no global state; all
// randomness flows through an explicit *RNG so that simulations are
// reproducible bit-for-bit given a seed.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator based on the
// xoshiro256** algorithm (Blackman & Vigna). It is not safe for concurrent
// use; create one RNG per goroutine (use Split for independent streams).
//
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
	// cached second Gaussian variate from the Box-Muller pair
	gauss    float64
	hasGauss bool
}

// splitmix64 is used to seed the xoshiro state from a single 64-bit seed,
// as recommended by the xoshiro authors.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from the given 64-bit seed. Two RNGs
// built from the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// Avoid the (astronomically unlikely) all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent RNG stream from r. The derived stream is
// decorrelated from the parent by hashing a draw from the parent through
// splitmix64, so parent and child may be used side by side.
func (r *RNG) Split() *RNG {
	seed := r.Uint64()
	return NewRNG(seed ^ 0xa5a5a5a55a5a5a5a)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		thresh := (-bound) % bound
		for lo < thresh {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 computes the 128-bit product of a and b.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Norm returns a standard-normal variate via the Box-Muller transform.
// Variates are produced in pairs; the second is cached.
func (r *RNG) Norm() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// NormMuSigma returns a Gaussian variate with the given mean and standard
// deviation.
func (r *RNG) NormMuSigma(mu, sigma float64) float64 {
	return mu + sigma*r.Norm()
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Binomial draws from Binomial(n, p). For small n·p it uses direct
// Bernoulli summation via geometric skipping (first-success counting);
// for large n·p it uses a Gaussian approximation with continuity
// correction, which is accurate to well under the Monte-Carlo noise of the
// simulations that consume it.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	mean := float64(n) * p
	if mean < 64 {
		// Geometric-skip sampling: number of trials until next success
		// is geometric with parameter p.
		c := 0
		i := 0
		lq := math.Log1p(-p)
		for {
			// skip ~ floor(log(U)/log(1-p)) failures
			skip := int(math.Log(1-r.Float64()) / lq)
			i += skip + 1
			if i > n {
				break
			}
			c++
		}
		return c
	}
	sd := math.Sqrt(mean * (1 - p))
	k := int(math.Round(mean + sd*r.Norm()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// Perm fills dst with a uniformly random permutation of [0, len(dst)).
func (r *RNG) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// SampleK chooses k distinct integers uniformly from [0, n) using Floyd's
// algorithm and returns them in unspecified order. It panics if k > n.
func (r *RNG) SampleK(n, k int) []int {
	return r.SampleKAppend(make([]int, 0, k), n, k)
}

// SampleKAppend is SampleK appending into dst, for callers reusing a
// scratch buffer across draws. It consumes the identical RNG stream and
// yields the identical values in the identical order as SampleK: the
// seen-set is the appended prefix itself, scanned linearly — for the
// small k of an error-injection draw that beats building a map, and it
// allocates nothing when dst has capacity.
func (r *RNG) SampleKAppend(dst []int, n, k int) []int {
	if k > n {
		panic("stats: SampleK with k > n")
	}
	start := len(dst)
	for j := n - k; j < n; j++ {
		v := r.Intn(j + 1)
		for _, u := range dst[start:] {
			if u == v {
				v = j
				break
			}
		}
		dst = append(dst, v)
	}
	return dst
}
