package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bin histogram over a closed interval, used to
// inspect simulated threshold-voltage distributions.
type Histogram struct {
	Lo, Hi float64
	Counts []uint64
	under  uint64
	over   uint64
	n      uint64
}

// NewHistogram creates a histogram of bins equal-width bins on [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard FP edge at x == Hi-epsilon
			i--
		}
		h.Counts[i]++
	}
}

// N returns the number of recorded observations (including out-of-range).
func (h *Histogram) N() uint64 { return h.n }

// OutOfRange returns the counts that fell below Lo and at/above Hi.
func (h *Histogram) OutOfRange() (under, over uint64) { return h.under, h.over }

// BinCenter returns the center x of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// String renders a compact ASCII bar view for debugging.
func (h *Histogram) String() string {
	var b strings.Builder
	max := uint64(1)
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	for i, c := range h.Counts {
		bar := int(40 * float64(c) / float64(max))
		fmt.Fprintf(&b, "%8.3f |%s %d\n", h.BinCenter(i), strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Summary holds the first two moments and extrema of a sample.
type Summary struct {
	N          int
	Mean, Std  float64
	Min, Max   float64
	P01, P99   float64 // 1st and 99th percentiles
	P001, P999 float64 // 0.1 and 99.9 percentiles
}

// Summarize computes moments and tail percentiles of xs. It sorts a copy;
// xs is not modified. Returns the zero Summary for an empty slice.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sum2 float64
	for _, x := range xs {
		sum += x
		sum2 += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	n := float64(len(xs))
	s.Mean = sum / n
	v := sum2/n - s.Mean*s.Mean
	if v < 0 {
		v = 0
	}
	s.Std = math.Sqrt(v)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P01 = Percentile(sorted, 0.01)
	s.P99 = Percentile(sorted, 0.99)
	s.P001 = Percentile(sorted, 0.001)
	s.P999 = Percentile(sorted, 0.999)
	return s
}

// Percentile returns the q-quantile (q in [0,1]) of an ascending-sorted
// slice using linear interpolation between closest ranks. It is the
// unit-weight special case of PercentileWeighted; both share one
// closest-ranks definition so histogram quantiles and exact-sample
// quantiles cannot drift apart.
func Percentile(sorted []float64, q float64) float64 {
	return PercentileWeighted(sorted, nil, q)
}

// PercentileWeighted returns the q-quantile (q in [0,1]) of an
// ascending-sorted slice where sorted[i] occurs weights[i] times, using
// linear interpolation between closest ranks — exactly equivalent to
// expanding every value by its weight and calling Percentile on the
// expansion. A nil weights slice means one occurrence per value. This
// is the single quantile implementation in the tree: fixed-bucket
// latency histograms (internal/obs) feed their (value, count) pairs
// through it rather than growing a second interpolation scheme.
func PercentileWeighted(sorted []float64, weights []uint64, q float64) float64 {
	n := uint64(len(sorted))
	if weights != nil {
		n = 0
		for _, w := range weights {
			n += w
		}
	}
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		q = 0
	}
	if q >= 1 {
		q = 1
	}
	pos := q * float64(n-1)
	lo := uint64(pos)
	frac := pos - float64(lo)
	hi := lo
	if frac > 0 && lo+1 < n {
		hi = lo + 1
	}
	v1 := valueAtRank(sorted, weights, lo)
	if hi == lo || frac == 0 {
		return v1
	}
	v2 := valueAtRank(sorted, weights, hi)
	return v1*(1-frac) + v2*frac
}

// valueAtRank resolves the value at a zero-based rank of the weighted
// expansion (rank < sum of weights, checked by the caller).
func valueAtRank(sorted []float64, weights []uint64, rank uint64) float64 {
	if weights == nil {
		return sorted[rank]
	}
	var cum uint64
	for i, w := range weights {
		cum += w
		if rank < cum {
			return sorted[i]
		}
	}
	return sorted[len(sorted)-1]
}

// LogSpace returns n points logarithmically spaced from lo to hi inclusive.
// It panics unless lo, hi > 0 and n >= 2.
func LogSpace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= 0 || n < 2 {
		panic("stats: LogSpace needs positive bounds and n >= 2")
	}
	out := make([]float64, n)
	llo, lhi := math.Log10(lo), math.Log10(hi)
	for i := range out {
		f := float64(i) / float64(n-1)
		out[i] = math.Pow(10, llo+(lhi-llo)*f)
	}
	return out
}

// LinSpace returns n points linearly spaced from lo to hi inclusive.
func LinSpace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("stats: LinSpace needs n >= 2")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}
