package stats

import "math"

// Q returns the Gaussian tail probability Q(x) = P[N(0,1) > x],
// computed via erfc for numerical stability deep into the tail
// (Q(10) ≈ 7.6e-24 is still exact to machine precision).
func Q(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// QInv returns the inverse of Q: the x such that Q(x) = p, for p in (0, 1).
// It uses a bisection refined by Newton steps on log Q, which is robust for
// the deep-tail probabilities (1e-30) used in UBER targeting.
func QInv(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: QInv domain is (0,1)")
	}
	if p == 0.5 {
		return 0
	}
	// Q is monotone decreasing; bracket the root.
	lo, hi := -40.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if Q(mid) > p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-13 {
			break
		}
	}
	return (lo + hi) / 2
}

// LogBinomCoef returns ln C(n, k) using Lgamma, valid for n up to millions
// without overflow.
func LogBinomCoef(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	ln1, _ := math.Lgamma(float64(n) + 1)
	lk, _ := math.Lgamma(float64(k) + 1)
	lnk, _ := math.Lgamma(float64(n-k) + 1)
	return ln1 - lk - lnk
}

// LogBinomPMF returns ln of the binomial probability mass
// C(n,k) p^k (1-p)^(n-k), computed fully in the log domain so values far
// below the float64 underflow threshold are representable.
func LogBinomPMF(n, k int, p float64) float64 {
	if p <= 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	if p >= 1 {
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	return LogBinomCoef(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
}

// BinomPMF returns the binomial PMF. Underflows to 0 for extreme tails;
// use LogBinomPMF when the log value is needed.
func BinomPMF(n, k int, p float64) float64 {
	return math.Exp(LogBinomPMF(n, k, p))
}

// LogBinomTail returns ln P[X >= k] for X ~ Binomial(n, p), summed in the
// log domain starting at the dominant term. The sum converges after a few
// dozen terms because successive terms decay geometrically in the regime
// n·p << k used here.
func LogBinomTail(n, k int, p float64) float64 {
	if k <= 0 {
		return 0 // P >= 1e0
	}
	if k > n {
		return math.Inf(-1)
	}
	// Accumulate terms relative to the first (largest in our regime).
	l0 := LogBinomPMF(n, k, p)
	if math.IsInf(l0, -1) {
		return l0
	}
	sum := 1.0
	rel := 1.0
	li := l0
	for i := k + 1; i <= n; i++ {
		// ratio PMF(i)/PMF(i-1) = (n-i+1)/i * p/(1-p)
		ratio := float64(n-i+1) / float64(i) * p / (1 - p)
		rel *= ratio
		li += math.Log(ratio)
		sum += rel
		if rel < 1e-18*sum || math.IsInf(li, -1) {
			break
		}
	}
	// Far past the cliff (k << n·p) the relative terms grow without
	// bound and the accumulator can overflow — but the tail is a
	// probability: its log never exceeds 0.
	if v := l0 + math.Log(sum); v < 0 {
		return v
	}
	return 0
}

// LogSumExp returns ln(exp(a) + exp(b)) without overflow.
func LogSumExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}
