package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approxEq(a, b, rel float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= rel*m
}

func TestQKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.158655253931457},
		{2, 0.0227501319481792},
		{3, 1.349898031630095e-03},
		{6, 9.865876450377018e-10},
		{10, 7.619853024160487e-24},
	}
	for _, c := range cases {
		if got := Q(c.x); !approxEq(got, c.want, 1e-9) {
			t.Errorf("Q(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestQSymmetry(t *testing.T) {
	for _, x := range []float64{0.1, 0.5, 1, 2, 3.7} {
		if got := Q(x) + Q(-x); !approxEq(got, 1, 1e-12) {
			t.Errorf("Q(%v)+Q(-%v) = %v, want 1", x, x, got)
		}
	}
}

func TestQInvRoundTrip(t *testing.T) {
	for _, x := range []float64{-5, -1, -0.2, 0, 0.3, 1, 2.5, 5, 8} {
		p := Q(x)
		got := QInv(p)
		if math.Abs(got-x) > 1e-6 {
			t.Errorf("QInv(Q(%v)) = %v", x, got)
		}
	}
}

func TestQInvPanicsOutsideDomain(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("QInv(%v) did not panic", p)
				}
			}()
			QInv(p)
		}()
	}
}

func TestLogBinomCoefSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, math.Log(10)},
		{10, 0, 0},
		{10, 10, 0},
		{52, 5, math.Log(2598960)},
	}
	for _, c := range cases {
		if got := LogBinomCoef(c.n, c.k); !approxEq(got, c.want, 1e-10) {
			t.Errorf("LogBinomCoef(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestLogBinomCoefOutOfRange(t *testing.T) {
	if !math.IsInf(LogBinomCoef(5, 6), -1) {
		t.Error("C(5,6) should be log(0) = -inf")
	}
	if !math.IsInf(LogBinomCoef(5, -1), -1) {
		t.Error("C(5,-1) should be log(0) = -inf")
	}
}

func TestLogBinomCoefSymmetry(t *testing.T) {
	f := func(nRaw, kRaw uint16) bool {
		n := int(nRaw%40000) + 1
		k := int(kRaw) % (n + 1)
		return approxEq(LogBinomCoef(n, k), LogBinomCoef(n, n-k), 1e-9) ||
			LogBinomCoef(n, k) == LogBinomCoef(n, n-k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogBinomPMFNormalization(t *testing.T) {
	// Sum of PMF over k must be 1 for a small n.
	n, p := 40, 0.13
	sum := 0.0
	for k := 0; k <= n; k++ {
		sum += math.Exp(LogBinomPMF(n, k, p))
	}
	if !approxEq(sum, 1, 1e-10) {
		t.Fatalf("PMF sums to %v, want 1", sum)
	}
}

func TestLogBinomPMFEdges(t *testing.T) {
	if got := LogBinomPMF(10, 0, 0); got != 0 {
		t.Errorf("PMF(10,0,p=0) log = %v, want 0", got)
	}
	if !math.IsInf(LogBinomPMF(10, 3, 0), -1) {
		t.Error("PMF(10,3,p=0) should be 0")
	}
	if got := LogBinomPMF(10, 10, 1); got != 0 {
		t.Errorf("PMF(10,10,p=1) log = %v, want 0", got)
	}
	if !math.IsInf(LogBinomPMF(10, 9, 1), -1) {
		t.Error("PMF(10,9,p=1) should be 0")
	}
}

func TestLogBinomTailMatchesDirectSum(t *testing.T) {
	n, p := 200, 0.02
	for k := 0; k <= 20; k++ {
		direct := 0.0
		for i := k; i <= n; i++ {
			direct += math.Exp(LogBinomPMF(n, i, p))
		}
		got := math.Exp(LogBinomTail(n, k, p))
		if !approxEq(got, direct, 1e-9) {
			t.Errorf("tail(n=%d,k=%d) = %v, want %v", n, k, got, direct)
		}
	}
}

func TestLogBinomTailDeep(t *testing.T) {
	// Deep tail: n=33808, p=1e-6, k=4. Expected λ=0.033808;
	// P[X>=4] ≈ λ^4/4! (1 + O(λ)).
	n, p, k := 33808, 1e-6, 4
	lam := float64(n) * p
	want := math.Pow(lam, 4) / 24 * math.Exp(-lam)
	got := math.Exp(LogBinomTail(n, k, p))
	if !approxEq(got, want, 0.02) {
		t.Fatalf("deep tail = %v, want ~%v", got, want)
	}
}

func TestLogBinomTailMonotoneInK(t *testing.T) {
	n, p := 1000, 0.01
	prev := math.Inf(1)
	for k := 0; k <= 50; k++ {
		cur := LogBinomTail(n, k, p)
		if cur > prev {
			t.Fatalf("tail increased at k=%d: %v > %v", k, cur, prev)
		}
		prev = cur
	}
}

func TestLogSumExp(t *testing.T) {
	a, b := math.Log(3.0), math.Log(4.0)
	if got := LogSumExp(a, b); !approxEq(got, math.Log(7), 1e-12) {
		t.Errorf("LogSumExp = %v, want log 7", got)
	}
	if got := LogSumExp(math.Inf(-1), a); got != a {
		t.Errorf("LogSumExp(-inf, a) = %v, want a", got)
	}
	if got := LogSumExp(b, math.Inf(-1)); got != b {
		t.Errorf("LogSumExp(b, -inf) = %v, want b", got)
	}
}

func TestLogSumExpCommutative(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		// Keep magnitudes sane.
		a = math.Mod(a, 500)
		b = math.Mod(b, 500)
		return approxEq(LogSumExp(a, b), LogSumExp(b, a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
