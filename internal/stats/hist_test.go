package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bin %d count = %d, want 1", i, c)
		}
	}
	if h.N() != 10 {
		t.Fatalf("N = %d, want 10", h.N())
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(2)
	h.Add(0.5)
	under, over := h.OutOfRange()
	if under != 1 || over != 1 {
		t.Fatalf("under/over = %d/%d, want 1/1", under, over)
	}
	if h.N() != 3 {
		t.Fatalf("N = %d, want 3", h.N())
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on hi <= lo")
		}
	}()
	NewHistogram(1, 1, 4)
}

func TestHistogramModeOfGaussian(t *testing.T) {
	r := NewRNG(61)
	h := NewHistogram(-1, 7, 80)
	for i := 0; i < 100000; i++ {
		h.Add(r.NormMuSigma(3, 0.5))
	}
	if mode := h.Mode(); math.Abs(mode-3) > 0.2 {
		t.Fatalf("mode = %v, want ~3", mode)
	}
}

func TestHistogramStringRenders(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	s := h.String()
	if !strings.Contains(s, "#") {
		t.Fatalf("render missing bars: %q", s)
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) != 2 {
		t.Fatalf("want 2 lines, got %q", s)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bad summary: %+v", s)
	}
	wantStd := math.Sqrt(2) // population std of 1..5
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, wantStd)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("empty summary N = %d", s.N)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Summarize(xs)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	sort.Float64s(xs)
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 50}, {0.5, 30}, {0.25, 20}, {0.75, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("percentile of empty slice should be NaN")
	}
}

func TestLogSpace(t *testing.T) {
	xs := LogSpace(1e2, 1e6, 5)
	want := []float64{1e2, 1e3, 1e4, 1e5, 1e6}
	for i := range xs {
		if !approxEq(xs[i], want[i], 1e-12) {
			t.Fatalf("LogSpace[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
}

func TestLogSpacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-positive bound")
		}
	}()
	LogSpace(0, 10, 3)
}

func TestLinSpace(t *testing.T) {
	xs := LinSpace(0, 1, 3)
	want := []float64{0, 0.5, 1}
	for i := range xs {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Fatalf("LinSpace[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
}

// TestPercentileWeightedMatchesExpansion checks the defining property:
// PercentileWeighted over (value, weight) pairs equals Percentile over
// the weight-expanded sample, for every quantile.
func TestPercentileWeightedMatchesExpansion(t *testing.T) {
	vals := []float64{1, 3, 7, 20, 100}
	weights := []uint64{3, 1, 5, 2, 4}
	var expanded []float64
	for i, v := range vals {
		for k := uint64(0); k < weights[i]; k++ {
			expanded = append(expanded, v)
		}
	}
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := PercentileWeighted(vals, weights, q)
		want := Percentile(expanded, q)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("q=%.2f: weighted %v vs expanded %v", q, got, want)
		}
	}
}

// TestPercentileWeightedUnitWeights pins that nil weights reproduce
// Percentile exactly — they share one implementation by construction,
// but this guards the delegation.
func TestPercentileWeightedUnitWeights(t *testing.T) {
	sorted := []float64{2, 4, 8, 16, 32, 64}
	unit := []uint64{1, 1, 1, 1, 1, 1}
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		a := Percentile(sorted, q)
		b := PercentileWeighted(sorted, nil, q)
		c := PercentileWeighted(sorted, unit, q)
		if a != b || a != c {
			t.Fatalf("q=%v: %v / %v / %v diverge", q, a, b, c)
		}
	}
}

func TestPercentileWeightedEmpty(t *testing.T) {
	if !math.IsNaN(PercentileWeighted(nil, nil, 0.5)) {
		t.Fatal("empty weighted percentile not NaN")
	}
	if !math.IsNaN(PercentileWeighted([]float64{1, 2}, []uint64{0, 0}, 0.5)) {
		t.Fatal("zero-weight percentile not NaN")
	}
}
