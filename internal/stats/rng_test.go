package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// Child stream must differ from a fresh parent-seeded stream.
	ref := NewRNG(7)
	diff := 0
	for i := 0; i < 64; i++ {
		if child.Uint64() != ref.Uint64() {
			diff++
		}
	}
	if diff < 60 {
		t.Fatalf("split stream correlates with parent seed: only %d/64 differ", diff)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(5)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(11)
	seen := make(map[int]int)
	for i := 0; i < 30000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v]++
	}
	for v := 0; v < 7; v++ {
		if seen[v] < 3000 {
			t.Fatalf("value %d badly under-represented: %d draws", v, seen[v])
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormMuSigma(t *testing.T) {
	r := NewRNG(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormMuSigma(3.5, 0.25)
	}
	if mean := sum / n; math.Abs(mean-3.5) > 0.01 {
		t.Fatalf("mean = %v, want ~3.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(19)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBinomialSmallMean(t *testing.T) {
	r := NewRNG(23)
	const n, p, trials = 10000, 1e-4, 20000
	var sum float64
	for i := 0; i < trials; i++ {
		k := r.Binomial(n, p)
		if k < 0 || k > n {
			t.Fatalf("binomial draw %d out of range", k)
		}
		sum += float64(k)
	}
	mean := sum / trials
	want := float64(n) * p
	if math.Abs(mean-want) > 0.05 {
		t.Fatalf("binomial mean = %v, want ~%v", mean, want)
	}
}

func TestBinomialLargeMean(t *testing.T) {
	r := NewRNG(29)
	const n, p, trials = 100000, 0.01, 5000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += float64(r.Binomial(n, p))
	}
	mean := sum / trials
	want := float64(n) * p // 1000
	if math.Abs(mean-want) > 5 {
		t.Fatalf("binomial mean = %v, want ~%v", mean, want)
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := NewRNG(31)
	if r.Binomial(0, 0.5) != 0 {
		t.Error("Binomial(0,·) != 0")
	}
	if r.Binomial(10, 0) != 0 {
		t.Error("Binomial(·,0) != 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Error("Binomial(10,1) != 10")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(37)
	dst := make([]int, 50)
	r.Perm(dst)
	seen := make([]bool, 50)
	for _, v := range dst {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", dst)
		}
		seen[v] = true
	}
}

func TestSampleKDistinct(t *testing.T) {
	r := NewRNG(41)
	for trial := 0; trial < 200; trial++ {
		got := r.SampleK(100, 10)
		if len(got) != 10 {
			t.Fatalf("SampleK returned %d values, want 10", len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= 100 {
				t.Fatalf("sample %d out of range", v)
			}
			if seen[v] {
				t.Fatalf("duplicate sample %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleKFull(t *testing.T) {
	r := NewRNG(43)
	got := r.SampleK(5, 5)
	seen := map[int]bool{}
	for _, v := range got {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("SampleK(5,5) not a full permutation: %v", got)
	}
}

func TestSampleKUniformityProperty(t *testing.T) {
	// Property: across many draws every element of [0,n) appears with
	// roughly equal frequency.
	r := NewRNG(47)
	counts := make([]int, 20)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleK(20, 3) {
			counts[v]++
		}
	}
	want := float64(trials*3) / 20
	for v, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("element %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestQuickIntnInRange(t *testing.T) {
	r := NewRNG(53)
	f := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBinomialInRange(t *testing.T) {
	r := NewRNG(59)
	f := func(nRaw uint16, pRaw uint16) bool {
		n := int(nRaw % 5000)
		p := float64(pRaw) / 65536
		k := r.Binomial(n, p)
		return k >= 0 && k <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
