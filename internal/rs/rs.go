// Package rs implements a Reed-Solomon codec over GF(2^8) — the
// alternative ECC family the paper's related work cites for MLC NAND
// (Chen et al. [14]). It serves as a comparison baseline against the
// adaptive BCH codec: RS corrects symbol (byte) errors, which favours
// clustered bit errors but costs more parity for the sparse, independent
// errors typical of NAND (paper §4: "errors in flash memories are in
// general non-correlated and BCH codes are particularly efficient in
// this situation").
//
// The decoder is the classic chain: syndromes, Berlekamp-Massey (shared
// with the BCH package), Chien search over symbol positions, and Forney's
// algorithm for error magnitudes.
package rs

import (
	"errors"
	"fmt"

	"xlnand/internal/bch"
	"xlnand/internal/gf"
)

// ErrUncorrectable reports an error pattern beyond the code's capability.
var ErrUncorrectable = errors.New("rs: uncorrectable error pattern")

// Code is an RS(n, k) code over GF(2^8): n total symbols (bytes), k data
// symbols, correcting t = (n-k)/2 symbol errors.
type Code struct {
	N, K, T int
	field   *gf.Field
	gen     gf.PolyM // generator polynomial, degree 2t
}

// New constructs RS(n, k) over GF(2^8). n must fit the field (n <= 255)
// and n-k must be even and positive.
func New(n, k int) (*Code, error) {
	if n < 3 || n > 255 {
		return nil, fmt.Errorf("rs: n=%d outside [3, 255]", n)
	}
	if k <= 0 || k >= n {
		return nil, fmt.Errorf("rs: k=%d outside (0, n)", k)
	}
	if (n-k)%2 != 0 {
		return nil, fmt.Errorf("rs: n-k=%d must be even", n-k)
	}
	f := gf.NewField(8)
	// g(x) = prod_{i=1..2t} (x - alpha^i)
	g := gf.NewPolyM(f, 1)
	for i := 1; i <= n-k; i++ {
		g = g.MulXPlusConst(f.Alpha(i))
	}
	return &Code{N: n, K: k, T: (n - k) / 2, field: f, gen: g}, nil
}

// Field returns the symbol field.
func (c *Code) Field() *gf.Field { return c.field }

// ParityBytes returns n-k.
func (c *Code) ParityBytes() int { return c.N - c.K }

// Encode computes the 2t parity symbols for a k-byte message
// (systematic: codeword = msg ++ parity).
func (c *Code) Encode(msg []byte) ([]byte, error) {
	if len(msg) != c.K {
		return nil, fmt.Errorf("rs: message is %d bytes, want %d", len(msg), c.K)
	}
	// Polynomial long division: remainder of msg(x)·x^(2t) mod g(x).
	// Message symbol msg[0] is the highest-degree coefficient.
	r2t := c.N - c.K
	rem := make([]uint32, r2t)
	for _, mb := range msg {
		factor := uint32(mb) ^ rem[r2t-1]
		copy(rem[1:], rem[:r2t-1])
		rem[0] = 0
		if factor != 0 {
			for i := 0; i < r2t; i++ {
				if gc := c.gen.Coeff(i); gc != 0 {
					rem[i] ^= c.field.Mul(factor, gc)
				}
			}
		}
	}
	parity := make([]byte, r2t)
	for i := 0; i < r2t; i++ {
		parity[i] = byte(rem[r2t-1-i])
	}
	return parity, nil
}

// EncodeCodeword returns msg ++ parity.
func (c *Code) EncodeCodeword(msg []byte) ([]byte, error) {
	parity, err := c.Encode(msg)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, c.N)
	out = append(out, msg...)
	return append(out, parity...), nil
}

// syndromes evaluates the received word at alpha^1..alpha^2t.
// Codeword symbol cw[0] carries degree n-1.
func (c *Code) syndromes(cw []byte) []uint32 {
	syn := make([]uint32, c.N-c.K)
	for j := range syn {
		a := c.field.Alpha(j + 1)
		var acc uint32
		for _, b := range cw {
			acc = c.field.Mul(acc, a) ^ uint32(b)
		}
		syn[j] = acc
	}
	return syn
}

// Decode corrects the codeword in place, returning the number of symbol
// errors repaired or ErrUncorrectable (codeword untouched).
func (c *Code) Decode(cw []byte) (int, error) {
	if len(cw) != c.N {
		return 0, fmt.Errorf("rs: codeword is %d bytes, want %d", len(cw), c.N)
	}
	syn := c.syndromes(cw)
	if bch.AllZero(syn) {
		return 0, nil
	}
	lambda, L := bch.BerlekampMassey(c.field, syn)
	if L > c.T || len(lambda)-1 != L {
		return 0, ErrUncorrectable
	}
	// Chien search over symbol positions: an error at polynomial degree
	// d has locator X = alpha^d; positions returned are symbol indices
	// (0 = first transmitted symbol = degree n-1).
	positions, ok := bch.ChienSearch(c.field, lambda, c.N)
	if !ok {
		return 0, ErrUncorrectable
	}
	// Forney: with S(x) = S_1 + S_2·x + ... + S_2t·x^(2t-1) and
	// Omega(x) = [S(x)·Lambda(x)] mod x^(2t), the magnitude at locator
	// X_i is e_i = Omega(X_i^-1) / Lambda'(X_i^-1) (characteristic-2
	// form of the b=1 convention).
	sPoly := gf.NewPolyM(c.field, syn...)
	lPoly := gf.NewPolyM(c.field, lambda...)
	omega := sPoly.Mul(lPoly)
	if omega.Degree() >= c.N-c.K {
		omega = gf.NewPolyM(c.field, omega.Coeffs[:c.N-c.K]...)
	}
	lDeriv := lPoly.Derivative()

	type fix struct {
		idx int
		val byte
	}
	fixes := make([]fix, 0, len(positions))
	for _, pos := range positions {
		d := c.N - 1 - pos // polynomial degree of the symbol
		xInv := c.field.Alpha(-d)
		denom := lDeriv.Eval(xInv)
		if denom == 0 {
			return 0, ErrUncorrectable
		}
		num := omega.Eval(xInv)
		mag := c.field.Div(num, denom)
		if mag == 0 {
			return 0, ErrUncorrectable // located an error of magnitude zero
		}
		fixes = append(fixes, fix{idx: pos, val: byte(mag)})
	}
	for _, fx := range fixes {
		cw[fx.idx] ^= fx.val
	}
	// Verify; roll back a miscorrection.
	if !bch.AllZero(c.syndromes(cw)) {
		for _, fx := range fixes {
			cw[fx.idx] ^= fx.val
		}
		return 0, ErrUncorrectable
	}
	return len(fixes), nil
}

// SymbolErrorRate converts a raw bit error rate into the probability that
// an 8-bit symbol is corrupted (any of its bits flipped).
func SymbolErrorRate(rber float64) float64 {
	q := 1 - rber
	q2 := q * q
	q4 := q2 * q2
	return 1 - q4*q4
}
