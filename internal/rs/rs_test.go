package rs

import (
	"bytes"
	"errors"
	"testing"

	"xlnand/internal/stats"
)

func mkRS(t *testing.T, n, k int) *Code {
	t.Helper()
	c, err := New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randBytes(r *stats.RNG, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.Intn(256))
	}
	return out
}

func TestNewValidation(t *testing.T) {
	bad := [][2]int{{2, 1}, {256, 200}, {255, 0}, {255, 255}, {255, 250}} // last: n-k odd
	for _, nk := range bad {
		if _, err := New(nk[0], nk[1]); err == nil {
			t.Errorf("New(%d, %d) accepted", nk[0], nk[1])
		}
	}
	if _, err := New(255, 223); err != nil {
		t.Fatalf("classic RS(255,223) rejected: %v", err)
	}
}

func TestGeneratorRoots(t *testing.T) {
	c := mkRS(t, 255, 223)
	for i := 1; i <= 32; i++ {
		if got := c.gen.Eval(c.field.Alpha(i)); got != 0 {
			t.Fatalf("g(alpha^%d) = %d", i, got)
		}
	}
	if c.gen.Degree() != 32 {
		t.Fatalf("deg g = %d, want 32", c.gen.Degree())
	}
}

func TestEncodedCodewordHasZeroSyndromes(t *testing.T) {
	c := mkRS(t, 255, 223)
	r := stats.NewRNG(1)
	for trial := 0; trial < 20; trial++ {
		cw, err := c.EncodeCodeword(randBytes(r, c.K))
		if err != nil {
			t.Fatal(err)
		}
		for j, s := range c.syndromes(cw) {
			if s != 0 {
				t.Fatalf("trial %d: S_%d = %d", trial, j+1, s)
			}
		}
	}
}

func TestEncodeRejectsBadLength(t *testing.T) {
	c := mkRS(t, 255, 223)
	if _, err := c.Encode(make([]byte, 10)); err == nil {
		t.Fatal("short message accepted")
	}
	if _, err := c.Decode(make([]byte, 10)); err == nil {
		t.Fatal("short codeword accepted")
	}
}

func TestRoundTripAllSymbolErrorCounts(t *testing.T) {
	c := mkRS(t, 255, 223) // t = 16
	r := stats.NewRNG(2)
	for e := 0; e <= c.T; e++ {
		msg := randBytes(r, c.K)
		cw, err := c.EncodeCodeword(msg)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]byte(nil), cw...)
		// Corrupt e distinct symbols with random nonzero garbage.
		for _, pos := range r.SampleK(c.N, e) {
			cw[pos] ^= byte(1 + r.Intn(255))
		}
		n, err := c.Decode(cw)
		if err != nil {
			t.Fatalf("e=%d: %v", e, err)
		}
		if n != e || !bytes.Equal(cw, want) {
			t.Fatalf("e=%d: corrected %d, match=%v", e, n, bytes.Equal(cw, want))
		}
	}
}

func TestSymbolBurstTolerance(t *testing.T) {
	// The RS selling point: a fully clobbered run of t symbols (up to
	// 8·t contiguous bit errors) is still correctable.
	c := mkRS(t, 255, 223)
	r := stats.NewRNG(3)
	msg := randBytes(r, c.K)
	cw, _ := c.EncodeCodeword(msg)
	want := append([]byte(nil), cw...)
	start := 100
	for i := 0; i < c.T; i++ {
		cw[start+i] = byte(r.Intn(256)) // may coincide; fix below
		if cw[start+i] == want[start+i] {
			cw[start+i] ^= 0xff
		}
	}
	n, err := c.Decode(cw)
	if err != nil {
		t.Fatal(err)
	}
	if n != c.T || !bytes.Equal(cw, want) {
		t.Fatalf("burst of %d symbols: corrected %d", c.T, n)
	}
}

func TestErrorsInParitySymbols(t *testing.T) {
	c := mkRS(t, 255, 223)
	r := stats.NewRNG(4)
	msg := randBytes(r, c.K)
	cw, _ := c.EncodeCodeword(msg)
	want := append([]byte(nil), cw...)
	cw[c.K] ^= 0x5a   // first parity symbol
	cw[c.N-1] ^= 0x11 // last parity symbol
	cw[0] ^= 0x01     // first data symbol
	n, err := c.Decode(cw)
	if err != nil || n != 3 {
		t.Fatalf("parity-region errors: n=%d err=%v", n, err)
	}
	if !bytes.Equal(cw, want) {
		t.Fatal("not restored")
	}
}

func TestUncorrectableDetectedRS(t *testing.T) {
	c := mkRS(t, 255, 223)
	r := stats.NewRNG(5)
	detected := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		cw, _ := c.EncodeCodeword(randBytes(r, c.K))
		dirty := append([]byte(nil), cw...)
		for _, pos := range r.SampleK(c.N, 2*c.T+3) {
			cw[pos] ^= byte(1 + r.Intn(255))
		}
		if _, err := c.Decode(cw); errors.Is(err, ErrUncorrectable) {
			detected++
			_ = dirty
		}
	}
	if detected < trials/2 {
		t.Fatalf("only %d/%d gross corruptions detected", detected, trials)
	}
}

func TestUncorrectableLeavesCodewordIntactRS(t *testing.T) {
	c := mkRS(t, 64, 32) // t=16, small code
	r := stats.NewRNG(6)
	for trial := 0; trial < 50; trial++ {
		cw, _ := c.EncodeCodeword(randBytes(r, c.K))
		for _, pos := range r.SampleK(c.N, 2*c.T+5) {
			cw[pos] ^= byte(1 + r.Intn(255))
		}
		dirty := append([]byte(nil), cw...)
		if _, err := c.Decode(cw); errors.Is(err, ErrUncorrectable) {
			if !bytes.Equal(cw, dirty) {
				t.Fatal("uncorrectable decode modified codeword")
			}
		}
	}
}

func TestShortenedRS(t *testing.T) {
	// Shortened RS(64, 32): still corrects 16 symbol errors.
	c := mkRS(t, 64, 32)
	r := stats.NewRNG(7)
	msg := randBytes(r, c.K)
	cw, err := c.EncodeCodeword(msg)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), cw...)
	for _, pos := range r.SampleK(c.N, c.T) {
		cw[pos] ^= byte(1 + r.Intn(255))
	}
	n, err := c.Decode(cw)
	if err != nil || n != c.T {
		t.Fatalf("shortened decode: n=%d err=%v", n, err)
	}
	if !bytes.Equal(cw, want) {
		t.Fatal("shortened codeword not restored")
	}
}

func TestSymbolErrorRate(t *testing.T) {
	if got := SymbolErrorRate(0); got != 0 {
		t.Fatalf("SER(0) = %v", got)
	}
	// Small p: SER ≈ 8p.
	p := 1e-6
	if got := SymbolErrorRate(p); got < 7.9e-6 || got > 8.1e-6 {
		t.Fatalf("SER(1e-6) = %v, want ≈ 8e-6", got)
	}
	// Monotone and bounded.
	prev := 0.0
	for _, p := range []float64{1e-6, 1e-4, 1e-2, 0.5, 1} {
		cur := SymbolErrorRate(p)
		if cur < prev || cur > 1 {
			t.Fatalf("SER not monotone/bounded at %v", p)
		}
		prev = cur
	}
}

func TestDecodeIdempotentRS(t *testing.T) {
	c := mkRS(t, 255, 223)
	r := stats.NewRNG(8)
	cw, _ := c.EncodeCodeword(randBytes(r, c.K))
	for _, pos := range r.SampleK(c.N, 5) {
		cw[pos] ^= byte(1 + r.Intn(255))
	}
	if n, err := c.Decode(cw); err != nil || n != 5 {
		t.Fatalf("first decode: %d, %v", n, err)
	}
	if n, err := c.Decode(cw); err != nil || n != 0 {
		t.Fatalf("second decode: %d, %v", n, err)
	}
}
