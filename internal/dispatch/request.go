package dispatch

import (
	"errors"
	"fmt"
	"time"

	"xlnand/internal/controller"
	"xlnand/internal/nand"
	"xlnand/internal/sim"
)

// Op selects the operation of one queued request.
type Op int

// Request operations.
const (
	OpRead Op = iota
	OpWrite
	OpErase
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpErase:
		return "erase"
	default:
		return "op?"
	}
}

// Typed error conditions surfaced by the queue. ErrUncorrectable (decode
// failure) is re-exported from the controller so that one errors.Is chain
// covers the whole stack.
var (
	// ErrBadAddress reports a die/block/page outside the sub-system's
	// geometry.
	ErrBadAddress = errors.New("dispatch: address out of range")
	// ErrClosed reports a submission to a closed sub-system.
	ErrClosed = errors.New("dispatch: subsystem closed")
	// ErrUncorrectable aliases the controller's decode-failure sentinel.
	ErrUncorrectable = controller.ErrUncorrectable
)

// OpError is the typed error attached to a failed completion: it names
// the operation and address and wraps the cause (ErrUncorrectable,
// ErrBadAddress, ErrClosed, a context error, or a device error).
type OpError struct {
	Op    Op
	Die   int
	Block int
	Page  int
	Err   error
}

// Error implements the error interface.
func (e *OpError) Error() string {
	return fmt.Sprintf("%s %d/%d.%d: %v", e.Op, e.Die, e.Block, e.Page, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *OpError) Unwrap() error { return e.Err }

func opErr(req Request, err error) *OpError {
	return &OpError{Op: req.Op, Die: req.Die, Block: req.Block, Page: req.Page, Err: err}
}

// Request is one I/O operation submitted to a Queue.
type Request struct {
	// Op selects read, write or erase.
	Op Op
	// Die, Block, Page address the operation. Page is ignored by OpErase.
	Die   int
	Block int
	Page  int
	// Data is the write payload (exactly one page). Unused by reads and
	// erases.
	Data []byte
	// Mode overrides the sub-system's default service level for this
	// request only (nil keeps the default). The override also suppresses
	// any expert algorithm override installed via SetAlgorithm.
	Mode *sim.Mode
	// T pins the ECC capability for this write (0 resolves it from the
	// mode: reliability manager, or the min-UBER SV schedule).
	T int
	// Retries overrides the controller's read-recovery ladder budget for
	// this read (nil keeps the controller default; pointing at 0 forces
	// the pre-recovery single-shot read at nominal references — no
	// ladder, no predicted offset; budgets beyond the device's
	// calibrated depth are clamped). Ignored by writes and erases.
	Retries *int
	// Tag is an opaque caller token echoed in the completion.
	Tag uint64
}

// Completion reports the outcome of one request.
type Completion struct {
	// Tag echoes the request's token.
	Tag uint64
	// Op, Die, Block, Page echo the request's operation and address.
	Op    Op
	Die   int
	Block int
	Page  int

	// Data holds the decoded page payload for reads (raw data on
	// uncorrectable reads).
	Data []byte
	// T is the ECC capability used (write: selected; read: recovered from
	// the stored parity geometry).
	T int
	// Alg is the program algorithm used (write) or recovered (read).
	Alg nand.Algorithm
	// Corrected is the number of raw bit errors repaired by a read.
	Corrected int
	// Retries is the number of recovery-ladder re-senses a read needed
	// (each one was charged on the modelled timeline).
	Retries int
	// SoftSenses is the number of component array senses the read's
	// soft-decision rung paid (0 when the read never went soft); every
	// sense was charged on the modelled timeline.
	SoftSenses int
	// ParityBytes is the spare-area consumption of a write.
	ParityBytes int

	// Start and Finish place the operation on the sub-system's modelled
	// timeline (virtual nanoseconds since Open): Start is the first
	// resource acquisition, Finish the release of the last pipeline
	// stage. Batch makespans and sustained throughputs derive from them.
	Start  time.Duration
	Finish time.Duration

	// Write and Read expose the full controller-level result breakdowns
	// (latency components, program statistics) when present.
	Write *controller.WriteResult
	Read  *controller.ReadResult

	// Err is nil on success, a *OpError otherwise.
	Err error
}

// Latency returns the modelled service time of the operation, queueing
// included.
func (c Completion) Latency() time.Duration { return c.Finish - c.Start }

// Geometry describes the sub-system the dispatcher drives.
type Geometry struct {
	Dies          int
	BlocksPerDie  int
	PagesPerBlock int
	PageDataBytes int
}
