package dispatch

import (
	"context"
	"errors"
	"testing"
	"time"

	"xlnand/internal/controller"
	"xlnand/internal/sim"
	"xlnand/internal/stats"
)

func newTestDispatcher(t testing.TB, dies, blocks int, seed uint64) *Dispatcher {
	t.Helper()
	d, err := New(Config{
		Dies: dies, BlocksPerDie: blocks, Seed: seed,
		Env: sim.DefaultEnv(), Controller: controller.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func testPage(seed uint64, size int) []byte {
	r := stats.NewRNG(seed)
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(r.Intn(256))
	}
	return data
}

func TestVClockSerialises(t *testing.T) {
	var v vclock
	s1, e1 := v.acquire(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first acquire [%d, %d]", s1, e1)
	}
	s2, e2 := v.acquire(5, 10)
	if s2 != 10 || e2 != 20 {
		t.Fatalf("overlapping acquire did not queue: [%d, %d]", s2, e2)
	}
	s3, e3 := v.acquire(100, 5)
	if s3 != 100 || e3 != 105 {
		t.Fatalf("idle-gap acquire shifted: [%d, %d]", s3, e3)
	}
}

func TestSingleReadPipelineStamps(t *testing.T) {
	d := newTestDispatcher(t, 1, 2, 5)
	q := d.NewQueue()
	page := testPage(1, d.Geometry().PageDataBytes)
	ctx := context.Background()
	if _, err := q.Do(ctx, Request{Op: OpWrite, Block: 0, Page: 0, Data: page}); err != nil {
		t.Fatal(err)
	}
	comp, err := q.Do(ctx, Request{Op: OpRead, Block: 0, Page: 0})
	if err != nil {
		t.Fatal(err)
	}
	lat := comp.Read.Latency
	want := lat.TR + lat.Transfer + lat.Decode
	if got := comp.Finish - comp.Start; got != want {
		t.Fatalf("unloaded read pipeline %v, controller total %v", got, want)
	}
}

// TestSharedBusSerialisesAcrossDies: two dies sense in parallel but their
// transfers share the bus, so the two-read makespan must sit strictly
// between one full read and two sequential reads.
func TestSharedBusSerialisesAcrossDies(t *testing.T) {
	d := newTestDispatcher(t, 2, 1, 6)
	q := d.NewQueue()
	page := testPage(2, d.Geometry().PageDataBytes)
	ctx := context.Background()
	if _, err := q.Submit(ctx, []Request{
		{Op: OpWrite, Die: 0, Block: 0, Page: 0, Data: page},
		{Op: OpWrite, Die: 1, Block: 0, Page: 0, Data: page},
	}); err != nil {
		t.Fatal(err)
	}
	base := d.Now()
	comps, err := q.Submit(ctx, []Request{
		{Op: OpRead, Die: 0, Block: 0, Page: 0},
		{Op: OpRead, Die: 1, Block: 0, Page: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	var oneRead, makespan time.Duration
	for _, c := range comps {
		if c.Err != nil {
			t.Fatal(c.Err)
		}
		if c.Start != base {
			t.Fatalf("die %d sense did not start at batch arrival: %v vs %v", c.Die, c.Start, base)
		}
		total := c.Read.Latency.TR + c.Read.Latency.Transfer + c.Read.Latency.Decode
		if total > oneRead {
			oneRead = total
		}
		if c.Finish-base > makespan {
			makespan = c.Finish - base
		}
	}
	if makespan <= oneRead {
		t.Fatalf("two reads as fast as one (%v <= %v): bus not serialising", makespan, oneRead)
	}
	if makespan >= 2*oneRead {
		t.Fatalf("two-die reads fully sequential (%v >= 2x%v): dies not interleaving", makespan, oneRead)
	}
}

func TestBadAddressTyped(t *testing.T) {
	d := newTestDispatcher(t, 2, 2, 7)
	q := d.NewQueue()
	ctx := context.Background()
	for _, req := range []Request{
		{Op: OpRead, Die: 2, Block: 0, Page: 0},
		{Op: OpRead, Die: 0, Block: 9, Page: 0},
		{Op: OpRead, Die: 0, Block: 0, Page: 99},
		{Op: OpErase, Die: -1, Block: 0},
	} {
		_, err := q.Do(ctx, req)
		if !errors.Is(err, ErrBadAddress) {
			t.Fatalf("%+v: want ErrBadAddress, got %v", req, err)
		}
		var oe *OpError
		if !errors.As(err, &oe) {
			t.Fatalf("%+v: error %v is not an *OpError", req, err)
		}
	}
	// Erase ignores the page field.
	if _, err := q.Do(ctx, Request{Op: OpErase, Die: 0, Block: 0, Page: 1 << 20}); err != nil {
		t.Fatalf("erase rejected its ignored page field: %v", err)
	}
}

func TestCloseSemantics(t *testing.T) {
	d := newTestDispatcher(t, 2, 2, 8)
	q := d.NewQueue()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal("second Close not idempotent:", err)
	}
	if _, err := q.Submit(context.Background(), []Request{{Op: OpRead}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: want ErrClosed, got %v", err)
	}
	if _, err := q.SubmitAsync(context.Background(), []Request{{Op: OpRead}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitAsync after Close: want ErrClosed, got %v", err)
	}
	if _, err := d.Cycles(0, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("control op after Close: want ErrClosed, got %v", err)
	}
}

func TestEraseAdvancesWear(t *testing.T) {
	d := newTestDispatcher(t, 1, 1, 9)
	q := d.NewQueue()
	ctx := context.Background()
	comp, err := q.Do(ctx, Request{Op: OpErase, Block: 0})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Finish <= comp.Start {
		t.Fatal("erase took no modelled time")
	}
	c, err := d.Cycles(0, 0)
	if err != nil || c != 1 {
		t.Fatalf("wear after erase: %v, %v", c, err)
	}
}

func TestControlOpsRouteThroughWorker(t *testing.T) {
	d := newTestDispatcher(t, 2, 2, 10)
	if err := d.SetCycles(1, 1, 5e4); err != nil {
		t.Fatal(err)
	}
	c, err := d.Cycles(1, 1)
	if err != nil || c != 5e4 {
		t.Fatalf("cycles round trip: %v, %v", c, err)
	}
	if err := d.AdvanceTime(100); err != nil {
		t.Fatal(err)
	}
	if d.Uncorrectables() != 0 {
		t.Fatal("phantom uncorrectables")
	}
}

func TestPerDieSeedsDecorrelated(t *testing.T) {
	d := newTestDispatcher(t, 2, 1, 11)
	q := d.NewQueue()
	ctx := context.Background()
	page := testPage(3, d.Geometry().PageDataBytes)
	// Age both dies to a wear where reads see many raw errors, then
	// compare the injected error patterns.
	for die := 0; die < 2; die++ {
		if err := d.SetCycles(die, 0, 1e5); err != nil {
			t.Fatal(err)
		}
		if _, err := q.Do(ctx, Request{Op: OpWrite, Die: die, Block: 0, Page: 0, Data: page}); err != nil {
			t.Fatal(err)
		}
	}
	c0, err := q.Do(ctx, Request{Op: OpRead, Die: 0, Block: 0, Page: 0})
	if err != nil {
		t.Fatal(err)
	}
	c1, err := q.Do(ctx, Request{Op: OpRead, Die: 1, Block: 0, Page: 0})
	if err != nil {
		t.Fatal(err)
	}
	if c0.Corrected == 0 && c1.Corrected == 0 {
		t.Skip("no raw errors at this wear/seed; cannot compare streams")
	}
	if c0.Corrected == c1.Corrected {
		t.Logf("note: dies corrected identical counts (%d); acceptable but unexpected", c0.Corrected)
	}
}

// TestRetryChargesTimeline pins the dispatcher's honesty about the
// recovery ladder: a read that walked N retry stages must occupy the
// modelled timeline for the sum of its per-stage costs (each re-sense
// pays tR on the die, transfer on the bus and decode on the codec), so
// aged-device throughput degrades exactly as the controller reports.
func TestRetryChargesTimeline(t *testing.T) {
	d := newTestDispatcher(t, 1, 2, 77)
	q := d.NewQueue()
	ctx := context.Background()
	page := testPage(9, d.Geometry().PageDataBytes)

	// A retention-baked end-of-life page: uncorrectable single-shot,
	// recovered within the ladder.
	if err := d.SetCycles(0, 0, 1e6); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Do(ctx, Request{Op: OpWrite, Block: 0, Page: 0, Data: page}); err != nil {
		t.Fatal(err)
	}
	if err := d.AdvanceTime(1e4); err != nil {
		t.Fatal(err)
	}

	zero := 0
	comp0, err := q.Do(ctx, Request{Op: OpRead, Block: 0, Page: 0, Retries: &zero})
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("baked EOL page decoded single-shot (%v); corner not exercised", err)
	}
	if comp0.Retries != 0 {
		t.Fatalf("zero-budget read reported %d retries", comp0.Retries)
	}

	comp, err := q.Do(ctx, Request{Op: OpRead, Block: 0, Page: 0})
	if err != nil {
		t.Fatalf("ladder did not recover the page: %v", err)
	}
	if comp.Retries == 0 {
		t.Fatal("recovered read reports zero retries")
	}
	if got := len(comp.Read.Stages); got != comp.Retries+1 {
		t.Fatalf("%d stages for %d retries", got, comp.Retries)
	}
	// The completion's span covers every stage: at least the summed
	// stage costs (queueing can only stretch it).
	if span := comp.Finish - comp.Start; span < comp.Read.Latency.Total() {
		t.Fatalf("timeline span %v below the %d-stage cost %v",
			span, comp.Retries+1, comp.Read.Latency.Total())
	}
	wantTR := time.Duration(comp.Retries+1) * 75 * time.Microsecond
	if comp.Read.Latency.TR != wantTR {
		t.Fatalf("ladder tR %v, want %v", comp.Read.Latency.TR, wantTR)
	}

	// And the single-attempt baseline on the same medium is strictly
	// cheaper than the recovered read's booked span.
	comp2, err := q.Do(ctx, Request{Op: OpRead, Block: 0, Page: 0})
	if err != nil {
		t.Fatal(err)
	}
	if comp2.Retries != 0 {
		// The calibration cache should have learned the offset; if not,
		// the comparison below would be meaningless.
		t.Fatalf("post-recovery read still paid %d retries", comp2.Retries)
	}
	if comp2.Latency() >= comp.Latency() {
		t.Fatalf("calibrated single-sense read (%v) not cheaper than the %d-stage walk (%v)",
			comp2.Latency(), comp.Retries+1, comp.Latency())
	}
}
