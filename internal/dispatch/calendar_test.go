package dispatch

import (
	"sort"
	"testing"
	"time"

	"xlnand/internal/stats"
)

// refCalendar is the straightforward pre-optimisation calendar: one
// sorted busy list, earliest-gap search by linear scan, no fast path,
// no amortised compaction. The production calendar must reproduce its
// timeline exactly wherever compaction has not (yet) forfeited a gap.
type refCalendar struct {
	busy []span
}

func (r *refCalendar) acquire(earliest, dur time.Duration) (start, end time.Duration) {
	if dur <= 0 {
		return earliest, earliest
	}
	start = earliest
	idx := len(r.busy)
	for i, s := range r.busy {
		if s.end <= start {
			continue
		}
		if start+dur <= s.start {
			idx = i
			break
		}
		start = s.end
	}
	end = start + dur
	if idx > 0 && r.busy[idx-1].end == start {
		r.busy[idx-1].end = end
		if idx < len(r.busy) && r.busy[idx].start == end {
			r.busy[idx-1].end = r.busy[idx].end
			r.busy = append(r.busy[:idx], r.busy[idx+1:]...)
		}
	} else if idx < len(r.busy) && r.busy[idx].start == end {
		r.busy[idx].start = start
	} else {
		r.busy = append(r.busy, span{})
		copy(r.busy[idx+1:], r.busy[idx:])
		r.busy[idx] = span{start, end}
	}
	return start, end
}

// TestCalendarMatchesReference drives the production calendar and the
// reference through an identical seeded stream of forward marches and
// laggard backfills (kept under the compaction threshold, where the two
// are defined to agree) and requires every reservation to match.
func TestCalendarMatchesReference(t *testing.T) {
	rng := stats.NewRNG(20260808)
	var cal calendar
	var ref refCalendar
	cursor := time.Duration(0)
	for i := 0; i < 3000; i++ {
		var earliest time.Duration
		dur := time.Duration(1+rng.Intn(5)) * time.Microsecond
		switch {
		case i%7 == 3 && cursor > 40*time.Microsecond:
			// Laggard backfill well behind the high-water mark.
			earliest = cursor - time.Duration(10+rng.Intn(30))*time.Microsecond
		case i%11 == 5:
			// Re-reservation at the exact cursor (abutting coalesce path).
			earliest = cursor
		default:
			cursor += time.Duration(rng.Intn(8)) * time.Microsecond
			earliest = cursor
		}
		gs, ge := cal.acquire(earliest, dur)
		ws, we := ref.acquire(earliest, dur)
		if gs != ws || ge != we {
			t.Fatalf("acquire %d (earliest=%v dur=%v): got [%v,%v), reference [%v,%v)",
				i, earliest, dur, gs, ge, ws, we)
		}
		if ge > cursor {
			cursor = ge
		}
	}
	if len(cal.busy) >= 2*maxCalendarSpans {
		t.Fatalf("test stayed under the compaction threshold by design, busy=%d", len(cal.busy))
	}
}

// TestCalendarCompactionNoDoubleBooking drives a calendar far past the
// amortised-compaction threshold with gappy (never-coalescing) acquires
// plus periodic backfills, then asserts every reservation ever granted
// is pairwise disjoint: compaction may forfeit backfill gaps (extra
// serialisation) but must never hand the same virtual time out twice.
// It also pins the memory bound: the span slice never exceeds twice the
// nominal budget.
func TestCalendarCompactionNoDoubleBooking(t *testing.T) {
	rng := stats.NewRNG(4242)
	var cal calendar
	var got []span
	cursor := time.Duration(0)
	const acquires = 3*maxCalendarSpans + 500
	for i := 0; i < acquires; i++ {
		var earliest time.Duration
		dur := time.Duration(1+rng.Intn(3)) * time.Microsecond
		if i%9 == 7 && cursor > 100*time.Microsecond {
			earliest = cursor - time.Duration(20+rng.Intn(80))*time.Microsecond
		} else {
			// Leave a gap so spans cannot coalesce and the busy list
			// genuinely grows toward the compaction threshold.
			cursor += dur + time.Duration(1+rng.Intn(4))*time.Microsecond
			earliest = cursor
		}
		s, e := cal.acquire(earliest, dur)
		if e != s+dur {
			t.Fatalf("acquire %d: got [%v,%v), want length %v", i, s, e, dur)
		}
		if s < earliest {
			t.Fatalf("acquire %d: start %v before earliest %v", i, s, earliest)
		}
		got = append(got, span{s, e})
		if len(cal.busy) > 2*maxCalendarSpans {
			t.Fatalf("acquire %d: busy list %d spans exceeds the 2x budget bound", i, len(cal.busy))
		}
		if e > cursor {
			cursor = e
		}
	}
	if len(cal.busy) >= 2*maxCalendarSpans {
		t.Fatalf("compaction never ran: %d spans", len(cal.busy))
	}
	sort.Slice(got, func(i, j int) bool { return got[i].start < got[j].start })
	for i := 1; i < len(got); i++ {
		if got[i].start < got[i-1].end {
			t.Fatalf("double booking: [%v,%v) overlaps [%v,%v)",
				got[i-1].start, got[i-1].end, got[i].start, got[i].end)
		}
	}
}

// TestShardedTimelineMatchesSingleLock replays a seeded 4-die batch —
// each die marching its own array clock, then contending for the shared
// bus and codec — against (a) the sharded per-resource calendars the
// dispatcher uses and (b) a single-lock reference in which both
// resources live behind one serial point. The virtual timelines must be
// identical: sharding changes lock granularity, never modelled time.
func TestShardedTimelineMatchesSingleLock(t *testing.T) {
	rng := stats.NewRNG(77)
	const dies, steps = 4, 2000

	type batch struct{ tR, xfer, dec time.Duration }
	plan := make([]batch, steps)
	for i := range plan {
		plan[i] = batch{
			tR:   time.Duration(70+rng.Intn(10)) * time.Microsecond,
			xfer: time.Duration(8+rng.Intn(4)) * time.Microsecond,
			dec:  time.Duration(2+rng.Intn(6)) * time.Microsecond,
		}
	}

	run := func(bus, codec interface {
		acquire(time.Duration, time.Duration) (time.Duration, time.Duration)
	}) []time.Duration {
		clocks := make([]time.Duration, dies)
		done := make([]time.Duration, 0, steps)
		for i, b := range plan {
			d := i % dies
			ready := clocks[d] + b.tR
			_, busEnd := bus.acquire(ready, b.xfer)
			_, decEnd := codec.acquire(busEnd, b.dec)
			clocks[d] = decEnd
			done = append(done, decEnd)
		}
		return done
	}

	sharded := run(&calendar{}, &calendar{})
	single := run(&refCalendar{}, &refCalendar{})
	for i := range sharded {
		if sharded[i] != single[i] {
			t.Fatalf("step %d: sharded completion %v, single-lock reference %v", i, sharded[i], single[i])
		}
	}
}
