package dispatch

import (
	"context"
	"sync"

	"xlnand/internal/controller"
)

// Queue is a submission/completion handle onto the dispatcher. Any
// number of queues may target one dispatcher from any number of
// goroutines; per-die ordering follows submission order.
type Queue struct {
	d *Dispatcher
}

// NewQueue returns a submission handle. Queues are cheap: they carry no
// state beyond the dispatcher reference.
func (d *Dispatcher) NewQueue() *Queue { return &Queue{d: d} }

// Dispatcher returns the backing dispatcher.
func (q *Queue) Dispatcher() *Dispatcher { return q.d }

// submit fans a batch out to the die workers. deliver(i, c) is called
// exactly once per request, from worker goroutines or inline for
// requests that fail validation or hit a closing dispatcher; the
// returned WaitGroup drains when all completions have been delivered.
func (q *Queue) submit(ctx context.Context, reqs []Request, deliver func(int, Completion)) *sync.WaitGroup {
	if ctx == nil {
		ctx = context.Background()
	}
	arrival := q.d.Now()
	wg := &sync.WaitGroup{}
	for i := range reqs {
		req := reqs[i]
		if err := q.d.validate(&req); err != nil {
			c := Completion{Tag: req.Tag, Op: req.Op, Die: req.Die, Block: req.Block, Page: req.Page}
			c.Start, c.Finish = arrival, arrival
			c.Err = opErr(req, err)
			deliver(i, c)
			continue
		}
		idx := i
		wg.Add(1)
		j := &job{
			ctx:     ctx,
			req:     req,
			arrival: arrival,
			deliver: func(c Completion) {
				deliver(idx, c)
				wg.Done()
			},
		}
		if err := q.d.enqueue(req.Die, j); err != nil {
			wg.Done()
			c := Completion{Tag: req.Tag, Op: req.Op, Die: req.Die, Block: req.Block, Page: req.Page}
			c.Start, c.Finish = arrival, arrival
			c.Err = opErr(req, err)
			deliver(i, c)
		}
	}
	return wg
}

// Submit executes a batch and blocks until every request has completed
// (or been skipped after ctx was cancelled). Completions are returned in
// request order; per-request failures are reported in Completion.Err as
// *OpError values, so one bad request never fails the batch. The
// returned error is non-nil only for batch-level conditions: a closed
// sub-system (ErrClosed) or a cancelled context.
func (q *Queue) Submit(ctx context.Context, reqs []Request) ([]Completion, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	q.d.closeMu.RLock()
	closed := q.d.closed
	q.d.closeMu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	comps := make([]Completion, len(reqs))
	q.submit(ctx, reqs, func(i int, c Completion) { comps[i] = c }).Wait()
	if err := ctx.Err(); err != nil {
		return comps, err
	}
	return comps, nil
}

// SubmitAsync executes a batch without blocking: completions stream onto
// the returned channel in finish order (not request order — use Tag to
// correlate) and the channel closes after the last one. Cancelling ctx
// skips not-yet-executed requests; their completions carry the context
// error.
func (q *Queue) SubmitAsync(ctx context.Context, reqs []Request) (<-chan Completion, error) {
	q.d.closeMu.RLock()
	closed := q.d.closed
	q.d.closeMu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	out := make(chan Completion, len(reqs))
	wg := q.submit(ctx, reqs, func(_ int, c Completion) { out <- c })
	go func() {
		wg.Wait()
		close(out)
	}()
	return out, nil
}

// Do executes a single request synchronously. A request-level failure
// is returned as a *OpError; batch-level conditions (closed sub-system,
// cancelled context) come back as the bare sentinel with an empty
// Completion, exactly as Submit reports them.
func (q *Queue) Do(ctx context.Context, req Request) (Completion, error) {
	comps, err := q.Submit(ctx, []Request{req})
	if err != nil {
		return Completion{}, err
	}
	return comps[0], comps[0].Err
}

// DoRead executes a single read synchronously through the pooled
// allocation-free path: the decoded page lands in dst (when it is at
// least page-sized; Completion.Data and out.Data then alias dst) and
// the full result is written into out, which the caller owns and must
// keep stable until DoRead returns. Semantics — validation, calendar
// booking, error reporting — are identical to Do with an OpRead
// request.
func (q *Queue) DoRead(ctx context.Context, req Request, dst []byte, out *controller.ReadResult) (Completion, error) {
	return q.doLean(ctx, req, dst, out, nil)
}

// DoWrite is DoRead's write-side twin: a synchronous write whose result
// lands in the caller-owned out scratch instead of a fresh allocation.
func (q *Queue) DoWrite(ctx context.Context, req Request, out *controller.WriteResult) (Completion, error) {
	return q.doLean(ctx, req, nil, nil, out)
}

// doLean runs one request through a pooled job and the worker's
// scratch-result path. The job (and its completion channel) is reused
// across calls; the blocked caller reclaims it after the worker's
// hand-back send.
//
// When the target die is provably idle — nothing enqueued or executing
// on its worker — the request executes inline on the caller's goroutine
// under the die mutex instead: the synchronous single-client pattern
// (one FTL per die issuing one op at a time, the fleet hot path) then
// pays no channel hop and no goroutine wakeup per op. Ordering is
// preserved: an ordered submitter's previous op has fully drained
// (pending == 0) before the inline path is taken, and racing concurrent
// submitters never had a defined order between them.
func (q *Queue) doLean(ctx context.Context, req Request, dst []byte, rres *controller.ReadResult, wres *controller.WriteResult) (Completion, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	arrival := q.d.Now()
	if err := q.d.validate(&req); err != nil {
		c := Completion{Tag: req.Tag, Op: req.Op, Die: req.Die, Block: req.Block, Page: req.Page}
		c.Start, c.Finish = arrival, arrival
		c.Err = opErr(req, err)
		return c, c.Err
	}
	d := q.d
	if w := d.dies[req.Die]; w.pending.Load() == 0 && w.mu.TryLock() {
		if w.pending.Load() != 0 {
			// A job slipped onto the inbox between the check and the
			// lock; let the worker keep FIFO order.
			w.mu.Unlock()
		} else {
			// Hold the close guard for the duration: after Close returns,
			// no inline execution is in flight, matching the worker
			// drain guarantee.
			d.closeMu.RLock()
			if d.closed {
				d.closeMu.RUnlock()
				w.mu.Unlock()
				return Completion{}, ErrClosed
			}
			j := job{ctx: ctx, req: req, arrival: arrival, dst: dst, rres: rres, wres: wres}
			c := d.execute(w, &j)
			d.closeMu.RUnlock()
			w.mu.Unlock()
			d.bumpNow(c.Finish)
			return c, c.Err
		}
	}
	j := jobPool.Get().(*job)
	j.ctx, j.req, j.arrival = ctx, req, arrival
	j.dst, j.rres, j.wres = dst, rres, wres
	if err := q.d.enqueue(req.Die, j); err != nil {
		j.ctx, j.req = nil, Request{}
		j.dst, j.rres, j.wres = nil, nil, nil
		jobPool.Put(j)
		return Completion{}, err
	}
	c := <-j.sync
	j.ctx, j.req = nil, Request{}
	j.dst, j.rres, j.wres = nil, nil, nil
	jobPool.Put(j)
	return c, c.Err
}
