package dispatch

import (
	"bytes"
	"context"
	"testing"

	"xlnand/internal/controller"
	"xlnand/internal/ecc"
	"xlnand/internal/nand"
	"xlnand/internal/sim"
)

// tagFor encodes an address into an opaque caller token with a marker
// in the high bits, so a completion that lost or mangled its tag can't
// accidentally collide with a valid one.
func tagFor(die, page int) uint64 {
	return 0xfee1_0000_0000_0000 | uint64(die)<<16 | uint64(page)
}

// TestTagsSurviveRetries drives an aged medium through SubmitAsync —
// completions arrive in finish order, so the tag is the only identity —
// and checks every tag comes back exactly once, on the completion whose
// address and payload it was attached to, including reads that walked
// the recovery ladder.
func TestTagsSurviveRetries(t *testing.T) {
	d := newTestDispatcher(t, 2, 2, 424)
	q := d.NewQueue()
	ctx := context.Background()
	geo := d.Geometry()

	// End-of-life retention bake on die 0 only: its reads pay retries,
	// die 1's stay single-shot, and the async stream interleaves both.
	if err := d.SetCycles(0, 0, 1e6); err != nil {
		t.Fatal(err)
	}
	const pages = 8
	payload := map[uint64][]byte{}
	for die := 0; die < 2; die++ {
		for p := 0; p < pages; p++ {
			data := testPage(uint64(100+die*pages+p), geo.PageDataBytes)
			payload[tagFor(die, p)] = data
			if _, err := q.Do(ctx, Request{Op: OpWrite, Die: die, Block: 0, Page: p, Data: data}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := d.AdvanceTime(1e4); err != nil {
		t.Fatal(err)
	}

	var reqs []Request
	for p := 0; p < pages; p++ {
		for die := 0; die < 2; die++ {
			reqs = append(reqs, Request{Op: OpRead, Die: die, Block: 0, Page: p, Tag: tagFor(die, p)})
		}
	}
	ch, err := q.SubmitAsync(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	retried := 0
	for comp := range ch {
		if comp.Err != nil {
			t.Fatalf("read %d/%d.%d failed: %v", comp.Die, comp.Block, comp.Page, comp.Err)
		}
		want, ok := payload[comp.Tag]
		if !ok {
			t.Fatalf("completion carries unknown tag %#x", comp.Tag)
		}
		if seen[comp.Tag] {
			t.Fatalf("tag %#x delivered twice", comp.Tag)
		}
		seen[comp.Tag] = true
		if got := tagFor(comp.Die, comp.Page); got != comp.Tag {
			t.Fatalf("tag %#x delivered on completion for die %d page %d (expected tag %#x): attribution broke",
				comp.Tag, comp.Die, comp.Page, got)
		}
		if !bytes.Equal(comp.Data, want) {
			t.Fatalf("tag %#x delivered someone else's data", comp.Tag)
		}
		if comp.Retries > 0 {
			retried++
		}
	}
	if len(seen) != len(reqs) {
		t.Fatalf("%d tags delivered, want %d", len(seen), len(reqs))
	}
	if retried == 0 {
		t.Fatal("no read paid a retry; the tags-through-recovery path was not exercised")
	}
}

// TestTagsSurviveSoftRungs repeats the attribution check through the
// deepest recovery path: LDPC soft-decision rungs, where one request
// fans out into many component senses before the completion forms.
func TestTagsSurviveSoftRungs(t *testing.T) {
	steps := nand.DefaultStressConfig().RetrySteps
	ctrlCfg := controller.DefaultConfig()
	ctrlCfg.MaxRetries = steps + 2 // leaves one attempt past the hard ladder
	ctrlCfg.SoftRetries = 1
	d, err := New(Config{
		Dies: 1, BlocksPerDie: 2, Seed: 909,
		Env: sim.DefaultEnv(), Controller: ctrlCfg,
		Family: ecc.FamilyLDPC,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	q := d.NewQueue()
	ctx := context.Background()
	geo := d.Geometry()

	// Deep enough that the hard ladder alone loses pages and the soft
	// rung is what brings them back (the controller soft tests' corner).
	if err := d.SetCycles(0, 0, 2e7); err != nil {
		t.Fatal(err)
	}
	const pages = 8
	payload := map[uint64][]byte{}
	for p := 0; p < pages; p++ {
		data := testPage(uint64(700+p), geo.PageDataBytes)
		payload[tagFor(0, p)] = data
		if _, err := q.Do(ctx, Request{Op: OpWrite, Block: 0, Page: p, Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AdvanceTime(1e5); err != nil {
		t.Fatal(err)
	}

	var reqs []Request
	for p := 0; p < pages; p++ {
		reqs = append(reqs, Request{Op: OpRead, Block: 0, Page: p, Tag: tagFor(0, p)})
	}
	ch, err := q.SubmitAsync(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	softSaves := 0
	for comp := range ch {
		want, ok := payload[comp.Tag]
		if !ok {
			t.Fatalf("completion carries unknown tag %#x", comp.Tag)
		}
		if seen[comp.Tag] {
			t.Fatalf("tag %#x delivered twice", comp.Tag)
		}
		seen[comp.Tag] = true
		if got := tagFor(comp.Die, comp.Page); got != comp.Tag {
			t.Fatalf("tag %#x delivered on completion for page %d: attribution broke", comp.Tag, comp.Page)
		}
		if comp.Err != nil {
			continue // a lost page still owes its (correct) tag; data is moot
		}
		if !bytes.Equal(comp.Data, want) {
			t.Fatalf("tag %#x delivered someone else's data", comp.Tag)
		}
		if comp.SoftSenses > 0 {
			softSaves++
		}
	}
	if len(seen) != len(reqs) {
		t.Fatalf("%d tags delivered, want %d", len(seen), len(reqs))
	}
	if softSaves == 0 {
		t.Fatal("no read went soft; the tags-through-soft-rung path was not exercised")
	}
}
