// Package dispatch makes multi-die execution real: it fans queued I/O
// requests out across N NAND dies with one worker goroutine per die,
// while serialising the two resources the dies share — the flash bus and
// the adaptive BCH codec — on a modelled timeline that follows the
// internal/timing constants. The analytic multi-die pipeline of
// internal/sim (ScaleDies: array operations parallel across dies, bus
// and codec shared) thereby becomes measurable behaviour: a batch's
// completions carry virtual start/finish stamps whose makespan
// reproduces the model's steady-state throughput.
//
// Concurrency model: each die owns its device and controller exclusively
// through its worker goroutine, so device state (page arrays, wear,
// fault-injection RNG) is never shared. The BCH codec instance is shared
// across dies — it is safe for concurrent use and mirrors the single
// hardware codec of the paper's controller — and its serialisation, like
// the bus's, is modelled by a mutex-guarded virtual clock rather than by
// actual lock-step execution.
package dispatch

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xlnand/internal/bch"
	"xlnand/internal/controller"
	"xlnand/internal/ecc"
	"xlnand/internal/ldpc"
	"xlnand/internal/nand"
	"xlnand/internal/obs"
	"xlnand/internal/sim"
)

// Trace thread ids within a dispatcher's trace process: the shared bus
// and codec get fixed lanes, dies start at traceTidDie0. These are
// stable across runs (part of the byte-identical trace contract).
const (
	traceTidBus   = 1
	traceTidCodec = 2
	traceTidFTL   = 3
	traceTidDie0  = 10
)

// vclock is a monotone virtual-time resource: acquire reserves dur
// starting no earlier than earliest, after any prior reservation has
// drained. It models a strictly FIFO unit — each die's command queue.
type vclock struct {
	mu     sync.Mutex
	freeAt time.Duration
}

func (v *vclock) acquire(earliest, dur time.Duration) (start, end time.Duration) {
	v.mu.Lock()
	defer v.mu.Unlock()
	start = earliest
	if v.freeAt > start {
		start = v.freeAt
	}
	end = start + dur
	v.freeAt = end
	return start, end
}

// span is one busy interval on a calendar resource.
type span struct {
	start, end time.Duration
}

// maxCalendarSpans is the calendar's nominal span budget. Compaction is
// amortised: the slice may grow to twice this before the oldest spans
// are coalesced back down to the budget (one O(n) copy per ~n acquires
// instead of one per acquire at the cap), which only forfeits backfill
// opportunities (more serialisation, never double-booking).
const maxCalendarSpans = 4096

// calendar is a shared virtual-time resource with arbitration: acquire
// places dur into the earliest gap at or after earliest. Unlike vclock,
// reservation order does not bias the timeline — a worker racing ahead
// in real time cannot push other dies' earlier-readiness transfers
// behind its own future ones, which is how a fair bus or codec arbiter
// behaves. Busy intervals are kept sorted and coalesced.
//
// The common case by far is a reservation at or past the calendar's
// high-water mark (the timeline mostly moves forward), for which the
// gap search provably returns [earliest, earliest+dur): one tail
// comparison detects that case up front and the critical section is a
// constant-time append — no scan, no span copying. Reservations behind
// the high-water mark (laggard dies backfilling) binary-search to the
// first span that can constrain them instead of walking the whole
// calendar.
type calendar struct {
	mu   sync.Mutex
	busy []span
}

func (c *calendar) acquire(earliest, dur time.Duration) (start, end time.Duration) {
	if dur <= 0 {
		return earliest, earliest
	}
	c.mu.Lock()
	if n := len(c.busy); n == 0 || c.busy[n-1].end <= earliest {
		// Fast path: nothing booked at or after earliest, so the search
		// below would scan past every span and book at earliest.
		start, end = earliest, earliest+dur
		if n > 0 && c.busy[n-1].end == start {
			c.busy[n-1].end = end
		} else {
			c.busy = append(c.busy, span{start, end})
		}
		c.compact()
		c.mu.Unlock()
		return start, end
	}
	defer c.mu.Unlock()
	start = earliest
	// Spans are disjoint and sorted, so their ends are increasing: skip
	// straight past everything that ends at or before the candidate —
	// those spans impose no constraint (the linear scan would `continue`
	// over each of them).
	lo := sort.Search(len(c.busy), func(i int) bool { return c.busy[i].end > earliest })
	idx := len(c.busy)
	for i := lo; i < len(c.busy); i++ {
		s := c.busy[i]
		if start+dur <= s.start {
			idx = i // fits in the gap before this span
			break
		}
		start = s.end // collides; try after this span
	}
	end = start + dur
	// Insert [start, end) at idx, coalescing with abutting neighbours.
	if idx > 0 && c.busy[idx-1].end == start {
		c.busy[idx-1].end = end
		if idx < len(c.busy) && c.busy[idx].start == end {
			c.busy[idx-1].end = c.busy[idx].end
			c.busy = append(c.busy[:idx], c.busy[idx+1:]...)
		}
	} else if idx < len(c.busy) && c.busy[idx].start == end {
		c.busy[idx].start = start
	} else {
		c.busy = append(c.busy, span{})
		copy(c.busy[idx+1:], c.busy[idx:])
		c.busy[idx] = span{start, end}
	}
	c.compact()
	return start, end
}

// compact coalesces the oldest spans into one once the calendar has
// doubled past its budget, copying the survivors down in place. Run
// under c.mu.
func (c *calendar) compact() {
	if len(c.busy) < 2*maxCalendarSpans {
		return
	}
	drop := len(c.busy) - maxCalendarSpans
	c.busy[drop] = span{c.busy[0].start, c.busy[drop].end}
	n := copy(c.busy, c.busy[drop:])
	c.busy = c.busy[:n]
}

// die bundles one NAND die with its controller, worker inbox and array
// clock. ctrl and its device are exclusively owned: every job — whether
// routed through the worker goroutine or executed inline by the lean
// synchronous fast path — runs under mu.
type die struct {
	idx   int
	ctrl  *controller.Controller
	jobs  chan *job
	clock vclock // array occupancy (sensing / program / erase)

	// trace is the die's span stream (nil when tracing is off). Appends
	// happen only inside execute, which always runs under mu — that
	// single-writer discipline is what keeps traced runs race-free. tid
	// is the die's thread lane in the trace process.
	trace *obs.Stream
	tid   int32

	// mu serialises controller/device access between the worker and
	// direct (inline) executors; pending counts jobs enqueued on the
	// worker inbox that have not finished executing, so a direct
	// executor can prove the die idle — taking the inline path only
	// when nothing is queued preserves per-die FIFO ordering for every
	// ordered (non-concurrent) submission sequence.
	mu      sync.Mutex
	pending atomic.Int64
}

// job carries either one Request or a control function through a die's
// worker, which owns the controller.
type job struct {
	ctx     context.Context
	req     Request
	arrival time.Duration
	deliver func(Completion)

	// Lean synchronous path (DoRead/DoWrite): the worker decodes into
	// dst, stores the result in the caller's rres/wres scratch, and
	// sends the completion on sync instead of calling deliver — no
	// per-operation allocation. jobs on this path are pooled (jobPool);
	// sync is allocated once per pooled job and reused.
	dst  []byte
	rres *controller.ReadResult
	wres *controller.WriteResult
	sync chan Completion

	// Control path: fn runs on the worker with exclusive controller
	// access; done receives one token afterwards. done channels are
	// pooled (see donePool), so completion is signalled by send, not
	// close.
	fn   func(*controller.Controller)
	done chan struct{}
}

// jobPool recycles lean-path jobs: the synchronous FTL read/write fast
// path issues one job per physical page op, and allocating job +
// channel + closure per op dominated the dispatch overhead of
// fleet-scale runs.
var jobPool = sync.Pool{New: func() any { return &job{sync: make(chan Completion, 1)} }}

// donePool recycles the control path's completion channels: a control
// call is a tiny synchronous hop onto a die worker, and allocating a
// fresh channel per call made wear polling (Cycles/SetCycles/statistics)
// measurably garbage-heavy under load.
var donePool = sync.Pool{New: func() any { return make(chan struct{}, 1) }}

// Config parametrises dispatcher construction.
type Config struct {
	Dies         int
	BlocksPerDie int
	Seed         uint64
	Env          sim.Env
	Controller   controller.Config
	// Family selects the shared codec's ECC family (the zero value is
	// the paper's adaptive BCH; ecc.FamilyLDPC builds the soft-decision
	// LDPC codec instead).
	Family ecc.Family
	// Trace, when non-nil, is the trace process this dispatcher's
	// virtual timeline is recorded into: every calendar booking (die
	// sense/program, bus transfer, codec encode/decode) becomes a span
	// stamped with the booked virtual interval, retry-ladder rungs and
	// soft-sense escalations carry step/sense arguments. Nil (the
	// default) compiles the hooks down to nil-stream no-ops.
	Trace *obs.Proc
}

// Dispatcher drives N dies behind shared bus and codec clocks.
type Dispatcher struct {
	env   sim.Env
	codec ecc.Codec
	dies  []*die

	bus      calendar
	codecClk calendar

	// policy holds the sub-system-wide defaults a request may override.
	policyMu    sync.Mutex
	defaultMode sim.Mode
	pinnedT     int  // pinned capability level; meaningful only when pinned
	pinned      bool // false = adaptive (reliability manager in charge)
	algOverride *nand.Algorithm

	// vnow is the high-water mark of the modelled timeline; submissions
	// arrive at the current mark so synchronous callers never pipeline
	// with operations they already waited for.
	nowMu sync.Mutex
	vnow  time.Duration

	closeMu sync.RWMutex
	closed  bool
	wg      sync.WaitGroup
}

// dieSeedStride decorrelates the per-die fault-injection RNG streams;
// die 0 adds 0·stride, so legacy single-die seeds reproduce the exact
// same fault-injection behaviour.
const dieSeedStride = 0x9e3779b97f4a7c15

// buildCodec constructs the shared adaptive codec for the configured
// family — the single hardware ECC block every die contends for.
func buildCodec(cfg Config) (ecc.Codec, error) {
	switch cfg.Family {
	case ecc.FamilyBCH:
		c, err := bch.NewCodec(cfg.Env.M, cfg.Env.K, cfg.Env.TMin, cfg.Env.TMax)
		if err != nil {
			return nil, err
		}
		return bch.NewHWCodec(c, cfg.Env.HW), nil
	case ecc.FamilyLDPC:
		c, err := ldpc.NewPageCodec()
		if err != nil {
			return nil, err
		}
		return c, nil
	default:
		return nil, fmt.Errorf("dispatch: unknown codec family %d", int(cfg.Family))
	}
}

// New builds a dispatcher: one device + controller per die sharing a
// single adaptive codec, workers started.
func New(cfg Config) (*Dispatcher, error) {
	if cfg.Dies < 1 {
		return nil, fmt.Errorf("dispatch: die count %d < 1", cfg.Dies)
	}
	if cfg.BlocksPerDie < 0 {
		return nil, fmt.Errorf("dispatch: negative block count %d", cfg.BlocksPerDie)
	}
	codec, err := buildCodec(cfg)
	if err != nil {
		return nil, err
	}
	d := &Dispatcher{env: cfg.Env, codec: codec, defaultMode: sim.ModeNominal}
	if cfg.Trace != nil {
		cfg.Trace.Thread(traceTidBus, "bus")
		cfg.Trace.Thread(traceTidCodec, "codec")
	}
	for i := 0; i < cfg.Dies; i++ {
		dev := nand.NewDevice(cfg.Env.Cal, cfg.BlocksPerDie, cfg.Seed+uint64(i)*dieSeedStride)
		ctrl, err := controller.New(dev, codec, cfg.Controller)
		if err != nil {
			return nil, err
		}
		w := &die{idx: i, ctrl: ctrl, jobs: make(chan *job, 128), tid: traceTidDie0 + int32(i)}
		if cfg.Trace != nil {
			cfg.Trace.Thread(w.tid, fmt.Sprintf("die %d", i))
			w.trace = cfg.Trace.Stream()
		}
		d.dies = append(d.dies, w)
	}
	for _, w := range d.dies {
		d.wg.Add(1)
		go d.worker(w)
	}
	return d, nil
}

// Close stops every worker. Submissions after Close fail with ErrClosed;
// in-flight operations complete first.
func (d *Dispatcher) Close() error {
	d.closeMu.Lock()
	if d.closed {
		d.closeMu.Unlock()
		return nil
	}
	d.closed = true
	for _, w := range d.dies {
		close(w.jobs)
	}
	d.closeMu.Unlock()
	d.wg.Wait()
	return nil
}

// enqueue routes a job to its die, failing with ErrClosed after Close.
func (d *Dispatcher) enqueue(dieIdx int, j *job) error {
	d.closeMu.RLock()
	defer d.closeMu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	w := d.dies[dieIdx]
	w.pending.Add(1)
	w.jobs <- j
	return nil
}

// Geometry reports the driven configuration.
func (d *Dispatcher) Geometry() Geometry {
	cal := d.dies[0].ctrl.Device().Calibration()
	return Geometry{
		Dies:          len(d.dies),
		BlocksPerDie:  d.dies[0].ctrl.Device().Blocks(),
		PagesPerBlock: cal.PagesPerBlock,
		PageDataBytes: cal.PageDataBytes,
	}
}

// Env returns the analytic environment the dispatcher resolves modes
// against.
func (d *Dispatcher) Env() sim.Env { return d.env }

// Codec exposes the shared adaptive codec (one hardware ECC block for
// every die).
func (d *Dispatcher) Codec() ecc.Codec { return d.codec }

// Now returns the high-water mark of the modelled timeline.
func (d *Dispatcher) Now() time.Duration {
	d.nowMu.Lock()
	defer d.nowMu.Unlock()
	return d.vnow
}

func (d *Dispatcher) bumpNow(t time.Duration) {
	d.nowMu.Lock()
	if t > d.vnow {
		d.vnow = t
	}
	d.nowMu.Unlock()
}

// SetDefaultMode installs the sub-system default service level. A
// capability pinned via PinCapability survives mode switches (the
// manual-ECC contract); an expert algorithm override does not.
func (d *Dispatcher) SetDefaultMode(m sim.Mode) {
	d.policyMu.Lock()
	d.defaultMode = m
	d.algOverride = nil
	d.policyMu.Unlock()
}

// DefaultMode returns the current default service level.
func (d *Dispatcher) DefaultMode() sim.Mode {
	d.policyMu.Lock()
	defer d.policyMu.Unlock()
	return d.defaultMode
}

// PinCapability fixes the write capability level (manual ECC), silencing
// the reliability manager until Unpin. The level is clamped to the codec
// range (t for BCH, rate index for LDPC).
func (d *Dispatcher) PinCapability(t int) {
	d.policyMu.Lock()
	d.pinnedT = d.codec.ClampLevel(t)
	d.pinned = true
	d.policyMu.Unlock()
}

// Unpin returns capability selection to the reliability manager.
func (d *Dispatcher) Unpin() {
	d.policyMu.Lock()
	d.pinned = false
	d.policyMu.Unlock()
}

// PinnedT reports the manual capability level, or -1 when adaptive.
// (Level 0 is a valid pin for the LDPC family, so "nothing pinned"
// needs a value outside every family's level range.)
func (d *Dispatcher) PinnedT() int {
	d.policyMu.Lock()
	defer d.policyMu.Unlock()
	if !d.pinned {
		return -1
	}
	return d.pinnedT
}

// SetAlgorithmOverride pins the program algorithm regardless of the
// default mode (expert path). Cleared by SetDefaultMode.
func (d *Dispatcher) SetAlgorithmOverride(alg nand.Algorithm) {
	d.policyMu.Lock()
	a := alg
	d.algOverride = &a
	d.policyMu.Unlock()
}

func (d *Dispatcher) policySnapshot() (mode sim.Mode, pinnedT int, pinned bool, algOv *nand.Algorithm) {
	d.policyMu.Lock()
	defer d.policyMu.Unlock()
	return d.defaultMode, d.pinnedT, d.pinned, d.algOverride
}

// validate range-checks a request against the geometry.
func (d *Dispatcher) validate(req *Request) error {
	if req.Die < 0 || req.Die >= len(d.dies) {
		return fmt.Errorf("%w: die %d of %d", ErrBadAddress, req.Die, len(d.dies))
	}
	dev := d.dies[req.Die].ctrl.Device()
	if req.Block < 0 || req.Block >= dev.Blocks() {
		return fmt.Errorf("%w: block %d of %d", ErrBadAddress, req.Block, dev.Blocks())
	}
	if req.Op != OpErase && (req.Page < 0 || req.Page >= dev.PagesPerBlock()) {
		return fmt.Errorf("%w: page %d of %d", ErrBadAddress, req.Page, dev.PagesPerBlock())
	}
	return nil
}

// worker is the per-die execution loop: it owns the die's controller and
// device, executes jobs in FIFO order, and stamps each completion onto
// the shared modelled timeline.
func (d *Dispatcher) worker(w *die) {
	defer d.wg.Done()
	for j := range w.jobs {
		if j.fn != nil {
			w.mu.Lock()
			j.fn(w.ctrl)
			w.mu.Unlock()
			w.pending.Add(-1)
			j.done <- struct{}{}
			continue
		}
		w.mu.Lock()
		c := d.execute(w, j)
		w.mu.Unlock()
		w.pending.Add(-1)
		d.bumpNow(c.Finish)
		if j.sync != nil {
			// Lean path: hand the completion straight back to the blocked
			// caller. The caller owns j again after the receive, so the
			// worker must not touch it past this send.
			j.sync <- c
			continue
		}
		j.deliver(c)
	}
}

// resolveWrite turns policy + request overrides into the (algorithm,
// capability) pair for one write, per the paper's three service levels:
//
//   - explicit Request.T pins t for this write;
//   - a subsystem-wide pinned capability (manual ECC) comes next;
//   - min-UBER keeps the SV-sized capability while programming with DV;
//   - otherwise the die's reliability manager picks t for the wear.
func (d *Dispatcher) resolveWrite(w *die, req Request) (nand.Algorithm, int) {
	mode, pinnedT, pinned, algOv := d.policySnapshot()
	if req.Mode != nil {
		mode = *req.Mode
		algOv = nil // per-request mode is authoritative
	}
	alg := nand.ISPPSV
	if mode != sim.ModeNominal {
		alg = nand.ISPPDV
	}
	if algOv != nil {
		alg = *algOv
	}
	cycles, err := w.ctrl.Device().Cycles(req.Block)
	if err != nil {
		cycles = 0
	}
	var t int
	switch {
	case req.T > 0:
		t = req.T
	case pinned:
		t = pinnedT
	case mode == sim.ModeMinUBER:
		t = d.requiredLevelSV(cycles)
	default:
		t = w.ctrl.Manager().SelectLevel(alg, cycles)
	}
	return alg, t
}

// requiredLevelSV resolves the min-UBER placement level: the capability
// the configured family needs for the *SV* error rate at this wear —
// kept while programming with DV, which is what buys the UBER margin.
// Family-aware: the BCH family reproduces the paper's t staircase, LDPC
// resolves a rate index against its own reliability model.
func (d *Dispatcher) requiredLevelSV(cycles float64) int {
	rber := d.env.Cal.RBER(nand.ISPPSV, cycles)
	lvl, err := d.codec.RequiredLevel(rber, d.env.TargetUBER)
	if err != nil {
		return d.codec.MaxLevel()
	}
	return d.codec.ClampLevel(lvl)
}

// execute runs one request on the worker's die and books its pipeline
// stages onto the modelled timeline:
//
//	write: codec encode -> bus transfer -> die program
//	read:  die sensing (tR) -> bus transfer -> codec decode
//	erase: die occupancy only
//
// The die stage is private to the worker; bus and codec stages contend
// with every other die, which is exactly the serialisation ScaleDies
// assumes.
func (d *Dispatcher) execute(w *die, j *job) Completion {
	req := j.req
	comp := Completion{Tag: req.Tag, Op: req.Op, Die: req.Die, Block: req.Block, Page: req.Page}
	if err := j.ctx.Err(); err != nil {
		comp.Err = opErr(req, err)
		comp.Start, comp.Finish = j.arrival, j.arrival
		return comp
	}
	switch req.Op {
	case OpWrite:
		alg, t := d.resolveWrite(w, req)
		w.ctrl.SetAlgorithm(alg)
		w.ctrl.SetCapability(t)
		rp := j.wres
		if rp == nil {
			rp = new(controller.WriteResult)
		}
		res, err := w.ctrl.WritePage(req.Block, req.Page, req.Data)
		*rp = res
		comp.Write = rp
		comp.T, comp.Alg, comp.ParityBytes = res.T, res.Alg, res.ParityBy
		encS, encE := d.codecClk.acquire(j.arrival, res.Latency.Encode)
		busS, busE := d.bus.acquire(encE, res.Latency.Transfer)
		progS, progE := w.clock.acquire(busE, res.Latency.Program)
		comp.Start, comp.Finish = encS, progE
		if w.trace != nil {
			w.trace.Span1(traceTidCodec, "encode", encS, encE-encS, "t", int64(res.T))
			w.trace.Span(traceTidBus, "transfer", busS, busE-busS)
			w.trace.Span1(w.tid, "program", progS, progE-progS, "page", int64(req.Page))
		}
		if err != nil {
			comp.Err = opErr(req, err)
		}
	case OpRead:
		rp := j.rres
		if rp == nil {
			rp = new(controller.ReadResult)
		}
		retries := w.ctrl.ReadRetry()
		if req.Retries != nil {
			retries = *req.Retries
		}
		res, err := w.ctrl.ReadPageRetryInto(req.Block, req.Page, retries, j.dst)
		*rp = res
		comp.Read = rp
		comp.Data, comp.T, comp.Alg, comp.Corrected = res.Data, res.T, res.Alg, res.Corrected
		comp.Retries = res.Retries
		comp.SoftSenses = res.SoftSenses
		// Book every recovery-ladder stage on the calendars: each
		// re-sense occupies the die array again, each re-transfer the
		// shared bus, each re-decode the shared codec — so multi-die
		// throughput honestly degrades as the device ages into retries.
		cursor := j.arrival
		started := false
		rung := 0
		var start time.Duration
		book := func(st controller.ReadLatency, step int, soft bool, senses int) {
			senseS, senseE := w.clock.acquire(cursor, st.TR)
			busS, busE := d.bus.acquire(senseE, st.Transfer)
			decS, decE := d.codecClk.acquire(busE, st.Decode)
			if w.trace != nil {
				if !started && senseS > j.arrival {
					// Queue wait: the gap between request arrival and the
					// first sense actually starting on the die array.
					w.trace.Span(w.tid, "queue_wait", j.arrival, senseS-j.arrival)
				}
				if soft {
					w.trace.Span2(w.tid, "soft_sense", senseS, senseE-senseS, "step", int64(step), "senses", int64(senses))
				} else {
					w.trace.Span2(w.tid, "sense", senseS, senseE-senseS, "step", int64(step), "rung", int64(rung))
				}
				w.trace.Span(traceTidBus, "transfer", busS, busE-busS)
				w.trace.Span1(traceTidCodec, "decode", decS, decE-decS, "rung", int64(rung))
			}
			if !started {
				start, started = senseS, true
			}
			rung++
			cursor = decE
		}
		if len(res.Stages) == 0 {
			book(res.Latency, res.AppliedOffset, res.Soft, res.SoftSenses)
		} else {
			for _, st := range res.Stages {
				book(st.Latency, st.Step, st.Soft, st.Senses)
			}
		}
		comp.Start, comp.Finish = start, cursor
		if err != nil {
			comp.Err = opErr(req, err)
		}
	case OpErase:
		err := w.ctrl.EraseBlock(req.Block)
		var dur time.Duration
		if err == nil {
			dur = w.ctrl.Device().LastOpDuration()
		}
		s, e := w.clock.acquire(j.arrival, dur)
		comp.Start, comp.Finish = s, e
		if w.trace != nil {
			w.trace.Span1(w.tid, "erase", s, e-s, "block", int64(req.Block))
		}
		if err != nil {
			comp.Err = opErr(req, err)
		}
	default:
		comp.Err = opErr(req, fmt.Errorf("unknown op %d", int(req.Op)))
		comp.Start, comp.Finish = j.arrival, j.arrival
	}
	return comp
}

// control runs fn on the die's worker goroutine with exclusive access to
// its controller and device (the race-free path for wear manipulation
// and statistics while traffic may be in flight).
func (d *Dispatcher) control(dieIdx int, fn func(*controller.Controller)) error {
	if dieIdx < 0 || dieIdx >= len(d.dies) {
		return fmt.Errorf("%w: die %d of %d", ErrBadAddress, dieIdx, len(d.dies))
	}
	done := donePool.Get().(chan struct{})
	j := &job{fn: fn, done: done}
	if err := d.enqueue(dieIdx, j); err != nil {
		donePool.Put(done)
		return err
	}
	<-done
	donePool.Put(done)
	return nil
}

// Cycles returns a block's program/erase wear.
func (d *Dispatcher) Cycles(dieIdx, block int) (float64, error) {
	var cycles float64
	var cerr error
	err := d.control(dieIdx, func(c *controller.Controller) {
		cycles, cerr = c.Device().Cycles(block)
	})
	if err != nil {
		return 0, err
	}
	return cycles, cerr
}

// BlockReads returns a block's reads since its last erase (the
// read-disturb stress counter the FTL's retry guard budgets against).
func (d *Dispatcher) BlockReads(dieIdx, block int) (float64, error) {
	var reads float64
	var cerr error
	err := d.control(dieIdx, func(c *controller.Controller) {
		reads, cerr = c.Device().BlockReads(block)
	})
	if err != nil {
		return 0, err
	}
	return reads, cerr
}

// SetCycles fast-forwards a block's wear (lifetime studies).
func (d *Dispatcher) SetCycles(dieIdx, block int, cycles float64) error {
	var cerr error
	err := d.control(dieIdx, func(c *controller.Controller) {
		cerr = c.Device().SetCycles(block, cycles)
	})
	if err != nil {
		return err
	}
	return cerr
}

// AdvanceTime moves every die's retention clock forward.
func (d *Dispatcher) AdvanceTime(hours float64) error {
	for i := range d.dies {
		if err := d.control(i, func(c *controller.Controller) {
			c.Device().AdvanceTime(hours)
		}); err != nil {
			return err
		}
	}
	return nil
}

// Uncorrectables sums the decode failures observed across all dies. It
// keeps working after Close: the managers are internally locked, so
// once the workers are gone they are read directly.
func (d *Dispatcher) Uncorrectables() int {
	total := 0
	for i := range d.dies {
		if err := d.control(i, func(c *controller.Controller) {
			total += c.Manager().Uncorrectables()
		}); err != nil {
			total += d.dies[i].ctrl.Manager().Uncorrectables()
		}
	}
	return total
}

// Controller exposes a die's controller for register-level access. The
// caller must ensure no traffic is in flight on the die.
func (d *Dispatcher) Controller(dieIdx int) *controller.Controller {
	return d.dies[dieIdx].ctrl
}

// WithController runs fn on the die's worker goroutine with exclusive
// access to its controller and device — the race-free window lifetime
// harnesses use for stress injection (raw disturb reads) and wear
// inspection while traffic may be in flight on other queues.
func (d *Dispatcher) WithController(dieIdx int, fn func(*controller.Controller)) error {
	return d.control(dieIdx, fn)
}

// PublishMetrics dumps the dispatcher's reliability counters into the
// registry under the given label set (labels is the pre-rendered
// `key="value"` block to scope the series, e.g. `drive="3"`, or ""
// for an unlabelled single-subsystem export). It rides the control
// plane, so it is safe while traffic is in flight; after Close it
// reads the internally-locked managers directly.
func (d *Dispatcher) PublishMetrics(reg *obs.Registry, labels string) {
	if reg == nil {
		return
	}
	series := func(name string) string {
		if labels == "" {
			return name
		}
		return name + "{" + labels + "}"
	}
	var uncorrectable, softAttempts, softRecovered, retryRecovered int
	var cleanHits uint64
	for i := range d.dies {
		gather := func(c *controller.Controller) {
			m := c.Manager()
			uncorrectable += m.Uncorrectables()
			retryRecovered += m.Recovered()
			at, rec := m.SoftStats()
			softAttempts += at
			softRecovered += rec
			cleanHits += c.CleanHits()
		}
		if err := d.control(i, gather); err != nil {
			gather(d.dies[i].ctrl)
		}
	}
	reg.AddCounter(series("nand_reads_uncorrectable_total"), float64(uncorrectable))
	reg.AddCounter(series("nand_retry_recovered_total"), float64(retryRecovered))
	reg.AddCounter(series("nand_soft_attempts_total"), float64(softAttempts))
	reg.AddCounter(series("nand_soft_recovered_total"), float64(softRecovered))
	reg.AddCounter(series("nand_clean_reads_total"), float64(cleanHits))
	reg.SetGauge(series("dispatch_vtime_seconds"), d.Now().Seconds())
}

// CleanHits sums the clean-read short-circuit counters across dies
// (control-plane hop per die; falls back to direct reads after Close —
// safe only once workers are drained, which Close guarantees).
func (d *Dispatcher) CleanHits() uint64 {
	var total uint64
	for i := range d.dies {
		if err := d.control(i, func(c *controller.Controller) {
			total += c.CleanHits()
		}); err != nil {
			total += d.dies[i].ctrl.CleanHits()
		}
	}
	return total
}
