package sim

import (
	"fmt"

	"xlnand/internal/nand"
)

// DieScaling models an interleaved multi-die organisation behind one
// controller (the MPSoC integration context of paper §3): array
// operations (tR, program) proceed in parallel across dies, while the
// flash bus and the single adaptive codec are shared and serialise.
// Steady-state pipelined throughput is therefore bounded by the slowest
// *shared* stage:
//
//	read  MB/s = page / max(tR/dies,      transfer, decode)
//	write MB/s = page / max(program/dies, transfer, encode)
//
// The cross-layer story compounds: with enough dies the array time hides
// completely and the codec becomes the bottleneck — exactly the stage
// the max-read mode relaxes.
type DieScaling struct {
	Dies      int
	ReadMBps  float64
	WriteMBps float64
	// Bottlenecks name the pipeline stage limiting each direction:
	// "array", "bus" or "codec".
	ReadBottleneck  string
	WriteBottleneck string
}

// ScaleDies evaluates a mode's throughput for a die count.
func (e Env) ScaleDies(m Mode, cycles float64, dies int) (DieScaling, error) {
	if dies < 1 {
		return DieScaling{}, fmt.Errorf("sim: die count %d < 1", dies)
	}
	op, err := e.EvaluateMode(m, cycles)
	if err != nil {
		return DieScaling{}, err
	}
	n := e.K + e.M*op.T
	transfer := e.Bus.Transfer(n / 8)
	payload := e.K / 8

	pick := func(array, bus, codec float64) (float64, string) {
		stage, name := array, "array"
		if bus > stage {
			stage, name = bus, "bus"
		}
		if codec > stage {
			stage, name = codec, "codec"
		}
		return stage, name
	}

	readStage, readName := pick(
		nand.PageReadTime.Seconds()/float64(dies),
		transfer.Seconds(),
		op.DecodeLatency.Seconds(),
	)
	writeStage, writeName := pick(
		op.ProgramTime.Seconds()/float64(dies),
		transfer.Seconds(),
		op.EncodeLatency.Seconds(),
	)
	return DieScaling{
		Dies:            dies,
		ReadMBps:        float64(payload) / readStage / 1e6,
		WriteMBps:       float64(payload) / writeStage / 1e6,
		ReadBottleneck:  readName,
		WriteBottleneck: writeName,
	}, nil
}

// DieSweep evaluates a mode across die counts.
func (e Env) DieSweep(m Mode, cycles float64, maxDies int) ([]DieScaling, error) {
	out := make([]DieScaling, 0, maxDies)
	for d := 1; d <= maxDies; d++ {
		s, err := e.ScaleDies(m, cycles, d)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// busBandwidthMBps is exposed for tests validating saturation.
func (e Env) busBandwidthMBps() float64 { return e.Bus.BandwidthMBps() }
