package sim

import (
	"sort"

	"xlnand/internal/nand"
)

// ExplorePoints evaluates the full cross-layer configuration grid
// (algorithm × capability) at one wear level. tStride > 1 thins the grid
// for display purposes.
func (e Env) ExplorePoints(cycles float64, tStride int) ([]OperatingPoint, error) {
	if tStride < 1 {
		tStride = 1
	}
	var out []OperatingPoint
	for _, alg := range []nand.Algorithm{nand.ISPPSV, nand.ISPPDV} {
		for t := e.TMin; t <= e.TMax; t += tStride {
			op, err := e.Evaluate(alg, t, cycles)
			if err != nil {
				return nil, err
			}
			out = append(out, op)
		}
	}
	return out, nil
}

// dominates reports whether a is at least as good as b on every axis the
// trade-off cares about (UBER down, read/write throughput up, total power
// down) and strictly better on at least one.
func dominates(a, b OperatingPoint) bool {
	type cmp struct{ a, b float64 }
	lowerBetter := []cmp{
		{a.UBER, b.UBER},
		{a.ProgramPowerW + a.ECCPowerW, b.ProgramPowerW + b.ECCPowerW},
	}
	higherBetter := []cmp{
		{a.ReadMBps, b.ReadMBps},
		{a.WriteMBps, b.WriteMBps},
	}
	strictly := false
	for _, c := range lowerBetter {
		if c.a > c.b {
			return false
		}
		if c.a < c.b {
			strictly = true
		}
	}
	for _, c := range higherBetter {
		if c.a < c.b {
			return false
		}
		if c.a > c.b {
			strictly = true
		}
	}
	return strictly
}

// ParetoFront filters points to the non-dominated set and orders it by
// descending read throughput — the menu of defensible operating points
// the controller can expose as service levels.
func ParetoFront(points []OperatingPoint) []OperatingPoint {
	var front []OperatingPoint
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].ReadMBps != front[j].ReadMBps {
			return front[i].ReadMBps > front[j].ReadMBps
		}
		return front[i].UBER < front[j].UBER
	})
	return front
}

// MeetsUBER filters points to those satisfying the target.
func MeetsUBER(points []OperatingPoint, target float64) []OperatingPoint {
	var out []OperatingPoint
	for _, p := range points {
		if p.UBER <= target {
			out = append(out, p)
		}
	}
	return out
}
