// Package sim assembles the device, codec and timing models into the
// cross-layer trade-off analysis of paper §6.3: operating-point metrics
// (UBER, read/write throughput, power) as functions of the two knobs —
// program algorithm (physical layer) and ECC capability (architecture
// layer) — across the device lifetime.
package sim

import (
	"fmt"
	"math"
	"time"

	"xlnand/internal/bch"
	"xlnand/internal/hv"
	"xlnand/internal/nand"
	"xlnand/internal/timing"
)

// Env bundles the model components every analysis shares.
type Env struct {
	Cal   nand.Calibration
	HW    bch.HWConfig
	Bus   timing.FlashBus
	Power hv.PowerConfig
	// TargetUBER is the service requirement (1e-11 in the paper).
	TargetUBER float64
	// M, K, TMin, TMax describe the adaptive codec geometry.
	M, K, TMin, TMax int
}

// DefaultEnv returns the paper's configuration.
func DefaultEnv() Env {
	m, k, tmin, tmax := bch.PageCodecParams()
	return Env{
		Cal:        nand.DefaultCalibration(),
		HW:         bch.DefaultHWConfig(),
		Bus:        timing.DefaultFlashBus(),
		Power:      hv.DefaultPowerConfig(),
		TargetUBER: 1e-11,
		M:          m, K: k, TMin: tmin, TMax: tmax,
	}
}

// RequiredT returns the minimal capability meeting the env's UBER target
// at the model RBER for (alg, cycles), clamped to the codec range. This
// is the "nominal schedule" of the paper's §6.2: the staircase t(N).
func (e Env) RequiredT(alg nand.Algorithm, cycles float64) int {
	rber := e.Cal.RBER(alg, cycles)
	t, err := bch.RequiredT(e.M, e.K, rber, e.TargetUBER, e.TMax)
	if err != nil {
		return e.TMax
	}
	if t < e.TMin {
		t = e.TMin
	}
	return t
}

// OperatingPoint is one cross-layer configuration evaluated at a given
// wear level.
type OperatingPoint struct {
	Alg    nand.Algorithm
	T      int
	Cycles float64

	RBER float64
	// UBER is the tail-accumulated post-correction error rate.
	UBER float64

	// Latency components.
	EncodeLatency time.Duration
	DecodeLatency time.Duration
	ReadLatency   time.Duration // tR + transfer + decode
	WriteLatency  time.Duration // program-path latency (encode pipelined)
	ProgramTime   time.Duration

	// Throughputs in MB/s over the 4 KB payload.
	ReadMBps  float64
	WriteMBps float64

	// Power.
	ProgramPowerW float64 // device HV power during program (L2 pattern)
	ECCPowerW     float64 // codec power at this capability

	// Energy efficiency (picojoules per user bit).
	WriteEnergyPJPerBit float64
	ReadEnergyPJPerBit  float64
}

// ECCPowerW models the adaptive codec's power draw as linear in the
// active correction capability, calibrated to the paper's §6.3.2 numbers
// (≈ 7 mW at t = 65, ≈ 1 mW at the relaxed DV setting).
func ECCPowerW(t int) float64 {
	const wattsPerT = 7e-3 / 65
	return wattsPerT * float64(t)
}

// Evaluate computes every metric of a cross-layer configuration at the
// given wear.
func (e Env) Evaluate(alg nand.Algorithm, t int, cycles float64) (OperatingPoint, error) {
	if t < e.TMin || t > e.TMax {
		return OperatingPoint{}, fmt.Errorf("sim: t=%d outside [%d, %d]", t, e.TMin, e.TMax)
	}
	op := OperatingPoint{Alg: alg, T: t, Cycles: cycles}
	op.RBER = e.Cal.RBER(alg, cycles)
	n := e.K + e.M*t
	op.UBER = math.Exp(bch.LogUBERTail(n, t, op.RBER))

	op.EncodeLatency = e.HW.EncodeLatency(e.K)
	op.DecodeLatency = e.HW.DecodeLatency(n, t)
	transfer := e.Bus.Transfer(n / 8)
	op.ReadLatency = nand.PageReadTime + transfer + op.DecodeLatency

	prog := nand.EstimateProgram(e.Cal, alg, e.Cal.Age(cycles))
	op.ProgramTime = prog.Duration
	// Write path: encode and transfer of page i+1 overlap the (much
	// longer) program of page i, so sustained write latency is the
	// program time (paper §6.3.3: program dominates; encode is two
	// orders of magnitude shorter).
	op.WriteLatency = prog.Duration

	payload := e.K / 8
	op.ReadMBps = timing.Throughput(payload, op.ReadLatency)
	op.WriteMBps = timing.Throughput(payload, op.WriteLatency)

	pw, err := e.Power.ProgramPower(e.Cal, alg, nand.L2, cycles)
	if err != nil {
		return op, err
	}
	op.ProgramPowerW = pw.AveragePowerW
	op.ECCPowerW = ECCPowerW(t)

	// Energy per user bit. Write: device power over the program run plus
	// the codec during encode. Read: sensing power over tR (verify-pump
	// class load plus die baseline) plus the codec during decode.
	bits := float64(e.K)
	writeJ := op.ProgramPowerW*op.ProgramTime.Seconds() +
		ECCPowerW(t)*op.EncodeLatency.Seconds()
	vp, err := e.Power.Verify.InputPower(e.Power.VerifyTargetV, e.Power.VerifyLoadAmps)
	if err != nil {
		return op, err
	}
	readPowerW := e.Power.BaselineWatts + vp
	readJ := readPowerW*nand.PageReadTime.Seconds() +
		ECCPowerW(t)*op.DecodeLatency.Seconds()
	op.WriteEnergyPJPerBit = writeJ / bits * 1e12
	op.ReadEnergyPJPerBit = readJ / bits * 1e12
	return op, nil
}

// Mode names the three service levels of §6.3.
type Mode int

const (
	// ModeNominal: ISPP-SV with t tracking the SV RBER — the baseline.
	ModeNominal Mode = iota
	// ModeMinUBER: ISPP-DV while keeping the nominal (SV-sized) t —
	// UBER improves by orders of magnitude at constant read throughput
	// (§6.3.1).
	ModeMinUBER
	// ModeMaxRead: ISPP-DV with t relaxed to just meet the UBER target —
	// read throughput improves at constant UBER (§6.3.2).
	ModeMaxRead
)

// Ptr returns a pointer to m — the shape per-request service-level
// overrides take (a nil Mode pointer means "use the default").
func (m Mode) Ptr() *Mode { return &m }

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNominal:
		return "nominal"
	case ModeMinUBER:
		return "min-UBER"
	case ModeMaxRead:
		return "max-read"
	default:
		return "mode?"
	}
}

// EvaluateMode resolves a service level into its cross-layer
// configuration at the given wear and evaluates it.
func (e Env) EvaluateMode(m Mode, cycles float64) (OperatingPoint, error) {
	switch m {
	case ModeNominal:
		return e.Evaluate(nand.ISPPSV, e.RequiredT(nand.ISPPSV, cycles), cycles)
	case ModeMinUBER:
		// Keep the SV-sized capability, switch the physical layer.
		return e.Evaluate(nand.ISPPDV, e.RequiredT(nand.ISPPSV, cycles), cycles)
	case ModeMaxRead:
		return e.Evaluate(nand.ISPPDV, e.RequiredT(nand.ISPPDV, cycles), cycles)
	default:
		return OperatingPoint{}, fmt.Errorf("sim: unknown mode %d", int(m))
	}
}
