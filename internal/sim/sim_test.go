package sim

import (
	"math"
	"testing"
	"time"

	"xlnand/internal/nand"
)

func TestRequiredTSchedule(t *testing.T) {
	e := DefaultEnv()
	// Paper §6.2 anchors.
	if got := e.RequiredT(nand.ISPPSV, 0); got != 3 {
		t.Fatalf("fresh SV t=%d, want 3", got)
	}
	sv := e.RequiredT(nand.ISPPSV, 1e6)
	if sv < 60 || sv > 65 {
		t.Fatalf("EOL SV t=%d, want ≈ 65", sv)
	}
	dv := e.RequiredT(nand.ISPPDV, 1e6)
	if dv < 12 || dv > 17 {
		t.Fatalf("EOL DV t=%d, want ≈ 14", dv)
	}
}

func TestEvaluateRejectsBadT(t *testing.T) {
	e := DefaultEnv()
	if _, err := e.Evaluate(nand.ISPPSV, 0, 0); err == nil {
		t.Fatal("t=0 accepted")
	}
	if _, err := e.Evaluate(nand.ISPPSV, 66, 0); err == nil {
		t.Fatal("t=66 accepted")
	}
}

func TestOperatingPointSanity(t *testing.T) {
	e := DefaultEnv()
	op, err := e.Evaluate(nand.ISPPSV, 30, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	if op.UBER <= 0 || op.UBER >= 1 {
		t.Fatalf("UBER %g out of range", op.UBER)
	}
	if op.ReadMBps <= 0 || op.WriteMBps <= 0 {
		t.Fatal("non-positive throughput")
	}
	if op.ReadLatency != nand.PageReadTime+op.DecodeLatency+
		(op.ReadLatency-nand.PageReadTime-op.DecodeLatency) {
		t.Fatal("latency accounting inconsistent")
	}
	if op.ProgramPowerW < 0.1 || op.ProgramPowerW > 0.25 {
		t.Fatalf("program power %g W implausible", op.ProgramPowerW)
	}
}

func TestModeMinUBERBoostsUBERAtSameReadLatency(t *testing.T) {
	// §6.3.1: switching SV->DV at fixed t improves UBER by orders of
	// magnitude without touching the read path.
	e := DefaultEnv()
	for _, cycles := range []float64{1e3, 1e5, 1e6} {
		nom, err := e.EvaluateMode(ModeNominal, cycles)
		if err != nil {
			t.Fatal(err)
		}
		min, err := e.EvaluateMode(ModeMinUBER, cycles)
		if err != nil {
			t.Fatal(err)
		}
		if min.T != nom.T {
			t.Fatalf("min-UBER changed t: %d vs %d", min.T, nom.T)
		}
		if min.ReadLatency != nom.ReadLatency {
			t.Fatalf("min-UBER changed read latency: %v vs %v",
				min.ReadLatency, nom.ReadLatency)
		}
		gain := math.Log10(nom.UBER) - math.Log10(min.UBER)
		if gain < 2 {
			t.Fatalf("N=%g: UBER boost only %.1f orders of magnitude", cycles, gain)
		}
		if min.WriteMBps >= nom.WriteMBps {
			t.Fatal("min-UBER mode should pay write throughput")
		}
	}
}

func TestModeMaxReadGainsThroughputAtConstantUBER(t *testing.T) {
	// §6.3.2: DV + relaxed t improves read throughput while UBER stays
	// at/below the target.
	e := DefaultEnv()
	nom, err := e.EvaluateMode(ModeNominal, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	max, err := e.EvaluateMode(ModeMaxRead, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if max.T >= nom.T {
		t.Fatalf("max-read did not relax t: %d vs %d", max.T, nom.T)
	}
	gain := max.ReadMBps/nom.ReadMBps - 1
	if gain < 0.15 || gain > 0.6 {
		t.Fatalf("EOL read gain %.1f%%, paper says up to ≈ 30%%", 100*gain)
	}
	if max.UBER > e.TargetUBER*10 {
		t.Fatalf("max-read UBER %g drifted above target %g", max.UBER, e.TargetUBER)
	}
	// Fresh device: both schedules collapse to t=3, gain ≈ 0.
	nomF, _ := e.EvaluateMode(ModeNominal, 0)
	maxF, _ := e.EvaluateMode(ModeMaxRead, 0)
	if g := maxF.ReadMBps/nomF.ReadMBps - 1; g > 0.02 {
		t.Fatalf("fresh read gain %.2f%% should be ≈ 0", 100*g)
	}
}

func TestModeMaxReadECCPowerRelaxation(t *testing.T) {
	// §6.3.2: ECC power drops from ≈ 7 mW to ≈ 1-2 mW when relaxed.
	e := DefaultEnv()
	nom, _ := e.EvaluateMode(ModeNominal, 1e6)
	max, _ := e.EvaluateMode(ModeMaxRead, 1e6)
	if nom.ECCPowerW < 6e-3 || nom.ECCPowerW > 8e-3 {
		t.Fatalf("nominal EOL ECC power %g W, want ≈ 7 mW", nom.ECCPowerW)
	}
	if max.ECCPowerW > 2.5e-3 {
		t.Fatalf("relaxed ECC power %g W, want ≈ 1-2 mW", max.ECCPowerW)
	}
	// Power budget roughly constant: DV's device-power increase is
	// compensated by the ECC savings within a few mW.
	nomTotal := nom.ProgramPowerW + nom.ECCPowerW
	maxTotal := max.ProgramPowerW + max.ECCPowerW
	if diff := math.Abs(nomTotal - maxTotal); diff > 6e-3 {
		t.Fatalf("power budget drifted by %.1f mW between modes", diff*1e3)
	}
}

func TestWriteLatencyDominatedByProgram(t *testing.T) {
	e := DefaultEnv()
	op, err := e.Evaluate(nand.ISPPDV, 14, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if op.WriteLatency != op.ProgramTime {
		t.Fatal("pipelined write latency should equal program time")
	}
	if op.ProgramTime < time.Millisecond {
		t.Fatalf("DV EOL program %v, paper says ≈ 1.5 ms", op.ProgramTime)
	}
	if op.EncodeLatency > op.ProgramTime/10 {
		t.Fatal("encode latency not negligible vs program")
	}
}

func TestEnergyMetrics(t *testing.T) {
	e := DefaultEnv()
	op, err := e.Evaluate(nand.ISPPSV, 30, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	// Order-of-magnitude sanity: MLC NAND writes cost a few nJ/bit,
	// reads tens of pJ/bit.
	if op.WriteEnergyPJPerBit < 1e3 || op.WriteEnergyPJPerBit > 2e4 {
		t.Fatalf("write energy %v pJ/bit implausible", op.WriteEnergyPJPerBit)
	}
	if op.ReadEnergyPJPerBit < 50 || op.ReadEnergyPJPerBit > 2e3 {
		t.Fatalf("read energy %v pJ/bit implausible", op.ReadEnergyPJPerBit)
	}
	// DV writes cost more energy per bit (longer operation at higher
	// average power).
	dv, err := e.Evaluate(nand.ISPPDV, 30, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	if dv.WriteEnergyPJPerBit <= op.WriteEnergyPJPerBit {
		t.Fatal("DV write energy not above SV")
	}
	// Relaxing t reduces read energy (shorter decode, lower codec power).
	lo, err := e.Evaluate(nand.ISPPDV, 14, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := e.Evaluate(nand.ISPPDV, 65, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if lo.ReadEnergyPJPerBit >= hi.ReadEnergyPJPerBit {
		t.Fatal("relaxed codec did not reduce read energy")
	}
}

func TestModeString(t *testing.T) {
	if ModeNominal.String() != "nominal" || ModeMinUBER.String() != "min-UBER" ||
		ModeMaxRead.String() != "max-read" || Mode(9).String() != "mode?" {
		t.Fatal("mode names drifted")
	}
	if _, err := DefaultEnv().EvaluateMode(Mode(9), 0); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestExplorePointsGrid(t *testing.T) {
	e := DefaultEnv()
	pts, err := e.ExplorePoints(1e4, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 2 algorithms × ceil(63/10) capabilities.
	if len(pts) != 2*7 {
		t.Fatalf("grid has %d points", len(pts))
	}
	pts2, err := e.ExplorePoints(1e4, 0) // stride clamped to 1
	if err != nil {
		t.Fatal(err)
	}
	if len(pts2) != 2*63 {
		t.Fatalf("full grid has %d points", len(pts2))
	}
}

func TestParetoFrontProperties(t *testing.T) {
	e := DefaultEnv()
	pts, err := e.ExplorePoints(1e5, 4)
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFront(pts)
	if len(front) == 0 || len(front) > len(pts) {
		t.Fatalf("front size %d of %d", len(front), len(pts))
	}
	// No point on the front may dominate another front point.
	for i, a := range front {
		for j, b := range front {
			if i != j && dominates(a, b) {
				t.Fatalf("front point %d dominates front point %d", i, j)
			}
		}
	}
	// Every dropped point must be dominated by someone.
	inFront := func(p OperatingPoint) bool {
		for _, f := range front {
			if f == p {
				return true
			}
		}
		return false
	}
	for _, p := range pts {
		if inFront(p) {
			continue
		}
		dominated := false
		for _, q := range pts {
			if q != p && dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatal("non-dominated point missing from front")
		}
	}
}

func TestMeetsUBERFilter(t *testing.T) {
	e := DefaultEnv()
	pts, err := e.ExplorePoints(1e6, 2)
	if err != nil {
		t.Fatal(err)
	}
	ok := MeetsUBER(pts, e.TargetUBER)
	if len(ok) == 0 {
		t.Fatal("no configuration meets the target at EOL (DV t>=15 should)")
	}
	for _, p := range ok {
		if p.UBER > e.TargetUBER {
			t.Fatal("filter passed a violating point")
		}
	}
	// Low-t SV points at EOL must be filtered out.
	for _, p := range ok {
		if p.Alg == nand.ISPPSV && p.T < 30 {
			t.Fatalf("SV t=%d cannot meet 1e-11 at EOL", p.T)
		}
	}
}
