package sim

import (
	"testing"
)

func TestScaleDiesValidation(t *testing.T) {
	e := DefaultEnv()
	if _, err := e.ScaleDies(ModeNominal, 0, 0); err == nil {
		t.Fatal("zero dies accepted")
	}
}

func TestSingleDieMatchesPipelineBound(t *testing.T) {
	// With one die, the pipelined multi-die model must not exceed the
	// sequential single-request throughput by more than the pipelining
	// factor (stages overlap), and never fall below it.
	e := DefaultEnv()
	op, err := e.EvaluateMode(ModeNominal, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.ScaleDies(ModeNominal, 1e5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.ReadMBps < op.ReadMBps {
		t.Fatalf("pipelined read %.2f below sequential %.2f", s.ReadMBps, op.ReadMBps)
	}
	if s.ReadMBps > op.ReadMBps*4 {
		t.Fatalf("pipelined read %.2f implausibly above sequential %.2f", s.ReadMBps, op.ReadMBps)
	}
}

func TestReadScalingSaturatesAtSharedStage(t *testing.T) {
	e := DefaultEnv()
	sweep, err := e.DieSweep(ModeNominal, 1e6, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Monotone non-decreasing, then flat once the codec dominates.
	for i := 1; i < len(sweep); i++ {
		if sweep[i].ReadMBps < sweep[i-1].ReadMBps-1e-9 {
			t.Fatalf("read throughput regressed at %d dies", sweep[i].Dies)
		}
	}
	last := sweep[len(sweep)-1]
	if last.ReadBottleneck != "codec" {
		t.Fatalf("EOL nominal read bottleneck with 8 dies = %s, want codec (decode 168 µs)", last.ReadBottleneck)
	}
	// t=65 decode is 167.8 µs -> ceiling ≈ 4096 B / 167.8 µs ≈ 24.4 MB/s.
	if last.ReadMBps < 20 || last.ReadMBps > 30 {
		t.Fatalf("codec-bound read ceiling %.2f MB/s", last.ReadMBps)
	}
}

func TestCrossLayerGainCompoundsWithDies(t *testing.T) {
	// With the array time hidden behind 4 dies, the codec is the read
	// bottleneck — the exact stage max-read relaxes, so the gain at
	// EOL must persist (and the bottleneck move to the bus).
	e := DefaultEnv()
	nom, err := e.ScaleDies(ModeNominal, 1e6, 4)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := e.ScaleDies(ModeMaxRead, 1e6, 4)
	if err != nil {
		t.Fatal(err)
	}
	gain := fast.ReadMBps/nom.ReadMBps - 1
	if gain < 0.2 {
		t.Fatalf("multi-die EOL read gain %.0f%% too small", gain*100)
	}
	if fast.ReadBottleneck == "codec" && fast.ReadMBps < nom.ReadMBps {
		t.Fatal("relaxed codec still slower than nominal")
	}
	// The relaxed mode is bus- or codec-bound near the bus bandwidth.
	if fast.ReadMBps > e.busBandwidthMBps()*1.05 {
		t.Fatalf("read %.2f MB/s exceeds bus bandwidth", fast.ReadMBps)
	}
}

func TestWriteScalingArrayBound(t *testing.T) {
	// Writes are array-bound (program ≈ 1 ms) until many dies hide it.
	e := DefaultEnv()
	one, err := e.ScaleDies(ModeNominal, 1e3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.WriteBottleneck != "array" {
		t.Fatalf("single-die write bottleneck = %s", one.WriteBottleneck)
	}
	many, err := e.ScaleDies(ModeNominal, 1e3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if many.WriteMBps <= one.WriteMBps*4 {
		t.Fatalf("16-die write scaling too weak: %.2f vs %.2f", many.WriteMBps, one.WriteMBps)
	}
	if many.WriteBottleneck == "array" {
		t.Fatal("16 dies should hide the program time")
	}
}

func TestDVWritePenaltyShrinksWithDies(t *testing.T) {
	// Once writes are bus/encode-bound (enough dies), the DV program
	// penalty disappears from the throughput — a genuinely new insight
	// the multi-die model exposes: parallelism pays the cross-layer
	// write cost.
	e := DefaultEnv()
	nom16, err := e.ScaleDies(ModeNominal, 1e3, 16)
	if err != nil {
		t.Fatal(err)
	}
	dv16, err := e.ScaleDies(ModeMaxRead, 1e3, 16)
	if err != nil {
		t.Fatal(err)
	}
	loss := 1 - dv16.WriteMBps/nom16.WriteMBps
	if loss > 0.05 {
		t.Fatalf("16-die DV write loss still %.0f%%", loss*100)
	}
}
