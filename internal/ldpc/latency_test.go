package ldpc

import (
	"testing"
	"time"
)

// TestMeasuredLatencyCalibration pins the contract of the measured
// iteration tables: weight zero prices exactly like the flat clean
// estimate (one syndrome pass), any real error weight costs more than
// clean, heavier weights never undercut a one-bit upset, and weights
// past the flip guard clamp instead of extrapolating.
func TestMeasuredLatencyCalibration(t *testing.T) {
	c := testRig(t)
	for lvl := 0; lvl <= c.MaxLevel(); lvl++ {
		clean := c.DecodeLatency(lvl, true)
		if got := c.MeasuredDecodeLatency(lvl, 0); got != clean {
			t.Fatalf("level %d: measured(0) = %v, clean estimate = %v", lvl, got, clean)
		}
		one := c.MeasuredDecodeLatency(lvl, 1)
		if one <= clean {
			t.Fatalf("level %d: measured(1) = %v not above clean %v", lvl, one, clean)
		}
		cap := c.CorrectionCap(lvl)
		atCap := c.MeasuredDecodeLatency(lvl, cap)
		if atCap < one {
			t.Fatalf("level %d: measured(cap=%d) = %v below measured(1) = %v", lvl, cap, atCap, one)
		}
		// Past the guard the table clamps: refused decodes never book an
		// unbounded cost.
		if got, want := c.MeasuredDecodeLatency(lvl, 100*cap), c.MeasuredDecodeLatency(lvl, flipGuard(cap)); got != want {
			t.Fatalf("level %d: measured(100*cap) = %v, want clamp to %v", lvl, got, want)
		}
	}
}

// TestMeasuredLatencyDeterministic: calibration is seeded, so two
// independent codecs measure identical tables — the property that keeps
// latency trajectories reproducible across runs.
func TestMeasuredLatencyDeterministic(t *testing.T) {
	a := testRig(t)
	b := testRig(t)
	for _, lvl := range []int{0, a.MaxLevel()} {
		for w := 0; w <= flipGuard(a.CorrectionCap(lvl)); w++ {
			la, lb := a.MeasuredDecodeLatency(lvl, w), b.MeasuredDecodeLatency(lvl, w)
			if la != lb {
				t.Fatalf("level %d weight %d: %v vs %v across codecs", lvl, w, la, lb)
			}
		}
	}
}

// TestMeasuredLatencyBounded: the measured cost of a rated correction
// stays within the engine's iteration budget priced through the same
// pipeline model — a sanity rail against a runaway calibration.
func TestMeasuredLatencyBounded(t *testing.T) {
	c := testRig(t)
	for lvl := 0; lvl <= c.MaxLevel(); lvl++ {
		atGuard := c.MeasuredDecodeLatency(lvl, flipGuard(c.CorrectionCap(lvl)))
		// DecodeLatency prices AvgItersHard iterations; the hard budget
		// is maxIterHard, so scale the dirty estimate accordingly.
		dirty := c.DecodeLatency(lvl, false)
		bound := time.Duration(float64(dirty) * float64(maxIterHard) / DefaultHWConfig().AvgItersHard)
		if atGuard > bound {
			t.Fatalf("level %d: measured(guard) = %v exceeds budget bound %v", lvl, atGuard, bound)
		}
	}
}
