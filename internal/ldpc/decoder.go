package ldpc

import (
	"encoding/binary"
	"math"
	"math/bits"
	"sync"
)

// Decoding parameters. Min-sum is scale-invariant in the channel LLRs,
// so the hard-input channel is ±1 and the soft-input channel uses the
// device's quantised confidence directly; the normalization factor and
// the posterior clamp are the two standard knobs.
const (
	// minSumAlpha is the normalized-min-sum scaling of check-to-variable
	// messages (compensates min-sum's overestimate vs sum-product).
	minSumAlpha = 0.78
	// llrClamp bounds posterior magnitudes for numerical sanity.
	llrClamp = 96.0
	// maxIterHard / maxIterSoft bound the iteration count per decode.
	maxIterHard = 32
	maxIterSoft = 40
	// stallPatience aborts a decode whose unsatisfied-check count has
	// not improved for this many iterations — hopeless inputs (far past
	// the decoding cliff) then fail in a handful of iterations instead
	// of burning the full budget.
	stallPatience = 6
)

// Decoder is the min-sum engine of one capability level. It is safe for
// concurrent use: all mutable state lives in pooled scratch.
type Decoder struct {
	c    *code
	pool sync.Pool
}

// decodeScratch is one decode's working set: posterior LLRs, per-edge
// check-to-variable messages, and the packed hard-decision words the
// word-parallel syndrome check runs over. q and sgn are the
// struct-of-arrays check kernel's per-check blocks (q values and packed
// q-sign lanes for the widest check); cww holds the received word
// packed once per decode so the convergence flip count never re-reads
// the codeword bytes.
type decodeScratch struct {
	post  []float32 // posterior LLR per codeword bit
	r     []float32 // check-to-variable message per edge
	hard  []uint64  // packed hard decisions (n/64 words)
	syn   []uint64  // syndrome scratch (m/64 words)
	chans []float32 // channel LLR per codeword bit
	out   []byte    // byte image of a convergence, for the CRC verdict
	cww   []uint64  // received word, packed once at decode start
	q     []float32 // per-check q block (variable-to-check values)
	sgn   []uint64  // per-check packed q-sign lanes
}

func newDecoder(c *code) *Decoder {
	d := &Decoder{c: c}
	maxDeg := 0
	for ci := 0; ci < c.m; ci++ {
		if deg := int(c.checkStart[ci+1] - c.checkStart[ci]); deg > maxDeg {
			maxDeg = deg
		}
	}
	d.pool.New = func() any {
		return &decodeScratch{
			post:  make([]float32, c.n),
			r:     make([]float32, c.edges),
			hard:  make([]uint64, c.n/Z),
			syn:   make([]uint64, c.m/Z),
			chans: make([]float32, c.n),
			out:   make([]byte, c.n/8),
			cww:   make([]uint64, c.n/Z),
			q:     make([]float32, maxDeg),
			sgn:   make([]uint64, (maxDeg+63)/64),
		}
	}
	return d
}

// packWords packs the codeword bytes into big-endian words (bit v at
// position 63-v%64 of word v/64 — the encoder's convention).
func packWords(dst []uint64, cw []byte) {
	for i := range dst {
		dst[i] = binary.BigEndian.Uint64(cw[i*8:])
	}
}

// decode runs normalized min-sum. llr is nil for hard-input decoding
// (channel = ±1 from the codeword bits); otherwise one signed
// confidence per codeword bit, sign agreeing with the hard decisions.
// flipGuard bounds the accepted repair size: a convergence that flips
// more bits is refused as uncorrectable — beyond-rating inputs
// occasionally converge onto a *wrong* codeword, and refusing outsized
// repairs turns that rare silent miscorrection into an honest failure
// (the rung above, or the FTL's lost-page path, then owns the page).
// On success the corrected word is written back into cw and the number
// of flipped bits returned; on failure cw is untouched.
func (d *Decoder) decode(cw []byte, llr []int8, maxIter, flipGuard int) (int, error) {
	flips, _, err := d.decodeIter(cw, llr, maxIter, flipGuard)
	return flips, err
}

// decodeIter is decode additionally reporting the min-sum iterations
// consumed — the raw observable the measured-latency calibration tables
// are built from. The early-termination fast path counts as zero
// iterations (it is one syndrome pass, already priced separately by the
// latency model).
func (d *Decoder) decodeIter(cw []byte, llr []int8, maxIter, flipGuard int) (int, int, error) {
	c := d.c
	s := d.pool.Get().(*decodeScratch)
	defer d.pool.Put(s)

	// Fast path: the stored codeword may already be consistent — one
	// word-parallel syndrome pass, no scratch initialisation beyond the
	// packed words (the common case for young media). A zero syndrome
	// with a failing CRC means the channel hit an exact codeword-shaped
	// error pattern; iterating cannot move off a fixed point, so the
	// verdict is immediate.
	packWords(s.hard, cw)
	if c.syndromeZero(s.hard, s.syn) {
		if !c.crcOK(cw) {
			return 0, 0, ErrUncorrectable
		}
		return 0, 0, nil
	}
	// The received word, kept packed for the duration of the decode:
	// the convergence flip count diffs hard-decision words against these
	// instead of re-reading cw's bytes every accepted iteration.
	copy(s.cww, s.hard)

	// Channel initialisation.
	if llr == nil {
		for v := 0; v < c.n; v++ {
			if s.hard[v/Z]&(1<<uint(63-v%Z)) == 0 {
				s.chans[v] = 1
			} else {
				s.chans[v] = -1
			}
		}
	} else {
		for v := 0; v < c.n; v++ {
			s.chans[v] = float32(llr[v])
		}
	}
	copy(s.post, s.chans)
	for e := range s.r {
		s.r[e] = 0
	}

	bestUnsat := c.m + 1
	stall := 0
	for iter := 0; iter < maxIter; iter++ {
		// Layered check-node pass, restructured as a struct-of-arrays
		// kernel over each check's contiguous edge block. A first fused
		// sweep peels the old messages out of the posteriors into the q
		// block, packs the q signs into uint64 lanes (the check parity is
		// then a popcount fold, not a per-edge counter), and tracks
		// min1/min2 in swap form — one comparison per edge instead of the
		// two-branch chain, and no minAt bookkeeping: the apply sweep
		// recognises the minimum edge by magnitude (a tie forces
		// min2 == min1, so either message value is the same).
		//
		// Magnitudes are sign-bit-cleared |q| and message signs are
		// applied by XOR on the float's sign bit — identical to the
		// historical conditional negation for every value, with at most
		// the sign of a zero differing in intermediates, which no
		// comparison, popcount or hard decision can observe.
		for ci := 0; ci < c.m; ci++ {
			lo, hi := int(c.checkStart[ci]), int(c.checkStart[ci+1])
			deg := hi - lo
			qs := s.q[:deg]
			lanes := s.sgn[:(deg+63)/64]
			for l := range lanes {
				lanes[l] = 0
			}
			min1, min2 := float32(llrClamp*2), float32(llrClamp*2)
			for j := 0; j < deg; j++ {
				e := lo + j
				q := s.post[c.checkVar[e]] - s.r[e]
				qs[j] = q
				if q < 0 {
					lanes[j>>6] |= 1 << uint(j&63)
				}
				if a := absf32(q); a < min2 {
					min2 = a
					if min2 < min1 {
						min1, min2 = min2, min1
					}
				}
			}
			negs := 0
			for _, l := range lanes {
				negs += popcount(l)
			}
			parity := uint32(negs&1) << 31
			m1 := math.Float32bits(min1 * minSumAlpha)
			m2 := math.Float32bits(min2 * minSumAlpha)
			for j := 0; j < deg; j++ {
				e := lo + j
				q := qs[j]
				mag := m1
				if absf32(q) == min1 {
					mag = m2
				}
				// Sign: product of the *other* incoming signs — the
				// total parity, with this edge's own sign divided out.
				sbit := uint32(lanes[j>>6]>>uint(j&63)&1) << 31
				nr := math.Float32frombits(mag ^ parity ^ sbit)
				p := q + nr
				if p > llrClamp {
					p = llrClamp
				} else if p < -llrClamp {
					p = -llrClamp
				}
				s.r[e] = nr
				v := int(c.checkVar[e])
				s.post[v] = p
				// Hard-decision maintenance fused into the posterior
				// update: the bit tracks sign(p) (by comparison, not sign
				// bit — a -0.0 posterior is non-negative here), so the
				// words are current the moment the layered pass ends and
				// the separate n/Z repack loop disappears.
				neg := uint64(0)
				if p < 0 {
					neg = 1
				}
				w := v >> 6
				bit := uint(63 - v&63)
				s.hard[w] = s.hard[w]&^(1<<bit) | neg<<bit
			}
		}

		unsat := c.unsatisfied(s.hard, s.syn)
		if unsat == 0 {
			flips := 0
			for w, word := range s.hard {
				flips += popcountDiff(word, s.cww[w])
			}
			if flips > flipGuard {
				return 0, iter + 1, ErrUncorrectable
			}
			// The embedded CRC is the authoritative verdict: a min-sum
			// convergence onto a wrong codeword (possible past the
			// rating) fails it and surfaces as an honest uncorrectable
			// instead of silent corruption.
			for w, word := range s.hard {
				binary.BigEndian.PutUint64(s.out[w*8:], word)
			}
			if !c.crcOK(s.out) {
				return 0, iter + 1, ErrUncorrectable
			}
			copy(cw, s.out)
			return flips, iter + 1, nil
		}
		if unsat < bestUnsat {
			bestUnsat, stall = unsat, 0
		} else if stall++; stall >= stallPatience {
			return 0, iter + 1, ErrUncorrectable
		}
	}
	return 0, maxIter, ErrUncorrectable
}

// unsatisfied counts failing parity checks for the packed hard
// decisions (the stall detector's progress metric).
func (c *code) unsatisfied(cw []uint64, scratch []uint64) int {
	pw := cw[c.k/Z:]
	c.msgSyndrome(scratch, cw[:c.k/Z])
	var carry uint64
	unsat := 0
	for r := range scratch {
		prev := pw[r] >> 1
		if carry != 0 {
			prev |= 1 << 63
		}
		unsat += popcount(scratch[r] ^ pw[r] ^ prev)
		carry = pw[r] & 1
	}
	return unsat
}

func popcount(x uint64) int { return bits.OnesCount64(x) }

func popcountDiff(a, b uint64) int { return bits.OnesCount64(a ^ b) }

// absf32 clears the sign bit — branch-free |x| for the min-sum
// magnitude sweep.
func absf32(x float32) float32 {
	return math.Float32frombits(math.Float32bits(x) &^ (1 << 31))
}
