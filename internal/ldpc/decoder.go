package ldpc

import (
	"encoding/binary"
	"math/bits"
	"sync"
)

// Decoding parameters. Min-sum is scale-invariant in the channel LLRs,
// so the hard-input channel is ±1 and the soft-input channel uses the
// device's quantised confidence directly; the normalization factor and
// the posterior clamp are the two standard knobs.
const (
	// minSumAlpha is the normalized-min-sum scaling of check-to-variable
	// messages (compensates min-sum's overestimate vs sum-product).
	minSumAlpha = 0.78
	// llrClamp bounds posterior magnitudes for numerical sanity.
	llrClamp = 96.0
	// maxIterHard / maxIterSoft bound the iteration count per decode.
	maxIterHard = 32
	maxIterSoft = 40
	// stallPatience aborts a decode whose unsatisfied-check count has
	// not improved for this many iterations — hopeless inputs (far past
	// the decoding cliff) then fail in a handful of iterations instead
	// of burning the full budget.
	stallPatience = 6
)

// Decoder is the min-sum engine of one capability level. It is safe for
// concurrent use: all mutable state lives in pooled scratch.
type Decoder struct {
	c    *code
	pool sync.Pool
}

// decodeScratch is one decode's working set: posterior LLRs, per-edge
// check-to-variable messages, and the packed hard-decision words the
// word-parallel syndrome check runs over.
type decodeScratch struct {
	post  []float32 // posterior LLR per codeword bit
	r     []float32 // check-to-variable message per edge
	hard  []uint64  // packed hard decisions (n/64 words)
	syn   []uint64  // syndrome scratch (m/64 words)
	chans []float32 // channel LLR per codeword bit
	out   []byte    // byte image of a convergence, for the CRC verdict
}

func newDecoder(c *code) *Decoder {
	d := &Decoder{c: c}
	d.pool.New = func() any {
		return &decodeScratch{
			post:  make([]float32, c.n),
			r:     make([]float32, c.edges),
			hard:  make([]uint64, c.n/Z),
			syn:   make([]uint64, c.m/Z),
			chans: make([]float32, c.n),
			out:   make([]byte, c.n/8),
		}
	}
	return d
}

// packWords packs the codeword bytes into big-endian words (bit v at
// position 63-v%64 of word v/64 — the encoder's convention).
func packWords(dst []uint64, cw []byte) {
	for i := range dst {
		dst[i] = binary.BigEndian.Uint64(cw[i*8:])
	}
}

// decode runs normalized min-sum. llr is nil for hard-input decoding
// (channel = ±1 from the codeword bits); otherwise one signed
// confidence per codeword bit, sign agreeing with the hard decisions.
// flipGuard bounds the accepted repair size: a convergence that flips
// more bits is refused as uncorrectable — beyond-rating inputs
// occasionally converge onto a *wrong* codeword, and refusing outsized
// repairs turns that rare silent miscorrection into an honest failure
// (the rung above, or the FTL's lost-page path, then owns the page).
// On success the corrected word is written back into cw and the number
// of flipped bits returned; on failure cw is untouched.
func (d *Decoder) decode(cw []byte, llr []int8, maxIter, flipGuard int) (int, error) {
	flips, _, err := d.decodeIter(cw, llr, maxIter, flipGuard)
	return flips, err
}

// decodeIter is decode additionally reporting the min-sum iterations
// consumed — the raw observable the measured-latency calibration tables
// are built from. The early-termination fast path counts as zero
// iterations (it is one syndrome pass, already priced separately by the
// latency model).
func (d *Decoder) decodeIter(cw []byte, llr []int8, maxIter, flipGuard int) (int, int, error) {
	c := d.c
	s := d.pool.Get().(*decodeScratch)
	defer d.pool.Put(s)

	// Fast path: the stored codeword may already be consistent — one
	// word-parallel syndrome pass, no scratch initialisation beyond the
	// packed words (the common case for young media). A zero syndrome
	// with a failing CRC means the channel hit an exact codeword-shaped
	// error pattern; iterating cannot move off a fixed point, so the
	// verdict is immediate.
	packWords(s.hard, cw)
	if c.syndromeZero(s.hard, s.syn) {
		if !c.crcOK(cw) {
			return 0, 0, ErrUncorrectable
		}
		return 0, 0, nil
	}

	// Channel initialisation.
	if llr == nil {
		for v := 0; v < c.n; v++ {
			if s.hard[v/Z]&(1<<uint(63-v%Z)) == 0 {
				s.chans[v] = 1
			} else {
				s.chans[v] = -1
			}
		}
	} else {
		for v := 0; v < c.n; v++ {
			s.chans[v] = float32(llr[v])
		}
	}
	copy(s.post, s.chans)
	for e := range s.r {
		s.r[e] = 0
	}

	bestUnsat := c.m + 1
	stall := 0
	for iter := 0; iter < maxIter; iter++ {
		// Layered check-node pass with posterior tracking: for each
		// check, peel the old message out of the posterior, run the
		// min/sign kernel, fold the new message back in.
		for ci := 0; ci < c.m; ci++ {
			lo, hi := c.checkStart[ci], c.checkStart[ci+1]
			min1, min2 := float32(llrClamp*2), float32(llrClamp*2)
			minAt := lo
			negs := 0
			for e := lo; e < hi; e++ {
				q := s.post[c.checkVar[e]] - s.r[e]
				if q < 0 {
					negs++
					q = -q
				}
				if q < min1 {
					min2, min1, minAt = min1, q, e
				} else if q < min2 {
					min2 = q
				}
			}
			m1 := min1 * minSumAlpha
			m2 := min2 * minSumAlpha
			for e := lo; e < hi; e++ {
				v := c.checkVar[e]
				q := s.post[v] - s.r[e]
				mag := m1
				if e == minAt {
					mag = m2
				}
				// Sign: product of the *other* incoming signs — the
				// total parity, with this edge's own sign divided out.
				nr := mag
				if (negs&1 == 1) != (q < 0) {
					nr = -mag
				}
				p := q + nr
				if p > llrClamp {
					p = llrClamp
				} else if p < -llrClamp {
					p = -llrClamp
				}
				s.r[e] = nr
				s.post[v] = p
			}
		}

		// Hard decisions and word-parallel convergence check.
		for w := 0; w < c.n/Z; w++ {
			var word uint64
			base := w * Z
			for b := 0; b < Z; b++ {
				if s.post[base+b] < 0 {
					word |= 1 << uint(63-b)
				}
			}
			s.hard[w] = word
		}
		unsat := c.unsatisfied(s.hard, s.syn)
		if unsat == 0 {
			flips := 0
			for w, word := range s.hard {
				flips += popcountDiff(word, binary.BigEndian.Uint64(cw[w*8:]))
			}
			if flips > flipGuard {
				return 0, iter + 1, ErrUncorrectable
			}
			// The embedded CRC is the authoritative verdict: a min-sum
			// convergence onto a wrong codeword (possible past the
			// rating) fails it and surfaces as an honest uncorrectable
			// instead of silent corruption.
			for w, word := range s.hard {
				binary.BigEndian.PutUint64(s.out[w*8:], word)
			}
			if !c.crcOK(s.out) {
				return 0, iter + 1, ErrUncorrectable
			}
			copy(cw, s.out)
			return flips, iter + 1, nil
		}
		if unsat < bestUnsat {
			bestUnsat, stall = unsat, 0
		} else if stall++; stall >= stallPatience {
			return 0, iter + 1, ErrUncorrectable
		}
	}
	return 0, maxIter, ErrUncorrectable
}

// unsatisfied counts failing parity checks for the packed hard
// decisions (the stall detector's progress metric).
func (c *code) unsatisfied(cw []uint64, scratch []uint64) int {
	pw := cw[c.k/Z:]
	c.msgSyndrome(scratch, cw[:c.k/Z])
	var carry uint64
	unsat := 0
	for r := range scratch {
		prev := pw[r] >> 1
		if carry != 0 {
			prev |= 1 << 63
		}
		unsat += popcount(scratch[r] ^ pw[r] ^ prev)
		carry = pw[r] & 1
	}
	return unsat
}

func popcount(x uint64) int { return bits.OnesCount64(x) }

func popcountDiff(a, b uint64) int { return bits.OnesCount64(a ^ b) }
